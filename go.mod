module anybc

go 1.22

package anybc

// One benchmark per table and figure of the paper's evaluation section, plus
// ablation benchmarks for the design choices called out in DESIGN.md.
// Run them all with:
//
//	go test -bench=. -benchmem
//
// Custom metrics attached to each benchmark report the headline quantity of
// the corresponding artifact (a communication cost T or a simulated GFlop/s
// value), so the benchmark log doubles as a summary of the reproduction.

import (
	gort "runtime"
	"testing"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/experiments"
	"anybc/internal/gcrm"
	"anybc/internal/runtime"
	"anybc/internal/simulate"
)

func benchSearchOpts() gcrm.SearchOptions {
	return gcrm.SearchOptions{Seeds: 10, SizeFactor: 4, BaseSeed: 1, Parallel: true}
}

// BenchmarkTableIa regenerates Table Ia (LU pattern dimensions and costs).
func BenchmarkTableIa(b *testing.B) {
	var rows []experiments.TableIaRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableIa(experiments.TableIaPs)
	}
	for _, r := range rows {
		if r.P == 23 {
			b.ReportMetric(r.G2DBCCost, "T(G-2DBC,P=23)")
			b.ReportMetric(r.DBCCost, "T(2DBC,P=23)")
		}
	}
}

// BenchmarkTableIb regenerates Table Ib (Cholesky pattern costs).
func BenchmarkTableIb(b *testing.B) {
	var rows []experiments.TableIbRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableIb(experiments.TableIbPs, benchSearchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.P == 35 {
			b.ReportMetric(r.GCRMCost, "T(GCR&M,P=35)")
			b.ReportMetric(r.SBCCost, "T(SBC,P=35)")
		}
	}
}

// perfBench runs a simulated performance figure and reports the GFlop/s of
// the paper's headline series at the largest N.
func perfBench(b *testing.B, run func(experiments.SimConfig) ([]experiments.PerfPoint, error), series string) {
	b.Helper()
	cfg := experiments.QuickSimConfig()
	cfg.GCRMSearch = benchSearchOpts()
	var pts []experiments.PerfPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	maxN := 0
	for _, p := range pts {
		if p.N > maxN {
			maxN = p.N
		}
	}
	for _, p := range pts {
		if p.N == maxN && p.Series == series {
			b.ReportMetric(p.GFlops, "GF/s("+series+")")
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1 (2DBC grid shapes for LU).
func BenchmarkFigure1(b *testing.B) {
	perfBench(b, experiments.Figure1, "2DBC(4x4)")
}

// BenchmarkFigure4 regenerates Figure 4 (cost of G-2DBC vs best 2DBC).
func BenchmarkFigure4(b *testing.B) {
	var pts []experiments.CostPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.Figure4(64)
	}
	for _, p := range pts {
		if p.P == 23 && p.Series == "G-2DBC" {
			b.ReportMetric(p.T, "T(G-2DBC,P=23)")
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5 (LU, P=23).
func BenchmarkFigure5(b *testing.B) {
	perfBench(b, experiments.Figure5, "G-2DBC(P=23)")
}

// BenchmarkFigure6 regenerates Figure 6 (LU, P=39).
func BenchmarkFigure6(b *testing.B) {
	perfBench(b, experiments.Figure6, "G-2DBC(P=39)")
}

// BenchmarkFigure7a regenerates Figure 7a (LU strong scaling).
func BenchmarkFigure7a(b *testing.B) {
	cfg := experiments.QuickSimConfig()
	var pts []experiments.PerfPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure7a(cfg, []int{16, 20, 23, 31, 36, 39})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.P == 23 && p.Series == "G-2DBC(P=23)" {
			b.ReportMetric(p.GFlops, "GF/s(G-2DBC,P=23)")
		}
	}
}

// BenchmarkFigure7b regenerates Figure 7b (Cholesky strong scaling).
func BenchmarkFigure7b(b *testing.B) {
	cfg := experiments.QuickSimConfig()
	cfg.GCRMSearch = benchSearchOpts()
	var pts []experiments.PerfPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure7b(cfg, []int{21, 23, 31, 35})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.P == 31 && p.Series != "" && p.Messages > 0 && p.N == cfg.ScalingN {
			b.ReportMetric(p.GFlops, "GF/s(P=31,"+p.Series+")")
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9 (GCR&M pattern-size/seed study).
func BenchmarkFigure9(b *testing.B) {
	var best *gcrm.Result
	for i := 0; i < b.N; i++ {
		var err error
		best, _, err = experiments.Figure9(23, benchSearchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(best.Cost, "T(best,P=23)")
	b.ReportMetric(float64(best.R), "r(best,P=23)")
}

// BenchmarkFigure10 regenerates Figure 10 (symmetric pattern costs).
func BenchmarkFigure10(b *testing.B) {
	var pts []experiments.CostPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure10(48, benchSearchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.P == 28 && p.Series == "GCR&M" {
			b.ReportMetric(p.T, "T(GCR&M,P=28)")
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11 (Cholesky, P=31).
func BenchmarkFigure11(b *testing.B) {
	perfBench(b, experiments.Figure11, "SBC(8x8,P=28)")
}

// BenchmarkFigure12 regenerates Figure 12 (Cholesky, P=35).
func BenchmarkFigure12(b *testing.B) {
	perfBench(b, experiments.Figure12, "SBC(8x8,P=32)")
}

// BenchmarkExtensionWeakScaling runs the weak-scaling study (constant
// memory per node): G-2DBC keeps per-node efficiency flat where 2DBC
// staircases.
func BenchmarkExtensionWeakScaling(b *testing.B) {
	cfg := experiments.QuickSimConfig()
	var pts []experiments.PerfPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.WeakScaling(cfg, 25000, 16, []int{16, 23, 31, 36})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.P == 23 {
			b.ReportMetric(p.PerNode, "GF/s/node(P=23,"+p.Series+")")
		}
	}
}

// BenchmarkExtensionGEMM simulates the plain matrix product (the kernel of
// the Section II-A lower bounds) for P=23: the G-2DBC advantage extends to
// GEMM, whose volume is governed by the same x̄/ȳ metric as LU.
func BenchmarkExtensionGEMM(b *testing.B) {
	const mt = 50
	g := dag.NewGEMMOp(mt, mt, mt)
	m := simulate.PaperMachine()
	wrap := func(d dist.Distribution) dist.Distribution {
		return gemmWrap{Distribution: d, mt: mt}
	}
	var bad, good float64
	for i := 0; i < b.N; i++ {
		r1, err := simulate.Run(g, 500, wrap(dist.NewTwoDBC(23, 1)), m, simulate.Options{})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := simulate.Run(g, 500, wrap(dist.NewG2DBC(23)), m, simulate.Options{})
		if err != nil {
			b.Fatal(err)
		}
		bad, good = r1.GFlops(), r2.GFlops()
	}
	b.ReportMetric(bad, "GF/s(2DBC-23x1)")
	b.ReportMetric(good, "GF/s(G-2DBC-23)")
}

// gemmWrap co-distributes the GEMM operands (mirrors runtime.GEMM placement).
type gemmWrap struct {
	dist.Distribution
	mt int
}

func (g gemmWrap) Owner(i, j int) int {
	switch {
	case i >= g.mt:
		return g.Distribution.Owner(i-g.mt, j)
	case j >= g.mt:
		return g.Distribution.Owner(i, j-g.mt)
	default:
		return g.Distribution.Owner(i, j)
	}
}

// BenchmarkRuntimeLU44 runs a real (numeric) LU factorization on the paper's
// full 44-node PlaFRIM cluster size under G-2DBC and reports the memory
// effect of reference-counted tile release: the cluster-wide peak tile
// working set against the keep-everything footprint the runtime had before
// received tiles were released after their last consumer.
//
// The per-node worker count follows GOMAXPROCS (minimum 2, so the stealing
// path always runs), making `go test -bench RuntimeLU44 -cpu 1,4` the
// multi-core scaling measurement: compare the per-op wall times across the
// -cpu entries.
func BenchmarkRuntimeLU44(b *testing.B) {
	const mt, bs = 24, 8
	workers := gort.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	d := dist.NewG2DBC(44)
	gen := runtime.GenDiagDominant(mt, bs, 17)
	var rep *runtime.Report
	for i := 0; i < b.N; i++ {
		var err error
		_, rep, err = runtime.FactorLU(mt, bs, d, gen, runtime.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
	}
	peak, foot := 0, 0
	for n, pk := range rep.PeakTilesPerNode {
		peak += pk
		foot += rep.OwnedTilesPerNode[n] + rep.ReceivedTilesPerNode[n]
	}
	b.ReportMetric(float64(peak), "tiles-peak(P=44)")
	b.ReportMetric(float64(foot), "tiles-footprint(P=44)")
	b.ReportMetric(float64(rep.Stats.TotalMessages()), "msgs(P=44)")
}

// BenchmarkConstructionG2DBC measures pattern-construction cost: building
// the G-2DBC pattern is trivial even for large P (the paper notes pattern
// construction is a non-issue and can be done once and for all).
func BenchmarkConstructionG2DBC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = dist.NewG2DBC(997) // worst case: prime P
	}
}

// BenchmarkConstructionGCRMSearch measures one full GCR&M search for P=23
// (the paper: "it only takes a few seconds on a laptop").
func BenchmarkConstructionGCRMSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gcrm.Search(23, benchSearchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionSYRK simulates the symmetric rank-k update under 2DBC,
// SBC and GCR&M (an extension beyond the paper's figures; SC22 predicts
// SBC-class schemes win).
func BenchmarkExtensionSYRK(b *testing.B) {
	cfg := experiments.QuickSimConfig()
	cfg.Ns = []int{25000}
	cfg.GCRMSearch = benchSearchOpts()
	var pts []experiments.PerfPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.SyrkComparison(cfg, 23)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.GFlops, "GF/s("+p.Series+")")
	}
}

// BenchmarkExtensionSTS simulates Cholesky at P=35 with the explicit
// Steiner-triple-system pattern against GCR&M and the SBC fallback — the
// explicit-pattern answer to the paper's open question.
func BenchmarkExtensionSTS(b *testing.B) {
	cfg := experiments.QuickSimConfig()
	cfg.Ns = []int{50000}
	cfg.GCRMSearch = benchSearchOpts()
	var pts []experiments.PerfPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.STSComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.GFlops, "GF/s("+p.Series+")")
	}
}

// BenchmarkAblationVariant compares right- and left-looking Cholesky under
// the same GCR&M distribution: same communication volume, different overlap.
func BenchmarkAblationVariant(b *testing.B) {
	cfg := experiments.QuickSimConfig()
	cfg.GCRMSearch = benchSearchOpts()
	var right, left experiments.PerfPoint
	for i := 0; i < b.N; i++ {
		var err error
		right, left, err = experiments.VariantComparison(cfg, 23, 25000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(right.GFlops, "GF/s(right-looking)")
	b.ReportMetric(left.GFlops, "GF/s(left-looking)")
	b.ReportMetric(float64(right.Messages), "msgs(right)")
	b.ReportMetric(float64(left.Messages), "msgs(left)")
}

// BenchmarkAblationScheduler compares the simulator's two ready-queue
// policies on the paper's P=23 LU case: the conclusions must not hinge on
// the local scheduling heuristic.
func BenchmarkAblationScheduler(b *testing.B) {
	g := dag.NewLU(50)
	d := dist.NewG2DBC(23)
	m := simulate.PaperMachine()
	var iter, fifo float64
	for i := 0; i < b.N; i++ {
		r1, err := simulate.Run(g, 500, d, m, simulate.Options{Scheduler: simulate.IterationOrder})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := simulate.Run(g, 500, d, m, simulate.Options{Scheduler: simulate.FIFOOrder})
		if err != nil {
			b.Fatal(err)
		}
		iter, fifo = r1.GFlops(), r2.GFlops()
	}
	b.ReportMetric(iter, "GF/s(iteration)")
	b.ReportMetric(fifo, "GF/s(fifo)")
}

// BenchmarkAblationSizeCap sweeps the GCR&M pattern-size cap (the paper's
// open question about how large a pattern needs to be): reports the best
// cost reachable under caps 2√P, 4√P and 6√P for P=23.
func BenchmarkAblationSizeCap(b *testing.B) {
	caps := []float64{2, 4, 6}
	costs := make([]float64, len(caps))
	for i := 0; i < b.N; i++ {
		for k, c := range caps {
			res, err := gcrm.Search(23, gcrm.SearchOptions{Seeds: 10, SizeFactor: c, BaseSeed: 1, Parallel: true})
			if err != nil {
				b.Fatal(err)
			}
			costs[k] = res.Cost
		}
	}
	b.ReportMetric(costs[0], "T(cap=2sqrtP)")
	b.ReportMetric(costs[1], "T(cap=4sqrtP)")
	b.ReportMetric(costs[2], "T(cap=6sqrtP)")
}

// BenchmarkAblationDiagonal compares the dynamic (extended-SBC) diagonal
// rule against a static in-colrow diagonal assignment, measuring realized
// load imbalance on a 64-tile-row matrix: the dynamic rule is what keeps
// GCR&M patterns balanced.
func BenchmarkAblationDiagonal(b *testing.B) {
	res, err := experiments.GCRMPattern(23, benchSearchOpts())
	if err != nil {
		b.Fatal(err)
	}
	var dynamicSpread, staticSpread float64
	for i := 0; i < b.N; i++ {
		// Dynamic rule.
		dres := dist.NewDiagResolver("dyn", res.Pattern.Clone())
		loads := dres.Loads(64)
		dynamicSpread = spread(loads)
		// Static rule: diagonal cell fixed to the first node on its colrow.
		static := res.Pattern.Clone()
		for dcell := 0; dcell < static.Rows(); dcell++ {
			for k := 0; k < static.Cols(); k++ {
				if v := static.At(dcell, k); v >= 0 {
					static.Set(dcell, dcell, v)
					break
				}
			}
		}
		sres := dist.NewDiagResolver("static", static)
		staticSpread = spread(sres.Loads(64))
	}
	b.ReportMetric(dynamicSpread, "spread(dynamic)")
	b.ReportMetric(staticSpread, "spread(static)")
}

func spread(loads []int64) float64 {
	min, max := loads[0], loads[0]
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	mean := float64(0)
	for _, l := range loads {
		mean += float64(l)
	}
	mean /= float64(len(loads))
	return float64(max-min) / mean
}

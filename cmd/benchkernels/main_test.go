package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeBaseline marshals an Output into a temp baseline file.
func writeBaseline(t *testing.T, out Output) string {
	t.Helper()
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func suite(procs int, gemm float64) Baseline {
	return Baseline{GoMaxProcs: procs, Kernels: []KernelResult{{Name: "gemm", N: 500, GFlops: gemm}}}
}

func TestCheckFloorFallsBackToLowerProcs(t *testing.T) {
	// Baseline has 1 and 4 procs; a fresh 8-proc run must gate against the
	// 4-proc floor instead of failing outright.
	path := writeBaseline(t, Output{Schema: 2, Baselines: []Baseline{suite(1, 10), suite(4, 30)}})

	fresh := Output{Baselines: []Baseline{suite(8, 28)}}
	if err := checkFloor(fresh, path, 0.5); err != nil {
		t.Fatalf("fresh 8-proc rate above the 4-proc floor must pass, got: %v", err)
	}
	slow := Output{Baselines: []Baseline{suite(8, 10)}}
	if err := checkFloor(slow, path, 0.5); err == nil {
		t.Fatal("fresh 8-proc rate below the fallback floor must fail")
	}
}

func TestCheckFloorExactMatchStillPreferred(t *testing.T) {
	// With an exact gomaxprocs entry present, the fallback must not engage:
	// 25 beats half of the 4-proc floor (30) but the exact 8-proc floor is 60.
	path := writeBaseline(t, Output{Schema: 2, Baselines: []Baseline{suite(4, 30), suite(8, 60)}})
	fresh := Output{Baselines: []Baseline{suite(8, 25)}}
	if err := checkFloor(fresh, path, 0.5); err == nil {
		t.Fatal("rate below the exact-match floor must fail even if a laxer lower-procs floor exists")
	}
}

func TestCheckFloorNoLowerEntryFails(t *testing.T) {
	// Baseline only has higher parallelism: nothing to fall back to.
	path := writeBaseline(t, Output{Schema: 2, Baselines: []Baseline{suite(4, 30)}})
	fresh := Output{Baselines: []Baseline{suite(1, 100)}}
	if err := checkFloor(fresh, path, 0.5); err == nil {
		t.Fatal("fresh 1-proc run with only a 4-proc baseline must fail, not silently pass")
	}
}

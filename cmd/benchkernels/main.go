// Command benchkernels measures the real-execution hot path — the sequential
// tile kernels and the distributed LU runtime — and writes the results as
// machine-readable JSON, so CI and performance investigations share one
// artifact instead of scraping `go test -bench` logs.
//
// Usage:
//
//	benchkernels [-o BENCH_kernels.json] [-benchtime 1s] [-quick]
//	             [-procs 1,4] [-floor BENCH_kernels.json] [-floor-frac 0.5]
//
// The whole suite runs once per requested GOMAXPROCS value (-procs), and the
// JSON records one baseline entry per value: since the panel kernels and the
// engine's worker pool both scale with available procs, a single
// gomaxprocs-less number would be meaningless. Kernel entries report
// sustained GFlop/s at the paper's tile size (and a cache-resident size for
// GEMM); the runtime entry reports allocations, bytes and messages per full
// 44-node LU factorization, the quantities the broadcast-once/pooled
// communication layer is meant to keep flat.
//
// With -floor, the fresh rates are additionally compared against a committed
// baseline JSON, keyed by gomaxprocs: each fresh entry is matched to the
// baseline entry with the same gomaxprocs, and any kernel present in both
// that drops below floor-frac of its baseline GFlop/s fails the process
// (exit 1). A fresh gomaxprocs with no matching baseline entry gates against
// the nearest LOWER baseline parallelism with a logged warning (rates only
// grow with procs, so a lower-procs floor stays a valid lower bound); only
// when no lower entry exists either does the check fail. The check is skipped
// when the assembly microkernel is not in use, because the pure-Go fallback's
// rates are not comparable to an AVX2 baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	rt "runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"anybc/internal/dist"
	"anybc/internal/runtime"
	"anybc/internal/tile"
)

// KernelResult is one sequential-kernel measurement.
type KernelResult struct {
	Name    string  `json:"name"`
	N       int     `json:"n"` // square tile size
	GFlops  float64 `json:"gflops"`
	NsPerOp int64   `json:"ns_per_op"`
}

// RuntimeResult is the distributed-runtime measurement.
type RuntimeResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Messages    int64  `json:"messages"`
	PeakTiles   int    `json:"peak_tiles"`
}

// Baseline is one full suite run at a fixed GOMAXPROCS.
type Baseline struct {
	GoMaxProcs int            `json:"gomaxprocs"`
	Kernels    []KernelResult `json:"kernels"`
	Runtime    RuntimeResult  `json:"runtime"`
}

// Output is the schema of BENCH_kernels.json (schema 2: per-gomaxprocs
// baseline entries instead of one flat kernel list).
type Output struct {
	Schema                 int        `json:"schema"`
	GoVersion              string     `json:"go_version"`
	GOOS                   string     `json:"goos"`
	GOARCH                 string     `json:"goarch"`
	NumCPU                 int        `json:"num_cpu"`
	Microkernel            string     `json:"microkernel"`
	MicrokernelAccelerated bool       `json:"microkernel_accelerated"`
	Baselines              []Baseline `json:"baselines"`
}

func gflops(r testing.BenchmarkResult, flopsPerOp float64) float64 {
	if r.T <= 0 {
		return 0
	}
	return flopsPerOp * float64(r.N) / r.T.Seconds() / 1e9
}

func benchKernel(name string, n int, flopsPerOp float64, op func()) KernelResult {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op()
		}
	})
	fmt.Fprintf(os.Stderr, "%-24s %8.2f GFlop/s  (%d iter, %v/op)\n",
		name, gflops(r, flopsPerOp), r.N, time.Duration(r.NsPerOp()))
	return KernelResult{Name: name, N: n, GFlops: gflops(r, flopsPerOp), NsPerOp: r.NsPerOp()}
}

func randTile(n int, seed int64) *tile.Tile {
	t := tile.New(n, n)
	t.Random(rand.New(rand.NewSource(seed)))
	return t
}

// parseProcs parses the -procs list ("1,4") into distinct positive ints.
func parseProcs(s string) ([]int, error) {
	var procs []int
	seen := map[int]bool{}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		p, err := strconv.Atoi(f)
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad -procs entry %q", f)
		}
		if !seen[p] {
			seen[p] = true
			procs = append(procs, p)
		}
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("-procs lists no values")
	}
	return procs, nil
}

// checkFloor compares fresh kernel rates against a committed baseline,
// matching entries by gomaxprocs. A fresh entry with no same-gomaxprocs
// baseline falls back to the nearest *lower* baseline parallelism with a
// logged warning — a floor measured with fewer procs is a legitimate (if
// soft) gate, since rates only grow with parallelism, whereas comparing
// against a higher-procs floor would fail spuriously. With no lower entry
// either, it is an error, not a silent pass.
func checkFloor(fresh Output, baselinePath string, frac float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base Output
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	if len(base.Baselines) == 0 {
		return fmt.Errorf("baseline %s has no per-gomaxprocs entries (pre-schema-2 file? regenerate it)", baselinePath)
	}
	baseByProcs := make(map[int]map[string]float64, len(base.Baselines))
	for _, bl := range base.Baselines {
		rates := make(map[string]float64, len(bl.Kernels))
		for _, k := range bl.Kernels {
			rates[k.Name] = k.GFlops
		}
		baseByProcs[bl.GoMaxProcs] = rates
	}
	var failed []string
	for _, bl := range fresh.Baselines {
		baseRate, ok := baseByProcs[bl.GoMaxProcs]
		if !ok {
			nearest := -1
			for procs := range baseByProcs {
				if procs < bl.GoMaxProcs && procs > nearest {
					nearest = procs
				}
			}
			if nearest < 0 {
				return fmt.Errorf("baseline %s has no entry for gomaxprocs=%d and none lower to fall back to — regenerate it with -procs including %d",
					baselinePath, bl.GoMaxProcs, bl.GoMaxProcs)
			}
			fmt.Fprintf(os.Stderr, "floor: warning: baseline %s has no gomaxprocs=%d entry; gating against the nearest lower baseline gomaxprocs=%d\n",
				baselinePath, bl.GoMaxProcs, nearest)
			baseRate = baseByProcs[nearest]
		}
		for _, k := range bl.Kernels {
			want, ok := baseRate[k.Name]
			if !ok || want <= 0 {
				continue
			}
			floor := frac * want
			status := "ok"
			if k.GFlops < floor {
				status = "FAIL"
				failed = append(failed, fmt.Sprintf("%s@procs=%d", k.Name, bl.GoMaxProcs))
			}
			fmt.Fprintf(os.Stderr, "floor [procs=%d] %-20s %8.2f GFlop/s vs floor %8.2f (baseline %.2f)  %s\n",
				bl.GoMaxProcs, k.Name, k.GFlops, floor, want, status)
		}
	}
	if failed != nil {
		return fmt.Errorf("kernels below %.0f%% of baseline: %v", 100*frac, failed)
	}
	return nil
}

// runSuite measures the full kernel + runtime suite at the current
// GOMAXPROCS setting.
func runSuite(procs int) Baseline {
	bl := Baseline{GoMaxProcs: procs}

	const n = 500
	x, y, z := randTile(n, 1), randTile(n, 2), randTile(n, 3)
	sx, sy, sz := randTile(128, 4), randTile(128, 5), randTile(128, 6)
	tri := randTile(n, 7)
	for i := 0; i < n; i++ {
		tri.Set(i, i, 3)
	}
	// Factorization inputs: diagonally dominant for unpivoted LU, SPD for
	// Cholesky. Each op re-copies the source into a work tile; the O(n²) copy
	// is noise next to the O(n³) factorization.
	dom := randTile(n, 8)
	spd := tile.New(n, n)
	for i := 0; i < n; i++ {
		dom.Set(i, i, float64(n)+1)
		for j := 0; j <= i; j++ {
			v := dom.At(i, j)
			spd.Set(i, j, v)
			spd.Set(j, i, v)
		}
		spd.Set(i, i, float64(n)+1)
	}
	work := tile.New(n, n)

	bl.Kernels = append(bl.Kernels,
		benchKernel("Gemm500", n, tile.FlopsGemm(n), func() {
			tile.Gemm(tile.NoTrans, tile.NoTrans, -1, x, y, 1, z)
		}),
		benchKernel("Gemm128", 128, tile.FlopsGemm(128), func() {
			tile.Gemm(tile.NoTrans, tile.NoTrans, -1, sx, sy, 1, sz)
		}),
		benchKernel("GemmTransB500", n, tile.FlopsGemm(n), func() {
			tile.Gemm(tile.NoTrans, tile.TransT, -1, x, y, 1, z)
		}),
		benchKernel("Syrk500", n, tile.FlopsSyrk(n), func() {
			tile.Syrk(tile.Lower, tile.NoTrans, -1, x, 1, z)
		}),
		benchKernel("Trsm500", n, tile.FlopsTrsm(n), func() {
			tile.Trsm(tile.Left, tile.Lower, tile.NoTrans, tile.NonUnit, 1, tri, z)
		}),
		benchKernel("TrsmRight500", n, tile.FlopsTrsm(n), func() {
			tile.Trsm(tile.Right, tile.Upper, tile.NoTrans, tile.NonUnit, 1, tri, z)
		}),
		benchKernel("Getrf500", n, tile.FlopsGetrf(n), func() {
			copy(work.Data, dom.Data)
			if err := tile.Getrf(work); err != nil {
				panic(err)
			}
		}),
		benchKernel("Potrf500", n, tile.FlopsPotrf(n), func() {
			copy(work.Data, spd.Data)
			if err := tile.Potrf(work); err != nil {
				panic(err)
			}
		}),
	)

	// Distributed LU on the paper's 44-node cluster size: the allocation
	// numbers are the broadcast-once/pooling regression signal, the wall
	// time the multi-worker scaling signal (Workers matches GOMAXPROCS so a
	// node's task-level parallelism can actually use the procs granted).
	const mt, bs = 24, 8
	workers := procs
	if workers < 2 {
		workers = 2
	}
	d := dist.NewG2DBC(44)
	gen := runtime.GenDiagDominant(mt, bs, 17)
	var rep *runtime.Report
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			_, rep, err = runtime.FactorLU(mt, bs, d, gen, runtime.Options{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	peak := 0
	for _, pk := range rep.PeakTilesPerNode {
		peak += pk
	}
	bl.Runtime = RuntimeResult{
		Name:        "RuntimeLU44",
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Messages:    rep.Stats.TotalMessages(),
		PeakTiles:   peak,
	}
	fmt.Fprintf(os.Stderr, "%-24s %v/op  %d allocs/op  %d B/op  %d msgs\n",
		bl.Runtime.Name, time.Duration(bl.Runtime.NsPerOp),
		bl.Runtime.AllocsPerOp, bl.Runtime.BytesPerOp, bl.Runtime.Messages)
	return bl
}

func main() {
	testing.Init() // registers test.benchtime, which testing.Benchmark honors
	out := flag.String("o", "BENCH_kernels.json", "output JSON path")
	benchtime := flag.Duration("benchtime", time.Second, "minimum measuring time per benchmark")
	quick := flag.Bool("quick", false, "single-iteration smoke run (CI)")
	procsFlag := flag.String("procs", "1,4", "comma-separated GOMAXPROCS values; the suite runs once per value")
	floorPath := flag.String("floor", "", "baseline JSON to enforce a kernel-rate floor against (matched by gomaxprocs)")
	floorFrac := flag.Float64("floor-frac", 0.5, "fraction of the baseline GFlop/s each kernel must sustain")
	flag.Parse()
	if *quick {
		flag.Set("test.benchtime", "1x")
	} else {
		flag.Set("test.benchtime", benchtime.String())
	}
	procs, err := parseProcs(*procsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(2)
	}

	var res Output
	res.Schema = 2
	res.GoVersion = rt.Version()
	res.GOOS, res.GOARCH = rt.GOOS, rt.GOARCH
	res.NumCPU = rt.NumCPU()
	res.Microkernel = tile.MicroKernelName()
	res.MicrokernelAccelerated = tile.MicroKernelAccelerated()
	fmt.Fprintf(os.Stderr, "microkernel %s  num_cpu %d\n", res.Microkernel, res.NumCPU)

	oldProcs := rt.GOMAXPROCS(0)
	for _, p := range procs {
		fmt.Fprintf(os.Stderr, "--- gomaxprocs %d ---\n", p)
		rt.GOMAXPROCS(p)
		res.Baselines = append(res.Baselines, runSuite(p))
	}
	rt.GOMAXPROCS(oldProcs)

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)

	if *floorPath != "" {
		if !res.MicrokernelAccelerated {
			fmt.Fprintf(os.Stderr, "floor check skipped: %s fallback in use, baseline assumes the accelerated microkernel\n",
				res.Microkernel)
			return
		}
		if err := checkFloor(res, *floorPath, *floorFrac); err != nil {
			fmt.Fprintln(os.Stderr, "benchkernels:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "floor check passed")
	}
}

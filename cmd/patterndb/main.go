// Command patterndb builds and queries an on-disk database of the best
// GCR&M pattern per node count — the "database containing, for each possible
// value of P, a very efficient pattern" proposed in the paper's conclusion.
// Patterns depend only on P, so they are computed once and reused by every
// factorization.
//
// Usage:
//
//	patterndb -build -min 2 -max 64 -dir patterns/   # search and store
//	patterndb -get 23 -dir patterns/                 # print a stored pattern
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"anybc/internal/gcrm"
	"anybc/internal/pattern"
)

func main() {
	var (
		build  = flag.Bool("build", false, "build the database for P in [min, max]")
		get    = flag.Int("get", 0, "print the stored pattern for this P")
		minP   = flag.Int("min", 2, "smallest node count")
		maxP   = flag.Int("max", 64, "largest node count")
		dir    = flag.String("dir", "patterns", "database directory")
		seeds  = flag.Int("seeds", 100, "search seeds per pattern size")
		factor = flag.Float64("factor", 6, "pattern size cap factor")
	)
	flag.Parse()

	switch {
	case *build:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		opts := gcrm.SearchOptions{Seeds: *seeds, SizeFactor: *factor, BaseSeed: 1, Parallel: true}
		for p := *minP; p <= *maxP; p++ {
			res, err := gcrm.Search(p, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "patterndb: P=%d: %v (skipped)\n", p, err)
				continue
			}
			f, err := os.Create(dbPath(*dir, p))
			if err != nil {
				fatal(err)
			}
			if err := res.Pattern.Marshal(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("P=%-4d r=%-4d T=%.3f  -> %s\n", p, res.R, res.Cost, dbPath(*dir, p))
		}
	case *get > 0:
		f, err := os.Open(dbPath(*dir, *get))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		pat, err := pattern.Unmarshal(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("P=%d pattern %s, Cholesky cost T=%.3f\n", *get, pat.Dims(), pat.CostCholesky())
		fmt.Print(pat)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func dbPath(dir string, p int) string {
	return filepath.Join(dir, fmt.Sprintf("gcrm-%04d.pattern", p))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "patterndb:", err)
	os.Exit(1)
}

// Command distgen generates and inspects distribution patterns: it prints
// any scheme's pattern and communication costs for a given node count, and
// reproduces the paper's Table I.
//
// Usage:
//
//	distgen -scheme g2dbc -p 23            # pattern + costs for one scheme
//	distgen -p 23                          # compare all schemes for P=23
//	distgen -table1                        # reproduce Table Ia and Ib
//	distgen -scheme gcrm -p 23 -seeds 100  # tune the GCR&M search
package main

import (
	"flag"
	"fmt"
	"os"

	"anybc/internal/core"
	"anybc/internal/experiments"
	"anybc/internal/gcrm"
)

func main() {
	var (
		scheme  = flag.String("scheme", "", "distribution scheme: 2dbc, g2dbc, sbc, gcrm (empty = compare all)")
		p       = flag.Int("p", 23, "number of nodes")
		table1  = flag.Bool("table1", false, "print Table Ia and Ib and exit")
		verify  = flag.Bool("verify", false, "run real distributed factorizations and check measured communication against Equations (1)/(2)")
		mt      = flag.Int("mt", 24, "verify mode: matrix size in tiles")
		seeds   = flag.Int("seeds", 100, "GCR&M search: random restarts per pattern size")
		factor  = flag.Float64("factor", 6, "GCR&M search: pattern size cap factor (r <= factor*sqrt(P))")
		showPat = flag.Bool("pattern", false, "print the full pattern grid")
	)
	flag.Parse()

	opts := core.Options{GCRMSearch: gcrm.SearchOptions{
		Seeds: *seeds, SizeFactor: *factor, BaseSeed: 1, Parallel: true,
	}}

	if *verify {
		rows, err := experiments.CommValidation(*mt, 4, 20)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Communication validation on a %dx%d tile matrix (real execution):\n", *mt, *mt)
		experiments.RenderValidation(os.Stdout, rows)
		fmt.Println("\n'measured' counts actual tile messages; it must equal the structural")
		fmt.Println("owner-computes count and approach the Eq. (1)/(2) predictions from below.")
		return
	}

	if *table1 {
		fmt.Println("Table Ia — LU factorization")
		experiments.RenderTableIa(os.Stdout, experiments.TableIa(experiments.TableIaPs))
		fmt.Println("\nTable Ib — Cholesky factorization")
		rows, err := experiments.TableIb(experiments.TableIbPs, opts.GCRMSearch)
		if err != nil {
			fatal(err)
		}
		experiments.RenderTableIb(os.Stdout, rows)
		return
	}

	schemes := core.Schemes()
	if *scheme != "" {
		schemes = []core.Scheme{core.Scheme(*scheme)}
	}
	for _, s := range schemes {
		d, err := core.New(s, *p, opts)
		if err != nil {
			fmt.Printf("%-6s P=%d: %v\n", s, *p, err)
			continue
		}
		r := core.Describe(d)
		fmt.Printf("%-6s %-20s pattern %-8s T_LU=%-8.3f", s, r.Name, r.Dims, r.CostLU)
		if r.CostCholesky > 0 {
			fmt.Printf(" T_Chol=%-8.3f", r.CostCholesky)
		}
		fmt.Printf(" balanced=%v\n", r.Balanced)
		if *showPat {
			fmt.Println(core.Pattern(d))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distgen:", err)
	os.Exit(1)
}

// Command factserve runs the multi-tenant factorization service: a long-lived
// HTTP front over one shared virtual cluster, multiplexing any number of
// concurrent LU/Cholesky jobs through per-job tile namespaces, an admission
// controller (priorities, slot and memory budgets, bounded queue) and a
// pattern cache.
//
// Usage:
//
//	factserve -addr :8344 -p 8 -b 16 -max 4
//
// Then drive it over HTTP:
//
//	curl -s -X POST localhost:8344/jobs -d '{"kind":"lu","mt":8,"seed":1}'
//	curl -s localhost:8344/jobs/1
//	curl -s localhost:8344/jobs/1/result
//	curl -s -X DELETE localhost:8344/jobs/2
//	curl -s 'localhost:8344/stats?format=text'
//
// SIGINT/SIGTERM shut the service down gracefully: admission stops, running
// jobs are cancelled through their namespaces, and the final text summary is
// printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"anybc/internal/cluster"
	"anybc/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8344", "HTTP listen address")
		p          = flag.Int("p", 8, "shared cluster node count (every job spans all nodes)")
		b          = flag.Int("b", 16, "tile side (every job uses it)")
		maxJobs    = flag.Int("max", 4, "concurrent running-jobs budget")
		queueCap   = flag.Int("queue", 64, "admission queue capacity")
		memMB      = flag.Int64("mem", 0, "memory budget for running jobs, in MiB (0 = unlimited)")
		maxMt      = flag.Int("max-mt", 64, "largest accepted tile dimension mt")
		workers    = flag.Int("workers", 1, "default per-node worker count")
		tree       = flag.Bool("tree", false, "binomial-tree broadcast transport instead of flat fan-out")
		patternDir = flag.String("pattern-dir", "", "optional patterndb directory for GCR&M patterns")
	)
	flag.Parse()

	cfg := serve.Config{
		P:              *p,
		B:              *b,
		MaxConcurrent:  *maxJobs,
		QueueCap:       *queueCap,
		MemBudgetBytes: *memMB << 20,
		MaxMt:          *maxMt,
		Workers:        *workers,
		PatternDir:     *patternDir,
	}
	if *tree {
		cfg.Broadcast = cluster.BroadcastTree
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "factserve:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("factserve: listening on %s (P=%d, b=%d, max %d concurrent jobs)\n",
		*addr, *p, *b, *maxJobs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "factserve:", err)
			os.Exit(1)
		}
	case <-sig:
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	srv.Close()
	fmt.Print(srv.Summary())
}

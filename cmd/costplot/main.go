// Command costplot produces the analytic cost studies of the paper:
// Figure 4 (G-2DBC vs best 2DBC), Figure 9 (GCR&M pattern-size/seed study)
// and Figure 10 (symmetric pattern costs), as aligned text or CSV.
//
// Usage:
//
//	costplot -fig 4 -maxp 64
//	costplot -fig 9 -p 23 -seeds 100 -csv
//	costplot -fig 10 -maxp 64
package main

import (
	"flag"
	"fmt"
	"os"

	"anybc/internal/experiments"
	"anybc/internal/gcrm"
)

func main() {
	var (
		fig    = flag.String("fig", "4", "figure to regenerate: 4, 9 or 10")
		maxP   = flag.Int("maxp", 64, "largest node count (figures 4 and 10)")
		p      = flag.Int("p", 23, "node count (figure 9)")
		seeds  = flag.Int("seeds", 100, "GCR&M search seeds")
		factor = flag.Float64("factor", 6, "GCR&M pattern size cap factor")
		csv    = flag.Bool("csv", false, "emit CSV instead of a table")
	)
	flag.Parse()
	search := gcrm.SearchOptions{Seeds: *seeds, SizeFactor: *factor, BaseSeed: 1, Parallel: true}

	switch *fig {
	case "4":
		pts := experiments.Figure4(*maxP)
		if *csv {
			experiments.CostCSV(os.Stdout, pts)
		} else {
			experiments.RenderCost(os.Stdout, fmt.Sprintf("Figure 4: total cost T, P=1..%d", *maxP), pts)
		}
	case "9":
		best, all, err := experiments.Figure9(*p, search)
		if err != nil {
			fatal(err)
		}
		if *csv {
			experiments.CandidateCSV(os.Stdout, all)
		} else {
			experiments.RenderCandidates(os.Stdout, *p, best, all)
		}
	case "10":
		pts, err := experiments.Figure10(*maxP, search)
		if err != nil {
			fatal(err)
		}
		if *csv {
			experiments.CostCSV(os.Stdout, pts)
		} else {
			experiments.RenderCost(os.Stdout,
				fmt.Sprintf("Figure 10: symmetric cost T, P=2..%d", *maxP), pts)
		}
	default:
		fatal(fmt.Errorf("unknown figure %q (want 4, 9 or 10)", *fig))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "costplot:", err)
	os.Exit(1)
}

// Command simfact runs the simulated performance experiments: Figures 1, 5,
// 6, 7a, 7b, 11 and 12 of the paper, on the calibrated machine model.
//
// Usage:
//
//	simfact -fig 5                 # LU, P=23 (scaled default sizes)
//	simfact -fig 7a -paper         # strong scaling at the paper's N=200,000
//	simfact -fig 11 -csv           # Cholesky P=31, CSV output
//	simfact -fig 1 -quick          # fastest configuration
//
// The -gantt mode traces one run instead: simulated by default, or a real
// numeric execution on the virtual cluster with -real (use a small -n).
//
//	simfact -gantt out -p 23 -n 25000            # simulated trace
//	simfact -gantt out -real -p 23 -n 512 -tb 16 # wall-clock trace
//
// Both gantt modes accept -tree to switch the broadcast transport from the
// paper's flat point-to-point fan-out to a binomial tree (the root sends
// ⌈log₂(k+1)⌉ hops and recipients relay onward); the run reports wire hops
// and relay counts alongside the mode-independent logical message counts.
//
// With -real, -chaos-seed N additionally injects the deterministic fault
// plan chaos.DefaultConfig(N) (delays, reorders, duplicates, drops healed by
// re-requests) and writes the injected faults to <prefix>-faults.csv; the
// same seed reproduces the same faults.
//
//	simfact -gantt out -real -chaos-seed 7 -p 23 -n 512 -tb 16
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"anybc/internal/chaos"
	"anybc/internal/cluster"
	"anybc/internal/core"
	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/experiments"
	"anybc/internal/gcrm"
	"anybc/internal/runtime"
	"anybc/internal/simulate"
	"anybc/internal/trace"
)

func main() {
	var (
		fig    = flag.String("fig", "1", "figure to regenerate: 1, 5, 6, 7a, 7b, 11 or 12")
		paper  = flag.Bool("paper", false, "use the paper's matrix sizes (slow: tens of millions of simulated tasks)")
		quick  = flag.Bool("quick", false, "use the quick configuration (smallest sizes)")
		csv    = flag.Bool("csv", false, "emit CSV instead of a table")
		gantt  = flag.String("gantt", "", "instead of a figure, trace one run and write <prefix>-gantt.csv and <prefix>-messages.csv")
		p      = flag.Int("p", 23, "gantt mode: node count")
		n      = flag.Int("n", 25000, "gantt mode: matrix size")
		scheme = flag.String("scheme", "g2dbc", "gantt mode: distribution scheme")
		kernel = flag.String("kernel", "lu", "gantt mode: lu or cholesky")
		real   = flag.Bool("real", false, "gantt mode: trace a real numeric run on the virtual cluster instead of a simulation")
		tb     = flag.Int("tb", 16, "gantt -real mode: tile size in elements")
		work   = flag.Int("workers", 2, "gantt -real mode: worker goroutines per node")
		cseed  = flag.Int64("chaos-seed", -1, "gantt -real mode: inject the deterministic fault plan of this seed (-1 disables)")
		tree   = flag.Bool("tree", false, "gantt mode: binomial-tree broadcast transport instead of flat fan-out")
		elast  = flag.Bool("elastic", false, "gantt -real mode: survive node deaths by migrating their tasks to survivors")
		crash  = flag.String("crash", "", "gantt -real mode: kill one node mid-run, as rank@task (0-based owned-task index)")
		repl   = flag.Int("repl", 1, "gantt mode (LU only): replication factor c — stack c layers of the base grid, 2.5D-style")
		sweep  = flag.String("commsweep", "", "run the pinned replication comm-volume sweep, write the points as JSON to this file, and exit nonzero if c=2 fails the volume-reduction gate")
	)
	flag.Parse()

	if *sweep != "" {
		if err := runCommSweep(*sweep); err != nil {
			fatal(err)
		}
		return
	}

	if *gantt != "" {
		bc := cluster.BroadcastFlat
		if *tree {
			bc = cluster.BroadcastTree
		}
		if *repl < 1 {
			fatal(fmt.Errorf("-repl must be >= 1 (got %d)", *repl))
		}
		var err error
		if *real {
			err = runGanttReal(*gantt, *p, *n, *tb, *work, *scheme, *kernel, *cseed, bc, *elast, *crash, *repl)
		} else {
			err = runGantt(*gantt, *p, *n, *scheme, *kernel, bc, *repl)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	cfg := experiments.DefaultSimConfig()
	if *paper {
		cfg = experiments.PaperSimConfig()
	}
	if *quick {
		cfg = experiments.QuickSimConfig()
	}

	type genFn func(experiments.SimConfig) ([]experiments.PerfPoint, error)
	titles := map[string]string{
		"1":  "Figure 1: LU, 2DBC grid shapes (P<=23)",
		"5":  "Figure 5: LU, P=23 (G-2DBC vs 2DBC)",
		"6":  "Figure 6: LU, P=39 (G-2DBC vs 2DBC)",
		"7a": "Figure 7a: LU strong scaling",
		"7b": "Figure 7b: Cholesky strong scaling",
		"11": "Figure 11: Cholesky, P=31 (GCR&M vs SBC)",
		"12": "Figure 12: Cholesky, P=35 (GCR&M vs SBC)",
	}
	gens := map[string]genFn{
		"1": experiments.Figure1,
		"5": experiments.Figure5,
		"6": experiments.Figure6,
		"7a": func(c experiments.SimConfig) ([]experiments.PerfPoint, error) {
			return experiments.Figure7a(c, experiments.ScalingPs)
		},
		"7b": func(c experiments.SimConfig) ([]experiments.PerfPoint, error) {
			return experiments.Figure7b(c, experiments.ScalingPs)
		},
		"11": experiments.Figure11,
		"12": experiments.Figure12,
	}
	gen, ok := gens[*fig]
	if !ok {
		fatal(fmt.Errorf("unknown figure %q (want 1, 5, 6, 7a, 7b, 11 or 12)", *fig))
	}
	pts, err := gen(cfg)
	if err != nil {
		fatal(err)
	}
	if *csv {
		experiments.PerfCSV(os.Stdout, pts)
		return
	}
	experiments.RenderPerf(os.Stdout, titles[*fig], pts)
}

// runGantt simulates one (scheme, P, N) point with tracing enabled and
// writes Gantt and message CSVs plus a utilization summary.
func runGantt(prefix string, p, n int, scheme, kernel string, bc cluster.BroadcastMode, repl int) error {
	const b = 500
	mt := n / b
	if mt < 1 {
		return fmt.Errorf("matrix size %d below one tile", n)
	}
	d, err := core.New(core.Scheme(scheme), p, core.Options{
		GCRMSearch: gcrm.SearchOptions{Seeds: 30, SizeFactor: 5, BaseSeed: 1, Parallel: true},
	})
	if err != nil {
		return err
	}
	var g dag.Graph
	switch kernel {
	case "lu":
		if repl > 1 {
			g, d = dag.NewReplicatedLU(mt, repl), dist.NewReplicated(d, repl, mt)
		} else {
			g = dag.NewLU(mt)
		}
	case "cholesky":
		if repl > 1 {
			return fmt.Errorf("-repl is LU-only (got kernel %q)", kernel)
		}
		g = dag.NewCholesky(mt)
	default:
		return fmt.Errorf("unknown kernel %q", kernel)
	}
	m := simulate.PaperMachine()
	rec := &trace.Recorder{}
	res, err := simulate.Run(g, b, d, m, simulate.Options{Recorder: rec, Broadcast: bc})
	if err != nil {
		return err
	}
	if err := writeTraceCSVs(prefix, rec); err != nil {
		return err
	}
	fmt.Printf("%s on %s: %.0f GFlop/s, makespan %.3f s, %d messages\n",
		g.Name(), d.Name(), res.GFlops(), res.Makespan, res.Messages)
	fmt.Printf("broadcast %s: %d wire hops (%d relayed by recipients)\n",
		bc, res.Hops, res.Forwards)
	if repl > 1 {
		fmt.Printf("replication c=%d: %d reduction shipments, %.2f MB of partials\n",
			repl, res.Reduces, float64(res.ReduceBytes)/1e6)
	}
	fmt.Printf("per-node utilization:")
	for _, u := range rec.Utilization(m.Workers, d.Nodes()) {
		fmt.Printf(" %.2f", u)
	}
	fmt.Println()
	fmt.Printf("kernel time breakdown: %v\n", rec.KindBreakdown())
	fmt.Printf("wrote %s-gantt.csv and %s-messages.csv\n", prefix, prefix)
	return nil
}

// parseCrash decodes a -crash rank@task directive into a chaos crash map.
func parseCrash(spec string, p int) (map[int]int, error) {
	var rank, task int
	if _, err := fmt.Sscanf(spec, "%d@%d", &rank, &task); err != nil {
		return nil, fmt.Errorf("crash spec %q: want rank@task, e.g. 5@10", spec)
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("crash spec %q: rank %d outside [0,%d)", spec, rank, p)
	}
	if task < 0 {
		return nil, fmt.Errorf("crash spec %q: negative task index", spec)
	}
	return map[int]int{rank: task}, nil
}

// runGanttReal executes one real (numeric) factorization on the virtual
// cluster with wall-clock tracing and writes the same CSV pair as the
// simulated mode, plus working-set statistics from the release path.
func runGanttReal(prefix string, p, n, b, workers int, scheme, kernel string, chaosSeed int64, bc cluster.BroadcastMode, elastic bool, crash string, repl int) error {
	mt := n / b
	if mt < 2 {
		return fmt.Errorf("matrix size %d below two %d-element tiles", n, b)
	}
	if repl > 1 && kernel != "lu" {
		return fmt.Errorf("-repl is LU-only (got kernel %q)", kernel)
	}
	d, err := core.New(core.Scheme(scheme), p, core.Options{
		GCRMSearch: gcrm.SearchOptions{Seeds: 30, SizeFactor: 5, BaseSeed: 1, Parallel: true},
	})
	if err != nil {
		return err
	}
	rec := &trace.Recorder{}
	opt := runtime.Options{Workers: workers, Recorder: rec, Broadcast: bc, Elastic: elastic}
	var plan *chaos.Plan
	var cfg chaos.Config
	haveChaos := chaosSeed >= 0
	if haveChaos {
		cfg = chaos.DefaultConfig(chaosSeed)
	}
	if crash != "" {
		// A crash directive without -chaos-seed gets a fault-free plan that
		// only injects the crash itself.
		cfg.CrashAtTask, err = parseCrash(crash, repl*d.Nodes())
		if err != nil {
			return err
		}
		haveChaos = true
	}
	if haveChaos {
		if plan, err = chaos.New(cfg); err != nil {
			return err
		}
		opt.Chaos = plan
	}
	var rep *runtime.Report
	var name string
	switch kernel {
	case "lu":
		name = "LU"
		if repl > 1 {
			name = fmt.Sprintf("LU/c=%d", repl)
			_, rep, err = runtime.FactorLUReplicated(mt, b, repl, d, runtime.GenDiagDominant(mt, b, 1), opt)
		} else {
			_, rep, err = runtime.FactorLU(mt, b, d, runtime.GenDiagDominant(mt, b, 1), opt)
		}
	case "cholesky":
		name = "Cholesky"
		_, rep, err = runtime.FactorCholesky(mt, b, d, runtime.GenSPD(mt, b, 1), opt)
	default:
		return fmt.Errorf("unknown kernel %q", kernel)
	}
	if err != nil {
		return err
	}
	if err := rec.Validate(); err != nil {
		return fmt.Errorf("recorded trace inconsistent: %w", err)
	}
	if err := writeTraceCSVs(prefix, rec); err != nil {
		return err
	}
	fmt.Printf("%s on %s (real run): wall time %v, %d messages, %.2f MB on the wire\n",
		name, d.Name(), rep.Elapsed, rep.Stats.TotalMessages(),
		float64(rep.Stats.TotalBytes())/1e6)
	fmt.Printf("broadcast %s: %d wire hops, %d relayed by recipients\n",
		rep.Broadcast, rep.Stats.TotalHops(), rep.Stats.TotalForwards())
	if repl > 1 {
		fmt.Printf("replication c=%d: %d reduction shipments, %.2f MB of partials\n",
			repl, rep.Stats.TotalReduces(), float64(rep.Stats.TotalReduceBytes())/1e6)
	}
	if rep.Broadcast == cluster.BroadcastTree {
		fmt.Printf("per-node outgoing hops:")
		for _, h := range rep.Stats.HopsByNode() {
			fmt.Printf(" %d", h)
		}
		fmt.Println()
		fmt.Printf("per-node relay hops:")
		for _, f := range rep.ForwardedPerNode {
			fmt.Printf(" %d", f)
		}
		fmt.Println()
	}
	peak, foot := 0, 0
	for node, pk := range rep.PeakTilesPerNode {
		peak += pk
		foot += rep.OwnedTilesPerNode[node] + rep.ReceivedTilesPerNode[node]
	}
	fmt.Printf("tile working set: peak %d cluster-wide (keep-everything footprint %d)\n", peak, foot)
	fmt.Printf("per-node utilization:")
	for _, u := range rec.Utilization(workers, d.Nodes()) {
		fmt.Printf(" %.2f", u)
	}
	fmt.Println()
	fmt.Printf("per-node stall (idle-weighted capacity-seconds):")
	dupDrops := 0
	dispatched := map[string]int{}
	for _, s := range rep.Sched {
		fmt.Printf(" %.3fs", s.StallSeconds)
		dupDrops += s.DuplicateDrops
		for kind, cnt := range s.DispatchedByKind {
			dispatched[kind] += cnt
		}
	}
	fmt.Println()
	fmt.Printf("per-node ready-queue peak:")
	for _, s := range rep.Sched {
		fmt.Printf(" %d", s.ReadyPeak)
	}
	fmt.Println()
	fmt.Printf("per-node worker busy / steals:")
	for _, s := range rep.Sched {
		busy := 0.0
		for _, b := range s.WorkerBusySeconds {
			busy += b
		}
		steals := 0
		for _, n := range s.StealsPerWorker {
			steals += n
		}
		fmt.Printf(" %.3fs/%d", busy, steals)
	}
	fmt.Println()
	fmt.Printf("dispatched by kind: %v", dispatched)
	if dupDrops > 0 {
		fmt.Printf(" (%d duplicate deliveries dropped)", dupDrops)
	}
	fmt.Println()
	fmt.Printf("kernel time breakdown: %v\n", rec.KindBreakdown())
	if plan != nil {
		if chaosSeed >= 0 {
			fmt.Printf("chaos seed %d injected faults: %v\n", chaosSeed, plan.Counts())
		} else {
			fmt.Printf("injected faults: %v\n", plan.Counts())
		}
		reReq, redelivered, recovered := 0, 0, 0
		for _, rs := range rep.Resilience {
			reReq += rs.ReRequests
			redelivered += rs.Redelivered
			recovered += rs.Recovered
		}
		fmt.Printf("healing: %d re-requests, %d redeliveries served, %d arrivals recovered\n",
			reReq, redelivered, recovered)
		for node, rs := range rep.Resilience {
			if rs.Died {
				fmt.Printf("node %d died mid-run\n", node)
			}
			if rs.Adopted > 0 || rs.Speculative > 0 {
				fmt.Printf("node %d migration: adopted %d tasks, speculatively replayed %d\n",
					node, rs.Adopted, rs.Speculative)
			}
		}
		f, err := os.Create(prefix + "-faults.csv")
		if err != nil {
			return err
		}
		if err := rec.FaultsCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s-gantt.csv, %s-messages.csv and %s-faults.csv\n", prefix, prefix, prefix)
		return nil
	}
	fmt.Printf("wrote %s-gantt.csv and %s-messages.csv\n", prefix, prefix)
	return nil
}

// runCommSweep runs the pinned replication comm-volume sweep (the CI gate),
// writes the points as JSON, prints a summary table, and fails when
// replicated c=2 LU does not cut per-node received volume by at least 25%
// against the c=1 G-2DBC baseline.
func runCommSweep(out string) error {
	cfg, baseP, mt, cs := experiments.PinnedReplicationCase()
	pts, err := experiments.ReplicationSweep(cfg, baseP, mt, cs)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(pts, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("replication sweep: N=%d, tile %d, base G-2DBC(%d)\n", mt*cfg.B, cfg.B, baseP)
	fmt.Printf("%4s %6s %14s %14s %14s %8s\n", "c", "nodes", "recv/node (MB)", "reduce (MB)", "bound (MB)", "ratio")
	for _, p := range pts {
		fmt.Printf("%4d %6d %14.1f %14.1f %14.1f %8.3f\n",
			p.C, p.Nodes, p.RecvMean/1e6, float64(p.ReduceBytes)/1e6, p.BoundBytes/1e6, p.RatioToBound)
	}
	base, c2 := pts[0], pts[1]
	saving := 1 - c2.RecvMean/base.RecvMean
	fmt.Printf("c=2 per-node received volume: %.1f%% below the c=1 baseline (gate: >= 25%%)\n", 100*saving)
	fmt.Printf("wrote %s\n", out)
	if saving < 0.25 {
		return fmt.Errorf("comm-volume regression: c=2 saving %.1f%% below the 25%% gate", 100*saving)
	}
	return nil
}

// writeTraceCSVs dumps a recorder's Gantt and message CSVs under prefix.
func writeTraceCSVs(prefix string, rec *trace.Recorder) error {
	for suffix, dump := range map[string]func(w io.Writer) error{
		"-gantt.csv":    rec.GanttCSV,
		"-messages.csv": rec.MessagesCSV,
	} {
		f, err := os.Create(prefix + suffix)
		if err != nil {
			return err
		}
		if err := dump(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simfact:", err)
	os.Exit(1)
}

// Distributed LU factorization on the virtual cluster: a real (numeric)
// owner-computes execution of the tiled right-looking algorithm across P
// node goroutines, comparing 2DBC with the paper's G-2DBC.
//
// For each distribution the example factorizes the same diagonally dominant
// matrix, verifies the residual ‖A − LU‖_F/‖A‖_F, and compares the number of
// tile messages the runtime actually sent against the paper's Equation (1)
// prediction m(m+1)/2 · (x̄ + ȳ − 2).
//
//	go run ./examples/lu_distributed -p 23 -mt 24 -b 16
package main

import (
	"flag"
	"fmt"
	"os"

	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/runtime"
)

func main() {
	var (
		p       = flag.Int("p", 23, "number of virtual nodes")
		mt      = flag.Int("mt", 24, "matrix size in tiles")
		b       = flag.Int("b", 16, "tile size in elements")
		workers = flag.Int("workers", 2, "worker goroutines per node")
		seed    = flag.Int64("seed", 42, "matrix generator seed")
	)
	flag.Parse()

	fmt.Printf("Distributed LU: %dx%d tiles of %dx%d, P=%d nodes, %d workers/node\n\n",
		*mt, *mt, *b, *b, *p, *workers)

	orig := matrix.NewDiagDominant(*mt, *b, *seed)
	gen := runtime.GenDiagDominant(*mt, *b, *seed)

	for _, d := range []dist.Distribution{dist.Best2DBC(*p), dist.NewG2DBC(*p)} {
		fact, rep, err := runtime.FactorLU(*mt, *b, d, gen, runtime.Options{Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lu_distributed:", err)
			os.Exit(1)
		}
		res := matrix.ResidualLU(orig, fact)
		pd := d.(dist.PatternDistribution)
		predicted := pd.Pattern().CommVolumeLU(*mt)
		measured := rep.Stats.TotalMessages()

		fmt.Printf("%s (pattern %s, T = %.3f)\n", d.Name(), pd.Pattern().Dims(), pd.Pattern().CostLU())
		fmt.Printf("  residual ‖A−LU‖/‖A‖ = %.2e\n", res)
		fmt.Printf("  tile messages: measured %d, Eq.(1) predicts ≤ %.0f (%.0f%%)\n",
			measured, predicted, 100*float64(measured)/predicted)
		fmt.Printf("  bytes on the wire: %.2f MB; wall time %v\n",
			float64(rep.Stats.TotalBytes())/1e6, rep.Elapsed)
		min, max := rep.TasksPerNode[0], rep.TasksPerNode[0]
		for _, n := range rep.TasksPerNode {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		peak, foot := 0, 0
		for n, pk := range rep.PeakTilesPerNode {
			peak += pk
			foot += rep.OwnedTilesPerNode[n] + rep.ReceivedTilesPerNode[n]
		}
		fmt.Printf("  load balance: %d..%d tasks per node\n", min, max)
		fmt.Printf("  tile working set: peak %d tiles cluster-wide (keep-everything footprint %d, %.0f%%)\n\n",
			peak, foot, 100*float64(peak)/float64(foot))
	}
}

// Quickstart: build a distribution for your node count and inspect its
// communication cost.
//
// The paper's motivating problem: your reservation got P = 23 nodes. The
// classical 2DBC grid degenerates (23 is prime), so either you waste nodes or
// you pay a huge communication bill. G-2DBC and GCR&M give you balanced,
// communication-efficient patterns on all 23 nodes.
//
//	go run ./examples/quickstart -p 23
package main

import (
	"flag"
	"fmt"
	"os"

	"anybc/internal/core"
	"anybc/internal/dist"
	"anybc/internal/gcrm"
)

func main() {
	p := flag.Int("p", 23, "number of nodes available")
	flag.Parse()

	fmt.Printf("Distribution schemes for P = %d nodes\n\n", *p)
	opts := core.Options{GCRMSearch: gcrm.SearchOptions{Seeds: 50, SizeFactor: 5, BaseSeed: 1, Parallel: true}}

	// Non-symmetric factorizations (LU): 2DBC vs the paper's G-2DBC.
	fmt.Println("LU factorization (cost T = x̄ + ȳ; communication ∝ T − 2):")
	dbc := dist.Best2DBC(*p)
	g2 := dist.NewG2DBC(*p)
	for _, d := range []dist.Distribution{dbc, g2} {
		r := core.Describe(d)
		fmt.Printf("  %-22s pattern %-8s T = %.3f\n", r.Name, r.Dims, r.CostLU)
	}
	saving := (1 - (g2.Pattern().CostLU()-2)/(dbc.Pattern().CostLU()-2)) * 100
	fmt.Printf("  → G-2DBC saves %.0f%% of the LU communication volume while using all %d nodes.\n\n", saving, *p)

	// Symmetric factorizations (Cholesky): SBC (if it exists) vs GCR&M.
	fmt.Println("Cholesky factorization (cost T = z̄; communication ∝ T − 1):")
	if sbc, err := dist.NewSBC(*p); err == nil {
		r := core.Describe(sbc)
		fmt.Printf("  %-22s pattern %-8s T = %.3f\n", r.Name, r.Dims, r.CostCholesky)
	} else {
		fallback := dist.BestSBCAtMost(*p)
		fmt.Printf("  SBC: no distribution for P=%d; best fallback uses %d nodes (%s, T = %.0f)\n",
			*p, fallback.Nodes(), fallback.Pattern().Dims(), fallback.Pattern().CostCholesky())
	}
	gcrmD, err := core.New(core.GCRM, *p, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	r := core.Describe(gcrmD)
	fmt.Printf("  %-22s pattern %-8s T = %.3f\n", r.Name, r.Dims, r.CostCholesky)
	fmt.Printf("  → GCR&M uses all %d nodes at an SBC-class communication cost.\n\n", *p)

	// Show the (start of the) G-2DBC pattern itself.
	pat := core.Pattern(g2)
	fmt.Printf("G-2DBC pattern (%s); tile (i,j) is owned by cell (i mod %d, j mod %d):\n",
		pat.Dims(), pat.Rows(), pat.Cols())
	fmt.Print(pat)
}

// Cluster planner: the paper's motivating scenario as a tool. Your job
// scheduler gave you P nodes (often not a nice product of two close
// integers — the paper's cluster has 44 nodes and other users hold
// reservations). For a target factorization and matrix size, the planner
// simulates every applicable scheme on the calibrated machine model and
// reports the predicted time-to-solution, so you can decide whether to use
// all P nodes with a generalized pattern or fall back to fewer nodes.
//
//	go run ./examples/cluster_planner -p 23 -n 50000 -kernel lu
//	go run ./examples/cluster_planner -p 31 -n 50000 -kernel cholesky
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/gcrm"
	"anybc/internal/simulate"
)

func main() {
	var (
		p      = flag.Int("p", 23, "nodes your reservation got")
		n      = flag.Int("n", 50000, "matrix size (elements per side)")
		b      = flag.Int("b", 500, "tile size")
		kernel = flag.String("kernel", "lu", "factorization: lu or cholesky")
	)
	flag.Parse()

	mt := *n / *b
	if mt < 2 {
		fmt.Fprintln(os.Stderr, "cluster_planner: matrix too small for the tile size")
		os.Exit(1)
	}
	machine := simulate.PaperMachine()

	var g dag.Graph
	var candidates []dist.Distribution
	switch *kernel {
	case "lu":
		g = dag.NewLU(mt)
		candidates = []dist.Distribution{
			dist.NewTwoDBC(*p, 1),
			dist.Best2DBC(*p),
			dist.Best2DBCAtMost(*p),
			dist.NewG2DBC(*p),
		}
	case "cholesky":
		g = dag.NewCholesky(mt)
		res, err := gcrm.Search(*p, gcrm.SearchOptions{Seeds: 50, SizeFactor: 5, BaseSeed: 1, Parallel: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cluster_planner:", err)
			os.Exit(1)
		}
		candidates = []dist.Distribution{
			dist.Best2DBCAtMost(*p),
			dist.BestSBCAtMost(*p),
			dist.NewDiagResolver(fmt.Sprintf("GCR&M(%dx%d,P=%d)", res.R, res.R, *p), res.Pattern),
		}
	default:
		fmt.Fprintf(os.Stderr, "cluster_planner: unknown kernel %q\n", *kernel)
		os.Exit(1)
	}

	fmt.Printf("Planning %s of a %dx%d matrix (tile %d) with up to %d nodes\n\n", *kernel, *n, *n, *b, *p)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "distribution\tnodes\ttime (s)\tGFlop/s\tGF/s/node\tmessages\t")
	bestTime, bestName := 0.0, ""
	seen := map[string]bool{}
	for _, d := range candidates {
		if seen[d.Name()] {
			continue
		}
		seen[d.Name()] = true
		res, err := simulate.Run(g, *b, d, machine, simulate.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cluster_planner:", err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.0f\t%.1f\t%d\t\n",
			d.Name(), d.Nodes(), res.Makespan, res.GFlops(),
			res.GFlops()/float64(d.Nodes()), res.Messages)
		if bestName == "" || res.Makespan < bestTime {
			bestTime, bestName = res.Makespan, d.Name()
		}
	}
	tw.Flush()
	fmt.Printf("\nRecommendation: %s (predicted time to solution %.2f s)\n", bestName, bestTime)
}

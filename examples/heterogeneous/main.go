// Heterogeneous nodes — the extension the paper's conclusion proposes.
// Suppose the scheduler hands you a mix of old and new nodes (say, 1× and 2×
// kernel throughput). A speed-oblivious pattern gives every node the same
// tile share, so the slow nodes become the bottleneck. The virtual-slot
// H-G2DBC distribution (package hetero) apportions tiles proportionally to
// speed while keeping the G-2DBC communication structure.
//
//	go run ./examples/heterogeneous -fast 4 -slow 4 -ratio 2 -n 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/hetero"
	"anybc/internal/simulate"
)

func main() {
	var (
		fast  = flag.Int("fast", 4, "number of fast nodes")
		slow  = flag.Int("slow", 4, "number of slow nodes")
		ratio = flag.Float64("ratio", 3, "speed of fast nodes relative to slow ones")
		n     = flag.Int("n", 40000, "matrix size")
		b     = flag.Int("b", 500, "tile size")
		gran  = flag.Int("granularity", 4, "virtual slots per node (average)")
	)
	flag.Parse()

	P := *fast + *slow
	speeds := make([]float64, P)
	for i := range speeds {
		if i < *fast {
			speeds[i] = *ratio
		} else {
			speeds[i] = 1
		}
	}
	slots, err := hetero.Slots(speeds, P**gran)
	if err != nil {
		fail(err)
	}
	fmt.Printf("Cluster: %d fast (%gx) + %d slow nodes; virtual slots per node: %v\n\n",
		*fast, *ratio, *slow, slots)

	aware, err := hetero.NewG2DBC(speeds, *gran)
	if err != nil {
		fail(err)
	}
	oblivious := dist.NewG2DBC(P)

	g := dag.NewLU(*n / *b)
	m := simulate.PaperMachine()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "distribution\tT_LU\tload imbalance\tmakespan (s)\tGFlop/s\t")
	makespans := map[string]float64{}
	for _, d := range []dist.PatternDistribution{oblivious, aware} {
		res, err := simulate.Run(g, *b, d, m, simulate.Options{NodeSpeed: speeds})
		if err != nil {
			fail(err)
		}
		makespans[d.Name()] = res.Makespan
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f%%\t%.3f\t%.0f\t\n",
			d.Name(), d.Pattern().CostLU(),
			100*hetero.Imbalance(d.Pattern(), speeds),
			res.Makespan, res.GFlops())
	}
	tw.Flush()
	fmt.Println("\nThe speed-aware pattern trades a larger communication cost for")
	fmt.Println("speed-proportional load. Which effect wins depends on the speed")
	fmt.Println("spread and on the compute/communication ratio of the problem:")
	if makespans[aware.Name()] < makespans[oblivious.Name()] {
		fmt.Println("here, load balance wins — H-G2DBC is faster.")
	} else {
		fmt.Println("here, communication wins — try a larger -ratio or -n to see the")
		fmt.Println("crossover in favour of the speed-aware pattern.")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "heterogeneous:", err)
	os.Exit(1)
}

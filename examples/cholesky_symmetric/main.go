// Distributed Cholesky factorization of a symmetric positive definite
// matrix, stored as its lower triangle only: the paper's symmetric use case.
// Compares three schemes end to end on the virtual cluster — 2DBC, SBC (on
// the largest valid node count ≤ P) and GCR&M on all P nodes — verifying the
// residual and checking the measured communication volume against the
// Equation (2) prediction m(m+1)/2 · (z̄ − 1).
//
//	go run ./examples/cholesky_symmetric -p 23 -mt 24 -b 16
package main

import (
	"flag"
	"fmt"
	"os"

	"anybc/internal/dist"
	"anybc/internal/gcrm"
	"anybc/internal/matrix"
	"anybc/internal/runtime"
)

func main() {
	var (
		p       = flag.Int("p", 23, "number of virtual nodes available")
		mt      = flag.Int("mt", 24, "matrix size in tiles")
		b       = flag.Int("b", 16, "tile size in elements")
		workers = flag.Int("workers", 2, "worker goroutines per node")
		seed    = flag.Int64("seed", 7, "matrix generator seed")
		seeds   = flag.Int("seeds", 50, "GCR&M search seeds")
	)
	flag.Parse()

	fmt.Printf("Distributed Cholesky: lower triangle of %dx%d tiles of %dx%d, up to P=%d nodes\n\n",
		*mt, *mt, *b, *b, *p)

	orig := matrix.NewSPD(*mt, *b, *seed)
	gen := runtime.GenSPD(*mt, *b, *seed)

	res, err := gcrm.Search(*p, gcrm.SearchOptions{Seeds: *seeds, SizeFactor: 5, BaseSeed: 1, Parallel: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cholesky_symmetric:", err)
		os.Exit(1)
	}
	gcrmD := dist.NewDiagResolver(fmt.Sprintf("GCR&M(%dx%d,P=%d)", res.R, res.R, *p), res.Pattern)

	schemes := []dist.Distribution{
		dist.Best2DBC(*p),
		dist.BestSBCAtMost(*p),
		gcrmD,
	}
	for _, d := range schemes {
		fact, rep, err := runtime.FactorCholesky(*mt, *b, d, gen, runtime.Options{Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cholesky_symmetric:", err)
			os.Exit(1)
		}
		pd := d.(dist.PatternDistribution)
		predicted := pd.Pattern().CommVolumeCholesky(*mt)
		measured := rep.Stats.TotalMessages()

		fmt.Printf("%s (%d nodes, T = %.3f)\n", d.Name(), d.Nodes(), pd.Pattern().CostCholesky())
		fmt.Printf("  residual ‖A−LLᵀ‖/‖A‖ = %.2e\n", matrix.ResidualCholesky(orig, fact))
		fmt.Printf("  tile messages: measured %d, Eq.(2) predicts ≤ %.0f (%.0f%%)\n",
			measured, predicted, 100*float64(measured)/predicted)
		fmt.Printf("  bytes on the wire: %.2f MB; wall time %v\n\n",
			float64(rep.Stats.TotalBytes())/1e6, rep.Elapsed)
	}
	fmt.Println("Note how GCR&M uses every available node while sending fewer tiles")
	fmt.Println("than 2DBC and matching the SBC communication class.")
}

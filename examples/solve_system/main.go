// End-to-end linear system solve: factorize A and solve A·X = B in one
// distributed owner-computes schedule on the virtual cluster — the
// factorization DAG and both triangular substitutions execute as a single
// task graph, with the right-hand-side tiles placed on the diagonal owners.
//
// The example builds a system with a known solution, solves it under the
// paper's G-2DBC distribution (LU) and under GCR&M (Cholesky on an SPD
// system), and reports solution accuracy and communication.
//
//	go run ./examples/solve_system -p 10 -mt 16 -b 12 -nrhs 4
package main

import (
	"flag"
	"fmt"
	"os"

	"anybc/internal/dist"
	"anybc/internal/gcrm"
	"anybc/internal/matrix"
	"anybc/internal/runtime"
	"anybc/internal/tile"
)

func main() {
	var (
		p    = flag.Int("p", 10, "number of virtual nodes")
		mt   = flag.Int("mt", 16, "matrix size in tiles")
		b    = flag.Int("b", 12, "tile size")
		nrhs = flag.Int("nrhs", 4, "right-hand-side columns")
		seed = flag.Int64("seed", 3, "generator seed")
	)
	flag.Parse()

	fmt.Printf("Solving A·X = B: %d unknowns, %d right-hand sides, P=%d nodes\n\n",
		*mt**b, *nrhs, *p)

	// --- LU path (non-symmetric A, G-2DBC distribution) ---
	a := matrix.NewDiagDominant(*mt, *b, *seed)
	xTrue := matrix.NewRHS(*mt, *b, *nrhs)
	xTrue.FillFunc(func(gi, k int) float64 { return matrix.ElementAt(*seed+1, gi, k) })
	rhs := a.MulRHS(xTrue)

	d := dist.NewG2DBC(*p)
	x, rep, err := runtime.SolveLU(*mt, *b, *nrhs, d,
		runtime.GenDiagDominant(*mt, *b, *seed),
		func(i int) *tile.Tile { return rhs[i].Clone() },
		runtime.Options{Workers: 2})
	if err != nil {
		fail(err)
	}
	fmt.Printf("LU + solve under %s:\n", d.Name())
	fmt.Printf("  max |x - x_true| = %.2e\n", x.MaxAbsDiff(xTrue))
	fmt.Printf("  tile messages %d (%.2f MB), wall time %v\n\n",
		rep.Stats.TotalMessages(), float64(rep.Stats.TotalBytes())/1e6, rep.Elapsed)

	// --- Cholesky path (SPD A, GCR&M distribution) ---
	spd := matrix.NewSPD(*mt, *b, *seed+10)
	xTrue2 := matrix.NewRHS(*mt, *b, *nrhs)
	xTrue2.FillFunc(func(gi, k int) float64 { return matrix.ElementAt(*seed+11, gi, k) })
	rhs2 := spd.MulRHS(xTrue2)

	res, err := gcrm.Search(*p, gcrm.SearchOptions{Seeds: 30, SizeFactor: 5, BaseSeed: 1, Parallel: true})
	if err != nil {
		fail(err)
	}
	ds := dist.NewDiagResolver(fmt.Sprintf("GCR&M(%dx%d,P=%d)", res.R, res.R, *p), res.Pattern)
	x2, rep2, err := runtime.SolveCholesky(*mt, *b, *nrhs, ds,
		runtime.GenSPD(*mt, *b, *seed+10),
		func(i int) *tile.Tile { return rhs2[i].Clone() },
		runtime.Options{Workers: 2})
	if err != nil {
		fail(err)
	}
	fmt.Printf("Cholesky + solve under %s:\n", ds.Name())
	fmt.Printf("  max |x - x_true| = %.2e\n", x2.MaxAbsDiff(xTrue2))
	fmt.Printf("  tile messages %d (%.2f MB), wall time %v\n",
		rep2.Stats.TotalMessages(), float64(rep2.Stats.TotalBytes())/1e6, rep2.Elapsed)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "solve_system:", err)
	os.Exit(1)
}

// Package anybc is a from-scratch Go reproduction of "Data Distribution
// Schemes for Dense Linear Algebra Factorizations on Any Number of Nodes"
// (Beaumont, Collin, Eyraud-Dubois, Vérité; IPDPS 2023).
//
// The library implements the paper's two contributions — the Generalized 2D
// Block-Cyclic distribution (G-2DBC) for LU factorization and the Greedy
// ColRow & Matching heuristic (GCR&M) for Cholesky factorization — together
// with the baselines they are compared against (2DBC, SBC) and every
// substrate the evaluation needs: tiled numeric kernels, factorization task
// graphs, a task-based distributed runtime over an in-memory message-passing
// layer, and a discrete-event performance simulator modeling the paper's
// cluster.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-versus-measured comparison. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation section.
package anybc

package tile

// Blocked triangular solve. The n×n triangular operand is processed in
// trsmNB-wide diagonal blocks: only the nb×nb block straddling the diagonal
// is solved by scalar substitution, every off-diagonal contribution is a
// packed GEMM through gemmView/microKernel — the same left-looking
// formulation LAPACK's xTRSM uses, so the O(n²·rhs) bulk runs at the
// microkernel's rate while the scalar work shrinks to O(nb·n·rhs).
//
// All drivers operate on the *effective* operand: the caller has already
// folded any transpose into the (ad, lda) view (flipping uplo), so only the
// four (side, effUplo) cases remain.

// trsmNB is the width of the diagonal blocks the blocked TRSM solves by
// scalar substitution; everything off-diagonal goes through the packed GEMM.
// Small enough that the scalar share (~nb/n of the flops) stays minor at the
// paper's tile size, large enough that each GEMM panel amortizes packing.
const trsmNB = 24

// trsmRB is the row-block width of the right-side scalar substitution: each
// row of the triangular operand streams once per block of B rows instead of
// once per row.
const trsmRB = 8

// trsmBlockedView solves a triangular system in place over dense views:
//
//	side == Left:  A · X = B, A is n×n, B/X is brows×bcols with brows == n
//	side == Right: X · A = B, A is n×n, B/X is brows×bcols with bcols == n
//
// where A is the effUplo triangle (diag per diag) of the row-major view
// ad/lda and B occupies the row-major view bd/ldb. Any transpose has been
// folded into the view by the caller.
func trsmBlockedView(side Side, effUplo Uplo, diag Diag, ad []float64, lda, n int, bd []float64, ldb, brows, bcols int) {
	if n <= trsmNB {
		trsmScalarView(side, effUplo, diag, ad, lda, n, bd, ldb, brows, bcols)
		return
	}
	switch {
	case side == Left && effUplo == Lower:
		// Forward block substitution: subtract the already-solved rows, then
		// solve the diagonal block.
		for k0 := 0; k0 < n; k0 += trsmNB {
			k1 := k0 + trsmNB
			if k1 > n {
				k1 = n
			}
			if k0 > 0 {
				gemmView(-1,
					opView{data: ad[k0*lda:], ld: lda},
					opView{data: bd, ld: ldb},
					k1-k0, bcols, k0, bd[k0*ldb:], ldb)
			}
			trsmScalarView(Left, Lower, diag, ad[k0*lda+k0:], lda, k1-k0,
				bd[k0*ldb:], ldb, k1-k0, bcols)
		}
	case side == Left && effUplo == Upper:
		// Backward block substitution, bottom block first.
		for k1 := n; k1 > 0; k1 -= trsmNB {
			k0 := k1 - trsmNB
			if k0 < 0 {
				k0 = 0
			}
			if k1 < n {
				gemmView(-1,
					opView{data: ad[k0*lda+k1:], ld: lda},
					opView{data: bd[k1*ldb:], ld: ldb},
					k1-k0, bcols, n-k1, bd[k0*ldb:], ldb)
			}
			trsmScalarView(Left, Upper, diag, ad[k0*lda+k0:], lda, k1-k0,
				bd[k0*ldb:], ldb, k1-k0, bcols)
		}
	case side == Right && effUplo == Lower:
		// X·A = B with A lower: column blocks right to left; each block first
		// subtracts the contribution of the already-solved columns to its
		// right, B[:, k0:k1] -= X[:, k1:n] · A[k1:n, k0:k1].
		for k1 := n; k1 > 0; k1 -= trsmNB {
			k0 := k1 - trsmNB
			if k0 < 0 {
				k0 = 0
			}
			if k1 < n {
				gemmView(-1,
					opView{data: bd[k1:], ld: ldb},
					opView{data: ad[k1*lda+k0:], ld: lda},
					brows, k1-k0, n-k1, bd[k0:], ldb)
			}
			trsmScalarView(Right, Lower, diag, ad[k0*lda+k0:], lda, k1-k0,
				bd[k0:], ldb, brows, k1-k0)
		}
	default: // side == Right && effUplo == Upper
		// Column blocks left to right: B[:, k0:k1] -= X[:, 0:k0] · A[0:k0, k0:k1].
		for k0 := 0; k0 < n; k0 += trsmNB {
			k1 := k0 + trsmNB
			if k1 > n {
				k1 = n
			}
			if k0 > 0 {
				gemmView(-1,
					opView{data: bd, ld: ldb},
					opView{data: ad[k0:], ld: lda},
					brows, k1-k0, k0, bd[k0:], ldb)
			}
			trsmScalarView(Right, Upper, diag, ad[k0*lda+k0:], lda, k1-k0,
				bd[k0:], ldb, brows, k1-k0)
		}
	}
}

// trsmScalarView is the substitution solve the blocked driver applies to
// nb×nb diagonal blocks (and that small whole tiles fall through to). The
// left side streams B rows; the right side runs trsmRB row blocks so every
// triangular row loads once per block of B rows.
func trsmScalarView(side Side, effUplo Uplo, diag Diag, ad []float64, lda, n int, bd []float64, ldb, brows, bcols int) {
	switch {
	case side == Left && effUplo == Lower:
		for i := 0; i < n; i++ {
			bi := bd[i*ldb : i*ldb+bcols]
			ai := ad[i*lda : i*lda+n]
			for k := 0; k < i; k++ {
				f := ai[k]
				if f == 0 {
					continue
				}
				bk := bd[k*ldb : k*ldb+bcols]
				for j := range bi {
					bi[j] -= f * bk[j]
				}
			}
			if diag == NonUnit {
				d := ai[i]
				for j := range bi {
					bi[j] /= d
				}
			}
		}
	case side == Left && effUplo == Upper:
		for i := n - 1; i >= 0; i-- {
			bi := bd[i*ldb : i*ldb+bcols]
			ai := ad[i*lda : i*lda+n]
			for k := i + 1; k < n; k++ {
				f := ai[k]
				if f == 0 {
					continue
				}
				bk := bd[k*ldb : k*ldb+bcols]
				for j := range bi {
					bi[j] -= f * bk[j]
				}
			}
			if diag == NonUnit {
				d := ai[i]
				for j := range bi {
					bi[j] /= d
				}
			}
		}
	case side == Right && effUplo == Lower:
		// X·A = B with A lower: each B row solves independently, columns
		// right to left.
		for r0 := 0; r0 < brows; r0 += trsmRB {
			r1 := r0 + trsmRB
			if r1 > brows {
				r1 = brows
			}
			for j := n - 1; j >= 0; j-- {
				aj := ad[j*lda : j*lda+n]
				d := aj[j]
				for r := r0; r < r1; r++ {
					br := bd[r*ldb : r*ldb+bcols]
					if diag == NonUnit {
						br[j] /= d
					}
					f := br[j]
					if f == 0 {
						continue
					}
					head := br[:j]
					ah := aj[:j]
					for idx := range head {
						head[idx] -= f * ah[idx]
					}
				}
			}
		}
	default: // side == Right && effUplo == Upper
		for r0 := 0; r0 < brows; r0 += trsmRB {
			r1 := r0 + trsmRB
			if r1 > brows {
				r1 = brows
			}
			for j := 0; j < n; j++ {
				aj := ad[j*lda : j*lda+n]
				d := aj[j]
				for r := r0; r < r1; r++ {
					br := bd[r*ldb : r*ldb+bcols]
					if diag == NonUnit {
						br[j] /= d
					}
					f := br[j]
					if f == 0 {
						continue
					}
					tail := br[j+1 : n]
					at := aj[j+1 : n]
					for idx := range tail {
						tail[idx] -= f * at[idx]
					}
				}
			}
		}
	}
}

// Package tile provides dense matrix tiles and the sequential BLAS/LAPACK
// style kernels that tiled LU and Cholesky factorizations are built from:
// GEMM, SYRK, TRSM, POTRF and GETRF. These are the elementary tasks submitted
// to the task-based runtime, mirroring the kernels Chameleon runs on each
// worker core.
//
// The kernels are written from scratch over row-major float64 storage. Large
// GEMM-shaped updates run through a cache-blocked, register-tiled panel
// kernel (gemm_blocked.go): operands are packed into strip panels and a
// fixed-size microkernel accumulates a small C block in registers — an
// AVX2+FMA assembly kernel on amd64 (CPUID-gated, kernel_amd64.s), a pure-Go
// block elsewhere. The remaining kernels are blocked algorithms over the same
// packed machinery: TRSM solves only small diagonal blocks by scalar
// substitution (trsm_blocked.go), SYRK runs off-diagonal panels and diagonal
// blocks at GEMM rate, and GETRF/POTRF are blocked right-looking
// factorizations whose trailing updates are packed GEMM/SYRK calls
// (factor_blocked.go). The discrete-event simulator models kernel *time* with a
// calibrated machine model, while these implementations provide the
// *numerics* for the real distributed execution used in tests and examples.
package tile

import (
	"fmt"
	"math"
	"math/rand"
)

// Tile is a dense rows×cols matrix block in row-major order.
type Tile struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols tile.
func New(rows, cols int) *Tile {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tile: invalid dimensions %dx%d", rows, cols))
	}
	return &Tile{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (t *Tile) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set stores v at element (i, j).
func (t *Tile) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Row returns the row-i slice, aliasing the tile's storage.
func (t *Tile) Row(i int) []float64 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// Clone returns a deep copy.
func (t *Tile) Clone() *Tile {
	c := New(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom overwrites t with the contents of src (dimensions must match).
func (t *Tile) CopyFrom(src *Tile) {
	if t.Rows != src.Rows || t.Cols != src.Cols {
		panic(fmt.Sprintf("tile: CopyFrom shape mismatch %dx%d vs %dx%d",
			t.Rows, t.Cols, src.Rows, src.Cols))
	}
	copy(t.Data, src.Data)
}

// AddFrom adds src into t element-wise (t += src); dimensions must match.
// This is the combine kernel of the replicated distributions' reductions:
// layer accumulators hold the negated partial update sums, so folding them
// toward the canonical tile is a plain addition.
func (t *Tile) AddFrom(src *Tile) {
	if t.Rows != src.Rows || t.Cols != src.Cols {
		panic(fmt.Sprintf("tile: AddFrom shape mismatch %dx%d vs %dx%d",
			t.Rows, t.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		t.Data[i] += v
	}
}

// Zero sets every element to 0.
func (t *Tile) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tile) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Eye overwrites t with the identity (1 on the main diagonal).
func (t *Tile) Eye() {
	t.Zero()
	n := t.Rows
	if t.Cols < n {
		n = t.Cols
	}
	for i := 0; i < n; i++ {
		t.Set(i, i, 1)
	}
}

// Random fills the tile with uniform values in [-1, 1) drawn from rng.
func (t *Tile) Random(rng *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = 2*rng.Float64() - 1
	}
}

// EqualApprox reports whether both tiles have the same shape and all elements
// within eps of each other.
func (t *Tile) EqualApprox(u *Tile, eps float64) bool {
	if t.Rows != u.Rows || t.Cols != u.Cols {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(v-u.Data[i]) > eps {
			return false
		}
	}
	return true
}

// FrobeniusNorm returns the Frobenius norm of the tile.
func (t *Tile) FrobeniusNorm() float64 {
	// Scaled accumulation to avoid overflow for large entries.
	scale, ssq := 0.0, 1.0
	for _, v := range t.Data {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the largest absolute element value.
func (t *Tile) MaxAbs() float64 {
	max := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Bytes returns the memory footprint of the tile payload, used by the
// communication layer and the simulator to size messages.
func (t *Tile) Bytes() int { return 8 * t.Rows * t.Cols }

package tile

import (
	"fmt"
	"math"
)

// Blocked LAPACK-style panel factorizations. Both kernels process the tile in
// factorNB-wide steps: a narrow panel is factored by (recursive) scalar code,
// the row/column panel is solved by the blocked TRSM, and the trailing
// submatrix — where all the O(n³) work lives — is updated through the packed
// GEMM microkernel (gemmView) or, for Cholesky, the SYRK view that itself
// routes its rectangle through gemmView.

// factorNB is the panel width of the blocked GETRF/POTRF. With nb ≪ n the
// scalar share of the work is O(nb·n²) against the O(n³) microkernel bulk;
// 48 measured best at the paper's tile size (64 and 96 are within a few
// percent, narrower panels start starving the trailing GEMM of depth).
const factorNB = 48

// getrfRecCut is the panel width below which the recursive LU panel
// factorization switches to the plain scalar loops.
const getrfRecCut = 16

// getrfBlocked is the blocked right-looking unpivoted LU driver behind Getrf.
func getrfBlocked(a *Tile) error {
	n := a.Rows
	ad, lda := a.Data, a.Cols
	for k := 0; k < n; k += factorNB {
		kb := factorNB
		if kb > n-k {
			kb = n - k
		}
		// Factor the tall (n-k)×kb panel in place.
		if err := getrfPanelView(ad[k*lda+k:], lda, n-k, kb, k); err != nil {
			return err
		}
		if k+kb < n {
			// Row panel: A[k:k+kb, k+kb:n] = L11⁻¹ · A[k:k+kb, k+kb:n].
			trsmBlockedView(Left, Lower, Unit, ad[k*lda+k:], lda, kb,
				ad[k*lda+k+kb:], lda, kb, n-k-kb)
			// Trailing update: A22 -= A21 · A12, the microkernel bulk.
			gemmView(-1,
				opView{data: ad[(k+kb)*lda+k:], ld: lda},
				opView{data: ad[k*lda+k+kb:], ld: lda},
				n-k-kb, n-k-kb, kb, ad[(k+kb)*lda+k+kb:], lda)
		}
	}
	return nil
}

// getrfPanelView factors the rows×cols (rows ≥ cols) panel at ad/lda by
// recursive halving, so even the panel's own O(rows·cols²) bulk runs as
// packed GEMM. off is the global pivot offset for error reporting.
func getrfPanelView(ad []float64, lda, rows, cols, off int) error {
	if cols <= getrfRecCut {
		return getrfScalarView(ad, lda, rows, cols, off)
	}
	c1 := cols / 2
	if err := getrfPanelView(ad, lda, rows, c1, off); err != nil {
		return err
	}
	// A01 = L00⁻¹ · A01 over the factored left half's unit-lower triangle.
	trsmScalarView(Left, Lower, Unit, ad, lda, c1, ad[c1:], lda, c1, cols-c1)
	// A11 -= A10 · A01 (rows ≥ cols > c1, so the trailing block is nonempty).
	gemmView(-1,
		opView{data: ad[c1*lda:], ld: lda},
		opView{data: ad[c1:], ld: lda},
		rows-c1, cols-c1, c1, ad[c1*lda+c1:], lda)
	return getrfPanelView(ad[c1*lda+c1:], lda, rows-c1, cols-c1, off+c1)
}

// getrfScalarView is the scalar right-looking LU of a rows×cols (rows ≥ cols)
// panel — the innermost factorization the blocked/recursive drivers bottom
// out in, and (over a full square view) the original unblocked kernel.
func getrfScalarView(ad []float64, lda, rows, cols, off int) error {
	for k := 0; k < cols; k++ {
		p := ad[k*lda+k]
		if p == 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("%w (step %d, pivot %g)", ErrZeroPivot, off+k+1, p)
		}
		ak := ad[k*lda : k*lda+cols]
		for i := k + 1; i < rows; i++ {
			ai := ad[i*lda : i*lda+cols]
			f := ai[k] / p
			ai[k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < cols; j++ {
				ai[j] -= f * ak[j]
			}
		}
	}
	return nil
}

// potrfBlocked is the blocked right-looking Cholesky driver behind Potrf.
// Only the lower triangle is read and written.
func potrfBlocked(a *Tile) error {
	n := a.Rows
	ad, lda := a.Data, a.Cols
	for k := 0; k < n; k += factorNB {
		kb := factorNB
		if kb > n-k {
			kb = n - k
		}
		if err := potrfScalarView(ad[k*lda+k:], lda, kb, k); err != nil {
			return err
		}
		if k+kb < n {
			// Column panel: A[k+kb:n, k:k+kb] = A[k+kb:n, k:k+kb] · L11⁻ᵀ.
			// Transpose the freshly factored diagonal block into a pooled
			// buffer so the solve runs on an effective upper triangle with
			// contiguous rows.
			buf := getPack(kb * kb)
			t := buf.Data
			diagBase := ad[k*lda+k:]
			for i := 0; i < kb; i++ {
				for j := 0; j <= i; j++ {
					t[j*kb+i] = diagBase[i*lda+j]
				}
			}
			trsmBlockedView(Right, Upper, NonUnit, t, kb, kb,
				ad[(k+kb)*lda+k:], lda, n-k-kb, kb)
			putPack(buf)
			// Trailing update: A22 -= P·Pᵀ on the lower triangle, through the
			// SYRK view (off-diagonal rectangles are packed GEMM).
			syrkView(Lower, -1, ad[(k+kb)*lda+k:], lda, n-k-kb, kb,
				ad[(k+kb)*lda+k+kb:], lda)
		}
	}
	return nil
}

// potrfScalarView is the scalar Cholesky of the nb×nb diagonal block at
// ad/lda (lower triangle only) — and, over a full view, the original
// unblocked kernel. off is the global leading-minor offset for errors.
func potrfScalarView(ad []float64, lda, nb, off int) error {
	for k := 0; k < nb; k++ {
		d := ad[k*lda+k]
		if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("%w (leading minor %d, pivot %g)", ErrNotPositiveDefinite, off+k+1, d)
		}
		d = math.Sqrt(d)
		ad[k*lda+k] = d
		for i := k + 1; i < nb; i++ {
			ad[i*lda+k] /= d
		}
		for j := k + 1; j < nb; j++ {
			f := ad[j*lda+k]
			if f == 0 {
				continue
			}
			for i := j; i < nb; i++ {
				ad[i*lda+j] -= ad[i*lda+k] * f
			}
		}
	}
	return nil
}

package tile

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Cache blocking parameters of the panel-blocked GEMM. One packed B panel is
// gemmKC×n (streamed once per k-panel), one packed A panel is gemmMC×gemmKC
// and stays L2-resident while the microkernel sweeps the B panel. The
// microkernel tile itself is gemmMR×gemmNR (per-architecture constants, see
// kernel_*.go) and accumulates in registers over the full panel depth.
const (
	gemmMC = 64  // rows of op(A) per packed panel
	gemmKC = 240 // panel depth shared by the packed A and B panels
)

// gemmSmallDim: below this m·n·k volume the packing overhead outweighs the
// microkernel's throughput and the direct loops win (empirically ~24³ on
// amd64; the distributed tests run tiles as small as 4×4).
const gemmSmallVolume = 24 * 24 * 24

// gemmParMinVolume is the m·n·k volume above which gemmView fans the gemmMC
// row panels of one k-panel out across goroutines. Each spawned worker costs
// a goroutine handoff plus its own packed-A buffer, so only multiplies with
// several panels' worth of microkernel work per worker can win it back.
const gemmParMinVolume = 128 * 128 * 128

// opView is a read-only view of op(X) for a row-major operand X: plain
// (i,j) ↦ data[i*ld+j] access, or the transposed view (i,j) ↦ data[j*ld+i].
// Offsetting data lets SYRK carve sub-panels out of one operand.
type opView struct {
	data  []float64
	ld    int
	trans bool
}

// packPool recycles pack/transpose scratch through the shape-keyed tile pool
// the communication layer also uses. Buffers are 1×n tiles, so each distinct
// scratch size keeps its own free list and concurrent kernel workers draw
// disjoint buffers instead of fighting over one shared growable slice.
var packPool Pool

// getPack returns an n-element scratch buffer as a pooled 1×n tile; contents
// are unspecified. Release with putPack.
func getPack(n int) *Tile { return packPool.Get(1, n) }

func putPack(t *Tile) { packPool.Put(t) }

// packA writes rows [ii, ii+ib) × depth [kk, kk+kb) of op(A) into dst as
// gemmMR-row strips: strip s holds rows ii+s·MR .. interleaved by depth,
// dst[s·MR·kb + l·MR + r] = op(A)[ii+s·MR+r][kk+l], zero-padded to full
// strips so the microkernel never reads past the matrix edge.
func packA(dst []float64, a opView, ii, ib, kk, kb int) {
	idx := 0
	for i0 := 0; i0 < ib; i0 += gemmMR {
		rows := ib - i0
		if rows > gemmMR {
			rows = gemmMR
		}
		if !a.trans {
			for r := 0; r < rows; r++ {
				src := a.data[(ii+i0+r)*a.ld+kk : (ii+i0+r)*a.ld+kk+kb]
				d := idx + r
				for l := 0; l < kb; l++ {
					dst[d] = src[l]
					d += gemmMR
				}
			}
			if rows < gemmMR {
				for l := 0; l < kb; l++ {
					for r := rows; r < gemmMR; r++ {
						dst[idx+l*gemmMR+r] = 0
					}
				}
			}
		} else {
			for l := 0; l < kb; l++ {
				src := a.data[(kk+l)*a.ld+ii+i0 : (kk+l)*a.ld+ii+i0+rows]
				d := idx + l*gemmMR
				for r := 0; r < rows; r++ {
					dst[d+r] = src[r]
				}
				for r := rows; r < gemmMR; r++ {
					dst[d+r] = 0
				}
			}
		}
		idx += kb * gemmMR
	}
}

// packB writes depth [kk, kk+kb) × all n columns of op(B) into dst as
// gemmNR-column strips: dst[t·NR·kb + l·NR + c] = op(B)[kk+l][t·NR+c],
// zero-padded on the last strip.
func packB(dst []float64, b opView, kk, kb, n int) {
	idx := 0
	for j0 := 0; j0 < n; j0 += gemmNR {
		cols := n - j0
		if cols > gemmNR {
			cols = gemmNR
		}
		if !b.trans {
			for l := 0; l < kb; l++ {
				src := b.data[(kk+l)*b.ld+j0 : (kk+l)*b.ld+j0+cols]
				d := idx + l*gemmNR
				for c := 0; c < cols; c++ {
					dst[d+c] = src[c]
				}
				for c := cols; c < gemmNR; c++ {
					dst[d+c] = 0
				}
			}
		} else {
			for c := 0; c < cols; c++ {
				src := b.data[(j0+c)*b.ld+kk : (j0+c)*b.ld+kk+kb]
				d := idx + c
				for l := 0; l < kb; l++ {
					dst[d] = src[l]
					d += gemmNR
				}
			}
			if cols < gemmNR {
				for l := 0; l < kb; l++ {
					for c := cols; c < gemmNR; c++ {
						dst[idx+l*gemmNR+c] = 0
					}
				}
			}
		}
		idx += kb * gemmNR
	}
}

// gemmWorkers decides the fan-out of one gemmView call: capped by GOMAXPROCS
// (the kernel should not oversubscribe what the engine's task-level workers
// already use) and by the number of gemmMC row panels (finer splitting than
// one panel per worker buys nothing).
func gemmWorkers(m, n, k int) int {
	if m*n*k < gemmParMinVolume {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if np := (m + gemmMC - 1) / gemmMC; w > np {
		w = np
	}
	if w < 1 {
		w = 1
	}
	return w
}

// gemmView computes C[0:m][0:n] += alpha · op(A) · op(B) over packed panels,
// where C is the row-major block cdata with leading dimension ldc. All four
// transpose combinations route through here; the packing stage absorbs the
// layout differences so one microkernel serves them all.
//
// Large multiplies run the gemmMC row panels of each k-panel on up to
// GOMAXPROCS goroutines. Both paths execute the identical per-panel sweep
// with the identical serial kk loop, so every C element sees the same
// floating-point operation order regardless of the worker count — results
// are bit-identical across GOMAXPROCS settings.
func gemmView(alpha float64, a, b opView, m, n, k int, cdata []float64, ldc int) {
	nStrips := (n + gemmNR - 1) / gemmNR
	bp := getPack(gemmKC * nStrips * gemmNR)
	defer putPack(bp)

	if workers := gemmWorkers(m, n, k); workers > 1 {
		gemmViewParallel(alpha, a, b, m, n, k, cdata, ldc, bp.Data, workers)
		return
	}

	ap := getPack(gemmMC * gemmKC)
	defer putPack(ap)
	for kk := 0; kk < k; kk += gemmKC {
		kb := k - kk
		if kb > gemmKC {
			kb = gemmKC
		}
		packB(bp.Data, b, kk, kb, n)
		for ii := 0; ii < m; ii += gemmMC {
			ib := m - ii
			if ib > gemmMC {
				ib = gemmMC
			}
			packA(ap.Data, a, ii, ib, kk, kb)
			gemmPanelSweep(alpha, ap.Data, bp.Data, ii, ib, kb, n, cdata, ldc)
		}
	}
}

// gemmViewParallel is gemmView's multi-core path: per k-panel, B is packed
// once (shared read-only by everyone), then workers goroutines pull gemmMC
// row panels off an atomic counter, each packing A into its own pooled
// buffer. Row panels write disjoint C rows, so the only synchronization is
// the panel counter and the per-k-panel join; the serial kk loop preserves
// the exact FP accumulation order of the single-threaded path.
func gemmViewParallel(alpha float64, a, b opView, m, n, k int, cdata []float64, ldc int, bp []float64, workers int) {
	nPanels := (m + gemmMC - 1) / gemmMC
	for kk := 0; kk < k; kk += gemmKC {
		kb := k - kk
		if kb > gemmKC {
			kb = gemmKC
		}
		packB(bp, b, kk, kb, n)
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				ap := getPack(gemmMC * gemmKC)
				defer putPack(ap)
				for {
					p := int(next.Add(1)) - 1
					if p >= nPanels {
						return
					}
					ii := p * gemmMC
					ib := m - ii
					if ib > gemmMC {
						ib = gemmMC
					}
					packA(ap.Data, a, ii, ib, kk, kb)
					gemmPanelSweep(alpha, ap.Data, bp, ii, ib, kb, n, cdata, ldc)
				}
			}()
		}
		wg.Wait()
	}
}

// gemmPanelSweep runs the microkernel over one packed A panel (rows
// [ii, ii+ib), depth kb) against the full packed B panel, accumulating into
// C rows [ii, ii+ib). Shared by the serial and parallel drivers.
func gemmPanelSweep(alpha float64, ap, bp []float64, ii, ib, kb, n int, cdata []float64, ldc int) {
	for i0 := 0; i0 < ib; i0 += gemmMR {
		rows := ib - i0
		if rows > gemmMR {
			rows = gemmMR
		}
		aps := ap[i0*kb:]
		for j0 := 0; j0 < n; j0 += gemmNR {
			cols := n - j0
			if cols > gemmNR {
				cols = gemmNR
			}
			bps := bp[j0*kb:]
			if rows == gemmMR && cols == gemmNR {
				microKernel(aps, bps, kb, alpha, cdata[(ii+i0)*ldc+j0:], ldc)
			} else {
				// Edge tile: compute into a zeroed scratch block and
				// fold only the in-bounds part into C.
				var scratch [gemmMR * gemmNR]float64
				microKernel(aps, bps, kb, alpha, scratch[:], gemmNR)
				for r := 0; r < rows; r++ {
					crow := cdata[(ii+i0+r)*ldc+j0 : (ii+i0+r)*ldc+j0+cols]
					srow := scratch[r*gemmNR : r*gemmNR+cols]
					for c := range crow {
						crow[c] += srow[c]
					}
				}
			}
		}
	}
}

// microScalar is the architecture-independent microkernel: a plain-Go
// gemmMR×gemmNR register block over the packed strips. The asm kernels
// replace it where available; it also serves the edge cases of archs whose
// preferred shape has no scalar specialization.
func microScalar(ap, bp []float64, kb int, alpha float64, c []float64, ldc int) {
	var acc [gemmMR * gemmNR]float64
	for l := 0; l < kb; l++ {
		as := ap[l*gemmMR : l*gemmMR+gemmMR : l*gemmMR+gemmMR]
		bs := bp[l*gemmNR : l*gemmNR+gemmNR : l*gemmNR+gemmNR]
		for r := 0; r < gemmMR; r++ {
			ar := as[r]
			row := acc[r*gemmNR : r*gemmNR+gemmNR : r*gemmNR+gemmNR]
			for j := 0; j < gemmNR; j++ {
				row[j] += ar * bs[j]
			}
		}
	}
	for r := 0; r < gemmMR; r++ {
		crow := c[r*ldc : r*ldc+gemmNR : r*ldc+gemmNR]
		row := acc[r*gemmNR : r*gemmNR+gemmNR : r*gemmNR+gemmNR]
		for j := 0; j < gemmNR; j++ {
			crow[j] += alpha * row[j]
		}
	}
}

package tile

import "sync"

// Cache blocking parameters of the panel-blocked GEMM. One packed B panel is
// gemmKC×n (streamed once per k-panel), one packed A panel is gemmMC×gemmKC
// and stays L2-resident while the microkernel sweeps the B panel. The
// microkernel tile itself is gemmMR×gemmNR (per-architecture constants, see
// kernel_*.go) and accumulates in registers over the full panel depth.
const (
	gemmMC = 64  // rows of op(A) per packed panel
	gemmKC = 240 // panel depth shared by the packed A and B panels
)

// gemmSmallDim: below this m·n·k volume the packing overhead outweighs the
// microkernel's throughput and the direct loops win (empirically ~24³ on
// amd64; the distributed tests run tiles as small as 4×4).
const gemmSmallVolume = 24 * 24 * 24

// opView is a read-only view of op(X) for a row-major operand X: plain
// (i,j) ↦ data[i*ld+j] access, or the transposed view (i,j) ↦ data[j*ld+i].
// Offsetting data lets SYRK carve sub-panels out of one operand.
type opView struct {
	data  []float64
	ld    int
	trans bool
}

// packBuf recycles the packed-panel scratch buffers across Gemm/Syrk calls;
// buffers are grown to the largest panel seen and reused.
var packBuf = sync.Pool{New: func() any { b := make([]float64, 0); return &b }}

func getPackBuf(n int) *[]float64 {
	p := packBuf.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// packA writes rows [ii, ii+ib) × depth [kk, kk+kb) of op(A) into dst as
// gemmMR-row strips: strip s holds rows ii+s·MR .. interleaved by depth,
// dst[s·MR·kb + l·MR + r] = op(A)[ii+s·MR+r][kk+l], zero-padded to full
// strips so the microkernel never reads past the matrix edge.
func packA(dst []float64, a opView, ii, ib, kk, kb int) {
	idx := 0
	for i0 := 0; i0 < ib; i0 += gemmMR {
		rows := ib - i0
		if rows > gemmMR {
			rows = gemmMR
		}
		if !a.trans {
			for r := 0; r < rows; r++ {
				src := a.data[(ii+i0+r)*a.ld+kk : (ii+i0+r)*a.ld+kk+kb]
				d := idx + r
				for l := 0; l < kb; l++ {
					dst[d] = src[l]
					d += gemmMR
				}
			}
			if rows < gemmMR {
				for l := 0; l < kb; l++ {
					for r := rows; r < gemmMR; r++ {
						dst[idx+l*gemmMR+r] = 0
					}
				}
			}
		} else {
			for l := 0; l < kb; l++ {
				src := a.data[(kk+l)*a.ld+ii+i0 : (kk+l)*a.ld+ii+i0+rows]
				d := idx + l*gemmMR
				for r := 0; r < rows; r++ {
					dst[d+r] = src[r]
				}
				for r := rows; r < gemmMR; r++ {
					dst[d+r] = 0
				}
			}
		}
		idx += kb * gemmMR
	}
}

// packB writes depth [kk, kk+kb) × all n columns of op(B) into dst as
// gemmNR-column strips: dst[t·NR·kb + l·NR + c] = op(B)[kk+l][t·NR+c],
// zero-padded on the last strip.
func packB(dst []float64, b opView, kk, kb, n int) {
	idx := 0
	for j0 := 0; j0 < n; j0 += gemmNR {
		cols := n - j0
		if cols > gemmNR {
			cols = gemmNR
		}
		if !b.trans {
			for l := 0; l < kb; l++ {
				src := b.data[(kk+l)*b.ld+j0 : (kk+l)*b.ld+j0+cols]
				d := idx + l*gemmNR
				for c := 0; c < cols; c++ {
					dst[d+c] = src[c]
				}
				for c := cols; c < gemmNR; c++ {
					dst[d+c] = 0
				}
			}
		} else {
			for c := 0; c < cols; c++ {
				src := b.data[(j0+c)*b.ld+kk : (j0+c)*b.ld+kk+kb]
				d := idx + c
				for l := 0; l < kb; l++ {
					dst[d] = src[l]
					d += gemmNR
				}
			}
			if cols < gemmNR {
				for l := 0; l < kb; l++ {
					for c := cols; c < gemmNR; c++ {
						dst[idx+l*gemmNR+c] = 0
					}
				}
			}
		}
		idx += kb * gemmNR
	}
}

// gemmView computes C[0:m][0:n] += alpha · op(A) · op(B) over packed panels,
// where C is the row-major block cdata with leading dimension ldc. All four
// transpose combinations route through here; the packing stage absorbs the
// layout differences so one microkernel serves them all.
func gemmView(alpha float64, a, b opView, m, n, k int, cdata []float64, ldc int) {
	nStrips := (n + gemmNR - 1) / gemmNR
	bp := getPackBuf(gemmKC * nStrips * gemmNR)
	ap := getPackBuf(gemmMC * gemmKC)
	defer func() { packBuf.Put(bp); packBuf.Put(ap) }()

	for kk := 0; kk < k; kk += gemmKC {
		kb := k - kk
		if kb > gemmKC {
			kb = gemmKC
		}
		packB(*bp, b, kk, kb, n)
		for ii := 0; ii < m; ii += gemmMC {
			ib := m - ii
			if ib > gemmMC {
				ib = gemmMC
			}
			packA(*ap, a, ii, ib, kk, kb)
			for i0 := 0; i0 < ib; i0 += gemmMR {
				rows := ib - i0
				if rows > gemmMR {
					rows = gemmMR
				}
				aps := (*ap)[i0*kb:]
				for j0 := 0; j0 < n; j0 += gemmNR {
					cols := n - j0
					if cols > gemmNR {
						cols = gemmNR
					}
					bps := (*bp)[j0*kb:]
					if rows == gemmMR && cols == gemmNR {
						microKernel(aps, bps, kb, alpha, cdata[(ii+i0)*ldc+j0:], ldc)
					} else {
						// Edge tile: compute into a zeroed scratch block and
						// fold only the in-bounds part into C.
						var scratch [gemmMR * gemmNR]float64
						microKernel(aps, bps, kb, alpha, scratch[:], gemmNR)
						for r := 0; r < rows; r++ {
							crow := cdata[(ii+i0+r)*ldc+j0 : (ii+i0+r)*ldc+j0+cols]
							srow := scratch[r*gemmNR : r*gemmNR+cols]
							for c := range crow {
								crow[c] += srow[c]
							}
						}
					}
				}
			}
		}
	}
}

// microScalar is the architecture-independent microkernel: a plain-Go
// gemmMR×gemmNR register block over the packed strips. The asm kernels
// replace it where available; it also serves the edge cases of archs whose
// preferred shape has no scalar specialization.
func microScalar(ap, bp []float64, kb int, alpha float64, c []float64, ldc int) {
	var acc [gemmMR * gemmNR]float64
	for l := 0; l < kb; l++ {
		as := ap[l*gemmMR : l*gemmMR+gemmMR : l*gemmMR+gemmMR]
		bs := bp[l*gemmNR : l*gemmNR+gemmNR : l*gemmNR+gemmNR]
		for r := 0; r < gemmMR; r++ {
			ar := as[r]
			row := acc[r*gemmNR : r*gemmNR+gemmNR : r*gemmNR+gemmNR]
			for j := 0; j < gemmNR; j++ {
				row[j] += ar * bs[j]
			}
		}
	}
	for r := 0; r < gemmMR; r++ {
		crow := c[r*ldc : r*ldc+gemmNR : r*ldc+gemmNR]
		row := acc[r*gemmNR : r*gemmNR+gemmNR : r*gemmNR+gemmNR]
		for j := 0; j < gemmNR; j++ {
			crow[j] += alpha * row[j]
		}
	}
}

package tile

import (
	"math/rand"
	"testing"
)

// Kernel microbenchmarks at the paper's tile size (500) and a smaller one,
// used to sanity-check the machine model's per-core GFlop/s assumption
// against what this pure-Go implementation actually sustains.

func benchTiles(b *testing.B, n int) (*Tile, *Tile, *Tile) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	x, y, z := New(n, n), New(n, n), New(n, n)
	x.Random(rng)
	y.Random(rng)
	z.Random(rng)
	return x, y, z
}

func benchGemm(b *testing.B, n int) {
	x, y, z := benchTiles(b, n)
	b.SetBytes(int64(24 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(NoTrans, NoTrans, -1, x, y, 1, z)
	}
	b.ReportMetric(FlopsGemm(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkKernelGemm128(b *testing.B) { benchGemm(b, 128) }
func BenchmarkKernelGemm500(b *testing.B) { benchGemm(b, 500) }

func BenchmarkKernelGemmTransB500(b *testing.B) {
	x, y, z := benchTiles(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(NoTrans, TransT, -1, x, y, 1, z)
	}
	b.ReportMetric(FlopsGemm(500)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkKernelSyrk500(b *testing.B) {
	x, _, z := benchTiles(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Syrk(Lower, NoTrans, -1, x, 1, z)
	}
	b.ReportMetric(FlopsSyrk(500)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkKernelTrsm500(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := New(500, 500)
	a.Random(rng)
	for i := 0; i < 500; i++ {
		a.Set(i, i, 3)
	}
	x := New(500, 500)
	x.Random(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Trsm(Left, Lower, NoTrans, NonUnit, 1, a, x)
	}
	b.ReportMetric(FlopsTrsm(500)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkKernelTrsmRight500(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := New(500, 500)
	a.Random(rng)
	for i := 0; i < 500; i++ {
		a.Set(i, i, 3)
	}
	x := New(500, 500)
	x.Random(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Trsm(Right, Upper, NoTrans, NonUnit, 1, a, x)
	}
	b.ReportMetric(FlopsTrsm(500)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkKernelPotrf500(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	src := New(500, 500)
	for i := 0; i < 500; i++ {
		for j := 0; j <= i; j++ {
			v := 2*rng.Float64() - 1
			src.Set(i, j, v)
			src.Set(j, i, v)
		}
		src.Set(i, i, 600)
	}
	work := New(500, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work.CopyFrom(src)
		if err := Potrf(work); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(FlopsPotrf(500)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkKernelGetrf500(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	src := New(500, 500)
	src.Random(rng)
	for i := 0; i < 500; i++ {
		src.Set(i, i, 600)
	}
	work := New(500, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work.CopyFrom(src)
		if err := Getrf(work); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(FlopsGetrf(500)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

package tile

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// spdTile returns a random symmetric positive definite tile (diagonally
// dominant symmetric with positive diagonal).
func spdTile(rng *rand.Rand, n int) *Tile {
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := 2*rng.Float64() - 1
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		a.Set(i, i, float64(n)+1+rng.Float64())
	}
	return a
}

// domTile returns a random diagonally dominant (non-symmetric) tile, safe for
// unpivoted LU.
func domTile(rng *rand.Rand, n int) *Tile {
	a := New(n, n)
	a.Random(rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, float64(n)+1+rng.Float64())
	}
	return a
}

func TestPotrfReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33} {
		a := spdTile(rng, n)
		orig := a.Clone()
		if err := Potrf(a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Build L explicitly and check L·Lᵀ == original.
		l := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				l.Set(i, j, a.At(i, j))
			}
		}
		llt := New(n, n)
		Gemm(NoTrans, TransT, 1, l, l, 0, llt)
		if !llt.EqualApprox(orig, 1e-9*float64(n)) {
			t.Fatalf("n=%d: L·Lᵀ does not reconstruct A", n)
		}
		// The strictly upper triangle must be untouched.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if a.At(i, j) != orig.At(i, j) {
					t.Fatalf("n=%d: Potrf modified upper element (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestPotrfRejectsIndefinite(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, -1)
	if err := Potrf(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("Potrf on indefinite matrix: err = %v", err)
	}
}

func TestGetrfReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33} {
		a := domTile(rng, n)
		orig := a.Clone()
		if err := Getrf(a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l := New(n, n)
		u := New(n, n)
		for i := 0; i < n; i++ {
			l.Set(i, i, 1)
			for j := 0; j < i; j++ {
				l.Set(i, j, a.At(i, j))
			}
			for j := i; j < n; j++ {
				u.Set(i, j, a.At(i, j))
			}
		}
		lu := New(n, n)
		Gemm(NoTrans, NoTrans, 1, l, u, 0, lu)
		if !lu.EqualApprox(orig, 1e-9*float64(n)) {
			t.Fatalf("n=%d: L·U does not reconstruct A", n)
		}
	}
}

func TestGetrfRejectsZeroPivot(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	if err := Getrf(a); !errors.Is(err, ErrZeroPivot) {
		t.Errorf("Getrf with zero pivot: err = %v", err)
	}
}

func TestFactorRejectsRect(t *testing.T) {
	// Shape violations are errors, not panics, so a malformed task aborts a
	// distributed run through the kernel-error path (PR 3 policy).
	for _, f := range []func() error{
		func() error { return Potrf(New(2, 3)) },
		func() error { return Getrf(New(3, 2)) },
	} {
		if err := f(); !errors.Is(err, ErrShape) {
			t.Errorf("rectangular factor: err = %v, want ErrShape", err)
		}
	}
}

// TestPotrfProperty: for random SPD matrices, the factor diagonal is positive
// and the reconstruction holds (testing/quick over seeds).
func TestPotrfProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := spdTile(rng, n)
		orig := a.Clone()
		if err := Potrf(a); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if a.At(i, i) <= 0 {
				return false
			}
		}
		l := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				l.Set(i, j, a.At(i, j))
			}
		}
		llt := New(n, n)
		Gemm(NoTrans, TransT, 1, l, l, 0, llt)
		return llt.EqualApprox(orig, 1e-8*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGetrfTrsmConsistency: factorizing [A B; C D] blockwise with the tile
// kernels matches factorizing the assembled 2n×2n tile directly — the
// essence of why the tiled algorithm is correct.
func TestGetrfTrsmConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 6
	big := domTile(rng, 2*n)
	// Copy blocks.
	blk := func(bi, bj int) *Tile {
		b := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, big.At(bi*n+i, bj*n+j))
			}
		}
		return b
	}
	a00, a01 := blk(0, 0), blk(0, 1)
	a10, a11 := blk(1, 0), blk(1, 1)

	if err := Getrf(big); err != nil {
		t.Fatal(err)
	}
	// Tiled algorithm.
	if err := Getrf(a00); err != nil {
		t.Fatal(err)
	}
	Trsm(Right, Upper, NoTrans, NonUnit, 1, a00, a10) // column panel
	Trsm(Left, Lower, NoTrans, Unit, 1, a00, a01)     // row panel
	Gemm(NoTrans, NoTrans, -1, a10, a01, 1, a11)      // trailing update
	if err := Getrf(a11); err != nil {
		t.Fatal(err)
	}

	check := func(bi, bj int, got *Tile) {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := big.At(bi*n+i, bj*n+j)
				if d := got.At(i, j) - want; d > 1e-8 || d < -1e-8 {
					t.Fatalf("block (%d,%d) element (%d,%d): got %g want %g",
						bi, bj, i, j, got.At(i, j), want)
				}
			}
		}
	}
	check(0, 0, a00)
	check(0, 1, a01)
	check(1, 0, a10)
	check(1, 1, a11)
}

func TestFlops(t *testing.T) {
	if FlopsGemm(10) != 2000 {
		t.Errorf("FlopsGemm(10) = %v", FlopsGemm(10))
	}
	if FlopsTrsm(10) != 1000 {
		t.Errorf("FlopsTrsm(10) = %v", FlopsTrsm(10))
	}
	if FlopsSyrk(10) != 1100 {
		t.Errorf("FlopsSyrk(10) = %v", FlopsSyrk(10))
	}
	// Cholesky of a b×b tile is a third of a cube; LU two thirds.
	if FlopsPotrf(9)*2 != FlopsGetrf(9) {
		t.Error("Potrf/Getrf flop ratio wrong")
	}
}

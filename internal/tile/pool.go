package tile

import "sync"

// Pool recycles tile buffers keyed by shape, so steady-state communication
// (one clone per published tile version) stops allocating once the working
// set has warmed up. Tiles returned by Get have unspecified contents — the
// caller is expected to overwrite them (CopyFrom / kernel output).
//
// A Pool must not be copied after first use. The zero value is ready to use.
type Pool struct {
	m sync.Map // shape key -> *sync.Pool of *Tile
}

func poolKey(rows, cols int) uint64 {
	return uint64(uint32(rows))<<32 | uint64(uint32(cols))
}

// Get returns a rows×cols tile, reusing a released buffer of the same shape
// when one is available. Contents are unspecified.
func (p *Pool) Get(rows, cols int) *Tile {
	if e, ok := p.m.Load(poolKey(rows, cols)); ok {
		if t, ok := e.(*sync.Pool).Get().(*Tile); ok && t != nil {
			return t
		}
	}
	return New(rows, cols)
}

// Put releases t back to the pool. The caller must not use t afterwards.
func (p *Pool) Put(t *Tile) {
	if t == nil {
		return
	}
	e, _ := p.m.LoadOrStore(poolKey(t.Rows, t.Cols), &sync.Pool{})
	e.(*sync.Pool).Put(t)
}

// Clone returns a pooled deep copy of src.
func (p *Pool) Clone(src *Tile) *Tile {
	t := p.Get(src.Rows, src.Cols)
	copy(t.Data, src.Data)
	return t
}

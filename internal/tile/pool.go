package tile

import (
	"sync"
	"sync/atomic"
)

// Pool recycles tile buffers keyed by shape, so steady-state communication
// (one clone per published tile version) stops allocating once the working
// set has warmed up. Tiles returned by Get have unspecified contents — the
// caller is expected to overwrite them (CopyFrom / kernel output).
//
// A Pool must not be copied after first use. The zero value is ready to use.
type Pool struct {
	m    sync.Map // shape key -> *sync.Pool of *Tile
	gets atomic.Int64
	puts atomic.Int64
}

func poolKey(rows, cols int) uint64 {
	return uint64(uint32(rows))<<32 | uint64(uint32(cols))
}

// Get returns a rows×cols tile, reusing a released buffer of the same shape
// when one is available. Contents are unspecified.
func (p *Pool) Get(rows, cols int) *Tile {
	p.gets.Add(1)
	if e, ok := p.m.Load(poolKey(rows, cols)); ok {
		if t, ok := e.(*sync.Pool).Get().(*Tile); ok && t != nil {
			return t
		}
	}
	return New(rows, cols)
}

// Put releases t back to the pool. The caller must not use t afterwards.
func (p *Pool) Put(t *Tile) {
	if t == nil {
		return
	}
	p.puts.Add(1)
	e, _ := p.m.LoadOrStore(poolKey(t.Rows, t.Cols), &sync.Pool{})
	e.(*sync.Pool).Put(t)
}

// Clone returns a pooled deep copy of src.
func (p *Pool) Clone(src *Tile) *Tile {
	t := p.Get(src.Rows, src.Cols)
	copy(t.Data, src.Data)
	return t
}

// Outstanding returns the number of tiles drawn from the pool and not yet
// returned (Gets minus Puts). Every borrower of a pooled buffer eventually
// puts it back — kernels within one call, message clones when the last
// recipient releases them — so a run that finished cleanly (or was cancelled
// and drained) leaves the pool balanced at zero. A persistently positive
// value is a leak: a payload share somebody forgot to Release. Momentarily
// negative values cannot occur (Put without Get hands the pool a foreign
// tile, which callers never do).
func (p *Pool) Outstanding() int64 {
	return p.gets.Load() - p.puts.Load()
}

package tile

import (
	"math"
	"math/rand"
	"testing"
)

// Golden tests for the blocked kernel rewrites: every Gemm/Syrk/Trsm variant
// on non-square and odd-sized tiles, compared element-wise against the
// straightforward triple-loop references below. The sizes deliberately cross
// the blocking boundaries (gemmMR/gemmNR strips, gemmMC row panels, gemmKC
// depth panels, syrkBlock columns, trsmRB rows) so edge and interior paths
// are both exercised — the blocked implementations cannot silently change
// numerics without failing here.

// naiveSyrk is the reference three-loop rank-k update, writing only the uplo
// triangle.
func naiveSyrk(uplo Uplo, trans Trans, alpha float64, a *Tile, beta float64, c *Tile) *Tile {
	n, k := opDims(trans, a)
	opA := func(i, l int) float64 {
		if trans == NoTrans {
			return a.At(i, l)
		}
		return a.At(l, i)
	}
	out := c.Clone()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (uplo == Lower && j > i) || (uplo == Upper && j < i) {
				continue
			}
			s := 0.0
			for l := 0; l < k; l++ {
				s += opA(i, l) * opA(j, l)
			}
			base := 0.0
			if beta != 0 { // 0·NaN must not leak
				base = beta * c.At(i, j)
			}
			out.Set(i, j, alpha*s+base)
		}
	}
	return out
}

// naiveTrsm is the reference substitution solve over the dense effective
// op(A), column by column (Left) or row by row (Right).
func naiveTrsm(side Side, uplo Uplo, trans Trans, diag Diag, alpha float64, a, b *Tile) *Tile {
	n := a.Rows
	e := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := a.At(i, j)
			if trans == TransT {
				v = a.At(j, i)
			}
			if (uplo == Lower) != (trans == TransT) { // effective lower
				if j > i {
					v = 0
				}
			} else {
				if j < i {
					v = 0
				}
			}
			e.Set(i, j, v)
		}
	}
	if diag == Unit {
		for i := 0; i < n; i++ {
			e.Set(i, i, 1)
		}
	}
	effLower := (uplo == Lower) != (trans == TransT)
	x := b.Clone()
	for i := range x.Data {
		x.Data[i] *= alpha
	}
	if side == Left {
		// Solve E·X = alpha·B one column at a time.
		for col := 0; col < b.Cols; col++ {
			if effLower {
				for i := 0; i < n; i++ {
					s := x.At(i, col)
					for l := 0; l < i; l++ {
						s -= e.At(i, l) * x.At(l, col)
					}
					x.Set(i, col, s/e.At(i, i))
				}
			} else {
				for i := n - 1; i >= 0; i-- {
					s := x.At(i, col)
					for l := i + 1; l < n; l++ {
						s -= e.At(i, l) * x.At(l, col)
					}
					x.Set(i, col, s/e.At(i, i))
				}
			}
		}
		return x
	}
	// Right: solve X·E = alpha·B one row at a time.
	for row := 0; row < b.Rows; row++ {
		if effLower {
			for j := n - 1; j >= 0; j-- {
				s := x.At(row, j)
				for l := j + 1; l < n; l++ {
					s -= x.At(row, l) * e.At(l, j)
				}
				x.Set(row, j, s/e.At(j, j))
			}
		} else {
			for j := 0; j < n; j++ {
				s := x.At(row, j)
				for l := 0; l < j; l++ {
					s -= x.At(row, l) * e.At(l, j)
				}
				x.Set(row, j, s/e.At(j, j))
			}
		}
	}
	return x
}

func maxAbsDiff(got, want *Tile) float64 {
	m := 0.0
	for i := range got.Data {
		if d := math.Abs(got.Data[i] - want.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// TestGoldenGemm: all four Trans combinations on odd, non-square shapes that
// straddle the panel boundaries, with accumulating, scaling and overwriting
// beta values.
func TestGoldenGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {23, 24, 25}, // below the small-path cutoff
		{33, 17, 9}, {64, 8, 241},  // crossing gemmMR/gemmNR/gemmKC edges
		{67, 45, 251},              // odd everything, k past one KC panel
		{130, 257, 65},             // m past two MC panels, n past many strips
		{5, 300, 300}, {300, 5, 300},
	}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		for _, ta := range []Trans{NoTrans, TransT} {
			for _, tb := range []Trans{NoTrans, TransT} {
				for _, coef := range [][2]float64{{1, 1}, {-1, 1}, {0.5, 0}, {2, -0.25}} {
					alpha, beta := coef[0], coef[1]
					a := New(m, k)
					if ta == TransT {
						a = New(k, m)
					}
					b := New(k, n)
					if tb == TransT {
						b = New(n, k)
					}
					a.Random(rng)
					b.Random(rng)
					c := New(m, n)
					c.Random(rng)
					want := naiveGemm(ta, tb, alpha, a, b, beta, c)
					Gemm(ta, tb, alpha, a, b, beta, c)
					if d := maxAbsDiff(c, want); d > 1e-12*float64(k+1) {
						t.Fatalf("Gemm(%v,%v) m=%d n=%d k=%d alpha=%g beta=%g: max diff %g",
							ta, tb, m, n, k, alpha, beta, d)
					}
				}
			}
		}
	}
}

// TestGoldenGemmBetaZeroNaN: beta == 0 must overwrite C even when the old
// contents are NaN/Inf (the 0·NaN bug the zero-fill path fixes), on both the
// small and the blocked path.
func TestGoldenGemmBetaZeroNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, s := range [][3]int{{4, 4, 4}, {67, 45, 251}} {
		m, n, k := s[0], s[1], s[2]
		a, b := New(m, k), New(k, n)
		a.Random(rng)
		b.Random(rng)
		c := New(m, n)
		for i := range c.Data {
			c.Data[i] = math.NaN()
		}
		c.Set(0, 0, math.Inf(1))
		zero := New(m, n)
		want := naiveGemm(NoTrans, NoTrans, 1.5, a, b, 0, zero)
		Gemm(NoTrans, NoTrans, 1.5, a, b, 0, c)
		for i, v := range c.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("m=%d: beta=0 leaked non-finite old C at %d", m, i)
			}
			if math.Abs(v-want.Data[i]) > 1e-12*float64(k) {
				t.Fatalf("m=%d: beta=0 wrong value at %d", m, i)
			}
		}
	}
}

// TestGoldenSyrk: both triangles × both transposes on odd non-square
// op(A) shapes crossing syrkBlock and gemmKC, including beta = 0 over NaN.
func TestGoldenSyrk(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	shapes := [][2]int{{1, 1}, {7, 5}, {33, 65}, {65, 241}, {130, 33}, {129, 127}}
	for _, s := range shapes {
		n, k := s[0], s[1]
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, trans := range []Trans{NoTrans, TransT} {
				for _, coef := range [][2]float64{{1, 1}, {-1, 0.5}, {0.75, 0}} {
					alpha, beta := coef[0], coef[1]
					a := New(n, k)
					if trans == TransT {
						a = New(k, n)
					}
					a.Random(rng)
					c := New(n, n)
					c.Random(rng)
					if beta == 0 {
						// The triangle must be overwritten even over NaN.
						for i := range c.Data {
							c.Data[i] = math.NaN()
						}
					}
					orig := c.Clone()
					want := naiveSyrk(uplo, trans, alpha, a, beta, c)
					Syrk(uplo, trans, alpha, a, beta, c)
					for i := 0; i < n; i++ {
						for j := 0; j < n; j++ {
							inTri := (uplo == Lower && j <= i) || (uplo == Upper && j >= i)
							got, ref := c.At(i, j), want.At(i, j)
							if inTri {
								if math.IsNaN(got) || math.Abs(got-ref) > 1e-12*float64(k+1) {
									t.Fatalf("Syrk(%v,%v) n=%d k=%d beta=%g wrong at (%d,%d): got %g want %g",
										uplo, trans, n, k, beta, i, j, got, ref)
								}
							} else if o := orig.At(i, j); got != o && !(math.IsNaN(got) && math.IsNaN(o)) {
								t.Fatalf("Syrk(%v,%v) n=%d touched (%d,%d) outside triangle", uplo, trans, n, i, j)
							}
						}
					}
				}
			}
		}
	}
}

// TestGoldenTrsm: all 16 (side, uplo, trans, diag) combinations on odd
// non-square B, against the substitution reference, including row counts
// around the trsmRB blocking.
func TestGoldenTrsm(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	shapes := [][2]int{{1, 1}, {5, 3}, {33, 7}, {67, 45}, {64, 129}} // (n, other dim)
	for _, s := range shapes {
		n, m := s[0], s[1]
		for _, side := range []Side{Left, Right} {
			for _, uplo := range []Uplo{Lower, Upper} {
				for _, trans := range []Trans{NoTrans, TransT} {
					for _, diag := range []Diag{NonUnit, Unit} {
						a := New(n, n)
						a.Random(rng)
						for i := 0; i < n; i++ {
							// Keep the solve well conditioned; with Unit the
							// stored diagonal must be ignored, so poison it.
							if diag == Unit {
								a.Set(i, i, 1e30)
							} else {
								a.Set(i, i, 2+rng.Float64())
							}
						}
						var b *Tile
						if side == Left {
							b = New(n, m)
						} else {
							b = New(m, n)
						}
						b.Random(rng)
						alpha := 1.25
						want := naiveTrsm(side, uplo, trans, diag, alpha, a, b)
						Trsm(side, uplo, trans, diag, alpha, a, b)
						if d := maxAbsDiff(b, want); d > 1e-9 {
							t.Fatalf("Trsm(%v,%v,%v,%v) n=%d m=%d: max diff %g",
								side, uplo, trans, diag, n, m, d)
						}
					}
				}
			}
		}
	}
}

package tile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveGemm is the reference three-loop implementation.
func naiveGemm(transA, transB Trans, alpha float64, a, b *Tile, beta float64, c *Tile) *Tile {
	m, k := opDims(transA, a)
	_, n := opDims(transB, b)
	out := c.Clone()
	opA := func(i, l int) float64 {
		if transA == NoTrans {
			return a.At(i, l)
		}
		return a.At(l, i)
	}
	opB := func(l, j int) float64 {
		if transB == NoTrans {
			return b.At(l, j)
		}
		return b.At(j, l)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += opA(i, l) * opB(l, j)
			}
			out.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
	return out
}

func randomTile(rng *rand.Rand, rows, cols int) *Tile {
	t := New(rows, cols)
	t.Random(rng)
	return t
}

func TestGemmAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		m, n, k := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		alpha := 2*rng.Float64() - 1
		beta := 2*rng.Float64() - 1
		for _, ta := range []Trans{NoTrans, TransT} {
			for _, tb := range []Trans{NoTrans, TransT} {
				var a *Tile
				if ta == NoTrans {
					a = randomTile(rng, m, k)
				} else {
					a = randomTile(rng, k, m)
				}
				var b *Tile
				if tb == NoTrans {
					b = randomTile(rng, k, n)
				} else {
					b = randomTile(rng, n, k)
				}
				c := randomTile(rng, m, n)
				want := naiveGemm(ta, tb, alpha, a, b, beta, c)
				Gemm(ta, tb, alpha, a, b, beta, c)
				if !c.EqualApprox(want, 1e-12) {
					t.Fatalf("Gemm(%v,%v) mismatch at m=%d n=%d k=%d", ta, tb, m, n, k)
				}
			}
		}
	}
}

func TestGemmSpecialCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randomTile(rng, 4, 4), randomTile(rng, 4, 4)
	c := randomTile(rng, 4, 4)
	orig := c.Clone()
	// alpha = 0, beta = 1: no-op.
	Gemm(NoTrans, NoTrans, 0, a, b, 1, c)
	if !c.EqualApprox(orig, 0) {
		t.Error("alpha=0, beta=1 modified C")
	}
	// beta = 0: C = alpha A·B regardless of old C content.
	c2 := orig.Clone()
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c2)
	zero := New(4, 4)
	want := naiveGemm(NoTrans, NoTrans, 1, a, b, 0, zero)
	// Reference with beta=0 on the zero tile equals A·B.
	if !c2.EqualApprox(want, 1e-12) {
		t.Error("beta=0 did not overwrite C")
	}
}

func TestGemmPanicsOnShapeMismatch(t *testing.T) {
	a, b, c := New(2, 3), New(4, 2), New(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	Gemm(NoTrans, NoTrans, 1, a, b, 1, c)
}

func TestSyrkAgainstGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n, k := 1+rng.Intn(8), 1+rng.Intn(8)
		alpha, beta := 2*rng.Float64()-1, 2*rng.Float64()-1
		for _, trans := range []Trans{NoTrans, TransT} {
			var a *Tile
			if trans == NoTrans {
				a = randomTile(rng, n, k)
			} else {
				a = randomTile(rng, k, n)
			}
			for _, uplo := range []Uplo{Lower, Upper} {
				c := randomTile(rng, n, n)
				want := naiveGemm(trans, 1-trans, alpha, a, a, beta, c)
				got := c.Clone()
				Syrk(uplo, trans, alpha, a, beta, got)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						inTriangle := (uplo == Lower && j <= i) || (uplo == Upper && j >= i)
						if inTriangle {
							if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-12 {
								t.Fatalf("Syrk(%v,%v) wrong at (%d,%d)", uplo, trans, i, j)
							}
						} else if got.At(i, j) != c.At(i, j) {
							t.Fatalf("Syrk(%v,%v) touched (%d,%d) outside triangle", uplo, trans, i, j)
						}
					}
				}
			}
		}
	}
}

// TestTrsmSolves checks every (side, uplo, trans, diag) combination by
// verifying that the computed X satisfies the defining equation.
func TestTrsmSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	makeTriangular := func(n int, uplo Uplo, diag Diag) *Tile {
		a := randomTile(rng, n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (uplo == Lower && j > i) || (uplo == Upper && j < i) {
					a.Set(i, j, 0)
				}
			}
			// Keep the solve well conditioned.
			a.Set(i, i, 2+rng.Float64())
		}
		if diag == Unit {
			// The stored diagonal is ignored; leave junk there on purpose.
			for i := 0; i < n; i++ {
				a.Set(i, i, 1e30)
			}
		}
		return a
	}
	// effective builds the dense matrix op(A) that the solve is defined by.
	effective := func(a *Tile, trans Trans, diag Diag) *Tile {
		n := a.Rows
		e := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := a.At(i, j)
				if trans == TransT {
					v = a.At(j, i)
				}
				e.Set(i, j, v)
			}
		}
		if diag == Unit {
			for i := 0; i < n; i++ {
				e.Set(i, i, 1)
			}
		}
		return e
	}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		alpha := 1 + rng.Float64()
		for _, side := range []Side{Left, Right} {
			for _, uplo := range []Uplo{Lower, Upper} {
				for _, trans := range []Trans{NoTrans, TransT} {
					for _, diag := range []Diag{NonUnit, Unit} {
						a := makeTriangular(n, uplo, diag)
						var b *Tile
						if side == Left {
							b = randomTile(rng, n, m)
						} else {
							b = randomTile(rng, m, n)
						}
						orig := b.Clone()
						Trsm(side, uplo, trans, diag, alpha, a, b)
						opA := effective(a, trans, diag)
						if diag == Unit && trans == TransT {
							// effective() must also not use the junk diagonal
							// through the transpose path; it already reads
							// a.At(j,i) so fix the diagonal explicitly.
							for i := 0; i < n; i++ {
								opA.Set(i, i, 1)
							}
						}
						// Check op(A)·X = alpha·B (Left) or X·op(A) = alpha·B.
						var lhs *Tile
						if side == Left {
							lhs = New(n, m)
							Gemm(NoTrans, NoTrans, 1, opA, b, 0, lhs)
						} else {
							lhs = New(m, n)
							Gemm(NoTrans, NoTrans, 1, b, opA, 0, lhs)
						}
						for i := range lhs.Data {
							if math.Abs(lhs.Data[i]-alpha*orig.Data[i]) > 1e-9 {
								t.Fatalf("Trsm(%v,%v,%v,%v) residual %g at %d",
									side, uplo, trans, diag,
									lhs.Data[i]-alpha*orig.Data[i], i)
							}
						}
					}
				}
			}
		}
	}
}

func TestTrsmPanics(t *testing.T) {
	rect := New(2, 3)
	b := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("non-square A did not panic")
		}
	}()
	Trsm(Left, Lower, NoTrans, NonUnit, 1, rect, b)
}

// TestGemmAssociativityProperty: (A·B)·C == A·(B·C) within tolerance, a
// classic property-based check exercising accumulate order.
func TestGemmAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a, b, c := randomTile(rng, n, n), randomTile(rng, n, n), randomTile(rng, n, n)
		ab := New(n, n)
		Gemm(NoTrans, NoTrans, 1, a, b, 0, ab)
		abc1 := New(n, n)
		Gemm(NoTrans, NoTrans, 1, ab, c, 0, abc1)
		bc := New(n, n)
		Gemm(NoTrans, NoTrans, 1, b, c, 0, bc)
		abc2 := New(n, n)
		Gemm(NoTrans, NoTrans, 1, a, bc, 0, abc2)
		return abc1.EqualApprox(abc2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

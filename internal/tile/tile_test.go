package tile

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	a := New(2, 3)
	a.Set(1, 2, 5)
	if a.At(1, 2) != 5 || a.At(0, 0) != 0 {
		t.Fatal("Set/At broken")
	}
	if len(a.Row(1)) != 3 || a.Row(1)[2] != 5 {
		t.Fatal("Row broken")
	}
	if a.Bytes() != 48 {
		t.Fatalf("Bytes = %d, want 48", a.Bytes())
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0,1) did not panic")
		}
	}()
	New(0, 1)
}

func TestCloneCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(3, 3)
	a.Random(rng)
	b := a.Clone()
	if !a.EqualApprox(b, 0) {
		t.Fatal("clone differs")
	}
	b.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Fatal("clone shares storage")
	}
	c := New(3, 3)
	c.CopyFrom(a)
	if !c.EqualApprox(a, 0) {
		t.Fatal("CopyFrom differs")
	}
	defer func() {
		if recover() == nil {
			t.Error("CopyFrom shape mismatch did not panic")
		}
	}()
	New(2, 2).CopyFrom(a)
}

func TestZeroFillEye(t *testing.T) {
	a := New(2, 3)
	a.Fill(7)
	if a.At(1, 2) != 7 {
		t.Fatal("Fill broken")
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Fatal("Zero broken")
	}
	a.Eye()
	if a.At(0, 0) != 1 || a.At(1, 1) != 1 || a.At(0, 1) != 0 {
		t.Fatal("Eye broken")
	}
}

func TestNorms(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 4)
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
	// Scaled accumulation must survive huge entries.
	b := New(1, 2)
	b.Set(0, 0, 1e200)
	b.Set(0, 1, 1e200)
	if got := b.FrobeniusNorm(); math.IsInf(got, 0) || math.Abs(got-1e200*math.Sqrt2) > 1e190 {
		t.Errorf("FrobeniusNorm overflow handling broken: %v", got)
	}
}

func TestEqualApproxShapes(t *testing.T) {
	if New(2, 2).EqualApprox(New(2, 3), 1) {
		t.Error("different shapes reported equal")
	}
}

//go:build !amd64

package tile

// Generic microkernel shape: 2×4 keeps all eight accumulators in registers
// on any 16-register FP architecture.
const (
	gemmMR = 2
	gemmNR = 4
)

// MicroKernelName identifies the GEMM microkernel selected at startup, for
// benchmark metadata.
func MicroKernelName() string { return "scalar 2x4" }

// MicroKernelAccelerated reports whether a SIMD microkernel is in use;
// always false on architectures without an assembly kernel.
func MicroKernelAccelerated() bool { return false }

// microKernel applies one 2×4 register-tiled block update over packed strips
// ap (MR-interleaved) and bp (NR-interleaved): eight independent multiply-add
// chains, enough ILP to saturate a scalar FPU.
func microKernel(ap, bp []float64, kb int, alpha float64, c []float64, ldc int) {
	var c00, c01, c02, c03, c10, c11, c12, c13 float64
	for l := 0; l < kb; l++ {
		as := ap[l*2 : l*2+2 : l*2+2]
		bs := bp[l*4 : l*4+4 : l*4+4]
		a0, a1 := as[0], as[1]
		b0, b1, b2, b3 := bs[0], bs[1], bs[2], bs[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	r0 := c[0:4:4]
	r1 := c[ldc : ldc+4 : ldc+4]
	r0[0] += alpha * c00
	r0[1] += alpha * c01
	r0[2] += alpha * c02
	r0[3] += alpha * c03
	r1[0] += alpha * c10
	r1[1] += alpha * c11
	r1[2] += alpha * c12
	r1[3] += alpha * c13
}

//go:build amd64

package tile

// The amd64 microkernel shape: a 4×8 block of C accumulated in eight YMM
// registers by the AVX2+FMA kernel (kernel_amd64.s). CPUs without AVX2/FMA
// (or builds where the OS masks YMM state) fall back to the scalar block.
const (
	gemmMR = 4
	gemmNR = 8
)

// hasAVX2FMA is probed once at startup via CPUID/XGETBV.
var hasAVX2FMA = cpuHasAVX2FMA()

// cpuHasAVX2FMA reports whether the CPU and OS support AVX2 and FMA3
// (implemented in kernel_amd64.s).
func cpuHasAVX2FMA() bool

// fmaMicro4x8 computes C[r][0:8] += alpha·Σ_l ap[l·4+r]·bp[l·8+0:8] for
// r = 0..3, where C starts at c with leading dimension ldc (elements).
// Implemented in kernel_amd64.s; requires AVX2+FMA.
//
//go:noescape
func fmaMicro4x8(ap, bp *float64, kb int, alpha float64, c *float64, ldc int)

// MicroKernelName identifies the GEMM microkernel selected at startup, for
// benchmark metadata: results are only comparable across boxes that ran the
// same kernel.
func MicroKernelName() string {
	if hasAVX2FMA {
		return "avx2+fma 4x8"
	}
	return "scalar 4x8"
}

// MicroKernelAccelerated reports whether the SIMD microkernel is in use
// (false on CPUs or builds where the runtime fell back to the scalar block).
func MicroKernelAccelerated() bool { return hasAVX2FMA }

// microKernel applies one gemmMR×gemmNR register-tiled block update over
// packed strips ap (MR-interleaved) and bp (NR-interleaved).
func microKernel(ap, bp []float64, kb int, alpha float64, c []float64, ldc int) {
	if hasAVX2FMA && kb > 0 {
		fmaMicro4x8(&ap[0], &bp[0], kb, alpha, &c[0], ldc)
		return
	}
	microScalar(ap, bp, kb, alpha, c, ldc)
}

//go:build amd64

#include "textflag.h"

// func cpuHasAVX2FMA() bool
//
// CPUID feature probe: FMA3 + AVX (leaf 1 ECX), OS YMM state (OSXSAVE +
// XGETBV XCR0 bits 1:2), AVX2 (leaf 7 EBX bit 5).
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, DI
	ANDL $(1<<12 | 1<<27 | 1<<28), DI // FMA | OSXSAVE | AVX
	CMPL DI, $(1<<12 | 1<<27 | 1<<28)
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX // XCR0: XMM|YMM state enabled by the OS
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func fmaMicro4x8(ap, bp *float64, kb int, alpha float64, c *float64, ldc int)
//
// The register-tiled GEMM microkernel: a 4×8 block of C lives in Y0..Y7
// while the loop streams one packed A strip (4-interleaved) and one packed
// B strip (8-interleaved), issuing 8 FMAs per depth step. The write-back
// folds alpha in: C[r][0:8] += alpha·acc[r].
TEXT ·fmaMicro4x8(SB), NOSPLIT, $0-48
	MOVQ ap+0(FP), SI
	MOVQ bp+8(FP), DI
	MOVQ kb+16(FP), CX
	MOVQ c+32(FP), DX
	MOVQ ldc+40(FP), R8
	SHLQ $3, R8 // leading dimension in bytes

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ CX, CX
	JZ    writeback

loop:
	VMOVUPD      (DI), Y8
	VMOVUPD      32(DI), Y9
	VBROADCASTSD (SI), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 8(SI), Y11
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 16(SI), Y12
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VBROADCASTSD 24(SI), Y13
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         $32, SI
	ADDQ         $64, DI
	DECQ         CX
	JNZ          loop

writeback:
	VBROADCASTSD alpha+24(FP), Y10

	VMOVUPD     (DX), Y11
	VMOVUPD     32(DX), Y12
	VFMADD231PD Y0, Y10, Y11
	VFMADD231PD Y1, Y10, Y12
	VMOVUPD     Y11, (DX)
	VMOVUPD     Y12, 32(DX)
	ADDQ        R8, DX

	VMOVUPD     (DX), Y11
	VMOVUPD     32(DX), Y12
	VFMADD231PD Y2, Y10, Y11
	VFMADD231PD Y3, Y10, Y12
	VMOVUPD     Y11, (DX)
	VMOVUPD     Y12, 32(DX)
	ADDQ        R8, DX

	VMOVUPD     (DX), Y11
	VMOVUPD     32(DX), Y12
	VFMADD231PD Y4, Y10, Y11
	VFMADD231PD Y5, Y10, Y12
	VMOVUPD     Y11, (DX)
	VMOVUPD     Y12, 32(DX)
	ADDQ        R8, DX

	VMOVUPD     (DX), Y11
	VMOVUPD     32(DX), Y12
	VFMADD231PD Y6, Y10, Y11
	VFMADD231PD Y7, Y10, Y12
	VMOVUPD     Y11, (DX)
	VMOVUPD     Y12, 32(DX)

	VZEROUPPER
	RET

package tile

import (
	"fmt"
	"math"
)

// The scalar reference kernels: the pre-blocking implementations of Trsm,
// Syrk, Getrf and Potrf, retained verbatim so the golden tests can diff the
// blocked rewrites against the exact code they replaced (on top of the
// independent naive triple-loop references). They live in a _test file —
// production code bottoms out in the view-based scalar cores instead.

// trsmRef is the original substitution-only Trsm: row-sliced forward/backward
// substitution on the left, trsmRB-row-blocked substitution on the right.
func trsmRef(side Side, uplo Uplo, trans Trans, diag Diag, alpha float64, a, b *Tile) {
	if a.Rows != a.Cols {
		panic("tile: Trsm needs a square triangular tile")
	}
	n := a.Rows
	if (side == Left && b.Rows != n) || (side == Right && b.Cols != n) {
		panic(fmt.Sprintf("tile: Trsm shape mismatch: A=%dx%d B=%dx%d side=%d",
			a.Rows, a.Cols, b.Rows, b.Cols, side))
	}
	if alpha != 1 {
		for i := range b.Data {
			b.Data[i] *= alpha
		}
	}
	ad, lda := a.Data, a.Cols
	effUplo := uplo
	if trans == TransT {
		buf := getPack(n * n)
		t := buf.Data
		for i := 0; i < n; i++ {
			src := a.Row(i)
			for j, v := range src {
				t[j*n+i] = v
			}
		}
		ad, lda = t, n
		defer putPack(buf)
		if uplo == Lower {
			effUplo = Upper
		} else {
			effUplo = Lower
		}
	}

	switch {
	case side == Left && effUplo == Lower:
		for i := 0; i < n; i++ {
			bi := b.Row(i)
			ai := ad[i*lda : i*lda+n]
			for k := 0; k < i; k++ {
				f := ai[k]
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] -= f * bk[j]
				}
			}
			if diag == NonUnit {
				d := ai[i]
				for j := range bi {
					bi[j] /= d
				}
			}
		}
	case side == Left && effUplo == Upper:
		for i := n - 1; i >= 0; i-- {
			bi := b.Row(i)
			ai := ad[i*lda : i*lda+n]
			for k := i + 1; k < n; k++ {
				f := ai[k]
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] -= f * bk[j]
				}
			}
			if diag == NonUnit {
				d := ai[i]
				for j := range bi {
					bi[j] /= d
				}
			}
		}
	case side == Right && effUplo == Lower:
		for r0 := 0; r0 < b.Rows; r0 += trsmRB {
			r1 := r0 + trsmRB
			if r1 > b.Rows {
				r1 = b.Rows
			}
			for j := n - 1; j >= 0; j-- {
				aj := ad[j*lda : j*lda+n]
				d := aj[j]
				for r := r0; r < r1; r++ {
					br := b.Row(r)
					if diag == NonUnit {
						br[j] /= d
					}
					f := br[j]
					if f == 0 {
						continue
					}
					head := br[:j]
					ah := aj[:j]
					for idx := range head {
						head[idx] -= f * ah[idx]
					}
				}
			}
		}
	default: // side == Right && effUplo == Upper
		for r0 := 0; r0 < b.Rows; r0 += trsmRB {
			r1 := r0 + trsmRB
			if r1 > b.Rows {
				r1 = b.Rows
			}
			for j := 0; j < n; j++ {
				aj := ad[j*lda : j*lda+n]
				d := aj[j]
				for r := r0; r < r1; r++ {
					br := b.Row(r)
					if diag == NonUnit {
						br[j] /= d
					}
					f := br[j]
					if f == 0 {
						continue
					}
					tail := br[j+1:]
					at := aj[j+1:]
					for idx := range tail {
						tail[idx] -= f * at[idx]
					}
				}
			}
		}
	}
}

// syrkRef is the original Syrk whose diagonal triangles run scalar dot
// products (off-diagonal panels already used the packed GEMM).
func syrkRef(uplo Uplo, trans Trans, alpha float64, a *Tile, beta float64, c *Tile) {
	n, k := opDims(trans, a)
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("tile: Syrk shape mismatch: op(A)=%dx%d C=%dx%d", n, k, c.Rows, c.Cols))
	}
	if beta != 1 {
		for i := 0; i < n; i++ {
			var row []float64
			if uplo == Lower {
				row = c.Row(i)[:i+1]
			} else {
				row = c.Row(i)[i:]
			}
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if alpha == 0 {
		return
	}

	ad, lda := a.Data, a.Cols
	if trans == TransT {
		buf := getPack(n * k)
		t := buf.Data
		for l := 0; l < k; l++ {
			src := a.Row(l)
			for i, v := range src {
				t[i*k+l] = v
			}
		}
		ad, lda = t, k
		defer putPack(buf)
	}

	for j0 := 0; j0 < n; j0 += syrkBlock {
		j1 := j0 + syrkBlock
		if j1 > n {
			j1 = n
		}
		rows := opView{data: ad[j0*lda:], ld: lda, trans: true}
		if uplo == Lower && j1 < n {
			gemmView(alpha,
				opView{data: ad[j1*lda:], ld: lda},
				rows,
				n-j1, j1-j0, k, c.Data[j1*c.Cols+j0:], c.Cols)
		}
		if uplo == Upper && j0 > 0 {
			gemmView(alpha,
				opView{data: ad, ld: lda},
				rows,
				j0, j1-j0, k, c.Data[j0:], c.Cols)
		}
		for i := j0; i < j1; i++ {
			ri := ad[i*lda : i*lda+k]
			crow := c.Row(i)
			var lo, hi int
			if uplo == Lower {
				lo, hi = j0, i
			} else {
				lo, hi = i, j1-1
			}
			for j := lo; j <= hi; j++ {
				rj := ad[j*lda : j*lda+k]
				s := 0.0
				for l, v := range ri {
					s += v * rj[l]
				}
				crow[j] += alpha * s
			}
		}
	}
}

// potrfRef is the original unblocked element-at-a-time Cholesky.
func potrfRef(a *Tile) error {
	n := a.Rows
	for k := 0; k < n; k++ {
		d := a.At(k, k)
		if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("%w (leading minor %d, pivot %g)", ErrNotPositiveDefinite, k+1, d)
		}
		d = math.Sqrt(d)
		a.Set(k, k, d)
		for i := k + 1; i < n; i++ {
			a.Set(i, k, a.At(i, k)/d)
		}
		for j := k + 1; j < n; j++ {
			f := a.At(j, k)
			if f == 0 {
				continue
			}
			for i := j; i < n; i++ {
				a.Data[i*a.Cols+j] -= a.At(i, k) * f
			}
		}
	}
	return nil
}

// getrfRef is the original unblocked element-at-a-time right-looking LU.
func getrfRef(a *Tile) error {
	n := a.Rows
	for k := 0; k < n; k++ {
		p := a.At(k, k)
		if p == 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("%w (step %d, pivot %g)", ErrZeroPivot, k+1, p)
		}
		ak := a.Row(k)
		for i := k + 1; i < n; i++ {
			ai := a.Row(i)
			f := ai[k] / p
			ai[k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				ai[j] -= f * ak[j]
			}
		}
	}
	return nil
}

package tile

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Potrf when a leading minor is not
// positive definite.
var ErrNotPositiveDefinite = errors.New("tile: matrix not positive definite")

// ErrZeroPivot is returned by Getrf when an exactly zero (or non-finite)
// pivot is encountered; the unpivoted factorization cannot continue.
var ErrZeroPivot = errors.New("tile: zero pivot in unpivoted LU")

// Potrf computes the Cholesky factorization A = L·Lᵀ of a symmetric positive
// definite tile in place, using only the lower triangle. On return the lower
// triangle of A holds L; the strictly upper triangle is left untouched.
// This is the diagonal-tile kernel of the tiled Cholesky factorization.
func Potrf(a *Tile) error {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("tile: Potrf needs a square tile, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	for k := 0; k < n; k++ {
		d := a.At(k, k)
		if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("%w (leading minor %d, pivot %g)", ErrNotPositiveDefinite, k+1, d)
		}
		d = math.Sqrt(d)
		a.Set(k, k, d)
		for i := k + 1; i < n; i++ {
			a.Set(i, k, a.At(i, k)/d)
		}
		for j := k + 1; j < n; j++ {
			f := a.At(j, k)
			if f == 0 {
				continue
			}
			for i := j; i < n; i++ {
				a.Data[i*a.Cols+j] -= a.At(i, k) * f
			}
		}
	}
	return nil
}

// Getrf computes the unpivoted LU factorization A = L·U in place: on return
// the strictly lower triangle holds the multipliers of the unit-lower L and
// the upper triangle (with diagonal) holds U. The paper's communication
// analysis covers the right-looking unpivoted variant; callers must supply
// matrices for which pivoting is unnecessary (e.g. diagonally dominant).
func Getrf(a *Tile) error {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("tile: Getrf needs a square tile, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	for k := 0; k < n; k++ {
		p := a.At(k, k)
		if p == 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("%w (step %d, pivot %g)", ErrZeroPivot, k+1, p)
		}
		ak := a.Row(k)
		for i := k + 1; i < n; i++ {
			ai := a.Row(i)
			f := ai[k] / p
			ai[k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				ai[j] -= f * ak[j]
			}
		}
	}
	return nil
}

// Flops returns the floating-point operation counts of the four kernels for
// square tiles of size b, as used by the simulator's machine model. Values
// follow the standard LAPACK conventions.
func FlopsGemm(b int) float64  { n := float64(b); return 2 * n * n * n }
func FlopsSyrk(b int) float64  { n := float64(b); return n * n * (n + 1) }
func FlopsTrsm(b int) float64  { n := float64(b); return n * n * n }
func FlopsPotrf(b int) float64 { n := float64(b); return n * n * n / 3 }
func FlopsGetrf(b int) float64 { n := float64(b); return 2 * n * n * n / 3 }

package tile

import (
	"errors"
	"fmt"
)

// ErrNotPositiveDefinite is returned by Potrf when a leading minor is not
// positive definite.
var ErrNotPositiveDefinite = errors.New("tile: matrix not positive definite")

// ErrZeroPivot is returned by Getrf when an exactly zero (or non-finite)
// pivot is encountered; the unpivoted factorization cannot continue.
var ErrZeroPivot = errors.New("tile: zero pivot in unpivoted LU")

// ErrShape is returned by Getrf and Potrf when the tile is not square.
// Shape violations surface as errors (not panics) so a malformed task
// aborts the distributed run through the usual kernel-error path.
var ErrShape = errors.New("tile: invalid tile shape")

// Potrf computes the Cholesky factorization A = L·Lᵀ of a symmetric positive
// definite tile in place, using only the lower triangle. On return the lower
// triangle of A holds L; the strictly upper triangle is left untouched.
// This is the diagonal-tile kernel of the tiled Cholesky factorization.
//
// The implementation is blocked (factor_blocked.go): scalar Cholesky runs
// only on factorNB-wide diagonal blocks; the panel solve goes through the
// blocked TRSM and the trailing update through the packed SYRK/GEMM
// microkernel machinery.
func Potrf(a *Tile) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("%w: Potrf needs a square tile, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	return potrfBlocked(a)
}

// Getrf computes the unpivoted LU factorization A = L·U in place: on return
// the strictly lower triangle holds the multipliers of the unit-lower L and
// the upper triangle (with diagonal) holds U. The paper's communication
// analysis covers the right-looking unpivoted variant; callers must supply
// matrices for which pivoting is unnecessary (e.g. diagonally dominant).
//
// The implementation is blocked (factor_blocked.go): a recursive scalar
// panel factorization, a blocked-TRSM row-panel solve, and a packed-GEMM
// trailing update carry the O(n³) bulk at the microkernel's rate.
func Getrf(a *Tile) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("%w: Getrf needs a square tile, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	return getrfBlocked(a)
}

// Flops returns the floating-point operation counts of the four kernels for
// square tiles of size b, as used by the simulator's machine model. Values
// follow the standard LAPACK conventions.
func FlopsGemm(b int) float64  { n := float64(b); return 2 * n * n * n }
func FlopsGeadd(b int) float64 { n := float64(b); return n * n }
func FlopsSyrk(b int) float64  { n := float64(b); return n * n * (n + 1) }
func FlopsTrsm(b int) float64  { n := float64(b); return n * n * n }
func FlopsPotrf(b int) float64 { n := float64(b); return n * n * n / 3 }
func FlopsGetrf(b int) float64 { n := float64(b); return 2 * n * n * n / 3 }

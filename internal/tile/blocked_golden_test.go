package tile

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// Golden tests for the blocked kernel rewrites against the retained scalar
// reference kernels (ref_test.go): every side/uplo/trans/diag combination on
// odd, non-multiple-of-nb sizes that straddle all the blocking boundaries
// (trsmNB, factorNB, getrfRecCut, syrkBlock, syrkDiagMinDepth, gemmKC), so
// interior blocks, edge blocks and the scalar fallbacks are all exercised.
// The references are the exact implementations the blocked code replaced;
// golden_test.go separately checks both against naive triple loops.

// blockedSizes cross every blocking boundary: 1 and 7 purely scalar, 63/65
// straddle factorNB=48 and syrkBlock=64, 129 crosses multiple trsmNB=24 and
// factorNB panels, 500 is the paper's tile size (past gemmKC=240 in depth).
var blockedSizes = []int{1, 7, 63, 65, 129, 500}

func TestGoldenTrsmBlockedVsRef(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range blockedSizes {
		m := n/2 + 1 // odd, non-multiple of every block size
		for _, side := range []Side{Left, Right} {
			for _, uplo := range []Uplo{Lower, Upper} {
				for _, trans := range []Trans{NoTrans, TransT} {
					for _, diag := range []Diag{NonUnit, Unit} {
						for _, alpha := range []float64{1.25, 1, 0} {
							a := New(n, n)
							a.Random(rng)
							for i := 0; i < n; i++ {
								if diag == Unit {
									// The stored diagonal must be ignored.
									a.Set(i, i, 1e30)
								} else {
									a.Set(i, i, 2+rng.Float64())
								}
							}
							var b *Tile
							if side == Left {
								b = New(n, m)
							} else {
								b = New(m, n)
							}
							b.Random(rng)
							want := b.Clone()
							trsmRef(side, uplo, trans, diag, alpha, a, want)
							Trsm(side, uplo, trans, diag, alpha, a, b)
							// Relative bound: triangular solutions can grow
							// with n, and the two orderings accumulate
							// roundoff proportional to the solution scale.
							scale := 1.0
							for _, v := range want.Data {
								if av := math.Abs(v); av > scale {
									scale = av
								}
							}
							tol := 1e-12 * float64(n) * scale
							if d := maxAbsDiff(b, want); d > tol || math.IsNaN(d) {
								t.Fatalf("Trsm(%v,%v,%v,%v) n=%d m=%d alpha=%g: max diff vs reference %g",
									side, uplo, trans, diag, n, m, alpha, d)
							}
						}
					}
				}
			}
		}
	}
}

// TestGoldenTrsmAlphaZero: alpha == 0 must zero-fill B without reading A,
// even when the old contents of B are non-finite (the Gemm beta == 0
// contract, which the scale-by-zero path of the reference leaked NaN
// through).
func TestGoldenTrsmAlphaZero(t *testing.T) {
	a := New(65, 65)
	a.Eye()
	b := New(65, 33)
	for i := range b.Data {
		b.Data[i] = math.NaN()
	}
	Trsm(Left, Lower, NoTrans, NonUnit, 0, a, b)
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("alpha=0 left B[%d] = %g, want 0", i, v)
		}
	}
}

func TestGoldenSyrkBlockedVsRef(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range blockedSizes {
		for _, k := range []int{1, 31, 65, 241} {
			for _, uplo := range []Uplo{Lower, Upper} {
				for _, trans := range []Trans{NoTrans, TransT} {
					for _, coef := range [][2]float64{{-1, 1}, {0.5, 0}, {0, 1}} {
						alpha, beta := coef[0], coef[1]
						a := New(n, k)
						if trans == TransT {
							a = New(k, n)
						}
						a.Random(rng)
						c := New(n, n)
						c.Random(rng)
						want := c.Clone()
						syrkRef(uplo, trans, alpha, a, beta, want)
						Syrk(uplo, trans, alpha, a, beta, c)
						if d := maxAbsDiff(c, want); d > 1e-12*float64(k+1) || math.IsNaN(d) {
							t.Fatalf("Syrk(%v,%v) n=%d k=%d alpha=%g beta=%g: max diff vs reference %g",
								uplo, trans, n, k, alpha, beta, d)
						}
					}
				}
			}
		}
	}
}

func TestGoldenGetrfBlockedVsRef(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range blockedSizes {
		a := domTile(rng, n)
		want := a.Clone()
		if err := getrfRef(want); err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		if err := Getrf(a); err != nil {
			t.Fatalf("n=%d: blocked: %v", n, err)
		}
		// Diagonally dominant input: both factorizations are stable and the
		// factors agree to roundoff accumulated over n updates.
		if d := maxAbsDiff(a, want); d > 1e-11*float64(n+1) || math.IsNaN(d) {
			t.Fatalf("Getrf n=%d: max factor diff vs reference %g", n, d)
		}
	}
}

func TestGoldenPotrfBlockedVsRef(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, n := range blockedSizes {
		a := spdTile(rng, n)
		orig := a.Clone()
		want := a.Clone()
		if err := potrfRef(want); err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		if err := Potrf(a); err != nil {
			t.Fatalf("n=%d: blocked: %v", n, err)
		}
		if d := maxAbsDiff(a, want); d > 1e-11*float64(n+1) || math.IsNaN(d) {
			t.Fatalf("Potrf n=%d: max factor diff vs reference %g", n, d)
		}
		// The strictly upper triangle must be untouched by the blocked paths.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if a.At(i, j) != orig.At(i, j) {
					t.Fatalf("Potrf n=%d: modified upper element (%d,%d)", n, i, j)
				}
			}
		}
	}
}

// TestBlockedFactorErrorOffsets: a failure deep inside a later panel must
// report the *global* pivot/minor index, not the panel-local one.
func TestBlockedFactorErrorOffsets(t *testing.T) {
	n := 129 // three factorNB panels
	a := New(n, n)
	a.Eye()
	for i := 0; i < n; i++ {
		a.Set(i, i, 2)
	}
	a.Set(70, 70, 0) // inside the second panel
	err := Getrf(a)
	if !errors.Is(err, ErrZeroPivot) {
		t.Fatalf("Getrf: err = %v, want ErrZeroPivot", err)
	}
	if !strings.Contains(err.Error(), "step 71") {
		t.Errorf("Getrf error lost the global step: %v", err)
	}

	b := New(n, n)
	b.Eye()
	for i := 0; i < n; i++ {
		b.Set(i, i, 2)
	}
	b.Set(70, 70, -3)
	err = Potrf(b)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("Potrf: err = %v, want ErrNotPositiveDefinite", err)
	}
	if !strings.Contains(err.Error(), "minor 71") {
		t.Errorf("Potrf error lost the global minor index: %v", err)
	}
}

// TestBlockedFactorLargeReconstruct: at the paper's tile size the blocked
// factors must still reconstruct the input through the residual, the same
// bound the distributed factorization tests use.
func TestBlockedFactorLargeReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n := 500
	a := domTile(rng, n)
	orig := a.Clone()
	if err := Getrf(a); err != nil {
		t.Fatal(err)
	}
	l, u := New(n, n), New(n, n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < i; j++ {
			l.Set(i, j, a.At(i, j))
		}
		for j := i; j < n; j++ {
			u.Set(i, j, a.At(i, j))
		}
	}
	lu := New(n, n)
	Gemm(NoTrans, NoTrans, 1, l, u, 0, lu)
	num, den := 0.0, orig.FrobeniusNorm()
	for i, v := range lu.Data {
		num += (v - orig.Data[i]) * (v - orig.Data[i])
	}
	if res := math.Sqrt(num) / den; res > 1e-13 {
		t.Fatalf("‖A−LU‖/‖A‖ = %g", res)
	}
}

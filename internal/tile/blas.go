package tile

import "fmt"

// Trans selects whether an operand is used as-is or transposed.
type Trans int

// Side selects whether the triangular operand multiplies from the left or
// the right in Trsm.
type Side int

// Uplo selects the stored/used triangle of a triangular or symmetric matrix.
type Uplo int

// Diag declares whether a triangular matrix has an implicit unit diagonal.
type Diag int

// Enumeration values follow BLAS conventions.
const (
	NoTrans Trans = iota
	TransT

	Left Side = iota
	Right

	Lower Uplo = iota
	Upper

	NonUnit Diag = iota
	Unit
)

func opDims(t Trans, a *Tile) (rows, cols int) {
	if t == NoTrans {
		return a.Rows, a.Cols
	}
	return a.Cols, a.Rows
}

// Gemm computes C = alpha·op(A)·op(B) + beta·C, the general tile update
// kernel (the dominant task of both factorizations).
func Gemm(transA, transB Trans, alpha float64, a, b *Tile, beta float64, c *Tile) {
	m, k := opDims(transA, a)
	k2, n := opDims(transB, b)
	if k != k2 || c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("tile: Gemm shape mismatch: op(A)=%dx%d op(B)=%dx%d C=%dx%d",
			m, k, k2, n, c.Rows, c.Cols))
	}
	if beta != 1 {
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	switch {
	case transA == NoTrans && transB == NoTrans:
		// i-k-j order with row slices: streams B and C rows.
		for i := 0; i < m; i++ {
			ci := c.Row(i)
			ai := a.Row(i)
			for l := 0; l < k; l++ {
				s := alpha * ai[l]
				if s == 0 {
					continue
				}
				bl := b.Row(l)
				for j := 0; j < n; j++ {
					ci[j] += s * bl[j]
				}
			}
		}
	case transA == NoTrans && transB == TransT:
		// C[i][j] += alpha * dot(A row i, B row j).
		for i := 0; i < m; i++ {
			ci := c.Row(i)
			ai := a.Row(i)
			for j := 0; j < n; j++ {
				bj := b.Row(j)
				s := 0.0
				for l := 0; l < k; l++ {
					s += ai[l] * bj[l]
				}
				ci[j] += alpha * s
			}
		}
	case transA == TransT && transB == NoTrans:
		for l := 0; l < k; l++ {
			al := a.Row(l)
			bl := b.Row(l)
			for i := 0; i < m; i++ {
				s := alpha * al[i]
				if s == 0 {
					continue
				}
				ci := c.Row(i)
				for j := 0; j < n; j++ {
					ci[j] += s * bl[j]
				}
			}
		}
	default: // TransT, TransT
		for i := 0; i < m; i++ {
			ci := c.Row(i)
			for j := 0; j < n; j++ {
				bj := b.Row(j)
				s := 0.0
				for l := 0; l < k; l++ {
					s += a.At(l, i) * bj[l]
				}
				ci[j] += alpha * s
			}
		}
	}
}

// Syrk computes the symmetric rank-k update C = alpha·op(A)·op(A)ᵀ + beta·C,
// writing only the uplo triangle of C (including the diagonal). With
// trans == NoTrans, op(A) = A; with TransT, op(A) = Aᵀ.
func Syrk(uplo Uplo, trans Trans, alpha float64, a *Tile, beta float64, c *Tile) {
	n, k := opDims(trans, a)
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("tile: Syrk shape mismatch: op(A)=%dx%d C=%dx%d", n, k, c.Rows, c.Cols))
	}
	row := func(i int) func(l int) float64 {
		if trans == NoTrans {
			r := a.Row(i)
			return func(l int) float64 { return r[l] }
		}
		return func(l int) float64 { return a.At(l, i) }
	}
	for i := 0; i < n; i++ {
		var jLo, jHi int
		if uplo == Lower {
			jLo, jHi = 0, i
		} else {
			jLo, jHi = i, n-1
		}
		ri := row(i)
		for j := jLo; j <= jHi; j++ {
			rj := row(j)
			s := 0.0
			for l := 0; l < k; l++ {
				s += ri(l) * rj(l)
			}
			c.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
}

// Trsm solves a triangular system in place:
//
//	side == Left:  op(A) · X = alpha·B,  X overwrites B
//	side == Right: X · op(A) = alpha·B,  X overwrites B
//
// where A is triangular per uplo/diag. This is the panel-solve kernel: LU
// uses (Left, Lower, NoTrans, Unit) for row panels and (Right, Upper,
// NoTrans, NonUnit) for column panels; Cholesky uses (Right, Lower, TransT,
// NonUnit).
func Trsm(side Side, uplo Uplo, trans Trans, diag Diag, alpha float64, a, b *Tile) {
	if a.Rows != a.Cols {
		panic("tile: Trsm needs a square triangular tile")
	}
	n := a.Rows
	if (side == Left && b.Rows != n) || (side == Right && b.Cols != n) {
		panic(fmt.Sprintf("tile: Trsm shape mismatch: A=%dx%d B=%dx%d side=%d",
			a.Rows, a.Cols, b.Rows, b.Cols, side))
	}
	if alpha != 1 {
		for i := range b.Data {
			b.Data[i] *= alpha
		}
	}
	// Effective orientation: transposing a triangular matrix flips its uplo
	// and reflects its indices.
	at := func(i, j int) float64 {
		if trans == NoTrans {
			return a.At(i, j)
		}
		return a.At(j, i)
	}
	effUplo := uplo
	if trans == TransT {
		if uplo == Lower {
			effUplo = Upper
		} else {
			effUplo = Lower
		}
	}

	switch {
	case side == Left && effUplo == Lower:
		// Forward substitution on each column of B, row-sliced.
		for i := 0; i < n; i++ {
			bi := b.Row(i)
			for k := 0; k < i; k++ {
				f := at(i, k)
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] -= f * bk[j]
				}
			}
			if diag == NonUnit {
				d := at(i, i)
				for j := range bi {
					bi[j] /= d
				}
			}
		}
	case side == Left && effUplo == Upper:
		for i := n - 1; i >= 0; i-- {
			bi := b.Row(i)
			for k := i + 1; k < n; k++ {
				f := at(i, k)
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] -= f * bk[j]
				}
			}
			if diag == NonUnit {
				d := at(i, i)
				for j := range bi {
					bi[j] /= d
				}
			}
		}
	case side == Right && effUplo == Lower:
		// X·A = B with A lower: solve columns right to left.
		for j := n - 1; j >= 0; j-- {
			if diag == NonUnit {
				d := at(j, j)
				for i := 0; i < b.Rows; i++ {
					b.Set(i, j, b.At(i, j)/d)
				}
			}
			for k := 0; k < j; k++ {
				f := at(j, k)
				if f == 0 {
					continue
				}
				for i := 0; i < b.Rows; i++ {
					b.Set(i, k, b.At(i, k)-b.At(i, j)*f)
				}
			}
		}
	default: // side == Right && effUplo == Upper
		// X·A = B with A upper: solve columns left to right.
		for j := 0; j < n; j++ {
			if diag == NonUnit {
				d := at(j, j)
				for i := 0; i < b.Rows; i++ {
					b.Set(i, j, b.At(i, j)/d)
				}
			}
			for k := j + 1; k < n; k++ {
				f := at(j, k)
				if f == 0 {
					continue
				}
				for i := 0; i < b.Rows; i++ {
					b.Set(i, k, b.At(i, k)-b.At(i, j)*f)
				}
			}
		}
	}
}

package tile

import "fmt"

// Trans selects whether an operand is used as-is or transposed.
type Trans int

// Side selects whether the triangular operand multiplies from the left or
// the right in Trsm.
type Side int

// Uplo selects the stored/used triangle of a triangular or symmetric matrix.
type Uplo int

// Diag declares whether a triangular matrix has an implicit unit diagonal.
type Diag int

// Enumeration values follow BLAS conventions.
const (
	NoTrans Trans = iota
	TransT

	Left Side = iota
	Right

	Lower Uplo = iota
	Upper

	NonUnit Diag = iota
	Unit
)

func opDims(t Trans, a *Tile) (rows, cols int) {
	if t == NoTrans {
		return a.Rows, a.Cols
	}
	return a.Cols, a.Rows
}

// Gemm computes C = alpha·op(A)·op(B) + beta·C, the general tile update
// kernel (the dominant task of both factorizations). Large tiles go through
// the cache-blocked, register-tiled panel kernel (gemm_blocked.go); small
// tiles use direct loops where packing overhead would dominate.
func Gemm(transA, transB Trans, alpha float64, a, b *Tile, beta float64, c *Tile) {
	m, k := opDims(transA, a)
	k2, n := opDims(transB, b)
	if k != k2 || c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("tile: Gemm shape mismatch: op(A)=%dx%d op(B)=%dx%d C=%dx%d",
			m, k, k2, n, c.Rows, c.Cols))
	}
	switch {
	case beta == 0:
		// Explicit zero-fill: with beta == 0 the old contents of C must not
		// contribute at all, even when they are NaN or Inf (0·NaN = NaN
		// would otherwise leak through the scaling path).
		c.Zero()
	case beta != 1:
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	if m*n*k < gemmSmallVolume {
		gemmSmall(transA, transB, alpha, a, b, c, m, n, k)
		return
	}
	gemmView(alpha,
		opView{data: a.Data, ld: a.Cols, trans: transA == TransT},
		opView{data: b.Data, ld: b.Cols, trans: transB == TransT},
		m, n, k, c.Data, c.Cols)
}

// gemmSmall handles tiles too small to amortize panel packing: the direct
// loop orders, row-sliced where the layout allows.
func gemmSmall(transA, transB Trans, alpha float64, a, b *Tile, c *Tile, m, n, k int) {
	switch {
	case transA == NoTrans && transB == NoTrans:
		// i-k-j order with row slices: streams B and C rows.
		for i := 0; i < m; i++ {
			ci := c.Row(i)
			ai := a.Row(i)
			for l := 0; l < k; l++ {
				s := alpha * ai[l]
				if s == 0 {
					continue
				}
				bl := b.Row(l)
				for j := 0; j < n; j++ {
					ci[j] += s * bl[j]
				}
			}
		}
	case transA == NoTrans && transB == TransT:
		// C[i][j] += alpha * dot(A row i, B row j).
		for i := 0; i < m; i++ {
			ci := c.Row(i)
			ai := a.Row(i)
			for j := 0; j < n; j++ {
				bj := b.Row(j)
				s := 0.0
				for l := 0; l < k; l++ {
					s += ai[l] * bj[l]
				}
				ci[j] += alpha * s
			}
		}
	case transA == TransT && transB == NoTrans:
		for l := 0; l < k; l++ {
			al := a.Row(l)
			bl := b.Row(l)
			for i := 0; i < m; i++ {
				s := alpha * al[i]
				if s == 0 {
					continue
				}
				ci := c.Row(i)
				for j := 0; j < n; j++ {
					ci[j] += s * bl[j]
				}
			}
		}
	default: // TransT, TransT
		for i := 0; i < m; i++ {
			ci := c.Row(i)
			for j := 0; j < n; j++ {
				bj := b.Row(j)
				s := 0.0
				for l := 0; l < k; l++ {
					s += a.At(l, i) * bj[l]
				}
				ci[j] += alpha * s
			}
		}
	}
}

// syrkBlock is the column-block width of the SYRK driver: off-diagonal
// column panels go through the blocked GEMM kernel, and diagonal blocks with
// enough depth run as a full square microkernel GEMM into a scratch block
// (folding only the triangle into C); only shallow or narrow diagonal blocks
// fall back to scalar dot loops.
const syrkBlock = 64

// Syrk computes the symmetric rank-k update C = alpha·op(A)·op(A)ᵀ + beta·C,
// writing only the uplo triangle of C (including the diagonal). With
// trans == NoTrans, op(A) = A; with TransT, op(A) = Aᵀ.
//
// The rows of op(A) are accessed as direct contiguous slices: for TransT the
// transpose is packed once into a pooled buffer (the transposed fast path),
// so no per-element accessors run in the inner loops.
func Syrk(uplo Uplo, trans Trans, alpha float64, a *Tile, beta float64, c *Tile) {
	n, k := opDims(trans, a)
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("tile: Syrk shape mismatch: op(A)=%dx%d C=%dx%d", n, k, c.Rows, c.Cols))
	}
	// Apply beta to the written triangle only, with the same 0·NaN guard as
	// Gemm.
	if beta != 1 {
		for i := 0; i < n; i++ {
			var row []float64
			if uplo == Lower {
				row = c.Row(i)[:i+1]
			} else {
				row = c.Row(i)[i:]
			}
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if alpha == 0 {
		return
	}

	// ad/lda view op(A) row-major: rows are contiguous slices of length k.
	ad, lda := a.Data, a.Cols
	if trans == TransT {
		buf := getPack(n * k)
		t := buf.Data
		for l := 0; l < k; l++ {
			src := a.Row(l)
			for i, v := range src {
				t[i*k+l] = v
			}
		}
		ad, lda = t, k
		defer putPack(buf)
	}
	syrkView(uplo, alpha, ad, lda, n, k, c.Data, c.Cols)
}

// syrkDiagMinDepth/syrkDiagMinWidth gate the scratch-GEMM diagonal path: a
// diagonal block only pays the ~2× flop overhead of computing its full
// square when the microkernel's rate more than wins it back.
const (
	syrkDiagMinDepth = 32
	syrkDiagMinWidth = 8
)

// syrkView accumulates C(triangle) += alpha · A·Aᵀ over the dense row-major
// view ad/lda holding n rows of depth k, writing only the uplo triangle of
// cdata/ldc (beta and transposes have been handled by the caller). Also the
// trailing-update kernel of the blocked Cholesky.
func syrkView(uplo Uplo, alpha float64, ad []float64, lda, n, k int, cdata []float64, ldc int) {
	for j0 := 0; j0 < n; j0 += syrkBlock {
		j1 := j0 + syrkBlock
		if j1 > n {
			j1 = n
		}
		// Off-diagonal panel: a plain GEMM block C[rows][j0:j1] +=
		// alpha·A[rows]·A[j0:j1]ᵀ through the blocked kernel.
		rows := opView{data: ad[j0*lda:], ld: lda, trans: true}
		if uplo == Lower && j1 < n {
			gemmView(alpha,
				opView{data: ad[j1*lda:], ld: lda},
				rows,
				n-j1, j1-j0, k, cdata[j1*ldc+j0:], ldc)
		}
		if uplo == Upper && j0 > 0 {
			gemmView(alpha,
				opView{data: ad, ld: lda},
				rows,
				j0, j1-j0, k, cdata[j0:], ldc)
		}
		bw := j1 - j0
		if k >= syrkDiagMinDepth && bw >= syrkDiagMinWidth {
			// Diagonal block: full bw×bw square through the microkernel into
			// a zeroed scratch block, then fold only the triangle into C.
			buf := getPack(bw * bw)
			s := buf.Data
			for i := range s {
				s[i] = 0
			}
			gemmView(alpha,
				opView{data: ad[j0*lda:], ld: lda},
				rows,
				bw, bw, k, s, bw)
			for i := 0; i < bw; i++ {
				crow := cdata[(j0+i)*ldc : (j0+i)*ldc+n]
				srow := s[i*bw : i*bw+bw]
				if uplo == Lower {
					for j := 0; j <= i; j++ {
						crow[j0+j] += srow[j]
					}
				} else {
					for j := i; j < bw; j++ {
						crow[j0+j] += srow[j]
					}
				}
			}
			putPack(buf)
			continue
		}
		// Shallow diagonal triangle: scalar dot products over contiguous rows.
		for i := j0; i < j1; i++ {
			ri := ad[i*lda : i*lda+k]
			crow := cdata[i*ldc : i*ldc+n]
			var lo, hi int
			if uplo == Lower {
				lo, hi = j0, i
			} else {
				lo, hi = i, j1-1
			}
			for j := lo; j <= hi; j++ {
				rj := ad[j*lda : j*lda+k]
				s := 0.0
				for l, v := range ri {
					s += v * rj[l]
				}
				crow[j] += alpha * s
			}
		}
	}
}

// Trsm solves a triangular system in place:
//
//	side == Left:  op(A) · X = alpha·B,  X overwrites B
//	side == Right: X · op(A) = alpha·B,  X overwrites B
//
// where A is triangular per uplo/diag. This is the panel-solve kernel: LU
// uses (Left, Lower, NoTrans, Unit) for row panels and (Right, Upper,
// NoTrans, NonUnit) for column panels; Cholesky uses (Right, Lower, TransT,
// NonUnit). All four side/uplo paths are blocked (trsm_blocked.go): scalar
// substitution runs only on trsmNB×trsmNB diagonal blocks and the remaining
// O(n²·rhs) work is packed GEMM. With alpha == 0, B is zero-filled and
// returned without reading A (matching Gemm's beta == 0 contract).
func Trsm(side Side, uplo Uplo, trans Trans, diag Diag, alpha float64, a, b *Tile) {
	if a.Rows != a.Cols {
		panic("tile: Trsm needs a square triangular tile")
	}
	n := a.Rows
	if (side == Left && b.Rows != n) || (side == Right && b.Cols != n) {
		panic(fmt.Sprintf("tile: Trsm shape mismatch: A=%dx%d B=%dx%d side=%d",
			a.Rows, a.Cols, b.Rows, b.Cols, side))
	}
	if alpha == 0 {
		b.Zero()
		return
	}
	if alpha != 1 {
		for i := range b.Data {
			b.Data[i] *= alpha
		}
	}
	// Work on op(A) directly: for TransT pack the transpose once into a
	// pooled buffer so every inner loop runs over contiguous rows of the
	// effective matrix. Transposing a triangular matrix flips its uplo.
	ad, lda := a.Data, a.Cols
	effUplo := uplo
	if trans == TransT {
		buf := getPack(n * n)
		t := buf.Data
		for i := 0; i < n; i++ {
			src := a.Row(i)
			for j, v := range src {
				t[j*n+i] = v
			}
		}
		ad, lda = t, n
		defer putPack(buf)
		if uplo == Lower {
			effUplo = Upper
		} else {
			effUplo = Lower
		}
	}
	trsmBlockedView(side, effUplo, diag, ad, lda, n, b.Data, b.Cols, b.Rows, b.Cols)
}

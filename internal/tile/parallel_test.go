package tile

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// withProcs runs f under a forced GOMAXPROCS and restores the old value.
func withProcs(t *testing.T, procs int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	f()
}

func seededTile(rows, cols int, seed int64) *Tile {
	return randomTile(rand.New(rand.NewSource(seed)), rows, cols)
}

// TestGemmBitIdenticalAcrossGOMAXPROCS: the parallel panel driver must
// produce bit-identical results for any GOMAXPROCS — the per-C-element FP
// accumulation order is the same serial kk loop in both paths, so this holds
// exactly, not approximately. Sizes straddle the parallel volume cutoff and
// include odd shapes whose last row panel and microkernel tiles are partial.
func TestGemmBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	sizes := [][3]int{
		{256, 256, 256}, // above cutoff, even panels
		{193, 161, 313}, // above cutoff, ragged edges in every dimension
		{96, 96, 96},    // below cutoff: must stay on the serial path
	}
	for _, sz := range sizes {
		m, n, k := sz[0], sz[1], sz[2]
		for _, ta := range []Trans{NoTrans, TransT} {
			for _, tb := range []Trans{NoTrans, TransT} {
				a := seededTile(m, k, 1)
				if ta == TransT {
					a = seededTile(k, m, 1)
				}
				b := seededTile(k, n, 2)
				if tb == TransT {
					b = seededTile(n, k, 2)
				}
				want := seededTile(m, n, 3)
				withProcs(t, 1, func() { Gemm(ta, tb, -0.5, a, b, 1, want) })
				for _, procs := range []int{2, 4, 8} {
					got := seededTile(m, n, 3)
					withProcs(t, procs, func() { Gemm(ta, tb, -0.5, a, b, 1, got) })
					if !got.EqualApprox(want, 0) {
						t.Fatalf("Gemm %dx%dx%d ta=%d tb=%d: GOMAXPROCS=%d differs from 1",
							m, n, k, ta, tb, procs)
					}
				}
			}
		}
	}
}

// TestBlockedKernelsBitIdenticalAcrossGOMAXPROCS: the blocked TRSM, SYRK,
// GETRF and POTRF all route their bulk through gemmView, so they inherit the
// parallel path — and must inherit its exact determinism too.
func TestBlockedKernelsBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	const n = 320 // trailing updates comfortably above the parallel cutoff
	run := func(name string, f func() *Tile) {
		var want *Tile
		withProcs(t, 1, func() { want = f() })
		for _, procs := range []int{2, 8} {
			var got *Tile
			withProcs(t, procs, func() { got = f() })
			if !got.EqualApprox(want, 0) {
				t.Fatalf("%s: GOMAXPROCS=%d differs from 1", name, procs)
			}
		}
	}

	run("Getrf", func() *Tile {
		a := domTile(rand.New(rand.NewSource(11)), n)
		if err := Getrf(a); err != nil {
			t.Fatal(err)
		}
		return a
	})
	run("Potrf", func() *Tile {
		a := spdTile(rand.New(rand.NewSource(12)), n)
		if err := Potrf(a); err != nil {
			t.Fatal(err)
		}
		return a
	})
	run("TrsmLeftLowerTrans", func() *Tile {
		a := domTile(rand.New(rand.NewSource(13)), n)
		b := seededTile(n, n, 14)
		Trsm(Left, Lower, TransT, NonUnit, 1, a, b)
		return b
	})
	run("SyrkTrans", func() *Tile {
		a := seededTile(n, n, 15)
		c := seededTile(n, n, 16)
		Syrk(Lower, TransT, -1, a, 2, c)
		return c
	})
}

// TestParallelGemmMatchesDirectLoops pins numeric correctness of the
// parallel path against the unblocked reference loops under a forced
// multi-proc setting, on shapes that exercise partial panels at every level.
func TestParallelGemmMatchesDirectLoops(t *testing.T) {
	const m, n, k = 257, 131, 301
	a := seededTile(m, k, 21)
	b := seededTile(k, n, 22)
	got := seededTile(m, n, 23)
	want := got.Clone()
	withProcs(t, 4, func() { Gemm(NoTrans, NoTrans, 1.5, a, b, -2, got) })
	// Reference: scale then accumulate with plain loops.
	for i := range want.Data {
		want.Data[i] *= -2
	}
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			s := 1.5 * a.At(i, l)
			for j := 0; j < n; j++ {
				want.Set(i, j, want.At(i, j)+s*b.At(l, j))
			}
		}
	}
	maxDiff := 0.0
	for i, v := range got.Data {
		if d := math.Abs(v - want.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-9*float64(k) {
		t.Fatalf("parallel Gemm deviates from reference loops by %g", maxDiff)
	}
}

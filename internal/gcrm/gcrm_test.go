package gcrm

import (
	"math"
	"math/rand"
	"testing"

	"anybc/internal/pattern"
)

func TestFeasible(t *testing.T) {
	cases := []struct {
		p, r int
		want bool
	}{
		// For P=23: r(r-1) must satisfy ⌈r(r-1)/23⌉ ≤ r²/23.
		{23, 23, true}, // 22·23/23 = 22 ≤ 23
		{23, 22, true}, // ⌈462/23⌉ = ⌈20.08⌉ = 21 ≤ 21.04
		{23, 2, false}, // ⌈2/23⌉ = 1 > 4/23
		{1, 2, true},
		{0, 5, false},
		{5, 0, false},
		{3, 2, false}, // r(r-1) = 2 < P: node 2 could never appear
	}
	for _, c := range cases {
		if got := Feasible(c.p, c.r); got != c.want {
			t.Errorf("Feasible(%d,%d) = %v, want %v", c.p, c.r, got, c.want)
		}
	}
	// Perfect-square-family sanity: for P = r(r-1)/2 the size r is feasible.
	for r := 3; r <= 12; r++ {
		if !Feasible(r*(r-1)/2, r) {
			t.Errorf("Feasible(%d, %d) = false for SBC pair size", r*(r-1)/2, r)
		}
	}
}

// TestBuildValidity checks structural invariants of built patterns over many
// (P, r) combinations: square, diagonal undefined, off-diagonal defined,
// all P nodes present, near-perfect balance.
func TestBuildValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, P := range []int{1, 2, 3, 5, 8, 13, 21, 23, 31, 35, 39} {
		for _, r := range FeasibleSizes(P, 3, 2) {
			pat, err := Build(P, r, rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				t.Fatalf("Build(%d,%d): %v", P, r, err)
			}
			if pat.Rows() != r || pat.Cols() != r {
				t.Fatalf("Build(%d,%d): dims %s", P, r, pat.Dims())
			}
			if pat.NumNodes() != P {
				t.Fatalf("Build(%d,%d): %d nodes in pattern", P, r, pat.NumNodes())
			}
			for i := 0; i < r; i++ {
				if pat.At(i, i) != pattern.Undefined {
					t.Fatalf("Build(%d,%d): diagonal cell (%d,%d) defined", P, r, i, i)
				}
				for j := 0; j < r; j++ {
					if i != j && pat.At(i, j) == pattern.Undefined {
						t.Fatalf("Build(%d,%d): off-diagonal cell (%d,%d) undefined", P, r, i, j)
					}
				}
			}
			// Balance: every node owns ⌊r(r-1)/P⌋ or ⌈r(r-1)/P⌉ cells.
			lo := r * (r - 1) / P
			hi := (r*(r-1) + P - 1) / P
			for n, cnt := range pat.Counts() {
				if cnt < lo || cnt > hi {
					t.Errorf("Build(%d,%d): node %d owns %d cells, want %d or %d",
						P, r, n, cnt, lo, hi)
				}
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(23, 22, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(23, 22, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed produced different patterns")
	}
}

func TestBuildErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Build(0, 5, rng); err == nil {
		t.Error("Build(0,5): want error")
	}
	if _, err := Build(5, 1, rng); err == nil {
		t.Error("Build(5,1): want error")
	}
	if _, err := Build(23, 2, rng); err == nil {
		t.Error("Build(23,2): infeasible size accepted")
	}
}

// TestSearchBeatsOrMatchesSBC verifies the paper's headline claim for the
// symmetric case: GCR&M patterns on all P nodes achieve costs comparable to
// or better than the SBC cost laws, and always well below 2DBC.
func TestSearchBeatsOrMatchesSBC(t *testing.T) {
	opts := SearchOptions{Seeds: 30, SizeFactor: 4, BaseSeed: 1, Parallel: true}
	for _, P := range []int{21, 23, 28, 31, 35} {
		res, err := Search(P, opts)
		if err != nil {
			t.Fatalf("Search(%d): %v", P, err)
		}
		sbcLaw := math.Sqrt(2 * float64(P))
		if res.Cost > sbcLaw+0.6 {
			t.Errorf("P=%d: GCR&M cost %.3f too far above SBC law %.3f", P, res.Cost, sbcLaw)
		}
		if limit := EmpiricalLowerLimit(P); res.Cost < limit-0.5 {
			t.Errorf("P=%d: GCR&M cost %.3f below the empirical limit %.3f — metric bug?",
				P, res.Cost, limit)
		}
	}
}

// TestSearchTableIb checks the legible GCR&M entries of the paper's Table Ib
// within a tolerance reflecting random search: P=23 → 6.045, P=31 → 7.065,
// and the text's "7.4" for P=35.
func TestSearchTableIb(t *testing.T) {
	if testing.Short() {
		t.Skip("search is expensive")
	}
	opts := DefaultSearchOptions()
	opts.Seeds = 60
	cases := []struct {
		p    int
		cost float64
	}{
		{23, 6.045},
		{31, 7.065},
		{35, 7.4},
	}
	for _, c := range cases {
		res, err := Search(c.p, opts)
		if err != nil {
			t.Fatalf("Search(%d): %v", c.p, err)
		}
		if math.Abs(res.Cost-c.cost) > 0.25 {
			t.Errorf("P=%d: GCR&M cost %.3f, paper reports %.3f", c.p, res.Cost, c.cost)
		}
	}
}

func TestSampleReturnsCandidates(t *testing.T) {
	opts := SearchOptions{Seeds: 5, SizeFactor: 3, BaseSeed: 9}
	res, all, err := Sample(23, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no candidates returned")
	}
	for _, c := range all {
		if c.Cost < res.Cost-1e-12 {
			t.Fatalf("candidate (r=%d seed=%d cost=%.3f) beats reported best %.3f",
				c.R, c.Seed, c.Cost, res.Cost)
		}
	}
}

func TestSearchDeterministicAcrossParallelism(t *testing.T) {
	seq := SearchOptions{Seeds: 10, SizeFactor: 3, BaseSeed: 4, Parallel: false}
	par := seq
	par.Parallel = true
	a, err := Search(23, seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(23, par)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.R != b.R || a.Seed != b.Seed {
		t.Fatalf("parallel search diverged: (%v,%d,%d) vs (%v,%d,%d)",
			a.Cost, a.R, a.Seed, b.Cost, b.R, b.Seed)
	}
	if !a.Pattern.Equal(b.Pattern) {
		t.Fatal("parallel search produced a different pattern")
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(0, DefaultSearchOptions()); err == nil {
		t.Error("Search(0): want error")
	}
	if _, err := Search(50, SearchOptions{Seeds: 1, SizeFactor: 0.1}); err == nil {
		t.Error("Search with tiny factor: want error")
	}
}

func TestFeasibleSizes(t *testing.T) {
	sizes := FeasibleSizes(23, 6, 2)
	if len(sizes) == 0 {
		t.Fatal("no feasible sizes for P=23")
	}
	max := int(6 * math.Sqrt(23))
	for _, r := range sizes {
		if !Feasible(23, r) || r > max {
			t.Errorf("size %d invalid", r)
		}
	}
}

func TestEmpiricalLowerLimit(t *testing.T) {
	if got := EmpiricalLowerLimit(6); math.Abs(got-3) > 1e-12 {
		t.Errorf("EmpiricalLowerLimit(6) = %v, want 3", got)
	}
}

// TestPhase1ReturnsAssignmentWithoutError: the greedy cover phase now plumbs
// an error instead of panicking; on feasible inputs it must succeed and cover
// every off-diagonal cell.
func TestPhase1ReturnsAssignmentWithoutError(t *testing.T) {
	for _, c := range []struct{ p, r int }{{23, 22}, {5, 4}, {1, 2}, {31, 9}} {
		a, err := phase1(c.p, c.r, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("phase1(%d,%d): %v", c.p, c.r, err)
		}
		for i := 0; i < c.r; i++ {
			for j := 0; j < c.r; j++ {
				if i == j {
					continue
				}
				coveredBySome := false
				for p := 0; p < c.p && !coveredBySome; p++ {
					coveredBySome = a.sets[p][i] && a.sets[p][j]
				}
				if !coveredBySome {
					t.Fatalf("phase1(%d,%d): cell (%d,%d) uncovered", c.p, c.r, i, j)
				}
			}
		}
	}
}

// TestBestColrowDetectsStall: the stall condition phase1 reports as an error
// — the least-loaded node already holding every colrow — must be detected as
// -1 rather than picking a bogus colrow (the old code panicked here).
func TestBestColrowDetectsStall(t *testing.T) {
	const r = 4
	a := &assignment{sets: []map[int]bool{{}}, usage: make([]int, r)}
	for q := 0; q < r; q++ {
		a.add(0, q)
	}
	covered := make([]bool, r*r)
	newCells := make([]int, r)
	if got := bestColrow(a, covered, newCells, 0, r); got != -1 {
		t.Fatalf("bestColrow on a saturated node = %d, want -1", got)
	}
	// Sanity: with one colrow missing it must pick exactly that one.
	b := &assignment{sets: []map[int]bool{{}}, usage: make([]int, r)}
	for q := 0; q < r-1; q++ {
		b.add(0, q)
	}
	if got := bestColrow(b, covered, newCells, 0, r); got != r-1 {
		t.Fatalf("bestColrow with colrow %d missing = %d", r-1, got)
	}
}

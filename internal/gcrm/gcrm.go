// Package gcrm implements the Greedy ColRow & Matching algorithm (GCR&M) of
// Section V of the paper: a heuristic that builds square symmetric
// distribution patterns for any number of nodes P, generalizing the Symmetric
// Block Cyclic distribution.
//
// The algorithm has two phases. Phase 1 greedily assigns colrows to nodes: as
// long as an off-diagonal cell remains uncovered, the least-loaded node
// receives the colrow that covers the most new cells (ties broken by lowest
// colrow usage, then randomly). A cell (i, j) is covered by a node once both
// colrows i and j are assigned to it. Phase 2 assigns cells to covering nodes
// through two bipartite matchings (first with ⌊r(r−1)/P⌋ duplicates per node,
// then with one extra duplicate for the leftovers), with a final greedy
// fallback for any cell that is still unassigned. Diagonal cells are left
// undefined and resolved at replication time (see dist.DiagResolver).
package gcrm

import (
	"fmt"
	"math"
	"math/rand"

	"anybc/internal/matching"
	"anybc/internal/pattern"
)

// Feasible reports whether a balanced r×r pattern can exist for P nodes,
// i.e. whether Equation (3) of the paper holds: ⌈r(r−1)/P⌉ ≤ r²/P.
// It additionally requires r(r−1) ≥ P: since an undefined diagonal cell can
// only be assigned to a node already on its colrow, every node must own at
// least one off-diagonal cell to appear in the distribution at all.
func Feasible(P, r int) bool {
	if P <= 0 || r <= 0 {
		return false
	}
	if r*(r-1) < P {
		return false
	}
	ceil := (r*(r-1) + P - 1) / P
	return float64(ceil) <= float64(r*r)/float64(P)
}

// Build runs Algorithm 1 for a given node count P and pattern size r, using
// rng for tie-breaking. It returns an r×r pattern whose off-diagonal cells
// are all assigned and whose diagonal cells are Undefined. The same seed
// always produces the same pattern.
func Build(P, r int, rng *rand.Rand) (*pattern.Pattern, error) {
	if P <= 0 {
		return nil, fmt.Errorf("gcrm: invalid node count %d", P)
	}
	if r < 2 {
		return nil, fmt.Errorf("gcrm: pattern size %d too small", r)
	}
	if !Feasible(P, r) {
		return nil, fmt.Errorf("gcrm: no balanced %dx%d pattern exists for P=%d (Equation 3)", r, r, P)
	}

	colrows, err := phase1(P, r, rng)
	if err != nil {
		return nil, fmt.Errorf("gcrm: %w", err)
	}
	pat := phase2(P, r, colrows, rng)

	if err := pat.Validate(); err != nil {
		return nil, fmt.Errorf("gcrm: built invalid pattern: %w", err)
	}
	return pat, nil
}

// assignment holds, for each node, the set of colrows it may appear on.
type assignment struct {
	sets  []map[int]bool // per node
	usage []int          // per colrow: number of nodes holding it
}

func (a *assignment) add(p, cr int) {
	if !a.sets[p][cr] {
		a.sets[p][cr] = true
		a.usage[cr]++
	}
}

// phase1 computes the colrow-to-node assignment A (Algorithm 1, lines 1-10).
// It returns an error — instead of crashing the caller — if the greedy cover
// ever stalls with uncovered cells, which the feasibility precondition rules
// out but library code must not bet the process on.
func phase1(P, r int, rng *rand.Rand) (*assignment, error) {
	a := &assignment{sets: make([]map[int]bool, P), usage: make([]int, r)}
	for p := 0; p < P; p++ {
		a.sets[p] = make(map[int]bool)
	}
	// Line 2-3: one node per colrow, round robin.
	for i := 0; i < r; i++ {
		a.add(i%P, i)
	}

	// covered[i*r+j] marks off-diagonal cells already covered by some node.
	covered := make([]bool, r*r)
	uncovered := r * (r - 1)
	markCovered := func(i, j int) {
		if !covered[i*r+j] {
			covered[i*r+j] = true
			uncovered--
		}
		if !covered[j*r+i] {
			covered[j*r+i] = true
			uncovered--
		}
	}
	// Initial coverage: a node holding colrows i and j covers (i,j) and (j,i).
	// After round-robin initialization a node holds colrows {i, i+P, ...}.
	for p := 0; p < P; p++ {
		crs := sortedKeys(a.sets[p])
		for x := 0; x < len(crs); x++ {
			for y := x + 1; y < len(crs); y++ {
				markCovered(crs[x], crs[y])
			}
		}
	}

	newCells := make([]int, r)
	candidates := make([]int, 0, r)
	for uncovered > 0 {
		// Line 5: least-loaded node (fewest colrows), ties broken randomly.
		p := leastLoaded(a, rng)

		// Lines 6-8: pick the colrow covering the most new cells.
		best := bestColrow(a, covered, newCells, p, r)
		if best == -1 {
			// Unreachable for feasible (P, r): if the least-loaded node holds
			// every colrow, all nodes do, and then every cell is covered. Fail
			// diagnosably rather than crash if the invariant ever breaks.
			return nil, fmt.Errorf("phase 1 stalled: node %d already holds all %d colrows but %d cells remain uncovered", p, r, uncovered)
		}
		// Tie-break: lowest usage, then random.
		candidates = candidates[:0]
		for q := 0; q < r; q++ {
			if !a.sets[p][q] && newCells[q] == newCells[best] {
				candidates = append(candidates, q)
			}
		}
		minUsage := math.MaxInt
		for _, q := range candidates {
			if a.usage[q] < minUsage {
				minUsage = a.usage[q]
			}
		}
		finalists := candidates[:0]
		for _, q := range candidates {
			if a.usage[q] == minUsage {
				finalists = append(finalists, q)
			}
		}
		b := finalists[rng.Intn(len(finalists))]

		// Lines 9-10.
		for cr := range a.sets[p] {
			markCovered(b, cr)
		}
		a.add(p, b)
	}
	return a, nil
}

// bestColrow returns the colrow node p does not yet hold that covers the
// most still-uncovered cells (scratch newCells must have length r), or -1 if
// p already holds every colrow — the stall condition phase1 reports as an
// error.
func bestColrow(a *assignment, covered []bool, newCells []int, p, r int) int {
	best := -1
	for q := 0; q < r; q++ {
		newCells[q] = 0
		if a.sets[p][q] {
			continue
		}
		for cr := range a.sets[p] {
			if !covered[q*r+cr] {
				newCells[q]++
			}
			if !covered[cr*r+q] {
				newCells[q]++
			}
		}
		if best == -1 || newCells[q] > newCells[best] {
			best = q
		}
	}
	return best
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Insertion sort: sets are tiny and this keeps iteration deterministic.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func leastLoaded(a *assignment, rng *rand.Rand) int {
	min := math.MaxInt
	for _, s := range a.sets {
		if len(s) < min {
			min = len(s)
		}
	}
	var cands []int
	for p, s := range a.sets {
		if len(s) == min {
			cands = append(cands, p)
		}
	}
	return cands[rng.Intn(len(cands))]
}

// phase2 assigns off-diagonal cells to covering nodes (Algorithm 1, lines
// 11-14) using two bipartite matchings and a greedy fallback.
func phase2(P, r int, a *assignment, rng *rand.Rand) *pattern.Pattern {
	pat := pattern.New(r, r)

	// Dense indexing of off-diagonal cells.
	cellID := make([]int, r*r)
	var cells [][2]int
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			if i == j {
				cellID[i*r+j] = -1
				continue
			}
			cellID[i*r+j] = len(cells)
			cells = append(cells, [2]int{i, j})
		}
	}

	covering := func(i, j int) []int {
		var out []int
		for p := 0; p < P; p++ {
			if a.sets[p][i] && a.sets[p][j] {
				out = append(out, p)
			}
		}
		return out
	}
	coverers := make([][]int, len(cells))
	for id, c := range cells {
		coverers[id] = covering(c[0], c[1])
	}

	assignedTo := make([]int, len(cells))
	for i := range assignedTo {
		assignedTo[i] = -1
	}
	loads := make([]int, P)

	// First matching: k = ⌊r(r−1)/P⌋ duplicates per node.
	k := r * (r - 1) / P
	if k > 0 {
		g := matching.NewGraph(len(cells), P*k)
		for id := range cells {
			for _, p := range coverers[id] {
				for d := 0; d < k; d++ {
					g.AddEdge(id, p*k+d)
				}
			}
		}
		m, _ := g.MaxMatching()
		for id, dup := range m {
			if dup >= 0 {
				p := dup / k
				assignedTo[id] = p
				loads[p]++
			}
		}
	}

	// Second matching: unassigned cells vs one duplicate per node.
	var unassigned []int
	for id, p := range assignedTo {
		if p == -1 {
			unassigned = append(unassigned, id)
		}
	}
	if len(unassigned) > 0 {
		g := matching.NewGraph(len(unassigned), P)
		for li, id := range unassigned {
			for _, p := range coverers[id] {
				g.AddEdge(li, p)
			}
		}
		m, _ := g.MaxMatching()
		for li, p := range m {
			if p >= 0 {
				assignedTo[unassigned[li]] = p
				loads[p]++
			}
		}
	}

	// Greedy fallback (lines 13-14): assign each remaining cell to the
	// least-loaded node that can cover it by adding at most one colrow.
	for id, p := range assignedTo {
		if p != -1 {
			continue
		}
		i, j := cells[id][0], cells[id][1]
		best := -1
		for q := 0; q < P; q++ {
			if a.sets[q][i] || a.sets[q][j] {
				if best == -1 || loads[q] < loads[best] {
					best = q
				}
			}
		}
		if best == -1 {
			// Cannot happen: phase 1 assigns every colrow to some node.
			best = rng.Intn(P)
		}
		a.add(best, i)
		a.add(best, j)
		assignedTo[id] = best
		loads[best]++
	}

	for id, p := range assignedTo {
		pat.Set(cells[id][0], cells[id][1], p)
	}
	rebalance(P, r, pat, a, loads)
	return pat
}

// rebalance enforces the paper's balance requirement (every node owns either
// ⌊r(r−1)/P⌋ or ⌈r(r−1)/P⌉ cells) after the matchings. Algorithm 1's
// matchings achieve this when they are perfect, but for unlucky phase-1
// colrow assignments some node may cover too few cells; in the spirit of
// lines 13-14 we then move cells from the most-loaded node to the
// least-loaded one, preferring moves that add no new colrow to the receiver
// (which would raise the communication cost). The loop strictly decreases the
// sum of squared loads, so it terminates with spread ≤ 1.
func rebalance(P, r int, pat *pattern.Pattern, a *assignment, loads []int) {
	for {
		pMin, pMax := 0, 0
		for q := 1; q < P; q++ {
			if loads[q] < loads[pMin] {
				pMin = q
			}
			if loads[q] > loads[pMax] {
				pMax = q
			}
		}
		if loads[pMax]-loads[pMin] <= 1 {
			return
		}
		// Steal from any maximally loaded node the cell that costs pMin the
		// fewest new colrows; among equals prefer the most-loaded donor.
		bestI, bestJ, bestScore := -1, -1, -1
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				if i == j {
					continue
				}
				q := pat.At(i, j)
				if q == pattern.Undefined || loads[q] < loads[pMin]+2 {
					continue
				}
				newCR := 0
				if !a.sets[pMin][i] {
					newCR++
				}
				if !a.sets[pMin][j] {
					newCR++
				}
				score := loads[q]*4 + (2 - newCR)
				if score > bestScore {
					bestI, bestJ, bestScore = i, j, score
				}
			}
		}
		if bestScore < 0 {
			// Unreachable while spread > 1 (a donor with load ≥ min+2 always
			// exists), but keep the loop total.
			return
		}
		donor := pat.At(bestI, bestJ)
		pat.Set(bestI, bestJ, pMin)
		a.add(pMin, bestI)
		a.add(pMin, bestJ)
		loads[donor]--
		loads[pMin]++
	}
}

package gcrm

import (
	"math/rand"

	"anybc/internal/pattern"
)

// Refine applies a hill-climbing post-pass to a symmetric pattern produced
// by Build (an extension beyond the paper's Algorithm 1). The move set
// reassigns one off-diagonal cell (i, j) from its owner p to another node q
// that already appears on both colrows i and j and has a strictly smaller
// load. Such a move never increases any colrow's distinct-node count — and
// it strictly decreases z_i (or z_j) whenever the cell was p's last presence
// on that colrow — so the cost is monotonically non-increasing while the
// balance guarantee (loads within {⌊·⌋, ⌈·⌉}) is preserved or improved.
//
// rng breaks ties among equally attractive moves; maxPasses bounds the
// number of full sweeps. Returns the number of cells moved.
func Refine(pat *pattern.Pattern, maxPasses int, rng *rand.Rand) int {
	r := pat.Rows()
	P := pat.NumNodes()

	// presence[p*r+cr] counts p's off-diagonal cells on colrow cr.
	presence := make([]int, P*r)
	loads := make([]int, P)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			if i == j {
				continue
			}
			p := pat.At(i, j)
			if p == pattern.Undefined {
				continue
			}
			presence[p*r+i]++
			presence[p*r+j]++
			loads[p]++
		}
	}
	maxLoad := 0
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}

	moved := 0
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				if i == j || pat.At(i, j) == pattern.Undefined {
					continue
				}
				p := pat.At(i, j)
				// Gain: colrows where this cell is p's only presence.
				gain := 0
				if presence[p*r+i] == 1 {
					gain++
				}
				if presence[p*r+j] == 1 {
					gain++
				}
				if gain == 0 {
					continue
				}
				// Candidates: nodes on both colrows with smaller load (so
				// balance can only improve) — collect and pick randomly.
				var cands []int
				for q := 0; q < P; q++ {
					if q == p || loads[q] >= loads[p] {
						continue
					}
					if presence[q*r+i] > 0 && presence[q*r+j] > 0 {
						cands = append(cands, q)
					}
				}
				if len(cands) == 0 {
					continue
				}
				q := cands[rng.Intn(len(cands))]
				pat.Set(i, j, q)
				presence[p*r+i]--
				presence[p*r+j]--
				presence[q*r+i]++
				presence[q*r+j]++
				loads[p]--
				loads[q]++
				moved++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return moved
}

// SearchRefined runs Search and then Refine on the winning pattern,
// returning the (possibly improved) result. The refined cost is never worse
// than the plain search result.
func SearchRefined(P int, opts SearchOptions, refinePasses int) (*Result, error) {
	res, err := Search(P, opts)
	if err != nil {
		return nil, err
	}
	pat := res.Pattern.Clone()
	rng := rand.New(rand.NewSource(opts.BaseSeed*7919 + int64(P)))
	Refine(pat, refinePasses, rng)
	cost := pat.CostCholesky()
	if cost < res.Cost {
		return &Result{Pattern: pat, R: res.R, Seed: res.Seed, Cost: cost}, nil
	}
	return res, nil
}

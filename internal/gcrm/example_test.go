package gcrm_test

import (
	"fmt"

	"anybc/internal/gcrm"
)

// ExampleSearch runs the paper's search protocol (reduced seeds for speed)
// for P = 23, where no SBC distribution exists: GCR&M finds a balanced
// square pattern on all 23 nodes with an SBC-class cost.
func ExampleSearch() {
	res, err := gcrm.Search(23, gcrm.SearchOptions{
		Seeds: 20, SizeFactor: 5, BaseSeed: 1, Parallel: false,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("pattern %dx%d, balanced=%v, cost below SBC law: %v\n",
		res.R, res.R,
		res.Pattern.BalanceSpread() <= 1,
		res.Cost < 6.8) // √(2·23) ≈ 6.78
	// Output:
	// pattern 23x23, balanced=true, cost below SBC law: true
}

// ExampleFeasible shows Equation (3): for P = 23, a 2x2 pattern cannot be
// balanced, while r = 22 qualifies.
func ExampleFeasible() {
	fmt.Println(gcrm.Feasible(23, 2), gcrm.Feasible(23, 22))
	// Output:
	// false true
}

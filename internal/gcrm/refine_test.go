package gcrm

import (
	"math/rand"
	"testing"
)

// TestRefineNeverWorsens: for many (P, r, seed) combinations the refinement
// pass must keep the pattern valid and balanced and never increase the cost.
func TestRefineNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, P := range []int{5, 10, 17, 23, 31} {
		for _, r := range FeasibleSizes(P, 3, 2) {
			pat, err := Build(P, r, rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				t.Fatalf("Build(%d,%d): %v", P, r, err)
			}
			before := pat.CostCholesky()
			spreadBefore := pat.BalanceSpread()
			refined := pat.Clone()
			Refine(refined, 10, rand.New(rand.NewSource(1)))
			if err := refined.Validate(); err != nil {
				t.Fatalf("Refine(%d,%d) invalidated pattern: %v", P, r, err)
			}
			if refined.NumNodes() != P {
				t.Fatalf("Refine(%d,%d) lost a node", P, r)
			}
			after := refined.CostCholesky()
			if after > before+1e-12 {
				t.Errorf("Refine(%d,%d) worsened cost: %v -> %v", P, r, before, after)
			}
			if refined.BalanceSpread() > spreadBefore {
				t.Errorf("Refine(%d,%d) worsened balance: %d -> %d",
					P, r, spreadBefore, refined.BalanceSpread())
			}
		}
	}
}

// TestRefineFindsImprovement: on at least some configurations the local
// search must actually move cells (otherwise it is dead code).
func TestRefineFindsImprovement(t *testing.T) {
	totalMoved := 0
	for seed := int64(0); seed < 10; seed++ {
		pat, err := Build(23, 16, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		totalMoved += Refine(pat, 10, rand.New(rand.NewSource(seed)))
	}
	if totalMoved == 0 {
		t.Skip("no improving moves found on these seeds (acceptable but unusual)")
	}
}

func TestSearchRefined(t *testing.T) {
	opts := SearchOptions{Seeds: 15, SizeFactor: 4, BaseSeed: 1, Parallel: true}
	plain, err := Search(23, opts)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := SearchRefined(23, opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Cost > plain.Cost+1e-12 {
		t.Errorf("SearchRefined cost %v worse than plain %v", refined.Cost, plain.Cost)
	}
	if err := refined.Pattern.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchRefinedError(t *testing.T) {
	if _, err := SearchRefined(0, DefaultSearchOptions(), 5); err == nil {
		t.Error("SearchRefined(0): want error")
	}
}

package gcrm

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"anybc/internal/pattern"
)

// SearchOptions controls the pattern search of Section V-B: for each feasible
// pattern size r ≤ SizeFactor·√P, Algorithm 1 is run Seeds times with
// different random tie-breaking, and the lowest-cost pattern is kept.
type SearchOptions struct {
	// Seeds is the number of random restarts per pattern size (paper: 100).
	Seeds int
	// SizeFactor bounds the pattern size to SizeFactor·√P (paper: 6).
	SizeFactor float64
	// MinSize optionally raises the smallest pattern size tried.
	MinSize int
	// BaseSeed makes the whole search deterministic; runs use seeds
	// BaseSeed, BaseSeed+1, ...
	BaseSeed int64
	// Parallel enables running seeds on all CPUs. Results are identical
	// either way.
	Parallel bool
}

// DefaultSearchOptions mirrors the paper's evaluation protocol.
func DefaultSearchOptions() SearchOptions {
	return SearchOptions{Seeds: 100, SizeFactor: 6, BaseSeed: 1, Parallel: true}
}

// Result is the outcome of a GCR&M search: the best pattern found, the
// pattern size and seed that produced it, and its Cholesky cost z̄.
type Result struct {
	Pattern *pattern.Pattern
	R       int
	Seed    int64
	Cost    float64
}

// Candidate is one (r, seed) evaluation; Sample returns all of them so the
// paper's Figure 9 scatter can be reproduced.
type Candidate struct {
	R    int
	Seed int64
	Cost float64
}

// FeasibleSizes lists the pattern sizes r ∈ [2, factor·√P] that satisfy
// Equation (3), with at least MinSize if set.
func FeasibleSizes(P int, factor float64, minSize int) []int {
	if minSize < 2 {
		minSize = 2
	}
	max := int(factor * math.Sqrt(float64(P)))
	var out []int
	for r := minSize; r <= max; r++ {
		if Feasible(P, r) {
			out = append(out, r)
		}
	}
	return out
}

// Search runs the full protocol for P nodes and returns the best pattern.
func Search(P int, opts SearchOptions) (*Result, error) {
	res, _, err := search(P, opts, false)
	return res, err
}

// Sample runs the full protocol and additionally returns every candidate
// evaluated, for the Figure 9 pattern-size/seed study.
func Sample(P int, opts SearchOptions) (*Result, []Candidate, error) {
	return search(P, opts, true)
}

func search(P int, opts SearchOptions, keepAll bool) (*Result, []Candidate, error) {
	if P <= 0 {
		return nil, nil, fmt.Errorf("gcrm: invalid node count %d", P)
	}
	if opts.Seeds <= 0 {
		opts.Seeds = 1
	}
	if opts.SizeFactor <= 0 {
		opts.SizeFactor = 6
	}
	sizes := FeasibleSizes(P, opts.SizeFactor, opts.MinSize)
	if len(sizes) == 0 {
		return nil, nil, fmt.Errorf("gcrm: no feasible pattern size for P=%d with factor %.1f", P, opts.SizeFactor)
	}

	type job struct {
		r    int
		seed int64
	}
	jobs := make([]job, 0, len(sizes)*opts.Seeds)
	for _, r := range sizes {
		for s := 0; s < opts.Seeds; s++ {
			jobs = append(jobs, job{r: r, seed: opts.BaseSeed + int64(s)})
		}
	}

	type eval struct {
		Candidate
		pat *pattern.Pattern
	}
	evals := make([]eval, len(jobs))
	run := func(i int) {
		j := jobs[i]
		// Each (r, seed) pair gets an independent deterministic stream.
		rng := rand.New(rand.NewSource(j.seed*1_000_003 + int64(j.r)))
		pat, err := Build(P, j.r, rng)
		if err != nil {
			evals[i] = eval{Candidate: Candidate{R: j.r, Seed: j.seed, Cost: math.Inf(1)}}
			return
		}
		evals[i] = eval{
			Candidate: Candidate{R: j.r, Seed: j.seed, Cost: pat.CostCholesky()},
			pat:       pat,
		}
	}

	if opts.Parallel {
		var wg sync.WaitGroup
		workers := runtime.GOMAXPROCS(0)
		next := make(chan int, len(jobs))
		for i := range jobs {
			next <- i
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					run(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range jobs {
			run(i)
		}
	}

	best := -1
	for i, e := range evals {
		if e.pat == nil {
			continue
		}
		if best == -1 || e.Cost < evals[best].Cost-1e-12 ||
			(math.Abs(e.Cost-evals[best].Cost) <= 1e-12 && e.R < evals[best].R) {
			best = i
		}
	}
	if best == -1 {
		return nil, nil, fmt.Errorf("gcrm: all candidate builds failed for P=%d", P)
	}
	var all []Candidate
	if keepAll {
		all = make([]Candidate, 0, len(evals))
		for _, e := range evals {
			if !math.IsInf(e.Cost, 1) {
				all = append(all, e.Candidate)
			}
		}
	}
	return &Result{
		Pattern: evals[best].pat,
		R:       evals[best].R,
		Seed:    evals[best].Seed,
		Cost:    evals[best].Cost,
	}, all, nil
}

// EmpiricalLowerLimit returns √(3P/2), the empirical lower limit the paper
// observes for GCR&M pattern costs (Section V-B), derived from regular
// patterns with v = 3 colrows per node and l = 6 cells.
func EmpiricalLowerLimit(P int) float64 {
	return math.Sqrt(3 * float64(P) / 2)
}

// Package trace records execution timelines: one interval per kernel
// execution (node, worker slot, task, start, end) and one per message
// (source, destination, departure, arrival, bytes). Both the discrete-event
// simulator and the real distributed runtime feed the same Recorder — the
// simulator with model time, the runtime with wall-clock time — so traces
// support the Gantt-style analyses behind the paper's performance discussion
// (worker utilization, idle-time attribution, communication serialization)
// for either substrate, and export as CSV for external plotting.
package trace

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"anybc/internal/dag"
)

// TaskEvent is one kernel execution interval.
type TaskEvent struct {
	Node, Slot int
	Task       dag.Task
	Start, End float64
}

// MessageEvent is one tile transfer.
type MessageEvent struct {
	Src, Dst       int
	Depart, Arrive float64
	Bytes          int
}

// StallEvent is one interval during which one of a node's workers was free
// with nothing ready to dispatch — scheduler starvation, attributable to
// communication or to predecessor tasks on other nodes. Weight is the
// interval's share of the node's capacity: one idle worker out of W carries
// weight 1/W, so summed weighted stalls measure lost capacity-seconds rather
// than counting a 1-of-4-idle node like a fully idle one.
type StallEvent struct {
	Node       int
	Start, End float64
	Weight     float64
}

// FaultEvent is one injected fault or recovery action: chaos-injected
// delays/reorders/duplicates/drops/crashes and the runtime's healing moves
// (re-requests, redeliveries), each stamped with the instant it happened so
// faults render on the same time axis as kernels and messages.
type FaultEvent struct {
	Kind     string // e.g. "drop", "delay", "re-request", "redeliver", "crash"
	Src, Dst int
	Tag      string // the affected tile version, e.g. "(2,1)v0", or "req(2,1)v0"
	Time     float64
}

// Recorder accumulates events during one run. Recording is safe for
// concurrent use — the real runtime records from every node's goroutines —
// while the analysis methods expect recording to have finished.
type Recorder struct {
	mu       sync.Mutex
	Tasks    []TaskEvent
	Messages []MessageEvent
	Stalls   []StallEvent
	Faults   []FaultEvent
}

// RecordTask appends a kernel execution interval.
func (r *Recorder) RecordTask(node, slot int, t dag.Task, start, end float64) {
	r.mu.Lock()
	r.Tasks = append(r.Tasks, TaskEvent{Node: node, Slot: slot, Task: t, Start: start, End: end})
	r.mu.Unlock()
}

// RecordMessage appends a tile transfer.
func (r *Recorder) RecordMessage(src, dst int, depart, arrive float64, bytes int) {
	r.mu.Lock()
	r.Messages = append(r.Messages, MessageEvent{Src: src, Dst: dst, Depart: depart, Arrive: arrive, Bytes: bytes})
	r.mu.Unlock()
}

// RecordStall appends a scheduler-starvation interval for a node, weighted
// by the idle share of the node's workers it represents (see StallEvent).
func (r *Recorder) RecordStall(node int, start, end, weight float64) {
	r.mu.Lock()
	r.Stalls = append(r.Stalls, StallEvent{Node: node, Start: start, End: end, Weight: weight})
	r.mu.Unlock()
}

// RecordFault appends an injected fault or recovery action.
func (r *Recorder) RecordFault(kind string, src, dst int, tag string, at float64) {
	r.mu.Lock()
	r.Faults = append(r.Faults, FaultEvent{Kind: kind, Src: src, Dst: dst, Tag: tag, Time: at})
	r.mu.Unlock()
}

// Makespan returns the latest event end time.
func (r *Recorder) Makespan() float64 {
	m := 0.0
	for _, e := range r.Tasks {
		if e.End > m {
			m = e.End
		}
	}
	for _, e := range r.Messages {
		if e.Arrive > m {
			m = e.Arrive
		}
	}
	return m
}

// BusyPerNode returns the summed kernel time per node for a cluster of p
// nodes: nodes that never ran a task — including trailing idle ones, which
// sizing by the largest node seen would silently drop — report zero. The
// output grows beyond p only if some event names a higher node.
func (r *Recorder) BusyPerNode(p int) []float64 {
	for _, e := range r.Tasks {
		if e.Node >= p {
			p = e.Node + 1
		}
	}
	out := make([]float64, p)
	for _, e := range r.Tasks {
		out[e.Node] += e.End - e.Start
	}
	return out
}

// StallPerNode returns the summed weighted scheduler-starvation time per
// node for a cluster of p nodes, with the same sizing rule as BusyPerNode:
// idle nodes report zero, and the output grows beyond p only if some event
// names a higher node. Each interval contributes (End-Start)·Weight, so the
// totals agree with Report.Sched.StallSeconds under multi-worker nodes.
func (r *Recorder) StallPerNode(p int) []float64 {
	for _, e := range r.Stalls {
		if e.Node >= p {
			p = e.Node + 1
		}
	}
	out := make([]float64, p)
	for _, e := range r.Stalls {
		out[e.Node] += (e.End - e.Start) * e.Weight
	}
	return out
}

// KindBreakdown returns total kernel time per task kind name.
func (r *Recorder) KindBreakdown() map[string]float64 {
	out := map[string]float64{}
	for _, e := range r.Tasks {
		out[e.Task.Kind.String()] += e.End - e.Start
	}
	return out
}

// Utilization returns, for each of p nodes, the fraction of the makespan its
// workers spent executing kernels, given the worker count per node. Idle
// nodes report zero utilization rather than vanishing from the output.
func (r *Recorder) Utilization(workers, p int) []float64 {
	mk := r.Makespan()
	busy := r.BusyPerNode(p)
	out := make([]float64, len(busy))
	if mk <= 0 || workers <= 0 {
		return out
	}
	for n, b := range busy {
		out[n] = b / (mk * float64(workers))
	}
	return out
}

// Timeline bins the aggregate number of busy workers over time into `bins`
// equal slices of the makespan — a quick activity profile.
func (r *Recorder) Timeline(bins int) []float64 {
	mk := r.Makespan()
	out := make([]float64, bins)
	if mk <= 0 || bins <= 0 {
		return out
	}
	w := mk / float64(bins)
	for _, e := range r.Tasks {
		first := int(e.Start / w)
		last := int(e.End / w)
		for bin := first; bin <= last && bin < bins; bin++ {
			lo := float64(bin) * w
			hi := lo + w
			s, t := e.Start, e.End
			if s < lo {
				s = lo
			}
			if t > hi {
				t = hi
			}
			if t > s {
				out[bin] += (t - s) / w
			}
		}
	}
	return out
}

// Validate checks trace consistency: intervals well formed and no two tasks
// overlapping on the same (node, slot).
func (r *Recorder) Validate() error {
	type key struct{ node, slot int }
	bySlot := map[key][]TaskEvent{}
	for _, e := range r.Tasks {
		if e.End < e.Start {
			return fmt.Errorf("trace: task %v has negative duration", e.Task)
		}
		k := key{e.Node, e.Slot}
		bySlot[k] = append(bySlot[k], e)
	}
	for k, evs := range bySlot {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].End-1e-12 {
				return fmt.Errorf("trace: overlap on node %d slot %d: %v and %v",
					k.node, k.slot, evs[i-1].Task, evs[i].Task)
			}
		}
	}
	for _, m := range r.Messages {
		if m.Arrive < m.Depart {
			return fmt.Errorf("trace: message %d->%d arrives before departure", m.Src, m.Dst)
		}
	}
	for _, s := range r.Stalls {
		if s.End < s.Start {
			return fmt.Errorf("trace: stall on node %d has negative duration", s.Node)
		}
		if s.Weight < 0 || s.Weight > 1 {
			return fmt.Errorf("trace: stall on node %d has weight %g outside [0, 1]", s.Node, s.Weight)
		}
	}
	return nil
}

// GanttCSV writes the task intervals as CSV (node, slot, kind, task, start,
// end).
func (r *Recorder) GanttCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "node,slot,kind,task,start,end"); err != nil {
		return err
	}
	for _, e := range r.Tasks {
		if _, err := fmt.Fprintf(w, "%d,%d,%q,%q,%.9f,%.9f\n",
			e.Node, e.Slot, e.Task.Kind.String(), e.Task.String(), e.Start, e.End); err != nil {
			return err
		}
	}
	return nil
}

// MessagesCSV writes the message intervals as CSV.
func (r *Recorder) MessagesCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "src,dst,depart,arrive,bytes"); err != nil {
		return err
	}
	for _, m := range r.Messages {
		if _, err := fmt.Fprintf(w, "%d,%d,%.9f,%.9f,%d\n",
			m.Src, m.Dst, m.Depart, m.Arrive, m.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// FaultsCSV writes the injected faults and recovery actions as CSV.
func (r *Recorder) FaultsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,src,dst,tag,time"); err != nil {
		return err
	}
	for _, f := range r.Faults {
		if _, err := fmt.Fprintf(w, "%q,%d,%d,%q,%.9f\n",
			f.Kind, f.Src, f.Dst, f.Tag, f.Time); err != nil {
			return err
		}
	}
	return nil
}

// Fingerprint hashes the structural content of the trace — which tasks ran
// where, the per-(src,dst) message counts and byte volumes, and the sorted
// fault log — excluding every wall-clock timestamp. Two runs of the same
// seeded workload must produce equal fingerprints even though their kernel
// and message timings differ; any divergence in what happened (an extra
// message, a missing fault, a task migrating nodes) changes the hash.
func (r *Recorder) Fingerprint() string {
	tasks := make([]string, len(r.Tasks))
	for i, e := range r.Tasks {
		tasks[i] = fmt.Sprintf("task n%d %s", e.Node, e.Task)
	}
	sort.Strings(tasks)

	type pair struct{ src, dst int }
	counts := map[pair]int{}
	bytes := map[pair]int{}
	for _, m := range r.Messages {
		k := pair{m.Src, m.Dst}
		counts[k]++
		bytes[k] += m.Bytes
	}
	pairs := make([]pair, 0, len(counts))
	for k := range counts {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].src != pairs[j].src {
			return pairs[i].src < pairs[j].src
		}
		return pairs[i].dst < pairs[j].dst
	})

	faults := make([]string, len(r.Faults))
	for i, f := range r.Faults {
		faults[i] = fmt.Sprintf("fault %s %d->%d %s", f.Kind, f.Src, f.Dst, f.Tag)
	}
	sort.Strings(faults)

	h := fnv.New64a()
	for _, s := range tasks {
		fmt.Fprintln(h, s)
	}
	for _, k := range pairs {
		fmt.Fprintf(h, "msg %d->%d n=%d bytes=%d\n", k.src, k.dst, counts[k], bytes[k])
	}
	for _, s := range faults {
		fmt.Fprintln(h, s)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

package trace

import (
	"math"
	"strings"
	"testing"

	"anybc/internal/dag"
)

func sampleRecorder() *Recorder {
	r := &Recorder{}
	t1 := dag.Task{Kind: dag.GETRF, L: 0, I: 0, J: 0}
	t2 := dag.Task{Kind: dag.TRSMCol, L: 0, I: 1}
	r.RecordTask(0, 0, t1, 0, 1)
	r.RecordTask(0, 0, t2, 1, 3)
	r.RecordTask(1, 0, t2, 0.5, 2)
	r.RecordMessage(0, 1, 1, 1.5, 64)
	return r
}

func TestMakespanAndBusy(t *testing.T) {
	r := sampleRecorder()
	if mk := r.Makespan(); mk != 3 {
		t.Fatalf("Makespan = %v, want 3", mk)
	}
	busy := r.BusyPerNode(2)
	if len(busy) != 2 || busy[0] != 3 || busy[1] != 1.5 {
		t.Fatalf("BusyPerNode = %v", busy)
	}
}

// TestBusyPerNodeIdleNodes: trailing idle nodes must appear with zero busy
// time instead of being truncated, and events beyond p still extend the
// output.
func TestBusyPerNodeIdleNodes(t *testing.T) {
	r := sampleRecorder() // tasks on nodes 0 and 1 only
	busy := r.BusyPerNode(5)
	if len(busy) != 5 {
		t.Fatalf("BusyPerNode(5) length %d, want 5", len(busy))
	}
	for n := 2; n < 5; n++ {
		if busy[n] != 0 {
			t.Fatalf("idle node %d busy %v, want 0", n, busy[n])
		}
	}
	if got := r.BusyPerNode(1); len(got) != 2 {
		t.Fatalf("BusyPerNode(1) length %d, want 2 (events beyond p)", len(got))
	}
	u := r.Utilization(1, 4)
	if len(u) != 4 || u[2] != 0 || u[3] != 0 {
		t.Fatalf("Utilization(1, 4) = %v, want trailing zeros", u)
	}
}

func TestKindBreakdown(t *testing.T) {
	r := sampleRecorder()
	kb := r.KindBreakdown()
	if kb["GETRF"] != 1 || kb["TRSM-col"] != 3.5 {
		t.Fatalf("KindBreakdown = %v", kb)
	}
}

func TestUtilization(t *testing.T) {
	r := sampleRecorder()
	u := r.Utilization(1, 2)
	if math.Abs(u[0]-1) > 1e-12 || math.Abs(u[1]-0.5) > 1e-12 {
		t.Fatalf("Utilization = %v", u)
	}
	if got := r.Utilization(0, 2); got[0] != 0 {
		t.Fatal("zero workers should give zero utilization")
	}
}

func TestTimeline(t *testing.T) {
	r := &Recorder{}
	r.RecordTask(0, 0, dag.Task{Kind: dag.GETRF}, 0, 2)
	// Two bins over makespan 2: one worker busy in both.
	tl := r.Timeline(2)
	if math.Abs(tl[0]-1) > 1e-12 || math.Abs(tl[1]-1) > 1e-12 {
		t.Fatalf("Timeline = %v", tl)
	}
	if out := (&Recorder{}).Timeline(3); len(out) != 3 {
		t.Fatal("empty recorder timeline length wrong")
	}
}

func TestValidate(t *testing.T) {
	r := sampleRecorder()
	if err := r.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := &Recorder{}
	bad.RecordTask(0, 0, dag.Task{Kind: dag.GETRF}, 0, 2)
	bad.RecordTask(0, 0, dag.Task{Kind: dag.GETRF, L: 1}, 1, 3)
	if err := bad.Validate(); err == nil {
		t.Fatal("overlapping slot accepted")
	}
	neg := &Recorder{}
	neg.RecordTask(0, 0, dag.Task{}, 2, 1)
	if err := neg.Validate(); err == nil {
		t.Fatal("negative duration accepted")
	}
	badMsg := &Recorder{}
	badMsg.RecordMessage(0, 1, 2, 1, 8)
	if err := badMsg.Validate(); err == nil {
		t.Fatal("time-travelling message accepted")
	}
}

// TestStallRecording: stall intervals accumulate per node weighted by their
// idle share, with the same sizing rule as BusyPerNode, and Validate rejects
// negative-duration and out-of-range-weight stalls.
func TestStallRecording(t *testing.T) {
	r := &Recorder{}
	r.RecordStall(1, 0, 0.5, 1)
	r.RecordStall(1, 2, 2.25, 1)
	r.RecordStall(3, 0, 1, 0.25) // 1 of 4 workers idle: quarter weight
	st := r.StallPerNode(2)
	if len(st) != 4 {
		t.Fatalf("StallPerNode(2) length %d, want 4 (events beyond p extend)", len(st))
	}
	if st[0] != 0 || math.Abs(st[1]-0.75) > 1e-12 || st[2] != 0 || st[3] != 0.25 {
		t.Fatalf("StallPerNode = %v", st)
	}
	if got := r.StallPerNode(6); len(got) != 6 || got[5] != 0 {
		t.Fatalf("StallPerNode(6) = %v, want trailing zeros", got)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("valid stalls rejected: %v", err)
	}
	bad := &Recorder{}
	bad.RecordStall(0, 2, 1, 1)
	if err := bad.Validate(); err == nil {
		t.Fatal("negative-duration stall accepted")
	}
	badW := &Recorder{}
	badW.RecordStall(0, 1, 2, 1.5)
	if err := badW.Validate(); err == nil {
		t.Fatal("stall weight above 1 accepted")
	}
}

func TestCSVExports(t *testing.T) {
	r := sampleRecorder()
	var b strings.Builder
	if err := r.GanttCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "node,slot,kind,task,start,end") ||
		!strings.Contains(b.String(), "GETRF") {
		t.Fatalf("GanttCSV output: %q", b.String())
	}
	b.Reset()
	if err := r.MessagesCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "src,dst") || !strings.Contains(b.String(), "64") {
		t.Fatalf("MessagesCSV output: %q", b.String())
	}
}

func TestFaultRecordingAndCSV(t *testing.T) {
	r := sampleRecorder()
	r.RecordFault("drop", 0, 1, "(2,1)v0", 0.7)
	r.RecordFault("re-request", 1, 0, "(2,1)v0", 1.2)
	if len(r.Faults) != 2 || r.Faults[0].Kind != "drop" || r.Faults[1].Dst != 0 {
		t.Fatalf("faults recorded wrong: %+v", r.Faults)
	}
	var sb strings.Builder
	if err := r.FaultsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	csv := sb.String()
	if !strings.HasPrefix(csv, "kind,src,dst,tag,time\n") {
		t.Fatalf("faults CSV missing header: %q", csv)
	}
	if !strings.Contains(csv, `"re-request",1,0,"(2,1)v0"`) {
		t.Fatalf("faults CSV missing row: %q", csv)
	}
}

// TestFingerprintStructural: the fingerprint must ignore wall-clock jitter
// and recording order but change on any structural difference.
func TestFingerprintStructural(t *testing.T) {
	t1 := dag.Task{Kind: dag.GETRF}
	t2 := dag.Task{Kind: dag.TRSMCol, I: 1}

	a := &Recorder{}
	a.RecordTask(0, 0, t1, 0, 1)
	a.RecordTask(1, 0, t2, 0.5, 2)
	a.RecordMessage(0, 1, 1, 1.5, 64)
	a.RecordFault("delay", 0, 1, "(1,0)v0", 0.3)

	// Same structure: different timings, different event order, different slot.
	b := &Recorder{}
	b.RecordFault("delay", 0, 1, "(1,0)v0", 0.9)
	b.RecordMessage(0, 1, 2, 2.5, 64)
	b.RecordTask(1, 1, t2, 1.5, 3)
	b.RecordTask(0, 0, t1, 1, 2)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on timing or recording order")
	}

	// One extra message changes it.
	c := &Recorder{}
	c.RecordTask(0, 0, t1, 0, 1)
	c.RecordTask(1, 0, t2, 0.5, 2)
	c.RecordMessage(0, 1, 1, 1.5, 64)
	c.RecordMessage(0, 1, 1, 1.5, 64)
	c.RecordFault("delay", 0, 1, "(1,0)v0", 0.3)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint missed an extra message")
	}

	// A different fault kind changes it.
	d := &Recorder{}
	d.RecordTask(0, 0, t1, 0, 1)
	d.RecordTask(1, 0, t2, 0.5, 2)
	d.RecordMessage(0, 1, 1, 1.5, 64)
	d.RecordFault("drop", 0, 1, "(1,0)v0", 0.3)
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("fingerprint missed a fault difference")
	}

	// A task migrating nodes changes it.
	e := &Recorder{}
	e.RecordTask(0, 0, t1, 0, 1)
	e.RecordTask(0, 0, t2, 0.5, 2) // t2 on node 0 instead of 1
	e.RecordMessage(0, 1, 1, 1.5, 64)
	e.RecordFault("delay", 0, 1, "(1,0)v0", 0.3)
	if a.Fingerprint() == e.Fingerprint() {
		t.Fatal("fingerprint missed a task moving nodes")
	}
}

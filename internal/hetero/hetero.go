// Package hetero extends the paper's distribution schemes to heterogeneous
// nodes — the extension the conclusion lists as future work ("Another avenue
// of research could be to extend these results to the case of heterogeneous
// nodes").
//
// The approach is virtual-node expansion: each physical node n with relative
// speed v_n receives w_n virtual slots, w_n ∝ v_n (largest-remainder
// apportionment). A homogeneous pattern — here G-2DBC, which exists for any
// slot count — is built over the V = Σ w_n virtual nodes and every cell is
// then mapped back to the physical node owning its slot. Work is therefore
// distributed proportionally to speed, while the per-row/column distinct
// node counts can only shrink under the mapping (several virtual nodes may
// collapse onto one physical node), so the communication cost never exceeds
// the homogeneous G-2DBC cost for V nodes.
package hetero

import (
	"fmt"
	"sort"

	"anybc/internal/dist"
	"anybc/internal/pattern"
)

// Slots apportions total virtual slots to nodes proportionally to their
// speeds using the largest-remainder method. Every node with positive speed
// receives at least one slot. The returned slice sums exactly to total.
func Slots(speeds []float64, total int) ([]int, error) {
	P := len(speeds)
	if P == 0 {
		return nil, fmt.Errorf("hetero: no nodes")
	}
	if total < P {
		return nil, fmt.Errorf("hetero: %d slots for %d nodes", total, P)
	}
	sum := 0.0
	for n, v := range speeds {
		if v <= 0 {
			return nil, fmt.Errorf("hetero: node %d has non-positive speed %g", n, v)
		}
		sum += v
	}
	out := make([]int, P)
	type frac struct {
		n   int
		rem float64
	}
	fracs := make([]frac, P)
	assigned := 0
	for n, v := range speeds {
		exact := v / sum * float64(total)
		w := int(exact)
		if w < 1 {
			w = 1
		}
		out[n] = w
		assigned += w
		fracs[n] = frac{n: n, rem: exact - float64(w)}
	}
	// Distribute the remaining slots (or reclaim excess) by remainder order.
	sort.Slice(fracs, func(i, j int) bool { return fracs[i].rem > fracs[j].rem })
	for i := 0; assigned < total; i = (i + 1) % P {
		out[fracs[i].n]++
		assigned++
	}
	for i := P - 1; assigned > total; i = (i - 1 + P) % P {
		if out[fracs[i].n] > 1 {
			out[fracs[i].n]--
			assigned--
		}
	}
	return out, nil
}

// Mapped is a heterogeneous distribution: a homogeneous pattern over virtual
// slots mapped back to physical nodes.
type Mapped struct {
	name string
	pat  *pattern.Pattern
	p    int
}

// NewG2DBC builds a heterogeneous G-2DBC distribution for nodes with the
// given relative speeds. granularity controls the number of virtual slots
// per node on average (≥ 1; larger values track the speed ratios more
// precisely at the price of a larger pattern; 4 is a good default).
func NewG2DBC(speeds []float64, granularity int) (*Mapped, error) {
	if granularity < 1 {
		return nil, fmt.Errorf("hetero: granularity %d < 1", granularity)
	}
	P := len(speeds)
	V := P * granularity
	slots, err := Slots(speeds, V)
	if err != nil {
		return nil, err
	}
	// slotOwner[s] = physical node owning virtual slot s; slots are dealt in
	// round-robin over nodes (rather than contiguous ranges) so consecutive
	// virtual ids — which 2DBC-style patterns place in the same row — spread
	// across physical nodes.
	slotOwner := make([]int, 0, V)
	remaining := append([]int(nil), slots...)
	for len(slotOwner) < V {
		for n := 0; n < P; n++ {
			if remaining[n] > 0 {
				remaining[n]--
				slotOwner = append(slotOwner, n)
			}
		}
	}
	virt := dist.NewG2DBC(V).Pattern()
	pat := pattern.New(virt.Rows(), virt.Cols())
	for i := 0; i < virt.Rows(); i++ {
		for j := 0; j < virt.Cols(); j++ {
			pat.Set(i, j, slotOwner[virt.At(i, j)])
		}
	}
	if err := pat.Validate(); err != nil {
		return nil, fmt.Errorf("hetero: %w", err)
	}
	return &Mapped{
		name: fmt.Sprintf("H-G2DBC(P=%d,V=%d)", P, V),
		pat:  pat,
		p:    P,
	}, nil
}

// Name implements dist.Distribution.
func (m *Mapped) Name() string { return m.name }

// Nodes implements dist.Distribution.
func (m *Mapped) Nodes() int { return m.p }

// Owner implements dist.Distribution.
func (m *Mapped) Owner(i, j int) int { return m.pat.Owner(i, j) }

// Pattern implements dist.PatternDistribution.
func (m *Mapped) Pattern() *pattern.Pattern { return m.pat }

// Fastest returns the fastest alive node under the given relative speed
// model: the alive rank with the highest speed, ties broken toward the
// lowest rank so every observer picks the same node. A nil speeds slice is
// the homogeneous model (all speeds equal), which degenerates to the lowest
// alive rank. Returns -1 when no rank in [0, p) is alive. The runtime uses
// this as the deterministic adopter rule when a node dies: all survivors
// must independently agree on who re-runs the dead node's tasks.
func Fastest(speeds []float64, alive func(rank int) bool, p int) int {
	best, bestSpeed := -1, 0.0
	for n := 0; n < p; n++ {
		if !alive(n) {
			continue
		}
		v := 1.0
		if speeds != nil {
			v = speeds[n]
		}
		if best < 0 || v > bestSpeed {
			best, bestSpeed = n, v
		}
	}
	return best
}

// Imbalance measures how far a pattern's per-node cell shares deviate from
// the speed-proportional ideal: max_n share_n / idealShare_n − 1. Zero means
// perfectly speed-proportional load.
func Imbalance(p *pattern.Pattern, speeds []float64) float64 {
	counts := p.Counts()
	if len(counts) != len(speeds) {
		panic(fmt.Sprintf("hetero: %d nodes in pattern, %d speeds", len(counts), len(speeds)))
	}
	totalCells := 0
	for _, c := range counts {
		totalCells += c
	}
	totalSpeed := 0.0
	for _, v := range speeds {
		totalSpeed += v
	}
	worst := 0.0
	for n, c := range counts {
		ideal := speeds[n] / totalSpeed
		share := float64(c) / float64(totalCells)
		if dev := share/ideal - 1; dev > worst {
			worst = dev
		}
	}
	return worst
}

var _ dist.PatternDistribution = (*Mapped)(nil)

package hetero

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/simulate"
)

func TestSlotsBasic(t *testing.T) {
	s, err := Slots([]float64{1, 1, 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 2 || s[1] != 2 || s[2] != 4 {
		t.Fatalf("Slots = %v, want [2 2 4]", s)
	}
}

func TestSlotsSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		P := 1 + rng.Intn(12)
		speeds := make([]float64, P)
		for i := range speeds {
			speeds[i] = 0.5 + 2*rng.Float64()
		}
		total := P + rng.Intn(4*P)
		s, err := Slots(speeds, total)
		if err != nil {
			return false
		}
		sum := 0
		for n, w := range s {
			if w < 1 {
				t.Logf("node %d got %d slots", n, w)
				return false
			}
			sum += w
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSlotsProportionality(t *testing.T) {
	// With a large total the apportionment approaches the exact ratios.
	speeds := []float64{1, 2, 3, 4}
	s, err := Slots(speeds, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for n, w := range s {
		ideal := speeds[n] / 10 * 1000
		if math.Abs(float64(w)-ideal) > 2 {
			t.Errorf("node %d: %d slots, ideal %.0f", n, w, ideal)
		}
	}
}

func TestSlotsErrors(t *testing.T) {
	if _, err := Slots(nil, 4); err == nil {
		t.Error("empty speeds accepted")
	}
	if _, err := Slots([]float64{1, -1}, 4); err == nil {
		t.Error("negative speed accepted")
	}
	if _, err := Slots([]float64{1, 1, 1}, 2); err == nil {
		t.Error("fewer slots than nodes accepted")
	}
}

func TestNewG2DBCStructure(t *testing.T) {
	speeds := []float64{1, 1, 2, 2, 4}
	d, err := NewG2DBC(speeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Nodes() != 5 {
		t.Fatalf("Nodes = %d", d.Nodes())
	}
	p := d.Pattern()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Load proportional to speed within the apportionment rounding.
	if imb := Imbalance(p, speeds); imb > 0.15 {
		t.Errorf("imbalance %v too high", imb)
	}
	// Communication cost no worse than homogeneous G-2DBC over the virtual
	// slot count.
	virtualCost := dist.NewG2DBC(20).Pattern().CostLU()
	if c := p.CostLU(); c > virtualCost+1e-9 {
		t.Errorf("mapped cost %v exceeds virtual cost %v", c, virtualCost)
	}
}

func TestNewG2DBCErrors(t *testing.T) {
	if _, err := NewG2DBC([]float64{1, 2}, 0); err == nil {
		t.Error("granularity 0 accepted")
	}
	if _, err := NewG2DBC([]float64{1, 0}, 2); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestHomogeneousSpeedsMatchG2DBCBalance(t *testing.T) {
	speeds := []float64{1, 1, 1, 1, 1, 1}
	d, err := NewG2DBC(speeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if imb := Imbalance(d.Pattern(), speeds); imb > 1e-9 {
		t.Errorf("homogeneous imbalance %v", imb)
	}
}

// TestHeterogeneousSimulation runs the simulator with per-node speeds: on a
// half-fast/half-slow machine, the speed-aware H-G2DBC distribution must
// beat the speed-oblivious G-2DBC (which overloads the slow nodes).
func TestHeterogeneousSimulation(t *testing.T) {
	const P, mt, b = 8, 40, 200
	speeds := make([]float64, P)
	for i := range speeds {
		if i < P/2 {
			speeds[i] = 2
		} else {
			speeds[i] = 1
		}
	}
	g := dag.NewLU(mt)
	m := simulate.Machine{Workers: 4, FlopsPerWorker: 1e9, LinkBandwidth: 50e9, Latency: 1e-6}

	oblivious, err := simulate.Run(g, b, dist.NewG2DBC(P), m, simulate.Options{NodeSpeed: speeds})
	if err != nil {
		t.Fatal(err)
	}
	aware, err2 := NewG2DBC(speeds, 4)
	if err2 != nil {
		t.Fatal(err2)
	}
	awareRes, err := simulate.Run(g, b, aware, m, simulate.Options{NodeSpeed: speeds})
	if err != nil {
		t.Fatal(err)
	}
	if awareRes.Makespan >= oblivious.Makespan {
		t.Errorf("speed-aware makespan %v not below oblivious %v",
			awareRes.Makespan, oblivious.Makespan)
	}
}

func TestSimulateNodeSpeedValidation(t *testing.T) {
	g := dag.NewLU(4)
	m := simulate.PaperMachine()
	if _, err := simulate.Run(g, 8, dist.NewTwoDBC(2, 2), m,
		simulate.Options{NodeSpeed: []float64{1, 1}}); err == nil {
		t.Error("wrong NodeSpeed length accepted")
	}
	if _, err := simulate.Run(g, 8, dist.NewTwoDBC(2, 2), m,
		simulate.Options{NodeSpeed: []float64{1, 1, 0, 1}}); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestImbalancePanics(t *testing.T) {
	d, err := NewG2DBC([]float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Imbalance(d.Pattern(), []float64{1, 2, 3})
}

// TestFastest pins the deterministic adopter rule the elastic runtime relies
// on: the highest-speed alive rank wins, ties break toward the lowest rank,
// a nil speed model degenerates to the lowest alive rank, and an empty alive
// set yields -1 — every survivor evaluating the rule on the same view must
// name the same adopter.
func TestFastest(t *testing.T) {
	all := func(int) bool { return true }
	cases := []struct {
		name   string
		speeds []float64
		alive  func(int) bool
		p      int
		want   int
	}{
		{"homogeneous picks lowest rank", nil, all, 4, 0},
		{"homogeneous skips the dead", nil, func(r int) bool { return r != 0 }, 4, 1},
		{"fastest wins", []float64{1, 3, 2, 1}, all, 4, 1},
		{"tie breaks to lowest rank", []float64{2, 1, 2, 2}, all, 4, 0},
		{"dead fastest falls back", []float64{1, 3, 2, 1}, func(r int) bool { return r != 1 }, 4, 2},
		{"nobody alive", nil, func(int) bool { return false }, 4, -1},
	}
	for _, c := range cases {
		if got := Fastest(c.speeds, c.alive, c.p); got != c.want {
			t.Errorf("%s: Fastest = %d, want %d", c.name, got, c.want)
		}
	}
}

package runtime

import (
	"testing"

	"anybc/internal/dist"
	"anybc/internal/gcrm"
	"anybc/internal/matrix"
)

// TestSoakPaperNodeCounts exercises the real runtime at the paper's flagship
// configuration: all 23 virtual nodes, multi-worker, on both kernels, with
// numerical verification and communication bookkeeping cross-checks.
func TestSoakPaperNodeCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const mt, b = 40, 8

	// LU under G-2DBC(23).
	dLU := dist.NewG2DBC(23)
	origLU := matrix.NewDiagDominant(mt, b, 99)
	factLU, repLU, err := FactorLU(mt, b, dLU, GenDiagDominant(mt, b, 99), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res := matrix.ResidualLU(origLU, factLU); res > 1e-10 {
		t.Errorf("LU residual %g", res)
	}
	pred := dLU.Pattern().CommVolumeLU(mt)
	if got := float64(repLU.Stats.TotalMessages()); got > pred || got < 0.8*pred {
		t.Errorf("LU messages %v outside (0.8..1]×prediction %v", got, pred)
	}

	// Cholesky under GCR&M(23).
	res23, err := gcrm.Search(23, gcrm.SearchOptions{Seeds: 20, SizeFactor: 4, BaseSeed: 3, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	dCh := dist.NewDiagResolver("GCR&M(P=23)", res23.Pattern)
	origCh := matrix.NewSPD(mt, b, 98)
	factCh, repCh, err := FactorCholesky(mt, b, dCh, GenSPD(mt, b, 98), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res := matrix.ResidualCholesky(origCh, factCh); res > 1e-10 {
		t.Errorf("Cholesky residual %g", res)
	}
	// The Cholesky volume under GCR&M must stay below the best 2DBC's.
	dbc := dist.Best2DBC(23)
	_, repDBC, err := FactorCholesky(mt, b, dbc, GenSPD(mt, b, 98), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if repCh.Stats.TotalMessages() >= repDBC.Stats.TotalMessages() {
		t.Errorf("GCR&M messages %d not below 2DBC %d",
			repCh.Stats.TotalMessages(), repDBC.Stats.TotalMessages())
	}

	// Load balance under GCR&M: every node executed work, flops within 2x of
	// the mean (symmetric patterns are balanced in tiles, not exactly in
	// flops, because tile cost varies by kernel).
	mean := 0.0
	for _, f := range repCh.FlopsPerNode {
		mean += f
	}
	mean /= float64(len(repCh.FlopsPerNode))
	for n, f := range repCh.FlopsPerNode {
		if f == 0 {
			t.Errorf("node %d executed nothing", n)
		}
		if f > 2*mean || f < mean/2 {
			t.Errorf("node %d flops %.0f far from mean %.0f", n, f, mean)
		}
	}
}

// TestSoakVersionedProtocolRelease drives the versioned tile protocol and the
// last-reader release path under concurrency (meant for -race): both kernels,
// block-cyclic and symmetric distributions, multiple workers per node. Beyond
// the residuals, it checks the tile-lifetime invariant: the per-node working
// set peak never exceeds the old keep-everything footprint, and across a full
// factorization the release path reclaims tiles on at least one node.
func TestSoakVersionedProtocolRelease(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const mt, b = 28, 6

	checkPeaks := func(t *testing.T, rep *Report) {
		t.Helper()
		sumPeak, sumFoot := 0, 0
		for n, peak := range rep.PeakTilesPerNode {
			foot := rep.OwnedTilesPerNode[n] + rep.ReceivedTilesPerNode[n]
			if peak > foot {
				t.Errorf("node %d peak %d above whole-run footprint %d", n, peak, foot)
			}
			sumPeak += peak
			sumFoot += foot
		}
		if sumPeak >= sumFoot {
			t.Errorf("release path reclaimed nothing: peak %d vs footprint %d", sumPeak, sumFoot)
		}
	}

	t.Run("LU", func(t *testing.T) {
		for _, d := range []dist.Distribution{dist.NewG2DBC(13), dist.NewSBCPair(6)} {
			orig := matrix.NewDiagDominant(mt, b, 77)
			fact, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 77), Options{Workers: 4})
			if err != nil {
				t.Fatalf("%s: %v", d.Name(), err)
			}
			if res := matrix.ResidualLU(orig, fact); res > 1e-10 {
				t.Errorf("%s: residual %g", d.Name(), res)
			}
			checkPeaks(t, rep)
		}
	})

	t.Run("Cholesky", func(t *testing.T) {
		for _, d := range []dist.Distribution{dist.NewG2DBC(13), dist.NewSBCEven(6)} {
			orig := matrix.NewSPD(mt, b, 76)
			fact, rep, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 76), Options{Workers: 4})
			if err != nil {
				t.Fatalf("%s: %v", d.Name(), err)
			}
			if res := matrix.ResidualCholesky(orig, fact); res > 1e-10 {
				t.Errorf("%s: residual %g", d.Name(), res)
			}
			checkPeaks(t, rep)
		}
	})
}

package runtime

import (
	"testing"

	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/tile"
)

func TestDistributedSolveLU(t *testing.T) {
	const mt, b, nrhs = 8, 6, 3
	const seed = 14
	// Build a system with known solution: B = A·xTrue.
	a := matrix.NewDiagDominant(mt, b, seed)
	xTrue := matrix.NewRHS(mt, b, nrhs)
	xTrue.FillFunc(func(gi, k int) float64 { return matrix.ElementAt(seed+1, gi, k) })
	rhs := a.MulRHS(xTrue)

	for _, d := range []dist.Distribution{
		dist.NewTwoDBC(1, 1),
		dist.NewTwoDBC(2, 3),
		dist.NewG2DBC(7),
	} {
		for _, workers := range []int{1, 3} {
			x, rep, err := SolveLU(mt, b, nrhs, d, GenDiagDominant(mt, b, seed),
				func(i int) *tile.Tile { return rhs[i].Clone() }, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s: %v", d.Name(), err)
			}
			if diff := x.MaxAbsDiff(xTrue); diff > 1e-9 {
				t.Errorf("%s workers=%d: solution error %g", d.Name(), workers, diff)
			}
			if rep.Stats.TotalMessages() < 0 {
				t.Error("negative message count")
			}
		}
	}
}

func TestDistributedSolveCholesky(t *testing.T) {
	const mt, b, nrhs = 8, 6, 2
	const seed = 15
	a := matrix.NewSPD(mt, b, seed)
	xTrue := matrix.NewRHS(mt, b, nrhs)
	xTrue.FillFunc(func(gi, k int) float64 { return matrix.ElementAt(seed+1, gi, k) })
	rhs := a.MulRHS(xTrue)

	for _, d := range []dist.Distribution{
		dist.NewTwoDBC(2, 2),
		dist.NewSBCPair(4),
		dist.NewSBCEven(4),
	} {
		x, _, err := SolveCholesky(mt, b, nrhs, d, GenSPD(mt, b, seed),
			func(i int) *tile.Tile { return rhs[i].Clone() }, Options{Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if diff := x.MaxAbsDiff(xTrue); diff > 1e-9 {
			t.Errorf("%s: solution error %g", d.Name(), diff)
		}
	}
}

func TestSolveMatchesSequential(t *testing.T) {
	const mt, b, nrhs = 6, 5, 2
	const seed = 16
	// Sequential: factor + solve with the matrix package.
	ref := matrix.NewDiagDominant(mt, b, seed)
	if err := matrix.FactorLU(ref); err != nil {
		t.Fatal(err)
	}
	rhs := matrix.NewRHS(mt, b, nrhs)
	rhs.FillFunc(func(gi, k int) float64 { return matrix.ElementAt(seed+2, gi, k) })
	seq := rhs.Clone()
	matrix.SolveLU(ref, seq)

	x, _, err := SolveLU(mt, b, nrhs, dist.NewG2DBC(5), GenDiagDominant(mt, b, seed),
		func(i int) *tile.Tile { return rhs[i].Clone() }, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The backward chain accumulates in the opposite j order from the
	// sequential loop, so allow rounding-level differences only.
	if diff := x.MaxAbsDiff(seq); diff > 1e-13 {
		t.Errorf("distributed solve differs from sequential by %g", diff)
	}
}

func TestSolveDistName(t *testing.T) {
	sd := solveDist{Distribution: dist.NewTwoDBC(2, 2), mt: 4}
	if sd.Name() != "2DBC(2x2)+rhs" {
		t.Errorf("Name = %q", sd.Name())
	}
	if sd.Owner(1, 4) != sd.Distribution.Owner(1, 1) {
		t.Error("RHS tile not mapped to diagonal owner")
	}
	if sd.Owner(1, 2) != sd.Distribution.Owner(1, 2) {
		t.Error("matrix tile mapping changed")
	}
}

// Elastic recovery: ownership migration off dead nodes, and speculative
// replay of lagging ones (Options.Elastic / Options.LagReRequests).
//
// The design rests on three invariants the normal protocol already provides:
//
//  1. Every tile version a dead node consumed remotely was broadcast by its
//     owner, and resilient owners snapshot every broadcast version into their
//     published cache — so all remote inputs of the dead node's tasks remain
//     reconstructible via the Request/Resend protocol.
//  2. Initial tile contents are deterministic (the gen generator), so the
//     dead node's own tiles can be regenerated from scratch and its entire
//     writer chains replayed in place, in the original dependency order.
//  3. Kernels are deterministic, so a replayed task's output is bit-identical
//     to the lost original — duplicate publications (a pre-crash in-flight
//     copy racing the replay, or a laggard finally answering a speculation)
//     drop idempotently at every receiver, and the final factors match a
//     crash-free run exactly.
//
// Adoption therefore migrates tasks, not tiles: the adopter re-runs the dead
// node's full task set under the original versioned tags, and downstream
// consumers cannot tell the difference. The adopter is chosen without any
// coordination — hetero.Fastest over the locally known alive set — because
// every survivor evaluates the same deterministic rule on the same NoteDown
// gossip. The scope is one death (or any sequence of deaths that leaves the
// deterministic choice unambiguous); concurrent independent deaths with
// divergent alive-views are out of scope and documented in DESIGN.md §9.
package runtime

import (
	"fmt"
	"time"

	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/hetero"
	"anybc/internal/sched"
	"anybc/internal/tile"
)

// peersSettled reports whether every peer has announced completion or death —
// the exit condition of the elastic barrier. A node's own doneSent already
// set peerDone[rank].
func (e *engine) peersSettled() bool {
	for r := range e.peerDone {
		if r == e.rank {
			continue
		}
		if !e.peerDone[r] && !e.dead[r] {
			return false
		}
	}
	return true
}

// onNote handles a membership notice from the out-of-band plane.
func (e *engine) onNote(msg cluster.Message) {
	if !e.elastic {
		return
	}
	switch msg.Note {
	case cluster.NoteDone:
		e.peerDone[msg.NoteRank] = true
	case cluster.NoteDown:
		if msg.NoteRank == e.rank {
			// A peer presumed us dead — a false positive, since we are
			// demonstrably alive. Keep computing: the adopter's replay
			// produces bit-identical duplicates of everything we publish,
			// so the split view converges idempotently.
			return
		}
		e.markDead(msg.NoteRank, false)
	}
}

// liveOwner maps a rank through the adoption chain to whoever now produces
// (and re-serves) its tile versions: the rank itself while alive, its adopter
// once dead, or -1 when a dead rank has no adopter yet.
func (e *engine) liveOwner(rank int) int {
	if !e.elastic {
		return rank
	}
	for e.dead[rank] {
		next := e.adoptedBy[rank]
		if next < 0 || next == rank {
			return -1
		}
		rank = next
	}
	return rank
}

// markDead records rank's death, gossips it when this node is the detector
// (gossip=true; the dying node announces itself, so crash notes are not
// re-gossiped), deterministically selects the adopter, and — when that is
// this node — migrates the dead node's tasks here.
func (e *engine) markDead(rank int, gossip bool) {
	if rank == e.rank || e.dead[rank] {
		return
	}
	e.dead[rank] = true
	if gossip {
		e.comm.Notify(cluster.NoteDown, rank)
	}
	adopter := hetero.Fastest(e.speeds, func(r int) bool { return !e.dead[r] }, e.comm.Size())
	e.adoptedBy[rank] = adopter
	if e.rec != nil {
		e.rec.RecordFault("node-down", rank, adopter,
			fmt.Sprintf("adopter %d", adopter), time.Since(e.epoch).Seconds())
	}
	// The dead node's delivery debts transfer to its adopter: restart the
	// retry budget of every version the dead node owed us, so the countdown
	// that condemned the corpse is not held against the heir while it
	// replays.
	now := time.Now()
	for tag, p := range e.pending {
		if e.owner(int(tag.I), int(tag.J)) == rank {
			p.attempts = 0
			p.backoff = e.arrival
			p.deadline = now.Add(e.arrival)
		}
	}
	if adopter == e.rank && !e.peerDone[rank] {
		// A rank that announced completion before being presumed dead left a
		// complete published cache behind; only an incomplete rank's tasks
		// need re-running.
		e.adoptNode(rank)
	}
}

// adoptNode migrates the dead rank's entire task set onto this node. The
// whole set — not just tasks with unreceived outputs — because this node
// cannot know which outputs other consumers are still missing; replaying
// everything is always safe (duplicates drop idempotently) and keeps the
// migration decision local.
func (e *engine) adoptNode(rank int) {
	var tasks []dag.Task
	dag.ForEachTask(e.g, func(t dag.Task) {
		oi, oj := e.g.OutputTile(t)
		if e.owner(oi, oj) == rank {
			tasks = append(tasks, t)
		}
	})
	n := e.adoptTasks(tasks, false)
	if e.rec != nil {
		e.rec.RecordFault("adopt", e.rank, rank,
			fmt.Sprintf("%d tasks", n), time.Since(e.epoch).Seconds())
	}
}

// adoptChain speculatively adopts the producer chain of one overdue tile
// version whose owner is alive but lagging: the closure of the producer's
// ancestors within the laggard's own tasks, cut wherever a version is
// already at hand in recv. The replay runs at demoted priority
// (sched.Demote) so it never starves this node's own critical path, and its
// outputs are never sent back to the laggard.
func (e *engine) adoptChain(tag cluster.Tag) {
	root, ok := e.producerOf(tag)
	if !ok {
		return
	}
	lag := e.owner(int(tag.I), int(tag.J))
	visited := make(map[int]bool)
	var chain []dag.Task
	var walk func(t dag.Task)
	walk = func(t dag.Task) {
		id := e.g.ID(t)
		if visited[id] {
			return
		}
		visited[id] = true
		if _, mine := e.localIdx[id]; mine {
			return // native, or adopted by an earlier migration
		}
		e.g.Dependencies(t, func(dep dag.Task) {
			di, dj := e.g.OutputTile(dep)
			if e.owner(di, dj) != lag {
				return // non-laggard inputs resolve via recv or Request
			}
			dtag := cluster.Tag{I: int32(di), J: int32(dj), V: e.ver[e.g.ID(dep)]}
			if _, held := e.recv[dtag]; held {
				return // payload at hand: the chain cuts here
			}
			walk(dep)
		})
		chain = append(chain, t) // post-order: dependencies first
	}
	walk(root)
	if len(chain) == 0 {
		return
	}
	n := e.adoptTasks(chain, true)
	if e.rec != nil {
		e.rec.RecordFault("speculate", e.rank, lag,
			fmt.Sprintf("%d tasks for (%d,%d)v%d", n, tag.I, tag.J, tag.V),
			time.Since(e.epoch).Seconds())
	}
	// Every tag the chain will produce locally stops escalating its (alive)
	// owner toward presumed death: the replay is already racing the wire.
	for _, t := range chain {
		oi, oj := e.g.OutputTile(t)
		ptag := cluster.Tag{I: int32(oi), J: int32(oj), V: e.ver[e.g.ID(t)]}
		if p := e.pending[ptag]; p != nil {
			p.speculated = true
		}
	}
}

// producerOf returns the task producing the given versioned tag, building
// the tag→task index lazily on the first adoption (the happy path never pays
// for it).
func (e *engine) producerOf(tag cluster.Tag) (dag.Task, bool) {
	if e.taskByTag == nil {
		e.taskByTag = make(map[cluster.Tag]dag.Task, e.g.NumTasks())
		dag.ForEachTask(e.g, func(t dag.Task) {
			oi, oj := e.g.OutputTile(t)
			e.taskByTag[cluster.Tag{I: int32(oi), J: int32(oj), V: e.ver[e.g.ID(t)]}] = t
		})
	}
	t, ok := e.taskByTag[tag]
	return t, ok
}

// stashPublished materializes one of this node's own published versions as a
// synthetic arrival, so an adopted consumer reads the immutable snapshot
// instead of the live in-place buffer (which later native writers advance).
// The version is guaranteed cached: the node whose task was adopted consumed
// it remotely, so it was broadcast — and every broadcast is snapshotted.
func (e *engine) stashPublished(vtag cluster.Tag) {
	if _, held := e.recv[vtag]; held {
		return
	}
	e.pubMu.Lock()
	cached := e.published[vtag]
	e.pubMu.Unlock()
	if cached == nil {
		panic(fmt.Sprintf("runtime: node %d: adopted task needs local version %v that was never published", e.rank, vtag))
	}
	e.recv[vtag] = cluster.Message{From: e.rank, To: e.rank, Tag: vtag, Payload: cached}
	e.seen[vtag] = true
}

// fulfillLocal is the synthetic-arrival half of adoption: when a completed
// task's output version has same-node consumers that registered to await it
// as a network arrival (native tasks waiting on a now-adopted producer, or
// adopted tasks waiting on a native one), it stashes a snapshot into recv,
// marks the tag seen, and releases the waiters — exactly what onArrival
// would have done had the version crossed the wire. Waiters and pending are
// consumed here, so a stale copy arriving later (a pre-crash in-flight send,
// or a laggard finally answering) drops through the ordinary duplicate
// paths without double-decrementing any dependency count.
func (e *engine) fulfillLocal(netTag cluster.Tag, out *tile.Tile) {
	if e.seen[netTag] {
		return // the version arrived over the wire first; waiters were fed then
	}
	w := e.waiters[netTag]
	if len(w) == 0 && e.readers[netTag] == 0 {
		return
	}
	e.seen[netTag] = true
	if e.readers[netTag] > 0 {
		// Snapshot: out is advanced in place by the tile's later writers.
		e.recv[netTag] = cluster.Message{From: e.rank, To: e.rank, Tag: netTag, Payload: out.Clone()}
		if held := e.ownedTiles + len(e.recv); held > e.peakTiles {
			e.peakTiles = held
		}
	}
	for _, idx := range w {
		e.remaining[idx]--
		if e.remaining[idx] == 0 {
			e.pushReady(idx)
		}
	}
	delete(e.waiters, netTag)
	if p, ok := e.pending[netTag]; ok {
		if p.attempts > 0 {
			e.recovered++
		}
		delete(e.pending, netTag)
	}
}

// adoptTasks wires the given tasks into this engine's scheduling state and
// returns how many were actually added (tasks already native or previously
// adopted are skipped). demote selects the speculative priority band.
//
// Pass 1 registers every task (so intra-set dependency resolution sees the
// whole closure regardless of order); pass 2 resolves each task's
// dependencies and input tiles:
//
//   - a dependency adopted here releases its consumer directly at completion
//     (both sides replay in place on the regenerated buffers);
//   - a native dependency feeds the adopted consumer a published snapshot —
//     immediately when already completed, via fulfillLocal otherwise;
//   - anything else is awaited exactly like a network arrival, with an
//     immediate Request because the version may never have been addressed to
//     this node in the original schedule.
func (e *engine) adoptTasks(tasks []dag.Task, demote bool) int {
	added := make([]int, 0, len(tasks))
	for _, t := range tasks {
		id := e.g.ID(t)
		if _, ok := e.localIdx[id]; ok {
			continue
		}
		idx := len(e.owned)
		e.owned = append(e.owned, t)
		e.localIdx[id] = idx
		e.adoptedSet[id] = true
		key := sched.Band(sched.Key(t), e.band)
		if demote {
			key = sched.Demote(key)
		}
		e.keys = append(e.keys, key)
		e.remaining = append(e.remaining, 0)
		e.completed = append(e.completed, false)
		e.ins = append(e.ins, nil)
		e.inbuf = append(e.inbuf, nil)
		e.total++
		added = append(added, idx)
	}
	now := time.Now()
	for _, idx := range added {
		t := e.owned[idx]
		oi, oj := e.g.OutputTile(t)
		outTag := cluster.Tag{I: int32(oi), J: int32(oj)}

		// Dependency accounting: how many release events this task awaits,
		// and through which path each arrives.
		var selfPrev dag.Task
		hasSelfPrev := false
		rem := int32(0)
		e.g.Dependencies(t, func(dep dag.Task) {
			did := e.g.ID(dep)
			di, dj := e.g.OutputTile(dep)
			if di == oi && dj == oj {
				hasSelfPrev = true
				selfPrev = dep
			}
			vtag := cluster.Tag{I: int32(di), J: int32(dj), V: e.ver[did]}
			if li, ok := e.localIdx[did]; ok {
				if e.adoptedSet[did] {
					// Same side: released directly when the producer
					// completes here (onComplete's same-side branch).
					if !e.completed[li] {
						rem++
					}
					return
				}
				// Native producer, adopted consumer: fed through
				// fulfillLocal at its completion; nothing to await if it
				// already ran (the snapshot is stashed by the input-tile
				// sweep below).
				if !e.completed[li] {
					e.waiters[vtag] = append(e.waiters[vtag], idx)
					rem++
				}
				return
			}
			if di == oi && dj == oj {
				// Chain cut below this writer: the received predecessor
				// version seeds the replay buffer (below); nothing to await.
				return
			}
			if _, held := e.recv[vtag]; held {
				return // payload at hand
			}
			// Await it like a network arrival, requesting immediately — in
			// the original schedule this version may never have been
			// addressed to us, so no broadcast is coming.
			e.waiters[vtag] = append(e.waiters[vtag], idx)
			rem++
			delete(e.seen, vtag) // let a re-requested copy back in
			if e.pending[vtag] == nil {
				e.pending[vtag] = &pendingWait{
					deadline:   now.Add(e.arrival),
					backoff:    e.arrival,
					speculated: demote,
				}
				if target := e.liveOwner(e.owner(di, dj)); target >= 0 && target != e.rank {
					e.comm.Request(target, vtag)
					e.reRequests++
				}
			}
		})
		e.remaining[idx] = rem

		// Replay buffer for the output tile: the first adopted writer
		// regenerates it from gen; a chain cut below the first writer seeds
		// it from the received predecessor version; an adopted previous
		// writer leaves creation to its own step (it completes before this
		// task can dispatch, and dispatch resolves buffers lazily).
		if _, ok := e.tiles[outTag]; !ok {
			if !hasSelfPrev {
				e.tiles[outTag] = e.gen(oi, oj)
			} else if pid := e.g.ID(selfPrev); !e.adoptedSet[pid] {
				ptag := cluster.Tag{I: int32(oi), J: int32(oj), V: e.ver[pid]}
				m, held := e.recv[ptag]
				if !held {
					panic(fmt.Sprintf("runtime: node %d: writer chain of %v cut without predecessor %v at hand", e.rank, t, ptag))
				}
				e.tiles[outTag] = m.Payload.Clone()
			}
		}

		// Input references, in InputTiles visit order, mirroring newEngine:
		// reader counts are per input tile here, await registrations per
		// dependency above.
		var refs []inputRef
		e.g.InputTiles(t, func(i, j int) {
			base := cluster.Tag{I: int32(i), J: int32(j)}
			v, produced := dag.InputVersion(e.g, e.ver, t, i, j)
			if !produced {
				// Initial contents — prevalidate guarantees only a tile's
				// owner reads those, so this is a tile of the adopted rank:
				// regenerate it deterministically.
				if _, ok := e.tiles[base]; !ok {
					e.tiles[base] = e.gen(i, j)
				}
				refs = append(refs, inputRef{tag: base})
				return
			}
			vtag := cluster.Tag{I: int32(i), J: int32(j), V: v}
			producer, ok := e.producerOf(vtag)
			if !ok {
				panic(fmt.Sprintf("runtime: node %d: no producer for input %v of adopted %v", e.rank, vtag, t))
			}
			pid := e.g.ID(producer)
			if e.adoptedSet[pid] {
				// In-chain: read the replayed in-place buffer, aliased with
				// the writer chain exactly as on the original owner.
				refs = append(refs, inputRef{tag: base})
				return
			}
			if i == oi && j == oj {
				// Chain cut: the seeded replay buffer holds this version.
				refs = append(refs, inputRef{tag: base})
				return
			}
			// Snapshot read: a native version (stashed from the published
			// cache) or a remote version (recv-held or awaited).
			refs = append(refs, inputRef{remote: true, tag: vtag})
			e.readers[vtag]++
			if li, mine := e.localIdx[pid]; mine && e.completed[li] {
				e.stashPublished(vtag)
			}
			return
		})
		e.ins[idx] = refs
		e.inbuf[idx] = make([]*tile.Tile, len(refs))

		if rem == 0 {
			e.pushReady(idx)
		}
	}
	return len(added)
}

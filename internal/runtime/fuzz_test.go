package runtime

import (
	"sort"
	"testing"
	"time"

	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/tile"
)

// protoScenario is one (graph, distribution, kernel) configuration the
// protocol fuzzer drives through a whitebox engine.
type protoScenario struct {
	g    dag.Graph
	d    dist.Distribution
	b    int
	gen  func(i, j int) *tile.Tile
	kern Kernel
}

func luScenario() protoScenario {
	return protoScenario{
		g:    dag.NewLU(4),
		d:    dist.NewTwoDBC(2, 2),
		b:    3,
		gen:  GenDiagDominant(4, 3, 9),
		kern: LUKernel,
	}
}

// chainScenario is the multi-epoch stress: one tile rewritten twelve times on
// node 0, every version consumed remotely on node 1 — so the fuzzer's
// reorderings interleave twelve distinct write epochs of the same tile.
func chainScenario() protoScenario {
	const chain = 12
	var tasks []testTask
	for k := 0; k < chain; k++ {
		w := testTask{out: [2]int{0, 0}}
		if k > 0 {
			w.deps = []int{2 * (k - 1)}
		}
		tasks = append(tasks, w)
		tasks = append(tasks, testTask{
			out:  [2]int{k + 1, 0},
			deps: []int{2 * k},
			ins:  [][2]int{{0, 0}},
		})
	}
	return protoScenario{
		g: newTestGraph(chain+1, tasks),
		d: testDist{p: 2, owner: func(i, j int) int {
			if i == 0 {
				return 0
			}
			return 1
		}},
		b: 1,
		gen: func(i, j int) *tile.Tile { return tile.New(1, 1) },
		kern: func(task dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
			if int(task.I)%2 == 0 {
				out.Set(0, 0, out.At(0, 0)+1)
			} else {
				out.Set(0, 0, inputs[0].At(0, 0))
			}
			return nil
		},
	}
}

// sequentialSnapshots executes the whole graph on one address space in
// dependency order and captures every published (tile, version) right after
// its write — the payloads a perfect network would deliver — plus the final
// content of every tile.
func sequentialSnapshots(t testing.TB, sc protoScenario, ver []int32) (map[cluster.Tag]*tile.Tile, map[[2]int]*tile.Tile) {
	t.Helper()
	tiles := map[[2]int]*tile.Tile{}
	dag.ForEachTask(sc.g, func(tk dag.Task) {
		oi, oj := sc.g.OutputTile(tk)
		if tiles[[2]int{oi, oj}] == nil {
			tiles[[2]int{oi, oj}] = sc.gen(oi, oj)
		}
	})
	n := sc.g.NumTasks()
	indeg := make([]int, n)
	var queue []int
	dag.ForEachTask(sc.g, func(tk dag.Task) {
		id := sc.g.ID(tk)
		indeg[id] = sc.g.NumDependencies(tk)
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	})
	snaps := map[cluster.Tag]*tile.Tile{}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		tk := sc.g.TaskOf(id)
		oi, oj := sc.g.OutputTile(tk)
		out := tiles[[2]int{oi, oj}]
		var ins []*tile.Tile
		sc.g.InputTiles(tk, func(i, j int) {
			// Readers consume the version their dependency produced, which an
			// in-place sequential sweep may already have overwritten — resolve
			// through the snapshots exactly like a remote consumer would.
			if v, ok := dag.InputVersion(sc.g, ver, tk, i, j); ok {
				if s := snaps[cluster.Tag{I: int32(i), J: int32(j), V: v}]; s != nil {
					ins = append(ins, s)
					return
				}
			}
			ins = append(ins, tiles[[2]int{i, j}])
		})
		if err := sc.kern(tk, out, ins); err != nil {
			t.Fatalf("sequential reference kernel %v: %v", tk, err)
		}
		snaps[cluster.Tag{I: int32(oi), J: int32(oj), V: ver[id]}] = out.Clone()
		sc.g.Successors(tk, func(s dag.Task) {
			sid := sc.g.ID(s)
			if indeg[sid]--; indeg[sid] == 0 {
				queue = append(queue, sid)
			}
		})
	}
	return snaps, tiles
}

// byteAt cycles through the fuzz input (zero when empty).
func byteAt(data []byte, k int) byte {
	if len(data) == 0 {
		return 0
	}
	return data[k%len(data)]
}

// driveEngine feeds one node's awaited arrivals in a fuzz-chosen order, with
// fuzz-chosen duplicates, through real pooled cluster messages, pumping the
// engine's ready queue synchronously after each delivery. Whatever the
// schedule, the node must finish all owned tasks and produce exactly the
// sequential factorization — and never panic or double-release a pooled
// payload (the pool's refcounts are live because the messages come from a
// real Comm).
func driveEngine(t *testing.T, sc protoScenario, rank int, data []byte) {
	ver, err := prevalidate(sc.g, sc.d)
	if err != nil {
		t.Fatal(err)
	}
	snaps, finals := sequentialSnapshots(t, sc, ver)

	cl := cluster.New(sc.d.Nodes())
	defer cl.Close()
	e := newEngine(rank, cl.Comm(rank), sc.g, sc.d, sc.b, sc.gen, sc.kern,
		Options{Workers: 1}, ver, time.Now())
	if len(e.owned) == 0 {
		t.Fatalf("rank %d owns nothing; scenario proves nothing", rank)
	}

	// Deterministic base order of awaited arrivals, then a fuzz-driven
	// Fisher–Yates shuffle.
	var tags []cluster.Tag
	for tag := range e.waiters {
		tags = append(tags, tag)
	}
	sort.Slice(tags, func(a, b int) bool {
		x, y := tags[a], tags[b]
		if x.I != y.I {
			return x.I < y.I
		}
		if x.J != y.J {
			return x.J < y.J
		}
		return x.V < y.V
	})
	for i := len(tags) - 1; i > 0; i-- {
		j := int(byteAt(data, len(tags)-1-i)) % (i + 1)
		tags[i], tags[j] = tags[j], tags[i]
	}

	popped := 0
	pump := func() {
		for !e.ready.Empty() {
			idx := int(e.ready.Pop())
			popped++
			tk := e.owned[idx]
			oi, oj := sc.g.OutputTile(tk)
			out := e.tiles[cluster.Tag{I: int32(oi), J: int32(oj)}]
			var inputs []*tile.Tile
			for _, ref := range e.ins[idx] {
				if ref.remote {
					inputs = append(inputs, e.recv[ref.tag].Payload)
				} else {
					inputs = append(inputs, e.tiles[ref.tag])
				}
			}
			if err := sc.kern(tk, out, inputs); err != nil {
				t.Fatalf("kernel %v: %v", tk, err)
			}
			e.onComplete(idx)
		}
	}
	feed := func(msg cluster.Message) {
		if err := e.onArrival(msg); err != nil {
			t.Fatalf("arrival %v rejected: %v", msg.Tag, err)
		}
	}

	for idx := range e.owned {
		if e.remaining[idx] == 0 {
			e.pushReady(idx)
		}
	}
	pump()

	// Deliveries travel through a real Comm so payloads are pooled clones
	// with live refcounts; a high bit in the fuzz input duplicates that
	// delivery (sharing the refcount, like a faulty transport would), and
	// the 0x40 bit duplicates it and then drops one copy the way a faulty
	// network does — Release without delivery — in a fuzz-chosen order
	// relative to the real delivery. A broadcast buffer must survive every
	// interleaving with its refcount balanced (the chaos × shared-payload
	// property: duplicated-then-dropped never double-Releases into the pool).
	sender := cl.Comm((rank + 1) % sc.d.Nodes())
	for k, tag := range tags {
		pay := snaps[tag]
		if pay == nil {
			t.Fatalf("no published snapshot for awaited tag %v", tag)
		}
		sender.Send(rank, tag, pay)
		msg, ok := cl.Comm(rank).Recv()
		if !ok {
			t.Fatal("mailbox closed mid-test")
		}
		ctl := byteAt(data, len(tags)+k)
		switch {
		case ctl&0x40 != 0:
			dup := msg.Dup()
			if ctl&0x20 != 0 {
				dup.Release() // network drops the duplicate before delivery
				feed(msg)
			} else {
				feed(msg)
				pump()
				dup.Release() // ... or after the original was consumed
			}
		case ctl&0x80 != 0:
			dup := msg.Dup()
			feed(msg)
			pump()
			feed(dup)
		default:
			feed(msg)
		}
		pump()
	}

	if popped != len(e.owned) {
		t.Fatalf("completed %d of %d owned tasks after all deliveries", popped, len(e.owned))
	}
	for idx := range e.owned {
		if e.remaining[idx] != 0 {
			t.Fatalf("task %v still has %d unresolved deps", e.owned[idx], e.remaining[idx])
		}
	}
	if len(e.recv) != 0 || len(e.readers) != 0 {
		t.Fatalf("release leak: %d retained tiles, %d reader counts after completion",
			len(e.recv), len(e.readers))
	}
	for tag, got := range e.tiles {
		want := finals[[2]int{int(tag.I), int(tag.J)}]
		if !got.EqualApprox(want, 0) {
			t.Fatalf("owned tile (%d,%d) diverged from the sequential factorization", tag.I, tag.J)
		}
	}
}

// FuzzVersionProtocol is the property-based attack on the Tag/version
// protocol: arbitrary interleavings of reordered, duplicated, and
// multi-epoch deliveries must never panic, never double-release a pooled
// payload, and always converge to the sequential factorization.
func FuzzVersionProtocol(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80})
	f.Add([]byte{0x40})
	f.Add([]byte{0x60, 0x40, 0x80, 0x60})
	f.Add([]byte{0x01, 0x80, 0x7f, 0xff, 0x03})
	f.Add([]byte("reorder and duplicate everything, please"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		driveEngine(t, luScenario(), 1, data)
		driveEngine(t, chainScenario(), 1, data)
	})
}

package runtime

import (
	"math/bits"
	"testing"

	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
)

// predictWireSplit walks the task graph under the owner-computes rule and
// returns the broadcast census for one run: the total logical messages and
// the number of hops the publishing owners themselves transmit under
// binomial-tree broadcast — ⌈log₂(k+1)⌉ per published tile with k > 1
// remote consumers, 1 for a point-to-point k = 1. The difference is the
// exact relay (forward) count the tree must produce.
func predictWireSplit(g dag.Graph, d dist.Distribution) (messages, ownerHops int64) {
	seen := map[int]bool{}
	dag.ForEachTask(g, func(t dag.Task) {
		oi, oj := g.OutputTile(t)
		src := d.Owner(oi, oj)
		for dst := range seen {
			delete(seen, dst)
		}
		g.Successors(t, func(s dag.Task) {
			si, sj := g.OutputTile(s)
			if dst := d.Owner(si, sj); dst != src {
				seen[dst] = true
			}
		})
		k := len(seen)
		if k == 0 {
			return
		}
		messages += int64(k)
		if k == 1 {
			ownerHops++
		} else {
			ownerHops += int64(bits.Len(uint(k))) // ⌈log₂(k+1)⌉ for k ≥ 1
		}
	})
	return messages, ownerHops
}

// TestTreeBroadcastG2DBC23 is the tentpole acceptance test on the paper's
// flagship case (LU, 23-node G-2DBC): tree broadcast must cut the owner's
// serialized NIC sends per published tile from k to ⌈log₂(k+1)⌉ — asserted
// exactly against the graph census — while the logical Eq (1)/(2) message
// matrix, the total wire-hop count, and the final factors stay identical to
// flat mode at every worker count.
func TestTreeBroadcastG2DBC23(t *testing.T) {
	const mt, b = 12, 4
	d := dist.NewG2DBC(23)
	g := dag.NewLU(mt)
	wantMsgs, wantOwnerHops := predictWireSplit(g, d)
	if wantOwnerHops >= wantMsgs {
		t.Fatalf("census finds no wide broadcasts (owner hops %d of %d messages); the case proves nothing",
			wantOwnerHops, wantMsgs)
	}

	flat, flatRep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 61), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := flatRep.Stats.TotalMessages(); got != wantMsgs {
		t.Fatalf("flat run sent %d logical messages, census predicts %d", got, wantMsgs)
	}
	if flatRep.Stats.TotalForwards() != 0 || flatRep.Stats.TotalHops() != wantMsgs {
		t.Fatalf("flat run wire ledger skewed: hops=%d forwards=%d, want %d/0",
			flatRep.Stats.TotalHops(), flatRep.Stats.TotalForwards(), wantMsgs)
	}

	for _, workers := range []int{1, 2, 8} {
		opt := Options{Workers: workers, Broadcast: cluster.BroadcastTree}
		fact, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 61), opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		identicalLU(t, "tree mode", flat, fact, mt)
		if rep.Broadcast != cluster.BroadcastTree {
			t.Fatalf("workers=%d: report says broadcast %s", workers, rep.Broadcast)
		}
		s := rep.Stats
		// Logical accounting is transport-independent, per pair: the tree
		// must not disturb the quantities the paper's Eq (1)/(2) predict.
		for i := range s.Messages {
			for j := range s.Messages[i] {
				if s.Messages[i][j] != flatRep.Stats.Messages[i][j] {
					t.Fatalf("workers=%d: pair %d->%d logical messages %d != flat %d",
						workers, i, j, s.Messages[i][j], flatRep.Stats.Messages[i][j])
				}
			}
		}
		// The wire moves the same hop count, split between owners and relays
		// exactly as the binomial census predicts: owners transmit
		// ⌈log₂(k+1)⌉ per broadcast instead of k.
		if s.TotalHops() != wantMsgs {
			t.Fatalf("workers=%d: %d wire hops, want %d (tree conserves hop count)",
				workers, s.TotalHops(), wantMsgs)
		}
		ownerHops := s.TotalHops() - s.TotalForwards()
		if ownerHops != wantOwnerHops {
			t.Fatalf("workers=%d: owners transmitted %d hops, census predicts Σ⌈log₂(k+1)⌉ = %d",
				workers, ownerHops, wantOwnerHops)
		}
		if s.TotalForwards() == 0 {
			t.Fatalf("workers=%d: no relayed hops; tree mode did not engage", workers)
		}
		forwarded := int64(0)
		for _, f := range rep.ForwardedPerNode {
			forwarded += int64(f)
		}
		if forwarded != s.TotalForwards() {
			t.Fatalf("workers=%d: engines report %d forwards, wire counted %d",
				workers, forwarded, s.TotalForwards())
		}
	}
}

// TestTreeBroadcastCholesky covers the second factorization kind at a
// smaller size: same conservation and census laws, so the tree transport is
// not LU-shaped by accident.
func TestTreeBroadcastCholesky(t *testing.T) {
	const mt, b = 10, 4
	d := dist.NewG2DBC(23)
	g := dag.NewCholesky(mt)
	wantMsgs, wantOwnerHops := predictWireSplit(g, d)

	flat, flatRep, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 62), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fact, rep, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 62),
		Options{Workers: 2, Broadcast: cluster.BroadcastTree})
	if err != nil {
		t.Fatal(err)
	}
	identicalCholesky(t, "tree mode", flat, fact, mt)
	if got := rep.Stats.TotalMessages(); got != wantMsgs || got != flatRep.Stats.TotalMessages() {
		t.Fatalf("logical messages %d (flat %d), census predicts %d",
			got, flatRep.Stats.TotalMessages(), wantMsgs)
	}
	if rep.Stats.TotalHops() != wantMsgs {
		t.Fatalf("%d wire hops, want %d", rep.Stats.TotalHops(), wantMsgs)
	}
	if ownerHops := rep.Stats.TotalHops() - rep.Stats.TotalForwards(); ownerHops != wantOwnerHops {
		t.Fatalf("owners transmitted %d hops, census predicts %d", ownerHops, wantOwnerHops)
	}
}

package runtime

import (
	"strings"
	"testing"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/tile"
	"anybc/internal/trace"
)

// ---- configurable test graph -------------------------------------------

const kTest dag.Kind = 200

// testTask describes one task of a hand-built graph: its output tile, the
// ids of its direct dependencies, and the tiles it reads.
type testTask struct {
	out  [2]int
	deps []int
	ins  [][2]int
}

// testGraph is a literal dag.Graph for protocol tests: ids are topological
// (dependencies always point to lower ids, matching the generic ForEachTask
// fallback).
type testGraph struct {
	tiles int
	tasks []testTask
	succ  [][]int
}

func newTestGraph(tiles int, tasks []testTask) *testGraph {
	g := &testGraph{tiles: tiles, tasks: tasks, succ: make([][]int, len(tasks))}
	for id, t := range tasks {
		for _, d := range t.deps {
			g.succ[d] = append(g.succ[d], id)
		}
	}
	return g
}

func (g *testGraph) Name() string          { return "test" }
func (g *testGraph) Tiles() int            { return g.tiles }
func (g *testGraph) NumTasks() int         { return len(g.tasks) }
func (g *testGraph) ID(t dag.Task) int     { return int(t.I) }
func (g *testGraph) TaskOf(id int) dag.Task { return dag.Task{Kind: kTest, I: int32(id)} }

func (g *testGraph) Dependencies(t dag.Task, visit func(dag.Task)) {
	for _, d := range g.tasks[t.I].deps {
		visit(g.TaskOf(d))
	}
}

func (g *testGraph) Successors(t dag.Task, visit func(dag.Task)) {
	for _, s := range g.succ[t.I] {
		visit(g.TaskOf(s))
	}
}

func (g *testGraph) NumDependencies(t dag.Task) int { return len(g.tasks[t.I].deps) }

func (g *testGraph) OutputTile(t dag.Task) (int, int) {
	o := g.tasks[t.I].out
	return o[0], o[1]
}

func (g *testGraph) InputTiles(t dag.Task, visit func(i, j int)) {
	for _, in := range g.tasks[t.I].ins {
		visit(in[0], in[1])
	}
}

func (g *testGraph) Flops(t dag.Task, b int) float64 { return 1 }
func (g *testGraph) TotalFlops(b int) float64        { return float64(len(g.tasks)) }

// testDist maps tiles to nodes through a literal function.
type testDist struct {
	p     int
	owner func(i, j int) int
}

func (d testDist) Name() string       { return "testdist" }
func (d testDist) Nodes() int         { return d.p }
func (d testDist) Owner(i, j int) int { return d.owner(i, j) }

// ---- versioned delivery -------------------------------------------------

// TestMultiVersionRemoteConsumption is the protocol change end-to-end: tile
// (0,0) is written twice on node 0 and each version is consumed remotely on
// node 1. The pre-versioned runtime panicked on the second arrival
// ("duplicate tile"); the versioned protocol must deliver both states and
// give each consumer the version its dependency produced.
func TestMultiVersionRemoteConsumption(t *testing.T) {
	// id 0: W0 writes (0,0)            = 10
	// id 1: R0 reads (0,0)@v0, writes (1,0) = v0 + 100
	// id 2: W1 rewrites (0,0) in place = v0 + 5
	// id 3: R1 reads (0,0)@v1, writes (2,0) = v1 + 1000
	g := newTestGraph(3, []testTask{
		{out: [2]int{0, 0}},
		{out: [2]int{1, 0}, deps: []int{0}, ins: [][2]int{{0, 0}}},
		{out: [2]int{0, 0}, deps: []int{0}},
		{out: [2]int{2, 0}, deps: []int{2}, ins: [][2]int{{0, 0}}},
	})
	d := testDist{p: 2, owner: func(i, j int) int {
		if i == 0 {
			return 0
		}
		return 1
	}}
	kern := func(task dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
		switch task.I {
		case 0:
			out.Set(0, 0, 10)
		case 1:
			out.Set(0, 0, inputs[0].At(0, 0)+100)
		case 2:
			out.Set(0, 0, out.At(0, 0)+5)
		case 3:
			out.Set(0, 0, inputs[0].At(0, 0)+1000)
		}
		return nil
	}
	gen := func(i, j int) *tile.Tile { return tile.New(1, 1) }

	for _, workers := range []int{1, 3} {
		got := map[[2]int]float64{}
		rep, err := Run(g, d, 1, gen, kern, Options{Workers: workers},
			func(i, j int, tl *tile.Tile) { got[[2]int{i, j}] = tl.At(0, 0) })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := map[[2]int]float64{{0, 0}: 15, {1, 0}: 110, {2, 0}: 1015}
		for k, w := range want {
			if got[k] != w {
				t.Errorf("workers=%d: tile %v = %v, want %v (wrong version consumed)",
					workers, k, got[k], w)
			}
		}
		// Two versions of (0,0) crossed the network to node 1.
		if n := rep.Stats.TotalMessages(); n != 2 {
			t.Errorf("workers=%d: %d messages, want 2", workers, n)
		}
		if rep.ReceivedTilesPerNode[1] != 2 {
			t.Errorf("workers=%d: node 1 received %d tiles, want 2",
				workers, rep.ReceivedTilesPerNode[1])
		}
	}
}

// TestMultiVersionChainRelease stresses a longer write chain with interleaved
// remote consumers of every version, checking values and that released
// copies keep the peak below the whole-run footprint.
func TestMultiVersionChainRelease(t *testing.T) {
	const chain = 12
	// Writers W_k (k = 0..chain-1) rewrite tile (0,0): value after W_k is
	// k+1. Reader R_k on node 1 reads version k and writes (k+1, 0) = k+1.
	var tasks []testTask
	for k := 0; k < chain; k++ {
		w := testTask{out: [2]int{0, 0}}
		if k > 0 {
			w.deps = []int{2 * (k - 1)}
		}
		tasks = append(tasks, w)
		tasks = append(tasks, testTask{
			out:  [2]int{k + 1, 0},
			deps: []int{2 * k},
			ins:  [][2]int{{0, 0}},
		})
	}
	g := newTestGraph(chain+1, tasks)
	d := testDist{p: 2, owner: func(i, j int) int {
		if i == 0 {
			return 0
		}
		return 1
	}}
	kern := func(task dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
		if int(task.I)%2 == 0 {
			out.Set(0, 0, out.At(0, 0)+1)
		} else {
			out.Set(0, 0, inputs[0].At(0, 0))
		}
		return nil
	}
	gen := func(i, j int) *tile.Tile { return tile.New(1, 1) }

	got := map[int]float64{}
	rep, err := Run(g, d, 1, gen, kern, Options{Workers: 2},
		func(i, j int, tl *tile.Tile) {
			if i > 0 {
				got[i] = tl.At(0, 0)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= chain; k++ {
		if got[k] != float64(k) {
			t.Errorf("reader %d saw %v, want %v", k, got[k], float64(k))
		}
	}
	if rep.ReceivedTilesPerNode[1] != chain {
		t.Errorf("node 1 received %d versions, want %d", rep.ReceivedTilesPerNode[1], chain)
	}
	foot := rep.OwnedTilesPerNode[1] + rep.ReceivedTilesPerNode[1]
	if rep.PeakTilesPerNode[1] > foot {
		t.Errorf("node 1 peak %d above footprint %d", rep.PeakTilesPerNode[1], foot)
	}
}

// ---- prevalidation ------------------------------------------------------

func TestPrevalidateRemoteInitialRead(t *testing.T) {
	// One task on node 1 reads tile (0,0) that nothing produces and node 0
	// owns: the protocol has no way to deliver it, so Run must fail up front
	// with a descriptive error instead of panicking inside an engine.
	g := newTestGraph(2, []testTask{
		{out: [2]int{1, 0}, ins: [][2]int{{0, 0}}},
	})
	d := testDist{p: 2, owner: func(i, j int) int { return i }}
	_, err := Run(g, d, 1, func(i, j int) *tile.Tile { return tile.New(1, 1) },
		func(task dag.Task, out *tile.Tile, inputs []*tile.Tile) error { return nil },
		Options{}, nil)
	if err == nil || !strings.Contains(err.Error(), "initial contents") {
		t.Fatalf("expected initial-contents error, got %v", err)
	}
}

func TestPrevalidateUnserializedWriters(t *testing.T) {
	// Two independent tasks both write tile (0,0): their kernels would race
	// and both would claim version 0.
	g := newTestGraph(1, []testTask{
		{out: [2]int{0, 0}},
		{out: [2]int{0, 0}},
	})
	d := testDist{p: 1, owner: func(i, j int) int { return 0 }}
	_, err := Run(g, d, 1, func(i, j int) *tile.Tile { return tile.New(1, 1) },
		func(task dag.Task, out *tile.Tile, inputs []*tile.Tile) error { return nil },
		Options{}, nil)
	if err == nil || !strings.Contains(err.Error(), "serialize") {
		t.Fatalf("expected unserialized-writers error, got %v", err)
	}
}

func TestPrevalidateUnorderedIntermediateRead(t *testing.T) {
	// A local reader of an intermediate version with no ordering against the
	// next in-place writer: the read races the overwrite.
	g := newTestGraph(2, []testTask{
		{out: [2]int{0, 0}},                                     // W0
		{out: [2]int{1, 0}, deps: []int{0}, ins: [][2]int{{0, 0}}}, // reader of v0
		{out: [2]int{0, 0}, deps: []int{0}},                     // W1, unordered wrt reader
	})
	d := testDist{p: 1, owner: func(i, j int) int { return 0 }}
	_, err := Run(g, d, 1, func(i, j int) *tile.Tile { return tile.New(1, 1) },
		func(task dag.Task, out *tile.Tile, inputs []*tile.Tile) error { return nil },
		Options{}, nil)
	if err == nil || !strings.Contains(err.Error(), "next writer") {
		t.Fatalf("expected unordered-read error, got %v", err)
	}
}

func TestPrevalidateOwnerOutOfRange(t *testing.T) {
	g := dag.NewLU(3)
	d := testDist{p: 2, owner: func(i, j int) int { return 5 }}
	_, err := Run(g, d, 2, GenDiagDominant(3, 2, 1), LUKernel, Options{}, nil)
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("expected out-of-range error, got %v", err)
	}
}

// TestPrevalidateAcceptsBuiltinGraphs: every built-in graph family passes
// prevalidation under representative distributions (each paired with the
// same wrapper the public entry points use).
func TestPrevalidateAcceptsBuiltinGraphs(t *testing.T) {
	d := dist.NewG2DBC(5)
	cases := []struct {
		g dag.Graph
		d dist.Distribution
	}{
		{dag.NewLU(6), d},
		{dag.NewCholesky(6), d},
		{dag.NewCholeskyLeft(6), d},
		{dag.NewLUSolve(5, 2), solveDist{Distribution: d, mt: 5}},
		{dag.NewCholeskySolve(5, 2), solveDist{Distribution: d, mt: 5}},
		{dag.NewSYRKOp(5, 4), syrkDist{Distribution: d, mt: 5}},
		{dag.NewGEMMOp(4, 4, 4), gemmDist{Distribution: d, mt: 4, nt: 4}},
	}
	for _, c := range cases {
		if _, err := prevalidate(c.g, c.d); err != nil {
			t.Errorf("%s rejected: %v", c.g.Name(), err)
		}
	}
}

// ---- real-run tracing ---------------------------------------------------

// TestRealRunTrace: a real distributed factorization with a Recorder attached
// produces a consistent wall-clock trace that validates and exports.
func TestRealRunTrace(t *testing.T) {
	const mt, b = 8, 4
	d := dist.NewG2DBC(5)
	rec := &trace.Recorder{}
	orig := matrix.NewDiagDominant(mt, b, 7)
	fact, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 7),
		Options{Workers: 3, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res := matrix.ResidualLU(orig, fact); res > 1e-11 {
		t.Errorf("residual %g", res)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if want := dag.NewLU(mt).NumTasks(); len(rec.Tasks) != want {
		t.Errorf("trace has %d task events, want %d", len(rec.Tasks), want)
	}
	if int64(len(rec.Messages)) != rep.Stats.TotalMessages() {
		t.Errorf("trace has %d messages, runtime sent %d",
			len(rec.Messages), rep.Stats.TotalMessages())
	}
	if mk, el := rec.Makespan(), rep.Elapsed.Seconds(); mk <= 0 || mk > el {
		t.Errorf("trace makespan %v outside (0, %v]", mk, el)
	}
	u := rec.Utilization(3, d.Nodes())
	if len(u) != d.Nodes() {
		t.Errorf("utilization for %d nodes, want %d", len(u), d.Nodes())
	}
	var gantt, msgs strings.Builder
	if err := rec.GanttCSV(&gantt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gantt.String(), "GETRF") {
		t.Errorf("Gantt CSV missing kernels: %q", gantt.String()[:80])
	}
	if err := rec.MessagesCSV(&msgs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msgs.String(), "src,dst") {
		t.Error("messages CSV missing header")
	}
}

// ---- bounded tile lifetime ----------------------------------------------

// TestPeakWorkingSetLU44 runs LU on the paper's 44-node cluster size: with
// received tiles released after their last consumer, the working-set peak
// must stay strictly below the old keep-everything footprint.
func TestPeakWorkingSetLU44(t *testing.T) {
	const mt, b = 24, 4
	d := dist.NewG2DBC(44)
	_, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 11), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sumPeak, sumFoot := 0, 0
	for n, peak := range rep.PeakTilesPerNode {
		foot := rep.OwnedTilesPerNode[n] + rep.ReceivedTilesPerNode[n]
		if peak > foot {
			t.Errorf("node %d peak %d above whole-run footprint %d", n, peak, foot)
		}
		if peak < rep.OwnedTilesPerNode[n] {
			t.Errorf("node %d peak %d below owned tiles %d", n, peak, rep.OwnedTilesPerNode[n])
		}
		sumPeak += peak
		sumFoot += foot
	}
	if sumPeak >= sumFoot {
		t.Errorf("total peak %d did not decrease below whole-run footprint %d", sumPeak, sumFoot)
	}
}

package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/tile"
)

// TestCancelSharedCluster is the regression test for the cancellation seam:
// cancelling one job's Context mid-run must return ErrCanceled, drain every
// pooled tile back to the shared cluster's pool (no tile.Pool leak), and
// leave the cluster perfectly usable — a subsequent job on a fresh namespace
// factors bit-identically to a solo run.
func TestCancelSharedCluster(t *testing.T) {
	const mt, b, P = 8, 4, 4
	d := dist.NewG2DBC(P)
	cl := cluster.NewWithOptions(P, cluster.Options{})
	defer cl.Close()

	// Job 1: a kernel that announces its first task, then runs slowly enough
	// that the cancellation always lands mid-factorization.
	started := make(chan struct{})
	var once sync.Once
	slowLU := func(task dag.Task, out *tile.Tile, in []*tile.Tile) error {
		once.Do(func() { close(started) })
		time.Sleep(2 * time.Millisecond)
		return LUKernel(task, out, in)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		<-started
		cancel(errors.New("tenant hit its deadline"))
	}()
	_, err := Run(dag.NewLU(mt), d, b, GenDiagDominant(mt, b, 31), slowLU,
		Options{Cluster: cl, Job: 1, Context: ctx}, func(i, j int, tl *tile.Tile) {})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancelled run returned %v, not ErrCanceled", err)
	}

	// No pool leak: every in-flight payload the aborted engines abandoned
	// must drain back to the shared pool. The absorbers release late
	// messages asynchronously after Run returns, so poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for cl.PoolOutstanding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled job leaked %d pooled tiles", cl.PoolOutstanding())
		}
		time.Sleep(time.Millisecond)
	}
	cl.DropJob(1)

	// The shared substrate is unpoisoned: job 2 on its own namespace
	// produces factors bit-identical to a solo dedicated-cluster run.
	got := matrix.NewDense(mt, mt, b)
	_, err = Run(dag.NewLU(mt), d, b, GenDiagDominant(mt, b, 32), LUKernel,
		Options{Cluster: cl, Job: 2}, func(i, j int, tl *tile.Tile) {
			got.SetTile(i, j, tl.Clone())
		})
	if err != nil {
		t.Fatalf("job after a cancelled tenant failed: %v", err)
	}
	cl.DropJob(2)
	want, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 32), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < mt; i++ {
		for j := 0; j < mt; j++ {
			if !got.Tile(i, j).EqualApprox(want.Tile(i, j), 0) {
				t.Fatalf("tile (%d,%d) differs from the solo run after a cancelled co-tenant", i, j)
			}
		}
	}
	if n := cl.PoolOutstanding(); n != 0 {
		t.Fatalf("pool imbalance after both jobs: %d tiles outstanding", n)
	}
}

// TestCancelBeforeStart: a Context already cancelled when Run is called must
// abort promptly with ErrCanceled rather than factoring anything.
func TestCancelBeforeStart(t *testing.T) {
	const mt, b, P = 6, 4, 3
	cl := cluster.NewWithOptions(P, cluster.Options{})
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(dag.NewLU(mt), dist.NewG2DBC(P), b, GenDiagDominant(mt, b, 5), LUKernel,
		Options{Cluster: cl, Job: 1, Context: ctx}, func(i, j int, tl *tile.Tile) {})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-cancelled run returned %v, not ErrCanceled", err)
	}
	cl.DropJob(1)
}

package runtime

import (
	"testing"
	"time"

	"anybc/internal/chaos"
	"anybc/internal/cluster"
	"anybc/internal/dist"
	"anybc/internal/matrix"
)

// TestReplicatedC1BitIdenticalToLU checks the degenerate case end to end:
// one layer runs the exact schedule of the unreplicated factorization, so
// the factors must match FactorLU bit for bit on the same base distribution.
func TestReplicatedC1BitIdenticalToLU(t *testing.T) {
	const mt, b = 8, 6
	for _, base := range []dist.Distribution{
		dist.NewTwoDBC(2, 3), dist.NewG2DBC(5), dist.NewG2DBC(16),
	} {
		want, _, err := FactorLU(mt, b, base, GenDiagDominant(mt, b, 5), Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, rep, err := FactorLUReplicated(mt, b, 1, base, GenDiagDominant(mt, b, 5), Options{Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", base.Name(), err)
		}
		identicalLU(t, base.Name(), want, got, mt)
		if n := rep.Stats.TotalReduces(); n != 0 {
			t.Fatalf("%s: c=1 run shipped %d reduction partials, want 0", base.Name(), n)
		}
	}
}

// TestReplicatedLUMatchesSequential checks numerical agreement for real
// replication factors. Exact equality with the dense run is impossible for
// c > 1 — slicing the update sum over layers reassociates floating-point
// additions — so the factors are compared against the sequential
// factorization at a tolerance far tighter than any algorithmic error.
func TestReplicatedLUMatchesSequential(t *testing.T) {
	const mt, b = 8, 6
	want := matrix.NewDiagDominant(mt, b, 5)
	if err := matrix.FactorLU(want); err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{2, 3, 4} {
		for _, base := range []dist.Distribution{dist.NewTwoDBC(2, 2), dist.NewG2DBC(5)} {
			got, rep, err := FactorLUReplicated(mt, b, c, base, GenDiagDominant(mt, b, 5), Options{Workers: 2})
			if err != nil {
				t.Fatalf("c=%d %s: %v", c, base.Name(), err)
			}
			for i := 0; i < mt; i++ {
				for j := 0; j < mt; j++ {
					if !got.Tile(i, j).EqualApprox(want.Tile(i, j), 1e-10) {
						t.Fatalf("c=%d %s: tile (%d,%d) differs from sequential beyond 1e-10",
							c, base.Name(), i, j)
					}
				}
			}
			if c > 1 && rep.Stats.TotalReduces() == 0 {
				t.Fatalf("c=%d %s: no reduction partials shipped", c, base.Name())
			}
		}
	}
}

// TestReplicatedDeterminism checks that a replicated run is exactly
// reproducible: repeats, worker counts and broadcast transports must all
// produce bit-identical factors (kernels run whole tasks and the reduce
// order is fixed by the graph, so no schedule choice can change FP order).
func TestReplicatedDeterminism(t *testing.T) {
	const mt, b, c = 8, 4, 2
	base := dist.NewG2DBC(6)
	ref, _, err := FactorLUReplicated(mt, b, c, base, GenDiagDominant(mt, b, 7), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		label string
		opt   Options
	}{
		{"repeat", Options{Workers: 1}},
		{"workers=4", Options{Workers: 4}},
		{"tree broadcast", Options{Workers: 2, Broadcast: cluster.BroadcastTree}},
	}
	for _, tc := range cases {
		got, _, err := FactorLUReplicated(mt, b, c, base, GenDiagDominant(mt, b, 7), tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		identicalLU(t, tc.label, ref, got, mt)
	}
}

// TestReplicatedChaos runs the replicated factorization under the full fault
// mix — delays, reorders, duplicates and dropped deliveries healed by
// re-requests — and requires bit-identical factors to the fault-free
// replicated run: reduction shipments must heal exactly like broadcasts.
func TestReplicatedChaos(t *testing.T) {
	const mt, b, c = 8, 4, 2
	base := dist.NewG2DBC(5)
	ref, _, err := FactorLUReplicated(mt, b, c, base, GenDiagDominant(mt, b, 13), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{20260808, 424242} {
		cfg := chaos.Config{
			Seed:       seed,
			PDelay:     0.25,
			PReorder:   0.10,
			PDuplicate: 0.10,
			PDrop:      0.05,
			MaxDelay:   300 * time.Microsecond,
		}
		opt, plan, rec := chaosOpts(t, cfg, 250*time.Millisecond, 2)
		got, _, err := FactorLUReplicated(mt, b, c, base, GenDiagDominant(mt, b, 13), opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dumpChaosArtifacts(t, "replicated", rec, plan)
		identicalLU(t, "chaos run", ref, got, mt)
		if len(plan.Events()) == 0 {
			t.Fatalf("seed %d: no faults injected; nothing was exercised", seed)
		}
	}
}

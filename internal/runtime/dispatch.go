package runtime

import (
	"sync"
	"time"

	"anybc/internal/dag"
	"anybc/internal/tile"
)

// job is one fully-resolved kernel execution: the event loop resolves the
// task's input tiles (from maps only it may touch) at feed time, so workers
// never read engine state. The task itself rides in the job (not just its
// index) because elastic adoption appends to the engine's owned-task slice
// mid-run — workers must not index a slice the event loop may be growing.
type job struct {
	idx    int
	task   dag.Task
	out    *tile.Tile
	inputs []*tile.Tile
}

// dispatcher is the node's intra-node work-stealing layer between the event
// loop's critical-path heap and the worker goroutines. The event loop pops
// tasks off the shared sched.Heap in priority order and pushes them to
// per-worker deques; each worker consumes its own deque front-to-back, and a
// worker whose deque runs dry steals from the back of the fullest peer deque
// — the coldest, least-urgent entry — so the victim keeps both its
// critical-path front and the cache affinity of its recently fed tail. This
// is the hybrid static/dynamic recipe of Donfack–Grigori–Gropp–Kale: static
// owner-computes placement across nodes, dynamic stealing within one.
//
// One mutex guards all deques. Deques hold at most a couple of prefetched
// jobs each (the event loop feeds at most workers+lookahead in flight), so a
// fine-grained lock-free deque would buy nothing here.
type dispatcher struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]job
	closed bool
	rr     int   // rotating tie-break cursor for equal-length deques
	steals []int // per worker slot: jobs taken from another worker's deque
}

func newDispatcher(workers int) *dispatcher {
	d := &dispatcher{
		deques: make([][]job, workers),
		steals: make([]int, workers),
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// push appends jb to the shortest deque — ties broken by a rotating cursor,
// so equal-length deques share arrivals round-robin — and wakes one sleeping
// worker. Jobs arrive in heap priority order, so deque position encodes
// urgency: front = hottest, back = coldest.
func (d *dispatcher) push(jb job) {
	d.mu.Lock()
	n := len(d.deques)
	best, bestLen := 0, int(^uint(0)>>1)
	for off := 0; off < n; off++ {
		w := (d.rr + off) % n
		if l := len(d.deques[w]); l < bestLen {
			best, bestLen = w, l
		}
	}
	d.rr = (best + 1) % n
	d.deques[best] = append(d.deques[best], jb)
	d.mu.Unlock()
	d.cond.Signal()
}

// take returns the next job for worker slot: the front of its own deque,
// else a steal from the back of the fullest other deque. It blocks while
// every deque is empty; ok reports false once the dispatcher is closed and
// drained. When the call had to block, waitStart/waitEnd bound the starved
// interval (first block to job obtained) — the worker-side signal the
// idle-weighted stall accounting integrates; both are zero when a job was
// available immediately, and the interval is discarded by the caller when
// ok is false (the wait that ends in shutdown is not starvation).
func (d *dispatcher) take(slot int) (jb job, ok bool, waitStart, waitEnd time.Time) {
	d.mu.Lock()
	for {
		if q := d.deques[slot]; len(q) > 0 {
			jb = q[0]
			d.deques[slot] = q[1:]
			ok = true
			break
		}
		victim, vlen := -1, 0
		for w := range d.deques {
			if w != slot && len(d.deques[w]) > vlen {
				victim, vlen = w, len(d.deques[w])
			}
		}
		if victim >= 0 {
			q := d.deques[victim]
			jb = q[len(q)-1]
			d.deques[victim] = q[:len(q)-1]
			d.steals[slot]++
			ok = true
			break
		}
		if d.closed {
			break
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		d.cond.Wait()
	}
	d.mu.Unlock()
	if ok && !waitStart.IsZero() {
		waitEnd = time.Now()
	}
	return jb, ok, waitStart, waitEnd
}

// purge drops every queued-but-unstarted job after an abort and returns how
// many were dropped, so the event loop can settle its in-flight count and
// exit once the already-running kernels drain.
func (d *dispatcher) purge() int {
	d.mu.Lock()
	n := 0
	for w := range d.deques {
		n += len(d.deques[w])
		d.deques[w] = nil
	}
	d.mu.Unlock()
	return n
}

// close wakes every blocked worker; take returns ok == false once the deques
// are drained.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
}

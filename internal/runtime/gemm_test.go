package runtime

import (
	"testing"

	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/tile"
)

func genFromSeed(b int, seed int64) func(i, j int) *tile.Tile {
	return GenDense(b, func(gi, gj int) float64 { return matrix.ElementAt(seed, gi, gj) })
}

func TestDistributedGEMM(t *testing.T) {
	const mt, nt, kt, b = 4, 5, 3, 6
	genC := genFromSeed(b, 61)
	genA := genFromSeed(b, 62)
	genB := genFromSeed(b, 63)

	// Reference: naive tiled accumulation.
	want := matrix.NewDense(mt, nt, b)
	for i := 0; i < mt; i++ {
		for j := 0; j < nt; j++ {
			want.SetTile(i, j, genC(i, j))
			for k := 0; k < kt; k++ {
				tile.Gemm(tile.NoTrans, tile.NoTrans, 1, genA(i, k), genB(k, j), 1, want.Tile(i, j))
			}
		}
	}

	for _, d := range []dist.Distribution{
		dist.NewTwoDBC(1, 1),
		dist.NewTwoDBC(2, 3),
		dist.NewG2DBC(7),
	} {
		got, rep, err := GEMM(mt, nt, kt, b, d, genC, genA, genB, Options{Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		for i := 0; i < mt; i++ {
			for j := 0; j < nt; j++ {
				if !got.Tile(i, j).EqualApprox(want.Tile(i, j), 1e-12) {
					t.Fatalf("%s: tile (%d,%d) differs", d.Name(), i, j)
				}
			}
		}
		if d.Nodes() == 1 && rep.Stats.TotalMessages() != 0 {
			t.Error("single-node GEMM communicated")
		}
	}
}

// TestGEMMG2DBCBeatsDegenerate: on a prime node count, G-2DBC communicates
// less than the 23x1 grid for the plain matrix product too.
func TestGEMMG2DBCBeatsDegenerate(t *testing.T) {
	const mt, b = 20, 2
	genC := genFromSeed(b, 1)
	genA := genFromSeed(b, 2)
	genB := genFromSeed(b, 3)
	_, repBad, err := GEMM(mt, mt, mt, b, dist.NewTwoDBC(23, 1), genC, genA, genB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, repGood, err := GEMM(mt, mt, mt, b, dist.NewG2DBC(23), genC, genA, genB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if repGood.Stats.TotalMessages() >= repBad.Stats.TotalMessages() {
		t.Errorf("G-2DBC messages %d not below 2DBC(23x1) %d",
			repGood.Stats.TotalMessages(), repBad.Stats.TotalMessages())
	}
}

package runtime

import (
	"fmt"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/tile"
)

// gemmDist extends a distribution to the three tile regions of the GEMM
// graph: C at (i, j), A at (i, nt+k), B at (mt+k, j). All three operands use
// the same pattern applied to their own tile coordinates — the standard
// ScaLAPACK-style co-distribution.
type gemmDist struct {
	dist.Distribution
	mt, nt int
}

func (g gemmDist) Owner(i, j int) int {
	switch {
	case i >= g.mt: // B tile (i-mt, j)
		return g.Distribution.Owner(i-g.mt, j)
	case j >= g.nt: // A tile (i, j-nt)
		return g.Distribution.Owner(i, j-g.nt)
	default:
		return g.Distribution.Owner(i, j)
	}
}

// Name identifies the wrapped distribution in logs.
func (g gemmDist) Name() string { return fmt.Sprintf("%s+AB", g.Distribution.Name()) }

// GEMMKernel applies one task of the matrix-product graph.
func GEMMKernel(t dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
	switch t.Kind {
	case dag.GemmA, dag.GemmB:
		// Publication only.
	case dag.GemmUpd:
		tile.Gemm(tile.NoTrans, tile.NoTrans, 1, inputs[0], inputs[1], 1, out)
	default:
		return fmt.Errorf("runtime: %v is not a GEMM task", t)
	}
	return nil
}

// GEMM distributedly computes C = C + A·B on a fresh virtual cluster, with
// C (mt×nt tiles), A (mt×kt) and B (kt×nt) defined by their generators and
// all three operands distributed by d. It returns the updated C and the
// execution report.
func GEMM(mt, nt, kt, b int, d dist.Distribution,
	genC, genA, genB func(i, j int) *tile.Tile, opt Options) (*matrix.Dense, *Report, error) {

	g := dag.NewGEMMOp(mt, nt, kt)
	gen := func(i, j int) *tile.Tile {
		switch {
		case i >= mt:
			return genB(i-mt, j)
		case j >= nt:
			return genA(i, j-nt)
		default:
			return genC(i, j)
		}
	}
	out := matrix.NewDense(mt, nt, b)
	rep, err := Run(g, gemmDist{Distribution: d, mt: mt, nt: nt}, b, gen, GEMMKernel, opt,
		func(i, j int, t *tile.Tile) {
			if i < mt && j < nt {
				out.SetTile(i, j, t.Clone())
			}
		})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

package runtime

import (
	"fmt"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/tile"
)

// syrkDist extends a distribution to the virtual A-tile columns of the SYRK
// graph: A[i][k] (tile column mt+k) is distributed with the same pattern as
// the matrix itself, applied to A's own tile coordinates.
type syrkDist struct {
	dist.Distribution
	mt int
}

func (s syrkDist) Owner(i, j int) int {
	if j >= s.mt {
		return s.Distribution.Owner(i, j-s.mt)
	}
	return s.Distribution.Owner(i, j)
}

// Name identifies the wrapped distribution in logs.
func (s syrkDist) Name() string { return fmt.Sprintf("%s+A", s.Distribution.Name()) }

// SYRKKernel applies one task of the symmetric rank-k update graph.
func SYRKKernel(t dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
	switch t.Kind {
	case dag.AInit:
		// Publication only; the tile already holds A[i][k].
	case dag.SYRKUpd:
		tile.Syrk(tile.Lower, tile.NoTrans, 1, inputs[0], 1, out)
	case dag.GEMMUpd:
		tile.Gemm(tile.NoTrans, tile.TransT, 1, inputs[0], inputs[1], 1, out)
	default:
		return fmt.Errorf("runtime: %v is not a SYRK task", t)
	}
	return nil
}

// SYRK distributedly computes C = C + A·Aᵀ on a fresh virtual cluster:
// C is the mt×mt symmetric matrix (lower storage) defined by genC, and A is
// the mt×kt tile matrix defined by genA. It returns the updated C and the
// execution report.
func SYRK(mt, kt, b int, d dist.Distribution, genC func(i, j int) *tile.Tile,
	genA func(i, k int) *tile.Tile, opt Options) (*matrix.SymmetricLower, *Report, error) {

	g := dag.NewSYRKOp(mt, kt)
	gen := func(i, j int) *tile.Tile {
		if j >= mt {
			return genA(i, j-mt)
		}
		return genC(i, j)
	}
	out := matrix.NewSymmetricLower(mt, b)
	rep, err := Run(g, syrkDist{Distribution: d, mt: mt}, b, gen, SYRKKernel, opt,
		func(i, j int, t *tile.Tile) {
			if j < mt {
				out.Tile(i, j).CopyFrom(t)
			}
		})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

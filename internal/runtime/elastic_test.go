package runtime

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"anybc/internal/chaos"
	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/tile"
)

// ownedTaskCount returns how many tasks of g the distribution assigns to
// rank, i.e. the victim's owned-task count that bounds chaos crash indices.
func ownedTaskCount(g dag.Graph, d dist.Distribution, rank int) int {
	n := 0
	dag.ForEachTask(g, func(tk dag.Task) {
		i, j := g.OutputTile(tk)
		if d.Owner(i, j) == rank {
			n++
		}
	})
	return n
}

// checkAdoption asserts the migration is visible in the report: the victim
// is marked dead, the expected adopter re-ran a positive number of its
// tasks, and nobody else adopted anything (the deterministic rule must not
// split the work).
func checkAdoption(t *testing.T, rep *Report, victim, adopter int) {
	t.Helper()
	if !rep.Resilience[victim].Died {
		t.Errorf("victim %d not reported dead", victim)
	}
	for rank, rs := range rep.Resilience {
		switch {
		case rank == adopter && rs.Adopted == 0:
			t.Errorf("adopter %d reports no adopted tasks", adopter)
		case rank != adopter && rs.Adopted != 0:
			t.Errorf("node %d adopted %d tasks; only %d should adopt", rank, rs.Adopted, adopter)
		}
	}
}

// TestElasticCrashRecovery is the acceptance test of the elastic tentpole:
// on the paper's flagship 23-node G-2DBC distribution, a node killed
// mid-factorization must not abort the run — the deterministic adopter
// (lowest alive rank under the homogeneous speed model) re-runs its tasks,
// republishes under the original versioned tags, and the run completes with
// factors bit-identical to a crash-free run, on both broadcast transports.
// A light permanent-drop mix rides along so the Request/Resend healing and
// the adoption machinery are exercised together, per pinned seed.
func TestElasticCrashRecovery(t *testing.T) {
	const mt, b = 12, 4
	const victim = 5
	d := dist.NewG2DBC(23)
	g := dag.NewLU(mt)
	owned := ownedTaskCount(g, d, victim)
	if owned < 4 {
		t.Fatalf("victim %d owns only %d tasks; crash mid-run proves nothing", victim, owned)
	}
	crashAt := owned / 2

	base, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 31), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range broadcastModes {
		for _, seed := range chaosSeeds(t) {
			t.Run(fmt.Sprintf("%s/seed=%d", mode, seed), func(t *testing.T) {
				cfg := chaos.Config{
					Seed:        seed,
					PDrop:       0.05,
					CrashAtTask: map[int]int{victim: crashAt},
				}
				opt, plan, rec := chaosOpts(t, cfg, 30*time.Millisecond, 1)
				opt.Broadcast = mode
				opt.Elastic = true
				dumpChaosArtifacts(t, fmt.Sprintf("elastic-%s-seed%d", mode, seed), rec, plan)
				err := runWithDeadline(t, func() error {
					fact, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 31), opt)
					if err != nil {
						return err
					}
					identicalLU(t, "elastic run", base, fact, mt)
					checkAdoption(t, rep, victim, 0)
					return nil
				})
				if err != nil {
					t.Fatalf("elastic run failed instead of recovering: %v", err)
				}
			})
		}
	}
}

// TestElasticCrashRecoveryWorkers4 repeats the crash-recovery acceptance
// with 4 workers per node, so adoption interleaves with intra-node work
// stealing and the worker-held job copies (jobs carry their task by value —
// adoption appends to the owned slice mid-run) are exercised under -race.
func TestElasticCrashRecoveryWorkers4(t *testing.T) {
	const mt, b = 12, 4
	const victim = 5
	d := dist.NewG2DBC(23)
	g := dag.NewLU(mt)
	crashAt := ownedTaskCount(g, d, victim) / 2

	base, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 31), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range broadcastModes {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := chaos.Config{Seed: 424242, CrashAtTask: map[int]int{victim: crashAt}}
			opt, plan, rec := chaosOpts(t, cfg, 30*time.Millisecond, 4)
			opt.Broadcast = mode
			opt.Elastic = true
			dumpChaosArtifacts(t, "elastic-workers4-"+mode.String(), rec, plan)
			err := runWithDeadline(t, func() error {
				fact, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 31), opt)
				if err != nil {
					return err
				}
				identicalLU(t, "elastic workers=4", base, fact, mt)
				checkAdoption(t, rep, victim, 0)
				return nil
			})
			if err != nil {
				t.Fatalf("elastic workers=4 run failed: %v", err)
			}
		})
	}
}

// TestElasticCrashAfterPublish pins the crash-after-publish regression: with
// several workers the victim prefetches jobs into its deques, so by the time
// the crash fires it has already published tiles (SendAll completed) whose
// local successors sit queued-but-unstarted and are purged with the deque —
// tasks that are neither published nor running. The adopter must replay
// those stranded successors from the victim's published predecessors rather
// than deadlock waiting for versions nobody will ever produce. The late
// crash index maximizes published-before-crash state.
func TestElasticCrashAfterPublish(t *testing.T) {
	const mt, b = 12, 4
	const victim = 5
	d := dist.NewG2DBC(23)
	g := dag.NewLU(mt)
	owned := ownedTaskCount(g, d, victim)
	crashAt := 2 * owned / 3

	base, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 31), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := chaos.Config{Seed: seed, CrashAtTask: map[int]int{victim: crashAt}}
			opt, plan, rec := chaosOpts(t, cfg, 30*time.Millisecond, 4)
			opt.Elastic = true
			dumpChaosArtifacts(t, fmt.Sprintf("crash-after-publish-seed%d", seed), rec, plan)
			err := runWithDeadline(t, func() error {
				fact, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 31), opt)
				if err != nil {
					return err
				}
				identicalLU(t, "crash after publish", base, fact, mt)
				checkAdoption(t, rep, victim, 0)
				return nil
			})
			if err != nil {
				t.Fatalf("crash-after-publish run failed: %v", err)
			}
		})
	}
}

// TestElasticCholeskyCrash extends the crash-recovery claim to the second
// factorization: the adoption machinery is graph-agnostic, so a Cholesky
// victim must migrate exactly like an LU one.
func TestElasticCholeskyCrash(t *testing.T) {
	const mt, b = 10, 4
	const victim = 3
	d := dist.NewG2DBC(23)
	g := dag.NewCholesky(mt)
	crashAt := ownedTaskCount(g, d, victim) / 2

	base, _, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 32), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range broadcastModes {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := chaos.Config{Seed: 1, CrashAtTask: map[int]int{victim: crashAt}}
			opt, plan, rec := chaosOpts(t, cfg, 30*time.Millisecond, 2)
			opt.Broadcast = mode
			opt.Elastic = true
			dumpChaosArtifacts(t, "elastic-cholesky-"+mode.String(), rec, plan)
			err := runWithDeadline(t, func() error {
				fact, rep, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 32), opt)
				if err != nil {
					return err
				}
				identicalCholesky(t, "elastic Cholesky", base, fact, mt)
				checkAdoption(t, rep, victim, 0)
				return nil
			})
			if err != nil {
				t.Fatalf("elastic Cholesky run failed: %v", err)
			}
		})
	}
}

// TestElasticSpeedsPickFastestAdopter: with a heterogeneous speed model the
// deterministic adopter rule must pick the fastest survivor, not the lowest
// rank — every node evaluates hetero.Fastest on the same gossip, so exactly
// one node adopts.
func TestElasticSpeedsPickFastestAdopter(t *testing.T) {
	const mt, b = 8, 4
	const victim = 2
	const fastest = 3
	d := dist.NewTwoDBC(2, 2)
	g := dag.NewLU(mt)
	crashAt := ownedTaskCount(g, d, victim) / 2

	base, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 33), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	speeds := []float64{1, 1, 1, 2.5} // rank 3 is the designated heir
	cfg := chaos.Config{Seed: 7, CrashAtTask: map[int]int{victim: crashAt}}
	opt, plan, rec := chaosOpts(t, cfg, 30*time.Millisecond, 1)
	opt.Elastic = true
	opt.Speeds = speeds
	dumpChaosArtifacts(t, "elastic-speeds", rec, plan)
	err = runWithDeadline(t, func() error {
		fact, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 33), opt)
		if err != nil {
			return err
		}
		identicalLU(t, "hetero adopter", base, fact, mt)
		checkAdoption(t, rep, victim, fastest)
		return nil
	})
	if err != nil {
		t.Fatalf("hetero-adopter run failed: %v", err)
	}
}

// TestElasticLagSpeculation drives the lagging-node path: every delivery is
// delayed far past the arrival timeout, so consumers exhaust the small
// LagReRequests budget and speculatively replay the laggard's producer
// chains at demoted priority instead of idling. The originals land later and
// must drop as idempotent duplicates — factors stay bit-identical and the
// report counts the speculative re-executions.
func TestElasticLagSpeculation(t *testing.T) {
	const mt, b = 8, 4
	d := dist.NewTwoDBC(2, 2)
	base, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 34), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaos.Config{Seed: 11, PDelay: 1.0, MaxDelay: 80 * time.Millisecond}
	opt, plan, rec := chaosOpts(t, cfg, 2*time.Millisecond, 1)
	opt.Elastic = true
	opt.LagReRequests = 2
	opt.MaxReRequests = -1 // never presume a merely slow node dead here
	dumpChaosArtifacts(t, "lag-speculation", rec, plan)
	err = runWithDeadline(t, func() error {
		fact, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 34), opt)
		if err != nil {
			return err
		}
		identicalLU(t, "speculative run", base, fact, mt)
		spec := 0
		for _, rs := range rep.Resilience {
			spec += rs.Speculative
			if rs.Died {
				t.Errorf("a lagging node was reported dead; speculation must not kill")
			}
		}
		if spec == 0 {
			t.Error("80ms delays against a 2ms timeout triggered no speculation")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("lag-speculation run failed: %v", err)
	}
}

// TestReRequestBudgetExhausted pins the retry cap: a version that stays
// undelivered through MaxReRequests re-requests must fail the run with a
// descriptive ErrUndelivered naming the tile, its owner, and the budget —
// not loop forever. A total blackout is not constructible through the chaos
// seam (PDrop < 1 by design, so retries can always heal), so the test drives
// the sweep directly: an expired pending wait whose owner never answers.
func TestReRequestBudgetExhausted(t *testing.T) {
	g := dag.NewLU(4)
	d := dist.NewTwoDBC(2, 2)
	cl := cluster.New(4)
	defer cl.Close()
	ver, err := prevalidate(g, d)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(1, cl.Comm(1), g, d, 3, GenDiagDominant(4, 3, 1), LUKernel,
		Options{Workers: 1, ArrivalTimeout: time.Millisecond, MaxReRequests: 3},
		ver, time.Now())

	tag := cluster.Tag{I: 0, J: 0, V: 0} // owned by rank 0, never delivered
	e.pending[tag] = &pendingWait{backoff: time.Millisecond}
	var tickErr error
	for i := 0; i < 10 && tickErr == nil; i++ {
		e.pending[tag].deadline = time.Now().Add(-time.Second)
		tickErr = e.onTick()
	}
	if tickErr == nil {
		t.Fatal("an owner ignoring a finite retry budget did not fail the sweep")
	}
	if !errors.Is(tickErr, ErrUndelivered) {
		t.Fatalf("error lost the ErrUndelivered root cause: %v", tickErr)
	}
	if !strings.Contains(tickErr.Error(), "after 3 re-requests") ||
		!strings.Contains(tickErr.Error(), "from node 0") ||
		!strings.Contains(tickErr.Error(), "tile (0,0) v0") {
		t.Fatalf("error does not name the budget, owner, and tile: %v", tickErr)
	}
	if e.reRequests != 3 {
		t.Fatalf("sent %d re-requests before giving up, want exactly the budget of 3", e.reRequests)
	}
}

// TestReRequestBudgetEscalatesWhenElastic is the elastic half of the retry
// cap: the same exhausted budget must not error but presume the silent owner
// dead, pick the deterministic adopter (lowest alive rank — here, us), and
// migrate its tasks so the awaited version gets produced locally.
func TestReRequestBudgetEscalatesWhenElastic(t *testing.T) {
	g := dag.NewLU(4)
	d := dist.NewTwoDBC(2, 2)
	cl := cluster.New(4)
	defer cl.Close()
	ver, err := prevalidate(g, d)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(1, cl.Comm(1), g, d, 3, GenDiagDominant(4, 3, 1), LUKernel,
		Options{Workers: 1, ArrivalTimeout: time.Millisecond, MaxReRequests: 2, Elastic: true},
		ver, time.Now())

	tag := cluster.Tag{I: 0, J: 0, V: 0} // owned by rank 0
	e.pending[tag] = &pendingWait{backoff: time.Millisecond}
	for i := 0; i < 5; i++ {
		e.pending[tag].deadline = time.Now().Add(-time.Second)
		if err := e.onTick(); err != nil {
			t.Fatalf("elastic sweep errored instead of escalating: %v", err)
		}
		if e.dead[0] {
			break
		}
	}
	if !e.dead[0] {
		t.Fatal("exhausted budget did not presume the silent owner dead")
	}
	if e.adoptedBy[0] != 1 {
		t.Fatalf("adopter of the presumed-dead owner = %d, want 1 (lowest alive rank)", e.adoptedBy[0])
	}
	if len(e.adoptedSet) == 0 {
		t.Fatal("no tasks migrated off the presumed-dead owner")
	}
	if p := e.pending[tag]; p != nil && p.attempts != 0 {
		t.Fatalf("retry budget not reset after adoption: attempts = %d", p.attempts)
	}
}

// TestArrivalTimeoutTickerClamp is the regression for the re-request ticker
// period: ArrivalTimeout of a single nanosecond halves to zero, which
// time.NewTicker rejects with a panic — the engine must clamp the sweep
// period instead of crashing, and the (furiously re-requesting) run must
// still complete correctly on a fault-free network.
func TestArrivalTimeoutTickerClamp(t *testing.T) {
	const mt, b = 6, 4
	d := dist.NewTwoDBC(2, 2)
	base, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 36), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fact, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 36),
		Options{Workers: 1, ArrivalTimeout: 1})
	if err != nil {
		t.Fatalf("1ns arrival timeout failed the run: %v", err)
	}
	identicalLU(t, "clamped ticker", base, fact, mt)
}

// TestTreeRelayAfterHealedRedelivery pins the relay-dedup fix: a tag healed
// into the seen set by a Resend redelivery (which carries no Forward list)
// must NOT swallow the late original copy's forward obligation — the relay
// dedup is keyed on a separate per-tag ledger, and fires exactly once.
func TestTreeRelayAfterHealedRedelivery(t *testing.T) {
	g := dag.NewLU(4)
	d := dist.NewTwoDBC(2, 2)
	cl := cluster.New(4)
	defer cl.Close()
	e := testEngine(t, 1, cl, g, d, 3, GenDiagDominant(4, 3, 1), LUKernel)

	pay := tile.New(3, 3)
	pay.Fill(2.5)
	tag := cluster.Tag{I: 0, J: 0, V: 0}
	// A Resend-style heal lands first: no Forward list, marks the tag seen.
	if err := e.onArrival(cluster.Message{From: 0, To: 1, Tag: tag, Payload: pay}); err != nil {
		t.Fatal(err)
	}
	if e.forwarded != 0 {
		t.Fatalf("heal with no forward list relayed %d hops", e.forwarded)
	}
	// The delayed original arrives with its subtree: it is a payload
	// duplicate, but its Forward obligation is fresh and must be honored.
	if err := e.onArrival(cluster.Message{From: 0, To: 1, Tag: tag, Payload: pay.Clone(), Forward: []int{3}}); err != nil {
		t.Fatal(err)
	}
	if e.forwarded != 1 {
		t.Fatalf("late original's forward obligation not honored: forwarded = %d, want 1", e.forwarded)
	}
	if !e.relayed[tag] {
		t.Fatal("relay ledger did not record the forwarded tag")
	}
	// A further duplicate carrying a forward list must not relay again.
	if err := e.onArrival(cluster.Message{From: 0, To: 1, Tag: tag, Payload: pay.Clone(), Forward: []int{2}}); err != nil {
		t.Fatal(err)
	}
	if e.forwarded != 1 {
		t.Fatalf("duplicate re-relayed: forwarded = %d, want 1", e.forwarded)
	}
}

package runtime

import (
	"testing"
	"time"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/tile"
	"anybc/internal/trace"
)

// TestStallAccountingIdleWeighted is the regression test for the
// multi-worker stall bug: the old event-loop accounting charged full
// wall-clock stall whenever inflight < workers, so a serial task chain on a
// 4-worker node — 3 of 4 workers idle, but never all 4 — accrued stall at
// ~1.0× elapsed, indistinguishable from a fully idle node. The idle-weighted
// accounting must report ~0.75× elapsed (3 idle workers / 4), and the
// recorder's weighted stall events must agree with the report.
func TestStallAccountingIdleWeighted(t *testing.T) {
	const chain = 20
	const pause = 5 * time.Millisecond
	tasks := make([]testTask, chain)
	tasks[0] = testTask{out: [2]int{0, 0}}
	for i := 1; i < chain; i++ {
		tasks[i] = testTask{out: [2]int{0, 0}, deps: []int{i - 1}}
	}
	g := newTestGraph(1, tasks)
	d := testDist{p: 1, owner: func(i, j int) int { return 0 }}
	kern := func(task dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
		time.Sleep(pause)
		return nil
	}
	rec := &trace.Recorder{}
	rep, err := Run(g, d, 1, func(i, j int) *tile.Tile { return tile.New(1, 1) },
		kern, Options{Workers: 4, Recorder: rec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stall := rep.Sched[0].StallSeconds
	elapsed := rep.Elapsed.Seconds()
	if stall <= 0 {
		t.Fatalf("serial chain on 4 workers reported zero stall")
	}
	// The buggy accounting gives stall/elapsed ≈ 1.0; idle-weighting gives
	// ≈ 0.75 (+ a sliver of all-idle handoff gaps). The band is generous so
	// scheduler jitter under -race cannot flake it, while still rejecting
	// the full-wall-clock behaviour.
	if ratio := stall / elapsed; ratio > 0.9 || ratio < 0.4 {
		t.Fatalf("stall/elapsed = %.3f (stall %.1fms over %.1fms), want ~0.75 — full-wall-clock accounting?",
			ratio, stall*1e3, elapsed*1e3)
	}
	// The recorder's weighted events are the same account.
	recSum := 0.0
	for _, s := range rec.StallPerNode(1) {
		recSum += s
	}
	if diff := recSum - stall; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("recorder weighted stalls %.9f != report StallSeconds %.9f", recSum, stall)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-worker observability: 4 busy counters that sum to roughly the
	// chain's serial kernel time.
	busy := rep.Sched[0].WorkerBusySeconds
	if len(busy) != 4 {
		t.Fatalf("WorkerBusySeconds has %d entries, want 4", len(busy))
	}
	busySum := 0.0
	for _, b := range busy {
		busySum += b
	}
	if minBusy := (chain * pause).Seconds(); busySum < minBusy {
		t.Fatalf("workers report %.1fms busy, below the %.1fms the kernels slept",
			busySum*1e3, minBusy*1e3)
	}
}

// TestBitIdenticalFactorsAcrossWorkers: on the paper's 23-node G-2DBC case,
// the final LU and Cholesky factors must be bit-identical for any worker
// count — kernels execute whole tasks and the graph serializes writers, so
// the FP schedule per tile never depends on how tasks interleave.
func TestBitIdenticalFactorsAcrossWorkers(t *testing.T) {
	const mt, b = 12, 4
	d := dist.NewG2DBC(23)

	t.Run("LU", func(t *testing.T) {
		want, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 41), Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			got, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 41), Options{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for i := 0; i < mt; i++ {
				for j := 0; j < mt; j++ {
					if !got.Tile(i, j).EqualApprox(want.Tile(i, j), 0) {
						t.Fatalf("workers=%d: LU tile (%d,%d) not bit-identical to workers=1", workers, i, j)
					}
				}
			}
		}
	})
	t.Run("Cholesky", func(t *testing.T) {
		want, _, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 42), Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			got, _, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 42), Options{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for i := 0; i < mt; i++ {
				for j := 0; j <= i; j++ {
					if !got.Tile(i, j).EqualApprox(want.Tile(i, j), 0) {
						t.Fatalf("workers=%d: Cholesky tile (%d,%d) not bit-identical to workers=1", workers, i, j)
					}
				}
			}
		}
	})
}

// TestDispatcherStealPolicy is the whitebox contract of the intra-node
// stealing layer: push balances onto the shortest deque round-robin, an
// owner consumes its own deque front-first (priority order), and a starved
// worker steals the BACK of the fullest victim deque — the coldest entry —
// leaving the victim its critical-path front.
func TestDispatcherStealPolicy(t *testing.T) {
	d := newDispatcher(3)
	for i := 0; i < 6; i++ {
		d.push(job{idx: i})
	}
	// Round-robin placement: w0=[0,3] w1=[1,4] w2=[2,5].
	take := func(slot, wantIdx int) {
		t.Helper()
		jb, ok, _, _ := d.take(slot)
		if !ok {
			t.Fatalf("take(%d): dispatcher closed early", slot)
		}
		if jb.idx != wantIdx {
			t.Fatalf("take(%d) = task %d, want %d", slot, jb.idx, wantIdx)
		}
	}
	take(0, 0) // own front
	take(0, 3) // own front again
	take(0, 4) // own deque dry: steal the BACK of the fullest victim (w1=[1,4])
	if d.steals[0] != 1 || d.steals[1] != 0 || d.steals[2] != 0 {
		t.Fatalf("steals = %v, want [1 0 0]", d.steals)
	}
	take(1, 1) // victim kept its front
	take(2, 2)
	take(2, 5)
	d.close()
	if _, ok, _, _ := d.take(0); ok {
		t.Fatal("take on a closed, drained dispatcher returned a job")
	}
}

// TestWorkersNormalizedOnce: Run is the single normalization point for
// Options.Workers — zero and negative values mean one worker, visible in the
// per-worker observability of the report.
func TestWorkersNormalizedOnce(t *testing.T) {
	g := newTestGraph(1, []testTask{{out: [2]int{0, 0}}})
	d := testDist{p: 1, owner: func(i, j int) int { return 0 }}
	kern := func(task dag.Task, out *tile.Tile, inputs []*tile.Tile) error { return nil }
	for _, workers := range []int{0, -3} {
		rep, err := Run(g, d, 1, func(i, j int) *tile.Tile { return tile.New(1, 1) },
			kern, Options{Workers: workers}, nil)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if got := len(rep.Sched[0].WorkerBusySeconds); got != 1 {
			t.Fatalf("Workers=%d ran with %d worker slots, want 1", workers, got)
		}
		if got := len(rep.Sched[0].StealsPerWorker); got != 1 {
			t.Fatalf("Workers=%d reports %d steal counters, want 1", workers, got)
		}
	}
}

// Package runtime implements the task-based distributed execution engine —
// the role StarPU plays under Chameleon in the paper. The application only
// supplies a task graph (package dag) and a tile→node map (package dist); the
// engine then applies the owner-computes rule, tracks dependencies, infers
// all inter-node communications, and executes the real numeric kernels on
// every virtual node concurrently.
//
// Each node runs an event loop: local task completions release local
// successors; completions whose output some remote node consumes push that
// tile to each distinct consumer node as one point-to-point message; tile
// arrivals release the tasks waiting on them. Mailboxes are unbounded and the
// graph is acyclic, so execution is deadlock-free.
//
// # Scheduling
//
// Ready tasks dispatch through the critical-path priority heap of package
// sched — the same policy and heap the discrete-event simulator uses — so
// panel kernels (GETRF/POTRF) and triangular solves of low iterations never
// starve behind freshly released trailing updates, and real makespans track
// what the simulator predicts. Report.Sched exposes per-node scheduler
// observability: stall time (a free worker with nothing ready — waiting on
// communication or predecessors), the ready-queue high-water mark, and
// dispatch counts by kernel kind.
//
// # Versioned tile protocol
//
// Every published tile travels under a cluster.Tag carrying its write epoch
// (dag.OutputVersions): version 0 is the tile's first write, and each later
// in-place update increments it. A tile that remote nodes consume at several
// versions — legal in general task graphs, even though the right-looking
// factorizations only ever ship final versions — is simply sent once per
// (version, consumer node) pair, and receivers key their copies by the full
// versioned tag. Run prevalidates the (graph, distribution) pair and returns
// a descriptive error for anything the protocol cannot serve: unserialized
// writers of one tile, remote reads of initial tile contents, or local reads
// of an intermediate version that race the next in-place update.
//
// # Tile lifetime
//
// Received tiles are reference-counted by their number of local consumer
// tasks and released as soon as the last consumer's kernel has run, so a
// node's working set is bounded by what is genuinely in flight rather than
// growing with the whole run's traffic (the block-lifetime discipline of
// DBCSR-style runtimes). Report.PeakTilesPerNode exposes the high-water mark.
//
// Communication allocates once per published tile version, not once per
// destination: a completion broadcasts its output through cluster.SendAll,
// every consumer node shares the same immutable clone, and the buffer
// returns to the cluster's shape-keyed pool (tile.Pool) when the last
// consumer releases it — so steady-state runs recycle a small set of
// message buffers instead of churning one allocation per message.
//
// # Failure propagation
//
// The first kernel error on any node aborts the whole run: the failing node
// stops dispatching, suppresses the failed task's publication (no post-error
// tile reaches a remote consumer), and poisons the cluster so every peer
// blocked on tiles that will never be produced wakes up promptly. Run then
// reports the errors of all failing nodes joined together, with nodes that
// merely aborted on a peer's behalf folded in as context.
//
// # Resilience
//
// With Options.ArrivalTimeout set (or Options.Chaos, which defaults it), the
// engine no longer assumes the network delivers: each awaited remote tile
// version carries a deadline, and a version that misses it is re-requested
// from its owner with a cluster.Request control message under exponential
// backoff. Owners keep a cache of the tile versions they published and
// answer requests from it with cluster.Resend — including after their own
// event loop has finished, so a slow consumer can always heal. A permanently
// dropped delivery therefore costs latency, never a hang, and
// Report.Resilience counts the re-requests, redeliveries served, and
// recoveries per node.
//
// Options.Elastic extends resilience to topology change: a node that dies
// mid-run no longer aborts the factorization — a deterministically chosen
// survivor adopts its unfinished tasks and republishes their outputs under
// the original versioned tags, and lagging owners' work can be replayed
// speculatively at demoted priority (see adopt.go for the full design).
//
// # Tracing
//
// When Options.Recorder is set, the run records wall-clock kernel intervals
// (per node and worker slot) and message departure/arrival times into a
// trace.Recorder, so real executions feed the same Gantt, utilization and
// CSV machinery as the simulator. Injected faults and the recovery actions
// they trigger are recorded alongside as trace.FaultEvents.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anybc/internal/chaos"
	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/sched"
	"anybc/internal/tile"
	"anybc/internal/trace"
)

// Kernel applies one task: out is the task's output tile (updated in place),
// inputs are the tiles listed by Graph.InputTiles in visit order.
type Kernel func(t dag.Task, out *tile.Tile, inputs []*tile.Tile) error

// ErrPeerAborted is the error a node reports when it abandoned its remaining
// tasks because another node poisoned the cluster after a kernel failure.
// Run folds these into the failing nodes' root-cause errors rather than
// repeating one line per bystander rank.
var ErrPeerAborted = errors.New("aborted: a peer node failed")

// ErrUndelivered is the error a node reports when an awaited remote tile
// version stayed undelivered through the full re-request retry budget
// (Options.MaxReRequests): the owner is unreachable or permanently silent.
// Without a retry cap a crashed owner used to produce an endless Request
// storm that only an external watchdog could end; with the cap the node
// fails descriptively instead — or, under Options.Elastic, presumes the
// owner dead and adopts its work rather than failing at all.
var ErrUndelivered = errors.New("tile version undelivered: re-request retry budget exhausted")

// ErrCanceled is the error Run returns when Options.Context was cancelled
// before the run completed: the job's cluster plane was poisoned, every
// engine wound down, and the partial factors were discarded. It wraps
// context.Canceled (and the deadline variant satisfies errors.Is against
// context.DeadlineExceeded through the joined cause).
var ErrCanceled = errors.New("run canceled")

// Options tunes the engine.
type Options struct {
	// Workers is the number of concurrent kernel executors per node. Values
	// above 1 model multi-core nodes; correctness is guaranteed by the task
	// graph for any value, and final factors are bit-identical across worker
	// counts (kernels run whole tasks; the parallel GEMM preserves FP order).
	// Workers <= 0 — including the zero value — is normalized to 1 by Run,
	// the single normalization point; newEngine assumes a positive count.
	Workers int
	// Recorder, when non-nil, receives every kernel interval and message of
	// the run (wall-clock seconds since the run started) for the
	// Gantt/utilization analyses of package trace.
	Recorder *trace.Recorder
	// Chaos, when non-nil, installs the plan as the cluster's network layer:
	// every delivery (tiles, requests, redeliveries) passes through its
	// seeded fault decisions. A plan drives exactly one run; build a fresh
	// plan from the same chaos.Config to reproduce it. Setting Chaos also
	// defaults ArrivalTimeout so drops heal instead of hanging.
	Chaos *chaos.Plan
	// ArrivalTimeout arms the re-request protocol: an awaited remote tile
	// version not delivered within this duration is re-requested from its
	// owner, with exponential backoff between retries. Zero disables the
	// protocol unless Chaos is set (then it defaults to 250ms); negative
	// forces it off even under chaos — useful only to demonstrate that a
	// dropped message then hangs the run.
	ArrivalTimeout time.Duration
	// Broadcast selects the transport for published tiles:
	// cluster.BroadcastFlat (default, the paper's point-to-point model) or
	// cluster.BroadcastTree, which relays each broadcast down a binomial
	// tree so the owner's NIC serializes ⌈log₂(k+1)⌉ sends instead of k.
	// Final factors are bit-identical across modes; only the wire routing
	// (Report.Stats.Hops/Forwards) changes.
	Broadcast cluster.BroadcastMode
	// Elastic arms ownership migration: a node that crashes mid-run no
	// longer aborts the whole factorization. The dying node announces
	// itself (cluster.NoteDown), a deterministically chosen survivor — the
	// fastest alive node under Speeds, ties to the lowest rank — adopts the
	// dead node's tasks by replaying them from the initial tile generator
	// and the published-version caches of the surviving owners, and
	// republishes the results under the original versioned tags, so
	// downstream consumers cannot tell the migration happened. Elastic
	// implies the re-request protocol; ArrivalTimeout is defaulted when
	// unset. Exactly-once delivery is not required: replayed kernels are
	// deterministic, so duplicate publications drop idempotently and final
	// factors stay bit-identical to a crash-free run.
	Elastic bool
	// Speeds gives the relative node speeds (internal/hetero's model) the
	// elastic adopter rule consults; nil means homogeneous. Length must be
	// the node count when set.
	Speeds []float64
	// MaxReRequests caps how many times one awaited tile version is
	// re-requested before the node gives up on its owner: zero means the
	// default (50), negative means unlimited (the pre-cap behavior). On an
	// exhausted budget a non-elastic node fails with ErrUndelivered naming
	// the owner, tag, and retry count; an elastic node instead presumes the
	// owner dead, gossips cluster.NoteDown, and adopts its work.
	MaxReRequests int
	// LagReRequests, in elastic mode, is the re-request attempt count after
	// which a still-alive but lagging owner's unfinished work becomes
	// eligible for speculative adoption: the waiting node replays the
	// overdue version's producer chain itself, at demoted scheduler
	// priority (sched.Demote), racing the laggard. Whichever copy lands
	// first wins; the other drops as an idempotent duplicate. Zero disables
	// speculation.
	LagReRequests int
	// Cluster, when non-nil, runs the job over this existing shared cluster
	// instead of creating a private one: the engines use the job-scoped
	// endpoints of Job (cluster.JobComm), so many concurrent Runs multiplex
	// one substrate — the multi-tenant service's mode. The cluster's node
	// count must equal the distribution's. The run closes only its own job
	// plane when it finishes (or aborts, or is cancelled); the shared
	// cluster and its other tenants stay up. The broadcast mode and network
	// seam come from the shared cluster, so Options.Broadcast and the
	// delivery side of Options.Chaos are ignored — chaos crash injection
	// (CrashTask) still applies per job. The caller is responsible for
	// cluster.DropJob once it has archived the job's Report.
	Cluster *cluster.Cluster
	// Job is this run's tile-namespace epoch on the shared Cluster: every
	// message travels under it, so concurrent jobs' identically-numbered
	// tiles can never collide. Ignored (effectively 0) without Cluster.
	Job int32
	// Context, when non-nil, is the run's cancellation seam: once it is
	// done, the run aborts — the job's cluster plane is poisoned exactly as
	// by comm.Abort, every engine winds down promptly, all in-flight pooled
	// payloads drain back to the cluster pool, and Run returns ErrCanceled.
	// On a shared cluster only this job's namespace is poisoned; other
	// tenants are untouched.
	Context context.Context
	// PriorityBand places every task key of this run in a cross-job
	// scheduler priority band (sched.Band): band 0 — the default — is the
	// most urgent, higher bands sort strictly after every lower band while
	// preserving their internal critical-path order. The multi-tenant
	// service maps job priorities to bands so co-scheduled jobs' tasks
	// order consistently wherever they meet one queue. Must lie in
	// [0, sched.MaxBand].
	PriorityBand int
}

// Report summarizes one distributed execution.
type Report struct {
	// Stats holds the communication counters of the virtual network.
	Stats cluster.Stats
	// TasksPerNode counts the kernels each node executed.
	TasksPerNode []int
	// FlopsPerNode sums the flops each node executed.
	FlopsPerNode []float64
	// OwnedTilesPerNode and ReceivedTilesPerNode describe each node's memory
	// traffic: tiles it owns under the distribution, and remote tile versions
	// delivered to it over the run. Received tiles are released after their
	// last local consumer runs, so their count bounds traffic, not residency.
	OwnedTilesPerNode    []int
	ReceivedTilesPerNode []int
	// PeakTilesPerNode is each node's working-set high-water mark: the
	// maximum number of tiles (owned + received-and-not-yet-released) the
	// node held at any instant. It is at most OwnedTilesPerNode +
	// ReceivedTilesPerNode, and strictly below it whenever tile release
	// reclaimed memory mid-run.
	PeakTilesPerNode []int
	// Sched holds each node's scheduler observability counters.
	Sched []SchedStats
	// MailboxPeakPerNode is each node's mailbox high-water mark: the most
	// messages ever queued undelivered at once. The queues are unbounded, so
	// this is the only visibility into transport backpressure — a peak far
	// above the worker count means senders outpace the node's event loop.
	MailboxPeakPerNode []int
	// Resilience holds each node's fault-healing counters. All zero unless
	// the arrival-timeout re-request protocol was armed (Options.Chaos or
	// Options.ArrivalTimeout).
	Resilience []ResilienceStats
	// Broadcast is the transport mode the run used (flat fan-out or
	// binomial tree); the wire-level consequences are in Stats.Hops and
	// Stats.Forwards, and ForwardedPerNode counts the relay hops each node
	// sent on behalf of other owners' broadcasts. All zero under flat mode.
	Broadcast        cluster.BroadcastMode
	ForwardedPerNode []int
	// Elapsed is the wall-clock duration of the distributed run.
	Elapsed time.Duration
}

// ResilienceStats describes one node's participation in the arrival-timeout
// re-request protocol over a run.
type ResilienceStats struct {
	// ReRequests counts the cluster.Request control messages this node sent
	// after an awaited tile version missed its arrival deadline (retries
	// under backoff count individually).
	ReRequests int
	// Redelivered counts the re-requests this node answered from its
	// published-version cache as the owner, each a cluster.Resend.
	Redelivered int
	// Recovered counts the awaited tile versions that arrived only after
	// this node re-requested them — deliveries the timeout path healed.
	Recovered int
	// Adopted counts the dead-node tasks this node re-ran as the elastic
	// adopter: the migration that let the run finish despite the crash.
	Adopted int
	// Speculative counts the lagging-node tasks this node re-ran
	// speculatively (Options.LagReRequests) while their owner was still
	// alive.
	Speculative int
	// Died reports that this node crashed mid-run (injected or presumed);
	// its unfinished work was adopted by a survivor.
	Died bool
}

// SchedStats describes one node's scheduling behaviour over a run.
type SchedStats struct {
	// StallSeconds is the node's starvation integral in capacity-seconds:
	// each worker that sits idle with nothing dispatchable contributes its
	// idle wall-clock weighted by 1/Workers, so one idle worker out of four
	// accrues a quarter of what a fully idle node does. Time lost waiting on
	// remote tile arrivals or local predecessor completions rather than on
	// compute; a node whose stall time dominates its kernel time is
	// communication-bound. Idle tails after the node's last task are not
	// counted, matching the single-worker accounting of earlier versions.
	StallSeconds float64
	// WorkerBusySeconds is the wall-clock each worker slot spent inside
	// kernels — the per-worker utilization behind StallSeconds.
	WorkerBusySeconds []float64
	// StealsPerWorker counts, per worker slot, the tasks the slot took from
	// another worker's deque because its own ran dry (intra-node work
	// stealing). Always zero with a single worker.
	StealsPerWorker []int
	// ReadyPeak is the high-water mark of the node's ready queue: how much
	// dispatchable work was queued behind the busy workers at the worst
	// instant. Persistently small peaks mean the node is starved; large
	// peaks mean it is the bottleneck.
	ReadyPeak int
	// DuplicateDrops counts identical re-delivered tile versions that were
	// dropped idempotently instead of crashing the node (see onArrival).
	// Always zero under the current transport, which never re-delivers.
	DuplicateDrops int
	// DispatchedByKind counts dispatched kernels per task-kind name.
	DispatchedByKind map[string]int
}

// Run executes graph g on a fresh virtual cluster with the given tile
// distribution, initial tile generator and kernel. It returns the final tile
// contents via collect: after all nodes finish, collect is called once for
// every tile with its final payload.
func Run(g dag.Graph, d dist.Distribution, b int,
	gen func(i, j int) *tile.Tile, kern Kernel, opt Options,
	collect func(i, j int, t *tile.Tile)) (*Report, error) {

	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.PriorityBand < 0 || opt.PriorityBand > sched.MaxBand {
		return nil, fmt.Errorf("runtime: priority band %d outside [0, %d]", opt.PriorityBand, sched.MaxBand)
	}
	ver, err := prevalidate(g, d)
	if err != nil {
		return nil, err
	}
	P := d.Nodes()
	if opt.Elastic && opt.Speeds != nil && len(opt.Speeds) != P {
		return nil, fmt.Errorf("runtime: %d speeds for %d nodes", len(opt.Speeds), P)
	}
	var net cluster.Network
	if opt.Chaos != nil {
		net = opt.Chaos
		if opt.ArrivalTimeout == 0 {
			opt.ArrivalTimeout = 250 * time.Millisecond
		}
	}
	if opt.ArrivalTimeout < 0 {
		opt.ArrivalTimeout = 0
	}
	if opt.Elastic && opt.ArrivalTimeout == 0 {
		// Elastic recovery is built on the re-request protocol (published
		// caches, arrival deadlines, escalation); it cannot be disabled
		// underneath it.
		opt.ArrivalTimeout = 250 * time.Millisecond
	}
	shared := opt.Cluster != nil
	var cl *cluster.Cluster
	if shared {
		cl = opt.Cluster
		if cl.Nodes() != P {
			return nil, fmt.Errorf("runtime: distribution %s wants %d nodes but the shared cluster has %d",
				d.Name(), P, cl.Nodes())
		}
		// The substrate is the shared cluster's: its broadcast transport and
		// network seam apply to every tenant. Per-job chaos still injects
		// crashes (CrashTask), but its delivery faults would need the seam.
		opt.Broadcast = cl.Broadcast()
	} else {
		opt.Job = 0
		cl = cluster.NewWithOptions(P, cluster.Options{Net: net, Broadcast: opt.Broadcast})
	}

	start := time.Now()
	if opt.Chaos != nil && opt.Recorder != nil {
		opt.Chaos.Bind(opt.Recorder, start)
	}
	engines := make([]*engine, P)
	for rank := 0; rank < P; rank++ {
		engines[rank] = newEngine(rank, cl.JobComm(opt.Job, rank), g, d, b, gen, kern, opt, ver, start)
	}

	// Cancellation seam: a context that ends before the run does poisons
	// this job's plane — exactly comm.Abort's failure surface, so every
	// engine winds down through the ordinary abort path and, on a shared
	// cluster, no other tenant notices.
	runDone := make(chan struct{})
	var cancelled atomic.Bool
	if opt.Context != nil {
		go func() {
			select {
			case <-opt.Context.Done():
				cancelled.Store(true)
				cl.CloseJob(opt.Job)
			case <-runDone:
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make([]error, P)
	for rank := 0; rank < P; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = engines[rank].run()
		}(rank)
	}
	wg.Wait()
	close(runDone)
	if opt.Chaos != nil {
		// Release any reorder holds still parked in the fault plan so their
		// payload shares drain before the pool is abandoned.
		opt.Chaos.Flush()
	}
	if shared {
		cl.CloseJob(opt.Job)
	} else {
		cl.Close()
	}
	elapsed := time.Since(start)

	// Report every node's failure, not just the lowest rank's. Nodes that
	// aborted because a peer poisoned the cluster carry ErrPeerAborted; when
	// a root-cause kernel error exists they are folded into one summary line
	// instead of repeated per rank.
	var nodeErrs []error
	peerAborts := 0
	for rank, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrPeerAborted) {
			peerAborts++
			continue
		}
		nodeErrs = append(nodeErrs, fmt.Errorf("node %d: %w", rank, err))
	}
	if cancelled.Load() && (len(nodeErrs) > 0 || peerAborts > 0) {
		// The context ended the run: the nodes' ErrPeerAborted noise is the
		// cancellation's own doing, so report the cancellation itself. A run
		// that happened to finish cleanly before the poison landed (no node
		// errors at all) still counts as completed, not cancelled.
		return nil, fmt.Errorf("runtime: %w: %w", ErrCanceled, context.Cause(opt.Context))
	}
	if len(nodeErrs) == 0 && peerAborts > 0 {
		// Should not happen (some node poisoned the cluster), but never
		// swallow an abort silently.
		nodeErrs = append(nodeErrs, ErrPeerAborted)
	}
	if len(nodeErrs) > 0 {
		if peerAborts > 0 {
			nodeErrs = append(nodeErrs, fmt.Errorf("%d node(s) aborted: %w", peerAborts, ErrPeerAborted))
		}
		return nil, fmt.Errorf("runtime: %w", errors.Join(nodeErrs...))
	}

	rep := &Report{
		Stats:                cl.JobStats(opt.Job),
		TasksPerNode:         make([]int, P),
		FlopsPerNode:         make([]float64, P),
		OwnedTilesPerNode:    make([]int, P),
		ReceivedTilesPerNode: make([]int, P),
		PeakTilesPerNode:     make([]int, P),
		Broadcast:            opt.Broadcast,
		ForwardedPerNode:     make([]int, P),
		Elapsed:              elapsed,
	}
	rep.MailboxPeakPerNode = rep.Stats.MailboxPeak
	rep.Sched = make([]SchedStats, P)
	rep.Resilience = make([]ResilienceStats, P)
	for rank, e := range engines {
		rep.TasksPerNode[rank] = len(e.owned)
		rep.FlopsPerNode[rank] = e.flops
		rep.OwnedTilesPerNode[rank] = e.ownedTiles
		rep.ReceivedTilesPerNode[rank] = e.recvTotal
		rep.PeakTilesPerNode[rank] = e.peakTiles
		byKind := make(map[string]int, len(e.dispatched))
		for kind, n := range e.dispatched {
			byKind[kind.String()] = n
		}
		busy := make([]float64, len(e.busy))
		for w, ns := range e.busy {
			busy[w] = float64(ns) / 1e9
		}
		rep.Sched[rank] = SchedStats{
			StallSeconds:      float64(e.stallNanos.Load()) / 1e9 / float64(e.workers),
			WorkerBusySeconds: busy,
			StealsPerWorker:   append([]int(nil), e.disp.steals...),
			ReadyPeak:         e.readyPeak,
			DuplicateDrops:    e.dupDrops,
			DispatchedByKind:  byKind,
		}
		rep.Resilience[rank] = ResilienceStats{
			ReRequests:  e.reRequests,
			Redelivered: int(e.redelivered.Load()),
			Recovered:   e.recovered,
			Adopted:     e.adopted,
			Speculative: e.speculative,
			Died:        e.died,
		}
		rep.ForwardedPerNode[rank] = e.forwarded + int(e.forwardedLate.Load())
	}

	if collect != nil {
		// A tile whose owner crashed lives on in its adopter's replay
		// buffers; any surviving engine's adoption table locates it. A rank
		// merely presumed dead (false positive) finished its own tiles, so
		// the remap applies only to engines that really died.
		adopterOf := func(rank int) int {
			for _, e := range engines {
				if e.adoptedBy != nil && e.adoptedBy[rank] >= 0 {
					return e.adoptedBy[rank]
				}
			}
			return -1
		}
		var collectErr error
		seen := map[cluster.Tag]bool{}
		dag.ForEachTask(g, func(t dag.Task) {
			i, j := g.OutputTile(t)
			tag := cluster.Tag{I: int32(i), J: int32(j)}
			if seen[tag] {
				return
			}
			seen[tag] = true
			owner := d.Owner(i, j)
			for engines[owner].died {
				a := adopterOf(owner)
				if a < 0 || a == owner {
					break
				}
				owner = a
			}
			final := engines[owner].tiles[tag]
			if final == nil && collectErr == nil {
				// Backstop: a dead node's work was never adopted — the run
				// cannot produce complete factors.
				collectErr = fmt.Errorf("runtime: tile (%d,%d) lost: owner %d died and no survivor adopted its tasks",
					i, j, d.Owner(i, j))
			}
			if final != nil {
				collect(i, j, final)
			}
		})
		if collectErr != nil {
			return nil, collectErr
		}
	}
	return rep, nil
}

type event struct {
	// Exactly one of completed/msg is meaningful. err carries the kernel
	// failure of the completed task, if any.
	completed int // local task index, or -1
	err       error
	msg       cluster.Message
}

// inputRef locates one input tile of an owned task: the owner-side in-place
// buffer for local tiles (keyed by coordinates, version 0), or a received
// versioned copy for remote tiles.
type inputRef struct {
	remote bool
	tag    cluster.Tag
}

type engine struct {
	rank    int
	comm    *cluster.Comm
	g       dag.Graph
	redg    dag.ReduceGraph // non-nil when g schedules replication reductions
	owner   func(i, j int) int
	gen     func(i, j int) *tile.Tile
	b       int
	kern    Kernel
	workers int
	band    int     // cross-job priority band applied to every task key
	ver     []int32 // per-task output versions (shared, read-only)
	rec     *trace.Recorder
	epoch   time.Time

	owned     []dag.Task
	localIdx  map[int]int // graph task id -> index in owned
	remaining []int32
	ins       [][]inputRef // per owned task, in InputTiles visit order
	inbuf     [][]*tile.Tile
	waiters   map[cluster.Tag][]int
	// tiles holds the owned tiles, keyed at version 0: the in-place buffers
	// the owner's writer chain updates. recv holds received remote versions,
	// each retained (and its message released back to the cluster pool) until
	// readers[tag] consumers have run.
	tiles   map[cluster.Tag]*tile.Tile
	recv    map[cluster.Tag]cluster.Message
	readers map[cluster.Tag]int32
	// dstList/dstSeen are reusable scratch for collecting the distinct
	// destination nodes of one completion's broadcast.
	dstList []int
	dstSeen []bool

	// ready is the node's dispatch queue: the shared critical-path priority
	// heap of package sched, keyed by the precomputed per-task keys.
	ready sched.Heap
	keys  []int64 // per owned task, sched.Key of the task

	flops      float64
	ownedTiles int
	recvTotal  int
	peakTiles  int
	// forwarded counts the tree-broadcast hops this node relayed onward
	// (Comm.Forward calls happen in the event loop; the post-loop absorber
	// adds its own under forwardedLate, which is atomic because the report
	// may be read while the absorber still drains).
	forwarded     int
	forwardedLate atomic.Int64

	// disp fans dispatched jobs out to the worker goroutines through
	// per-worker deques with stealing; busy accumulates per-slot kernel
	// nanoseconds (each slot writes only its own entry, read after the
	// workers join).
	disp *dispatcher
	busy []int64

	// Scheduler observability (Report.Sched). stallNanos accumulates the
	// workers' starved wall-clock (atomically — every worker adds its own
	// wait spans); the report divides by the worker count to get the
	// idle-weighted StallSeconds.
	stallNanos atomic.Int64
	readyPeak  int
	dupDrops   int
	dispatched map[dag.Kind]int

	// Resilience (armed when arrival > 0): published caches the tile
	// versions this node broadcast, so re-requests can be answered even
	// after the publishing task's buffer was updated in place — or after
	// this node's event loop finished (the late request server reads it,
	// hence the mutex). seen marks tags that already arrived once, so
	// duplicates landing after the last-reader release still drop
	// idempotently. pending carries the re-request deadline per awaited tag.
	chaos     *chaos.Plan
	arrival   time.Duration
	resilient bool
	pubMu     sync.Mutex
	published map[cluster.Tag]*tile.Tile
	seen      map[cluster.Tag]bool
	pending   map[cluster.Tag]*pendingWait
	// relayed marks tree-broadcast tags whose Forward obligation this node
	// has honored. It is deliberately separate from seen: a redelivery
	// healed via Resend (no Forward list) marks a tag seen, but the late
	// original copy still carries the subtree and must be relayed exactly
	// once — keying the relay dedup on seen would swallow it and strand the
	// subtree behind its members' own re-request timeouts.
	relayed map[cluster.Tag]bool

	// Elastic recovery (armed by Options.Elastic): dead tracks crashed and
	// presumed-dead peers, adoptedBy the survivor that re-runs each dead
	// node's tasks (the deterministic hetero.Fastest rule, so every node
	// agrees without coordination), peerDone the completion barrier that
	// keeps every node's event loop serving re-requests and adoptions until
	// the whole cluster has finished. completed/adoptedSet/taskByTag back
	// the adoption state machine in adopt.go; total is the node's current
	// completion target (owned tasks plus adoptions). maxReq/lagReq are the
	// retry budgets of Options.
	elastic     bool
	speeds      []float64
	maxReq      int
	lagReq      int
	dead        []bool
	adoptedBy   []int
	peerDone    []bool
	doneSent    bool
	died        bool
	total       int
	completed   []bool                   // per owned index: task has finished here
	adoptedSet  map[int]bool             // graph task id -> adopted into this engine
	taskByTag   map[cluster.Tag]dag.Task // producer task of every output version (lazy)
	adopted     int                      // Resilience.Adopted
	speculative int                      // Resilience.Speculative

	// Resilience observability (Report.Resilience). redelivered is atomic
	// because the late request server increments it concurrently with the
	// report read.
	reRequests  int
	recovered   int
	redelivered atomic.Int64
}

// pendingWait is the re-request state of one awaited remote tile version.
type pendingWait struct {
	deadline   time.Time
	backoff    time.Duration
	attempts   int
	speculated bool // an adoption already races this tag; never escalate it
}

func newEngine(rank int, comm *cluster.Comm, g dag.Graph, d dist.Distribution,
	b int, gen func(i, j int) *tile.Tile, kern Kernel, opt Options,
	ver []int32, epoch time.Time) *engine {

	e := &engine{
		rank:       rank,
		comm:       comm,
		g:          g,
		owner:      d.Owner,
		gen:        gen,
		b:          b,
		kern:       kern,
		workers:    opt.Workers,
		band:       opt.PriorityBand,
		ver:        ver,
		rec:        opt.Recorder,
		epoch:      epoch,
		localIdx:   make(map[int]int),
		waiters:    make(map[cluster.Tag][]int),
		tiles:      make(map[cluster.Tag]*tile.Tile),
		recv:       make(map[cluster.Tag]cluster.Message),
		readers:    make(map[cluster.Tag]int32),
		dstList:    make([]int, 0, comm.Size()),
		dstSeen:    make([]bool, comm.Size()),
		dispatched: make(map[dag.Kind]int),
		ready:      sched.NewHeap(sched.CriticalPath.Tie()),
		chaos:      opt.Chaos,
		arrival:    opt.ArrivalTimeout,
		elastic:    opt.Elastic,
		speeds:     opt.Speeds,
		maxReq:     opt.MaxReRequests,
		lagReq:     opt.LagReRequests,
	}
	e.redg, _ = g.(dag.ReduceGraph)
	// opt.Workers is already normalized (Run is the only normalization
	// point); direct constructors must pass a positive count.
	e.disp = newDispatcher(e.workers)
	e.busy = make([]int64, e.workers)
	if e.maxReq == 0 {
		e.maxReq = 50
	}
	e.relayed = make(map[cluster.Tag]bool)
	if e.arrival > 0 {
		e.resilient = true
		e.published = make(map[cluster.Tag]*tile.Tile)
		e.seen = make(map[cluster.Tag]bool)
		e.pending = make(map[cluster.Tag]*pendingWait)
	}
	if e.elastic {
		P := comm.Size()
		e.dead = make([]bool, P)
		e.adoptedBy = make([]int, P)
		for n := range e.adoptedBy {
			e.adoptedBy[n] = -1
		}
		e.peerDone = make([]bool, P)
		e.adoptedSet = make(map[int]bool)
	}
	// Discover owned tasks and materialize owned tiles.
	dag.ForEachTask(g, func(t dag.Task) {
		oi, oj := g.OutputTile(t)
		if d.Owner(oi, oj) != rank {
			return
		}
		idx := len(e.owned)
		e.owned = append(e.owned, t)
		e.localIdx[g.ID(t)] = idx
		tag := cluster.Tag{I: int32(oi), J: int32(oj)}
		if _, ok := e.tiles[tag]; !ok {
			e.tiles[tag] = gen(oi, oj)
			e.ownedTiles++
		}
	})
	e.peakTiles = e.ownedTiles
	// Dependency bookkeeping: local deps resolve through successor visits,
	// remote deps through versioned tile arrivals.
	e.remaining = make([]int32, len(e.owned))
	e.completed = make([]bool, len(e.owned))
	e.ins = make([][]inputRef, len(e.owned))
	e.keys = make([]int64, len(e.owned))
	for idx, t := range e.owned {
		e.keys[idx] = sched.Band(sched.Key(t), e.band)
		e.remaining[idx] = int32(e.g.NumDependencies(t))
		e.g.Dependencies(t, func(dep dag.Task) {
			di, dj := e.g.OutputTile(dep)
			if d.Owner(di, dj) != rank {
				tag := cluster.Tag{I: int32(di), J: int32(dj), V: ver[e.g.ID(dep)]}
				e.waiters[tag] = append(e.waiters[tag], idx)
			}
		})
		// Resolve each input tile to its local buffer or the versioned remote
		// copy the task consumes, and count consumers per remote version so
		// copies can be released after their last reader.
		e.g.InputTiles(t, func(i, j int) {
			if d.Owner(i, j) == rank {
				e.ins[idx] = append(e.ins[idx], inputRef{tag: cluster.Tag{I: int32(i), J: int32(j)}})
				return
			}
			v, _ := dag.InputVersion(e.g, ver, t, i, j)
			tag := cluster.Tag{I: int32(i), J: int32(j), V: v}
			e.ins[idx] = append(e.ins[idx], inputRef{remote: true, tag: tag})
			e.readers[tag]++
		})
	}
	// One flat backing array for every task's kernel-input slice, so dispatch
	// allocates nothing per task.
	refsTotal := 0
	for _, refs := range e.ins {
		refsTotal += len(refs)
	}
	flat := make([]*tile.Tile, refsTotal)
	e.inbuf = make([][]*tile.Tile, len(e.owned))
	off := 0
	for idx, refs := range e.ins {
		e.inbuf[idx] = flat[off : off+len(refs) : off+len(refs)]
		off += len(refs)
	}
	return e
}

// run executes this node's share of the graph and returns when every owned
// task has completed, or promptly once the run aborts: a local kernel error
// poisons the cluster and is returned; a poisoned cluster observed while work
// is still outstanding means a peer failed, and ErrPeerAborted is returned.
//
// In elastic mode the exit condition is a barrier, not a local count: a node
// that finishes its share broadcasts cluster.NoteDone and keeps its event
// loop alive — answering re-requests, relaying tree hops, and above all
// remaining adoptable work-capacity — until every peer is done or dead. The
// barrier is what guarantees a death always finds its deterministic adopter
// still inside an event loop, never already exited.
func (e *engine) run() error {
	e.total = len(e.owned)
	if e.total == 0 && !e.elastic {
		return nil
	}

	events := make(chan event, e.workers+4)
	// Receiver: forwards network messages into the event loop; recvDone
	// closing signals the cluster itself has been closed (shutdown or abort).
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			msg, ok := e.comm.Recv()
			if !ok {
				return
			}
			events <- event{completed: -1, msg: msg}
		}
	}()

	// Workers pull jobs from the stealing dispatcher: own deque front first,
	// the coldest entry of the fullest peer deque when starved. A blocked
	// take that eventually yields a job is a starvation span — charged to
	// the node's idle-weighted stall account; the final wait that ends in
	// shutdown is not (the node is done, not starved).
	var workerWG sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		workerWG.Add(1)
		go func(slot int) {
			defer workerWG.Done()
			for {
				jb, ok, waitStart, waitEnd := e.disp.take(slot)
				if !ok {
					return
				}
				if !waitStart.IsZero() {
					e.noteStall(waitStart, waitEnd)
				}
				start := time.Now()
				// jb.task, not e.owned[jb.idx]: elastic adoption appends to
				// owned from the event loop while workers run.
				err := e.kern(jb.task, jb.out, jb.inputs)
				end := time.Now()
				e.busy[slot] += end.Sub(start).Nanoseconds()
				if e.rec != nil {
					e.rec.RecordTask(e.rank, slot, jb.task,
						start.Sub(e.epoch).Seconds(), end.Sub(e.epoch).Seconds())
				}
				events <- event{completed: jb.idx, err: err}
			}
		}(w)
	}

	for idx := range e.owned {
		if e.remaining[idx] == 0 {
			e.pushReady(idx)
		}
	}

	// Arm the re-request protocol: every awaited remote tile version gets an
	// arrival deadline, and a ticker at half the timeout drives the overdue
	// sweep. The channel stays nil — and the select case dead — when the
	// protocol is off or nothing is awaited; elastic nodes always arm it,
	// because adoption registers new awaited tags mid-run even on a node that
	// started with none. The sweep period is floored at 1ms: a sub-2ns
	// ArrivalTimeout used to truncate to a zero ticker period and panic.
	var tick <-chan time.Time
	if e.resilient && (len(e.waiters) > 0 || e.elastic) {
		deadline := time.Now().Add(e.arrival)
		for tag := range e.waiters {
			e.pending[tag] = &pendingWait{deadline: deadline, backoff: e.arrival}
		}
		period := e.arrival / 2
		if period < time.Millisecond {
			period = time.Millisecond
		}
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		tick = ticker.C
	}

	// Injected crash: the chaos plan may name the owned-task index just
	// before which this node dies — it stops dispatching and poisons the
	// cluster, exactly the failure surface of a real kernel error.
	crashAt := -1
	if e.chaos != nil {
		crashAt = e.chaos.CrashTask(e.rank)
	}
	dispatchCount := 0

	// feed moves ready tasks from the priority heap to the worker deques,
	// resolving each task's input tiles here in the event loop (the recv and
	// tiles maps are event-loop-owned). feedCap bounds dispatched-but-
	// unfinished work: with several workers each may hold one running task
	// plus one prefetched deque entry, giving idle workers something to
	// steal; a single worker gets no prefetch, so its dispatch order is
	// exactly the heap's priority order (the sim-vs-real crosscheck pins it).
	feedCap := 2 * e.workers
	if e.workers == 1 {
		feedCap = 1
	}
	dispatch := func(idx int) {
		t := e.owned[idx]
		e.dispatched[t.Kind]++
		oi, oj := e.g.OutputTile(t)
		out := e.tiles[cluster.Tag{I: int32(oi), J: int32(oj)}]
		if out == nil {
			panic(fmt.Sprintf("runtime: node %d: output tile of %v missing", e.rank, t))
		}
		inputs := e.inbuf[idx]
		for k, ref := range e.ins[idx] {
			var in *tile.Tile
			if ref.remote {
				in = e.recv[ref.tag].Payload
			} else {
				in = e.tiles[ref.tag]
			}
			if in == nil {
				panic(fmt.Sprintf("runtime: node %d: input tile %v of %v missing", e.rank, ref.tag, t))
			}
			inputs[k] = in
		}
		e.disp.push(job{idx: idx, task: t, out: out, inputs: inputs})
	}

	var abortErr error
	aborted := false
	recvClosed := recvDone // nilled after firing so the select stops spinning
	done, inflight := 0, 0
	// abortLocal handles this node's own failures (kernel error, protocol
	// violation, injected crash): dispatching stops and queued-but-unstarted
	// jobs are purged from the deques — their completions will never come, so
	// the in-flight count drops with them — and only already-running kernels
	// are awaited. A *peer* abort deliberately does not purge: jobs already
	// dealt to the deques were dispatched before the poison arrived and still
	// run (completions suppressed), so a node that was about to fail on its
	// own reports its kernel error instead of the bystander sentinel
	// regardless of how goroutine scheduling interleaved push and abort.
	abortLocal := func(err error) {
		aborted = true
		abortErr = err
		inflight -= e.disp.purge()
	}
	for {
		if !aborted {
			for !e.ready.Empty() && inflight < feedCap {
				if crashAt >= 0 && dispatchCount == crashAt {
					e.chaos.RecordCrash(e.rank, dispatchCount)
					if e.elastic {
						// Elastic death: announce it out-of-band and fall
						// silent — no more dispatch, no publications, no
						// request answering. The cluster is NOT poisoned;
						// the survivors' adopter replays our tasks and the
						// run completes without us. Crashing is not an
						// error under elastic recovery.
						e.died = true
						e.comm.Notify(cluster.NoteDown, e.rank)
						if e.rec != nil {
							e.rec.RecordFault("crash", e.rank, e.rank,
								fmt.Sprintf("task %d", dispatchCount),
								time.Since(e.epoch).Seconds())
						}
						abortLocal(nil)
					} else {
						e.comm.Abort()
						abortLocal(fmt.Errorf("node %d died before its owned task %d: %w",
							e.rank, dispatchCount, chaos.ErrInjectedCrash))
					}
					break
				}
				dispatch(int(e.ready.Pop()))
				dispatchCount++
				inflight++
			}
			if !aborted && done == e.total {
				if !e.elastic {
					break
				}
				// Elastic completion barrier: announce we are done (once —
				// adoption may raise e.total again, and a stale NoteDone is
				// harmless because every node stays in its loop until the
				// whole cluster settles) and exit only when every peer is
				// done or dead.
				if !e.doneSent {
					e.doneSent = true
					e.peerDone[e.rank] = true
					e.comm.Notify(cluster.NoteDone, e.rank)
				}
				if e.peersSettled() {
					break
				}
			}
		}
		if aborted && inflight == 0 {
			// Abort: nothing running anymore, nothing will be dispatched.
			break
		}
		select {
		case ev := <-events:
			switch {
			case ev.completed < 0:
				if aborted {
					ev.msg.Release()
				} else if err := e.onArrival(ev.msg); err != nil {
					// Protocol violation (conflicting duplicate delivery):
					// fail this node descriptively instead of panicking, and
					// poison the cluster like any other node failure.
					e.comm.Abort()
					abortLocal(err)
				}
			default:
				inflight--
				done++
				if ev.err != nil {
					if !aborted {
						// First local kernel failure: record the root cause,
						// stop dispatching, and poison the cluster so peers
						// blocked on tiles we will never produce wake up. The
						// failed task's output is never published. A kernel
						// error is a correctness failure, not a crash —
						// elastic recovery never masks it.
						e.comm.Abort()
						abortLocal(fmt.Errorf("%v: %w", e.owned[ev.completed], ev.err))
					} else if errors.Is(abortErr, ErrPeerAborted) {
						// This node failed too, it just noticed the peer's
						// poison first: its own kernel error is the better
						// root cause than the bystander sentinel.
						abortErr = fmt.Errorf("%v: %w", e.owned[ev.completed], ev.err)
					}
				} else if !aborted {
					e.onComplete(ev.completed)
				}
				// Completions after the abort are suppressed entirely: no
				// successor release, no sends.
			}
		case <-recvClosed:
			recvClosed = nil
			if !aborted {
				// The cluster was poisoned while we still have unfinished
				// work: a peer failed. No purge — already-dispatched jobs
				// drain through the workers (see abortLocal), and their
				// completions bring inflight to zero.
				aborted = true
				abortErr = ErrPeerAborted
			}
		case <-tick:
			if !aborted {
				if err := e.onTick(); err != nil {
					// Retry budget exhausted on a non-elastic run: fail
					// descriptively and poison the cluster, exactly like a
					// kernel error.
					e.comm.Abort()
					abortLocal(err)
				}
			}
		}
	}
	e.disp.close()
	workerWG.Wait()
	// An aborted (or cancelled, or crashed) run leaves received tiles
	// retained in recv whose consumer tasks will never execute; the workers
	// are joined, so release them here or their pooled buffers leak — on a
	// shared cluster, permanently. A completed run's last-reader release
	// already emptied the map, making this a no-op.
	for tag, m := range e.recv {
		m.Release()
		delete(e.recv, tag)
	}
	// Absorb (and release) any late messages until the cluster is closed, so
	// remote senders and our receiver goroutine can always make progress. In
	// resilient mode this absorber doubles as the late request server: a
	// consumer slower than us may still re-request tile versions we
	// published, and must get them even though our event loop is gone. The
	// server deliberately touches only the published cache (under pubMu) and
	// atomic counters — never the recorder or plain engine fields, which the
	// report reads concurrently.
	// crashed covers every abort, including an elastic death: a dead node
	// answers no requests and relays nothing — that silence is exactly what
	// the survivors' escalation and adoption must overcome.
	crashed := aborted
	go func() {
		for ev := range events {
			if ev.msg.Note != cluster.NoteNone {
				continue
			}
			if e.resilient && !crashed && ev.msg.Req {
				e.answerRequest(ev.msg, false)
				continue
			}
			// A tree-broadcast hop that lands after our event loop finished
			// still carries its subtree's deliveries: relay it (once — the
			// relayed map, now touched only by this goroutine, tracks the
			// per-tag forward obligation) before releasing our own share, so
			// a fast consumer never strands the slow subtree behind it. The
			// dedup is keyed on relayed, not seen: a tag healed into seen by
			// a Resend redelivery (which carries no Forward list) must not
			// swallow the late original copy's relay duty.
			if !crashed && len(ev.msg.Forward) > 0 && !e.relayed[ev.msg.Tag] {
				e.relayed[ev.msg.Tag] = true
				e.forwardedLate.Add(int64(e.comm.Forward(ev.msg)))
			}
			ev.msg.Release()
		}
	}()
	go func() {
		<-recvDone
		close(events)
	}()
	return abortErr
}

// onTick sweeps the awaited remote tile versions and re-requests every one
// past its deadline from its owner (or, once the owner is dead, from its
// adopter), doubling the deadline each retry (capped) so a genuinely slow
// producer is not hammered. The sweep is also the failure detector of last
// resort: a tag whose retry budget (Options.MaxReRequests) runs dry fails
// the node with ErrUndelivered on a plain resilient run, or — under elastic
// recovery — presumes the silent owner dead, gossips cluster.NoteDown, and
// restarts the budget against the adopter. Before that point, a lagging but
// answering owner's chain can be adopted speculatively (Options.LagReRequests).
func (e *engine) onTick() error {
	now := time.Now()
	for tag, p := range e.pending {
		if now.Before(p.deadline) {
			continue
		}
		origOwner := e.owner(int(tag.I), int(tag.J))
		target := e.liveOwner(origOwner)
		if target == e.rank || target < 0 {
			// We are the adopter ourselves (the replay will fulfill this tag
			// locally), or the dead owner has no adopter to ask: requesting
			// is pointless, just keep the deadline moving.
			p.deadline = now.Add(p.backoff)
			continue
		}
		if p.attempts >= e.maxReq && e.maxReq > 0 && !p.speculated {
			if !e.elastic {
				return fmt.Errorf("node %d: tile (%d,%d) v%d from node %d undelivered after %d re-requests: %w",
					e.rank, tag.I, tag.J, tag.V, target, p.attempts, ErrUndelivered)
			}
			// Elastic escalation: the target has ignored the whole budget —
			// presume it dead, tell everyone, and start a fresh budget
			// against whoever adopts it. markDead resets the attempts of
			// every tag the dead node owed us.
			e.markDead(target, true)
			if target = e.liveOwner(origOwner); target == e.rank || target < 0 {
				continue
			}
		}
		if e.elastic && e.lagReq > 0 && p.attempts >= e.lagReq && !p.speculated && !e.dead[origOwner] {
			// The owner is alive but lagging: speculatively replay the
			// overdue version's producer chain at demoted priority, racing
			// the laggard. Whichever copy lands first wins; the loser drops
			// as an idempotent duplicate.
			e.adoptChain(tag)
			p.speculated = true
			if _, still := e.pending[tag]; !still {
				// The chain replay fulfilled the tag synchronously (every
				// input was already at hand); nothing left to re-request.
				continue
			}
		}
		e.comm.Request(target, tag)
		e.reRequests++
		p.attempts++
		p.backoff *= 2
		if maxB := 8 * e.arrival; p.backoff > maxB {
			p.backoff = maxB
		}
		p.deadline = now.Add(p.backoff)
		if e.rec != nil {
			e.rec.RecordFault("re-request", e.rank, target,
				fmt.Sprintf("(%d,%d)v%d", tag.I, tag.J, tag.V),
				time.Since(e.epoch).Seconds())
		}
	}
	return nil
}

// answerRequest serves one version re-request from the published cache. A
// request for a version not yet published is dropped: the normal broadcast
// at completion covers it, and the requester's backoff retries if that
// broadcast is the delivery that gets lost. live distinguishes the event
// loop (which may record the redelivery) from the post-loop server (which
// must not touch the recorder).
func (e *engine) answerRequest(msg cluster.Message, live bool) {
	e.pubMu.Lock()
	cached := e.published[msg.Tag]
	e.pubMu.Unlock()
	if cached == nil {
		return
	}
	e.comm.Resend(msg.From, msg.Tag, cached)
	e.redelivered.Add(1)
	if live && e.rec != nil {
		e.rec.RecordFault("redeliver", e.rank, msg.From,
			fmt.Sprintf("(%d,%d)v%d", msg.Tag.I, msg.Tag.J, msg.Tag.V),
			time.Since(e.epoch).Seconds())
	}
}

// noteStall charges one worker's starved interval to the node's stall
// account: StallSeconds integrates idle-worker-time weighted by 1/workers,
// so a node with one of four workers starved accrues a quarter of what a
// fully idle node does (the pre-weighting accounting charged full wall-clock
// whenever any worker was free). Called from worker goroutines; the nanos
// accumulate atomically and the recorder locks internally.
func (e *engine) noteStall(start, end time.Time) {
	e.stallNanos.Add(end.Sub(start).Nanoseconds())
	if e.rec != nil {
		e.rec.RecordStall(e.rank,
			start.Sub(e.epoch).Seconds(), end.Sub(e.epoch).Seconds(),
			1/float64(e.workers))
	}
}

// pushReady queues owned task idx for dispatch under its critical-path key
// and tracks the ready-queue high-water mark.
func (e *engine) pushReady(idx int) {
	e.ready.Push(e.keys[idx], int32(idx))
	if n := e.ready.Len(); n > e.readyPeak {
		e.readyPeak = n
	}
}

// onComplete publishes a finished task: releases local successors, sends the
// output tile version once to every distinct remote consumer node, and
// releases received tiles whose last local consumer just ran.
//
// Under elastic recovery the completion may belong to an adopted task, and
// the node may host both halves of a dependency edge that used to cross the
// wire. Local successors split by side: a successor on the same side as the
// producer (both native, or both adopted — reading the producer's in-place
// buffer) is released directly; a successor on the other side registered a
// waiter on the versioned tag at adoption time and is fed through
// fulfillLocal, which stashes a snapshot exactly as if the tag had arrived
// over the network — one release path per edge, so a racing stale arrival
// can never double-decrement a dependency count.
func (e *engine) onComplete(idx int) {
	t := e.owned[idx]
	e.completed[idx] = true
	e.flops += e.g.Flops(t, e.b)
	oi, oj := e.g.OutputTile(t)
	v := e.ver[e.g.ID(t)]
	out := e.tiles[cluster.Tag{I: int32(oi), J: int32(oj)}]
	netTag := cluster.Tag{I: int32(oi), J: int32(oj), V: v}

	tAdopted := e.adoptedSet[e.g.ID(t)]
	origOwner := e.owner(oi, oj)
	if tAdopted {
		if sched.Demoted(e.keys[idx]) {
			e.speculative++
		} else {
			e.adopted++
		}
	}

	hadRemote := false
	e.dstList = e.dstList[:0]
	e.g.Successors(t, func(s dag.Task) {
		sid := e.g.ID(s)
		if li, ok := e.localIdx[sid]; ok && e.adoptedSet[sid] == tAdopted {
			// Same-side local successor: released directly (cross-side local
			// edges go through fulfillLocal below, via the waiter the
			// consumer registered on netTag).
			e.remaining[li]--
			if e.remaining[li] == 0 {
				e.pushReady(li)
			}
		}
		si, sj := e.g.OutputTile(s)
		sOwner := e.owner(si, sj)
		if sOwner == e.rank {
			return // natively local edge: no wire delivery in any schedule
		}
		// The successor's original rank consumes this version over the wire
		// regardless of whether a copy of the task also runs here: adopting a
		// task — fully or speculatively — never cancels the delivery to the
		// rank that still natively awaits it (a speculated successor's owner
		// is alive and computing; skipping it would strand its native copy
		// with a version that was never broadcast and so can never heal).
		hadRemote = true
		dst := e.liveOwner(sOwner)
		if dst == e.rank || dst < 0 {
			// Our own adoptee, or owned by a dead node nobody has adopted
			// yet: its eventual adopter pulls the version via Request from
			// our published cache.
			return
		}
		if tAdopted && dst == origOwner && !e.dead[origOwner] {
			// Speculative replay of a lagging-but-alive node's task: never
			// feed the original owner its own output.
			return
		}
		if !e.dstSeen[dst] {
			e.dstSeen[dst] = true
			e.dstList = append(e.dstList, dst)
		}
	})
	if len(e.dstList) > 0 {
		if e.redg != nil && len(e.dstList) == 1 && e.redg.ReducePartial(t) {
			// Reduction partial: the accumulator's only remote consumer is the
			// combine on its binomial parent's node, a point-to-point shipment
			// counted as reduction traffic rather than a broadcast.
			e.comm.SendReduce(e.dstList[0], netTag, out)
		} else {
			// One broadcast, one clone: every consumer node shares the same
			// immutable payload (see cluster.SendAll).
			e.comm.SendAll(e.dstList, netTag, out)
		}
		for _, dst := range e.dstList {
			e.dstSeen[dst] = false
		}
	}
	if e.published != nil && hadRemote {
		// Snapshot the published version for the re-request protocol: out is
		// updated in place by this tile's later writers, so the broadcast
		// content must be preserved separately. Snapshotted whenever any
		// remote consumer exists — even one whose death (or speculative
		// skip) emptied today's destination list — because that consumer's
		// adopter may still re-request the version.
		e.pubMu.Lock()
		e.published[netTag] = out.Clone()
		e.pubMu.Unlock()
	}
	if e.elastic {
		e.fulfillLocal(netTag, out)
	}

	// Last-reader release: drop received copies this task consumed once no
	// other local task still needs them, returning their buffers to the
	// cluster pool.
	for _, ref := range e.ins[idx] {
		if !ref.remote {
			continue
		}
		if e.readers[ref.tag]--; e.readers[ref.tag] <= 0 {
			delete(e.readers, ref.tag)
			if m, ok := e.recv[ref.tag]; ok {
				m.Release()
				delete(e.recv, ref.tag)
			}
		}
	}
}

// onArrival stores a received tile version and releases the tasks waiting on
// it. Versions no local task consumes (pure ordering dependencies) are
// dropped immediately; everything else is retained until its last consumer
// runs.
//
// The transport sends each tile version at most once per destination, but a
// re-delivery must not crash the node: an arrival whose tag is already
// retained is dropped idempotently when its payload matches the retained copy
// (counted in Report.Sched.DuplicateDrops), and reported as a descriptive
// error — surfaced through Run's joined node errors — when the payloads
// genuinely conflict, since then one of the two writes is wrong and the run
// cannot be trusted.
func (e *engine) onArrival(msg cluster.Message) error {
	if msg.Note != cluster.NoteNone {
		e.onNote(msg)
		return nil
	}
	if msg.Req {
		// A consumer's re-request for a version we published (no payload).
		e.answerRequest(msg, true)
		return nil
	}
	// Honor the tree-broadcast relay obligation before any payload dedup, so
	// the subtree's arrivals pipeline behind ours instead of behind our
	// kernel work. The obligation is deduplicated by the relayed map, not by
	// the recv/seen payload dedup below: when an interior relay hop dropped
	// the original copy and a Resend heal (which carries no Forward list)
	// landed first, the late original is a payload duplicate that still owes
	// its subtree a relay — keying relays on the payload dedup used to
	// swallow it and strand every downstream consumer behind its own
	// re-request timeout.
	if len(msg.Forward) > 0 && !e.relayed[msg.Tag] {
		e.relayed[msg.Tag] = true
		e.forwarded += e.comm.Forward(msg)
	}
	if prev, dup := e.recv[msg.Tag]; dup {
		identical := prev.Payload.EqualApprox(msg.Payload, 0)
		msg.Release()
		if identical {
			e.dupDrops++
			return nil
		}
		return fmt.Errorf("conflicting duplicate of tile %v from node %d: payload differs from the retained copy", msg.Tag, msg.From)
	}
	if e.seen != nil {
		// Resilient transports may duplicate or redeliver: a tag whose first
		// copy was already consumed and released is long gone from recv, so
		// remember every tag ever arrived and drop the stragglers here —
		// idempotently, like the recv-keyed duplicates above.
		if e.seen[msg.Tag] {
			msg.Release()
			e.dupDrops++
			return nil
		}
		e.seen[msg.Tag] = true
	}
	if e.pending != nil {
		if p, ok := e.pending[msg.Tag]; ok {
			if p.attempts > 0 {
				// This version arrived only after we re-requested it: the
				// timeout path healed a lost delivery.
				e.recovered++
				if e.rec != nil {
					e.rec.RecordFault("recovered", msg.From, e.rank,
						fmt.Sprintf("(%d,%d)v%d", msg.Tag.I, msg.Tag.J, msg.Tag.V),
						time.Since(e.epoch).Seconds())
				}
			}
			delete(e.pending, msg.Tag)
		}
	}
	e.recvTotal++
	if e.rec != nil {
		e.rec.RecordMessage(msg.From, e.rank,
			msg.SentAt.Sub(e.epoch).Seconds(), time.Since(e.epoch).Seconds(),
			msg.Payload.Bytes())
	}
	if e.readers[msg.Tag] > 0 {
		e.recv[msg.Tag] = msg
		if held := e.ownedTiles + len(e.recv); held > e.peakTiles {
			e.peakTiles = held
		}
	} else {
		msg.Release()
	}
	for _, idx := range e.waiters[msg.Tag] {
		e.remaining[idx]--
		if e.remaining[idx] == 0 {
			e.pushReady(idx)
		}
	}
	delete(e.waiters, msg.Tag)
	return nil
}

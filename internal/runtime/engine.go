// Package runtime implements the task-based distributed execution engine —
// the role StarPU plays under Chameleon in the paper. The application only
// supplies a task graph (package dag) and a tile→node map (package dist); the
// engine then applies the owner-computes rule, tracks dependencies, infers
// all inter-node communications, and executes the real numeric kernels on
// every virtual node concurrently.
//
// Each node runs an event loop: local task completions release local
// successors; completions whose output some remote node consumes push that
// tile to each distinct consumer node as one point-to-point message; tile
// arrivals release the tasks waiting on them. Mailboxes are unbounded and the
// graph is acyclic, so execution is deadlock-free.
package runtime

import (
	"fmt"
	"sync"
	"time"

	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/tile"
)

// Kernel applies one task: out is the task's output tile (updated in place),
// inputs are the tiles listed by Graph.InputTiles in visit order.
type Kernel func(t dag.Task, out *tile.Tile, inputs []*tile.Tile) error

// Options tunes the engine.
type Options struct {
	// Workers is the number of concurrent kernel executors per node
	// (default 1). Values above 1 model multi-core nodes; correctness is
	// guaranteed by the task graph for any value.
	Workers int
}

// Report summarizes one distributed execution.
type Report struct {
	// Stats holds the communication counters of the virtual network.
	Stats cluster.Stats
	// TasksPerNode counts the kernels each node executed.
	TasksPerNode []int
	// FlopsPerNode sums the flops each node executed.
	FlopsPerNode []float64
	// OwnedTilesPerNode and ReceivedTilesPerNode describe each node's memory
	// footprint: tiles it owns under the distribution, and remote tiles it
	// had to hold to execute its tasks. Their sum bounds the node's working
	// set (this runtime keeps received tiles for the whole run).
	OwnedTilesPerNode    []int
	ReceivedTilesPerNode []int
	// Elapsed is the wall-clock duration of the distributed run.
	Elapsed time.Duration
}

// Run executes graph g on a fresh virtual cluster with the given tile
// distribution, initial tile generator and kernel. It returns the final tile
// contents via collect: after all nodes finish, collect is called once for
// every tile with its final payload.
func Run(g dag.Graph, d dist.Distribution, b int,
	gen func(i, j int) *tile.Tile, kern Kernel, opt Options,
	collect func(i, j int, t *tile.Tile)) (*Report, error) {

	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	P := d.Nodes()
	cl := cluster.New(P)

	engines := make([]*engine, P)
	for rank := 0; rank < P; rank++ {
		engines[rank] = newEngine(rank, cl.Comm(rank), g, d, b, gen, kern, opt.Workers)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, P)
	for rank := 0; rank < P; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = engines[rank].run()
		}(rank)
	}
	wg.Wait()
	cl.Close()
	elapsed := time.Since(start)

	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runtime: node %d: %w", rank, err)
		}
	}

	rep := &Report{
		Stats:                cl.Stats(),
		TasksPerNode:         make([]int, P),
		FlopsPerNode:         make([]float64, P),
		OwnedTilesPerNode:    make([]int, P),
		ReceivedTilesPerNode: make([]int, P),
		Elapsed:              elapsed,
	}
	for rank, e := range engines {
		rep.TasksPerNode[rank] = len(e.owned)
		rep.FlopsPerNode[rank] = e.flops
		rep.OwnedTilesPerNode[rank] = e.ownedTiles
		rep.ReceivedTilesPerNode[rank] = len(e.tiles) - e.ownedTiles
	}

	if collect != nil {
		seen := map[cluster.Tag]bool{}
		dag.ForEachTask(g, func(t dag.Task) {
			i, j := g.OutputTile(t)
			tag := cluster.Tag{I: int32(i), J: int32(j)}
			if seen[tag] {
				return
			}
			seen[tag] = true
			owner := d.Owner(i, j)
			collect(i, j, engines[owner].tiles[tag])
		})
	}
	return rep, nil
}

type event struct {
	// Exactly one of the two is meaningful.
	completed int // local task index, or -1
	msg       cluster.Message
}

type engine struct {
	rank    int
	comm    *cluster.Comm
	g       dag.Graph
	owner   func(i, j int) int
	b       int
	kern    Kernel
	workers int

	owned     []dag.Task
	localIdx  map[int]int // graph task id -> index in owned
	remaining []int32
	waiters   map[cluster.Tag][]int
	tiles     map[cluster.Tag]*tile.Tile

	flops      float64
	ownedTiles int
}

func newEngine(rank int, comm *cluster.Comm, g dag.Graph, d dist.Distribution,
	b int, gen func(i, j int) *tile.Tile, kern Kernel, workers int) *engine {

	e := &engine{
		rank:     rank,
		comm:     comm,
		g:        g,
		owner:    d.Owner,
		b:        b,
		kern:     kern,
		workers:  workers,
		localIdx: make(map[int]int),
		waiters:  make(map[cluster.Tag][]int),
		tiles:    make(map[cluster.Tag]*tile.Tile),
	}
	// Discover owned tasks and materialize owned tiles.
	dag.ForEachTask(g, func(t dag.Task) {
		oi, oj := g.OutputTile(t)
		if d.Owner(oi, oj) != rank {
			return
		}
		idx := len(e.owned)
		e.owned = append(e.owned, t)
		e.localIdx[g.ID(t)] = idx
		tag := cluster.Tag{I: int32(oi), J: int32(oj)}
		if _, ok := e.tiles[tag]; !ok {
			e.tiles[tag] = gen(oi, oj)
			e.ownedTiles++
		}
	})
	// Dependency bookkeeping: local deps resolve through successor visits,
	// remote deps through tile arrivals.
	e.remaining = make([]int32, len(e.owned))
	for idx, t := range e.owned {
		e.remaining[idx] = int32(e.g.NumDependencies(t))
		e.g.Dependencies(t, func(dep dag.Task) {
			di, dj := e.g.OutputTile(dep)
			if d.Owner(di, dj) != rank {
				tag := cluster.Tag{I: int32(di), J: int32(dj)}
				e.waiters[tag] = append(e.waiters[tag], idx)
			}
		})
	}
	return e
}

// run executes this node's share of the graph and returns when every owned
// task has completed.
func (e *engine) run() error {
	total := len(e.owned)
	if total == 0 {
		return nil
	}

	events := make(chan event, e.workers+4)
	// Receiver: forwards network messages into the event loop.
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			msg, ok := e.comm.Recv()
			if !ok {
				return
			}
			events <- event{completed: -1, msg: msg}
		}
	}()

	type job struct {
		idx    int
		out    *tile.Tile
		inputs []*tile.Tile
	}
	work := make(chan job, e.workers)
	var kernErr error
	var kernErrOnce sync.Once
	var workerWG sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for jb := range work {
				if err := e.kern(e.owned[jb.idx], jb.out, jb.inputs); err != nil {
					kernErrOnce.Do(func() { kernErr = err })
				}
				events <- event{completed: jb.idx}
			}
		}()
	}

	var ready []int
	for idx := range e.owned {
		if e.remaining[idx] == 0 {
			ready = append(ready, idx)
		}
	}

	dispatch := func(idx int) {
		t := e.owned[idx]
		oi, oj := e.g.OutputTile(t)
		out := e.tiles[cluster.Tag{I: int32(oi), J: int32(oj)}]
		var inputs []*tile.Tile
		e.g.InputTiles(t, func(i, j int) {
			tag := cluster.Tag{I: int32(i), J: int32(j)}
			in, ok := e.tiles[tag]
			if !ok {
				panic(fmt.Sprintf("runtime: node %d: input tile (%d,%d) of %v missing", e.rank, i, j, t))
			}
			inputs = append(inputs, in)
		})
		work <- job{idx: idx, out: out, inputs: inputs}
	}

	done, inflight := 0, 0
	for done < total {
		for len(ready) > 0 && inflight < e.workers {
			idx := ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			dispatch(idx)
			inflight++
		}
		ev := <-events
		if ev.completed >= 0 {
			inflight--
			done++
			ready = e.onComplete(ev.completed, ready)
		} else {
			ready = e.onArrival(ev.msg, ready)
		}
	}
	close(work)
	workerWG.Wait()
	// Absorb any late messages until the cluster is closed, so remote senders
	// and our receiver goroutine can always make progress.
	go func() {
		for range events {
		}
	}()
	go func() {
		<-recvDone
		close(events)
	}()
	return kernErr
}

// onComplete publishes a finished task: releases local successors and sends
// the output tile once to every distinct remote consumer node.
func (e *engine) onComplete(idx int, ready []int) []int {
	t := e.owned[idx]
	e.flops += e.g.Flops(t, e.b)
	oi, oj := e.g.OutputTile(t)
	tag := cluster.Tag{I: int32(oi), J: int32(oj)}
	out := e.tiles[tag]

	sent := map[int]bool{}
	e.g.Successors(t, func(s dag.Task) {
		si, sj := e.g.OutputTile(s)
		dst := e.owner(si, sj)
		if dst == e.rank {
			li := e.localIdx[e.g.ID(s)]
			e.remaining[li]--
			if e.remaining[li] == 0 {
				ready = append(ready, li)
			}
			return
		}
		if !sent[dst] {
			sent[dst] = true
			e.comm.Send(dst, tag, out)
		}
	})
	return ready
}

// onArrival stores a received tile and releases the tasks waiting on it.
func (e *engine) onArrival(msg cluster.Message, ready []int) []int {
	if _, dup := e.tiles[msg.Tag]; dup {
		// A tile version is sent at most once per destination; receiving a
		// duplicate indicates a protocol bug.
		panic(fmt.Sprintf("runtime: node %d: duplicate tile %v", e.rank, msg.Tag))
	}
	e.tiles[msg.Tag] = msg.Payload
	for _, idx := range e.waiters[msg.Tag] {
		e.remaining[idx]--
		if e.remaining[idx] == 0 {
			ready = append(ready, idx)
		}
	}
	delete(e.waiters, msg.Tag)
	return ready
}

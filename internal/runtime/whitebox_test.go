package runtime

import (
	"testing"
	"time"

	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/tile"
)

// testEngine builds one engine the way Run does, including the shared
// output-version table.
func testEngine(t *testing.T, rank int, cl *cluster.Cluster, g dag.Graph,
	d dist.Distribution, b int, gen func(i, j int) *tile.Tile, kern Kernel) *engine {
	t.Helper()
	ver, err := prevalidate(g, d)
	if err != nil {
		t.Fatal(err)
	}
	return newEngine(rank, cl.Comm(rank), g, d, b, gen, kern, Options{Workers: 1}, ver, time.Now())
}

// TestDuplicateArrivalIdempotent exercises the protocol guard: re-delivery
// of a tile version the node already retains must be dropped idempotently —
// no dependency count corrupted, no crash — and counted for the report.
// Distinct versions of the same tile are legal under the versioned protocol;
// only an exact tag repeat is a re-delivery.
func TestDuplicateArrivalIdempotent(t *testing.T) {
	g := dag.NewLU(4)
	d := dist.NewTwoDBC(2, 2)
	cl := cluster.New(4)
	defer cl.Close()
	gen := GenDiagDominant(4, 3, 1)
	e := testEngine(t, 1, cl, g, d, 3, gen, LUKernel)

	// Node 1 owns tile (0,1): its TRSMRow reads the GETRF output (0,0) at
	// version 0, so the arrival is stored (readers > 0) and a repeat with the
	// same payload is an identical re-delivery.
	pay := tile.New(3, 3)
	pay.Fill(2.5)
	msg := cluster.Message{From: 0, To: 1, Tag: cluster.Tag{I: 0, J: 0, V: 0}, Payload: pay}
	if err := e.onArrival(msg); err != nil {
		t.Fatal(err)
	}
	waitersBefore := len(e.waiters)
	remainingBefore := append([]int32(nil), e.remaining...)
	if err := e.onArrival(cluster.Message{From: 0, To: 1, Tag: msg.Tag, Payload: pay.Clone()}); err != nil {
		t.Fatalf("identical re-delivery returned error: %v", err)
	}
	if e.dupDrops != 1 {
		t.Fatalf("dupDrops = %d, want 1", e.dupDrops)
	}
	if e.recvTotal != 1 {
		t.Fatalf("recvTotal = %d, want 1 (duplicate must not count as a delivery)", e.recvTotal)
	}
	if len(e.waiters) != waitersBefore {
		t.Fatalf("waiters changed on duplicate: %d -> %d", waitersBefore, len(e.waiters))
	}
	for idx, rem := range e.remaining {
		if rem != remainingBefore[idx] {
			t.Fatalf("remaining[%d] changed on duplicate: %d -> %d", idx, remainingBefore[idx], rem)
		}
	}
}

// TestConflictingDuplicateArrivalErrors: a re-delivered tag whose payload
// differs from the retained copy is a genuine protocol violation and must
// surface as a descriptive error (joined into Run's node errors), not a
// process panic.
func TestConflictingDuplicateArrivalErrors(t *testing.T) {
	g := dag.NewLU(4)
	d := dist.NewTwoDBC(2, 2)
	cl := cluster.New(4)
	defer cl.Close()
	e := testEngine(t, 1, cl, g, d, 3, GenDiagDominant(4, 3, 1), LUKernel)

	pay := tile.New(3, 3)
	pay.Fill(1)
	tag := cluster.Tag{I: 0, J: 0, V: 0}
	if err := e.onArrival(cluster.Message{From: 0, To: 1, Tag: tag, Payload: pay}); err != nil {
		t.Fatal(err)
	}
	conflict := tile.New(3, 3)
	conflict.Fill(-7)
	err := e.onArrival(cluster.Message{From: 0, To: 1, Tag: tag, Payload: conflict})
	if err == nil {
		t.Fatal("conflicting duplicate did not return an error")
	}
	if e.dupDrops != 0 {
		t.Fatalf("conflicting duplicate counted as idempotent drop: dupDrops = %d", e.dupDrops)
	}
}

// TestUnconsumedArrivalDropped: a version no local task reads (a pure
// ordering dependency) must be released immediately instead of retained.
func TestUnconsumedArrivalDropped(t *testing.T) {
	g := dag.NewLU(4)
	d := dist.NewTwoDBC(2, 2)
	cl := cluster.New(4)
	defer cl.Close()
	e := testEngine(t, 1, cl, g, d, 3, GenDiagDominant(4, 3, 1), LUKernel)

	// Version 99 of tile (0,0) has no registered reader on node 1.
	msg := cluster.Message{From: 0, To: 1, Tag: cluster.Tag{I: 0, J: 0, V: 99}, Payload: tile.New(3, 3)}
	if err := e.onArrival(msg); err != nil {
		t.Fatal(err)
	}
	if len(e.recv) != 0 {
		t.Fatalf("unconsumed arrival retained: %d tiles", len(e.recv))
	}
	if e.recvTotal != 1 {
		t.Fatalf("recvTotal = %d, want 1", e.recvTotal)
	}
}

// TestEngineOwnedDiscovery checks that engines partition the task set
// exactly: every task owned by exactly one engine, and owned tiles
// materialized.
func TestEngineOwnedDiscovery(t *testing.T) {
	g := dag.NewCholesky(6)
	d := dist.NewSBCPair(4)
	cl := cluster.New(d.Nodes())
	defer cl.Close()
	gen := GenSPD(6, 4, 2)
	total := 0
	for rank := 0; rank < d.Nodes(); rank++ {
		e := testEngine(t, rank, cl, g, d, 4, gen, CholeskyKernel)
		total += len(e.owned)
		for _, task := range e.owned {
			oi, oj := g.OutputTile(task)
			if d.Owner(oi, oj) != rank {
				t.Fatalf("engine %d owns task %v with owner %d", rank, task, d.Owner(oi, oj))
			}
			tag := cluster.Tag{I: int32(oi), J: int32(oj)}
			if e.tiles[tag] == nil {
				t.Fatalf("engine %d did not materialize tile %v", rank, tag)
			}
		}
		// Remaining counts must equal NumDependencies.
		for idx, task := range e.owned {
			if int(e.remaining[idx]) != g.NumDependencies(task) {
				t.Fatalf("engine %d task %v remaining %d != deps %d",
					rank, task, e.remaining[idx], g.NumDependencies(task))
			}
		}
		// Reader counts cover exactly the remote input references.
		remoteRefs := 0
		for _, refs := range e.ins {
			for _, ref := range refs {
				if ref.remote {
					remoteRefs++
				}
			}
		}
		sum := int32(0)
		for _, n := range e.readers {
			sum += n
		}
		if int(sum) != remoteRefs {
			t.Fatalf("engine %d reader counts %d != remote input refs %d", rank, sum, remoteRefs)
		}
	}
	if total != g.NumTasks() {
		t.Fatalf("engines own %d tasks, graph has %d", total, g.NumTasks())
	}
}

// TestEmptyEngineRuns: a node owning nothing must terminate immediately.
func TestEmptyEngineRuns(t *testing.T) {
	g := dag.NewLU(2)
	// Distribution mapping everything to node 0 of 3.
	d := dist.NewTwoDBC(1, 1)
	cl := cluster.New(3)
	defer cl.Close()
	e := testEngine(t, 2, cl, g, d, 3, GenDiagDominant(2, 3, 1), LUKernel)
	if err := e.run(); err != nil {
		t.Fatal(err)
	}
	if len(e.owned) != 0 {
		t.Fatal("node 2 owns tasks under a single-node distribution")
	}
}

package runtime

import (
	"testing"

	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/tile"
)

// TestDuplicateArrivalPanics exercises the protocol guard: a node receiving
// the same tile version twice indicates a runtime bug and must panic loudly
// rather than silently corrupt dependency counts.
func TestDuplicateArrivalPanics(t *testing.T) {
	g := dag.NewLU(4)
	d := dist.NewTwoDBC(2, 2)
	cl := cluster.New(4)
	defer cl.Close()
	gen := GenDiagDominant(4, 3, 1)
	e := newEngine(1, cl.Comm(1), g, d, 3, gen, LUKernel, 1)

	msg := cluster.Message{From: 0, To: 1, Tag: cluster.Tag{I: 0, J: 0}, Payload: tile.New(3, 3)}
	e.onArrival(msg, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate arrival did not panic")
		}
	}()
	e.onArrival(msg, nil)
}

// TestEngineOwnedDiscovery checks that engines partition the task set
// exactly: every task owned by exactly one engine, and owned tiles
// materialized.
func TestEngineOwnedDiscovery(t *testing.T) {
	g := dag.NewCholesky(6)
	d := dist.NewSBCPair(4)
	cl := cluster.New(d.Nodes())
	defer cl.Close()
	gen := GenSPD(6, 4, 2)
	total := 0
	for rank := 0; rank < d.Nodes(); rank++ {
		e := newEngine(rank, cl.Comm(rank), g, d, 4, gen, CholeskyKernel, 1)
		total += len(e.owned)
		for _, task := range e.owned {
			oi, oj := g.OutputTile(task)
			if d.Owner(oi, oj) != rank {
				t.Fatalf("engine %d owns task %v with owner %d", rank, task, d.Owner(oi, oj))
			}
			tag := cluster.Tag{I: int32(oi), J: int32(oj)}
			if e.tiles[tag] == nil {
				t.Fatalf("engine %d did not materialize tile %v", rank, tag)
			}
		}
		// Remaining counts must equal NumDependencies.
		for idx, task := range e.owned {
			if int(e.remaining[idx]) != g.NumDependencies(task) {
				t.Fatalf("engine %d task %v remaining %d != deps %d",
					rank, task, e.remaining[idx], g.NumDependencies(task))
			}
		}
	}
	if total != g.NumTasks() {
		t.Fatalf("engines own %d tasks, graph has %d", total, g.NumTasks())
	}
}

// TestEmptyEngineRuns: a node owning nothing must terminate immediately.
func TestEmptyEngineRuns(t *testing.T) {
	g := dag.NewLU(2)
	// Distribution mapping everything to node 0 of 3.
	d := dist.NewTwoDBC(1, 1)
	cl := cluster.New(3)
	defer cl.Close()
	gen := GenDiagDominant(2, 3, 1)
	e := newEngine(2, cl.Comm(2), g, d, 3, gen, LUKernel, 1)
	if err := e.run(); err != nil {
		t.Fatal(err)
	}
	if len(e.owned) != 0 {
		t.Fatal("node 2 owns tasks under a single-node distribution")
	}
}

package runtime

import (
	"fmt"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/tile"
)

// solveDist extends a matrix distribution to the virtual RHS tile columns of
// the factor-and-solve graphs: RHS tile i (columns mt and mt+1) is owned by
// the owner of diagonal tile (i, i), so the triangular solves reuse the
// factorization's data placement.
type solveDist struct {
	dist.Distribution
	mt int
}

func (s solveDist) Owner(i, j int) int {
	if j >= s.mt {
		return s.Distribution.Owner(i, i)
	}
	return s.Distribution.Owner(i, j)
}

// LUSolveKernel applies one task of the LU factor-and-solve graph.
func LUSolveKernel(t dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
	switch t.Kind {
	case dag.FTRSM:
		tile.Trsm(tile.Left, tile.Lower, tile.NoTrans, tile.Unit, 1, inputs[0], out)
	case dag.FGEMM, dag.BGEMM:
		tile.Gemm(tile.NoTrans, tile.NoTrans, -1, inputs[0], inputs[1], 1, out)
	case dag.BCOPY:
		out.CopyFrom(inputs[0])
	case dag.BTRSM:
		tile.Trsm(tile.Left, tile.Upper, tile.NoTrans, tile.NonUnit, 1, inputs[0], out)
	default:
		return LUKernel(t, out, inputs)
	}
	return nil
}

// CholeskySolveKernel applies one task of the Cholesky factor-and-solve
// graph.
func CholeskySolveKernel(t dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
	switch t.Kind {
	case dag.FTRSM:
		tile.Trsm(tile.Left, tile.Lower, tile.NoTrans, tile.NonUnit, 1, inputs[0], out)
	case dag.FGEMM:
		tile.Gemm(tile.NoTrans, tile.NoTrans, -1, inputs[0], inputs[1], 1, out)
	case dag.BCOPY:
		out.CopyFrom(inputs[0])
	case dag.BGEMM:
		// inputs[0] is the transposed panel tile (j, i).
		tile.Gemm(tile.TransT, tile.NoTrans, -1, inputs[0], inputs[1], 1, out)
	case dag.BTRSM:
		tile.Trsm(tile.Left, tile.Lower, tile.TransT, tile.NonUnit, 1, inputs[0], out)
	default:
		return CholeskyKernel(t, out, inputs)
	}
	return nil
}

// solveGen wraps a matrix tile generator with RHS tile generation: column mt
// holds B (which the forward phase overwrites with Y) and column mt+1 the
// backward workspace that becomes X.
func solveGen(mt, b, nrhs int, genA func(i, j int) *tile.Tile, genB func(i int) *tile.Tile) func(i, j int) *tile.Tile {
	return func(i, j int) *tile.Tile {
		switch {
		case j < mt:
			return genA(i, j)
		case j == mt:
			return genB(i)
		default:
			return tile.New(b, nrhs) // X workspace, seeded by BCOPY
		}
	}
}

// GenRHS adapts a (global row, rhs column) element generator to an RHS tile
// generator.
func GenRHS(b, nrhs int, at func(gi, k int) float64) func(i int) *tile.Tile {
	return func(ti int) *tile.Tile {
		t := tile.New(b, nrhs)
		for i := 0; i < b; i++ {
			for k := 0; k < nrhs; k++ {
				t.Set(i, k, at(ti*b+i, k))
			}
		}
		return t
	}
}

// SolveLU distributedly factorizes the matrix defined by genA and solves
// A·X = B for the right-hand side defined by genB, all under one
// owner-computes schedule on a fresh virtual cluster. It returns X and the
// execution report.
func SolveLU(mt, b, nrhs int, d dist.Distribution, genA func(i, j int) *tile.Tile,
	genB func(i int) *tile.Tile, opt Options) (matrix.RHS, *Report, error) {

	g := dag.NewLUSolve(mt, nrhs)
	return runSolve(g, mt, b, nrhs, d, genA, genB, LUSolveKernel, opt)
}

// SolveCholesky distributedly factorizes the SPD matrix defined by genA and
// solves A·X = B.
func SolveCholesky(mt, b, nrhs int, d dist.Distribution, genA func(i, j int) *tile.Tile,
	genB func(i int) *tile.Tile, opt Options) (matrix.RHS, *Report, error) {

	g := dag.NewCholeskySolve(mt, nrhs)
	return runSolve(g, mt, b, nrhs, d, genA, genB, CholeskySolveKernel, opt)
}

func runSolve(g dag.Graph, mt, b, nrhs int, d dist.Distribution,
	genA func(i, j int) *tile.Tile, genB func(i int) *tile.Tile,
	kern Kernel, opt Options) (matrix.RHS, *Report, error) {

	x := matrix.NewRHS(mt, b, nrhs)
	sd := solveDist{Distribution: d, mt: mt}
	rep, err := Run(g, sd, b, solveGen(mt, b, nrhs, genA, genB), kern, opt,
		func(i, j int, t *tile.Tile) {
			if j == mt+1 {
				x[i].CopyFrom(t)
			}
		})
	if err != nil {
		return nil, nil, err
	}
	return x, rep, nil
}

var _ dist.Distribution = solveDist{}

// String keeps solveDist transparent in logs.
func (s solveDist) Name() string {
	return fmt.Sprintf("%s+rhs", s.Distribution.Name())
}

package runtime_test

import (
	"fmt"

	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/runtime"
	"anybc/internal/tile"
)

// ExampleFactorLU runs a real distributed LU factorization on a 10-node
// virtual cluster and verifies the result numerically.
func ExampleFactorLU() {
	const mt, b = 12, 8
	d := dist.NewG2DBC(10)
	orig := matrix.NewDiagDominant(mt, b, 1)
	fact, rep, err := runtime.FactorLU(mt, b, d, runtime.GenDiagDominant(mt, b, 1), runtime.Options{Workers: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("residual small: %v\n", matrix.ResidualLU(orig, fact) < 1e-12)
	fmt.Printf("messages: %d\n", rep.Stats.TotalMessages())
	// Output:
	// residual small: true
	// messages: 338
}

// ExampleSolveLU solves A·X = B end to end on the virtual cluster: the
// factorization and both triangular substitutions run as one distributed
// schedule.
func ExampleSolveLU() {
	const mt, b, nrhs = 8, 6, 2
	a := matrix.NewDiagDominant(mt, b, 2)
	xTrue := matrix.NewRHS(mt, b, nrhs)
	xTrue.FillFunc(func(gi, k int) float64 { return matrix.ElementAt(3, gi, k) })
	rhs := a.MulRHS(xTrue)

	x, _, err := runtime.SolveLU(mt, b, nrhs, dist.NewG2DBC(5),
		runtime.GenDiagDominant(mt, b, 2),
		func(i int) *tile.Tile { return rhs[i].Clone() },
		runtime.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("solution recovered: %v\n", x.MaxAbsDiff(xTrue) < 1e-10)
	// Output:
	// solution recovered: true
}

package runtime

import (
	"math"
	"sort"
	"testing"

	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/sched"
	"anybc/internal/simulate"
	"anybc/internal/trace"
)

// dispatchOrder extracts the per-node kernel dispatch order of a recorded
// run: task events sorted stably by start time, grouped by node.
func dispatchOrder(rec *trace.Recorder, p int) [][]dag.Task {
	evs := append([]trace.TaskEvent(nil), rec.Tasks...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
	out := make([][]dag.Task, p)
	for _, e := range evs {
		out[e.Node] = append(out[e.Node], e.Task)
	}
	return out
}

// TestRealDispatchMatchesSimulatorOrder is the sim-vs-real fidelity
// cross-check: with one worker per node and a single-node distribution —
// where scheduling is the only degree of freedom, with no communication
// nondeterminism — the real runtime must dispatch tasks in exactly the order
// the simulator's priority policy predicts for the same graph and
// distribution. Both substrates share sched.Heap and sched.Key, both seed
// the queue in task-id order and release successors in graph visit order, so
// any divergence is a scheduling regression on one side.
func TestRealDispatchMatchesSimulatorOrder(t *testing.T) {
	const mt, b = 6, 4
	d := dist.NewTwoDBC(1, 1)
	m := simulate.Machine{Workers: 1, FlopsPerWorker: 1e9, LinkBandwidth: 1e9, Latency: 1e-6}

	cases := []struct {
		name string
		g    dag.Graph
		run  func(rec *trace.Recorder) error
	}{
		{"LU", dag.NewLU(mt), func(rec *trace.Recorder) error {
			_, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 1), Options{Workers: 1, Recorder: rec})
			return err
		}},
		{"Cholesky", dag.NewCholesky(mt), func(rec *trace.Recorder) error {
			_, _, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 1), Options{Workers: 1, Recorder: rec})
			return err
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			simRec := &trace.Recorder{}
			if _, err := simulate.Run(c.g, b, d, m, simulate.Options{Recorder: simRec}); err != nil {
				t.Fatal(err)
			}
			realRec := &trace.Recorder{}
			if err := c.run(realRec); err != nil {
				t.Fatal(err)
			}
			simOrd := dispatchOrder(simRec, 1)[0]
			realOrd := dispatchOrder(realRec, 1)[0]
			if len(simOrd) != len(realOrd) || len(simOrd) != c.g.NumTasks() {
				t.Fatalf("dispatch counts differ: sim %d, real %d, graph %d",
					len(simOrd), len(realOrd), c.g.NumTasks())
			}
			for i := range simOrd {
				if simOrd[i] != realOrd[i] {
					t.Fatalf("dispatch %d diverges: simulator ran %v, runtime ran %v",
						i, simOrd[i], realOrd[i])
				}
			}
		})
	}
}

// TestEngineReadyQueueIsNotLIFO guards the bug this heap replaced: with the
// old LIFO slice, a freshly pushed trailing update preempted an
// already-ready panel solve. The shared heap must dispatch the critical-path
// task first regardless of push order.
func TestEngineReadyQueueIsNotLIFO(t *testing.T) {
	g := dag.NewLU(4)
	d := dist.NewTwoDBC(1, 1)
	cl := cluster.New(1)
	defer cl.Close()
	e := testEngine(t, 0, cl, g, d, 3, GenDiagDominant(4, 3, 1), LUKernel)

	trsm := e.localIdx[g.ID(dag.Task{Kind: dag.TRSMRow, L: 0, I: 1})]
	gemm := e.localIdx[g.ID(dag.Task{Kind: dag.GEMMLU, L: 0, I: 1, J: 1})]
	getrf1 := e.localIdx[g.ID(dag.Task{Kind: dag.GETRF, L: 1})]

	// Push in an order LIFO would invert: the last push is the lowest
	// priority, the first push the highest.
	e.pushReady(trsm)
	e.pushReady(getrf1)
	e.pushReady(gemm)
	want := []int{trsm, gemm, getrf1}
	for i, w := range want {
		if got := int(e.ready.Pop()); got != w {
			t.Fatalf("pop %d = task %v, want %v", i, e.owned[got], e.owned[w])
		}
	}
	// The engine's precomputed keys must be the shared policy's keys — the
	// same numbers the simulator orders by.
	for idx, task := range e.owned {
		if e.keys[idx] != sched.Key(task) {
			t.Fatalf("engine key for %v = %d, sched.Key = %d", task, e.keys[idx], sched.Key(task))
		}
	}
}

// TestSchedulerObservability checks the new Report.Sched counters on a real
// multi-node run: dispatch counts account for every executed task, the
// ready-queue peak is sane, nodes that start without runnable work accumulate
// stall time, and the recorder's stall intervals agree with the report.
func TestSchedulerObservability(t *testing.T) {
	const mt, b = 8, 4
	d := dist.NewTwoDBC(2, 2)
	rec := &trace.Recorder{}
	_, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 3), Options{Workers: 2, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sched) != d.Nodes() {
		t.Fatalf("Sched has %d entries for %d nodes", len(rep.Sched), d.Nodes())
	}
	totalStall := 0.0
	for node, s := range rep.Sched {
		dispatched := 0
		for _, n := range s.DispatchedByKind {
			dispatched += n
		}
		if dispatched != rep.TasksPerNode[node] {
			t.Errorf("node %d dispatched %d kernels by kind, executed %d", node, dispatched, rep.TasksPerNode[node])
		}
		if rep.TasksPerNode[node] > 0 && s.ReadyPeak < 1 {
			t.Errorf("node %d ran tasks with ReadyPeak %d", node, s.ReadyPeak)
		}
		if s.ReadyPeak > rep.TasksPerNode[node] {
			t.Errorf("node %d ReadyPeak %d exceeds its %d tasks", node, s.ReadyPeak, rep.TasksPerNode[node])
		}
		if s.DuplicateDrops != 0 {
			t.Errorf("node %d reports %d duplicate drops on a clean run", node, s.DuplicateDrops)
		}
		if s.StallSeconds < 0 {
			t.Errorf("node %d negative stall %v", node, s.StallSeconds)
		}
		totalStall += s.StallSeconds
	}
	// Only node 0 owns tile (0,0) under 2DBC(2x2): every other node starts
	// with a free worker and an empty ready queue, so some stall is certain.
	if totalStall <= 0 {
		t.Error("multi-node run recorded zero total stall time")
	}
	recStall := 0.0
	for _, s := range rec.StallPerNode(d.Nodes()) {
		recStall += s
	}
	if math.Abs(recStall-totalStall) > 1e-6 {
		t.Errorf("recorder stall %v differs from report stall %v", recStall, totalStall)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
}

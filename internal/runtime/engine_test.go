package runtime

import (
	"math/rand"
	"testing"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/gcrm"
	"anybc/internal/matrix"
	"anybc/internal/tile"
)

// luDistributions returns a varied set of distributions for LU tests.
func luDistributions() []dist.Distribution {
	return []dist.Distribution{
		dist.NewTwoDBC(1, 1),
		dist.NewTwoDBC(2, 3),
		dist.NewTwoDBC(5, 1),
		dist.NewG2DBC(5),
		dist.NewG2DBC(10),
		dist.NewG2DBC(7),
	}
}

func cholDistributions(t *testing.T) []dist.Distribution {
	t.Helper()
	res, err := gcrm.Search(5, gcrm.SearchOptions{Seeds: 5, SizeFactor: 3, BaseSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return []dist.Distribution{
		dist.NewTwoDBC(2, 2),
		dist.NewSBCPair(4), // P = 6
		dist.NewSBCEven(4), // P = 8
		dist.NewG2DBC(6),
		dist.NewDiagResolver("GCR&M(P=5)", res.Pattern),
		dist.NewSTS(9), // P = 12
	}
}

func TestDistributedLUMatchesSequential(t *testing.T) {
	const mt, b = 8, 6
	want := matrix.NewDiagDominant(mt, b, 5)
	if err := matrix.FactorLU(want); err != nil {
		t.Fatal(err)
	}
	for _, d := range luDistributions() {
		for _, workers := range []int{1, 4} {
			got, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 5), Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", d.Name(), workers, err)
			}
			for i := 0; i < mt; i++ {
				for j := 0; j < mt; j++ {
					if !got.Tile(i, j).EqualApprox(want.Tile(i, j), 0) {
						t.Fatalf("%s workers=%d: tile (%d,%d) differs from sequential",
							d.Name(), workers, i, j)
					}
				}
			}
			total := 0
			for _, n := range rep.TasksPerNode {
				total += n
			}
			if total != dag.NewLU(mt).NumTasks() {
				t.Fatalf("%s: executed %d tasks, want %d", d.Name(), total, dag.NewLU(mt).NumTasks())
			}
		}
	}
}

func TestDistributedCholeskyMatchesSequential(t *testing.T) {
	const mt, b = 8, 6
	want := matrix.NewSPD(mt, b, 9)
	if err := matrix.FactorCholesky(want); err != nil {
		t.Fatal(err)
	}
	for _, d := range cholDistributions(t) {
		for _, workers := range []int{1, 3} {
			got, _, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 9), Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", d.Name(), workers, err)
			}
			for i := 0; i < mt; i++ {
				for j := 0; j <= i; j++ {
					if !got.Tile(i, j).EqualApprox(want.Tile(i, j), 0) {
						t.Fatalf("%s workers=%d: tile (%d,%d) differs from sequential",
							d.Name(), workers, i, j)
					}
				}
			}
		}
	}
}

// TestMemoryAccounting: owned tiles sum to the matrix tile count, and
// received tiles per node equal the messages it received.
func TestMemoryAccounting(t *testing.T) {
	const mt, b = 10, 4
	d := dist.NewTwoDBC(2, 3)
	_, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	totalOwned := 0
	for _, n := range rep.OwnedTilesPerNode {
		totalOwned += n
	}
	if totalOwned != mt*mt {
		t.Errorf("owned tiles sum %d, want %d", totalOwned, mt*mt)
	}
	for rank, recvd := range rep.ReceivedTilesPerNode {
		var msgs int64
		for src := 0; src < rep.Stats.P; src++ {
			msgs += rep.Stats.Messages[src][rank]
		}
		if int64(recvd) != msgs {
			t.Errorf("node %d holds %d received tiles but got %d messages", rank, recvd, msgs)
		}
	}
}

// TestLeftLookingMatchesRightLooking runs both Cholesky variants
// distributedly: same distribution, same matrix — bitwise identical factors
// and identical communication volume.
func TestLeftLookingMatchesRightLooking(t *testing.T) {
	const mt, b = 9, 5
	d := dist.NewSBCPair(4)
	right, repR, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 77), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	left, repL, err := FactorCholeskyLeft(mt, b, d, GenSPD(mt, b, 77), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < mt; i++ {
		for j := 0; j <= i; j++ {
			if !left.Tile(i, j).EqualApprox(right.Tile(i, j), 0) {
				t.Fatalf("tile (%d,%d) differs between variants", i, j)
			}
		}
	}
	if repL.Stats.TotalMessages() != repR.Stats.TotalMessages() {
		t.Errorf("left variant sent %d messages, right %d",
			repL.Stats.TotalMessages(), repR.Stats.TotalMessages())
	}
}

func TestDistributedResiduals(t *testing.T) {
	const mt, b = 6, 8
	origLU := matrix.NewDiagDominant(mt, b, 21)
	factLU, _, err := FactorLU(mt, b, dist.NewG2DBC(5), GenDiagDominant(mt, b, 21), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res := matrix.ResidualLU(origLU, factLU); res > 1e-11 {
		t.Errorf("LU residual %g", res)
	}
	origCh := matrix.NewSPD(mt, b, 22)
	factCh, _, err := FactorCholesky(mt, b, dist.NewSBCPair(4), GenSPD(mt, b, 22), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res := matrix.ResidualCholesky(origCh, factCh); res > 1e-11 {
		t.Errorf("Cholesky residual %g", res)
	}
}

// TestCommVolumeMatchesStructuralCount verifies that the engine sends exactly
// the messages the owner-computes analysis predicts: the measured message
// count equals dag.CommVolumeTiles for every distribution.
func TestCommVolumeMatchesStructuralCount(t *testing.T) {
	const mt, b = 10, 4
	gLU := dag.NewLU(mt)
	for _, d := range luDistributions() {
		_, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := dag.CommVolumeTiles(gLU, d.Owner)
		if got := rep.Stats.TotalMessages(); got != want {
			t.Errorf("LU %s: %d messages, structural count %d", d.Name(), got, want)
		}
	}
	gCh := dag.NewCholesky(mt)
	for _, d := range cholDistributions(t) {
		_, rep, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := dag.CommVolumeTiles(gCh, d.Owner)
		if got := rep.Stats.TotalMessages(); got != want {
			t.Errorf("Cholesky %s: %d messages, structural count %d", d.Name(), got, want)
		}
	}
}

// TestCommVolumeMatchesPaperFormula compares measured communication volumes
// against Equations (1) and (2). The formulas ignore the shrinking of the
// trailing matrix over the last pattern-width iterations, so they
// overestimate slightly; the measured volume must lie within [70%, 100%] of
// the prediction for mt well above the pattern size.
func TestCommVolumeMatchesPaperFormula(t *testing.T) {
	const mt, b = 30, 2
	// LU with 2DBC 2x3 (P=6) and G-2DBC(5).
	for _, d := range []dist.Distribution{dist.NewTwoDBC(2, 3), dist.NewG2DBC(5)} {
		pd := d.(dist.PatternDistribution)
		_, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 3), Options{})
		if err != nil {
			t.Fatal(err)
		}
		pred := pd.Pattern().CommVolumeLU(mt)
		got := float64(rep.Stats.TotalMessages())
		if got > pred+1e-9 || got < 0.70*pred {
			t.Errorf("LU %s: measured %v, Eq.(1) predicts %v", d.Name(), got, pred)
		}
	}
	// Cholesky with SBC (P=6): Eq. (2).
	d := dist.NewSBCPair(4)
	_, rep, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pred := d.Pattern().CommVolumeCholesky(mt)
	got := float64(rep.Stats.TotalMessages())
	if got > pred+1e-9 || got < 0.70*pred {
		t.Errorf("Cholesky %s: measured %v, Eq.(2) predicts %v", d.Name(), got, pred)
	}
}

// TestLoadBalance: with a balanced pattern and mt a multiple of the pattern
// dims, per-node flops must be within a reasonable factor of the mean.
func TestLoadBalance(t *testing.T) {
	const mt, b = 24, 2
	d := dist.NewG2DBC(6) // 2x3 pattern (c=0 degenerate case)
	_, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, f := range rep.FlopsPerNode {
		mean += f
	}
	mean /= float64(len(rep.FlopsPerNode))
	for n, f := range rep.FlopsPerNode {
		if f < 0.8*mean || f > 1.2*mean {
			t.Errorf("node %d flops %v too far from mean %v", n, f, mean)
		}
	}
}

func TestKernelErrorPropagates(t *testing.T) {
	// An indefinite matrix makes POTRF fail on some node; the error must
	// surface from FactorCholesky. Use an identity-minus-large matrix.
	gen := GenDense(4, func(gi, gj int) float64 {
		if gi == gj {
			return -1
		}
		return 0
	})
	_, _, err := FactorCholesky(3, 4, dist.NewTwoDBC(2, 2), gen, Options{})
	if err == nil {
		t.Fatal("expected POTRF failure to propagate")
	}
}

func TestSingleTileMatrix(t *testing.T) {
	got, rep, err := FactorLU(1, 5, dist.NewTwoDBC(2, 2), GenDiagDominant(1, 5, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.NewDiagDominant(1, 5, 8)
	if err := matrix.FactorLU(want); err != nil {
		t.Fatal(err)
	}
	if !got.Tile(0, 0).EqualApprox(want.Tile(0, 0), 0) {
		t.Fatal("single-tile result differs")
	}
	if rep.Stats.TotalMessages() != 0 {
		t.Fatal("single-tile factorization communicated")
	}
}

// TestManyRandomCholeskyAndSolveConfigs fuzzes the symmetric kernel and the
// fused factor-and-solve graphs across (mt, b, P, workers) combinations.
func TestManyRandomCholeskyAndSolveConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		mt := 2 + rng.Intn(6)
		b := 2 + rng.Intn(5)
		workers := 1 + rng.Intn(3)
		seed := rng.Int63()

		// Cholesky under a random symmetric-capable distribution.
		var d dist.Distribution
		switch trial % 3 {
		case 0:
			d = dist.NewSBCPair(3 + rng.Intn(4))
		case 1:
			d = dist.NewG2DBC(1 + rng.Intn(10))
		default:
			d = dist.NewSTS(9)
		}
		orig := matrix.NewSPD(mt, b, seed)
		fact, _, err := FactorCholesky(mt, b, d, GenSPD(mt, b, seed), Options{Workers: workers})
		if err != nil {
			t.Fatalf("trial %d %s: %v", trial, d.Name(), err)
		}
		if res := matrix.ResidualCholesky(orig, fact); res > 1e-10 {
			t.Fatalf("trial %d %s: residual %g", trial, d.Name(), res)
		}

		// Fused solve on the same configuration (LU path).
		nrhs := 1 + rng.Intn(3)
		a := matrix.NewDiagDominant(mt, b, seed)
		xTrue := matrix.NewRHS(mt, b, nrhs)
		xTrue.FillFunc(func(gi, k int) float64 { return matrix.ElementAt(seed+1, gi, k) })
		rhs := a.MulRHS(xTrue)
		x, _, err := SolveLU(mt, b, nrhs, dist.NewG2DBC(1+rng.Intn(8)),
			GenDiagDominant(mt, b, seed),
			func(i int) *tile.Tile { return rhs[i].Clone() },
			Options{Workers: workers})
		if err != nil {
			t.Fatalf("trial %d solve: %v", trial, err)
		}
		if diff := x.MaxAbsDiff(xTrue); diff > 1e-9 {
			t.Fatalf("trial %d solve error %g", trial, diff)
		}
	}
}

// TestManyRandomConfigs fuzzes (mt, b, distribution, workers) combinations.
func TestManyRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		mt := 2 + rng.Intn(7)
		b := 2 + rng.Intn(6)
		P := 1 + rng.Intn(12)
		d := dist.NewG2DBC(P)
		workers := 1 + rng.Intn(4)
		seed := rng.Int63()
		orig := matrix.NewDiagDominant(mt, b, seed)
		fact, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, seed), Options{Workers: workers})
		if err != nil {
			t.Fatalf("trial %d (mt=%d b=%d P=%d w=%d): %v", trial, mt, b, P, workers, err)
		}
		if res := matrix.ResidualLU(orig, fact); res > 1e-10 {
			t.Fatalf("trial %d: residual %g", trial, res)
		}
	}
}

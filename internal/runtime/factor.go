package runtime

import (
	"fmt"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/tile"
)

// LUKernel applies one LU task with the real numeric kernels.
func LUKernel(t dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
	switch t.Kind {
	case dag.GETRF:
		return tile.Getrf(out)
	case dag.TRSMCol:
		tile.Trsm(tile.Right, tile.Upper, tile.NoTrans, tile.NonUnit, 1, inputs[0], out)
	case dag.TRSMRow:
		tile.Trsm(tile.Left, tile.Lower, tile.NoTrans, tile.Unit, 1, inputs[0], out)
	case dag.GEMMLU, dag.GEMMPart:
		tile.Gemm(tile.NoTrans, tile.NoTrans, -1, inputs[0], inputs[1], 1, out)
	case dag.ReduceAdd:
		// Combine one reduction-group member: the child layer's accumulator
		// (holding a negated partial sum) folds into this buffer by addition.
		out.AddFrom(inputs[0])
	default:
		return fmt.Errorf("runtime: %v is not an LU task", t)
	}
	return nil
}

// CholeskyKernel applies one Cholesky task with the real numeric kernels.
func CholeskyKernel(t dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
	switch t.Kind {
	case dag.POTRF:
		return tile.Potrf(out)
	case dag.TRSMChol:
		tile.Trsm(tile.Right, tile.Lower, tile.TransT, tile.NonUnit, 1, inputs[0], out)
	case dag.SYRK:
		tile.Syrk(tile.Lower, tile.NoTrans, -1, inputs[0], 1, out)
	case dag.GEMMChol:
		tile.Gemm(tile.NoTrans, tile.TransT, -1, inputs[0], inputs[1], 1, out)
	default:
		return fmt.Errorf("runtime: %v is not a Cholesky task", t)
	}
	return nil
}

// GenDense adapts a global element generator to a tile generator.
func GenDense(b int, at func(gi, gj int) float64) func(i, j int) *tile.Tile {
	return func(ti, tj int) *tile.Tile {
		t := tile.New(b, b)
		for i := 0; i < b; i++ {
			for j := 0; j < b; j++ {
				t.Set(i, j, at(ti*b+i, tj*b+j))
			}
		}
		return t
	}
}

// GenDiagDominant returns a tile generator for the diagonally dominant LU
// test matrix of matrix.NewDiagDominant.
func GenDiagDominant(mt, b int, seed int64) func(i, j int) *tile.Tile {
	m := mt * b
	return GenDense(b, func(gi, gj int) float64 { return matrix.DiagDominantAt(seed, m, gi, gj) })
}

// GenSPD returns a tile generator for the SPD Cholesky test matrix of
// matrix.NewSPD (lower-triangle tiles; diagonal tiles are mirrored).
func GenSPD(mt, b int, seed int64) func(i, j int) *tile.Tile {
	m := mt * b
	return GenDense(b, func(gi, gj int) float64 { return matrix.SPDAt(seed, m, gi, gj) })
}

// FactorLU runs the distributed tiled unpivoted LU factorization of the
// matrix defined by gen on a fresh virtual cluster with distribution d.
// It returns the factored matrix (gathered from all nodes) and the execution
// report.
func FactorLU(mt, b int, d dist.Distribution, gen func(i, j int) *tile.Tile, opt Options) (*matrix.Dense, *Report, error) {
	g := dag.NewLU(mt)
	out := matrix.NewDense(mt, mt, b)
	rep, err := Run(g, d, b, gen, LUKernel, opt, func(i, j int, t *tile.Tile) {
		out.SetTile(i, j, t.Clone())
	})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// FactorLUReplicated runs the replicated (2.5D-style) distributed LU
// factorization: c layers of the base distribution's grid split the trailing
// updates round-robin by iteration, layer accumulators are combined by
// binomial reduction before each tile's panel kernel, and only the canonical
// tiles are gathered into the result. With c = 1 the schedule — and hence the
// factored matrix, bit for bit — is that of FactorLU on base.
func FactorLUReplicated(mt, b, c int, base dist.Distribution, gen func(i, j int) *tile.Tile, opt Options) (*matrix.Dense, *Report, error) {
	g := dag.NewReplicatedLU(mt, c)
	d := dist.NewReplicated(base, c, mt)
	repGen := func(i, j int) *tile.Tile {
		if j >= mt {
			return tile.New(b, b) // layer accumulator: starts at zero
		}
		return gen(i, j)
	}
	out := matrix.NewDense(mt, mt, b)
	rep, err := Run(g, d, b, repGen, LUKernel, opt, func(i, j int, t *tile.Tile) {
		if j < mt { // accumulators are scratch, not part of the factors
			out.SetTile(i, j, t.Clone())
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// FactorCholesky runs the distributed tiled Cholesky factorization of the
// lower-stored SPD matrix defined by gen.
func FactorCholesky(mt, b int, d dist.Distribution, gen func(i, j int) *tile.Tile, opt Options) (*matrix.SymmetricLower, *Report, error) {
	return factorCholeskyGraph(dag.NewCholesky(mt), mt, b, d, gen, opt)
}

// FactorCholeskyLeft runs the left-looking Cholesky variant distributedly;
// results are bitwise identical to FactorCholesky, only the schedule (and
// hence the communication timing) differs.
func FactorCholeskyLeft(mt, b int, d dist.Distribution, gen func(i, j int) *tile.Tile, opt Options) (*matrix.SymmetricLower, *Report, error) {
	return factorCholeskyGraph(dag.NewCholeskyLeft(mt), mt, b, d, gen, opt)
}

func factorCholeskyGraph(g dag.Graph, mt, b int, d dist.Distribution, gen func(i, j int) *tile.Tile, opt Options) (*matrix.SymmetricLower, *Report, error) {
	out := matrix.NewSymmetricLower(mt, b)
	rep, err := Run(g, d, b, gen, CholeskyKernel, opt, func(i, j int, t *tile.Tile) {
		out.Tile(i, j).CopyFrom(t)
	})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

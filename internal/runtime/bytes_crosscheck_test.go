package runtime

import (
	"testing"

	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/simulate"
)

// graphAndDist pairs the graph and distribution the runtime factories build,
// so the simulator runs the identical configuration. c = 0 is the plain
// unreplicated LU.
func graphAndDist(mt, c int, base dist.Distribution) (dag.Graph, dist.Distribution) {
	if c == 0 {
		return dag.NewLU(mt), base
	}
	return dag.NewReplicatedLU(mt, c), dist.NewReplicated(base, c, mt)
}

// TestSimAndRealByteAccountingAgree pins the honesty of every communication
// counter: on the same pinned 16-node LU, the real cluster's transcripts and
// the simulator's accounting must agree *exactly* — logical messages and
// bytes, per-node wire traffic, and the reduction-partial subset — across
// the flat, tree-broadcast and replicated transports. One worker per node
// and no chaos, so both substrates run the identical schedule; the simulator
// message size is pinned to the runtime's 8·b² tile payload.
func TestSimAndRealByteAccountingAgree(t *testing.T) {
	const mt, b = 12, 4
	base := dist.NewG2DBC(16)
	m := simulate.Machine{Workers: 1, FlopsPerWorker: 1e9, LinkBandwidth: 1e9, Latency: 1e-6}

	cases := []struct {
		name      string
		c         int // replication factor; 0 = plain FactorLU
		broadcast cluster.BroadcastMode
	}{
		{"flat", 0, cluster.BroadcastFlat},
		{"tree", 0, cluster.BroadcastTree},
		{"replicated c=2 flat", 2, cluster.BroadcastFlat},
		{"replicated c=2 tree", 2, cluster.BroadcastTree},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rep *Report
			var err error
			g, d := graphAndDist(mt, tc.c, base)
			if tc.c == 0 {
				_, rep, err = FactorLU(mt, b, base, GenDiagDominant(mt, b, 3),
					Options{Workers: 1, Broadcast: tc.broadcast})
			} else {
				_, rep, err = FactorLUReplicated(mt, b, tc.c, base, GenDiagDominant(mt, b, 3),
					Options{Workers: 1, Broadcast: tc.broadcast})
			}
			if err != nil {
				t.Fatal(err)
			}
			res, err := simulate.Run(g, b, d, m, simulate.Options{
				TileBytes: 8 * b * b, Broadcast: tc.broadcast,
			})
			if err != nil {
				t.Fatal(err)
			}
			st := rep.Stats
			if got, want := st.TotalMessages(), res.Messages; got != want {
				t.Errorf("messages: real %d, sim %d", got, want)
			}
			if got, want := st.TotalBytes(), res.Bytes; got != want {
				t.Errorf("bytes: real %d, sim %d", got, want)
			}
			if got, want := st.TotalReduces(), res.Reduces; got != want {
				t.Errorf("reduces: real %d, sim %d", got, want)
			}
			if got, want := st.TotalReduceBytes(), res.ReduceBytes; got != want {
				t.Errorf("reduce bytes: real %d, sim %d", got, want)
			}
			if got, want := st.TotalHops(), res.Hops; got != want {
				t.Errorf("hops: real %d, sim %d", got, want)
			}
			sent, recv := st.WireSentByNode(), st.WireRecvByNode()
			for node := range sent {
				if sent[node] != res.SentBytes[node] {
					t.Errorf("node %d sent: real %d, sim %d", node, sent[node], res.SentBytes[node])
				}
				if recv[node] != res.RecvBytes[node] {
					t.Errorf("node %d recv: real %d, sim %d", node, recv[node], res.RecvBytes[node])
				}
			}
			if tc.c > 1 && res.Reduces == 0 {
				t.Error("replicated case shipped no reduction partials")
			}
		})
	}
}

package runtime

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"anybc/internal/chaos"
	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/trace"
)

// chaosOpts builds Options for a fresh plan of cfg, failing the test on an
// invalid config.
func chaosOpts(t *testing.T, cfg chaos.Config, timeout time.Duration, workers int) (Options, *chaos.Plan, *trace.Recorder) {
	t.Helper()
	plan, err := chaos.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	return Options{Workers: workers, Recorder: rec, Chaos: plan, ArrivalTimeout: timeout}, plan, rec
}

// dumpChaosArtifacts writes the run's trace CSVs and fault plan into
// $CHAOS_ARTIFACT_DIR when the test failed, so a CI failure ships everything
// needed to replay it (CI uploads the directory as an artifact).
func dumpChaosArtifacts(t *testing.T, name string, rec *trace.Recorder, plan *chaos.Plan) {
	t.Cleanup(func() {
		dir := os.Getenv("CHAOS_ARTIFACT_DIR")
		if !t.Failed() || dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		write := func(suffix string, fn func(io.Writer) error) {
			f, err := os.Create(filepath.Join(dir, name+suffix))
			if err != nil {
				t.Logf("artifact %s: %v", suffix, err)
				return
			}
			defer f.Close()
			if err := fn(f); err != nil {
				t.Logf("artifact %s: %v", suffix, err)
			}
		}
		if rec != nil {
			write("-gantt.csv", rec.GanttCSV)
			write("-messages.csv", rec.MessagesCSV)
			write("-faults.csv", rec.FaultsCSV)
		}
		if plan != nil {
			write("-plan.txt", func(w io.Writer) error {
				for _, ev := range plan.Events() {
					if _, err := fmt.Fprintln(w, ev); err != nil {
						return err
					}
				}
				return nil
			})
		}
	})
}

// identicalLU asserts exact (bitwise) tile equality of two factored matrices.
func identicalLU(t *testing.T, label string, want, got *matrix.Dense, mt int) {
	t.Helper()
	for i := 0; i < mt; i++ {
		for j := 0; j < mt; j++ {
			if !want.Tile(i, j).EqualApprox(got.Tile(i, j), 0) {
				t.Fatalf("%s: tile (%d,%d) differs from the fault-free factorization", label, i, j)
			}
		}
	}
}

func identicalCholesky(t *testing.T, label string, want, got *matrix.SymmetricLower, mt int) {
	t.Helper()
	for i := 0; i < mt; i++ {
		for j := 0; j <= i; j++ {
			if !want.Tile(i, j).EqualApprox(got.Tile(i, j), 0) {
				t.Fatalf("%s: tile (%d,%d) differs from the fault-free factorization", label, i, j)
			}
		}
	}
}

// TestChaosSeedDeterminism is the acceptance bar for the whole fault
// subsystem: the same chaos seed must produce the identical fault schedule,
// the identical structural trace, and byte-identical final factors across
// two consecutive runs. Drops are excluded here (their healing is
// wall-clock-driven re-requests, pinned by TestChaosDropHealsViaReRequest
// instead); delays, reorders and duplicates are all active, and the arrival
// timeout is generous enough that no timing-dependent re-request fires.
func TestChaosSeedDeterminism(t *testing.T) {
	const mt, b = 8, 4
	cfg := chaos.Config{
		Seed:       20260805,
		PDelay:     0.30,
		PReorder:   0.15,
		PDuplicate: 0.10,
		MaxDelay:   500 * time.Microsecond,
	}
	d := dist.NewG2DBC(5)

	run := func() (*matrix.Dense, *chaos.Plan, *trace.Recorder) {
		opt, plan, rec := chaosOpts(t, cfg, 5*time.Second, 2)
		fact, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 11), opt)
		if err != nil {
			t.Fatal(err)
		}
		return fact, plan, rec
	}
	factA, planA, recA := run()
	factB, planB, recB := run()
	dumpChaosArtifacts(t, "determinism", recA, planA)

	if fpA, fpB := planA.Fingerprint(), planB.Fingerprint(); fpA != fpB {
		t.Errorf("fault schedules differ across identically-seeded runs: %s vs %s", fpA, fpB)
	}
	if fpA, fpB := recA.Fingerprint(), recB.Fingerprint(); fpA != fpB {
		t.Errorf("structural traces differ across identically-seeded runs: %s vs %s", fpA, fpB)
	}
	identicalLU(t, "second run", factA, factB, mt)
	if len(planA.Events()) == 0 {
		t.Fatal("no faults injected; the determinism claim was not exercised")
	}
}

// chaosSeeds returns the three pinned regression seeds plus the rotating
// CI seed from $CHAOS_SEED (derived from the git SHA), if set.
func chaosSeeds(t *testing.T) []int64 {
	seeds := []int64{1, 424242, 9000001}
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		s, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", env, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// checkConservation asserts the message-conservation invariant tying the
// logical ledger (Messages: one owner→consumer delivery obligation each,
// plus counted redeliveries) to the wire ledger (Hops: physical link
// transmissions, of which Forwards are tree relays):
//
//   - Every hop serves at most one logical delivery, so TotalHops never
//     exceeds TotalMessages, with equality on a drop-free network (flat and
//     tree alike — the tree redistributes who transmits, not how much).
//   - Hops decompose into owner sends + forwards + redeliveries, so the
//     relayed and redelivered parts together never exceed the total.
//   - Under permanent drops the shortfall TotalMessages − TotalHops is
//     bounded by the arrivals the re-request protocol recovered: a lost
//     interior forward strands a subtree of s consumers whose s recoveries
//     replace the s−1 relay hops that never happened.
func checkConservation(t *testing.T, label string, rep *Report, plan *chaos.Plan) {
	t.Helper()
	s := rep.Stats
	hops, msgs := s.TotalHops(), s.TotalMessages()
	if hops > msgs {
		t.Errorf("%s: conservation violated: %d wire hops > %d logical messages", label, hops, msgs)
	}
	if s.TotalForwards()+s.TotalRedeliveries() > hops {
		t.Errorf("%s: forwards %d + redeliveries %d exceed total hops %d",
			label, s.TotalForwards(), s.TotalRedeliveries(), hops)
	}
	drops := 0
	if plan != nil {
		counts := plan.Counts()
		drops = counts["drop"] + counts["drop-redeliver"]
	}
	if drops == 0 && hops != msgs {
		t.Errorf("%s: drop-free run must conserve hops: %d hops != %d messages", label, hops, msgs)
	}
	recovered := 0
	for _, rs := range rep.Resilience {
		recovered += rs.Recovered
	}
	if shortfall := msgs - hops; shortfall > int64(recovered) {
		t.Errorf("%s: hop shortfall %d exceeds the %d recovered arrivals that could explain it",
			label, shortfall, recovered)
	}
	forwarded := 0
	for _, f := range rep.ForwardedPerNode {
		forwarded += f
	}
	if int64(forwarded) != s.TotalForwards() {
		t.Errorf("%s: engines forwarded %d hops but the wire counted %d",
			label, forwarded, s.TotalForwards())
	}
}

// broadcastModes enumerates the transports every chaos regression runs
// under: the paper's flat fan-out and the binomial tree (whose relay hops
// must heal through the same Request/Resend protocol).
var broadcastModes = []cluster.BroadcastMode{cluster.BroadcastFlat, cluster.BroadcastTree}

// TestChaosRegressionG2DBC23 runs both factorizations at the paper's
// flagship 23-node G-2DBC distribution under the full fault mix (including
// permanent drops, healed by re-requests) and asserts that chaos changes
// nothing observable: final tiles byte-identical to the fault-free run, the
// per-pair message counters still satisfy the Equations (1)/(2) accounting
// once counted redeliveries are subtracted, and the wire-hop ledger obeys
// the conservation invariant — in both broadcast modes.
func TestChaosRegressionG2DBC23(t *testing.T) {
	const mt, b = 12, 4
	d := dist.NewG2DBC(23)

	checkCounters := func(t *testing.T, label string, base, got *Report, pred float64) {
		t.Helper()
		p := len(base.Stats.Messages)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				eff := got.Stats.Messages[i][j] - got.Stats.Redeliveries[i][j]
				if eff != base.Stats.Messages[i][j] {
					t.Errorf("%s: pair %d->%d effective messages %d != fault-free %d",
						label, i, j, eff, base.Stats.Messages[i][j])
				}
			}
		}
		// The per-pair equality above is the Eq (1)/(2) check modulo counted
		// redeliveries; the closed-form prediction additionally upper-bounds
		// the effective volume (it is asymptotic in mt, so only the upper
		// side is tight at this matrix size).
		eff := float64(got.Stats.TotalMessages() - got.Stats.TotalRedeliveries())
		if eff > pred {
			t.Errorf("%s: effective volume %v above prediction %v", label, eff, pred)
		}
		if eff != float64(base.Stats.TotalMessages()) {
			t.Errorf("%s: effective volume %v != fault-free volume %d",
				label, eff, base.Stats.TotalMessages())
		}
	}

	t.Run("LU", func(t *testing.T) {
		base, baseRep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 31), Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		pred := d.Pattern().CommVolumeLU(mt)
		for _, mode := range broadcastModes {
			for _, seed := range chaosSeeds(t) {
				t.Run(fmt.Sprintf("%s/seed=%d", mode, seed), func(t *testing.T) {
					opt, plan, rec := chaosOpts(t, chaos.DefaultConfig(seed), 100*time.Millisecond, 2)
					opt.Broadcast = mode
					dumpChaosArtifacts(t, fmt.Sprintf("lu-%s-seed%d", mode, seed), rec, plan)
					fact, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 31), opt)
					if err != nil {
						t.Fatal(err)
					}
					identicalLU(t, "chaos run", base, fact, mt)
					checkCounters(t, "LU", baseRep, rep, pred)
					checkConservation(t, "LU", rep, plan)
				})
			}
		}
	})

	t.Run("Cholesky", func(t *testing.T) {
		base, baseRep, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 32), Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		pred := d.Pattern().CommVolumeCholesky(mt)
		for _, mode := range broadcastModes {
			for _, seed := range chaosSeeds(t) {
				t.Run(fmt.Sprintf("%s/seed=%d", mode, seed), func(t *testing.T) {
					opt, plan, rec := chaosOpts(t, chaos.DefaultConfig(seed), 100*time.Millisecond, 2)
					opt.Broadcast = mode
					dumpChaosArtifacts(t, fmt.Sprintf("cholesky-%s-seed%d", mode, seed), rec, plan)
					fact, rep, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 32), opt)
					if err != nil {
						t.Fatal(err)
					}
					identicalCholesky(t, "chaos run", base, fact, mt)
					checkCounters(t, "Cholesky", baseRep, rep, pred)
					checkConservation(t, "Cholesky", rep, plan)
				})
			}
		}
	})
}

// TestChaosDropHealsViaReRequest proves the acceptance criterion for the
// healing path: under permanent drops with NO transport redelivery, the only
// way the run can complete is the arrival-timeout re-request protocol — and
// it must complete, correctly, with the report counting what healed. The
// tree-mode variant is the sharper claim: a dropped interior forward
// strands a whole subtree, and every stranded consumer must still heal by
// re-requesting the version from its original owner (never from the relay).
func TestChaosDropHealsViaReRequest(t *testing.T) {
	const mt, b = 6, 4
	d := dist.NewTwoDBC(2, 2)
	base, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 21), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range broadcastModes {
		t.Run(mode.String(), func(t *testing.T) {
			opt, plan, rec := chaosOpts(t, chaos.Config{Seed: 77, PDrop: 0.25},
				30*time.Millisecond, 1)
			opt.Broadcast = mode
			dumpChaosArtifacts(t, "drop-heal-"+mode.String(), rec, plan)
			err = runWithDeadline(t, func() error {
				fact, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 21), opt)
				if err != nil {
					return err
				}
				identicalLU(t, "healed run", base, fact, mt)

				if plan.Counts()["drop"] == 0 {
					t.Error("seed 77 dropped nothing; the healing path was not exercised")
				}
				reReq, recovered, redelivered := 0, 0, 0
				for _, rs := range rep.Resilience {
					reReq += rs.ReRequests
					recovered += rs.Recovered
					redelivered += rs.Redelivered
				}
				if reReq == 0 || recovered == 0 || redelivered == 0 {
					t.Errorf("healing not accounted: re-requests=%d recovered=%d redelivered=%d",
						reReq, recovered, redelivered)
				}
				if rep.Stats.TotalRequests() == 0 || rep.Stats.TotalRedeliveries() == 0 {
					t.Errorf("cluster counters missed the healing: requests=%d redeliveries=%d",
						rep.Stats.TotalRequests(), rep.Stats.TotalRedeliveries())
				}
				checkConservation(t, "drop-heal", rep, plan)
				peaked := false
				for _, peak := range rep.MailboxPeakPerNode {
					peaked = peaked || peak > 0
				}
				if len(rep.MailboxPeakPerNode) != d.Nodes() || !peaked {
					t.Errorf("mailbox high-water marks missing: %v", rep.MailboxPeakPerNode)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("drop-heal run failed: %v", err)
			}
		})
	}
}

// TestChaosCrashSoak crashes node 1 before every one of its owned-task
// indices in turn — under drops and transport redeliveries at the same time
// — and accepts exactly two outcomes per crash point: a joined error that
// includes the injected crash, or (when the crash index exceeds the node's
// owned work) a verified fault-free-identical factorization. A hang is the
// one forbidden outcome, enforced by the watchdog.
func TestChaosCrashSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	const mt, b = 4, 4
	const victim = 1
	d := dist.NewTwoDBC(2, 2)
	g := dag.NewLU(mt)
	ownedByVictim := 0
	dag.ForEachTask(g, func(tk dag.Task) {
		i, j := g.OutputTile(tk)
		if d.Owner(i, j) == victim {
			ownedByVictim++
		}
	})
	if ownedByVictim == 0 {
		t.Fatal("victim owns no tasks; soak proves nothing")
	}
	base, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 41), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n <= ownedByVictim; n++ {
		t.Run(fmt.Sprintf("crashAt=%d", n), func(t *testing.T) {
			cfg := chaos.Config{
				Seed:           int64(1000 + n),
				PDrop:          0.10,
				PDropRedeliver: 0.15,
				RedeliverAfter: 5 * time.Millisecond,
				CrashAtTask:    map[int]int{victim: n},
			}
			opt, plan, rec := chaosOpts(t, cfg, 30*time.Millisecond, 1)
			dumpChaosArtifacts(t, fmt.Sprintf("crash-at-%d", n), rec, plan)
			err := runWithDeadline(t, func() error {
				fact, _, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 41), opt)
				if err != nil {
					return err
				}
				identicalLU(t, "surviving run", base, fact, mt)
				return nil
			})
			switch {
			case n < ownedByVictim && err == nil:
				t.Fatalf("crash at task %d of %d did not surface", n, ownedByVictim)
			case n < ownedByVictim && !errors.Is(err, chaos.ErrInjectedCrash):
				t.Fatalf("crash error lost the injected root cause: %v", err)
			case n == ownedByVictim && err != nil:
				// Crash index past the victim's last task: nothing fires and
				// the run must survive the remaining drop faults outright.
				t.Fatalf("run with unreachable crash index failed: %v", err)
			}
		})
	}
}

// TestChaosWorkStealingWorkers4 runs the chaos suite with 4 workers per
// node, so the intra-node stealing path is exercised under faults (drops,
// delays, reorders, duplicates) rather than shipping tested only at the 1–2
// workers the other chaos suites pin. Factors must stay bit-identical to the
// fault-free run and the effective message volume must match it exactly.
func TestChaosWorkStealingWorkers4(t *testing.T) {
	const mt, b = 10, 4
	const workers = 4
	d := dist.NewG2DBC(23)

	t.Run("LU", func(t *testing.T) {
		base, baseRep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 51), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range chaosSeeds(t) {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				opt, plan, rec := chaosOpts(t, chaos.DefaultConfig(seed), 100*time.Millisecond, workers)
				dumpChaosArtifacts(t, fmt.Sprintf("steal-lu-seed%d", seed), rec, plan)
				fact, rep, err := FactorLU(mt, b, d, GenDiagDominant(mt, b, 51), opt)
				if err != nil {
					t.Fatal(err)
				}
				identicalLU(t, "chaos workers=4", base, fact, mt)
				checkEffective(t, "LU", baseRep, rep)
			})
		}
	})

	t.Run("Cholesky", func(t *testing.T) {
		base, baseRep, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 52), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range chaosSeeds(t) {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				opt, plan, rec := chaosOpts(t, chaos.DefaultConfig(seed), 100*time.Millisecond, workers)
				dumpChaosArtifacts(t, fmt.Sprintf("steal-cholesky-seed%d", seed), rec, plan)
				fact, rep, err := FactorCholesky(mt, b, d, GenSPD(mt, b, 52), opt)
				if err != nil {
					t.Fatal(err)
				}
				identicalCholesky(t, "chaos workers=4", base, fact, mt)
				checkEffective(t, "Cholesky", baseRep, rep)
			})
		}
	})
}

// checkEffective asserts that the chaos run's effective per-pair message
// counts (deliveries minus counted redeliveries) match the fault-free run's.
func checkEffective(t *testing.T, label string, base, got *Report) {
	t.Helper()
	if base == nil || got == nil {
		return
	}
	p := len(base.Stats.Messages)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			eff := got.Stats.Messages[i][j] - got.Stats.Redeliveries[i][j]
			if eff != base.Stats.Messages[i][j] {
				t.Errorf("%s: pair %d->%d effective messages %d != fault-free %d",
					label, i, j, eff, base.Stats.Messages[i][j])
			}
		}
	}
}

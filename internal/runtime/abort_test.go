package runtime

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/tile"
)

var errBoom = errors.New("boom")

// runWithDeadline guards against the historical failure mode this file pins
// down: peers hanging forever on tiles a failed node will never produce.
func runWithDeadline(t *testing.T, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after a kernel error: peers are hung")
		return nil
	}
}

// TestKernelErrorAbortsRun: a kernel failure mid-factorization must abort the
// whole run promptly — the error surfaces from Run through the errors.Join
// chain, every node returns instead of blocking on tiles that will never be
// produced, and no task depending on the failed one is ever executed.
func TestKernelErrorAbortsRun(t *testing.T) {
	const mt, b = 10, 4
	d := dist.NewTwoDBC(2, 3)

	var mu sync.Mutex
	var executed []dag.Task
	kern := func(tk dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
		mu.Lock()
		executed = append(executed, tk)
		mu.Unlock()
		if tk.Kind == dag.GETRF && tk.L == 2 {
			return fmt.Errorf("injected: %w", errBoom)
		}
		return LUKernel(tk, out, inputs)
	}

	err := runWithDeadline(t, func() error {
		_, err := Run(dag.NewLU(mt), d, b, GenDiagDominant(mt, b, 7), kern,
			Options{Workers: 2}, nil)
		return err
	})
	if err == nil {
		t.Fatal("kernel error did not surface from Run")
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("error chain lost the kernel failure: %v", err)
	}
	if !strings.Contains(err.Error(), "GETRF(2)") {
		t.Fatalf("error does not identify the failed task: %v", err)
	}

	// Nothing downstream of GETRF(2) may have run: the iteration-2 TRSMs and
	// GEMMs depend on it directly, and every task of a later iteration
	// transitively. Unrelated leftovers of iterations 0-1 may legitimately
	// have been in flight when the abort hit.
	mu.Lock()
	defer mu.Unlock()
	for _, tk := range executed {
		if tk.L > 2 {
			t.Fatalf("task %v of iteration %d executed after the iteration-2 panel failed", tk, tk.L)
		}
		if tk.L == 2 && tk.Kind != dag.GETRF {
			t.Fatalf("task %v depends on the failed GETRF(2) but executed", tk)
		}
	}
}

// TestAbortReportsAllNodeErrors: when several nodes fail independently, Run
// must report every failing node's error, not just the lowest rank's. All
// GemmA/GemmB publication tasks are dependency-free, so every node dispatches
// (and fails) its own root tasks before any peer's abort can reach it.
func TestAbortReportsAllNodeErrors(t *testing.T) {
	const mt, nt, kt, b = 2, 2, 2, 3
	g := dag.NewGEMMOp(mt, nt, kt)
	gd := gemmDist{Distribution: dist.NewTwoDBC(2, 2), mt: mt, nt: nt}

	kern := func(tk dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
		if tk.Kind == dag.GemmA || tk.Kind == dag.GemmB {
			return fmt.Errorf("injected: %w", errBoom)
		}
		return GEMMKernel(tk, out, inputs)
	}
	gen := func(i, j int) *tile.Tile { return tile.New(b, b) }

	err := runWithDeadline(t, func() error {
		_, err := Run(g, gd, b, gen, kern, Options{Workers: 1}, nil)
		return err
	})
	if err == nil {
		t.Fatal("kernel errors did not surface from Run")
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("error chain lost the kernel failure: %v", err)
	}

	// Every node owning an A or B tile fails its own root task and must
	// appear in the joined error by rank.
	failing := map[int]bool{}
	for i := 0; i < mt; i++ {
		for k := 0; k < kt; k++ {
			failing[gd.Owner(i, nt+k)] = true // A tile (i,k)
		}
	}
	for k := 0; k < kt; k++ {
		for j := 0; j < nt; j++ {
			failing[gd.Owner(mt+k, j)] = true // B tile (k,j)
		}
	}
	if len(failing) < 2 {
		t.Fatalf("test needs >= 2 failing nodes, distribution gives %d", len(failing))
	}
	for rank := range failing {
		if !strings.Contains(err.Error(), fmt.Sprintf("node %d:", rank)) {
			t.Fatalf("node %d failed but is missing from the joined error: %v", rank, err)
		}
	}
}

// TestPeerAbortSentinel: a node that owned work but could not finish it
// because a peer failed reports ErrPeerAborted, and Run folds those into one
// summary line instead of repeating them per rank.
func TestPeerAbortSentinel(t *testing.T) {
	const mt, b = 6, 3
	d := dist.NewTwoDBC(2, 2)

	// Only the very first panel fails, so every other node aborts as a
	// bystander: none of their tasks can ever become ready.
	kern := func(tk dag.Task, out *tile.Tile, inputs []*tile.Tile) error {
		if tk.Kind == dag.GETRF && tk.L == 0 {
			return fmt.Errorf("injected: %w", errBoom)
		}
		return LUKernel(tk, out, inputs)
	}
	err := runWithDeadline(t, func() error {
		_, err := Run(dag.NewLU(mt), d, b, GenDiagDominant(mt, b, 3), kern,
			Options{Workers: 1}, nil)
		return err
	})
	if err == nil {
		t.Fatal("kernel error did not surface from Run")
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("error chain lost the kernel failure: %v", err)
	}
	if !errors.Is(err, ErrPeerAborted) {
		t.Fatalf("bystander aborts not reported: %v", err)
	}
	if !strings.Contains(err.Error(), "node 0:") {
		t.Fatalf("failing node missing from error: %v", err)
	}
}

package runtime

import (
	"testing"

	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/tile"
)

// naiveSYRK computes C + A·Aᵀ elementwise for reference.
func naiveSYRK(c *matrix.SymmetricLower, a [][]*tile.Tile, b int) *matrix.SymmetricLower {
	mt := c.MT
	kt := len(a[0])
	out := c.Clone()
	for i := 0; i < mt; i++ {
		for j := 0; j <= i; j++ {
			target := out.Tile(i, j)
			for k := 0; k < kt; k++ {
				if i == j {
					tile.Syrk(tile.Lower, tile.NoTrans, 1, a[i][k], 1, target)
					_ = b
				} else {
					tile.Gemm(tile.NoTrans, tile.TransT, 1, a[i][k], a[j][k], 1, target)
				}
			}
		}
	}
	return out
}

func TestDistributedSYRK(t *testing.T) {
	const mt, kt, b = 6, 4, 5
	const seed = 33
	genA := func(i, k int) *tile.Tile {
		tl := tile.New(b, b)
		for r := 0; r < b; r++ {
			for c := 0; c < b; c++ {
				tl.Set(r, c, matrix.ElementAt(seed, i*b+r, k*b+c))
			}
		}
		return tl
	}
	genC := GenSPD(mt, b, seed+1)

	// Reference.
	aTiles := make([][]*tile.Tile, mt)
	for i := range aTiles {
		aTiles[i] = make([]*tile.Tile, kt)
		for k := range aTiles[i] {
			aTiles[i][k] = genA(i, k)
		}
	}
	c0 := matrix.NewSPD(mt, b, seed+1)
	want := naiveSYRK(c0, aTiles, b)

	for _, d := range []dist.Distribution{
		dist.NewTwoDBC(1, 1),
		dist.NewTwoDBC(2, 3),
		dist.NewSBCPair(4),
		dist.NewG2DBC(7),
	} {
		got, rep, err := SYRK(mt, kt, b, d, genC, genA, Options{Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		for i := 0; i < mt; i++ {
			for j := 0; j <= i; j++ {
				// Only the lower triangle of diagonal tiles is defined.
				g, w := got.Tile(i, j), want.Tile(i, j)
				for r := 0; r < b; r++ {
					for cc := 0; cc < b; cc++ {
						if i == j && cc > r {
							continue
						}
						if diff := g.At(r, cc) - w.At(r, cc); diff > 1e-11 || diff < -1e-11 {
							t.Fatalf("%s: tile (%d,%d) elem (%d,%d) differs by %g",
								d.Name(), i, j, r, cc, diff)
						}
					}
				}
			}
		}
		if d.Nodes() == 1 && rep.Stats.TotalMessages() != 0 {
			t.Errorf("single node SYRK communicated")
		}
	}
}

// TestSYRKCommSBCBeats2DBC verifies the SC22 claim the paper recalls: on the
// symmetric rank-k update, SBC communicates less than 2DBC at equal node
// count (P = 10: SBC 5x5 pair pattern vs 2DBC 5x2).
func TestSYRKCommSBCBeats2DBC(t *testing.T) {
	const mt, kt, b = 20, 4, 3
	genA := func(i, k int) *tile.Tile {
		tl := tile.New(b, b)
		tl.Fill(1)
		return tl
	}
	genC := GenSPD(mt, b, 1)
	_, repSBC, err := SYRK(mt, kt, b, dist.NewSBCPair(5), genC, genA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, repDBC, err := SYRK(mt, kt, b, dist.NewTwoDBC(5, 2), genC, genA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if repSBC.Stats.TotalMessages() >= repDBC.Stats.TotalMessages() {
		t.Errorf("SBC messages %d not below 2DBC %d",
			repSBC.Stats.TotalMessages(), repDBC.Stats.TotalMessages())
	}
}

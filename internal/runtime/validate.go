package runtime

import (
	"fmt"

	"anybc/internal/dag"
	"anybc/internal/dist"
)

// prevalidate checks that the versioned tile protocol can serve the
// (graph, distribution) pair and returns the per-task output versions the
// engines key their messages by. It fails with a descriptive error — instead
// of letting a node panic deep inside its event loop — when:
//
//   - a tile used by the graph is mapped outside [0, P);
//   - two tasks produce the same version of the same tile, i.e. the graph
//     does not serialize the writers of a tile (the runs would race);
//   - a task reads the initial contents of a tile owned by another node: the
//     protocol only moves tiles on task completion, so initial contents never
//     cross the network;
//   - a task reads a local tile at an intermediate version without ordering
//     itself before the tile's next writer, so the in-place update could
//     overwrite the tile while it is being read.
func prevalidate(g dag.Graph, d dist.Distribution) ([]int32, error) {
	P := d.Nodes()
	ver := dag.OutputVersions(g)

	// Writers of every tile, indexed by version.
	type coord struct{ i, j int32 }
	writers := make(map[coord][]int32)
	var err error
	dag.ForEachTask(g, func(t dag.Task) {
		if err != nil {
			return
		}
		oi, oj := g.OutputTile(t)
		if o := d.Owner(oi, oj); o < 0 || o >= P {
			err = fmt.Errorf("runtime: %s maps tile (%d, %d) to node %d, outside 0..%d",
				d.Name(), oi, oj, o, P-1)
			return
		}
		c := coord{int32(oi), int32(oj)}
		v := ver[g.ID(t)]
		w := writers[c]
		for int32(len(w)) <= v {
			w = append(w, -1)
		}
		if prev := w[v]; prev >= 0 {
			err = fmt.Errorf("runtime: %v and %v both produce version %d of tile (%d, %d): "+
				"the graph does not serialize the tile's writers",
				g.TaskOf(int(prev)), t, v, oi, oj)
			return
		}
		w[v] = int32(g.ID(t))
		writers[c] = w
	})
	if err != nil {
		return nil, err
	}

	// dependsOn reports whether task w has t among its direct dependencies.
	dependsOn := func(w, t dag.Task) bool {
		found := false
		g.Dependencies(w, func(d dag.Task) {
			if d == t {
				found = true
			}
		})
		return found
	}

	dag.ForEachTask(g, func(t dag.Task) {
		if err != nil {
			return
		}
		oi, oj := g.OutputTile(t)
		self := d.Owner(oi, oj)
		g.InputTiles(t, func(i, j int) {
			if err != nil {
				return
			}
			v, produced := dag.InputVersion(g, ver, t, i, j)
			remote := d.Owner(i, j) != self
			if !produced {
				if remote {
					err = fmt.Errorf("runtime: %v on node %d reads the initial contents of "+
						"remote tile (%d, %d): the protocol only delivers tiles produced by tasks",
						t, self, i, j)
				}
				return
			}
			if remote {
				return // delivered as a versioned message
			}
			// Local read of an intermediate version: the next writer must be
			// ordered after the reader or the in-place update races the read.
			w := writers[coord{int32(i), int32(j)}]
			if int(v+1) < len(w) {
				next := g.TaskOf(int(w[v+1]))
				if !dependsOn(next, t) {
					err = fmt.Errorf("runtime: %v reads local tile (%d, %d) at version %d "+
						"but the next writer %v is not ordered after it", t, i, j, v, next)
				}
			}
		})
	})
	if err != nil {
		return nil, err
	}
	return ver, nil
}

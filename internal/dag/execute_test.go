package dag

import (
	"math/rand"
	"testing"

	"anybc/internal/matrix"
	"anybc/internal/tile"
)

// applyLU executes one LU task on the tiled matrix.
func applyLU(a *matrix.Dense, t Task) error {
	l := int(t.L)
	switch t.Kind {
	case GETRF:
		return tile.Getrf(a.Tile(l, l))
	case TRSMCol:
		tile.Trsm(tile.Right, tile.Upper, tile.NoTrans, tile.NonUnit, 1, a.Tile(l, l), a.Tile(int(t.I), l))
	case TRSMRow:
		tile.Trsm(tile.Left, tile.Lower, tile.NoTrans, tile.Unit, 1, a.Tile(l, l), a.Tile(l, int(t.I)))
	case GEMMLU:
		tile.Gemm(tile.NoTrans, tile.NoTrans, -1, a.Tile(int(t.I), l), a.Tile(l, int(t.J)), 1, a.Tile(int(t.I), int(t.J)))
	}
	return nil
}

// applyChol executes one Cholesky task on the tiled symmetric matrix.
func applyChol(a *matrix.SymmetricLower, t Task) error {
	l := int(t.L)
	switch t.Kind {
	case POTRF:
		return tile.Potrf(a.Tile(l, l))
	case TRSMChol:
		tile.Trsm(tile.Right, tile.Lower, tile.TransT, tile.NonUnit, 1, a.Tile(l, l), a.Tile(int(t.I), l))
	case SYRK:
		tile.Syrk(tile.Lower, tile.NoTrans, -1, a.Tile(int(t.I), l), 1, a.Tile(int(t.I), int(t.I)))
	case GEMMChol:
		tile.Gemm(tile.NoTrans, tile.TransT, -1, a.Tile(int(t.I), l), a.Tile(int(t.J), l), 1, a.Tile(int(t.I), int(t.J)))
	}
	return nil
}

// runRandomOrder executes the graph by repeatedly picking a random ready task
// (all dependencies done). This validates that the structural dependencies
// are sufficient for correctness in any legal interleaving.
func runRandomOrder(t *testing.T, g Graph, rng *rand.Rand, apply func(Task) error) {
	t.Helper()
	n := g.NumTasks()
	remaining := make([]int, n)
	ready := make([]int, 0, n)
	ForEachTask(g, func(task Task) {
		id := g.ID(task)
		remaining[id] = g.NumDependencies(task)
		if remaining[id] == 0 {
			ready = append(ready, id)
		}
	})
	done := 0
	for len(ready) > 0 {
		k := rng.Intn(len(ready))
		id := ready[k]
		ready[k] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		task := g.TaskOf(id)
		if err := apply(task); err != nil {
			t.Fatalf("%s: task %v failed: %v", g.Name(), task, err)
		}
		done++
		g.Successors(task, func(s Task) {
			sid := g.ID(s)
			remaining[sid]--
			if remaining[sid] == 0 {
				ready = append(ready, sid)
			}
		})
	}
	if done != n {
		t.Fatalf("%s: executed %d of %d tasks — dependency deadlock", g.Name(), done, n)
	}
}

func TestLUDAGExecutesCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, mt := range []int{1, 2, 3, 5, 8} {
		for trial := 0; trial < 3; trial++ {
			orig := matrix.NewDiagDominant(mt, 6, int64(mt*10+trial))
			a := orig.Clone()
			g := NewLU(mt)
			runRandomOrder(t, g, rng, func(task Task) error { return applyLU(a, task) })
			if res := matrix.ResidualLU(orig, a); res > 1e-11 {
				t.Fatalf("mt=%d trial=%d: residual %g", mt, trial, res)
			}
		}
	}
}

func TestCholeskyDAGExecutesCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, mt := range []int{1, 2, 3, 5, 8} {
		for trial := 0; trial < 3; trial++ {
			orig := matrix.NewSPD(mt, 6, int64(mt*10+trial))
			a := orig.Clone()
			g := NewCholesky(mt)
			runRandomOrder(t, g, rng, func(task Task) error { return applyChol(a, task) })
			if res := matrix.ResidualCholesky(orig, a); res > 1e-11 {
				t.Fatalf("mt=%d trial=%d: residual %g", mt, trial, res)
			}
		}
	}
}

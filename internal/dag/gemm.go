package dag

import (
	"fmt"

	"anybc/internal/tile"
)

// GEMM-operation task kinds: the classical matrix product C = C + A·B, the
// kernel for which the communication lower bounds of Section II-A
// (Hong–Kung, Irony et al.) are stated. Like the SYRK graph, the input
// matrices enter through publish-only tasks that model their initial
// distribution.
const (
	// GemmA publishes input tile A[i][k].
	GemmA Kind = iota + 24
	// GemmB publishes input tile B[k][j].
	GemmB
	// GemmUpd accumulates C[i][j] += A[i][k]·B[k][j].
	GemmUpd
)

// GEMMOp is the task graph of the tiled product C (mt×nt) += A (mt×kt) ·
// B (kt×nt). Tile coordinates: C at (i, j); A at (i, nt+k); B at (mt+k, j) —
// three disjoint regions, so one owner map covers all operands (see
// runtime.GEMM for the standard placement).
//
// Under owner-computes, A[i][k] must reach the owners of C row i and B[k][j]
// the owners of C column j, so the total volume is
// mt·kt·(x̄_C − 1) + kt·nt·(ȳ_C − 1): exactly the row/column distinct-node
// counts the paper's LU metric is built from. The G-2DBC pattern therefore
// minimizes GEMM communication for any P, just as it does for LU.
type GEMMOp struct {
	mt, nt, kt     int
	bBase, updBase int
}

// NewGEMMOp builds the product task graph.
func NewGEMMOp(mt, nt, kt int) *GEMMOp {
	if mt <= 0 || nt <= 0 || kt <= 0 {
		panic(fmt.Sprintf("dag: invalid GEMM shape %dx%dx%d", mt, nt, kt))
	}
	g := &GEMMOp{mt: mt, nt: nt, kt: kt}
	g.bBase = mt * kt
	g.updBase = g.bBase + kt*nt
	return g
}

// Name implements Graph.
func (g *GEMMOp) Name() string { return "GEMM" }

// Tiles implements Graph (the C row dimension).
func (g *GEMMOp) Tiles() int { return g.mt }

// Shape returns (mt, nt, kt).
func (g *GEMMOp) Shape() (mt, nt, kt int) { return g.mt, g.nt, g.kt }

// NumTasks implements Graph.
func (g *GEMMOp) NumTasks() int { return g.updBase + g.mt*g.nt*g.kt }

// ID implements Graph. GemmA stores (i, k) in (I, L); GemmB stores (k, j) in
// (L, J); GemmUpd stores (i, j, k) in (I, J, L).
func (g *GEMMOp) ID(t Task) int {
	switch t.Kind {
	case GemmA:
		return int(t.I)*g.kt + int(t.L)
	case GemmB:
		return g.bBase + int(t.L)*g.nt + int(t.J)
	case GemmUpd:
		return g.updBase + (int(t.I)*g.nt+int(t.J))*g.kt + int(t.L)
	default:
		panic(fmt.Sprintf("dag: task %v is not a GEMM task", t))
	}
}

// TaskOf implements Graph.
func (g *GEMMOp) TaskOf(id int) Task {
	switch {
	case id < g.bBase:
		return Task{Kind: GemmA, L: int32(id % g.kt), I: int32(id / g.kt)}
	case id < g.updBase:
		rel := id - g.bBase
		return Task{Kind: GemmB, L: int32(rel / g.nt), J: int32(rel % g.nt)}
	default:
		rel := id - g.updBase
		k := rel % g.kt
		cell := rel / g.kt
		return Task{Kind: GemmUpd, L: int32(k), I: int32(cell / g.nt), J: int32(cell % g.nt)}
	}
}

// Dependencies implements Graph.
func (g *GEMMOp) Dependencies(t Task, visit func(Task)) {
	if t.Kind != GemmUpd {
		return
	}
	visit(Task{Kind: GemmA, L: t.L, I: t.I})
	visit(Task{Kind: GemmB, L: t.L, J: t.J})
	if t.L > 0 {
		visit(Task{Kind: GemmUpd, L: t.L - 1, I: t.I, J: t.J})
	}
}

// NumDependencies implements Graph.
func (g *GEMMOp) NumDependencies(t Task) int {
	if t.Kind != GemmUpd {
		return 0
	}
	if t.L > 0 {
		return 3
	}
	return 2
}

// Successors implements Graph.
func (g *GEMMOp) Successors(t Task, visit func(Task)) {
	switch t.Kind {
	case GemmA:
		for j := 0; j < g.nt; j++ {
			visit(Task{Kind: GemmUpd, L: t.L, I: t.I, J: int32(j)})
		}
	case GemmB:
		for i := 0; i < g.mt; i++ {
			visit(Task{Kind: GemmUpd, L: t.L, I: int32(i), J: t.J})
		}
	case GemmUpd:
		if int(t.L) < g.kt-1 {
			visit(Task{Kind: GemmUpd, L: t.L + 1, I: t.I, J: t.J})
		}
	}
}

// OutputTile implements Graph.
func (g *GEMMOp) OutputTile(t Task) (int, int) {
	switch t.Kind {
	case GemmA:
		return int(t.I), g.nt + int(t.L)
	case GemmB:
		return g.mt + int(t.L), int(t.J)
	default:
		return int(t.I), int(t.J)
	}
}

// InputTiles implements Graph.
func (g *GEMMOp) InputTiles(t Task, visit func(i, j int)) {
	if t.Kind != GemmUpd {
		return
	}
	visit(int(t.I), g.nt+int(t.L))
	visit(g.mt+int(t.L), int(t.J))
}

// Flops implements Graph.
func (g *GEMMOp) Flops(t Task, b int) float64 {
	if t.Kind != GemmUpd {
		return 0
	}
	return tile.FlopsGemm(b)
}

// TotalFlops implements Graph.
func (g *GEMMOp) TotalFlops(b int) float64 {
	return float64(g.mt*g.nt*g.kt) * tile.FlopsGemm(b)
}

package dag

import (
	"fmt"

	"anybc/internal/tile"
)

// LU is the task graph of the right-looking tiled unpivoted LU factorization
// of an mt×mt tile matrix:
//
//	for ℓ = 0..mt-1:
//	    GETRF(ℓ)
//	    TRSMCol(ℓ, i) for i > ℓ        TRSMRow(ℓ, j) for j > ℓ
//	    GEMMLU(ℓ, i, j) for i, j > ℓ
type LU struct {
	mt int
	// Prefix sums for dense task ids.
	trsmColBase, trsmRowBase, gemmBase int
	s1                                 []int // s1[l] = Σ_{k<l} (mt-1-k)
	s2                                 []int // s2[l] = Σ_{k<l} (mt-1-k)²
}

// NewLU builds the LU task graph for an mt×mt tile matrix.
func NewLU(mt int) *LU {
	if mt <= 0 {
		panic(fmt.Sprintf("dag: invalid tile count %d", mt))
	}
	g := &LU{mt: mt, s1: make([]int, mt+1), s2: make([]int, mt+1)}
	for l := 0; l < mt; l++ {
		k := mt - 1 - l
		g.s1[l+1] = g.s1[l] + k
		g.s2[l+1] = g.s2[l] + k*k
	}
	g.trsmColBase = mt
	g.trsmRowBase = g.trsmColBase + g.s1[mt]
	g.gemmBase = g.trsmRowBase + g.s1[mt]
	return g
}

// Name implements Graph.
func (g *LU) Name() string { return "LU" }

// Tiles implements Graph.
func (g *LU) Tiles() int { return g.mt }

// NumTasks implements Graph.
func (g *LU) NumTasks() int { return g.gemmBase + g.s2[g.mt] }

// ID implements Graph.
func (g *LU) ID(t Task) int {
	l := int(t.L)
	switch t.Kind {
	case GETRF:
		return l
	case TRSMCol:
		return g.trsmColBase + g.s1[l] + int(t.I) - l - 1
	case TRSMRow:
		return g.trsmRowBase + g.s1[l] + int(t.I) - l - 1
	case GEMMLU:
		w := g.mt - 1 - l
		return g.gemmBase + g.s2[l] + (int(t.I)-l-1)*w + int(t.J) - l - 1
	default:
		panic(fmt.Sprintf("dag: task %v is not an LU task", t))
	}
}

// TaskOf implements Graph.
func (g *LU) TaskOf(id int) Task {
	switch {
	case id < g.trsmColBase:
		return Task{Kind: GETRF, L: int32(id), I: int32(id), J: int32(id)}
	case id < g.trsmRowBase:
		l, off := g.locate1(id - g.trsmColBase)
		return Task{Kind: TRSMCol, L: int32(l), I: int32(l + 1 + off)}
	case id < g.gemmBase:
		l, off := g.locate1(id - g.trsmRowBase)
		return Task{Kind: TRSMRow, L: int32(l), I: int32(l + 1 + off)}
	default:
		rel := id - g.gemmBase
		l := g.locatePrefix(g.s2, rel)
		rel -= g.s2[l]
		w := g.mt - 1 - l
		return Task{Kind: GEMMLU, L: int32(l), I: int32(l + 1 + rel/w), J: int32(l + 1 + rel%w)}
	}
}

// locate1 finds (l, offset) such that id = s1[l] + offset with offset in
// [0, mt-1-l).
func (g *LU) locate1(id int) (l, off int) {
	l = g.locatePrefix(g.s1, id)
	return l, id - g.s1[l]
}

// locatePrefix binary-searches the largest l with prefix[l] <= id.
func (g *LU) locatePrefix(prefix []int, id int) int {
	lo, hi := 0, len(prefix)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if prefix[mid] <= id {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Dependencies implements Graph.
func (g *LU) Dependencies(t Task, visit func(Task)) {
	l := t.L
	switch t.Kind {
	case GETRF:
		if l > 0 {
			visit(Task{Kind: GEMMLU, L: l - 1, I: l, J: l})
		}
	case TRSMCol:
		visit(Task{Kind: GETRF, L: l, I: l, J: l})
		if l > 0 {
			visit(Task{Kind: GEMMLU, L: l - 1, I: t.I, J: l})
		}
	case TRSMRow:
		visit(Task{Kind: GETRF, L: l, I: l, J: l})
		if l > 0 {
			visit(Task{Kind: GEMMLU, L: l - 1, I: l, J: t.I})
		}
	case GEMMLU:
		visit(Task{Kind: TRSMCol, L: l, I: t.I})
		visit(Task{Kind: TRSMRow, L: l, I: t.J})
		if l > 0 {
			visit(Task{Kind: GEMMLU, L: l - 1, I: t.I, J: t.J})
		}
	}
}

// NumDependencies implements Graph.
func (g *LU) NumDependencies(t Task) int {
	switch t.Kind {
	case GETRF:
		if t.L > 0 {
			return 1
		}
		return 0
	case TRSMCol, TRSMRow:
		if t.L > 0 {
			return 2
		}
		return 1
	default:
		if t.L > 0 {
			return 3
		}
		return 2
	}
}

// Successors implements Graph.
func (g *LU) Successors(t Task, visit func(Task)) {
	l := int(t.L)
	mt := g.mt
	switch t.Kind {
	case GETRF:
		for i := l + 1; i < mt; i++ {
			visit(Task{Kind: TRSMCol, L: t.L, I: int32(i)})
			visit(Task{Kind: TRSMRow, L: t.L, I: int32(i)})
		}
	case TRSMCol:
		for j := l + 1; j < mt; j++ {
			visit(Task{Kind: GEMMLU, L: t.L, I: t.I, J: int32(j)})
		}
	case TRSMRow:
		for i := l + 1; i < mt; i++ {
			visit(Task{Kind: GEMMLU, L: t.L, I: int32(i), J: t.I})
		}
	case GEMMLU:
		i, j := t.I, t.J
		next := t.L + 1
		switch {
		case int(i) == l+1 && int(j) == l+1:
			visit(Task{Kind: GETRF, L: next, I: next, J: next})
		case int(j) == l+1:
			visit(Task{Kind: TRSMCol, L: next, I: i})
		case int(i) == l+1:
			visit(Task{Kind: TRSMRow, L: next, I: j})
		default:
			visit(Task{Kind: GEMMLU, L: next, I: i, J: j})
		}
	}
}

// OutputTile implements Graph.
func (g *LU) OutputTile(t Task) (int, int) {
	switch t.Kind {
	case GETRF:
		return int(t.L), int(t.L)
	case TRSMCol:
		return int(t.I), int(t.L)
	case TRSMRow:
		return int(t.L), int(t.I)
	default:
		return int(t.I), int(t.J)
	}
}

// InputTiles implements Graph.
func (g *LU) InputTiles(t Task, visit func(i, j int)) {
	l := int(t.L)
	switch t.Kind {
	case GETRF:
	case TRSMCol, TRSMRow:
		visit(l, l)
	case GEMMLU:
		visit(int(t.I), l)
		visit(l, int(t.J))
	}
}

// Flops implements Graph.
func (g *LU) Flops(t Task, b int) float64 {
	switch t.Kind {
	case GETRF:
		return tile.FlopsGetrf(b)
	case TRSMCol, TRSMRow:
		return tile.FlopsTrsm(b)
	default:
		return tile.FlopsGemm(b)
	}
}

// TotalFlops implements Graph.
func (g *LU) TotalFlops(b int) float64 {
	mt := g.mt
	return float64(mt)*tile.FlopsGetrf(b) +
		2*float64(g.s1[mt])*tile.FlopsTrsm(b) +
		float64(g.s2[mt])*tile.FlopsGemm(b)
}

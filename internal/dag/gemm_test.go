package dag

import (
	"fmt"
	"testing"

	"anybc/internal/dist"
	"anybc/internal/lowerbound"
)

func TestGEMMNumTasks(t *testing.T) {
	g := NewGEMMOp(3, 4, 5)
	want := 3*5 + 5*4 + 3*4*5
	if got := g.NumTasks(); got != want {
		t.Fatalf("NumTasks = %d, want %d", got, want)
	}
}

func TestGEMMIDRoundtrip(t *testing.T) {
	for _, shape := range [][3]int{{1, 1, 1}, {3, 4, 2}, {5, 2, 6}} {
		g := NewGEMMOp(shape[0], shape[1], shape[2])
		seen := make([]bool, g.NumTasks())
		n := 0
		ForEachTask(g, func(task Task) {
			id := g.ID(task)
			if id < 0 || id >= g.NumTasks() || seen[id] {
				t.Fatalf("GEMM%v: bad/dup id %d for %v", shape, id, task)
			}
			seen[id] = true
			if back := g.TaskOf(id); back != task {
				t.Fatalf("GEMM%v: TaskOf(ID(%v)) = %v", shape, task, back)
			}
			n++
		})
		if n != g.NumTasks() {
			t.Fatalf("GEMM%v: visited %d of %d", shape, n, g.NumTasks())
		}
	}
}

func TestGEMMEdgesConsistent(t *testing.T) {
	g := NewGEMMOp(3, 2, 4)
	succ := map[string]bool{}
	ForEachTask(g, func(task Task) {
		g.Successors(task, func(s Task) { succ[fmt.Sprint(task, "->", s)] = true })
	})
	visited := make([]bool, g.NumTasks())
	deps := 0
	ForEachTask(g, func(task Task) {
		n := 0
		g.Dependencies(task, func(d Task) {
			n++
			deps++
			if !succ[fmt.Sprint(d, "->", task)] {
				t.Fatalf("edge %v->%v missing from successors", d, task)
			}
			if !visited[g.ID(d)] {
				t.Fatalf("%v before dependency %v", task, d)
			}
		})
		if g.NumDependencies(task) != n {
			t.Fatalf("NumDependencies(%v) = %d, want %d", task, g.NumDependencies(task), n)
		}
		visited[g.ID(task)] = true
	})
	if deps != len(succ) {
		t.Fatalf("%d dep edges vs %d succ edges", deps, len(succ))
	}
}

// TestGEMMCommVolumeFormula: for a p×q grid co-distributing all operands,
// the owner-computes volume is mt·kt·(q−1) + kt·nt·(p−1).
func TestGEMMCommVolumeFormula(t *testing.T) {
	const mt, nt, kt = 12, 12, 6
	for _, grid := range [][2]int{{2, 3}, {3, 2}, {6, 1}, {1, 6}} {
		p, q := grid[0], grid[1]
		d := dist.NewTwoDBC(p, q)
		g := NewGEMMOp(mt, nt, kt)
		owner := func(i, j int) int {
			switch {
			case i >= mt:
				return d.Owner(i-mt, j)
			case j >= nt:
				return d.Owner(i, j-nt)
			default:
				return d.Owner(i, j)
			}
		}
		want := int64(mt*kt*(q-1) + kt*nt*(p-1))
		if got := CommVolumeTiles(g, owner); got != want {
			t.Errorf("grid %dx%d: volume %d, want %d", p, q, got, want)
		}
	}
	// Square grids minimize the volume (classic Irony et al. result).
	vol := func(p, q int) int64 {
		return int64(mt*kt*(q-1) + kt*nt*(p-1))
	}
	if !(vol(2, 3) < vol(6, 1) && vol(3, 2) < vol(1, 6)) {
		t.Error("squarer grid did not minimize volume")
	}
}

// TestGEMMPerNodeVolumeNearBound: the per-node communication of a square
// grid approaches the Irony–Toledo–Tiskin reference 2m²/√P.
func TestGEMMPerNodeVolumeNearBound(t *testing.T) {
	const mt, b, p = 24, 10, 4 // P = 16, square grid
	d := dist.NewTwoDBC(p, p)
	g := NewGEMMOp(mt, mt, mt)
	owner := func(i, j int) int {
		switch {
		case i >= mt:
			return d.Owner(i-mt, j)
		case j >= mt:
			return d.Owner(i, j-mt)
		default:
			return d.Owner(i, j)
		}
	}
	words := float64(CommVolumeTiles(g, owner)) * float64(b*b) / float64(p*p)
	bound := lowerbound.GEMMPerNode(float64(mt*b), p*p)
	if ratio := words / bound; ratio < 0.7 || ratio > 1.05 {
		t.Errorf("per-node volume %.0f words vs reference %.0f (ratio %.2f)", words, bound, ratio)
	}
}

func TestGEMMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGEMMOp(0,1,1) did not panic")
		}
	}()
	NewGEMMOp(0, 1, 1)
}

package dag

import (
	"fmt"
	"math/rand"
	"testing"

	"anybc/internal/matrix"
	"anybc/internal/tile"
)

func solveGraphs(mt, nrhs int) []Graph {
	return []Graph{NewLUSolve(mt, nrhs), NewCholeskySolve(mt, nrhs)}
}

func TestSolveNumTasks(t *testing.T) {
	for mt := 1; mt <= 10; mt++ {
		half := mt * (mt - 1) / 2
		lu := NewLUSolve(mt, 2)
		if got, want := lu.NumTasks(), NewLU(mt).NumTasks()+3*mt+2*half; got != want {
			t.Errorf("LUSolve(%d): NumTasks = %d, want %d", mt, got, want)
		}
		ch := NewCholeskySolve(mt, 2)
		if got, want := ch.NumTasks(), NewCholesky(mt).NumTasks()+3*mt+2*half; got != want {
			t.Errorf("CholeskySolve(%d): NumTasks = %d, want %d", mt, got, want)
		}
	}
}

func TestSolveIDRoundtrip(t *testing.T) {
	for mt := 1; mt <= 8; mt++ {
		for _, g := range solveGraphs(mt, 3) {
			seen := make([]bool, g.NumTasks())
			count := 0
			ForEachTask(g, func(task Task) {
				id := g.ID(task)
				if id < 0 || id >= g.NumTasks() || seen[id] {
					t.Fatalf("%s mt=%d: bad or duplicate id %d for %v", g.Name(), mt, id, task)
				}
				seen[id] = true
				if back := g.TaskOf(id); back != task {
					t.Fatalf("%s mt=%d: TaskOf(ID(%v)) = %v", g.Name(), mt, task, back)
				}
				count++
			})
			if count != g.NumTasks() {
				t.Fatalf("%s mt=%d: visited %d of %d tasks", g.Name(), mt, count, g.NumTasks())
			}
		}
	}
}

func TestSolveDepsSuccsAreInverse(t *testing.T) {
	for mt := 1; mt <= 6; mt++ {
		for _, g := range solveGraphs(mt, 1) {
			succ := map[string]bool{}
			ForEachTask(g, func(task Task) {
				g.Successors(task, func(s Task) {
					succ[fmt.Sprint(task, "->", s)] = true
				})
			})
			dep := map[string]bool{}
			ForEachTask(g, func(task Task) {
				g.Dependencies(task, func(d Task) {
					dep[fmt.Sprint(d, "->", task)] = true
				})
			})
			if len(succ) != len(dep) {
				t.Fatalf("%s mt=%d: %d successor edges vs %d dependency edges",
					g.Name(), mt, len(succ), len(dep))
			}
			for e := range dep {
				if !succ[e] {
					t.Fatalf("%s mt=%d: edge %s missing from successors", g.Name(), mt, e)
				}
			}
		}
	}
}

func TestSolveTopologicalAndDepCounts(t *testing.T) {
	for mt := 1; mt <= 7; mt++ {
		for _, g := range solveGraphs(mt, 2) {
			visited := make([]bool, g.NumTasks())
			ForEachTask(g, func(task Task) {
				n := 0
				g.Dependencies(task, func(d Task) {
					n++
					if !visited[g.ID(d)] {
						t.Fatalf("%s mt=%d: %v before dependency %v", g.Name(), mt, task, d)
					}
				})
				if g.NumDependencies(task) != n {
					t.Fatalf("%s mt=%d: NumDependencies(%v) = %d, want %d",
						g.Name(), mt, task, g.NumDependencies(task), n)
				}
				visited[g.ID(task)] = true
			})
		}
	}
}

func TestSolveTotalFlopsMatchesSum(t *testing.T) {
	for _, g := range solveGraphs(6, 3) {
		sum := 0.0
		ForEachTask(g, func(task Task) { sum += g.Flops(task, 5) })
		total := g.TotalFlops(5)
		if d := total - sum; d > 1e-9*total || d < -1e-9*total {
			t.Errorf("%s: TotalFlops %v != sum %v", g.Name(), total, sum)
		}
	}
}

// execSolve executes the combined factor+solve graph in random ready order
// with the real kernels, on explicit tile stores for the matrix, Y and X.
func execSolve(t *testing.T, g Graph, mt, b, nrhs int, sym bool, seed int64) matrix.RHS {
	t.Helper()
	var dense *matrix.Dense
	var symm *matrix.SymmetricLower
	if sym {
		symm = matrix.NewSPD(mt, b, seed)
	} else {
		dense = matrix.NewDiagDominant(mt, b, seed)
	}
	y := matrix.NewRHS(mt, b, nrhs)
	y.FillFunc(func(gi, k int) float64 { return matrix.ElementAt(seed+5, gi, k) })
	x := matrix.NewRHS(mt, b, nrhs)

	mtile := func(i, j int) *tile.Tile {
		if sym {
			return symm.Tile(i, j)
		}
		return dense.Tile(i, j)
	}
	apply := func(task Task) error {
		i, j := int(task.I), int(task.J)
		switch task.Kind {
		case FTRSM:
			if sym {
				tile.Trsm(tile.Left, tile.Lower, tile.NoTrans, tile.NonUnit, 1, mtile(i, i), y[i])
			} else {
				tile.Trsm(tile.Left, tile.Lower, tile.NoTrans, tile.Unit, 1, mtile(i, i), y[i])
			}
		case FGEMM:
			tile.Gemm(tile.NoTrans, tile.NoTrans, -1, mtile(i, j), y[j], 1, y[i])
		case BCOPY:
			x[i].CopyFrom(y[i])
		case BGEMM:
			if sym {
				tile.Gemm(tile.TransT, tile.NoTrans, -1, mtile(j, i), x[j], 1, x[i])
			} else {
				tile.Gemm(tile.NoTrans, tile.NoTrans, -1, mtile(i, j), x[j], 1, x[i])
			}
		case BTRSM:
			if sym {
				tile.Trsm(tile.Left, tile.Lower, tile.TransT, tile.NonUnit, 1, mtile(i, i), x[i])
			} else {
				tile.Trsm(tile.Left, tile.Upper, tile.NoTrans, tile.NonUnit, 1, mtile(i, i), x[i])
			}
		default:
			if sym {
				return applyChol(symm, task)
			}
			return applyLU(dense, task)
		}
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	runRandomOrder(t, g, rng, apply)
	return x
}

// TestLUSolveExecutesCorrectly builds A·xTrue = B, runs the combined DAG in
// random order, and checks the recovered solution.
func TestLUSolveExecutesCorrectly(t *testing.T) {
	for _, mt := range []int{1, 2, 3, 6} {
		const b, nrhs = 5, 2
		a := matrix.NewDiagDominant(mt, b, 3)
		xTrue := matrix.NewRHS(mt, b, nrhs)
		xTrue.FillFunc(func(gi, k int) float64 { return matrix.ElementAt(9, gi, k) })
		rhs := a.MulRHS(xTrue)

		// Sequential reference through matrix package.
		ref := a.Clone()
		if err := matrix.FactorLU(ref); err != nil {
			t.Fatal(err)
		}
		refX := rhs.Clone()
		matrix.SolveLU(ref, refX)
		if d := refX.MaxAbsDiff(xTrue); d > 1e-9 {
			t.Fatalf("mt=%d: sequential solve error %g", mt, d)
		}

		// DAG execution must reproduce the same solution. Patch the RHS the
		// DAG uses: execSolve generates its own B, so instead run it through
		// the same generator and compare against a matching reference.
		g := NewLUSolve(mt, nrhs)
		x := execSolve(t, g, mt, b, nrhs, false, 3)
		bGen := matrix.NewRHS(mt, b, nrhs)
		bGen.FillFunc(func(gi, k int) float64 { return matrix.ElementAt(3+5, gi, k) })
		ref2 := matrix.NewDiagDominant(mt, b, 3)
		if err := matrix.FactorLU(ref2); err != nil {
			t.Fatal(err)
		}
		matrix.SolveLU(ref2, bGen)
		if d := x.MaxAbsDiff(bGen); d > 1e-10 {
			t.Fatalf("mt=%d: DAG solve differs from sequential by %g", mt, d)
		}
	}
}

func TestCholeskySolveExecutesCorrectly(t *testing.T) {
	for _, mt := range []int{1, 2, 3, 6} {
		const b, nrhs = 5, 2
		g := NewCholeskySolve(mt, nrhs)
		x := execSolve(t, g, mt, b, nrhs, true, 4)

		bGen := matrix.NewRHS(mt, b, nrhs)
		bGen.FillFunc(func(gi, k int) float64 { return matrix.ElementAt(4+5, gi, k) })
		ref := matrix.NewSPD(mt, b, 4)
		if err := matrix.FactorCholesky(ref); err != nil {
			t.Fatal(err)
		}
		matrix.SolveCholesky(ref, bGen)
		if d := x.MaxAbsDiff(bGen); d > 1e-10 {
			t.Fatalf("mt=%d: DAG solve differs from sequential by %g", mt, d)
		}
	}
}

func TestSolveCriticalPath(t *testing.T) {
	// The solve phase extends the critical path: forward then backward
	// substitution add at least 2·mt tasks beyond the factorization spine.
	for _, mt := range []int{2, 5, 8} {
		base := CriticalPathLength(NewLU(mt))
		withSolve := CriticalPathLength(NewLUSolve(mt, 1))
		if withSolve < base+2*mt {
			t.Errorf("mt=%d: solve critical path %d, want >= %d", mt, withSolve, base+2*mt)
		}
		cp := CriticalPathFlops(NewLUSolve(mt, 1), 8)
		if cp <= CriticalPathFlops(NewLU(mt), 8) {
			t.Errorf("mt=%d: flop-weighted critical path did not grow", mt)
		}
	}
}

func TestSolveKindStrings(t *testing.T) {
	for _, k := range []Kind{FTRSM, FGEMM, BCOPY, BGEMM, BTRSM} {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Errorf("Kind %d String = %q", k, s)
		}
	}
}

func TestSolvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLUSolve with nrhs=0 did not panic")
		}
	}()
	NewLUSolve(3, 0)
}

package dag

import (
	"fmt"

	"anybc/internal/cluster"
	"anybc/internal/tile"
)

// Replication task kinds (COnfLUX-style 2.5D LU; Kwasniewski et al.,
// arXiv:2010.05975). Values continue the kind numbering after the GEMM
// operand kinds (iota+24).
const (
	// GEMMPart is a per-layer partial trailing update: layer q's accumulator
	// for tile (i, j) absorbs −A[i][ℓ]·A[ℓ][j] for the iterations ℓ the layer
	// is responsible for (ℓ ≡ q mod c). The accumulator starts at zero, so
	// after the last partial it holds exactly −Σ of that layer's products.
	GEMMPart Kind = iota + 32
	// ReduceAdd combines two members of a tile's reduction group: it adds the
	// child layer's accumulator into its binomial parent's buffer (the
	// canonical tile itself when the parent is the group root). The combine
	// schedule is cluster.ReduceTree, shared with the runtime and the
	// simulator.
	ReduceAdd
)

// ReduceGraph is implemented by graphs whose schedule includes reductions of
// replicated partial results. The runtime and the simulator use it to route
// (and count) accumulator shipments as reduction traffic rather than
// ordinary owner→consumer broadcasts.
type ReduceGraph interface {
	Graph
	// ReducePartial reports whether t's output tile is a reduction partial —
	// a layer accumulator whose only possible remote consumer is the combine
	// task folding it toward the canonical tile.
	ReducePartial(t Task) bool
}

// ReplicatedLU is the task graph of the replicated (2.5D-style) right-looking
// tiled LU factorization: the summation dimension (the update iterations ℓ)
// is sliced round-robin over c layers, each layer accumulates its share of
// every tile's trailing updates into a private accumulator tile, and a
// binomial reduction folds the accumulators into the canonical tile right
// before its panel kernel.
//
// Tile coordinate space (the GEMMOp extended-coordinate idiom):
//
//	(i, j), j < mt            canonical tile — holds A(i,j), updated in place
//	                          by the canonical layer's GEMMs and the reduce
//	(i, (1+q)·mt + j)         layer q's accumulator for tile (i, j), zero at
//	                          start (only layers that contribute materialize)
//
// The canonical layer of tile (i, j) is f(k) = k mod c with k = min(i, j):
// the layer that runs iteration k's panel. Panels therefore compute on the
// layer that consumes them, so panel broadcasts stay inside one layer's
// base grid — the √c-smaller neighborhood that is the 2.5D bandwidth win —
// and only accumulator shipments cross layers.
//
// With c = 1 the graph degenerates exactly to NewLU's structure: every
// update is a canonical GEMMLU, no accumulators and no reductions exist, and
// the per-tile kernel order (hence the floating-point result) is identical.
type ReplicatedLU struct {
	mt, c                              int
	trsmColBase, trsmRowBase, gemmBase int
	redBase                            int
	s1                                 []int // s1[l] = Σ_{k<l} (mt-1-k)
	s2                                 []int // s2[l] = Σ_{k<l} (mt-1-k)²
	s3                                 []int // s3[l] = Σ_{k<l} (2(mt-k)-1)·nRed(k)
}

// NewReplicatedLU builds the replicated LU task graph for an mt×mt tile
// matrix with c layers. c = 1 is the unreplicated graph (structurally equal
// to NewLU); layers beyond the iteration count never receive work.
func NewReplicatedLU(mt, c int) *ReplicatedLU {
	if mt <= 0 {
		panic(fmt.Sprintf("dag: invalid tile count %d", mt))
	}
	if c <= 0 {
		panic(fmt.Sprintf("dag: invalid replication factor %d", c))
	}
	g := &ReplicatedLU{mt: mt, c: c,
		s1: make([]int, mt+1), s2: make([]int, mt+1), s3: make([]int, mt+1)}
	for l := 0; l < mt; l++ {
		k := mt - 1 - l
		g.s1[l+1] = g.s1[l] + k
		g.s2[l+1] = g.s2[l] + k*k
		g.s3[l+1] = g.s3[l] + (2*(mt-l)-1)*g.nRed(l)
	}
	g.trsmColBase = mt
	g.trsmRowBase = g.trsmColBase + g.s1[mt]
	g.gemmBase = g.trsmRowBase + g.s1[mt]
	g.redBase = g.gemmBase + g.s2[mt]
	return g
}

// Name implements Graph.
func (g *ReplicatedLU) Name() string { return fmt.Sprintf("LU/c=%d", g.c) }

// Tiles implements Graph (the canonical tile-matrix side).
func (g *ReplicatedLU) Tiles() int { return g.mt }

// Replication returns the layer count c.
func (g *ReplicatedLU) Replication() int { return g.c }

// NumTasks implements Graph.
func (g *ReplicatedLU) NumTasks() int { return g.redBase + g.s3[g.mt] }

// layer returns the layer responsible for iteration l's updates (and panel).
func (g *ReplicatedLU) layer(l int) int { return l % g.c }

// nRed returns the number of ReduceAdd tasks of a tile first factored at
// iteration k: one per contributing non-canonical layer. Iterations 0..k-1
// touch layers {0..min(k,c)-1}; the canonical layer k mod c is in that set
// exactly when k ≥ c.
func (g *ReplicatedLU) nRed(k int) int {
	if k < g.c-1 {
		return k
	}
	return g.c - 1
}

// member maps a reduction-group index s (0 = root) of a tile with panel
// iteration k to the layer it stands for: the root is the canonical layer
// k mod c, and indices 1..nRed(k) walk the remaining contributing layers in
// ascending order.
func (g *ReplicatedLU) member(k, s int) int {
	r := g.layer(k)
	if s == 0 {
		return r
	}
	q := s - 1
	if q >= r {
		q++
	}
	return q
}

// memberIndex is the inverse of member for a contributing layer q.
func (g *ReplicatedLU) memberIndex(k, q int) int {
	r := g.layer(k)
	switch {
	case q == r:
		return 0
	case q < r:
		return q + 1
	default:
		return q
	}
}

// lastIter returns the last iteration before k handled by layer q, or -1.
func (g *ReplicatedLU) lastIter(k, q int) int {
	if k-1 < q {
		return -1
	}
	return q + (k-1-q)/g.c*g.c
}

// gemmTask returns the update task of iteration l on tile (i, j): a
// canonical GEMMLU when l's layer is the tile's canonical layer, a partial
// GEMMPart into the layer's accumulator otherwise.
func (g *ReplicatedLU) gemmTask(l int, i, j int32) Task {
	k := int(i)
	if int(j) < k {
		k = int(j)
	}
	kind := GEMMPart
	if g.layer(l) == g.layer(k) {
		kind = GEMMLU
	}
	return Task{Kind: kind, L: int32(l), I: i, J: j}
}

// lastChild returns the largest binomial child of group member s in a group
// of n members (cluster.ReduceTree schedule), or -1.
func lastChild(n, s int) int {
	kids := cluster.ReduceChildren(n, s)
	if len(kids) == 0 {
		return -1
	}
	return kids[len(kids)-1]
}

// ID implements Graph.
func (g *ReplicatedLU) ID(t Task) int {
	l := int(t.L)
	switch t.Kind {
	case GETRF:
		return l
	case TRSMCol:
		return g.trsmColBase + g.s1[l] + int(t.I) - l - 1
	case TRSMRow:
		return g.trsmRowBase + g.s1[l] + int(t.I) - l - 1
	case GEMMLU, GEMMPart:
		w := g.mt - 1 - l
		return g.gemmBase + g.s2[l] + (int(t.I)-l-1)*w + int(t.J) - l - 1
	case ReduceAdd:
		i, j := int(t.I), int(t.J)
		k := min(i, j)
		var pos int
		switch {
		case i == j:
			pos = 0
		case j == k:
			pos = i - k
		default:
			pos = (g.mt - k - 1) + (j - k)
		}
		return g.redBase + g.s3[k] + pos*g.nRed(k) + l - 1
	default:
		panic(fmt.Sprintf("dag: task %v is not a replicated-LU task", t))
	}
}

// TaskOf implements Graph.
func (g *ReplicatedLU) TaskOf(id int) Task {
	switch {
	case id < g.trsmColBase:
		return Task{Kind: GETRF, L: int32(id), I: int32(id), J: int32(id)}
	case id < g.trsmRowBase:
		l, off := g.locate1(id - g.trsmColBase)
		return Task{Kind: TRSMCol, L: int32(l), I: int32(l + 1 + off)}
	case id < g.gemmBase:
		l, off := g.locate1(id - g.trsmRowBase)
		return Task{Kind: TRSMRow, L: int32(l), I: int32(l + 1 + off)}
	case id < g.redBase:
		rel := id - g.gemmBase
		l := locatePrefix(g.s2, rel)
		rel -= g.s2[l]
		w := g.mt - 1 - l
		return g.gemmTask(l, int32(l+1+rel/w), int32(l+1+rel%w))
	default:
		rel := id - g.redBase
		k := locatePrefix(g.s3, rel)
		rel -= g.s3[k]
		nr := g.nRed(k)
		pos, s := rel/nr, rel%nr+1
		i, j := k, k
		switch {
		case pos == 0:
		case pos < g.mt-k:
			i = k + pos
		default:
			j = k + pos - (g.mt - k - 1)
		}
		return Task{Kind: ReduceAdd, L: int32(s), I: int32(i), J: int32(j)}
	}
}

func (g *ReplicatedLU) locate1(id int) (l, off int) {
	l = locatePrefix(g.s1, id)
	return l, id - g.s1[l]
}

// locatePrefix binary-searches the largest l with prefix[l] <= id.
func locatePrefix(prefix []int, id int) int {
	lo, hi := 0, len(prefix)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if prefix[mid] <= id {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// lastCanonicalWriter visits the task producing the final pre-panel version
// of canonical tile (i, j): the last root-level combine when the tile has a
// reduction group, the last canonical-layer GEMM when it does not (c = 1),
// or nothing when the tile is never updated (min(i,j) = 0).
func (g *ReplicatedLU) lastCanonicalWriter(i, j int, visit func(Task)) {
	k := min(i, j)
	if n := g.nRed(k) + 1; n > 1 {
		visit(Task{Kind: ReduceAdd, L: int32(lastChild(n, 0)), I: int32(i), J: int32(j)})
	} else if k > 0 {
		visit(Task{Kind: GEMMLU, L: int32(k - 1), I: int32(i), J: int32(j)})
	}
}

// Dependencies implements Graph.
func (g *ReplicatedLU) Dependencies(t Task, visit func(Task)) {
	l := int(t.L)
	switch t.Kind {
	case GETRF:
		g.lastCanonicalWriter(l, l, visit)
	case TRSMCol:
		visit(Task{Kind: GETRF, L: t.L, I: t.L, J: t.L})
		g.lastCanonicalWriter(int(t.I), l, visit)
	case TRSMRow:
		visit(Task{Kind: GETRF, L: t.L, I: t.L, J: t.L})
		g.lastCanonicalWriter(l, int(t.I), visit)
	case GEMMLU, GEMMPart:
		visit(Task{Kind: TRSMCol, L: t.L, I: t.I})
		visit(Task{Kind: TRSMRow, L: t.L, I: t.J})
		if l-g.c >= 0 {
			visit(g.gemmTask(l-g.c, t.I, t.J))
		}
	case ReduceAdd:
		s := l
		i, j := int(t.I), int(t.J)
		k := min(i, j)
		n := g.nRed(k) + 1
		// Input buffer (member s's accumulator): produced by s's last
		// absorbed child, or by the layer's final partial update.
		if lc := lastChild(n, s); lc > 0 {
			visit(Task{Kind: ReduceAdd, L: int32(lc), I: t.I, J: t.J})
		} else {
			visit(g.gemmTask(g.lastIter(k, g.member(k, s)), t.I, t.J))
		}
		// Output buffer (parent's accumulator, or the canonical tile):
		// serialized after the previous sibling's combine, or after the
		// parent's own final update.
		p := s - s&(-s)
		if step := s - p; step > 1 {
			visit(Task{Kind: ReduceAdd, L: int32(p + step/2), I: t.I, J: t.J})
		} else if p > 0 {
			visit(g.gemmTask(g.lastIter(k, g.member(k, p)), t.I, t.J))
		} else if li := g.lastIter(k, g.layer(k)); li >= 0 {
			visit(g.gemmTask(li, t.I, t.J))
		}
	}
}

// NumDependencies implements Graph.
func (g *ReplicatedLU) NumDependencies(t Task) int {
	l := int(t.L)
	switch t.Kind {
	case GETRF:
		if l > 0 {
			return 1
		}
		return 0
	case TRSMCol, TRSMRow:
		if l > 0 {
			return 2
		}
		return 1
	case GEMMLU, GEMMPart:
		if l-g.c >= 0 {
			return 3
		}
		return 2
	default: // ReduceAdd
		k := min(int(t.I), int(t.J))
		if l == 1 && k < g.c {
			// First combine into a canonical tile the canonical layer never
			// updated: the tile's initial contents are the base value.
			return 1
		}
		return 2
	}
}

// Successors implements Graph.
func (g *ReplicatedLU) Successors(t Task, visit func(Task)) {
	l := int(t.L)
	mt := g.mt
	switch t.Kind {
	case GETRF:
		for i := l + 1; i < mt; i++ {
			visit(Task{Kind: TRSMCol, L: t.L, I: int32(i)})
			visit(Task{Kind: TRSMRow, L: t.L, I: int32(i)})
		}
	case TRSMCol:
		for j := l + 1; j < mt; j++ {
			visit(g.gemmTask(l, t.I, int32(j)))
		}
	case TRSMRow:
		for i := l + 1; i < mt; i++ {
			visit(g.gemmTask(l, int32(i), t.I))
		}
	case GEMMLU, GEMMPart:
		i, j := t.I, t.J
		k := min(int(i), int(j))
		if l+g.c < k {
			visit(g.gemmTask(l+g.c, i, j))
			return
		}
		// Final update of this layer's buffer: hand it to the reduction
		// (or, unreplicated, directly to the tile's panel kernel).
		n := g.nRed(k) + 1
		s := g.memberIndex(k, g.layer(l))
		if s == 0 {
			if n > 1 {
				visit(Task{Kind: ReduceAdd, L: 1, I: i, J: j})
				return
			}
			k32 := int32(k)
			switch {
			case i == k32 && j == k32:
				visit(Task{Kind: GETRF, L: k32, I: k32, J: k32})
			case j == k32:
				visit(Task{Kind: TRSMCol, L: k32, I: i})
			default:
				visit(Task{Kind: TRSMRow, L: k32, I: j})
			}
			return
		}
		if s%2 == 0 && s+1 < n {
			// s's buffer next absorbs its first binomial child.
			visit(Task{Kind: ReduceAdd, L: int32(s + 1), I: i, J: j})
		} else {
			// Leaf member: the buffer ships straight to its parent.
			visit(Task{Kind: ReduceAdd, L: int32(s), I: i, J: j})
		}
	case ReduceAdd:
		s := l
		i, j := t.I, t.J
		k := min(int(i), int(j))
		n := g.nRed(k) + 1
		p := s - s&(-s)
		step := s - p
		if next := p + 2*step; next < n && (p == 0 || 2*step < p&(-p)) {
			visit(Task{Kind: ReduceAdd, L: int32(next), I: i, J: j})
			return
		}
		if p > 0 {
			visit(Task{Kind: ReduceAdd, L: int32(p), I: i, J: j})
			return
		}
		k32 := int32(k)
		switch {
		case i == k32 && j == k32:
			visit(Task{Kind: GETRF, L: k32, I: k32, J: k32})
		case j == k32:
			visit(Task{Kind: TRSMCol, L: k32, I: i})
		default:
			visit(Task{Kind: TRSMRow, L: k32, I: j})
		}
	}
}

// accTile returns the coordinates of layer q's accumulator for tile (i, j).
func (g *ReplicatedLU) accTile(q, i, j int) (int, int) {
	return i, (1+q)*g.mt + j
}

// OutputTile implements Graph.
func (g *ReplicatedLU) OutputTile(t Task) (int, int) {
	switch t.Kind {
	case GETRF:
		return int(t.L), int(t.L)
	case TRSMCol:
		return int(t.I), int(t.L)
	case TRSMRow:
		return int(t.L), int(t.I)
	case GEMMLU:
		return int(t.I), int(t.J)
	case GEMMPart:
		return g.accTile(g.layer(int(t.L)), int(t.I), int(t.J))
	default: // ReduceAdd
		s := int(t.L)
		i, j := int(t.I), int(t.J)
		p := s - s&(-s)
		if p == 0 {
			return i, j
		}
		return g.accTile(g.member(min(i, j), p), i, j)
	}
}

// InputTiles implements Graph.
func (g *ReplicatedLU) InputTiles(t Task, visit func(i, j int)) {
	l := int(t.L)
	switch t.Kind {
	case GETRF:
	case TRSMCol, TRSMRow:
		visit(l, l)
	case GEMMLU, GEMMPart:
		visit(int(t.I), l)
		visit(l, int(t.J))
	case ReduceAdd:
		i, j := int(t.I), int(t.J)
		visit(g.accTile(g.member(min(i, j), l), i, j))
	}
}

// ReducePartial implements ReduceGraph: every accumulator-producing task is
// a partial; only the chain's last writer ever publishes, and its sole
// remote consumer is the combine on the parent member's node.
func (g *ReplicatedLU) ReducePartial(t Task) bool {
	_, j := g.OutputTile(t)
	return j >= g.mt
}

// Flops implements Graph.
func (g *ReplicatedLU) Flops(t Task, b int) float64 {
	switch t.Kind {
	case GETRF:
		return tile.FlopsGetrf(b)
	case TRSMCol, TRSMRow:
		return tile.FlopsTrsm(b)
	case ReduceAdd:
		return tile.FlopsGeadd(b)
	default:
		return tile.FlopsGemm(b)
	}
}

// TotalFlops implements Graph.
func (g *ReplicatedLU) TotalFlops(b int) float64 {
	mt := g.mt
	return float64(mt)*tile.FlopsGetrf(b) +
		2*float64(g.s1[mt])*tile.FlopsTrsm(b) +
		float64(g.s2[mt])*tile.FlopsGemm(b) +
		float64(g.s3[mt])*tile.FlopsGeadd(b)
}

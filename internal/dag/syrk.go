package dag

import (
	"fmt"

	"anybc/internal/tile"
)

// SYRK-operation task kinds. The paper recalls (Section II-A) that the SBC
// distribution was designed for the symmetric kernels — Cholesky *and* the
// symmetric rank-k update C = A·Aᵀ — so this graph lets the same
// distributions be evaluated on the second kernel.
const (
	// AInit publishes input tile A[i][k] from its owner (no arithmetic);
	// it models the initial distribution of A feeding the update sweeps.
	AInit Kind = iota + 16
	// SYRKUpd accumulates C[i][i] += A[i][k]·A[i][k]ᵀ.
	SYRKUpd
	// GEMMUpd accumulates C[i][j] += A[i][k]·A[j][k]ᵀ (j < i).
	GEMMUpd
)

// SYRKOp is the task graph of the tiled symmetric rank-k update
// C = C + A·Aᵀ, with C an mt×mt symmetric matrix (lower storage) and A an
// mt×kt tile matrix. C tiles live at coordinates (i, j), j ≤ i < mt; A tiles
// are addressed as virtual columns: A[i][k] is tile (i, mt+k).
//
// Under the owner-computes rule, A[i][k] must reach the owners of row i and
// column i of C — a colrow communication pattern, which is exactly why
// symmetric distributions (SBC, GCR&M) beat 2DBC on this kernel: the
// per-sweep volume is proportional to z̄ − 1.
type SYRKOp struct {
	mt, kt int
	// id layout: AInit (mt·kt), then SYRKUpd (mt·kt), then GEMMUpd
	// (mt(mt-1)/2 · kt).
	syrkBase, gemmBase int
}

// NewSYRKOp builds the SYRK task graph.
func NewSYRKOp(mt, kt int) *SYRKOp {
	if mt <= 0 || kt <= 0 {
		panic(fmt.Sprintf("dag: invalid SYRK shape mt=%d kt=%d", mt, kt))
	}
	g := &SYRKOp{mt: mt, kt: kt}
	g.syrkBase = mt * kt
	g.gemmBase = g.syrkBase + mt*kt
	return g
}

// Name implements Graph.
func (g *SYRKOp) Name() string { return "SYRK" }

// Tiles implements Graph (the C dimension).
func (g *SYRKOp) Tiles() int { return g.mt }

// Panels returns kt, the number of A tile columns.
func (g *SYRKOp) Panels() int { return g.kt }

// NumTasks implements Graph.
func (g *SYRKOp) NumTasks() int { return g.gemmBase + g.mt*(g.mt-1)/2*g.kt }

// ID implements Graph. GEMMUpd tasks store (i, j) in I/J and the sweep k in
// L; AInit and SYRKUpd store the row in I and the sweep in L.
func (g *SYRKOp) ID(t Task) int {
	i, j, k := int(t.I), int(t.J), int(t.L)
	switch t.Kind {
	case AInit:
		return i*g.kt + k
	case SYRKUpd:
		return g.syrkBase + i*g.kt + k
	case GEMMUpd:
		return g.gemmBase + (i*(i-1)/2+j)*g.kt + k
	default:
		panic(fmt.Sprintf("dag: task %v is not a SYRK task", t))
	}
}

// TaskOf implements Graph.
func (g *SYRKOp) TaskOf(id int) Task {
	switch {
	case id < g.syrkBase:
		return Task{Kind: AInit, L: int32(id % g.kt), I: int32(id / g.kt)}
	case id < g.gemmBase:
		rel := id - g.syrkBase
		return Task{Kind: SYRKUpd, L: int32(rel % g.kt), I: int32(rel / g.kt)}
	default:
		rel := id - g.gemmBase
		k := rel % g.kt
		cell := rel / g.kt
		i := 1
		for (i+1)*i/2 <= cell {
			i++
		}
		j := cell - i*(i-1)/2
		return Task{Kind: GEMMUpd, L: int32(k), I: int32(i), J: int32(j)}
	}
}

// Dependencies implements Graph.
func (g *SYRKOp) Dependencies(t Task, visit func(Task)) {
	i, j, k := t.I, t.J, t.L
	switch t.Kind {
	case AInit:
	case SYRKUpd:
		visit(Task{Kind: AInit, L: k, I: i})
		if k > 0 {
			visit(Task{Kind: SYRKUpd, L: k - 1, I: i})
		}
	case GEMMUpd:
		visit(Task{Kind: AInit, L: k, I: i})
		visit(Task{Kind: AInit, L: k, I: j})
		if k > 0 {
			visit(Task{Kind: GEMMUpd, L: k - 1, I: i, J: j})
		}
	}
}

// NumDependencies implements Graph.
func (g *SYRKOp) NumDependencies(t Task) int {
	switch t.Kind {
	case AInit:
		return 0
	case SYRKUpd:
		if t.L > 0 {
			return 2
		}
		return 1
	default:
		if t.L > 0 {
			return 3
		}
		return 2
	}
}

// Successors implements Graph.
func (g *SYRKOp) Successors(t Task, visit func(Task)) {
	i, j, k := t.I, t.J, t.L
	switch t.Kind {
	case AInit:
		visit(Task{Kind: SYRKUpd, L: k, I: i})
		for j2 := int32(0); j2 < i; j2++ {
			visit(Task{Kind: GEMMUpd, L: k, I: i, J: j2})
		}
		for i2 := i + 1; int(i2) < g.mt; i2++ {
			visit(Task{Kind: GEMMUpd, L: k, I: i2, J: i})
		}
	case SYRKUpd:
		if int(k) < g.kt-1 {
			visit(Task{Kind: SYRKUpd, L: k + 1, I: i})
		}
	case GEMMUpd:
		if int(k) < g.kt-1 {
			visit(Task{Kind: GEMMUpd, L: k + 1, I: i, J: j})
		}
	}
}

// OutputTile implements Graph. AInit "writes" its A tile (publishing it);
// the updates write C tiles.
func (g *SYRKOp) OutputTile(t Task) (int, int) {
	switch t.Kind {
	case AInit:
		return int(t.I), g.mt + int(t.L)
	case SYRKUpd:
		return int(t.I), int(t.I)
	default:
		return int(t.I), int(t.J)
	}
}

// InputTiles implements Graph.
func (g *SYRKOp) InputTiles(t Task, visit func(i, j int)) {
	switch t.Kind {
	case AInit:
	case SYRKUpd:
		visit(int(t.I), g.mt+int(t.L))
	default:
		visit(int(t.I), g.mt+int(t.L))
		visit(int(t.J), g.mt+int(t.L))
	}
}

// Flops implements Graph.
func (g *SYRKOp) Flops(t Task, b int) float64 {
	switch t.Kind {
	case AInit:
		return 0
	case SYRKUpd:
		return tile.FlopsSyrk(b)
	default:
		return tile.FlopsGemm(b)
	}
}

// TotalFlops implements Graph.
func (g *SYRKOp) TotalFlops(b int) float64 {
	return float64(g.mt*g.kt)*tile.FlopsSyrk(b) +
		float64(g.mt*(g.mt-1)/2*g.kt)*tile.FlopsGemm(b)
}

package dag

import (
	"fmt"
	"testing"
)

func TestSYRKNumTasks(t *testing.T) {
	for mt := 1; mt <= 8; mt++ {
		for kt := 1; kt <= 5; kt++ {
			g := NewSYRKOp(mt, kt)
			want := mt*kt + mt*kt + mt*(mt-1)/2*kt
			if got := g.NumTasks(); got != want {
				t.Errorf("SYRK(%d,%d): NumTasks = %d, want %d", mt, kt, got, want)
			}
		}
	}
}

func TestSYRKIDRoundtrip(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {3, 2}, {5, 4}, {6, 1}} {
		g := NewSYRKOp(shape[0], shape[1])
		seen := make([]bool, g.NumTasks())
		n := 0
		ForEachTask(g, func(task Task) {
			id := g.ID(task)
			if id < 0 || id >= g.NumTasks() || seen[id] {
				t.Fatalf("SYRK%v: bad/dup id %d for %v", shape, id, task)
			}
			seen[id] = true
			if back := g.TaskOf(id); back != task {
				t.Fatalf("SYRK%v: TaskOf(ID(%v)) = %v", shape, task, back)
			}
			n++
		})
		if n != g.NumTasks() {
			t.Fatalf("SYRK%v: visited %d of %d", shape, n, g.NumTasks())
		}
	}
}

func TestSYRKEdgesConsistent(t *testing.T) {
	g := NewSYRKOp(5, 3)
	succ := map[string]bool{}
	ForEachTask(g, func(task Task) {
		g.Successors(task, func(s Task) { succ[fmt.Sprint(task, "->", s)] = true })
	})
	deps := map[string]bool{}
	visited := make([]bool, g.NumTasks())
	ForEachTask(g, func(task Task) {
		n := 0
		g.Dependencies(task, func(d Task) {
			n++
			deps[fmt.Sprint(d, "->", task)] = true
			if !visited[g.ID(d)] {
				t.Fatalf("%v before dependency %v", task, d)
			}
		})
		if g.NumDependencies(task) != n {
			t.Fatalf("NumDependencies(%v) = %d, want %d", task, g.NumDependencies(task), n)
		}
		visited[g.ID(task)] = true
	})
	if len(succ) != len(deps) {
		t.Fatalf("%d successor edges vs %d dependency edges", len(succ), len(deps))
	}
	for e := range deps {
		if !succ[e] {
			t.Fatalf("edge %s missing from successors", e)
		}
	}
}

func TestSYRKFlops(t *testing.T) {
	g := NewSYRKOp(4, 3)
	sum := 0.0
	ForEachTask(g, func(task Task) { sum += g.Flops(task, 7) })
	total := g.TotalFlops(7)
	if d := total - sum; d > 1e-9*total || d < -1e-9*total {
		t.Errorf("TotalFlops %v != sum %v", total, sum)
	}
	// SYRK of an m×n A costs ~m²n flops: mt=4, kt=3, b=7 → m=28, n=21.
	m, n := 28.0, 21.0
	if ratio := total / (m * m * n); ratio < 0.8 || ratio > 1.3 {
		t.Errorf("flop asymptotics off: ratio %v", ratio)
	}
}

// TestSYRKCommScalesWithColrow: the per-sweep communication under a
// symmetric distribution is proportional to z̄ − 1, so SBC must communicate
// less than the best 2DBC for equal node counts.
func TestSYRKCommScalesWithColrow(t *testing.T) {
	g := NewSYRKOp(24, 4)
	// P=10: SBC pair (r=5, z̄=4) vs 2DBC 5x2 (colrow cost 5+2-1=6).
	sbcOwner := newSBCOwner()
	dbc := func(i, j int) int { return (i%5)*2 + j%2 }
	vSBC := CommVolumeTiles(g, sbcOwner)
	vDBC := CommVolumeTiles(g, dbc)
	if vSBC >= vDBC {
		t.Errorf("SBC volume %d not below 2DBC volume %d", vSBC, vDBC)
	}
}

// newSBCOwner builds the r=5 SBC pair owner map (P=10) inline to avoid a
// dependency cycle with package dist.
func newSBCOwner() func(i, j int) int {
	r := 5
	pair := func(i, j int) int {
		if i > j {
			i, j = j, i
		}
		return i*(2*r-i-1)/2 + (j - i - 1)
	}
	return func(i, j int) int {
		ci, cj := i%r, j%r
		if ci == cj {
			// Diagonal cells: any colrow node; pick pair {ci, (ci+1)%r}.
			return pair(ci, (ci+1)%r)
		}
		return pair(ci, cj)
	}
}

func TestSYRKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSYRKOp(0,1) did not panic")
		}
	}()
	NewSYRKOp(0, 1)
}

package dag

// ForEachTask visits every task of the graph in a valid topological order
// (increasing iteration ℓ, panel kernels before updates within an
// iteration). Dependencies always point from earlier-visited tasks to
// later-visited ones.
func ForEachTask(g Graph, visit func(Task)) {
	mt := g.Tiles()
	switch gg := g.(type) {
	case *LUSolve:
		ForEachTask(gg.LU, visit)
		forEachSolveTask(mt, visit)
		return
	case *CholeskySolve:
		ForEachTask(gg.Cholesky, visit)
		forEachSolveTask(mt, visit)
		return
	case *GEMMOp:
		for i := 0; i < gg.mt; i++ {
			for k := 0; k < gg.kt; k++ {
				visit(Task{Kind: GemmA, L: int32(k), I: int32(i)})
			}
		}
		for k := 0; k < gg.kt; k++ {
			for j := 0; j < gg.nt; j++ {
				visit(Task{Kind: GemmB, L: int32(k), J: int32(j)})
			}
		}
		for k := 0; k < gg.kt; k++ {
			for i := 0; i < gg.mt; i++ {
				for j := 0; j < gg.nt; j++ {
					visit(Task{Kind: GemmUpd, L: int32(k), I: int32(i), J: int32(j)})
				}
			}
		}
		return
	case *SYRKOp:
		for i := 0; i < mt; i++ {
			for k := 0; k < gg.kt; k++ {
				visit(Task{Kind: AInit, L: int32(k), I: int32(i)})
			}
		}
		for k := 0; k < gg.kt; k++ {
			for i := 0; i < mt; i++ {
				visit(Task{Kind: SYRKUpd, L: int32(k), I: int32(i)})
				for j := 0; j < i; j++ {
					visit(Task{Kind: GEMMUpd, L: int32(k), I: int32(i), J: int32(j)})
				}
			}
		}
		return
	case *LU:
		for l := 0; l < mt; l++ {
			l32 := int32(l)
			visit(Task{Kind: GETRF, L: l32, I: l32, J: l32})
			for i := l + 1; i < mt; i++ {
				visit(Task{Kind: TRSMCol, L: l32, I: int32(i)})
				visit(Task{Kind: TRSMRow, L: l32, I: int32(i)})
			}
			for i := l + 1; i < mt; i++ {
				for j := l + 1; j < mt; j++ {
					visit(Task{Kind: GEMMLU, L: l32, I: int32(i), J: int32(j)})
				}
			}
		}
	case *ReplicatedLU:
		// Per iteration: first the reductions finalizing the panel's tiles
		// (they consume earlier iterations' partial updates), then the panel
		// kernels, then the trailing updates. Within one tile's reduction
		// group, deeper binomial members combine before their parents
		// (depth = popcount of the member index) and siblings ascend.
		redOrder := func(n int) []int {
			order := make([]int, 0, n-1)
			for depth := 31; depth > 0; depth-- {
				for s := 1; s < n; s++ {
					if popcount(s) == depth {
						order = append(order, s)
					}
				}
			}
			return order
		}
		forTile := func(k int, visitTile func(i, j int)) {
			visitTile(k, k)
			for i := k + 1; i < mt; i++ {
				visitTile(i, k)
			}
			for j := k + 1; j < mt; j++ {
				visitTile(k, j)
			}
		}
		for l := 0; l < mt; l++ {
			l32 := int32(l)
			if n := gg.nRed(l) + 1; n > 1 {
				order := redOrder(n)
				forTile(l, func(i, j int) {
					for _, s := range order {
						visit(Task{Kind: ReduceAdd, L: int32(s), I: int32(i), J: int32(j)})
					}
				})
			}
			visit(Task{Kind: GETRF, L: l32, I: l32, J: l32})
			for i := l + 1; i < mt; i++ {
				visit(Task{Kind: TRSMCol, L: l32, I: int32(i)})
				visit(Task{Kind: TRSMRow, L: l32, I: int32(i)})
			}
			for i := l + 1; i < mt; i++ {
				for j := l + 1; j < mt; j++ {
					visit(gg.gemmTask(l, int32(i), int32(j)))
				}
			}
		}
		return
	case *CholeskyLeft:
		for k := 0; k < mt; k++ {
			k32 := int32(k)
			for j := 0; j < k; j++ {
				visit(Task{Kind: SYRK, L: int32(j), I: k32})
			}
			visit(Task{Kind: POTRF, L: k32, I: k32, J: k32})
			for i := k + 1; i < mt; i++ {
				for j := 0; j < k; j++ {
					visit(Task{Kind: GEMMChol, L: int32(j), I: int32(i), J: k32})
				}
				visit(Task{Kind: TRSMChol, L: k32, I: int32(i)})
			}
		}
		return
	case *Cholesky:
		for l := 0; l < mt; l++ {
			l32 := int32(l)
			visit(Task{Kind: POTRF, L: l32, I: l32, J: l32})
			for i := l + 1; i < mt; i++ {
				visit(Task{Kind: TRSMChol, L: l32, I: int32(i)})
			}
			for i := l + 1; i < mt; i++ {
				visit(Task{Kind: SYRK, L: l32, I: int32(i)})
				for j := l + 1; j < i; j++ {
					visit(Task{Kind: GEMMChol, L: l32, I: int32(i), J: int32(j)})
				}
			}
		}
	default:
		// Generic fallback: ids in increasing order are topological for the
		// built-in graphs; external graphs must guarantee the same.
		for id := 0; id < g.NumTasks(); id++ {
			visit(g.TaskOf(id))
		}
	}
}

// popcount returns the number of set bits — the depth of a member in the
// binomial reduce tree (each parent hop strips the lowest set bit).
func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// forEachSolveTask visits the solve-phase tasks in topological order:
// forward substitution by increasing RHS row, then backward substitution by
// decreasing row.
func forEachSolveTask(mt int, visit func(Task)) {
	for i := 0; i < mt; i++ {
		for j := 0; j < i; j++ {
			visit(Task{Kind: FGEMM, L: int32(j), I: int32(i), J: int32(j)})
		}
		visit(Task{Kind: FTRSM, L: int32(i), I: int32(i)})
	}
	for i := mt - 1; i >= 0; i-- {
		visit(Task{Kind: BCOPY, L: int32(i), I: int32(i)})
		for j := mt - 1; j > i; j-- {
			visit(Task{Kind: BGEMM, L: int32(j), I: int32(i), J: int32(j)})
		}
		visit(Task{Kind: BTRSM, L: int32(i), I: int32(i)})
	}
}

// CriticalPathFlops returns the longest dependency-path weight through the
// graph, with each task weighted by its flop count for tile size b. Dividing
// TotalFlops by this value bounds the achievable parallel speedup.
func CriticalPathFlops(g Graph, b int) float64 {
	longest := make([]float64, g.NumTasks())
	cp := 0.0
	ForEachTask(g, func(t Task) {
		best := 0.0
		g.Dependencies(t, func(d Task) {
			if v := longest[g.ID(d)]; v > best {
				best = v
			}
		})
		v := best + g.Flops(t, b)
		longest[g.ID(t)] = v
		if v > cp {
			cp = v
		}
	})
	return cp
}

// CriticalPathLength returns the longest path measured in task count.
func CriticalPathLength(g Graph) int {
	longest := make([]int32, g.NumTasks())
	cp := int32(0)
	ForEachTask(g, func(t Task) {
		best := int32(0)
		g.Dependencies(t, func(d Task) {
			if v := longest[g.ID(d)]; v > best {
				best = v
			}
		})
		v := best + 1
		longest[g.ID(t)] = v
		if v > cp {
			cp = v
		}
	})
	return int(cp)
}

// CommVolumeTiles returns the exact number of tile transfers the
// owner-computes rule induces for graph g under the tile→node map owner:
// for every task output consumed by tasks on other nodes, the tile version
// is sent once per distinct remote consumer node. This is the measured
// counterpart of the paper's Equations (1) and (2).
func CommVolumeTiles(g Graph, owner func(i, j int) int) int64 {
	var volume int64
	seen := map[int]struct{}{}
	ForEachTask(g, func(t Task) {
		oi, oj := g.OutputTile(t)
		src := owner(oi, oj)
		for k := range seen {
			delete(seen, k)
		}
		g.Successors(t, func(s Task) {
			si, sj := g.OutputTile(s)
			dst := owner(si, sj)
			if dst != src {
				seen[dst] = struct{}{}
			}
		})
		volume += int64(len(seen))
	})
	return volume
}

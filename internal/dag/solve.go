package dag

import "fmt"

// Solve-phase task kinds, shared by the LU and Cholesky factor-and-solve
// graphs. The right-hand side B (one b×nrhs tile per tile row) is addressed
// as virtual tile column mt: the forward-phase value Y[i] lives at tile
// (i, mt) and the backward-phase value X[i] at tile (i, mt+1), so each tile
// version is published exactly once (after FTRSM(i) and BTRSM(i)
// respectively), matching the runtime's one-version-per-tile protocol.
const (
	// FTRSM solves the diagonal block of the forward substitution on RHS
	// tile i.
	FTRSM Kind = iota + 8
	// FGEMM applies the forward update Y[i] -= A[i][j]·Y[j] (j < i).
	FGEMM
	// BCOPY seeds the backward phase: X[i] := Y[i].
	BCOPY
	// BGEMM applies the backward update X[i] -= U[i][j]·X[j] (LU, j > i) or
	// X[i] -= L[j][i]ᵀ·X[j] (Cholesky).
	BGEMM
	// BTRSM solves the diagonal block of the backward substitution.
	BTRSM
)

func solveKindString(k Kind) (string, bool) {
	switch k {
	case FTRSM:
		return "FTRSM", true
	case FGEMM:
		return "FGEMM", true
	case BCOPY:
		return "BCOPY", true
	case BGEMM:
		return "BGEMM", true
	case BTRSM:
		return "BTRSM", true
	}
	return "", false
}

// solveLayout holds the dense-id layout of the solve phase appended after a
// base factorization graph.
type solveLayout struct {
	mt   int
	nrhs int
	base int // NumTasks of the base graph
	// Bases of the five solve segments.
	ftrsmBase, fgemmBase, bcopyBase, bgemmBase, btrsmBase int
	s1                                                    []int // Σ_{k<i} (mt-1-k), for BGEMM row offsets
	total                                                 int
}

func newSolveLayout(mt, nrhs, base int) solveLayout {
	if nrhs <= 0 {
		panic(fmt.Sprintf("dag: invalid nrhs %d", nrhs))
	}
	half := mt * (mt - 1) / 2
	l := solveLayout{mt: mt, nrhs: nrhs, base: base, s1: make([]int, mt+1)}
	for i := 0; i < mt; i++ {
		l.s1[i+1] = l.s1[i] + mt - 1 - i
	}
	l.ftrsmBase = base
	l.fgemmBase = l.ftrsmBase + mt
	l.bcopyBase = l.fgemmBase + half
	l.bgemmBase = l.bcopyBase + mt
	l.btrsmBase = l.bgemmBase + half
	l.total = l.btrsmBase + mt
	return l
}

func (l *solveLayout) numTasks() int { return l.total }

func (l *solveLayout) id(t Task) int {
	i, j := int(t.I), int(t.J)
	switch t.Kind {
	case FTRSM:
		return l.ftrsmBase + i
	case FGEMM: // j < i, ordered by i then j
		return l.fgemmBase + i*(i-1)/2 + j
	case BCOPY:
		return l.bcopyBase + i
	case BGEMM: // j > i, ordered by i then j
		return l.bgemmBase + l.s1[i] + j - i - 1
	case BTRSM:
		return l.btrsmBase + i
	default:
		panic(fmt.Sprintf("dag: %v is not a solve task", t))
	}
}

func (l *solveLayout) taskOf(id int) Task {
	switch {
	case id < l.fgemmBase:
		i := id - l.ftrsmBase
		return Task{Kind: FTRSM, L: int32(i), I: int32(i)}
	case id < l.bcopyBase:
		rel := id - l.fgemmBase
		i := 1
		for (i+1)*i/2 <= rel {
			i++
		}
		j := rel - i*(i-1)/2
		return Task{Kind: FGEMM, L: int32(j), I: int32(i), J: int32(j)}
	case id < l.bgemmBase:
		i := id - l.bcopyBase
		return Task{Kind: BCOPY, L: int32(i), I: int32(i)}
	case id < l.btrsmBase:
		rel := id - l.bgemmBase
		lo, hi := 0, l.mt
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if l.s1[mid] <= rel {
				lo = mid
			} else {
				hi = mid
			}
		}
		i := lo
		j := rel - l.s1[i] + i + 1
		return Task{Kind: BGEMM, L: int32(j), I: int32(i), J: int32(j)}
	default:
		i := id - l.btrsmBase
		return Task{Kind: BTRSM, L: int32(i), I: int32(i)}
	}
}

// outputTile returns the RHS tile a solve task writes.
func (l *solveLayout) outputTile(t Task) (int, int) {
	switch t.Kind {
	case FTRSM, FGEMM:
		return int(t.I), l.mt
	default:
		return int(t.I), l.mt + 1
	}
}

func (l *solveLayout) numDeps(t Task) int {
	i, j := int(t.I), int(t.J)
	switch t.Kind {
	case FTRSM:
		if i > 0 {
			return 2 // fact(i) + FGEMM(i, i-1)
		}
		return 1
	case FGEMM:
		if j > 0 {
			return 3 // FTRSM(j) + panel(i,j) + FGEMM(i, j-1)
		}
		return 2
	case BCOPY:
		return 1
	case BGEMM:
		return 3 // BTRSM(j) + panel + chain (BGEMM(i,j+1) or BCOPY(i))
	default: // BTRSM
		return 2 // fact(i) + chain (BGEMM(i,i+1) or BCOPY(i))
	}
}

func (l *solveLayout) flops(t Task, b int) float64 {
	bb := float64(b) * float64(b) * float64(l.nrhs)
	switch t.Kind {
	case FTRSM, BTRSM:
		return bb
	case FGEMM, BGEMM:
		return 2 * bb
	default: // BCOPY moves data but does no arithmetic
		return 0
	}
}

func (l *solveLayout) totalFlops(b int) float64 {
	bb := float64(b) * float64(b) * float64(l.nrhs)
	half := float64(l.mt * (l.mt - 1) / 2)
	return 2*float64(l.mt)*bb + 2*half*2*bb
}

// LUSolve is the combined graph of an LU factorization followed by the
// forward and backward substitutions for nrhs right-hand-side columns: the
// full distributed solution of A·X = B under one owner-computes schedule.
// RHS tile i is owned by the owner of diagonal tile (i, i); wrap the matrix
// distribution accordingly (see runtime.SolveLU).
type LUSolve struct {
	*LU
	lay solveLayout
}

// NewLUSolve builds the factor-and-solve graph for an mt×mt tile matrix and
// nrhs right-hand-side columns.
func NewLUSolve(mt, nrhs int) *LUSolve {
	base := NewLU(mt)
	return &LUSolve{LU: base, lay: newSolveLayout(mt, nrhs, base.NumTasks())}
}

// Name implements Graph.
func (g *LUSolve) Name() string { return "LU+solve" }

// NumTasks implements Graph.
func (g *LUSolve) NumTasks() int { return g.lay.numTasks() }

// NRHS returns the number of right-hand-side columns.
func (g *LUSolve) NRHS() int { return g.lay.nrhs }

// ID implements Graph.
func (g *LUSolve) ID(t Task) int {
	if t.Kind < FTRSM {
		return g.LU.ID(t)
	}
	return g.lay.id(t)
}

// TaskOf implements Graph.
func (g *LUSolve) TaskOf(id int) Task {
	if id < g.lay.base {
		return g.LU.TaskOf(id)
	}
	return g.lay.taskOf(id)
}

// Dependencies implements Graph.
func (g *LUSolve) Dependencies(t Task, visit func(Task)) {
	mt := g.lay.mt
	i, j := t.I, t.J
	switch t.Kind {
	case FTRSM:
		visit(Task{Kind: GETRF, L: i, I: i, J: i})
		if i > 0 {
			visit(Task{Kind: FGEMM, L: i - 1, I: i, J: i - 1})
		}
	case FGEMM:
		visit(Task{Kind: FTRSM, L: j, I: j})
		visit(Task{Kind: TRSMCol, L: j, I: i}) // produces matrix tile (i, j)
		if j > 0 {
			visit(Task{Kind: FGEMM, L: j - 1, I: i, J: j - 1})
		}
	case BCOPY:
		visit(Task{Kind: FTRSM, L: i, I: i})
	case BGEMM:
		visit(Task{Kind: BTRSM, L: j, I: j})
		visit(Task{Kind: TRSMRow, L: i, I: j}) // produces matrix tile (i, j)
		if int(j) < mt-1 {
			visit(Task{Kind: BGEMM, L: j + 1, I: i, J: j + 1})
		} else {
			visit(Task{Kind: BCOPY, L: i, I: i})
		}
	case BTRSM:
		visit(Task{Kind: GETRF, L: i, I: i, J: i})
		if int(i) < mt-1 {
			visit(Task{Kind: BGEMM, L: i + 1, I: i, J: i + 1})
		} else {
			visit(Task{Kind: BCOPY, L: i, I: i})
		}
	default:
		g.LU.Dependencies(t, visit)
	}
}

// NumDependencies implements Graph.
func (g *LUSolve) NumDependencies(t Task) int {
	if t.Kind < FTRSM {
		return g.LU.NumDependencies(t)
	}
	return g.lay.numDeps(t)
}

// Successors implements Graph.
func (g *LUSolve) Successors(t Task, visit func(Task)) {
	mt := g.lay.mt
	switch t.Kind {
	case GETRF:
		g.LU.Successors(t, visit)
		visit(Task{Kind: FTRSM, L: t.L, I: t.L})
		visit(Task{Kind: BTRSM, L: t.L, I: t.L})
	case TRSMCol:
		g.LU.Successors(t, visit)
		visit(Task{Kind: FGEMM, L: t.L, I: t.I, J: t.L})
	case TRSMRow:
		g.LU.Successors(t, visit)
		visit(Task{Kind: BGEMM, L: t.I, I: t.L, J: t.I})
	case GEMMLU:
		g.LU.Successors(t, visit)
	case FTRSM:
		i := int(t.I)
		for i2 := i + 1; i2 < mt; i2++ {
			visit(Task{Kind: FGEMM, L: t.I, I: int32(i2), J: t.I})
		}
		visit(Task{Kind: BCOPY, L: t.I, I: t.I})
	case FGEMM:
		if int(t.J)+1 < int(t.I) {
			visit(Task{Kind: FGEMM, L: t.J + 1, I: t.I, J: t.J + 1})
		} else {
			visit(Task{Kind: FTRSM, L: t.I, I: t.I})
		}
	case BCOPY:
		if int(t.I) < mt-1 {
			visit(Task{Kind: BGEMM, L: int32(mt - 1), I: t.I, J: int32(mt - 1)})
		} else {
			visit(Task{Kind: BTRSM, L: t.I, I: t.I})
		}
	case BGEMM:
		if int(t.J)-1 > int(t.I) {
			visit(Task{Kind: BGEMM, L: t.J - 1, I: t.I, J: t.J - 1})
		} else {
			visit(Task{Kind: BTRSM, L: t.I, I: t.I})
		}
	case BTRSM:
		j := int(t.I)
		for i := 0; i < j; i++ {
			visit(Task{Kind: BGEMM, L: t.I, I: int32(i), J: t.I})
		}
	}
}

// OutputTile implements Graph.
func (g *LUSolve) OutputTile(t Task) (int, int) {
	if t.Kind < FTRSM {
		return g.LU.OutputTile(t)
	}
	return g.lay.outputTile(t)
}

// InputTiles implements Graph.
func (g *LUSolve) InputTiles(t Task, visit func(i, j int)) {
	mt := g.lay.mt
	i, j := int(t.I), int(t.J)
	switch t.Kind {
	case FTRSM, BTRSM:
		visit(i, i)
	case FGEMM:
		visit(i, j)
		visit(j, mt)
	case BCOPY:
		visit(i, mt)
	case BGEMM:
		visit(i, j)
		visit(j, mt+1)
	default:
		g.LU.InputTiles(t, visit)
	}
}

// Flops implements Graph.
func (g *LUSolve) Flops(t Task, b int) float64 {
	if t.Kind < FTRSM {
		return g.LU.Flops(t, b)
	}
	return g.lay.flops(t, b)
}

// TotalFlops implements Graph.
func (g *LUSolve) TotalFlops(b int) float64 {
	return g.LU.TotalFlops(b) + g.lay.totalFlops(b)
}

// OutputBytes implements SizedGraph: RHS tiles are b×nrhs, matrix tiles b×b.
func (g *LUSolve) OutputBytes(t Task, b int) int {
	if t.Kind >= FTRSM {
		return 8 * b * g.lay.nrhs
	}
	return 8 * b * b
}

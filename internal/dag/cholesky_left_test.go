package dag

import (
	"fmt"
	"math/rand"
	"testing"

	"anybc/internal/matrix"
)

func TestCholeskyLeftNumTasks(t *testing.T) {
	for mt := 1; mt <= 10; mt++ {
		l := NewCholeskyLeft(mt)
		r := NewCholesky(mt)
		if l.NumTasks() != r.NumTasks() {
			t.Errorf("mt=%d: left %d tasks, right %d", mt, l.NumTasks(), r.NumTasks())
		}
		if l.TotalFlops(8) != r.TotalFlops(8) {
			t.Errorf("mt=%d: flop totals differ", mt)
		}
	}
}

func TestCholeskyLeftIDRoundtrip(t *testing.T) {
	for mt := 1; mt <= 9; mt++ {
		g := NewCholeskyLeft(mt)
		seen := make([]bool, g.NumTasks())
		n := 0
		ForEachTask(g, func(task Task) {
			id := g.ID(task)
			if id < 0 || id >= g.NumTasks() || seen[id] {
				t.Fatalf("mt=%d: bad/dup id %d for %v", mt, id, task)
			}
			seen[id] = true
			if back := g.TaskOf(id); back != task {
				t.Fatalf("mt=%d: TaskOf(ID(%v)) = %v", mt, task, back)
			}
			n++
		})
		if n != g.NumTasks() {
			t.Fatalf("mt=%d: visited %d of %d", mt, n, g.NumTasks())
		}
	}
}

func TestCholeskyLeftEdges(t *testing.T) {
	for mt := 1; mt <= 7; mt++ {
		g := NewCholeskyLeft(mt)
		succ := map[string]bool{}
		ForEachTask(g, func(task Task) {
			g.Successors(task, func(s Task) { succ[fmt.Sprint(task, "->", s)] = true })
		})
		visited := make([]bool, g.NumTasks())
		deps := 0
		ForEachTask(g, func(task Task) {
			n := 0
			g.Dependencies(task, func(d Task) {
				n++
				deps++
				if !succ[fmt.Sprint(d, "->", task)] {
					t.Fatalf("mt=%d: dep edge %v->%v missing from successors", mt, d, task)
				}
				if !visited[g.ID(d)] {
					t.Fatalf("mt=%d: %v before dependency %v", mt, task, d)
				}
			})
			if g.NumDependencies(task) != n {
				t.Fatalf("mt=%d: NumDependencies(%v) = %d, want %d",
					mt, task, g.NumDependencies(task), n)
			}
			visited[g.ID(task)] = true
		})
		if deps != len(succ) {
			t.Fatalf("mt=%d: %d dep edges vs %d succ edges", mt, deps, len(succ))
		}
	}
}

// TestCholeskyLeftExecutesBitwiseEqual: left- and right-looking variants
// apply the same updates to each tile in the same order, so random-order
// executions of both graphs must agree bitwise.
func TestCholeskyLeftExecutesBitwiseEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, mt := range []int{1, 2, 3, 6, 9} {
		const b = 5
		right := matrix.NewSPD(mt, b, int64(mt))
		runRandomOrder(t, NewCholesky(mt), rng, func(task Task) error { return applyChol(right, task) })

		left := matrix.NewSPD(mt, b, int64(mt))
		runRandomOrder(t, NewCholeskyLeft(mt), rng, func(task Task) error { return applyChol(left, task) })

		for i := 0; i < mt; i++ {
			for j := 0; j <= i; j++ {
				if !left.Tile(i, j).EqualApprox(right.Tile(i, j), 0) {
					t.Fatalf("mt=%d: tile (%d,%d) differs between variants", mt, i, j)
				}
			}
		}
	}
}

// TestCholeskyLeftCommVolumeEqualsRight: the owner-computes communication
// volume is variant-independent (each panel tile reaches the same consumer
// set either way).
func TestCholeskyLeftCommVolumeEqualsRight(t *testing.T) {
	owner := func(i, j int) int { return (i%3)*2 + j%2 }
	for _, mt := range []int{4, 8, 15} {
		l := CommVolumeTiles(NewCholeskyLeft(mt), owner)
		r := CommVolumeTiles(NewCholesky(mt), owner)
		if l != r {
			t.Errorf("mt=%d: left volume %d != right volume %d", mt, l, r)
		}
	}
}

// TestCholeskyLeftCriticalPathLonger: the left-looking variant serializes
// each column's updates, so its critical path is at least the right-looking
// one.
func TestCholeskyLeftCriticalPathLonger(t *testing.T) {
	for _, mt := range []int{4, 8, 12} {
		l := CriticalPathLength(NewCholeskyLeft(mt))
		r := CriticalPathLength(NewCholesky(mt))
		if l < r {
			t.Errorf("mt=%d: left critical path %d shorter than right %d", mt, l, r)
		}
	}
}

func TestCholeskyLeftPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCholeskyLeft(0) did not panic")
		}
	}()
	NewCholeskyLeft(0)
}

package dag

import (
	"fmt"
	"math"
	"testing"
)

func replicatedCases() []struct{ mt, c int } {
	return []struct{ mt, c int }{
		{1, 1}, {1, 3}, {2, 2}, {3, 2}, {4, 2}, {5, 2},
		{4, 3}, {5, 3}, {6, 3}, {4, 4}, {6, 4}, {7, 4},
		{3, 5}, {8, 2}, {8, 4},
	}
}

func TestReplicatedIDRoundtrip(t *testing.T) {
	for _, tc := range replicatedCases() {
		g := NewReplicatedLU(tc.mt, tc.c)
		seen := make([]bool, g.NumTasks())
		count := 0
		ForEachTask(g, func(task Task) {
			count++
			id := g.ID(task)
			if id < 0 || id >= g.NumTasks() {
				t.Fatalf("%s mt=%d: id %d out of range for %v", g.Name(), tc.mt, id, task)
			}
			if seen[id] {
				t.Fatalf("%s mt=%d: id %d assigned twice (%v)", g.Name(), tc.mt, id, task)
			}
			seen[id] = true
			if back := g.TaskOf(id); back != task {
				t.Fatalf("%s mt=%d: TaskOf(ID(%v)) = %v", g.Name(), tc.mt, task, back)
			}
		})
		if count != g.NumTasks() {
			t.Fatalf("%s mt=%d: ForEachTask visited %d of %d tasks",
				g.Name(), tc.mt, count, g.NumTasks())
		}
	}
}

func TestReplicatedDepsSuccsAreInverse(t *testing.T) {
	for _, tc := range replicatedCases() {
		g := NewReplicatedLU(tc.mt, tc.c)
		succOf := map[string]bool{}
		ForEachTask(g, func(task Task) {
			g.Successors(task, func(s Task) {
				e := fmt.Sprint(task, "->", s)
				if succOf[e] {
					t.Fatalf("%s mt=%d: duplicate successor edge %s", g.Name(), tc.mt, e)
				}
				succOf[e] = true
			})
		})
		depEdges := map[string]bool{}
		ForEachTask(g, func(task Task) {
			g.Dependencies(task, func(d Task) {
				e := fmt.Sprint(d, "->", task)
				if depEdges[e] {
					t.Fatalf("%s mt=%d: duplicate dependency edge %s", g.Name(), tc.mt, e)
				}
				depEdges[e] = true
			})
		})
		if len(succOf) != len(depEdges) {
			t.Fatalf("%s mt=%d: %d successor edges vs %d dependency edges",
				g.Name(), tc.mt, len(succOf), len(depEdges))
		}
		for e := range depEdges {
			if !succOf[e] {
				t.Fatalf("%s mt=%d: dependency edge %s missing from successors",
					g.Name(), tc.mt, e)
			}
		}
	}
}

func TestReplicatedNumDependenciesMatches(t *testing.T) {
	for _, tc := range replicatedCases() {
		g := NewReplicatedLU(tc.mt, tc.c)
		ForEachTask(g, func(task Task) {
			n := 0
			g.Dependencies(task, func(Task) { n++ })
			if got := g.NumDependencies(task); got != n {
				t.Fatalf("%s mt=%d: NumDependencies(%v) = %d, visits %d",
					g.Name(), tc.mt, task, got, n)
			}
		})
	}
}

func TestReplicatedForEachTaskIsTopological(t *testing.T) {
	for _, tc := range replicatedCases() {
		g := NewReplicatedLU(tc.mt, tc.c)
		visited := make([]bool, g.NumTasks())
		ForEachTask(g, func(task Task) {
			g.Dependencies(task, func(d Task) {
				if !visited[g.ID(d)] {
					t.Fatalf("%s mt=%d: %v visited before its dependency %v",
						g.Name(), tc.mt, task, d)
				}
			})
			visited[g.ID(task)] = true
		})
	}
}

// TestReplicatedC1MatchesLU checks the degenerate case: with one layer the
// replicated graph is NewLU — same task set, same dependency edges, same
// per-tile write order (so the runtime computes bit-identical factors).
func TestReplicatedC1MatchesLU(t *testing.T) {
	for mt := 1; mt <= 8; mt++ {
		rep, lu := NewReplicatedLU(mt, 1), NewLU(mt)
		if rep.NumTasks() != lu.NumTasks() {
			t.Fatalf("mt=%d: %d tasks vs LU's %d", mt, rep.NumTasks(), lu.NumTasks())
		}
		edges := func(g Graph) map[string]bool {
			m := map[string]bool{}
			ForEachTask(g, func(task Task) {
				m[task.String()] = true
				g.Dependencies(task, func(d Task) {
					m[fmt.Sprint(d, "->", task)] = true
				})
			})
			return m
		}
		re, le := edges(rep), edges(lu)
		if len(re) != len(le) {
			t.Fatalf("mt=%d: %d tasks+edges vs LU's %d", mt, len(re), len(le))
		}
		for e := range le {
			if !re[e] {
				t.Fatalf("mt=%d: LU edge %s missing from replicated c=1", mt, e)
			}
		}
	}
}

// TestReplicatedVersionsLinear checks that every tile's writers form a single
// serialized chain: versions of one tile are exactly 0..n-1 and appear in
// topological visit order. This is what the runtime's versioned-tile protocol
// (prevalidate) requires of any graph it executes.
func TestReplicatedVersionsLinear(t *testing.T) {
	for _, tc := range replicatedCases() {
		g := NewReplicatedLU(tc.mt, tc.c)
		ver := OutputVersions(g)
		last := map[[2]int]int32{}
		ForEachTask(g, func(task Task) {
			i, j := g.OutputTile(task)
			key := [2]int{i, j}
			want, ok := last[key]
			if !ok {
				want = 0
			} else {
				want++
			}
			if got := ver[g.ID(task)]; got != want {
				t.Fatalf("%s mt=%d: %v writes (%d,%d) version %d, want %d",
					g.Name(), tc.mt, task, i, j, got, want)
			}
			last[key] = want
		})
	}
}

// TestReplicatedGEMMLayerSplit checks the round-robin slicing: iteration ℓ's
// update of tile (i, j) is canonical (GEMMLU) exactly when ℓ and the tile's
// panel iteration min(i, j) fall on the same layer, and the ReduceAdd count
// of a tile equals its number of contributing non-canonical layers.
func TestReplicatedGEMMLayerSplit(t *testing.T) {
	for _, tc := range replicatedCases() {
		g := NewReplicatedLU(tc.mt, tc.c)
		reds := map[[2]int]int{}
		ForEachTask(g, func(task Task) {
			switch task.Kind {
			case GEMMLU, GEMMPart:
				k := int(min(task.I, task.J))
				canonical := int(task.L)%tc.c == k%tc.c
				if canonical != (task.Kind == GEMMLU) {
					t.Fatalf("%s mt=%d: %v has wrong kind for layer split", g.Name(), tc.mt, task)
				}
			case ReduceAdd:
				reds[[2]int{int(task.I), int(task.J)}]++
			}
		})
		for tile, n := range reds {
			k := tile[0]
			if tile[1] < k {
				k = tile[1]
			}
			want := k
			if want > tc.c-1 {
				want = tc.c - 1
			}
			if n != want {
				t.Fatalf("%s mt=%d: tile %v has %d reduces, want %d", g.Name(), tc.mt, tile, n, want)
			}
		}
	}
}

func TestReplicatedTotalFlops(t *testing.T) {
	for _, tc := range replicatedCases() {
		g := NewReplicatedLU(tc.mt, tc.c)
		sum := 0.0
		ForEachTask(g, func(task Task) { sum += g.Flops(task, 8) })
		if total := g.TotalFlops(8); math.Abs(total-sum) > 1e-9*sum {
			t.Fatalf("%s mt=%d: TotalFlops = %g, per-task sum %g", g.Name(), tc.mt, total, sum)
		}
	}
}

package dag

import (
	"fmt"

	"anybc/internal/tile"
)

// Cholesky is the task graph of the right-looking tiled Cholesky
// factorization of the lower triangle of an mt×mt tile matrix:
//
//	for ℓ = 0..mt-1:
//	    POTRF(ℓ)
//	    TRSMChol(ℓ, i) for i > ℓ
//	    SYRK(ℓ, i) for i > ℓ
//	    GEMMChol(ℓ, i, j) for ℓ < j < i
type Cholesky struct {
	mt                           int
	trsmBase, syrkBase, gemmBase int
	s1                           []int // s1[l] = Σ_{k<l} (mt-1-k)
	s3                           []int // s3[l] = Σ_{k<l} C(mt-1-k, 2)
}

// NewCholesky builds the Cholesky task graph for an mt×mt tile matrix.
func NewCholesky(mt int) *Cholesky {
	if mt <= 0 {
		panic(fmt.Sprintf("dag: invalid tile count %d", mt))
	}
	g := &Cholesky{mt: mt, s1: make([]int, mt+1), s3: make([]int, mt+1)}
	for l := 0; l < mt; l++ {
		k := mt - 1 - l
		g.s1[l+1] = g.s1[l] + k
		g.s3[l+1] = g.s3[l] + k*(k-1)/2
	}
	g.trsmBase = mt
	g.syrkBase = g.trsmBase + g.s1[mt]
	g.gemmBase = g.syrkBase + g.s1[mt]
	return g
}

// Name implements Graph.
func (g *Cholesky) Name() string { return "Cholesky" }

// Tiles implements Graph.
func (g *Cholesky) Tiles() int { return g.mt }

// NumTasks implements Graph.
func (g *Cholesky) NumTasks() int { return g.gemmBase + g.s3[g.mt] }

// ID implements Graph.
func (g *Cholesky) ID(t Task) int {
	l := int(t.L)
	switch t.Kind {
	case POTRF:
		return l
	case TRSMChol:
		return g.trsmBase + g.s1[l] + int(t.I) - l - 1
	case SYRK:
		return g.syrkBase + g.s1[l] + int(t.I) - l - 1
	case GEMMChol:
		// Tasks at iteration l are ordered by i then j, i from l+2 up:
		// offset(i) = C(i-l-1, 2), then + (j-l-1).
		di := int(t.I) - l - 1
		return g.gemmBase + g.s3[l] + di*(di-1)/2 + int(t.J) - l - 1
	default:
		panic(fmt.Sprintf("dag: task %v is not a Cholesky task", t))
	}
}

// TaskOf implements Graph.
func (g *Cholesky) TaskOf(id int) Task {
	switch {
	case id < g.trsmBase:
		return Task{Kind: POTRF, L: int32(id), I: int32(id), J: int32(id)}
	case id < g.syrkBase:
		l, off := g.locate(g.s1, id-g.trsmBase)
		return Task{Kind: TRSMChol, L: int32(l), I: int32(l + 1 + off)}
	case id < g.gemmBase:
		l, off := g.locate(g.s1, id-g.syrkBase)
		return Task{Kind: SYRK, L: int32(l), I: int32(l + 1 + off)}
	default:
		l, off := g.locate(g.s3, id-g.gemmBase)
		// Find di with C(di,2) <= off < C(di+1,2).
		di := 1
		for (di+1)*di/2 <= off {
			di++
		}
		j := off - di*(di-1)/2
		return Task{Kind: GEMMChol, L: int32(l), I: int32(l + 1 + di), J: int32(l + 1 + j)}
	}
}

func (g *Cholesky) locate(prefix []int, id int) (l, off int) {
	lo, hi := 0, len(prefix)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if prefix[mid] <= id {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, id - prefix[lo]
}

// Dependencies implements Graph.
func (g *Cholesky) Dependencies(t Task, visit func(Task)) {
	l := t.L
	switch t.Kind {
	case POTRF:
		if l > 0 {
			visit(Task{Kind: SYRK, L: l - 1, I: l})
		}
	case TRSMChol:
		visit(Task{Kind: POTRF, L: l, I: l, J: l})
		if l > 0 {
			visit(Task{Kind: GEMMChol, L: l - 1, I: t.I, J: l})
		}
	case SYRK:
		visit(Task{Kind: TRSMChol, L: l, I: t.I})
		if l > 0 {
			visit(Task{Kind: SYRK, L: l - 1, I: t.I})
		}
	case GEMMChol:
		visit(Task{Kind: TRSMChol, L: l, I: t.I})
		visit(Task{Kind: TRSMChol, L: l, I: t.J})
		if l > 0 {
			visit(Task{Kind: GEMMChol, L: l - 1, I: t.I, J: t.J})
		}
	}
}

// NumDependencies implements Graph.
func (g *Cholesky) NumDependencies(t Task) int {
	switch t.Kind {
	case POTRF:
		if t.L > 0 {
			return 1
		}
		return 0
	case TRSMChol, SYRK:
		if t.L > 0 {
			return 2
		}
		return 1
	default:
		if t.L > 0 {
			return 3
		}
		return 2
	}
}

// Successors implements Graph.
func (g *Cholesky) Successors(t Task, visit func(Task)) {
	l := int(t.L)
	mt := g.mt
	switch t.Kind {
	case POTRF:
		for i := l + 1; i < mt; i++ {
			visit(Task{Kind: TRSMChol, L: t.L, I: int32(i)})
		}
	case TRSMChol:
		i := int(t.I)
		visit(Task{Kind: SYRK, L: t.L, I: t.I})
		for j := l + 1; j < i; j++ {
			visit(Task{Kind: GEMMChol, L: t.L, I: t.I, J: int32(j)})
		}
		for i2 := i + 1; i2 < mt; i2++ {
			visit(Task{Kind: GEMMChol, L: t.L, I: int32(i2), J: t.I})
		}
	case SYRK:
		if int(t.I) == l+1 {
			visit(Task{Kind: POTRF, L: t.L + 1, I: t.I, J: t.I})
		} else {
			visit(Task{Kind: SYRK, L: t.L + 1, I: t.I})
		}
	case GEMMChol:
		if int(t.J) == l+1 {
			visit(Task{Kind: TRSMChol, L: t.L + 1, I: t.I})
		} else {
			visit(Task{Kind: GEMMChol, L: t.L + 1, I: t.I, J: t.J})
		}
	}
}

// OutputTile implements Graph.
func (g *Cholesky) OutputTile(t Task) (int, int) {
	switch t.Kind {
	case POTRF:
		return int(t.L), int(t.L)
	case TRSMChol:
		return int(t.I), int(t.L)
	case SYRK:
		return int(t.I), int(t.I)
	default:
		return int(t.I), int(t.J)
	}
}

// InputTiles implements Graph.
func (g *Cholesky) InputTiles(t Task, visit func(i, j int)) {
	l := int(t.L)
	switch t.Kind {
	case POTRF:
	case TRSMChol:
		visit(l, l)
	case SYRK:
		visit(int(t.I), l)
	case GEMMChol:
		visit(int(t.I), l)
		visit(int(t.J), l)
	}
}

// Flops implements Graph.
func (g *Cholesky) Flops(t Task, b int) float64 {
	switch t.Kind {
	case POTRF:
		return tile.FlopsPotrf(b)
	case TRSMChol:
		return tile.FlopsTrsm(b)
	case SYRK:
		return tile.FlopsSyrk(b)
	default:
		return tile.FlopsGemm(b)
	}
}

// TotalFlops implements Graph.
func (g *Cholesky) TotalFlops(b int) float64 {
	mt := g.mt
	return float64(mt)*tile.FlopsPotrf(b) +
		float64(g.s1[mt])*(tile.FlopsTrsm(b)+tile.FlopsSyrk(b)) +
		float64(g.s3[mt])*tile.FlopsGemm(b)
}

// Package dag describes the task graphs of the tiled right-looking LU and
// Cholesky factorizations — the DAGs that Chameleon submits to StarPU. Tasks,
// dependencies and successors are all computed structurally from the task
// coordinates (kind, iteration, row, column); nothing is stored per edge, so
// graphs with tens of millions of tasks occupy only a few prefix-sum arrays.
//
// Dependencies encode both data flow and the in-place owner-computes
// serialization: the update of tile (i, j) at iteration ℓ must follow its
// update at iteration ℓ−1 because both write the same tile.
package dag

import "fmt"

// Kind enumerates the task kernels of both factorizations.
type Kind uint8

// Task kinds. The LU factorization uses GETRF/TRSMRow/TRSMCol/GEMMLU; the
// Cholesky factorization uses POTRF/TRSMChol/SYRK/GEMMChol.
const (
	// GETRF factorizes diagonal tile (ℓ, ℓ) at iteration ℓ.
	GETRF Kind = iota
	// TRSMCol solves the column panel: A[i][ℓ] := A[i][ℓ]·U(ℓ,ℓ)⁻¹.
	TRSMCol
	// TRSMRow solves the row panel: A[ℓ][j] := L(ℓ,ℓ)⁻¹·A[ℓ][j].
	TRSMRow
	// GEMMLU updates A[i][j] -= A[i][ℓ]·A[ℓ][j].
	GEMMLU
	// POTRF factorizes diagonal tile (ℓ, ℓ) (Cholesky).
	POTRF
	// TRSMChol solves the panel: A[i][ℓ] := A[i][ℓ]·L(ℓ,ℓ)⁻ᵀ.
	TRSMChol
	// SYRK updates the diagonal: A[i][i] -= A[i][ℓ]·A[i][ℓ]ᵀ.
	SYRK
	// GEMMChol updates A[i][j] -= A[i][ℓ]·A[j][ℓ]ᵀ (ℓ < j < i).
	GEMMChol
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case GETRF:
		return "GETRF"
	case TRSMCol:
		return "TRSM-col"
	case TRSMRow:
		return "TRSM-row"
	case GEMMLU:
		return "GEMM"
	case POTRF:
		return "POTRF"
	case TRSMChol:
		return "TRSM"
	case SYRK:
		return "SYRK"
	case GEMMChol:
		return "GEMM-sym"
	case AInit:
		return "A-init"
	case SYRKUpd:
		return "SYRK-upd"
	case GEMMUpd:
		return "GEMM-upd"
	case GemmA:
		return "A-publish"
	case GemmB:
		return "B-publish"
	case GemmUpd:
		return "GEMM-acc"
	case GEMMPart:
		return "GEMM-part"
	case ReduceAdd:
		return "REDUCE"
	default:
		if s, ok := solveKindString(k); ok {
			return s
		}
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Task identifies one kernel invocation. The meaning of I and J depends on
// the kind: panel tasks use I only; update tasks use both. L is the
// iteration.
type Task struct {
	Kind    Kind
	L, I, J int32
}

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t.Kind {
	case GETRF, POTRF:
		return fmt.Sprintf("%s(%d)", t.Kind, t.L)
	case TRSMCol, TRSMRow, TRSMChol, SYRK:
		return fmt.Sprintf("%s(l=%d,%d)", t.Kind, t.L, t.I)
	default:
		return fmt.Sprintf("%s(l=%d,%d,%d)", t.Kind, t.L, t.I, t.J)
	}
}

// Graph is a structural task DAG over an mt×mt tile matrix.
type Graph interface {
	// Name identifies the algorithm ("LU" or "Cholesky").
	Name() string
	// Tiles returns mt, the tile dimension of the matrix.
	Tiles() int
	// NumTasks returns the total task count.
	NumTasks() int
	// ID maps a task to a dense identifier in [0, NumTasks()).
	ID(t Task) int
	// TaskOf inverts ID.
	TaskOf(id int) Task
	// Dependencies visits every direct predecessor of t.
	Dependencies(t Task, visit func(Task))
	// Successors visits every direct successor of t.
	Successors(t Task, visit func(Task))
	// NumDependencies returns the predecessor count (cheaper than visiting).
	NumDependencies(t Task) int
	// OutputTile returns the tile t writes (owner-computes maps t there).
	OutputTile(t Task) (i, j int)
	// InputTiles visits the tiles t reads besides its output tile; these are
	// the tiles that may need to be communicated.
	InputTiles(t Task, visit func(i, j int))
	// Flops returns the floating-point operations of t for tile size b.
	Flops(t Task, b int) float64
	// TotalFlops returns the flop count of the whole factorization for tile
	// size b.
	TotalFlops(b int) float64
}

// SizedGraph is implemented by graphs whose tasks produce tiles of varying
// sizes (e.g. the factor-and-solve graphs, whose RHS tiles are b×nrhs).
// OutputBytes returns the wire size of the task's output tile for tile size
// b. Graphs that do not implement it produce uniform 8·b² byte tiles.
type SizedGraph interface {
	Graph
	OutputBytes(t Task, b int) int
}

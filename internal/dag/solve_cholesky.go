package dag

// CholeskySolve is the combined graph of a Cholesky factorization followed
// by the two triangular substitutions (L·Y = B, then Lᵀ·X = Y) for nrhs
// right-hand-side columns. The backward phase reads the transposed panel
// tiles (j, i), so only the lower triangle is ever touched, as in the
// factorization itself.
type CholeskySolve struct {
	*Cholesky
	lay solveLayout
}

// NewCholeskySolve builds the factor-and-solve graph for the lower triangle
// of an mt×mt tile matrix and nrhs right-hand-side columns.
func NewCholeskySolve(mt, nrhs int) *CholeskySolve {
	base := NewCholesky(mt)
	return &CholeskySolve{Cholesky: base, lay: newSolveLayout(mt, nrhs, base.NumTasks())}
}

// Name implements Graph.
func (g *CholeskySolve) Name() string { return "Cholesky+solve" }

// NumTasks implements Graph.
func (g *CholeskySolve) NumTasks() int { return g.lay.numTasks() }

// NRHS returns the number of right-hand-side columns.
func (g *CholeskySolve) NRHS() int { return g.lay.nrhs }

// ID implements Graph.
func (g *CholeskySolve) ID(t Task) int {
	if t.Kind < FTRSM {
		return g.Cholesky.ID(t)
	}
	return g.lay.id(t)
}

// TaskOf implements Graph.
func (g *CholeskySolve) TaskOf(id int) Task {
	if id < g.lay.base {
		return g.Cholesky.TaskOf(id)
	}
	return g.lay.taskOf(id)
}

// Dependencies implements Graph.
func (g *CholeskySolve) Dependencies(t Task, visit func(Task)) {
	mt := g.lay.mt
	i, j := t.I, t.J
	switch t.Kind {
	case FTRSM:
		visit(Task{Kind: POTRF, L: i, I: i, J: i})
		if i > 0 {
			visit(Task{Kind: FGEMM, L: i - 1, I: i, J: i - 1})
		}
	case FGEMM:
		visit(Task{Kind: FTRSM, L: j, I: j})
		visit(Task{Kind: TRSMChol, L: j, I: i}) // produces matrix tile (i, j)
		if j > 0 {
			visit(Task{Kind: FGEMM, L: j - 1, I: i, J: j - 1})
		}
	case BCOPY:
		visit(Task{Kind: FTRSM, L: i, I: i})
	case BGEMM:
		visit(Task{Kind: BTRSM, L: j, I: j})
		visit(Task{Kind: TRSMChol, L: i, I: j}) // produces matrix tile (j, i)
		if int(j) < mt-1 {
			visit(Task{Kind: BGEMM, L: j + 1, I: i, J: j + 1})
		} else {
			visit(Task{Kind: BCOPY, L: i, I: i})
		}
	case BTRSM:
		visit(Task{Kind: POTRF, L: i, I: i, J: i})
		if int(i) < mt-1 {
			visit(Task{Kind: BGEMM, L: i + 1, I: i, J: i + 1})
		} else {
			visit(Task{Kind: BCOPY, L: i, I: i})
		}
	default:
		g.Cholesky.Dependencies(t, visit)
	}
}

// NumDependencies implements Graph.
func (g *CholeskySolve) NumDependencies(t Task) int {
	if t.Kind < FTRSM {
		return g.Cholesky.NumDependencies(t)
	}
	return g.lay.numDeps(t)
}

// Successors implements Graph.
func (g *CholeskySolve) Successors(t Task, visit func(Task)) {
	mt := g.lay.mt
	switch t.Kind {
	case POTRF:
		g.Cholesky.Successors(t, visit)
		visit(Task{Kind: FTRSM, L: t.L, I: t.L})
		visit(Task{Kind: BTRSM, L: t.L, I: t.L})
	case TRSMChol:
		g.Cholesky.Successors(t, visit)
		// Tile (I, L) feeds the forward update of RHS row I at step L and
		// the backward update of RHS row L at step I.
		visit(Task{Kind: FGEMM, L: t.L, I: t.I, J: t.L})
		visit(Task{Kind: BGEMM, L: t.I, I: t.L, J: t.I})
	case SYRK, GEMMChol:
		g.Cholesky.Successors(t, visit)
	case FTRSM:
		i := int(t.I)
		for i2 := i + 1; i2 < mt; i2++ {
			visit(Task{Kind: FGEMM, L: t.I, I: int32(i2), J: t.I})
		}
		visit(Task{Kind: BCOPY, L: t.I, I: t.I})
	case FGEMM:
		if int(t.J)+1 < int(t.I) {
			visit(Task{Kind: FGEMM, L: t.J + 1, I: t.I, J: t.J + 1})
		} else {
			visit(Task{Kind: FTRSM, L: t.I, I: t.I})
		}
	case BCOPY:
		if int(t.I) < mt-1 {
			visit(Task{Kind: BGEMM, L: int32(mt - 1), I: t.I, J: int32(mt - 1)})
		} else {
			visit(Task{Kind: BTRSM, L: t.I, I: t.I})
		}
	case BGEMM:
		if int(t.J)-1 > int(t.I) {
			visit(Task{Kind: BGEMM, L: t.J - 1, I: t.I, J: t.J - 1})
		} else {
			visit(Task{Kind: BTRSM, L: t.I, I: t.I})
		}
	case BTRSM:
		j := int(t.I)
		for i := 0; i < j; i++ {
			visit(Task{Kind: BGEMM, L: t.I, I: int32(i), J: t.I})
		}
	}
}

// OutputTile implements Graph.
func (g *CholeskySolve) OutputTile(t Task) (int, int) {
	if t.Kind < FTRSM {
		return g.Cholesky.OutputTile(t)
	}
	return g.lay.outputTile(t)
}

// InputTiles implements Graph.
func (g *CholeskySolve) InputTiles(t Task, visit func(i, j int)) {
	mt := g.lay.mt
	i, j := int(t.I), int(t.J)
	switch t.Kind {
	case FTRSM, BTRSM:
		visit(i, i)
	case FGEMM:
		visit(i, j)
		visit(j, mt)
	case BCOPY:
		visit(i, mt)
	case BGEMM:
		visit(j, i) // transposed panel tile, lower triangle
		visit(j, mt+1)
	default:
		g.Cholesky.InputTiles(t, visit)
	}
}

// Flops implements Graph.
func (g *CholeskySolve) Flops(t Task, b int) float64 {
	if t.Kind < FTRSM {
		return g.Cholesky.Flops(t, b)
	}
	return g.lay.flops(t, b)
}

// TotalFlops implements Graph.
func (g *CholeskySolve) TotalFlops(b int) float64 {
	return g.Cholesky.TotalFlops(b) + g.lay.totalFlops(b)
}

// OutputBytes implements SizedGraph: RHS tiles are b×nrhs, matrix tiles b×b.
func (g *CholeskySolve) OutputBytes(t Task, b int) int {
	if t.Kind >= FTRSM {
		return 8 * b * g.lay.nrhs
	}
	return 8 * b * b
}

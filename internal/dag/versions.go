package dag

// OutputVersions returns, for every task id, the version (write epoch) of the
// output tile the task produces. The first writer of a tile produces version
// 0 and every later writer — ordered by the in-place serialization
// dependencies the graphs encode — produces its predecessor's version plus
// one. In the right-looking factorizations the version of a task therefore
// equals its iteration ℓ: tile (i, j) is rewritten once per iteration until
// its panel kernel at iteration min(i, j) produces the final version.
//
// Versions are what lets a runtime identify which state of a tile a consumer
// task reads: a task's input version for tile (i, j) is the largest version
// among its direct dependencies that write (i, j), or the initial (unwritten)
// content when no dependency writes it.
func OutputVersions(g Graph) []int32 {
	ver := make([]int32, g.NumTasks())
	ForEachTask(g, func(t Task) {
		oi, oj := g.OutputTile(t)
		v := int32(0)
		g.Dependencies(t, func(d Task) {
			di, dj := g.OutputTile(d)
			if di == oi && dj == oj {
				if w := ver[g.ID(d)] + 1; w > v {
					v = w
				}
			}
		})
		ver[g.ID(t)] = v
	})
	return ver
}

// InputVersion returns the version of tile (i, j) that task t reads: the
// largest output version among t's direct dependencies writing (i, j), given
// the precomputed OutputVersions slice. The boolean reports whether any
// dependency writes the tile; false means t reads the tile's initial
// contents.
func InputVersion(g Graph, ver []int32, t Task, i, j int) (int32, bool) {
	v, found := int32(-1), false
	g.Dependencies(t, func(d Task) {
		di, dj := g.OutputTile(d)
		if di == i && dj == j {
			found = true
			if w := ver[g.ID(d)]; w > v {
				v = w
			}
		}
	})
	return v, found
}

package dag

import "fmt"

// CholeskyLeft is the task graph of the *left-looking* tiled Cholesky
// variant: instead of eagerly updating the whole trailing matrix after each
// panel (right-looking), column k accumulates all its updates just before
// its panel is factorized:
//
//	for k = 0..mt-1:
//	    SYRK(k, j):      A[k][k] -= A[k][j]·A[k][j]ᵀ   for j < k
//	    POTRF(k)
//	    GEMMChol(i,k,j): A[i][k] -= A[i][j]·A[k][j]ᵀ   for j < k < i
//	    TRSMChol(k, i):  A[i][k] := A[i][k]·L(k,k)⁻ᵀ   for i > k
//
// The task set is a relabeling of the right-looking one (same kinds, same
// kernels, same per-tile update order — so results are bitwise identical),
// and the owner-computes communication *volume* is identical too; what
// changes is *when* tiles are needed, i.e. the overlap structure. The graph
// exists to show that the paper's distribution comparisons do not hinge on
// the right-looking variant.
//
// Task encodings: SYRK{L:j, I:k} updates (k,k) with column j;
// GEMMChol{L:j, I:i, J:k} updates (i,k) with column j; POTRF and TRSMChol
// match the right-looking encodings.
type CholeskyLeft struct {
	mt                           int
	trsmBase, syrkBase, gemmBase int
	s1                           []int // s1[k] = Σ_{l<k} (mt-1-l), TRSM offsets
	tri                          []int // tri[k] = k(k-1)/2, SYRK offsets
	tet                          []int // tet[i] = C(i,3), GEMM offsets by row i
}

// NewCholeskyLeft builds the left-looking Cholesky graph for an mt×mt tile
// matrix.
func NewCholeskyLeft(mt int) *CholeskyLeft {
	if mt <= 0 {
		panic(fmt.Sprintf("dag: invalid tile count %d", mt))
	}
	g := &CholeskyLeft{
		mt:  mt,
		s1:  make([]int, mt+1),
		tri: make([]int, mt+1),
		tet: make([]int, mt+1),
	}
	for k := 0; k < mt; k++ {
		g.s1[k+1] = g.s1[k] + mt - 1 - k
		g.tri[k+1] = g.tri[k] + k
		g.tet[k+1] = g.tet[k] + k*(k-1)/2
	}
	g.trsmBase = mt
	g.syrkBase = g.trsmBase + g.s1[mt]
	g.gemmBase = g.syrkBase + g.tri[mt]
	return g
}

// Name implements Graph.
func (g *CholeskyLeft) Name() string { return "Cholesky-left" }

// Tiles implements Graph.
func (g *CholeskyLeft) Tiles() int { return g.mt }

// NumTasks implements Graph.
func (g *CholeskyLeft) NumTasks() int { return g.gemmBase + g.tet[g.mt] }

// ID implements Graph.
func (g *CholeskyLeft) ID(t Task) int {
	switch t.Kind {
	case POTRF:
		return int(t.L)
	case TRSMChol:
		k := int(t.L)
		return g.trsmBase + g.s1[k] + int(t.I) - k - 1
	case SYRK:
		k, j := int(t.I), int(t.L)
		return g.syrkBase + g.tri[k] + j
	case GEMMChol:
		i, k, j := int(t.I), int(t.J), int(t.L)
		return g.gemmBase + g.tet[i] + g.tri[k] + j
	default:
		panic(fmt.Sprintf("dag: task %v is not a left-looking Cholesky task", t))
	}
}

// TaskOf implements Graph.
func (g *CholeskyLeft) TaskOf(id int) Task {
	switch {
	case id < g.trsmBase:
		return Task{Kind: POTRF, L: int32(id), I: int32(id), J: int32(id)}
	case id < g.syrkBase:
		k, off := locatePrefixOff(g.s1, id-g.trsmBase)
		return Task{Kind: TRSMChol, L: int32(k), I: int32(k + 1 + off)}
	case id < g.gemmBase:
		k, j := locatePrefixOff(g.tri, id-g.syrkBase)
		return Task{Kind: SYRK, L: int32(j), I: int32(k)}
	default:
		i, rest := locatePrefixOff(g.tet, id-g.gemmBase)
		k, j := locatePrefixOff(g.tri, rest)
		return Task{Kind: GEMMChol, L: int32(j), I: int32(i), J: int32(k)}
	}
}

// locatePrefixOff finds the largest l with prefix[l] <= v and the remainder.
func locatePrefixOff(prefix []int, v int) (l, off int) {
	lo, hi := 0, len(prefix)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if prefix[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, v - prefix[lo]
}

// Dependencies implements Graph.
func (g *CholeskyLeft) Dependencies(t Task, visit func(Task)) {
	switch t.Kind {
	case POTRF:
		if k := t.L; k > 0 {
			visit(Task{Kind: SYRK, L: k - 1, I: k})
		}
	case TRSMChol:
		k := t.L
		visit(Task{Kind: POTRF, L: k, I: k, J: k})
		if k > 0 {
			visit(Task{Kind: GEMMChol, L: k - 1, I: t.I, J: k})
		}
	case SYRK:
		k, j := t.I, t.L
		visit(Task{Kind: TRSMChol, L: j, I: k})
		if j > 0 {
			visit(Task{Kind: SYRK, L: j - 1, I: k})
		}
	case GEMMChol:
		i, k, j := t.I, t.J, t.L
		visit(Task{Kind: TRSMChol, L: j, I: i})
		visit(Task{Kind: TRSMChol, L: j, I: k})
		if j > 0 {
			visit(Task{Kind: GEMMChol, L: j - 1, I: i, J: k})
		}
	}
}

// NumDependencies implements Graph.
func (g *CholeskyLeft) NumDependencies(t Task) int {
	switch t.Kind {
	case POTRF:
		if t.L > 0 {
			return 1
		}
		return 0
	case TRSMChol, SYRK:
		if t.L > 0 {
			return 2
		}
		return 1
	default:
		if t.L > 0 {
			return 3
		}
		return 2
	}
}

// Successors implements Graph.
func (g *CholeskyLeft) Successors(t Task, visit func(Task)) {
	mt := g.mt
	switch t.Kind {
	case POTRF:
		k := int(t.L)
		for i := k + 1; i < mt; i++ {
			visit(Task{Kind: TRSMChol, L: t.L, I: int32(i)})
		}
	case TRSMChol:
		// Tile (i, k) is final; it feeds SYRK(i, k), the i-row GEMMs with
		// later target columns, and the GEMMs of lower rows targeting
		// column i.
		k, i := t.L, t.I
		visit(Task{Kind: SYRK, L: k, I: i})
		for k2 := i + 1; int(k2) < mt; k2++ {
			// (i, k) as second operand: targets column i of rows k2 > i.
			visit(Task{Kind: GEMMChol, L: k, I: k2, J: i})
		}
		for k2 := k + 1; k2 < i; k2++ {
			// (i, k) as first operand: targets (i, k2) for k < k2 < i.
			visit(Task{Kind: GEMMChol, L: k, I: i, J: k2})
		}
	case SYRK:
		k, j := t.I, t.L
		if int(j) < int(k)-1 {
			visit(Task{Kind: SYRK, L: j + 1, I: k})
		} else {
			visit(Task{Kind: POTRF, L: k, I: k, J: k})
		}
	case GEMMChol:
		i, k, j := t.I, t.J, t.L
		if int(j) < int(k)-1 {
			visit(Task{Kind: GEMMChol, L: j + 1, I: i, J: k})
		} else {
			visit(Task{Kind: TRSMChol, L: k, I: i})
		}
	}
}

// OutputTile implements Graph.
func (g *CholeskyLeft) OutputTile(t Task) (int, int) {
	switch t.Kind {
	case POTRF:
		return int(t.L), int(t.L)
	case TRSMChol:
		return int(t.I), int(t.L)
	case SYRK:
		return int(t.I), int(t.I)
	default:
		return int(t.I), int(t.J)
	}
}

// InputTiles implements Graph.
func (g *CholeskyLeft) InputTiles(t Task, visit func(i, j int)) {
	switch t.Kind {
	case POTRF:
	case TRSMChol:
		visit(int(t.L), int(t.L))
	case SYRK:
		visit(int(t.I), int(t.L))
	case GEMMChol:
		visit(int(t.I), int(t.L))
		visit(int(t.J), int(t.L))
	}
}

// Flops implements Graph; identical kernels to the right-looking variant.
func (g *CholeskyLeft) Flops(t Task, b int) float64 {
	return (&Cholesky{}).Flops(t, b)
}

// TotalFlops implements Graph.
func (g *CholeskyLeft) TotalFlops(b int) float64 {
	return NewCholesky(g.mt).TotalFlops(b)
}

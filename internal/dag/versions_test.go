package dag

import "testing"

// TestOutputVersionsLU: in right-looking LU every task's output version is
// its iteration — tile (i, j) is rewritten by one GEMM per iteration before
// its panel kernel finalizes it.
func TestOutputVersionsLU(t *testing.T) {
	g := NewLU(6)
	ver := OutputVersions(g)
	ForEachTask(g, func(task Task) {
		if got := ver[g.ID(task)]; got != task.L {
			t.Fatalf("%v: version %d, want iteration %d", task, got, task.L)
		}
	})
}

// TestOutputVersionsCholesky: same identity for both Cholesky variants,
// whose diagonal tiles pass through SYRK updates before POTRF.
func TestOutputVersionsCholesky(t *testing.T) {
	for _, g := range []Graph{NewCholesky(6), NewCholeskyLeft(6)} {
		ver := OutputVersions(g)
		ForEachTask(g, func(task Task) {
			want := task.L
			switch task.Kind {
			case POTRF:
				// POTRF(l) follows SYRK(0..l-1) on tile (l, l).
				want = task.L
			case TRSMChol:
				// TRSM(l, i) follows GEMM/SYRK writes of iterations < l.
				want = task.L
			}
			if got := ver[g.ID(task)]; got != want {
				t.Fatalf("%s %v: version %d, want %d", g.Name(), task, got, want)
			}
		})
	}
}

// TestOutputVersionsGEMM: publish tasks produce version 0; the accumulation
// chain on each C tile increments once per k step.
func TestOutputVersionsGEMM(t *testing.T) {
	g := NewGEMMOp(3, 4, 5)
	ver := OutputVersions(g)
	ForEachTask(g, func(task Task) {
		want := int32(0)
		if task.Kind == GemmUpd {
			want = task.L
		}
		if got := ver[g.ID(task)]; got != want {
			t.Fatalf("%v: version %d, want %d", task, got, want)
		}
	})
}

// TestInputVersion: GEMM(l, i, j) reads the panel tiles at their final
// versions, and the version lookup reports initial content for tiles no
// dependency writes.
func TestInputVersionLU(t *testing.T) {
	g := NewLU(5)
	ver := OutputVersions(g)
	task := Task{Kind: GEMMLU, L: 2, I: 4, J: 3}
	// Input (4, 2) is the TRSMCol(2, 4) output: its chain is GEMM(0), GEMM(1),
	// TRSMCol(2) — version 2.
	v, ok := InputVersion(g, ver, task, 4, 2)
	if !ok || v != 2 {
		t.Fatalf("input (4,2) of %v: version %d ok=%v, want 2", task, v, ok)
	}
	if _, ok := InputVersion(g, ver, task, 0, 0); ok {
		t.Fatalf("%v has no dependency writing (0,0)", task)
	}
}

package dag

import (
	"fmt"
	"testing"
)

func graphs(mt int) []Graph {
	return []Graph{NewLU(mt), NewCholesky(mt)}
}

func TestNumTasks(t *testing.T) {
	// LU: mt GETRF + 2·Σk TRSM + Σk² GEMM; Cholesky: mt POTRF + Σk TRSM +
	// Σk SYRK + ΣC(k,2) GEMM (k = mt-1-l).
	for mt := 1; mt <= 12; mt++ {
		sum1, sum2, sum3 := 0, 0, 0
		for l := 0; l < mt; l++ {
			k := mt - 1 - l
			sum1 += k
			sum2 += k * k
			sum3 += k * (k - 1) / 2
		}
		lu := NewLU(mt)
		if got, want := lu.NumTasks(), mt+2*sum1+sum2; got != want {
			t.Errorf("LU(%d).NumTasks = %d, want %d", mt, got, want)
		}
		ch := NewCholesky(mt)
		if got, want := ch.NumTasks(), mt+2*sum1+sum3; got != want {
			t.Errorf("Cholesky(%d).NumTasks = %d, want %d", mt, got, want)
		}
	}
}

func TestIDRoundtrip(t *testing.T) {
	for mt := 1; mt <= 9; mt++ {
		for _, g := range graphs(mt) {
			seen := make([]bool, g.NumTasks())
			ForEachTask(g, func(task Task) {
				id := g.ID(task)
				if id < 0 || id >= g.NumTasks() {
					t.Fatalf("%s mt=%d: id %d out of range for %v", g.Name(), mt, id, task)
				}
				if seen[id] {
					t.Fatalf("%s mt=%d: id %d assigned twice (%v)", g.Name(), mt, id, task)
				}
				seen[id] = true
				back := g.TaskOf(id)
				if back != task {
					t.Fatalf("%s mt=%d: TaskOf(ID(%v)) = %v", g.Name(), mt, task, back)
				}
			})
			for id, ok := range seen {
				if !ok {
					t.Fatalf("%s mt=%d: id %d never produced (task %v)", g.Name(), mt, id, g.TaskOf(id))
				}
			}
		}
	}
}

// TestDepsSuccsAreInverse checks exhaustively that s ∈ Successors(t) iff
// t ∈ Dependencies(s).
func TestDepsSuccsAreInverse(t *testing.T) {
	for mt := 1; mt <= 7; mt++ {
		for _, g := range graphs(mt) {
			succOf := map[string]bool{}
			ForEachTask(g, func(task Task) {
				g.Successors(task, func(s Task) {
					succOf[fmt.Sprint(task, "->", s)] = true
				})
			})
			depEdges := map[string]bool{}
			ForEachTask(g, func(task Task) {
				g.Dependencies(task, func(d Task) {
					depEdges[fmt.Sprint(d, "->", task)] = true
				})
			})
			if len(succOf) != len(depEdges) {
				t.Fatalf("%s mt=%d: %d successor edges vs %d dependency edges",
					g.Name(), mt, len(succOf), len(depEdges))
			}
			for e := range depEdges {
				if !succOf[e] {
					t.Fatalf("%s mt=%d: dependency edge %s missing from successors", g.Name(), mt, e)
				}
			}
		}
	}
}

func TestNumDependenciesMatches(t *testing.T) {
	for mt := 1; mt <= 7; mt++ {
		for _, g := range graphs(mt) {
			ForEachTask(g, func(task Task) {
				n := 0
				g.Dependencies(task, func(Task) { n++ })
				if got := g.NumDependencies(task); got != n {
					t.Fatalf("%s mt=%d: NumDependencies(%v) = %d, visits %d",
						g.Name(), mt, task, got, n)
				}
			})
		}
	}
}

func TestForEachTaskIsTopological(t *testing.T) {
	for mt := 1; mt <= 8; mt++ {
		for _, g := range graphs(mt) {
			visited := make([]bool, g.NumTasks())
			ForEachTask(g, func(task Task) {
				g.Dependencies(task, func(d Task) {
					if !visited[g.ID(d)] {
						t.Fatalf("%s mt=%d: %v visited before its dependency %v",
							g.Name(), mt, task, d)
					}
				})
				visited[g.ID(task)] = true
			})
		}
	}
}

func TestInputTilesAreProducedByDeps(t *testing.T) {
	// Every input tile of a task at iteration l must be the output tile of
	// one of its dependencies (data flows only along edges).
	for mt := 2; mt <= 7; mt++ {
		for _, g := range graphs(mt) {
			ForEachTask(g, func(task Task) {
				if task.L == 0 {
					// At iteration 0 the inputs come from the initial matrix
					// content on panel tasks' owners; only the (0,0) factor
					// flows along an edge.
				}
				g.InputTiles(task, func(i, j int) {
					found := false
					g.Dependencies(task, func(d Task) {
						di, dj := g.OutputTile(d)
						if di == i && dj == j {
							found = true
						}
					})
					if !found && task.L > 0 {
						t.Fatalf("%s mt=%d: input (%d,%d) of %v not produced by any dependency",
							g.Name(), mt, i, j, task)
					}
					// At L == 0 the panel factor (0,0) must still flow.
					if !found && task.L == 0 && i == 0 && j == 0 && task.Kind != GETRF && task.Kind != POTRF {
						t.Fatalf("%s mt=%d: factor tile input of %v not produced by a dependency",
							g.Name(), mt, task)
					}
				})
			})
		}
	}
}

func TestCriticalPathLength(t *testing.T) {
	// Right-looking LU and Cholesky both have the dependency spine
	// FACT(l) → TRSM(l, l+1) → UPDATE(l, l+1, l+1) → FACT(l+1),
	// giving a critical path of 3(mt-1)+1 tasks.
	for mt := 1; mt <= 10; mt++ {
		for _, g := range graphs(mt) {
			want := 3*(mt-1) + 1
			if got := CriticalPathLength(g); got != want {
				t.Errorf("%s mt=%d: critical path %d tasks, want %d", g.Name(), mt, got, want)
			}
		}
	}
}

func TestCriticalPathFlops(t *testing.T) {
	g := NewLU(4)
	b := 10
	cp := CriticalPathFlops(g, b)
	if cp <= 0 || cp > g.TotalFlops(b) {
		t.Fatalf("critical path flops %v outside (0, total=%v]", cp, g.TotalFlops(b))
	}
	// Single tile: critical path == total == one GETRF.
	g1 := NewLU(1)
	if cp := CriticalPathFlops(g1, b); cp != g1.TotalFlops(b) {
		t.Errorf("mt=1: cp %v != total %v", cp, g1.TotalFlops(b))
	}
}

func TestTotalFlopsMatchesSum(t *testing.T) {
	for mt := 1; mt <= 8; mt++ {
		for _, g := range graphs(mt) {
			sum := 0.0
			ForEachTask(g, func(task Task) { sum += g.Flops(task, 7) })
			total := g.TotalFlops(7)
			if diff := total - sum; diff > 1e-9*total || diff < -1e-9*total {
				t.Errorf("%s mt=%d: TotalFlops %v != sum %v", g.Name(), mt, total, sum)
			}
		}
	}
}

func TestTotalFlopsAsymptotics(t *testing.T) {
	// LU ≈ 2m³/3, Cholesky ≈ m³/3 for m = mt·b.
	mt, b := 40, 10
	m := float64(mt * b)
	lu := NewLU(mt).TotalFlops(b)
	if ratio := lu / (2 * m * m * m / 3); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("LU flops ratio %v", ratio)
	}
	ch := NewCholesky(mt).TotalFlops(b)
	if ratio := ch / (m * m * m / 3); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("Cholesky flops ratio %v", ratio)
	}
}

func TestCommVolumeSingleNode(t *testing.T) {
	for _, g := range graphs(6) {
		if v := CommVolumeTiles(g, func(i, j int) int { return 0 }); v != 0 {
			t.Errorf("%s: single-node comm volume %d, want 0", g.Name(), v)
		}
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLU(0) },
		func() { NewCholesky(-1) },
		func() { NewLU(3).ID(Task{Kind: POTRF}) },
		func() { NewCholesky(3).ID(Task{Kind: GETRF}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	for k := GETRF; k <= GEMMChol; k++ {
		if s := k.String(); s == "" {
			t.Errorf("Kind %d has empty String", k)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind has empty String")
	}
}

package lowerbound

import (
	"math"
	"testing"
)

func TestSequentialBounds(t *testing.T) {
	const M = 1024
	m := 1000.0
	// GEMM bound specializes correctly.
	if got, want := GEMMSeq(m, m, m, M), m*m*m/32; math.Abs(got-want) > 1e-6 {
		t.Errorf("GEMMSeq = %v, want %v", got, want)
	}
	// LU bound is 2/3 of the cubic term.
	if got, want := LUSeq(m, M), 2.0/3.0*m*m*m/32; math.Abs(got-want) > 1e-6 {
		t.Errorf("LUSeq = %v, want %v", got, want)
	}
	// Cholesky needs half the LU traffic divided by √2:
	// m³/(3√2√M) < (2/3)m³/√M.
	if CholeskySeq(m, M) >= LUSeq(m, M) {
		t.Error("Cholesky bound should be below LU bound")
	}
	// SYRK is √2 below the classical m²n/√M.
	if got, want := SYRKSeq(m, 10, M), m*m*10/(math.Sqrt2*32); math.Abs(got-want) > 1e-6 {
		t.Errorf("SYRKSeq = %v, want %v", got, want)
	}
}

func TestParallelBounds(t *testing.T) {
	if got, want := GEMMPerNode(100, 4), 10000.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("GEMMPerNode = %v, want %v", got, want)
	}
	if got, want := LUPerNode(100, 4), 5000.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("LUPerNode = %v, want %v", got, want)
	}
}

func TestReplicatedBounds(t *testing.T) {
	// c = 1 reduces exactly to the unreplicated bounds.
	for _, P := range []int{1, 4, 16, 35} {
		if got, want := LUPerNodeRepl(100, P, 1), LUPerNode(100, P); got != want {
			t.Errorf("LUPerNodeRepl(c=1, P=%d) = %v, want %v", P, got, want)
		}
		if got, want := GEMMPerNodeRepl(100, P, 1), GEMMPerNode(100, P); got != want {
			t.Errorf("GEMMPerNodeRepl(c=1, P=%d) = %v, want %v", P, got, want)
		}
	}
	// Quadrupling the memory halves each bound: the √c law.
	for _, P := range []int{4, 16} {
		if got, want := LUPerNodeRepl(100, P, 4), LUPerNode(100, P)/2; math.Abs(got-want) > 1e-9 {
			t.Errorf("LUPerNodeRepl(c=4, P=%d) = %v, want %v", P, got, want)
		}
	}
	// Monotone decreasing in c, and Cholesky stays √2 below LU.
	for c := 1; c <= 8; c++ {
		if LUPerNodeRepl(100, 16, c+1) >= LUPerNodeRepl(100, 16, c) {
			t.Fatalf("LU bound not decreasing at c=%d", c)
		}
		lu, chol := LUPerNodeRepl(100, 16, c), CholeskyPerNodeRepl(100, 16, c)
		if math.Abs(chol*math.Sqrt2-lu) > 1e-9 {
			t.Fatalf("c=%d: Cholesky bound %v not √2 below LU %v", c, chol, lu)
		}
	}
}

func TestPatternCostOrdering(t *testing.T) {
	// For every P: √P ≤ √(3P/2) ≤ √(2P)−0.5 (P ≥ ~8) ≤ √(2P) ≤ 2√P.
	for P := 8; P <= 1000; P++ {
		chol := PatternCostCholesky(P)
		gcrm := GCRMEmpiricalLaw(P)
		ext := SBCExtendedLaw(P)
		basic := SBCBasicLaw(P)
		lu := PatternCostLU(P)
		if !(chol <= gcrm && gcrm <= ext && ext <= basic && basic <= lu) {
			t.Fatalf("P=%d: ordering violated: %v %v %v %v %v", P, chol, gcrm, ext, basic, lu)
		}
	}
}

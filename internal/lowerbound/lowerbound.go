// Package lowerbound collects the communication lower bounds surveyed in
// Section II-A of the paper. They serve as reference curves in the cost
// figures and as sanity bounds in tests: no distribution scheme may beat
// them.
//
// Two settings appear. In the two-level memory setting a single processor
// owns a fast memory of size M words; bounds are on traffic between fast and
// slow memory. In the parallel setting P nodes each hold M = O(m²/P) words
// (the "fair distribution" assumption); bounds are per-node communication
// volumes.
package lowerbound

import "math"

// GEMMSeq returns the IOLB bound (Olivry et al., PLDI 2020) on two-level
// memory traffic for the product of an m×k by a k×n matrix: m·n·k/√M.
func GEMMSeq(m, n, k, M float64) float64 {
	return m * n * k / math.Sqrt(M)
}

// SYRKSeq returns the symmetric-rank-update bound of Beaumont et al.
// (SPAA 2022) for C = A·Aᵀ with A of size m×n: (1/√2)·m²n/(2√M)… the paper
// states (1/√2)·m²n/√M relative to the classical m²n/(2√M); we expose the
// tight constant from the survey: m²n/(√2·√M).
func SYRKSeq(m, n, M float64) float64 {
	return m * m * n / (math.Sqrt2 * math.Sqrt(M))
}

// LUSeq returns the Kwasniewski et al. (PPoPP 2021) bound for LU
// factorization of an m×m matrix in the two-level setting: (2/3)·m³/√M.
func LUSeq(m, M float64) float64 {
	return 2.0 / 3.0 * m * m * m / math.Sqrt(M)
}

// CholeskySeq returns the Beaumont et al. (SPAA 2022) bound for Cholesky
// factorization in the two-level setting: m³/(3√2·√M).
func CholeskySeq(m, M float64) float64 {
	return m * m * m / (3 * math.Sqrt2 * math.Sqrt(M))
}

// GEMMPerNode returns the Irony–Toledo–Tiskin per-node bound for parallel
// matrix multiplication under fair data distribution: Ω(m²/√P); 2DBC attains
// 2m²/√P, which is the value returned here as the reference constant.
func GEMMPerNode(m float64, P int) float64 {
	return 2 * m * m / math.Sqrt(float64(P))
}

// LUPerNode returns the COnfLUX per-node communication bound for parallel LU
// under fair distribution: m²/√P + O(m²/P); the dominant term is returned.
func LUPerNode(m float64, P int) float64 {
	return m * m / math.Sqrt(float64(P))
}

// GEMMPerNodeRepl returns the memory-parameterized per-node bound for
// parallel matrix multiplication with replication factor c on P nodes
// (M ≈ c·m²/P per node): the 2.5D bound Ω(m²/√(cP)) of Irony–Toledo–Tiskin,
// with the same reference constant as GEMMPerNode. c = 1 reduces to
// GEMMPerNode exactly; raising c buys a √c reduction until the memory-
// independent latency floor takes over at c = P^(1/3).
func GEMMPerNodeRepl(m float64, P, c int) float64 {
	return 2 * m * m / math.Sqrt(float64(c)*float64(P))
}

// LUPerNodeRepl returns the memory-parameterized COnfLUX per-node bound for
// parallel LU with replication factor c on P nodes, each holding
// M ≈ c·m²/P words: m²/√(cP) + O(m²/P) (Kwasniewski et al.,
// arXiv:2010.05975, Theorem 1 with the memory term M = c·m²/P). The dominant
// term is returned; c = 1 reduces to LUPerNode exactly.
func LUPerNodeRepl(m float64, P, c int) float64 {
	return m * m / math.Sqrt(float64(c)*float64(P))
}

// CholeskyPerNodeRepl returns the memory-parameterized per-node bound for
// parallel Cholesky with replication factor c: the LU bound scaled by the
// symmetric 1/√2 factor of Beaumont et al. (SPAA 2022), m²/(√2·√(cP)).
func CholeskyPerNodeRepl(m float64, P, c int) float64 {
	return m * m / (math.Sqrt2 * math.Sqrt(float64(c)*float64(P)))
}

// PatternCostLU returns the lower bound on the Section III pattern cost
// metric T = x̄ + ȳ for any balanced pattern on P nodes: every row and every
// column must expose at least ⌈√P⌉ … more precisely the paper states that
// "any pattern on P nodes requires at least ⌈√P⌉ nodes per row and per
// column" on average across an entire replication, giving T ≥ 2√P.
func PatternCostLU(P int) float64 {
	return 2 * math.Sqrt(float64(P))
}

// PatternCostCholesky returns the √2-improved symmetric reference: SBC
// achieves z̄ ≈ √(2P) while remaining a factor √2 above the symmetric lower
// bound √(P)·…; the theoretical limit implied by the SPAA 2022 bounds is
// √P (up to lower-order terms), which is returned here.
func PatternCostCholesky(P int) float64 {
	return math.Sqrt(float64(P))
}

// SBCBasicLaw and SBCExtendedLaw are the cost laws quoted in Section V-B for
// the two SBC families: √(2P) and √(2P) − 0.5.
func SBCBasicLaw(P int) float64 { return math.Sqrt(2 * float64(P)) }

// SBCExtendedLaw returns √(2P) − 0.5; see SBCBasicLaw.
func SBCExtendedLaw(P int) float64 { return math.Sqrt(2*float64(P)) - 0.5 }

// GCRMEmpiricalLaw returns √(3P/2), the empirical lower limit the paper
// observes for GCR&M patterns (regular patterns with v = 3 colrows per node).
func GCRMEmpiricalLaw(P int) float64 { return math.Sqrt(1.5 * float64(P)) }

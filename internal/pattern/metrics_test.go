package pattern

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestDistinctCountsSimple(t *testing.T) {
	// 2x3 2DBC pattern: every row has 3 distinct nodes, every column 2.
	p := MustFromRows([][]int{{0, 1, 2}, {3, 4, 5}})
	for i := 0; i < 2; i++ {
		if got := p.RowDistinct(i); got != 3 {
			t.Errorf("RowDistinct(%d) = %d, want 3", i, got)
		}
	}
	for j := 0; j < 3; j++ {
		if got := p.ColDistinct(j); got != 2 {
			t.Errorf("ColDistinct(%d) = %d, want 2", j, got)
		}
	}
	if !almostEqual(p.AvgRowDistinct(), 3) || !almostEqual(p.AvgColDistinct(), 2) {
		t.Errorf("averages = (%v, %v), want (3, 2)", p.AvgRowDistinct(), p.AvgColDistinct())
	}
	if !almostEqual(p.CostLU(), 5) {
		t.Errorf("CostLU = %v, want 5", p.CostLU())
	}
	// Non-square symmetric cost is x̄+ȳ-1.
	if !almostEqual(p.CostCholesky(), 4) {
		t.Errorf("CostCholesky (rect) = %v, want 4", p.CostCholesky())
	}
}

func TestDistinctWithRepeats(t *testing.T) {
	p := MustFromRows([][]int{{0, 0, 1}, {1, 2, 2}})
	if got := p.RowDistinct(0); got != 2 {
		t.Errorf("RowDistinct(0) = %d, want 2", got)
	}
	if got := p.ColDistinct(0); got != 2 {
		t.Errorf("ColDistinct(0) = %d, want 2", got)
	}
	if got := p.ColDistinct(1); got != 2 {
		t.Errorf("ColDistinct(1) = %d, want 2", got)
	}
}

func TestColrowDistinct(t *testing.T) {
	// 2x2 2DBC: colrow 0 = row 0 ∪ col 0 = {0,1} ∪ {0,2} = 3 nodes.
	p := MustFromRows([][]int{{0, 1}, {2, 3}})
	if got := p.ColrowDistinct(0); got != 3 {
		t.Errorf("ColrowDistinct(0) = %d, want 3", got)
	}
	if got := p.ColrowDistinct(1); got != 3 {
		t.Errorf("ColrowDistinct(1) = %d, want 3", got)
	}
	if !almostEqual(p.AvgColrowDistinct(), 3) {
		t.Errorf("z̄ = %v, want 3", p.AvgColrowDistinct())
	}
	// Square pattern: CostCholesky = z̄ = CostLU - 1 for all-distinct patterns.
	if !almostEqual(p.CostCholesky(), p.CostLU()-1) {
		t.Errorf("CostCholesky = %v, CostLU = %v", p.CostCholesky(), p.CostLU())
	}
}

func TestColrowIgnoresUndefinedDiagonal(t *testing.T) {
	// An undefined diagonal cell must not contribute a node: the dynamic
	// assignment always picks a node already on the colrow. This is the
	// SBC pattern for r=3, P=3 (pairs {0,1}→0, {0,2}→1, {1,2}→2).
	p := MustFromRows([][]int{{9, 0, 1}, {0, 9, 2}, {1, 2, 9}})
	for d := 0; d < 3; d++ {
		p.Set(d, d, Undefined)
	}
	for i := 0; i < 3; i++ {
		if got := p.ColrowDistinct(i); got != 2 {
			t.Errorf("ColrowDistinct(%d) = %d, want 2", i, got)
		}
	}
	if !almostEqual(p.CostCholesky(), 2) {
		t.Errorf("CostCholesky = %v, want 2", p.CostCholesky())
	}
}

func TestColrowPanicsOnRect(t *testing.T) {
	p := MustFromRows([][]int{{0, 1, 2}, {3, 4, 5}})
	defer func() {
		if recover() == nil {
			t.Error("ColrowDistinct on rectangular pattern did not panic")
		}
	}()
	p.ColrowDistinct(0)
}

func TestBatchedDistinctsMatchSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		P := 1 + rng.Intn(10)
		p := New(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				p.Set(i, j, rng.Intn(P))
			}
		}
		rows := p.RowDistincts()
		for i := 0; i < r; i++ {
			if rows[i] != p.RowDistinct(i) {
				t.Fatalf("RowDistincts[%d] = %d, RowDistinct = %d", i, rows[i], p.RowDistinct(i))
			}
		}
		cols := p.ColDistincts()
		for j := 0; j < c; j++ {
			if cols[j] != p.ColDistinct(j) {
				t.Fatalf("ColDistincts[%d] = %d, ColDistinct = %d", j, cols[j], p.ColDistinct(j))
			}
		}
		if r == c {
			zs := p.ColrowDistincts()
			for i := 0; i < r; i++ {
				if zs[i] != p.ColrowDistinct(i) {
					t.Fatalf("ColrowDistincts[%d] = %d, ColrowDistinct = %d", i, zs[i], p.ColrowDistinct(i))
				}
			}
		}
	}
}

// TestCostBoundsProperty checks 1 ≤ x_i ≤ min(P, c) and the LU cost bounds
// 2 ≤ T ≤ r + c on random fully defined patterns.
func TestCostBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(10)
		c := 1 + rng.Intn(10)
		P := 1 + rng.Intn(12)
		p := New(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				p.Set(i, j, rng.Intn(P))
			}
		}
		T := p.CostLU()
		if T < 2-1e-12 || T > float64(r+c)+1e-12 {
			return false
		}
		for i, x := range p.RowDistincts() {
			if x < 1 || x > c || x > P {
				t.Logf("row %d distinct=%d out of range", i, x)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCommVolumeFormulas(t *testing.T) {
	p := MustFromRows([][]int{{0, 1, 2}, {3, 4, 5}})
	// m(m+1)/2 (x̄+ȳ-2) with x̄=3, ȳ=2, m=12: 78*3 = 234.
	if got := p.CommVolumeLU(12); !almostEqual(got, 234) {
		t.Errorf("CommVolumeLU = %v, want 234", got)
	}
	sq := MustFromRows([][]int{{0, 1}, {2, 3}})
	// z̄=3, m=4: 10*(3-1) = 20.
	if got := sq.CommVolumeCholesky(4); !almostEqual(got, 20) {
		t.Errorf("CommVolumeCholesky = %v, want 20", got)
	}
}

func TestDims(t *testing.T) {
	p := MustFromRows([][]int{{0, 1, 2}, {3, 4, 5}})
	if got := p.Dims(); got != "2x3" {
		t.Errorf("Dims = %q, want 2x3", got)
	}
}

// Package pattern implements the distribution-pattern abstraction of
// Beaumont et al., "Data Distribution Schemes for Dense Linear Algebra
// Factorizations on Any Number of Nodes" (IPDPS 2023), Section III.
//
// A pattern is an r×c grid of node identifiers. A matrix split into tiles is
// distributed by replicating the pattern cyclically: tile (i, j) is owned by
// the node in cell (i mod r, j mod c). The paper uses "tile" for a position in
// the matrix and "cell" for a position in a pattern; this package follows that
// vocabulary.
//
// Diagonal cells of a square pattern may be left Undefined. Such cells are
// assigned only when the pattern is replicated onto a concrete matrix (to the
// least-loaded node of their colrow), generalizing the extended Symmetric
// Block Cyclic distribution; see package dist for the replication-time
// resolver. All metrics in this package treat an undefined diagonal cell as
// owned by a node that is already present on its colrow, which is exactly the
// property that makes the dynamic assignment free in terms of communication.
package pattern

import (
	"errors"
	"fmt"
	"strings"
)

// Undefined marks a pattern cell whose owner is chosen at replication time.
// Only diagonal cells of square patterns may be Undefined.
const Undefined = -1

// Pattern is a rectangular grid of node identifiers in [0, P), with optional
// Undefined diagonal cells. The zero value is an empty pattern; use New or
// FromRows to build a usable one.
type Pattern struct {
	rows, cols int
	cells      []int32 // row-major; Undefined or node id
}

// New returns a rows×cols pattern with every cell Undefined.
func New(rows, cols int) *Pattern {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("pattern: invalid dimensions %dx%d", rows, cols))
	}
	cells := make([]int32, rows*cols)
	for i := range cells {
		cells[i] = Undefined
	}
	return &Pattern{rows: rows, cols: cols, cells: cells}
}

// FromRows builds a pattern from a slice of equally sized rows.
func FromRows(rows [][]int) (*Pattern, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("pattern: empty rows")
	}
	p := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != p.cols {
			return nil, fmt.Errorf("pattern: row %d has %d cells, want %d", i, len(r), p.cols)
		}
		for j, v := range r {
			p.Set(i, j, v)
		}
	}
	return p, nil
}

// MustFromRows is FromRows that panics on error; intended for tests and
// package-internal constructions with known-good shapes.
func MustFromRows(rows [][]int) *Pattern {
	p, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return p
}

// Rows returns the number of pattern rows (r).
func (p *Pattern) Rows() int { return p.rows }

// Cols returns the number of pattern columns (c).
func (p *Pattern) Cols() int { return p.cols }

// Square reports whether the pattern has as many rows as columns, which is
// required for the symmetric (colrow) cost to be well defined.
func (p *Pattern) Square() bool { return p.rows == p.cols }

// At returns the node in cell (i, j), or Undefined.
func (p *Pattern) At(i, j int) int {
	return int(p.cells[i*p.cols+j])
}

// Set stores node (or Undefined) in cell (i, j).
func (p *Pattern) Set(i, j, node int) {
	p.cells[i*p.cols+j] = int32(node)
}

// Owner returns the owner of matrix tile (i, j) under cyclic replication of
// the pattern. It returns Undefined for tiles that land on an undefined
// diagonal cell; callers that use undefined diagonals must resolve those
// through a replication-time assigner (see dist.DiagResolver).
func (p *Pattern) Owner(i, j int) int {
	return p.At(i%p.rows, j%p.cols)
}

// Clone returns a deep copy of the pattern.
func (p *Pattern) Clone() *Pattern {
	q := &Pattern{rows: p.rows, cols: p.cols, cells: make([]int32, len(p.cells))}
	copy(q.cells, p.cells)
	return q
}

// Equal reports whether two patterns have identical shape and cells.
func (p *Pattern) Equal(q *Pattern) bool {
	if p.rows != q.rows || p.cols != q.cols {
		return false
	}
	for i, v := range p.cells {
		if q.cells[i] != v {
			return false
		}
	}
	return true
}

// NumNodes returns one more than the largest node id present, i.e. the node
// count P under the convention that node ids are 0..P-1. Undefined cells are
// ignored. It returns 0 for a fully undefined pattern.
func (p *Pattern) NumNodes() int {
	max := int32(Undefined)
	for _, v := range p.cells {
		if v > max {
			max = v
		}
	}
	return int(max) + 1
}

// Counts returns the number of defined cells assigned to each node,
// indexed by node id up to NumNodes().
func (p *Pattern) Counts() []int {
	counts := make([]int, p.NumNodes())
	for _, v := range p.cells {
		if v != Undefined {
			counts[v]++
		}
	}
	return counts
}

// UndefinedCells returns the number of Undefined cells.
func (p *Pattern) UndefinedCells() int {
	n := 0
	for _, v := range p.cells {
		if v == Undefined {
			n++
		}
	}
	return n
}

// IsBalanced reports whether every node in 0..P-1 appears the same number of
// times among the defined cells (the paper's balance requirement for
// fully defined patterns).
func (p *Pattern) IsBalanced() bool {
	return p.BalanceSpread() == 0
}

// BalanceSpread returns the difference between the largest and smallest
// per-node defined-cell counts. A spread of 0 means perfectly balanced; the
// GCR&M guarantee is a spread of at most 1 before diagonal assignment.
func (p *Pattern) BalanceSpread() int {
	counts := p.Counts()
	if len(counts) == 0 {
		return 0
	}
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return max - min
}

// Validate checks the structural invariants:
//   - every node id is in [0, P) where P = NumNodes(),
//   - every node id in [0, P) appears at least once,
//   - Undefined cells, if any, lie only on the diagonal of a square pattern.
func (p *Pattern) Validate() error {
	P := p.NumNodes()
	if P == 0 {
		return errors.New("pattern: no defined cells")
	}
	seen := make([]bool, P)
	for i := 0; i < p.rows; i++ {
		for j := 0; j < p.cols; j++ {
			v := p.At(i, j)
			if v == Undefined {
				if !p.Square() || i != j {
					return fmt.Errorf("pattern: undefined non-diagonal cell (%d,%d)", i, j)
				}
				continue
			}
			if v < 0 || v >= P {
				return fmt.Errorf("pattern: cell (%d,%d) holds invalid node %d", i, j, v)
			}
			seen[v] = true
		}
	}
	for n, ok := range seen {
		if !ok {
			return fmt.Errorf("pattern: node %d never appears (P=%d)", n, P)
		}
	}
	return nil
}

// String renders the pattern as an aligned grid, with "." for Undefined.
func (p *Pattern) String() string {
	width := 1
	if n := p.NumNodes(); n > 10 {
		width = len(fmt.Sprint(n - 1))
	}
	var b strings.Builder
	for i := 0; i < p.rows; i++ {
		for j := 0; j < p.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			if v := p.At(i, j); v == Undefined {
				fmt.Fprintf(&b, "%*s", width, ".")
			} else {
				fmt.Fprintf(&b, "%*d", width, v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package pattern

import (
	"strings"
	"testing"
)

func TestNewAllUndefined(t *testing.T) {
	p := New(3, 4)
	if p.Rows() != 3 || p.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", p.Rows(), p.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if p.At(i, j) != Undefined {
				t.Fatalf("cell (%d,%d) = %d, want Undefined", i, j, p.At(i, j))
			}
		}
	}
	if p.UndefinedCells() != 12 {
		t.Fatalf("UndefinedCells = %d, want 12", p.UndefinedCells())
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	p, err := FromRows([][]int{{0, 1, 2}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if p.At(1, 2) != 5 || p.At(0, 0) != 0 {
		t.Fatalf("unexpected cells: %v", p)
	}
	if p.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", p.NumNodes())
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows(nil): want error")
	}
	if _, err := FromRows([][]int{{}}); err == nil {
		t.Error("FromRows empty row: want error")
	}
	if _, err := FromRows([][]int{{0, 1}, {2}}); err == nil {
		t.Error("FromRows ragged: want error")
	}
}

func TestOwnerReplication(t *testing.T) {
	// The paper's Figure 2 layout: 2x3 pattern for P=6.
	p := MustFromRows([][]int{{0, 1, 2}, {3, 4, 5}})
	cases := []struct{ i, j, want int }{
		{0, 0, 0}, {0, 3, 0}, {1, 0, 3}, {2, 0, 0},
		{5, 7, 4}, {11, 11, 5},
	}
	for _, c := range cases {
		if got := p.Owner(c.i, c.j); got != c.want {
			t.Errorf("Owner(%d,%d) = %d, want %d", c.i, c.j, got, c.want)
		}
	}
}

func TestCloneEqual(t *testing.T) {
	p := MustFromRows([][]int{{0, 1}, {2, 3}})
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal to original")
	}
	q.Set(0, 0, 3)
	if p.Equal(q) {
		t.Fatal("mutating clone affected equality unexpectedly")
	}
	if p.At(0, 0) != 0 {
		t.Fatal("mutating clone changed original")
	}
	r := MustFromRows([][]int{{0, 1, 2}})
	if p.Equal(r) {
		t.Fatal("patterns with different shapes reported equal")
	}
}

func TestCountsAndBalance(t *testing.T) {
	p := MustFromRows([][]int{{0, 1, 0}, {1, 0, 1}})
	counts := p.Counts()
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("Counts = %v, want [3 3]", counts)
	}
	if !p.IsBalanced() {
		t.Fatal("balanced pattern reported unbalanced")
	}
	q := MustFromRows([][]int{{0, 0}, {0, 1}})
	if q.IsBalanced() {
		t.Fatal("unbalanced pattern reported balanced")
	}
	if q.BalanceSpread() != 2 {
		t.Fatalf("BalanceSpread = %d, want 2", q.BalanceSpread())
	}
}

func TestValidate(t *testing.T) {
	good := MustFromRows([][]int{{0, 1}, {1, 0}})
	if err := good.Validate(); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}

	// Undefined diagonal on a square pattern is allowed.
	diag := MustFromRows([][]int{{0, 1}, {1, 0}})
	diag.Set(0, 0, Undefined)
	if err := diag.Validate(); err != nil {
		t.Errorf("undefined diagonal rejected: %v", err)
	}

	// Undefined off-diagonal cell is rejected.
	offdiag := MustFromRows([][]int{{0, 1}, {1, 0}})
	offdiag.Set(0, 1, Undefined)
	if err := offdiag.Validate(); err == nil {
		t.Error("undefined off-diagonal accepted")
	}

	// Undefined cell in a non-square pattern is rejected.
	rect := MustFromRows([][]int{{0, 1, 1}, {1, 0, 0}})
	rect.Set(0, 0, Undefined)
	if err := rect.Validate(); err == nil {
		t.Error("undefined cell in non-square pattern accepted")
	}

	// A hole in the node id space is rejected.
	hole := MustFromRows([][]int{{0, 2}, {2, 0}})
	if err := hole.Validate(); err == nil {
		t.Error("pattern with missing node id accepted")
	}

	// Fully undefined pattern is rejected.
	if err := New(2, 2).Validate(); err == nil {
		t.Error("fully undefined pattern accepted")
	}
}

func TestString(t *testing.T) {
	p := MustFromRows([][]int{{0, 1}, {2, 3}})
	p.Set(1, 1, Undefined)
	s := p.String()
	if !strings.Contains(s, "0 1") || !strings.Contains(s, "2 .") {
		t.Errorf("String output unexpected:\n%s", s)
	}
	// Wide ids should align.
	wide := MustFromRows([][]int{{0, 10}, {5, 11}})
	if got := wide.String(); !strings.Contains(got, " 0 10") {
		t.Errorf("wide String output unexpected:\n%s", got)
	}
}

func TestNumNodesEmpty(t *testing.T) {
	if n := New(2, 2).NumNodes(); n != 0 {
		t.Fatalf("NumNodes of all-undefined = %d, want 0", n)
	}
}

package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Marshal writes the pattern in a simple line-oriented text format:
//
//	rows cols
//	<row 0 cells separated by spaces, "." for Undefined>
//	...
//
// The format is stable and used by cmd/patterndb for the on-disk database.
func (p *Pattern) Marshal(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", p.rows, p.cols); err != nil {
		return err
	}
	for i := 0; i < p.rows; i++ {
		for j := 0; j < p.cols; j++ {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			v := p.At(i, j)
			if v == Undefined {
				if err := bw.WriteByte('.'); err != nil {
					return err
				}
			} else if _, err := bw.WriteString(strconv.Itoa(v)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MarshalString returns the Marshal output as a string.
func (p *Pattern) MarshalString() string {
	var b strings.Builder
	if err := p.Marshal(&b); err != nil {
		// strings.Builder never errors; keep the API honest anyway.
		panic(err)
	}
	return b.String()
}

// Unmarshal parses a pattern in the Marshal format.
func Unmarshal(r io.Reader) (*Pattern, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<20), 1<<24)
	if !br.Scan() {
		return nil, fmt.Errorf("pattern: missing header: %w", br.Err())
	}
	var rows, cols int
	if _, err := fmt.Sscanf(br.Text(), "%d %d", &rows, &cols); err != nil {
		return nil, fmt.Errorf("pattern: bad header %q: %w", br.Text(), err)
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("pattern: bad dimensions %dx%d", rows, cols)
	}
	p := New(rows, cols)
	for i := 0; i < rows; i++ {
		if !br.Scan() {
			return nil, fmt.Errorf("pattern: missing row %d: %w", i, br.Err())
		}
		fields := strings.Fields(br.Text())
		if len(fields) != cols {
			return nil, fmt.Errorf("pattern: row %d has %d cells, want %d", i, len(fields), cols)
		}
		for j, f := range fields {
			if f == "." {
				p.Set(i, j, Undefined)
				continue
			}
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("pattern: row %d cell %d: %w", i, j, err)
			}
			p.Set(i, j, v)
		}
	}
	return p, nil
}

// UnmarshalString parses a pattern from a string in the Marshal format.
func UnmarshalString(s string) (*Pattern, error) {
	return Unmarshal(strings.NewReader(s))
}

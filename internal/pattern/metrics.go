package pattern

import "fmt"

// distinctInRow counts the distinct defined nodes on pattern row i,
// using scratch as a seen-marker keyed by node id (reset lazily via epoch).
type distinctCounter struct {
	mark  []int
	epoch int
}

func newDistinctCounter(P int) *distinctCounter {
	return &distinctCounter{mark: make([]int, P)}
}

func (d *distinctCounter) reset() { d.epoch++ }

func (d *distinctCounter) add(node int) bool {
	if node == Undefined {
		return false
	}
	if d.mark[node] == d.epoch {
		return false
	}
	d.mark[node] = d.epoch
	return true
}

// RowDistinct returns x_i, the number of distinct nodes on pattern row i.
func (p *Pattern) RowDistinct(i int) int {
	d := newDistinctCounter(p.NumNodes())
	d.epoch = 1
	n := 0
	for j := 0; j < p.cols; j++ {
		if d.add(p.At(i, j)) {
			n++
		}
	}
	return n
}

// ColDistinct returns y_j, the number of distinct nodes on pattern column j.
func (p *Pattern) ColDistinct(j int) int {
	d := newDistinctCounter(p.NumNodes())
	d.epoch = 1
	n := 0
	for i := 0; i < p.rows; i++ {
		if d.add(p.At(i, j)) {
			n++
		}
	}
	return n
}

// ColrowDistinct returns z_i, the number of distinct nodes on colrow i (the
// union of row i and column i, Definition 1). The pattern must be square.
func (p *Pattern) ColrowDistinct(i int) int {
	if !p.Square() {
		panic("pattern: ColrowDistinct requires a square pattern")
	}
	d := newDistinctCounter(p.NumNodes())
	d.epoch = 1
	n := 0
	for j := 0; j < p.cols; j++ {
		if d.add(p.At(i, j)) {
			n++
		}
	}
	for k := 0; k < p.rows; k++ {
		if d.add(p.At(k, i)) {
			n++
		}
	}
	return n
}

// RowDistincts returns all x_i in one pass.
func (p *Pattern) RowDistincts() []int {
	d := newDistinctCounter(p.NumNodes())
	out := make([]int, p.rows)
	for i := 0; i < p.rows; i++ {
		d.reset()
		for j := 0; j < p.cols; j++ {
			if d.add(p.At(i, j)) {
				out[i]++
			}
		}
	}
	return out
}

// ColDistincts returns all y_j in one pass.
func (p *Pattern) ColDistincts() []int {
	d := newDistinctCounter(p.NumNodes())
	out := make([]int, p.cols)
	for j := 0; j < p.cols; j++ {
		d.reset()
		for i := 0; i < p.rows; i++ {
			if d.add(p.At(i, j)) {
				out[j]++
			}
		}
	}
	return out
}

// ColrowDistincts returns all z_i in one pass; the pattern must be square.
func (p *Pattern) ColrowDistincts() []int {
	if !p.Square() {
		panic("pattern: ColrowDistincts requires a square pattern")
	}
	d := newDistinctCounter(p.NumNodes())
	out := make([]int, p.rows)
	for i := 0; i < p.rows; i++ {
		d.reset()
		for j := 0; j < p.cols; j++ {
			if d.add(p.At(i, j)) {
				out[i]++
			}
		}
		for k := 0; k < p.rows; k++ {
			if d.add(p.At(k, i)) {
				out[i]++
			}
		}
	}
	return out
}

func mean(xs []int) float64 {
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// AvgRowDistinct returns x̄, the average over rows of the distinct-node count.
func (p *Pattern) AvgRowDistinct() float64 { return mean(p.RowDistincts()) }

// AvgColDistinct returns ȳ, the average over columns of the distinct-node count.
func (p *Pattern) AvgColDistinct() float64 { return mean(p.ColDistincts()) }

// AvgColrowDistinct returns z̄, the average over colrows of the distinct-node
// count; the pattern must be square.
func (p *Pattern) AvgColrowDistinct() float64 { return mean(p.ColrowDistincts()) }

// CostLU returns the paper's communication cost metric for LU factorization,
// T(G) = x̄ + ȳ (Section III-C). The total LU communication volume is
// m(m+1)/2 · (T(G) − 2) for an m×m tile matrix (Equation 1).
func (p *Pattern) CostLU() float64 {
	return p.AvgRowDistinct() + p.AvgColDistinct()
}

// CostCholesky returns the communication cost metric for Cholesky
// factorization. For a square pattern it is T(G) = z̄ exactly (Equation 2).
// For a non-square pattern, a colrow of the matrix meets every pattern row and
// every pattern column, so the distinct-node count on a matrix colrow
// approaches x̄ + ȳ − 1 (the paper uses exactly this value when comparing
// 2DBC and G-2DBC on symmetric problems: "the symmetric cost is equal to the
// non-symmetric cost minus 1").
func (p *Pattern) CostCholesky() float64 {
	if p.Square() {
		return p.AvgColrowDistinct()
	}
	return p.CostLU() - 1
}

// CommVolumeLU returns the predicted total number of tile transfers for the LU
// factorization of an mt×mt tile matrix distributed with this pattern
// (Equation 1): m(m+1)/2 · (x̄ + ȳ − 2). The estimate ignores edge effects in
// the last max(r,c) iterations, as in the paper.
func (p *Pattern) CommVolumeLU(mt int) float64 {
	return float64(mt) * float64(mt+1) / 2 * (p.CostLU() - 2)
}

// CommVolumeCholesky returns the predicted total number of tile transfers for
// the Cholesky factorization of an mt×mt tile matrix (Equation 2):
// m(m+1)/2 · (z̄ − 1).
func (p *Pattern) CommVolumeCholesky(mt int) float64 {
	return float64(mt) * float64(mt+1) / 2 * (p.CostCholesky() - 1)
}

// Dims returns the pattern dimensions formatted as in the paper's Table I,
// e.g. "20x23".
func (p *Pattern) Dims() string {
	return fmt.Sprintf("%dx%d", p.rows, p.cols)
}

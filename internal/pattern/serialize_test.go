package pattern

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMarshalRoundtrip(t *testing.T) {
	p := MustFromRows([][]int{{0, 1, 2}, {3, 4, 5}})
	p.Set(0, 0, 0)
	s := p.MarshalString()
	q, err := UnmarshalString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", p, q)
	}
}

func TestMarshalUndefined(t *testing.T) {
	p := MustFromRows([][]int{{0, 1}, {1, 0}})
	p.Set(0, 0, Undefined)
	s := p.MarshalString()
	if !strings.Contains(s, ".") {
		t.Fatalf("marshal of undefined cell missing '.': %q", s)
	}
	q, err := UnmarshalString(s)
	if err != nil {
		t.Fatal(err)
	}
	if q.At(0, 0) != Undefined {
		t.Fatal("undefined cell lost in roundtrip")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		"",
		"2\n0 1\n1 0\n",
		"2 2\n0 1\n",
		"2 2\n0 1 2\n1 0\n",
		"2 2\n0 x\n1 0\n",
		"0 0\n",
		"-1 2\n",
	}
	for _, s := range bad {
		if _, err := UnmarshalString(s); err == nil {
			t.Errorf("UnmarshalString(%q): want error", s)
		}
	}
}

func TestMarshalRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(12)
		c := 1 + rng.Intn(12)
		p := New(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				p.Set(i, j, rng.Intn(40))
			}
		}
		if r == c && rng.Intn(2) == 0 {
			for d := 0; d < r; d++ {
				if rng.Intn(2) == 0 {
					p.Set(d, d, Undefined)
				}
			}
		}
		q, err := UnmarshalString(p.MarshalString())
		return err == nil && p.Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

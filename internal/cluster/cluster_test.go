package cluster

import (
	"sync"
	"testing"

	"anybc/internal/tile"
)

func payload(v float64) *tile.Tile {
	t := tile.New(2, 2)
	t.Fill(v)
	return t
}

func TestSendRecv(t *testing.T) {
	c := New(2)
	defer c.Close()
	c0, c1 := c.Comm(0), c.Comm(1)
	c0.Send(1, Tag{I: 3, J: 4}, payload(7))
	msg, ok := c1.Recv()
	if !ok {
		t.Fatal("Recv failed")
	}
	if msg.From != 0 || msg.To != 1 || msg.Tag != (Tag{I: 3, J: 4}) {
		t.Fatalf("message metadata wrong: %+v", msg)
	}
	if msg.Payload.At(0, 0) != 7 {
		t.Fatal("payload content wrong")
	}
}

func TestSendClonesPayload(t *testing.T) {
	c := New(2)
	defer c.Close()
	p := payload(1)
	c.Comm(0).Send(1, Tag{}, p)
	p.Fill(99) // mutate after send
	msg, _ := c.Comm(1).Recv()
	if msg.Payload.At(0, 0) != 1 {
		t.Fatal("payload not cloned at send time")
	}
}

func TestFIFOOrder(t *testing.T) {
	c := New(2)
	defer c.Close()
	for i := 0; i < 10; i++ {
		c.Comm(0).Send(1, Tag{I: int32(i)}, payload(float64(i)))
	}
	for i := 0; i < 10; i++ {
		msg, ok := c.Comm(1).Recv()
		if !ok || msg.Tag.I != int32(i) {
			t.Fatalf("message %d out of order: %+v ok=%v", i, msg.Tag, ok)
		}
	}
}

func TestCounters(t *testing.T) {
	c := New(3)
	defer c.Close()
	c.Comm(0).Send(1, Tag{}, payload(0))
	c.Comm(0).Send(1, Tag{}, payload(0))
	c.Comm(2).Send(0, Tag{}, payload(0))
	s := c.Stats()
	if s.Messages[0][1] != 2 || s.Messages[2][0] != 1 || s.Messages[1][0] != 0 {
		t.Fatalf("message counters wrong: %+v", s.Messages)
	}
	if s.TotalMessages() != 3 {
		t.Fatalf("TotalMessages = %d, want 3", s.TotalMessages())
	}
	if s.TotalBytes() != 3*32 {
		t.Fatalf("TotalBytes = %d, want 96", s.TotalBytes())
	}
	sent := s.SentByNode()
	if sent[0] != 2 || sent[1] != 0 || sent[2] != 1 {
		t.Fatalf("SentByNode = %v", sent)
	}
}

func TestCloseReleasesReceivers(t *testing.T) {
	c := New(1)
	done := make(chan bool)
	go func() {
		_, ok := c.Comm(0).Recv()
		done <- ok
	}()
	c.Close()
	if ok := <-done; ok {
		t.Fatal("Recv returned ok=true after Close on empty mailbox")
	}
}

func TestDrainAfterClose(t *testing.T) {
	// Messages already enqueued are lost after close only if unread before;
	// here we enqueue then close then read: the mailbox keeps queued data.
	c := New(2)
	c.Comm(0).Send(1, Tag{I: 1}, payload(5))
	c.Close()
	msg, ok := c.Comm(1).Recv()
	if !ok || msg.Tag.I != 1 {
		t.Fatalf("queued message lost after close: ok=%v", ok)
	}
	if _, ok := c.Comm(1).Recv(); ok {
		t.Fatal("Recv on drained closed mailbox returned ok")
	}
}

func TestConcurrentSenders(t *testing.T) {
	c := New(4)
	defer c.Close()
	const per = 200
	var wg sync.WaitGroup
	for src := 1; src < 4; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			comm := c.Comm(src)
			for i := 0; i < per; i++ {
				comm.Send(0, Tag{I: int32(src), J: int32(i)}, payload(0))
			}
		}(src)
	}
	received := 0
	recvDone := make(chan struct{})
	go func() {
		comm := c.Comm(0)
		for received < 3*per {
			if _, ok := comm.Recv(); !ok {
				break
			}
			received++
		}
		close(recvDone)
	}()
	wg.Wait()
	<-recvDone
	if received != 3*per {
		t.Fatalf("received %d of %d messages", received, 3*per)
	}
	if got := c.Stats().TotalMessages(); got != 3*per {
		t.Fatalf("counter %d, want %d", got, 3*per)
	}
}

func TestPanics(t *testing.T) {
	c := New(2)
	defer c.Close()
	for _, f := range []func(){
		func() { New(0) },
		func() { c.Comm(5) },
		func() { c.Comm(0).Send(0, Tag{}, payload(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Package cluster provides the in-memory message-passing substrate that
// stands in for MPI: P node endpoints connected by a virtual network with
// asynchronous point-to-point tile messages and per-pair traffic counters.
//
// Like the paper's Chameleon setup, every communication is a point-to-point
// message carrying exactly one tile, so the message count equals the tile
// communication volume that Equations (1) and (2) predict — the counters here
// are what the integration tests compare against those formulas.
//
// # Logical messages vs wire hops
//
// The cluster keeps two views of every broadcast. The logical view
// (Stats.Messages, Stats.Bytes) counts one message from the publishing owner
// to each consumer node, exactly the paper's model, regardless of how the
// payload physically travels. The wire view (Stats.Hops, Stats.Forwards)
// counts the physical transmissions on each link. Under BroadcastFlat the two
// coincide. Under BroadcastTree the owner transmits only to its
// ⌈log₂(k+1)⌉ binomial-tree children and recipients relay the shared payload
// onward (Comm.Forward), so the logical counters — and with them every
// Equation (1)/(2) check — are untouched while the owner's NIC serialization
// shrinks from k sends to ⌈log₂(k+1)⌉. Conservation: each wire hop serves
// exactly one logical delivery (or one redelivery), so in a fault-free run
// TotalHops = TotalMessages, decomposed as root sends + forwards +
// redeliveries; a fault-injecting network can only lose hops (a dropped
// interior forward strands its subtree until re-request healing resends
// directly), never mint them.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anybc/internal/tile"
)

// Tag identifies a published tile version: tile coordinates plus the write
// epoch V of the payload (0 for a tile's first writer, incremented by every
// later in-place update; see dag.OutputVersions). In the right-looking
// factorizations every tile is communicated only in its final factored state
// (after the panel kernel of iteration min(i, j)), but graphs that consume a
// tile remotely at several epochs are served too: each epoch travels under
// its own tag, so consumers can distinguish the versions.
//
// Job is the tile-namespace epoch of the multi-tenant service: every message
// of one factorization job travels under that job's id, so two concurrent
// jobs' tiles can never collide even when both factor the same coordinates
// at the same versions. The field is a wire-protocol concern, not an
// application one — job-scoped endpoints (JobComm) stamp it on every send and
// strip it again on delivery, so engines keep working in plain (I, J, V)
// coordinates while the cluster routes each message to its job's private
// plane of mailboxes and counters.
type Tag struct {
	I, J int32
	V    int32
	Job  int32
}

// Message is one tile in flight. SentAt is the wall-clock instant the sender
// published it, so receivers can attribute transfer intervals in real-run
// traces.
//
// A broadcast (SendAll) delivers the same immutable payload tile to every
// destination: receivers must treat Payload as read-only and call Release
// when done with it, which returns the buffer to the cluster's pool after
// the last recipient lets go.
//
// Under tree broadcast a non-empty Forward names the binomial subtree this
// recipient must relay the payload to: the recipient passes the message to
// Comm.Forward exactly once (on its first delivery of the tag — duplicates
// must not re-forward) and then consumes and Releases its own share as
// usual. Forward slices are read-only to recipients and shared between the
// hops of one broadcast.
//
// A message with Req set carries no payload: it is a control message asking
// the destination (the owner of the tagged tile) to re-send the published
// version Tag, the healing half of the runtime's arrival-timeout protocol.
//
// A message with a non-zero Note is a membership notice (no payload, no tag):
// NoteDown announces that NoteRank has died, NoteDone that NoteRank finished
// its share of the run. Notes travel out-of-band — see Comm.Notify.
type Message struct {
	From, To int
	Tag      Tag
	Payload  *tile.Tile
	SentAt   time.Time
	Req      bool           // version re-request control message (Payload is nil)
	Note     NoteKind       // membership notice (Payload is nil); zero for data/requests
	NoteRank int            // subject rank of a Note (the dead or finished node)
	Forward  []int          // tree broadcast: destinations this recipient relays to
	shared   *sharedPayload // nil for hand-built messages (tests)
}

// NoteKind classifies membership notices.
type NoteKind uint8

const (
	// NoteNone marks an ordinary data or request message.
	NoteNone NoteKind = iota
	// NoteDown announces that NoteRank has crashed: it will execute no more
	// tasks, publish no more tiles, and answer no more re-requests. Sent by
	// the dying node itself or gossiped by a peer that presumed it dead.
	NoteDown
	// NoteDone announces that NoteRank has completed every task it owns (or
	// has adopted): the completion barrier of elastic runs.
	NoteDone
)

// sharedPayload reference-counts one broadcast payload across its
// recipients.
type sharedPayload struct {
	pool *tile.Pool
	t    *tile.Tile
	refs atomic.Int32
}

// Release declares this recipient done with the message payload. Once every
// recipient of the broadcast has released it, the buffer returns to the
// cluster's tile pool for reuse by later sends. The payload must not be
// touched after Release; calling Release more than once per received message
// corrupts the refcount. No-op on hand-built messages.
func (m *Message) Release() {
	if m.shared == nil {
		return
	}
	if m.shared.refs.Add(-1) == 0 {
		m.shared.pool.Put(m.shared.t)
	}
	m.shared = nil
}

// Dup returns a second delivery of the same message sharing the payload
// buffer: the reference count grows by one, so the copy must be Released by
// its recipient exactly like the original. Fault-injecting networks use it
// to model duplicate delivery without corrupting the pool. Hand-built
// messages (no shared payload) are returned unchanged.
func (m Message) Dup() Message {
	if m.shared != nil {
		m.shared.refs.Add(1)
	}
	return m
}

// mailbox is an unbounded FIFO queue; Send never blocks, which (together
// with the acyclicity of the task graph) makes the runtime deadlock-free.
// Because the queue is unbounded, backpressure is invisible unless measured:
// peak tracks the high-water mark of queued messages for Stats.MailboxPeak.
//
// Locking discipline: state changes happen under mu, and the condition
// variable is notified after unlock — the same order in put and close, so
// neither path wakes a waiter that must then contend for the still-held
// lock.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	peak   int
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues msg and reports whether it was accepted; a closed mailbox
// (normal shutdown or abort) drops messages.
func (m *mailbox) put(msg Message) bool {
	m.mu.Lock()
	ok := !m.closed
	if ok {
		m.queue = append(m.queue, msg)
		if len(m.queue) > m.peak {
			m.peak = len(m.queue)
		}
	}
	m.mu.Unlock()
	m.cond.Signal()
	return ok
}

// highWater returns the queue-length high-water mark seen so far.
func (m *mailbox) highWater() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// get blocks until a message is available or the mailbox is closed.
func (m *mailbox) get() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return Message{}, false
	}
	msg := m.queue[0]
	// Avoid retaining payloads through the backing array.
	m.queue[0] = Message{}
	m.queue = m.queue[1:]
	return msg, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Network is the fault-injection seam. When a cluster is created with
// NewWithNetwork, every point-to-point delivery — payload sends, control
// requests and redeliveries alike — is routed through Deliver on its way to
// the destination mailbox. The implementation decides the message's fate by
// calling deliver zero or more times, immediately or later, from any
// goroutine: calling it once models a faithful link, zero times models a
// drop (the implementation must then Release the message itself), and
// calling it with msg.Dup() copies models duplicate delivery. The traffic
// counters are incremented at send time, before Deliver runs, so injected
// faults never disturb the quantities Equations (1)/(2) predict.
type Network interface {
	Deliver(msg Message, deliver func(Message))
}

// BroadcastMode selects how SendAll moves one published tile to its k
// consumer nodes.
type BroadcastMode int

const (
	// BroadcastFlat is the paper's pure point-to-point model: the owner
	// serializes k NIC sends, one per destination. The default.
	BroadcastFlat BroadcastMode = iota
	// BroadcastTree routes the payload down a binomial tree: the owner sends
	// to ⌈log₂(k+1)⌉ children and every recipient relays the shared payload
	// to its own subtree (Comm.Forward), pipelining the broadcast across the
	// recipients' NICs. Logical counters (Stats.Messages/Bytes) are
	// unchanged; only the wire hops (Stats.Hops/Forwards) re-route.
	BroadcastTree
)

func (m BroadcastMode) String() string {
	if m == BroadcastTree {
		return "tree"
	}
	return "flat"
}

// Options configures a cluster beyond its node count.
type Options struct {
	// Net is the fault-injection seam; nil is the faithful network.
	Net Network
	// Broadcast selects the SendAll transport (default BroadcastFlat).
	Broadcast BroadcastMode
}

// plane is one job's private slice of the cluster: its own mailboxes and its
// own traffic counters. Every concurrent factorization job runs on its own
// plane over the shared node set, so jobs can never read each other's tiles,
// aborting one job poisons only its plane, and every per-job Report keeps the
// exact Equation (1)/(2) accounting a dedicated cluster would have produced.
type plane struct {
	inboxes      []*mailbox
	messages     []atomic.Int64 // p*p logical counters, src*p+dst (owner→consumer)
	bytes        []atomic.Int64
	hops         []atomic.Int64 // p*p wire transmissions per physical link
	wireBytes    []atomic.Int64 // bytes physically carried per link (one entry per hop)
	forwards     []atomic.Int64 // wire hops sent by tree relays (subset of hops)
	requests     []atomic.Int64 // control re-requests, src*p+dst
	redeliveries []atomic.Int64 // payload re-sends answered by owners
	reduces      []atomic.Int64 // reduction-partial sends (subset of messages)
	reduceBytes  []atomic.Int64 // bytes of reduction partials (subset of bytes)
}

func newPlane(p int) *plane {
	pl := &plane{
		inboxes:      make([]*mailbox, p),
		messages:     make([]atomic.Int64, p*p),
		bytes:        make([]atomic.Int64, p*p),
		hops:         make([]atomic.Int64, p*p),
		wireBytes:    make([]atomic.Int64, p*p),
		forwards:     make([]atomic.Int64, p*p),
		requests:     make([]atomic.Int64, p*p),
		redeliveries: make([]atomic.Int64, p*p),
		reduces:      make([]atomic.Int64, p*p),
		reduceBytes:  make([]atomic.Int64, p*p),
	}
	for i := range pl.inboxes {
		pl.inboxes[i] = newMailbox()
	}
	return pl
}

func (pl *plane) close() {
	for _, m := range pl.inboxes {
		m.close()
	}
}

// Cluster is a set of P virtual nodes with an all-to-all network. A cluster
// hosts one or more tag-namespace planes: single-job callers use the default
// plane (job 0) through Comm and never see the distinction, while the
// multi-tenant service opens one plane per factorization job through JobComm
// and multiplexes many concurrent DAGs over the same P nodes, network seam,
// and send-buffer pool.
type Cluster struct {
	p         int
	planes    sync.Map    // int32 job id -> *plane, created lazily by JobComm
	closed    atomic.Bool // set by Close; late-created planes are born closed
	net       Network     // nil on a fault-free cluster
	broadcast BroadcastMode
	pool      tile.Pool // recycles send clones released by receivers
}

// New creates a cluster of p nodes with a faithful (fault-free) network.
func New(p int) *Cluster {
	return NewWithNetwork(p, nil)
}

// NewWithNetwork creates a cluster of p nodes whose deliveries are routed
// through net; a nil net is the faithful network of New.
func NewWithNetwork(p int, net Network) *Cluster {
	return NewWithOptions(p, Options{Net: net})
}

// NewWithOptions creates a cluster of p nodes with the given network seam and
// broadcast transport.
func NewWithOptions(p int, opt Options) *Cluster {
	if p <= 0 {
		panic(fmt.Sprintf("cluster: invalid node count %d", p))
	}
	c := &Cluster{
		p:         p,
		net:       opt.Net,
		broadcast: opt.Broadcast,
	}
	return c
}

// Broadcast returns the cluster's broadcast transport mode.
func (c *Cluster) Broadcast() BroadcastMode { return c.broadcast }

// plane returns job's plane, creating it on first use. A plane created after
// (or concurrently with) Close is closed immediately — plane.close is
// idempotent — so a receiver racing the cluster's teardown can never block
// on a mailbox no one will ever close.
func (c *Cluster) plane(job int32) *plane {
	if pl, ok := c.planes.Load(job); ok {
		return pl.(*plane)
	}
	pl, _ := c.planes.LoadOrStore(job, newPlane(c.p))
	if c.closed.Load() {
		pl.(*plane).close()
	}
	return pl.(*plane)
}

// planeIfExists returns job's plane without creating one: deliveries to a
// job that was never opened — or was dropped after finishing — must not
// resurrect it.
func (c *Cluster) planeIfExists(job int32) *plane {
	if pl, ok := c.planes.Load(job); ok {
		return pl.(*plane)
	}
	return nil
}

// dispatch hands one message to the network seam (or straight to the
// destination mailbox on a faithful cluster).
func (c *Cluster) dispatch(msg Message) {
	if c.net != nil {
		c.net.Deliver(msg, c.deliver)
		return
	}
	c.deliver(msg)
}

// deliver enqueues msg at its destination — the mailbox of rank msg.To on
// the plane named by the tag's job epoch — releasing the payload share when
// the plane is gone or the mailbox already closed (shutdown or abort).
func (c *Cluster) deliver(msg Message) {
	pl := c.planeIfExists(msg.Tag.Job)
	if pl == nil || !pl.inboxes[msg.To].put(msg) {
		msg.Release()
	}
}

// Nodes returns P.
func (c *Cluster) Nodes() int { return c.p }

// Comm returns the endpoint of node rank on the default plane (job 0) — the
// single-job view every pre-service caller uses.
func (c *Cluster) Comm(rank int) *Comm {
	return c.JobComm(0, rank)
}

// JobComm returns the endpoint of node rank scoped to the given job's tag
// namespace: every send stamps the job epoch into the wire tag, every
// receive strips it again, and Recv sees only this job's messages. Opening
// the first endpoint of a job creates its plane.
func (c *Cluster) JobComm(job int32, rank int) *Comm {
	if rank < 0 || rank >= c.p {
		panic(fmt.Sprintf("cluster: invalid rank %d", rank))
	}
	return &Comm{cluster: c, rank: rank, job: job, pl: c.plane(job)}
}

// Close shuts every mailbox of every plane down, releasing blocked
// receivers. Used at cluster teardown; to end a single job on a shared
// cluster, use CloseJob.
func (c *Cluster) Close() {
	c.closed.Store(true)
	c.planes.Range(func(_, pl any) bool {
		pl.(*plane).close()
		return true
	})
}

// CloseJob shuts down one job's plane: its mailboxes close, so that job's
// blocked receivers wake up while every other tenant keeps running
// untouched. Idempotent; a job that was never opened is a no-op. The plane's
// counters survive for JobStats until DropJob.
func (c *Cluster) CloseJob(job int32) {
	if pl := c.planeIfExists(job); pl != nil {
		pl.close()
	}
}

// DropJob removes a closed job's plane entirely, freeing its mailboxes and
// counters; late deliveries addressed to a dropped job release their payload
// shares back to the pool. Call only after the job's Stats have been
// archived — a long-lived service that never dropped finished jobs would
// leak one counter block per job served.
func (c *Cluster) DropJob(job int32) {
	c.CloseJob(job)
	c.planes.Delete(job)
}

// PoolOutstanding returns the number of send-buffer tiles currently drawn
// from the cluster's pool and not yet released (see tile.Pool.Outstanding).
// After every job on the cluster has finished or been cancelled and its
// receivers drained, the balance returns to zero; a persistent residue is a
// leaked payload share.
func (c *Cluster) PoolOutstanding() int64 {
	return c.pool.Outstanding()
}

// Comm is one node's endpoint: its rank, its job's tag namespace, and its
// view of the network.
type Comm struct {
	cluster *Cluster
	rank    int
	job     int32
	pl      *plane
}

// Rank returns this endpoint's node id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the cluster's node count.
func (c *Comm) Size() int { return c.cluster.p }

// Send delivers a tile to node dst asynchronously. The payload is cloned so
// the sender may keep using its buffer. Self-sends are rejected: the runtime
// must short-circuit local data.
func (c *Comm) Send(dst int, tag Tag, payload *tile.Tile) {
	c.sendAll([]int{dst}, tag, payload)
}

// SendAll publishes one tile version to every listed destination, cloning
// the payload once for the whole broadcast instead of once per destination:
// kernel inputs are read-only, so all recipients share the same immutable
// buffer, which returns to the cluster's pool after the last Release. The
// logical traffic counters count one point-to-point message per destination
// regardless of the broadcast mode — the communication-volume semantics the
// integration tests check are unchanged — while the wire hops follow the
// cluster's BroadcastMode: flat fan-out from the owner, or a binomial tree
// whose recipients relay the shared payload onward via Comm.Forward.
// Destinations must be distinct; self-sends and duplicates are rejected
// before any buffer is cloned, so a malformed destination list cannot leak a
// pooled clone or half-dispatch the broadcast.
func (c *Comm) SendAll(dsts []int, tag Tag, payload *tile.Tile) {
	if len(dsts) == 0 {
		return
	}
	c.sendAll(dsts, tag, payload)
}

func (c *Comm) sendAll(dsts []int, tag Tag, payload *tile.Tile) {
	cl := c.cluster
	tag.Job = c.job // namespace the wire tag; receivers strip it in Recv
	// Validate the full destination list before cloning or dispatching
	// anything: a panic here must leave no pooled clone with a refcount the
	// receivers can never drain, and no partially delivered broadcast.
	for i, dst := range dsts {
		if dst == c.rank {
			panic("cluster: self-send; local data must not go through the network")
		}
		if dst < 0 || dst >= cl.p {
			panic(fmt.Sprintf("cluster: destination %d outside the %d-node cluster", dst, cl.p))
		}
		for _, prev := range dsts[:i] {
			if prev == dst {
				panic(fmt.Sprintf("cluster: duplicate destination %d in broadcast; destinations must be distinct", dst))
			}
		}
	}
	cp := cl.pool.Clone(payload)
	sh := &sharedPayload{pool: &cl.pool, t: cp}
	now := time.Now()
	// Count what is actually on the wire: cp is the transport's private
	// clone, so the counters cannot diverge from the shipped bytes even if
	// the caller mutates or resizes the original payload concurrently.
	bytes := int64(cp.Bytes())
	for _, dst := range dsts {
		idx := c.rank*cl.p + dst
		c.pl.messages[idx].Add(1)
		c.pl.bytes[idx].Add(bytes)
	}
	if cl.broadcast == BroadcastTree && len(dsts) > 1 {
		// The Forward subtrees ride inside in-flight messages long after this
		// call returns, so they must not alias the caller's dsts slice —
		// publishers reuse it as scratch. One private copy serves the whole
		// tree: TreeFanout (here and in every downstream Forward) only ever
		// hands out disjoint subranges of it.
		children, subtrees := TreeFanout(append([]int(nil), dsts...))
		sh.refs.Store(int32(len(children)))
		for i, child := range children {
			idx := c.rank*cl.p + child
			c.pl.hops[idx].Add(1)
			c.pl.wireBytes[idx].Add(bytes)
			cl.dispatch(Message{From: c.rank, To: child, Tag: tag, Payload: cp,
				SentAt: now, Forward: subtrees[i], shared: sh})
		}
		return
	}
	sh.refs.Store(int32(len(dsts)))
	for _, dst := range dsts {
		idx := c.rank*cl.p + dst
		c.pl.hops[idx].Add(1)
		c.pl.wireBytes[idx].Add(bytes)
		cl.dispatch(Message{From: c.rank, To: dst, Tag: tag, Payload: cp, SentAt: now, shared: sh})
	}
}

// SendReduce ships one reduction partial — a layer's accumulator tile — to
// the single node that combines it. Partials always flow up exactly one edge
// of the binomial combine schedule (ReduceTree), so unlike SendAll there is
// no fan-out and no relay: one clone, one hop, in either broadcast mode. The
// send is a logical tile message like any other (Stats.Messages/Bytes) and
// additionally counted in Stats.Reduces/ReduceBytes, so measurements can
// split a replicated run's volume into panel-broadcast and reduction
// traffic. It passes through the fault seam like every delivery; a lost
// partial heals through the ordinary re-request path (Request/Resend from
// the publisher's version cache).
func (c *Comm) SendReduce(dst int, tag Tag, payload *tile.Tile) {
	if dst == c.rank {
		panic("cluster: self-send; local data must not go through the network")
	}
	cl := c.cluster
	if dst < 0 || dst >= cl.p {
		panic(fmt.Sprintf("cluster: destination %d outside the %d-node cluster", dst, cl.p))
	}
	tag.Job = c.job
	cp := cl.pool.Clone(payload)
	sh := &sharedPayload{pool: &cl.pool, t: cp}
	sh.refs.Store(1)
	bytes := int64(cp.Bytes())
	idx := c.rank*cl.p + dst
	c.pl.messages[idx].Add(1)
	c.pl.bytes[idx].Add(bytes)
	c.pl.hops[idx].Add(1)
	c.pl.wireBytes[idx].Add(bytes)
	c.pl.reduces[idx].Add(1)
	c.pl.reduceBytes[idx].Add(bytes)
	cl.dispatch(Message{From: c.rank, To: dst, Tag: tag, Payload: cp, SentAt: time.Now(), shared: sh})
}

// ReduceTree returns the binomial combine schedule for a reduction over n
// group members, member 0 being the root that accumulates the final value:
// parent[s] is the member that adds member s's contribution into its own,
// with parent[0] = -1. The tree is the mirror image of TreeFanout's
// broadcast: member s sends to s − 2^⌊log₂ lowbit(s)⌋ (its binomial parent),
// after absorbing its own children s + 2^j for every 2^j < lowbit(s). Both
// the task graph (internal/dag), the real runtime, and the simulator derive
// the combine order from this one schedule, which is what keeps their byte
// accounting identical.
func ReduceTree(n int) (parent []int) {
	parent = make([]int, n)
	parent[0] = -1
	for s := 1; s < n; s++ {
		parent[s] = s - s&(-s)
	}
	return parent
}

// ReduceChildren returns the members whose contributions member s absorbs,
// in combine order (ascending), under the ReduceTree schedule for n members:
// s + 2^j for every 2^j < lowbit(s) (with lowbit(0) unbounded) that stays
// below n.
func ReduceChildren(n, s int) []int {
	var kids []int
	for step := 1; s+step < n; step <<= 1 {
		if s != 0 && step >= s&(-s) {
			break
		}
		kids = append(kids, s+step)
	}
	return kids
}

// Forward relays a tree-broadcast message onward: the caller received msg
// with a non-empty Forward list and passes it here exactly once, on the
// first delivery of the tag (re-forwarding a duplicate would double-count
// the subtree's hops and deliveries). The subtree is split binomially again
// — this node plays root for its Forward list — so the whole broadcast
// completes in ⌈log₂(k+1)⌉ serial hops on every participant's NIC. Each
// relayed hop shares the broadcast's refcounted payload, passes through the
// fault seam like any delivery, and is counted as a wire hop and a forward,
// never as a logical message: the paper's Equation (1)/(2) accounting
// already charged the owner→consumer volume at SendAll time. Returns the
// number of hops sent. The caller still owns its payload share and releases
// it through the usual Message.Release path.
func (c *Comm) Forward(msg Message) int {
	if len(msg.Forward) == 0 {
		return 0
	}
	cl := c.cluster
	children, subtrees := TreeFanout(msg.Forward)
	now := time.Now()
	for i, child := range children {
		idx := c.rank*cl.p + child
		c.pl.hops[idx].Add(1)
		c.pl.wireBytes[idx].Add(int64(msg.Payload.Bytes()))
		c.pl.forwards[idx].Add(1)
		hop := msg.Dup()
		hop.From, hop.To, hop.SentAt, hop.Forward = c.rank, child, now, subtrees[i]
		hop.Tag.Job = c.job // Recv stripped the namespace; restore it for the wire
		cl.dispatch(hop)
	}
	return len(children)
}

// TreeFanout splits an ordered broadcast destination list into the binomial
// tree rooted at the sender: children are the sender's direct recipients —
// ⌈log₂(len(dsts)+1)⌉ of them — and subtrees[i] is the slice of dsts that
// children[i] must relay onward (possibly empty). Every destination appears
// exactly once across children and subtrees, and applying TreeFanout
// recursively to each subtree reproduces the classic binomial broadcast:
// with virtual ranks 0..k (sender = 0), rank 2^j receives from the sender
// and covers ranks [2^j, min(2^{j+1}, k+1)). The subtree slices alias dsts.
func TreeFanout(dsts []int) (children []int, subtrees [][]int) {
	n := len(dsts) + 1 // participants: the sender plus every destination
	for step := 1; step < n; step <<= 1 {
		end := 2 * step
		if end > n {
			end = n
		}
		children = append(children, dsts[step-1])
		subtrees = append(subtrees, dsts[step:end-1])
	}
	return children, subtrees
}

// Request sends the control message of the arrival-timeout protocol: it asks
// owner to re-send the published tile version tag to this node. Requests are
// counted separately from tile messages (Stats.Requests), so the
// communication-volume counters the paper's equations predict are untouched.
// Like every delivery it passes through the fault seam, so a lost request is
// healed by the requester's exponential backoff, not by the transport.
func (c *Comm) Request(owner int, tag Tag) {
	if owner == c.rank {
		panic("cluster: self-request; local tiles are never re-requested")
	}
	cl := c.cluster
	tag.Job = c.job
	c.pl.requests[c.rank*cl.p+owner].Add(1)
	cl.dispatch(Message{From: c.rank, To: owner, Tag: tag, Req: true, SentAt: time.Now()})
}

// Notify broadcasts a membership notice about subject to every other node.
// Notices model the out-of-band failure-detector / completion service of a
// real cluster (MPI's runtime layer, not its data plane): they bypass the
// fault-injection seam and go straight to the destination mailboxes, so a
// chaotic network can delay or lose tiles but never the fact of a death —
// the arrival-timeout escalation path covers detectors that do lose it.
// Notices carry no payload and are excluded from every traffic counter the
// paper's equations predict.
func (c *Comm) Notify(kind NoteKind, subject int) {
	if kind == NoteNone {
		panic("cluster: Notify with NoteNone")
	}
	cl := c.cluster
	now := time.Now()
	for dst := 0; dst < cl.p; dst++ {
		if dst == c.rank {
			continue
		}
		cl.deliver(Message{From: c.rank, To: dst, Tag: Tag{Job: c.job},
			Note: kind, NoteRank: subject, SentAt: now})
	}
}

// Resend re-sends one published tile version to a single destination in
// answer to a Request. It counts as a tile message (the wire really carries
// the tile again), a wire hop, and additionally as a redelivery, so
// measurements can recover the fault-free volume as Messages − Redeliveries.
// Redeliveries are always direct, even under tree broadcast: the healing
// path must not depend on relays that may themselves be faulty.
func (c *Comm) Resend(dst int, tag Tag, payload *tile.Tile) {
	if dst == c.rank {
		panic("cluster: self-send; local data must not go through the network")
	}
	cl := c.cluster
	tag.Job = c.job
	cp := cl.pool.Clone(payload)
	sh := &sharedPayload{pool: &cl.pool, t: cp}
	sh.refs.Store(1)
	idx := c.rank*cl.p + dst
	c.pl.messages[idx].Add(1)
	c.pl.hops[idx].Add(1)
	c.pl.wireBytes[idx].Add(int64(cp.Bytes()))
	c.pl.redeliveries[idx].Add(1)
	c.pl.bytes[idx].Add(int64(cp.Bytes()))
	cl.dispatch(Message{From: c.rank, To: dst, Tag: tag, Payload: cp, SentAt: time.Now(), shared: sh})
}

// Abort poisons this endpoint's job: every mailbox of the job's plane
// closes, so all the job's blocked receivers on every node wake up with
// ok == false — while other jobs sharing the cluster keep running untouched.
// The runtime uses this to propagate a kernel failure — peers waiting for
// tiles that will never be produced must not hang. Idempotent; on a
// single-job cluster it is equivalent to Cluster.Close.
func (c *Comm) Abort() {
	c.pl.close()
}

// Recv blocks until a message of this endpoint's job arrives; ok is false
// once the job's plane is closed and the mailbox drained. The job epoch is
// stripped from the delivered tag: receivers work in the job-local (I, J, V)
// namespace, and only the wire carries the job id.
func (c *Comm) Recv() (Message, bool) {
	msg, ok := c.pl.inboxes[c.rank].get()
	msg.Tag.Job = 0
	return msg, ok
}

// Stats is a snapshot of the traffic counters. Messages counts every tile
// payload sent in the logical (owner→consumer) view, including redeliveries
// of the arrival-timeout protocol; Redeliveries counts just those re-sends,
// so Messages − Redeliveries is the primary (fault-free-equivalent) volume
// Equations (1)/(2) predict — in both broadcast modes. Hops counts the
// physical transmissions per link and Forwards the subset sent by tree
// relays: under BroadcastFlat, Hops equals Messages and Forwards is zero;
// under BroadcastTree each wire hop still serves exactly one logical
// delivery, so TotalHops = TotalMessages on a faithful network, with the
// owner's share of the hops shrunk to ⌈log₂(k+1)⌉ per broadcast. Requests
// counts the payload-free control messages; MailboxPeak is each node's
// inbound queue high-water mark — the backpressure an unbounded mailbox
// would otherwise hide.
type Stats struct {
	P            int
	Messages     [][]int64 // [src][dst], logical owner→consumer
	Bytes        [][]int64
	Hops         [][]int64 // [src][dst], physical wire transmissions
	WireBytes    [][]int64 // [src][dst], bytes physically carried (one tile per hop)
	Forwards     [][]int64 // [src][dst], tree relay hops (subset of Hops)
	Requests     [][]int64
	Redeliveries [][]int64
	Reduces      [][]int64 // [src][dst], reduction-partial sends (subset of Messages)
	ReduceBytes  [][]int64 // [src][dst], reduction-partial bytes (subset of Bytes)
	MailboxPeak  []int
}

// Stats snapshots the per-pair traffic counters of the default plane
// (job 0) — the whole cluster's traffic for every single-job caller.
func (c *Cluster) Stats() Stats {
	return c.JobStats(0)
}

// JobStats snapshots the per-pair traffic counters of one job's plane: the
// exact accounting a dedicated cluster would have produced for that job,
// unpolluted by its co-tenants. A job that was never opened returns zeroed
// counters.
func (c *Cluster) JobStats(job int32) Stats {
	pl := c.planeIfExists(job)
	s := Stats{
		P:            c.p,
		Messages:     make([][]int64, c.p),
		Bytes:        make([][]int64, c.p),
		Hops:         make([][]int64, c.p),
		WireBytes:    make([][]int64, c.p),
		Forwards:     make([][]int64, c.p),
		Requests:     make([][]int64, c.p),
		Redeliveries: make([][]int64, c.p),
		Reduces:      make([][]int64, c.p),
		ReduceBytes:  make([][]int64, c.p),
		MailboxPeak:  make([]int, c.p),
	}
	for i := 0; i < c.p; i++ {
		s.Messages[i] = make([]int64, c.p)
		s.Bytes[i] = make([]int64, c.p)
		s.Hops[i] = make([]int64, c.p)
		s.WireBytes[i] = make([]int64, c.p)
		s.Forwards[i] = make([]int64, c.p)
		s.Requests[i] = make([]int64, c.p)
		s.Redeliveries[i] = make([]int64, c.p)
		s.Reduces[i] = make([]int64, c.p)
		s.ReduceBytes[i] = make([]int64, c.p)
		if pl == nil {
			continue
		}
		s.MailboxPeak[i] = pl.inboxes[i].highWater()
		for j := 0; j < c.p; j++ {
			s.Messages[i][j] = pl.messages[i*c.p+j].Load()
			s.Bytes[i][j] = pl.bytes[i*c.p+j].Load()
			s.Hops[i][j] = pl.hops[i*c.p+j].Load()
			s.WireBytes[i][j] = pl.wireBytes[i*c.p+j].Load()
			s.Forwards[i][j] = pl.forwards[i*c.p+j].Load()
			s.Requests[i][j] = pl.requests[i*c.p+j].Load()
			s.Redeliveries[i][j] = pl.redeliveries[i*c.p+j].Load()
			s.Reduces[i][j] = pl.reduces[i*c.p+j].Load()
			s.ReduceBytes[i][j] = pl.reduceBytes[i*c.p+j].Load()
		}
	}
	return s
}

// TotalMessages returns the total number of tile messages sent.
func (s Stats) TotalMessages() int64 {
	var t int64
	for _, row := range s.Messages {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// TotalBytes returns the total bytes sent.
func (s Stats) TotalBytes() int64 {
	var t int64
	for _, row := range s.Bytes {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// TotalRequests returns the total number of control re-requests sent.
func (s Stats) TotalRequests() int64 {
	var t int64
	for _, row := range s.Requests {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// TotalRedeliveries returns the total number of payload re-sends.
func (s Stats) TotalRedeliveries() int64 {
	var t int64
	for _, row := range s.Redeliveries {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// TotalHops returns the total number of physical wire transmissions.
func (s Stats) TotalHops() int64 {
	var t int64
	for _, row := range s.Hops {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// TotalForwards returns the total number of tree relay hops.
func (s Stats) TotalForwards() int64 {
	var t int64
	for _, row := range s.Forwards {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// TotalWireBytes returns the bytes physically carried across all links —
// equal to TotalBytes on a faithful flat-broadcast network, and diverging
// from it only through tree relays (which re-carry the payload) and
// redeliveries.
func (s Stats) TotalWireBytes() int64 {
	var t int64
	for _, row := range s.WireBytes {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// TotalReduces returns the total number of reduction-partial sends.
func (s Stats) TotalReduces() int64 {
	var t int64
	for _, row := range s.Reduces {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// TotalReduceBytes returns the total bytes of reduction partials.
func (s Stats) TotalReduceBytes() int64 {
	var t int64
	for _, row := range s.ReduceBytes {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// WireSentByNode returns the bytes each node's outgoing NIC carried.
func (s Stats) WireSentByNode() []int64 {
	out := make([]int64, s.P)
	for i, row := range s.WireBytes {
		for _, v := range row {
			out[i] += v
		}
	}
	return out
}

// WireRecvByNode returns the bytes each node's incoming NIC carried — the
// per-node communication volume the replicated distributions shrink.
func (s Stats) WireRecvByNode() []int64 {
	out := make([]int64, s.P)
	for _, row := range s.WireBytes {
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// SentByNode returns the number of logical messages sent by each node.
func (s Stats) SentByNode() []int64 {
	out := make([]int64, s.P)
	for i, row := range s.Messages {
		for _, v := range row {
			out[i] += v
		}
	}
	return out
}

// HopsByNode returns the number of wire transmissions each node's outgoing
// NIC serialized — the quantity tree broadcast shrinks at the roots.
func (s Stats) HopsByNode() []int64 {
	out := make([]int64, s.P)
	for i, row := range s.Hops {
		for _, v := range row {
			out[i] += v
		}
	}
	return out
}

// Package cluster provides the in-memory message-passing substrate that
// stands in for MPI: P node endpoints connected by a virtual network with
// asynchronous point-to-point tile messages and per-pair traffic counters.
//
// Like the paper's Chameleon setup, every communication is a point-to-point
// message carrying exactly one tile, so the message count equals the tile
// communication volume that Equations (1) and (2) predict — the counters here
// are what the integration tests compare against those formulas.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anybc/internal/tile"
)

// Tag identifies a published tile version: tile coordinates plus the write
// epoch V of the payload (0 for a tile's first writer, incremented by every
// later in-place update; see dag.OutputVersions). In the right-looking
// factorizations every tile is communicated only in its final factored state
// (after the panel kernel of iteration min(i, j)), but graphs that consume a
// tile remotely at several epochs are served too: each epoch travels under
// its own tag, so consumers can distinguish the versions.
type Tag struct {
	I, J int32
	V    int32
}

// Message is one tile in flight. SentAt is the wall-clock instant the sender
// published it, so receivers can attribute transfer intervals in real-run
// traces.
//
// A broadcast (SendAll) delivers the same immutable payload tile to every
// destination: receivers must treat Payload as read-only and call Release
// when done with it, which returns the buffer to the cluster's pool after
// the last recipient lets go.
//
// A message with Req set carries no payload: it is a control message asking
// the destination (the owner of the tagged tile) to re-send the published
// version Tag, the healing half of the runtime's arrival-timeout protocol.
type Message struct {
	From, To int
	Tag      Tag
	Payload  *tile.Tile
	SentAt   time.Time
	Req      bool // version re-request control message (Payload is nil)
	shared   *sharedPayload // nil for hand-built messages (tests)
}

// sharedPayload reference-counts one broadcast payload across its
// recipients.
type sharedPayload struct {
	pool *tile.Pool
	t    *tile.Tile
	refs atomic.Int32
}

// Release declares this recipient done with the message payload. Once every
// recipient of the broadcast has released it, the buffer returns to the
// cluster's tile pool for reuse by later sends. The payload must not be
// touched after Release; calling Release more than once per received message
// corrupts the refcount. No-op on hand-built messages.
func (m *Message) Release() {
	if m.shared == nil {
		return
	}
	if m.shared.refs.Add(-1) == 0 {
		m.shared.pool.Put(m.shared.t)
	}
	m.shared = nil
}

// Dup returns a second delivery of the same message sharing the payload
// buffer: the reference count grows by one, so the copy must be Released by
// its recipient exactly like the original. Fault-injecting networks use it
// to model duplicate delivery without corrupting the pool. Hand-built
// messages (no shared payload) are returned unchanged.
func (m Message) Dup() Message {
	if m.shared != nil {
		m.shared.refs.Add(1)
	}
	return m
}

// mailbox is an unbounded FIFO queue; Send never blocks, which (together
// with the acyclicity of the task graph) makes the runtime deadlock-free.
// Because the queue is unbounded, backpressure is invisible unless measured:
// peak tracks the high-water mark of queued messages for Stats.MailboxPeak.
//
// Locking discipline: state changes happen under mu, and the condition
// variable is notified after unlock — the same order in put and close, so
// neither path wakes a waiter that must then contend for the still-held
// lock.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	peak   int
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues msg and reports whether it was accepted; a closed mailbox
// (normal shutdown or abort) drops messages.
func (m *mailbox) put(msg Message) bool {
	m.mu.Lock()
	ok := !m.closed
	if ok {
		m.queue = append(m.queue, msg)
		if len(m.queue) > m.peak {
			m.peak = len(m.queue)
		}
	}
	m.mu.Unlock()
	m.cond.Signal()
	return ok
}

// highWater returns the queue-length high-water mark seen so far.
func (m *mailbox) highWater() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// get blocks until a message is available or the mailbox is closed.
func (m *mailbox) get() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return Message{}, false
	}
	msg := m.queue[0]
	// Avoid retaining payloads through the backing array.
	m.queue[0] = Message{}
	m.queue = m.queue[1:]
	return msg, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Network is the fault-injection seam. When a cluster is created with
// NewWithNetwork, every point-to-point delivery — payload sends, control
// requests and redeliveries alike — is routed through Deliver on its way to
// the destination mailbox. The implementation decides the message's fate by
// calling deliver zero or more times, immediately or later, from any
// goroutine: calling it once models a faithful link, zero times models a
// drop (the implementation must then Release the message itself), and
// calling it with msg.Dup() copies models duplicate delivery. The traffic
// counters are incremented at send time, before Deliver runs, so injected
// faults never disturb the quantities Equations (1)/(2) predict.
type Network interface {
	Deliver(msg Message, deliver func(Message))
}

// Cluster is a set of P virtual nodes with an all-to-all network.
type Cluster struct {
	p            int
	inboxes      []*mailbox
	messages     []atomic.Int64 // p*p counters, src*p+dst
	bytes        []atomic.Int64
	requests     []atomic.Int64 // control re-requests, src*p+dst
	redeliveries []atomic.Int64 // payload re-sends answered by owners
	net          Network        // nil on a fault-free cluster
	pool         tile.Pool      // recycles send clones released by receivers
}

// New creates a cluster of p nodes with a faithful (fault-free) network.
func New(p int) *Cluster {
	return NewWithNetwork(p, nil)
}

// NewWithNetwork creates a cluster of p nodes whose deliveries are routed
// through net; a nil net is the faithful network of New.
func NewWithNetwork(p int, net Network) *Cluster {
	if p <= 0 {
		panic(fmt.Sprintf("cluster: invalid node count %d", p))
	}
	c := &Cluster{
		p:            p,
		inboxes:      make([]*mailbox, p),
		messages:     make([]atomic.Int64, p*p),
		bytes:        make([]atomic.Int64, p*p),
		requests:     make([]atomic.Int64, p*p),
		redeliveries: make([]atomic.Int64, p*p),
		net:          net,
	}
	for i := range c.inboxes {
		c.inboxes[i] = newMailbox()
	}
	return c
}

// dispatch hands one message to the network seam (or straight to the
// destination mailbox on a faithful cluster).
func (c *Cluster) dispatch(msg Message) {
	if c.net != nil {
		c.net.Deliver(msg, c.deliver)
		return
	}
	c.deliver(msg)
}

// deliver enqueues msg at its destination, releasing the payload share when
// the mailbox is already closed (shutdown or abort).
func (c *Cluster) deliver(msg Message) {
	if !c.inboxes[msg.To].put(msg) {
		msg.Release()
	}
}

// Nodes returns P.
func (c *Cluster) Nodes() int { return c.p }

// Comm returns the endpoint of node rank.
func (c *Cluster) Comm(rank int) *Comm {
	if rank < 0 || rank >= c.p {
		panic(fmt.Sprintf("cluster: invalid rank %d", rank))
	}
	return &Comm{cluster: c, rank: rank}
}

// Close shuts every mailbox down, releasing blocked receivers.
func (c *Cluster) Close() {
	for _, m := range c.inboxes {
		m.close()
	}
}

// Comm is one node's endpoint: its rank and its view of the network.
type Comm struct {
	cluster *Cluster
	rank    int
}

// Rank returns this endpoint's node id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the cluster's node count.
func (c *Comm) Size() int { return c.cluster.p }

// Send delivers a tile to node dst asynchronously. The payload is cloned so
// the sender may keep using its buffer. Self-sends are rejected: the runtime
// must short-circuit local data.
func (c *Comm) Send(dst int, tag Tag, payload *tile.Tile) {
	c.sendAll([]int{dst}, tag, payload)
}

// SendAll publishes one tile version to every listed destination, cloning
// the payload once for the whole broadcast instead of once per destination:
// kernel inputs are read-only, so all recipients share the same immutable
// buffer, which returns to the cluster's pool after the last Release. The
// traffic counters still count one point-to-point message per destination —
// the communication-volume semantics the integration tests check are
// unchanged. Destinations must be distinct; self-sends are rejected.
func (c *Comm) SendAll(dsts []int, tag Tag, payload *tile.Tile) {
	if len(dsts) == 0 {
		return
	}
	c.sendAll(dsts, tag, payload)
}

func (c *Comm) sendAll(dsts []int, tag Tag, payload *tile.Tile) {
	cl := c.cluster
	cp := cl.pool.Clone(payload)
	sh := &sharedPayload{pool: &cl.pool, t: cp}
	sh.refs.Store(int32(len(dsts)))
	now := time.Now()
	bytes := int64(payload.Bytes())
	for _, dst := range dsts {
		if dst == c.rank {
			panic("cluster: self-send; local data must not go through the network")
		}
		idx := c.rank*cl.p + dst
		cl.messages[idx].Add(1)
		cl.bytes[idx].Add(bytes)
		cl.dispatch(Message{From: c.rank, To: dst, Tag: tag, Payload: cp, SentAt: now, shared: sh})
	}
}

// Request sends the control message of the arrival-timeout protocol: it asks
// owner to re-send the published tile version tag to this node. Requests are
// counted separately from tile messages (Stats.Requests), so the
// communication-volume counters the paper's equations predict are untouched.
// Like every delivery it passes through the fault seam, so a lost request is
// healed by the requester's exponential backoff, not by the transport.
func (c *Comm) Request(owner int, tag Tag) {
	if owner == c.rank {
		panic("cluster: self-request; local tiles are never re-requested")
	}
	cl := c.cluster
	cl.requests[c.rank*cl.p+owner].Add(1)
	cl.dispatch(Message{From: c.rank, To: owner, Tag: tag, Req: true, SentAt: time.Now()})
}

// Resend re-sends one published tile version to a single destination in
// answer to a Request. It counts as a tile message (the wire really carries
// the tile again) and additionally as a redelivery, so measurements can
// recover the fault-free volume as Messages − Redeliveries.
func (c *Comm) Resend(dst int, tag Tag, payload *tile.Tile) {
	if dst == c.rank {
		panic("cluster: self-send; local data must not go through the network")
	}
	cl := c.cluster
	cp := cl.pool.Clone(payload)
	sh := &sharedPayload{pool: &cl.pool, t: cp}
	sh.refs.Store(1)
	idx := c.rank*cl.p + dst
	cl.messages[idx].Add(1)
	cl.redeliveries[idx].Add(1)
	cl.bytes[idx].Add(int64(payload.Bytes()))
	cl.dispatch(Message{From: c.rank, To: dst, Tag: tag, Payload: cp, SentAt: time.Now(), shared: sh})
}

// Abort poisons the whole cluster: every mailbox closes, so all blocked
// receivers on every node wake up with ok == false. The runtime uses this to
// propagate a kernel failure — peers waiting for tiles that will never be
// produced must not hang. Idempotent, and equivalent to Cluster.Close.
func (c *Comm) Abort() {
	c.cluster.Close()
}

// Recv blocks until a message arrives; ok is false once the cluster is
// closed and the mailbox drained.
func (c *Comm) Recv() (Message, bool) {
	return c.cluster.inboxes[c.rank].get()
}

// Stats is a snapshot of the traffic counters. Messages counts every tile
// payload sent, including redeliveries of the arrival-timeout protocol;
// Redeliveries counts just those re-sends, so Messages − Redeliveries is the
// primary (fault-free-equivalent) volume Equations (1)/(2) predict. Requests
// counts the payload-free control messages; MailboxPeak is each node's
// inbound queue high-water mark — the backpressure an unbounded mailbox
// would otherwise hide.
type Stats struct {
	P            int
	Messages     [][]int64 // [src][dst]
	Bytes        [][]int64
	Requests     [][]int64
	Redeliveries [][]int64
	MailboxPeak  []int
}

// Stats snapshots the per-pair traffic counters.
func (c *Cluster) Stats() Stats {
	s := Stats{
		P:            c.p,
		Messages:     make([][]int64, c.p),
		Bytes:        make([][]int64, c.p),
		Requests:     make([][]int64, c.p),
		Redeliveries: make([][]int64, c.p),
		MailboxPeak:  make([]int, c.p),
	}
	for i := 0; i < c.p; i++ {
		s.Messages[i] = make([]int64, c.p)
		s.Bytes[i] = make([]int64, c.p)
		s.Requests[i] = make([]int64, c.p)
		s.Redeliveries[i] = make([]int64, c.p)
		s.MailboxPeak[i] = c.inboxes[i].highWater()
		for j := 0; j < c.p; j++ {
			s.Messages[i][j] = c.messages[i*c.p+j].Load()
			s.Bytes[i][j] = c.bytes[i*c.p+j].Load()
			s.Requests[i][j] = c.requests[i*c.p+j].Load()
			s.Redeliveries[i][j] = c.redeliveries[i*c.p+j].Load()
		}
	}
	return s
}

// TotalMessages returns the total number of tile messages sent.
func (s Stats) TotalMessages() int64 {
	var t int64
	for _, row := range s.Messages {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// TotalBytes returns the total bytes sent.
func (s Stats) TotalBytes() int64 {
	var t int64
	for _, row := range s.Bytes {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// TotalRequests returns the total number of control re-requests sent.
func (s Stats) TotalRequests() int64 {
	var t int64
	for _, row := range s.Requests {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// TotalRedeliveries returns the total number of payload re-sends.
func (s Stats) TotalRedeliveries() int64 {
	var t int64
	for _, row := range s.Redeliveries {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// SentByNode returns the number of messages sent by each node.
func (s Stats) SentByNode() []int64 {
	out := make([]int64, s.P)
	for i, row := range s.Messages {
		for _, v := range row {
			out[i] += v
		}
	}
	return out
}

package cluster

import (
	"sync"
	"testing"
)

func TestMailboxHighWater(t *testing.T) {
	c := New(2)
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Comm(0).Send(1, Tag{I: int32(i)}, payload(0))
	}
	// Drain two, then refill: the peak must remember the worst instant.
	c.Comm(1).Recv()
	c.Comm(1).Recv()
	c.Comm(0).Send(1, Tag{I: 5}, payload(0))
	s := c.Stats()
	if s.MailboxPeak[1] != 5 {
		t.Fatalf("MailboxPeak[1] = %d, want 5", s.MailboxPeak[1])
	}
	if s.MailboxPeak[0] != 0 {
		t.Fatalf("MailboxPeak[0] = %d, want 0 (never received)", s.MailboxPeak[0])
	}
}

func TestRequestResendCounters(t *testing.T) {
	c := New(2)
	defer c.Close()
	// Node 1 asks node 0 to re-send (3,4)v1; node 0 answers.
	c.Comm(1).Request(0, Tag{I: 3, J: 4, V: 1})
	msg, ok := c.Comm(0).Recv()
	if !ok {
		t.Fatal("request not delivered")
	}
	if !msg.Req || msg.Payload != nil || msg.Tag != (Tag{I: 3, J: 4, V: 1}) {
		t.Fatalf("request message malformed: %+v", msg)
	}
	msg.Release() // must be a no-op on a payload-free control message

	c.Comm(0).Resend(1, msg.Tag, payload(9))
	ans, ok := c.Comm(1).Recv()
	if !ok {
		t.Fatal("resend not delivered")
	}
	if ans.Req || ans.Tag != msg.Tag || ans.Payload.At(0, 0) != 9 {
		t.Fatalf("resend message malformed: %+v", ans)
	}
	ans.Release()

	s := c.Stats()
	if s.Requests[1][0] != 1 || s.TotalRequests() != 1 {
		t.Fatalf("request counters wrong: %+v", s.Requests)
	}
	// The redelivery counts as a real message AND as a redelivery, so
	// Messages − Redeliveries recovers the fault-free volume.
	if s.Messages[0][1] != 1 || s.Redeliveries[0][1] != 1 || s.TotalRedeliveries() != 1 {
		t.Fatalf("redelivery counters wrong: msgs=%+v redeliveries=%+v", s.Messages, s.Redeliveries)
	}
	if s.Bytes[0][1] != int64(payload(9).Bytes()) {
		t.Fatalf("resend bytes not counted: %+v", s.Bytes)
	}
}

func TestRequestPanicsOnSelf(t *testing.T) {
	c := New(2)
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-request")
		}
	}()
	c.Comm(0).Request(0, Tag{})
}

// recordingNet is a test Network that counts deliveries and can drop or
// duplicate them.
type recordingNet struct {
	mu       sync.Mutex
	seen     int
	drop     bool
	dup      bool
	released func()
}

func (n *recordingNet) Deliver(msg Message, deliver func(Message)) {
	n.mu.Lock()
	n.seen++
	drop, dup := n.drop, n.dup
	n.mu.Unlock()
	if drop {
		msg.Release()
		if n.released != nil {
			n.released()
		}
		return
	}
	if dup {
		deliver(msg.Dup())
	}
	deliver(msg)
}

func TestNetworkSeamSeesEveryDelivery(t *testing.T) {
	net := &recordingNet{}
	c := NewWithNetwork(2, net)
	defer c.Close()
	c.Comm(0).Send(1, Tag{}, payload(1))
	c.Comm(1).Request(0, Tag{})
	c.Comm(0).Resend(1, Tag{}, payload(2))
	if net.seen != 3 {
		t.Fatalf("network saw %d deliveries, want 3 (send, request, resend)", net.seen)
	}
}

func TestNetworkDropCountsButNeverArrives(t *testing.T) {
	released := make(chan struct{}, 1)
	net := &recordingNet{drop: true, released: func() { released <- struct{}{} }}
	c := NewWithNetwork(2, net)
	c.Comm(0).Send(1, Tag{I: 1}, payload(3))
	// Counters are incremented at send time, before the network decides:
	// injected faults never disturb the Eq (1)/(2) quantities.
	if got := c.Stats().TotalMessages(); got != 1 {
		t.Fatalf("dropped message not counted at send time: %d", got)
	}
	<-released // the drop must Release the payload back toward the pool
	c.Close()
	if _, ok := c.Comm(1).Recv(); ok {
		t.Fatal("dropped message was delivered")
	}
}

func TestNetworkDuplicateSharesRefcount(t *testing.T) {
	net := &recordingNet{dup: true}
	c := NewWithNetwork(2, net)
	defer c.Close()
	c.Comm(0).Send(1, Tag{I: 7}, payload(4))
	m1, ok1 := c.Comm(1).Recv()
	m2, ok2 := c.Comm(1).Recv()
	if !ok1 || !ok2 {
		t.Fatal("expected two deliveries of the duplicated message")
	}
	if m1.Tag != m2.Tag || m1.Payload.At(0, 0) != 4 || m2.Payload.At(0, 0) != 4 {
		t.Fatalf("duplicate differs from original: %+v vs %+v", m1.Tag, m2.Tag)
	}
	// Releasing both must be safe: Dup bumped the refcount.
	m1.Release()
	m2.Release()
	// Only one logical message was sent.
	if got := c.Stats().TotalMessages(); got != 1 {
		t.Fatalf("duplicate inflated the counter: %d", got)
	}
}

package cluster

import (
	"math/bits"
	"testing"

	"anybc/internal/tile"
)

// log2Ceil returns ⌈log₂(n)⌉ for n ≥ 1: the binomial-tree root degree for a
// broadcast with n participants (sender + n−1 recipients).
func log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// TestTreeFanoutShape checks the binomial split for every broadcast width up
// to 64: the root degree is ⌈log₂(k+1)⌉, the children plus their subtrees
// partition the destination list exactly, and recursive expansion of the tree
// reaches every destination exactly once in k total hops.
func TestTreeFanoutShape(t *testing.T) {
	for k := 1; k <= 64; k++ {
		dsts := make([]int, k)
		for i := range dsts {
			dsts[i] = i + 1 // node 0 is the sender
		}
		children, subtrees := TreeFanout(dsts)
		if len(children) != len(subtrees) {
			t.Fatalf("k=%d: %d children but %d subtrees", k, len(children), len(subtrees))
		}
		if want := log2Ceil(k + 1); len(children) != want {
			t.Fatalf("k=%d: root degree %d, want ⌈log₂(k+1)⌉ = %d", k, len(children), want)
		}
		// Expand the whole tree: every hop delivers to exactly one node, and
		// the hop count equals k — the tree moves no more data than flat
		// fan-out, it only re-distributes who transmits it.
		delivered := map[int]int{}
		hops := 0
		var expand func(children []int, subtrees [][]int)
		expand = func(children []int, subtrees [][]int) {
			for i, c := range children {
				hops++
				delivered[c]++
				if len(subtrees[i]) > 0 {
					expand(TreeFanout(subtrees[i]))
				}
			}
		}
		expand(children, subtrees)
		if hops != k {
			t.Fatalf("k=%d: tree uses %d hops, want exactly k", k, hops)
		}
		for _, d := range dsts {
			if delivered[d] != 1 {
				t.Fatalf("k=%d: destination %d delivered %d times", k, d, delivered[d])
			}
		}
		if len(delivered) != k {
			t.Fatalf("k=%d: delivered to %d nodes, want %d", k, len(delivered), k)
		}
	}
}

// TestSendAllTreeDelivers drives one tree broadcast by hand: recipients relay
// their Forward lists exactly as the runtime does, every destination receives
// the payload exactly once, and the stats split into root hops (⌈log₂(k+1)⌉)
// plus forwards while the logical message count stays the flat-mode k.
func TestSendAllTreeDelivers(t *testing.T) {
	const p = 12 // sender 0, recipients 1..11 → k = 11
	c := NewWithOptions(p, Options{Broadcast: BroadcastTree})
	defer c.Close()
	dsts := make([]int, p-1)
	for i := range dsts {
		dsts[i] = i + 1
	}
	c.Comm(0).SendAll(dsts, Tag{I: 5, J: 6}, payload(42))
	// Drain each mailbox in dispatch order, relaying like engine.onArrival.
	// The mailboxes are unbounded, so a single goroutine can walk the tree
	// breadth-first: a node's hop is only ever sent after its parent's
	// arrival was processed here.
	got := map[int]int{}
	for queue := []int{}; ; {
		if len(queue) == 0 {
			for _, d := range dsts {
				if got[d] == 0 {
					queue = append(queue, d)
				}
			}
			if len(queue) == 0 {
				break
			}
		}
		node := queue[0]
		queue = queue[1:]
		if got[node] > 0 {
			continue
		}
		msg, ok := tryRecv(c, node)
		if !ok {
			continue
		}
		got[node]++
		if msg.Payload.At(0, 0) != 42 {
			t.Fatalf("node %d: wrong payload %v", node, msg.Payload.At(0, 0))
		}
		c.Comm(node).Forward(msg)
		queue = append(queue, msg.Forward...)
		msg.Release()
	}
	for _, d := range dsts {
		if got[d] != 1 {
			t.Fatalf("node %d received %d deliveries, want 1", d, got[d])
		}
	}
	s := c.Stats()
	k := int64(p - 1)
	if s.TotalMessages() != k {
		t.Fatalf("logical messages %d, want k=%d", s.TotalMessages(), k)
	}
	if s.TotalHops() != k {
		t.Fatalf("wire hops %d, want k=%d (tree conserves hop count)", s.TotalHops(), k)
	}
	rootSends := s.TotalHops() - s.TotalForwards()
	if want := int64(log2Ceil(p)); rootSends != want {
		t.Fatalf("root transmitted %d hops, want ⌈log₂(k+1)⌉ = %d", rootSends, want)
	}
	if hops := s.HopsByNode(); hops[0] != int64(log2Ceil(p)) {
		t.Fatalf("HopsByNode[0] = %d, want %d", hops[0], log2Ceil(p))
	}
}

// tryRecv drains one message from a node's mailbox without blocking forever:
// everything this test awaits has already been dispatched synchronously.
func tryRecv(c *Cluster, node int) (Message, bool) {
	inbox := c.plane(0).inboxes[node]
	inbox.mu.Lock()
	defer inbox.mu.Unlock()
	if len(inbox.queue) == 0 {
		return Message{}, false
	}
	msg := inbox.queue[0]
	inbox.queue = inbox.queue[1:]
	return msg, true
}

// TestSendAllForwardSurvivesCallerScratchReuse pins the aliasing contract
// regression: publishers reuse one scratch slice for consecutive broadcast
// destination lists, so the Forward lists riding inside in-flight messages
// must not alias the caller's slice. (The original bug stranded whole
// subtrees when the next publish rewrote the shared backing array,
// deadlocking fault-free runs.)
func TestSendAllForwardSurvivesCallerScratchReuse(t *testing.T) {
	c := NewWithOptions(8, Options{Broadcast: BroadcastTree})
	defer c.Close()
	scratch := []int{1, 2, 3, 4, 5, 6, 7}
	c.Comm(0).SendAll(scratch, Tag{I: 1}, payload(1))
	// Publisher reuses the scratch for an unrelated, smaller broadcast.
	scratch = scratch[:0]
	scratch = append(scratch, 7, 6, 5)
	c.Comm(0).SendAll(scratch, Tag{I: 2}, payload(2))
	// The first broadcast's hops must still carry subtrees of {1..7}.
	seen := map[int]bool{}
	var walk func(node int)
	walk = func(node int) {
		for {
			msg, ok := tryRecv(c, node)
			if !ok {
				return
			}
			if msg.Tag.I != 1 {
				msg.Release()
				continue
			}
			if seen[node] {
				t.Fatalf("node %d delivered twice", node)
			}
			seen[node] = true
			c.Comm(node).Forward(msg)
			fwd := append([]int(nil), msg.Forward...)
			msg.Release()
			for _, child := range fwd {
				walk(child)
			}
			return
		}
	}
	for d := 1; d <= 7; d++ {
		walk(d)
	}
	for d := 1; d <= 7; d++ {
		if !seen[d] {
			t.Fatalf("node %d never received broadcast 1: Forward list corrupted by scratch reuse", d)
		}
	}
}

// TestSendAllValidatesBeforeDispatch pins the satellite fixes: a malformed
// destination list (self-send, out-of-range, or duplicate) must panic before
// any clone is taken or any message dispatched — no pooled buffer with an
// undrainable refcount, no half-delivered broadcast.
func TestSendAllValidatesBeforeDispatch(t *testing.T) {
	cases := []struct {
		name string
		dsts []int
	}{
		{"self-send mid-list", []int{1, 2, 0, 3}},
		{"out-of-range mid-list", []int{1, 2, 99, 3}},
		{"duplicate destination", []int{1, 2, 3, 2}},
	}
	for _, mode := range []BroadcastMode{BroadcastFlat, BroadcastTree} {
		for _, tc := range cases {
			t.Run(mode.String()+"/"+tc.name, func(t *testing.T) {
				c := NewWithOptions(4, Options{Broadcast: mode})
				defer c.Close()
				func() {
					defer func() {
						if recover() == nil {
							t.Fatal("expected panic on malformed destination list")
						}
					}()
					c.Comm(0).SendAll(tc.dsts, Tag{}, payload(9))
				}()
				// Validation fired before dispatch: nothing was counted and
				// nothing reached the valid destinations earlier in the list.
				if got := c.Stats().TotalMessages(); got != 0 {
					t.Fatalf("half-dispatched broadcast: %d messages counted", got)
				}
				for node := 1; node < 4; node++ {
					if _, ok := tryRecv(c, node); ok {
						t.Fatalf("node %d received part of an invalid broadcast", node)
					}
				}
			})
		}
	}
}

// TestDuplicateThenDropReleasesExactlyOnce covers chaos × shared payloads: a
// network that duplicates a broadcast delivery and then drops one of the
// copies must leave the refcount balanced — each delivered copy released once
// by its recipient, the dropped copy released once by the network, and the
// buffer returned to the pool exactly when the count hits zero.
func TestDuplicateThenDropReleasesExactlyOnce(t *testing.T) {
	net := &dupDropNet{}
	c := NewWithOptions(3, Options{Net: net, Broadcast: BroadcastTree})
	defer c.Close()
	c.Comm(0).SendAll([]int{1, 2}, Tag{I: 3}, payload(7))
	var last Message
	delivered := 0
	for node := 1; node <= 2; node++ {
		for {
			msg, ok := tryRecv(c, node)
			if !ok {
				break
			}
			delivered++
			c.Comm(node).Forward(msg)
			sh := msg.shared
			msg.Release()
			last = Message{shared: sh}
		}
	}
	// k=2 → root degree ⌈log₂3⌉ = 2, so both hops leave the root directly.
	// The seam duplicated each and dropped every second copy: 2+1 = 3
	// deliveries reached the mailboxes.
	if delivered != 3 {
		t.Fatalf("delivered %d copies, want 3 (2 hops duplicated, 1 dup dropped)", delivered)
	}
	if refs := last.shared.refs.Load(); refs != 0 {
		t.Fatalf("refcount %d after all releases, want exactly 0 (double- or under-release)", refs)
	}
}

// dupDropNet duplicates every delivery and drops every second copy: the
// duplicated-then-dropped pattern that must not double-Release one shared
// broadcast buffer.
type dupDropNet struct{ n int }

func (d *dupDropNet) Deliver(msg Message, deliver func(Message)) {
	dup := msg.Dup()
	deliver(msg)
	d.n++
	if d.n%2 == 1 {
		deliver(dup)
	} else {
		dup.Release()
	}
}

// TestForwardCountsHopsNotMessages verifies the accounting split: relayed
// hops increment Hops and Forwards on the relay's row but never the logical
// Messages/Bytes matrices the Eq (1)/(2) checks read.
func TestForwardCountsHopsNotMessages(t *testing.T) {
	c := NewWithOptions(4, Options{Broadcast: BroadcastTree})
	defer c.Close()
	// k=3 → root hops to 1 and 2; node 2 carries the subtree {3}.
	c.Comm(0).SendAll([]int{1, 2, 3}, Tag{}, payload(1))
	msg, ok := tryRecv(c, 2)
	if !ok {
		t.Fatal("root hop to the relay not delivered")
	}
	if len(msg.Forward) == 0 {
		t.Fatalf("hop to node 2 carries no subtree: %+v", msg)
	}
	c.Comm(2).Forward(msg)
	msg.Release()
	s := c.Stats()
	if s.Messages[2][1]+s.Messages[2][3] != 0 {
		t.Fatalf("relay counted as logical message: %+v", s.Messages)
	}
	if s.Messages[0][1] != 1 || s.Messages[0][2] != 1 || s.Messages[0][3] != 1 {
		t.Fatalf("logical messages not owner→consumer: %+v", s.Messages)
	}
	if s.TotalForwards() == 0 {
		t.Fatal("forwarded hops not counted")
	}
	if s.TotalHops() != s.TotalMessages() {
		t.Fatalf("hops %d != messages %d on a faithful network", s.TotalHops(), s.TotalMessages())
	}
}

// TestSendAllCountsCloneBytes pins the satellite fix for the traffic
// counters: bytes are charged from the transport's private clone, so a
// caller resizing its buffer mid-broadcast cannot skew the ledger.
func TestSendAllCountsCloneBytes(t *testing.T) {
	c := New(2)
	defer c.Close()
	p := tile.New(4, 4)
	c.Comm(0).SendAll([]int{1}, Tag{}, p)
	want := int64(p.Bytes())
	if got := c.Stats().TotalBytes(); got != want {
		t.Fatalf("TotalBytes = %d, want %d (the shipped clone's size)", got, want)
	}
}

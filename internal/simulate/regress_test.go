package simulate

import (
	"math"
	"testing"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/trace"
)

const kRegress dag.Kind = 210

// fanGraph is a reduction DAG for regression tests: `leaves` independent
// tasks each write tile (id+1, 0), and one root task (the last id) depends on
// all of them and writes tile (0, 0). Ids are topological, so the generic
// dag.ForEachTask fallback applies.
type fanGraph struct {
	leaves int
}

func (g fanGraph) Name() string           { return "fan" }
func (g fanGraph) Tiles() int             { return g.leaves + 1 }
func (g fanGraph) NumTasks() int          { return g.leaves + 1 }
func (g fanGraph) ID(t dag.Task) int      { return int(t.I) }
func (g fanGraph) TaskOf(id int) dag.Task { return dag.Task{Kind: kRegress, I: int32(id)} }

func (g fanGraph) Dependencies(t dag.Task, visit func(dag.Task)) {
	if int(t.I) == g.leaves {
		for id := 0; id < g.leaves; id++ {
			visit(g.TaskOf(id))
		}
	}
}

func (g fanGraph) Successors(t dag.Task, visit func(dag.Task)) {
	if int(t.I) < g.leaves {
		visit(g.TaskOf(g.leaves))
	}
}

func (g fanGraph) NumDependencies(t dag.Task) int {
	if int(t.I) == g.leaves {
		return g.leaves
	}
	return 0
}

func (g fanGraph) OutputTile(t dag.Task) (int, int) {
	if int(t.I) == g.leaves {
		return 0, 0
	}
	return int(t.I) + 1, 0
}

func (g fanGraph) InputTiles(t dag.Task, visit func(i, j int)) {
	if int(t.I) == g.leaves {
		for id := 0; id < g.leaves; id++ {
			visit(id+1, 0)
		}
	}
}

func (g fanGraph) Flops(t dag.Task, b int) float64 { return 1 }
func (g fanGraph) TotalFlops(b int) float64        { return float64(g.leaves + 1) }

// litDist maps tiles to nodes through a literal function.
type litDist struct {
	p     int
	owner func(i, j int) int
}

func (d litDist) Name() string       { return "lit" }
func (d litDist) Nodes() int         { return d.p }
func (d litDist) Owner(i, j int) int { return d.owner(i, j) }

var _ dag.Graph = fanGraph{}
var _ dist.Distribution = litDist{}

// TestWideFanIn: a task with more than 127 dependencies must execute. The
// dependency counters were once int8, so 200 predecessors wrapped to -56 and
// the root task never became ready — a spurious "dependency deadlock".
func TestWideFanIn(t *testing.T) {
	g := fanGraph{leaves: 200}
	d := litDist{p: 2, owner: func(i, j int) int {
		if i == 0 {
			return 0
		}
		return (i - 1) % 2
	}}
	m := Machine{Workers: 4, FlopsPerWorker: 1e9, LinkBandwidth: 1e9, Latency: 1e-6}
	res, err := Run(g, 8, d, m, Options{Scheduler: FIFOOrder})
	if err != nil {
		t.Fatalf("wide fan-in graph failed: %v", err)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// Half the leaf tiles live on node 1 and cross to node 0.
	if res.Messages != 100 {
		t.Fatalf("%d messages, want 100", res.Messages)
	}
}

// TestBisectionDepartTime: with BisectionBandwidth set, a recorded message's
// departure must stay at the instant the sender NIC starts transmitting. The
// fabric serialization delays arrival only; it used to be folded into the
// departure, which misplaced Gantt arrows and inflated apparent NIC busy
// time.
func TestBisectionDepartTime(t *testing.T) {
	// Two producers on nodes 0 and 1 finish at t=1 and both send one 8-byte
	// tile to node 2. NICs transfer in 1s; the shared fabric adds 2s per
	// message and serializes them.
	g := fanGraph{leaves: 2}
	d := litDist{p: 3, owner: func(i, j int) int {
		if i == 0 {
			return 2
		}
		return i - 1
	}}
	m := Machine{
		Workers:            1,
		FlopsPerWorker:     1,  // dur = 1 flop / 1 flop/s = 1s
		LinkBandwidth:      8,  // 8 bytes / 8 B/s = 1s per NIC pass
		BisectionBandwidth: 4,  // + 2s fabric crossing, serialized
		Latency:            0,
	}
	rec := &trace.Recorder{}
	if _, err := Run(g, 1, d, m, Options{Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if len(rec.Messages) != 2 {
		t.Fatalf("%d messages recorded, want 2", len(rec.Messages))
	}
	for _, msg := range rec.Messages {
		// Each sender's NIC is idle when its producer finishes, so the true
		// departure is the task end — not shifted by the fabric queue.
		if math.Abs(msg.Depart-1) > 1e-12 {
			t.Errorf("message %d->%d departs at %v, want 1 (fabric delay leaked into departure)",
				msg.Src, msg.Dst, msg.Depart)
		}
	}
	// The fabric still serializes the two crossings: arrivals 2s apart.
	a0, a1 := rec.Messages[0].Arrive, rec.Messages[1].Arrive
	if a1 < a0 {
		a0, a1 = a1, a0
	}
	if math.Abs(a1-a0-2) > 1e-12 {
		t.Errorf("arrivals %v and %v: want 2s fabric serialization between them", a0, a1)
	}
}

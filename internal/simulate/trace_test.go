package simulate

import (
	"math"
	"testing"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/trace"
)

// TestRecorderConsistency runs a traced simulation and cross-checks the
// trace against the simulator's own accounting.
func TestRecorderConsistency(t *testing.T) {
	g := dag.NewLU(10)
	d := dist.NewTwoDBC(2, 3)
	m := Machine{Workers: 3, FlopsPerWorker: 1e9, LinkBandwidth: 1e9, Latency: 1e-6}
	rec := &trace.Recorder{}
	res, err := Run(g, 8, d, m, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if len(rec.Tasks) != g.NumTasks() {
		t.Fatalf("trace has %d task events, want %d", len(rec.Tasks), g.NumTasks())
	}
	if int64(len(rec.Messages)) != res.Messages {
		t.Fatalf("trace has %d messages, simulator counted %d", len(rec.Messages), res.Messages)
	}
	if mk := rec.Makespan(); math.Abs(mk-res.Makespan) > 1e-9*res.Makespan {
		t.Fatalf("trace makespan %v vs simulator %v", mk, res.Makespan)
	}
	busy := rec.BusyPerNode(d.Nodes())
	if len(busy) != d.Nodes() {
		t.Fatalf("BusyPerNode length %d, want %d", len(busy), d.Nodes())
	}
	for n := range busy {
		if math.Abs(busy[n]-res.BusyTime[n]) > 1e-9 {
			t.Fatalf("node %d busy %v vs %v", n, busy[n], res.BusyTime[n])
		}
	}
	// Kind breakdown covers all kernels.
	kb := rec.KindBreakdown()
	if kb["GETRF"] <= 0 || kb["GEMM"] <= 0 {
		t.Fatalf("KindBreakdown = %v", kb)
	}
	// Utilization consistent with Result.Efficiency.
	u := rec.Utilization(m.Workers, d.Nodes())
	sum := 0.0
	for _, v := range u {
		sum += v
	}
	if eff := res.Efficiency(m); math.Abs(sum/float64(len(u))-eff) > 1e-9 {
		t.Fatalf("mean utilization %v vs efficiency %v", sum/float64(len(u)), eff)
	}
}

func TestRecorderOffByDefault(t *testing.T) {
	g := dag.NewLU(4)
	if _, err := Run(g, 8, dist.NewTwoDBC(2, 2), PaperMachine(), Options{}); err != nil {
		t.Fatal(err)
	}
}

// Package simulate is the performance substrate standing in for the paper's
// 44-node PlaFRIM cluster: a discrete-event simulator that executes the
// factorization task graphs under a distribution scheme on a calibrated
// machine model, with full overlap of communication and computation. It
// produces the makespans and GFlop/s figures that the paper measures on real
// hardware; absolute numbers are model outputs, but the relative behaviour of
// the distribution schemes — who wins, by what factor, and where the
// crossovers fall — is driven by the compute/communication ratio the model
// captures.
package simulate

import "fmt"

// Machine describes the simulated platform, LogGP-style: every node has
// Workers cores executing one kernel at a time, a full-duplex NIC pair
// serializing outgoing and incoming messages at LinkBandwidth, and a fixed
// per-message Latency. This mirrors the paper's setup where StarPU dedicates
// one core to scheduling and one to MPI, leaving 34 of 36 cores as workers.
type Machine struct {
	// Workers is the number of kernel-executing cores per node.
	Workers int
	// FlopsPerWorker is the sustained kernel throughput per core, in flop/s.
	FlopsPerWorker float64
	// LinkBandwidth is the NIC bandwidth per direction, in bytes/s.
	LinkBandwidth float64
	// Latency is the per-message latency in seconds.
	Latency float64
	// BisectionBandwidth optionally caps the aggregate network throughput in
	// bytes/s (0 = non-blocking fabric, as the paper's OmniPath cluster is
	// modeled). When set, every message also serializes on this shared
	// resource, modeling oversubscribed fabrics where total communication
	// volume — the quantity the paper's schemes minimize — matters even
	// more.
	BisectionBandwidth float64
}

// PaperMachine models the paper's testbed: 36-core Intel Xeon Skylake Gold
// 6240 nodes (34 worker cores after StarPU reserves one core for scheduling
// and one for MPI; ~40 GFlop/s sustained DGEMM per core) on a 100 Gb/s
// OmniPath network (12.5 GB/s, ~2 µs latency).
func PaperMachine() Machine {
	return Machine{
		Workers:        34,
		FlopsPerWorker: 40e9,
		LinkBandwidth:  12.5e9,
		Latency:        2e-6,
	}
}

// Validate reports configuration errors.
func (m Machine) Validate() error {
	if m.Workers <= 0 {
		return fmt.Errorf("simulate: Workers = %d", m.Workers)
	}
	if m.FlopsPerWorker <= 0 {
		return fmt.Errorf("simulate: FlopsPerWorker = %g", m.FlopsPerWorker)
	}
	if m.LinkBandwidth <= 0 {
		return fmt.Errorf("simulate: LinkBandwidth = %g", m.LinkBandwidth)
	}
	if m.Latency < 0 {
		return fmt.Errorf("simulate: Latency = %g", m.Latency)
	}
	if m.BisectionBandwidth < 0 {
		return fmt.Errorf("simulate: BisectionBandwidth = %g", m.BisectionBandwidth)
	}
	return nil
}

// NodeFlops returns the aggregate kernel throughput of one node in flop/s.
func (m Machine) NodeFlops() float64 {
	return float64(m.Workers) * m.FlopsPerWorker
}

// Result summarizes one simulated execution.
type Result struct {
	// Makespan is the simulated wall-clock time in seconds.
	Makespan float64
	// TotalFlops is the factorization's arithmetic work.
	TotalFlops float64
	// Messages and Bytes count the logical owner→consumer tile transfers —
	// one per (tile, remote consumer node), the paper's Eq (1)/(2) quantity,
	// independent of the broadcast mode.
	Messages int64
	Bytes    int64
	// Hops counts physical link transmissions. Flat mode: Hops == Messages.
	// Tree mode: still Hops == Messages in total, but ownership shifts — the
	// root transmits only ⌈log₂(k+1)⌉ of each broadcast's k hops and
	// recipients relay the rest (counted in Forwards ⊆ Hops).
	Hops int64
	// Forwards is the subset of Hops relayed by a non-owner recipient.
	Forwards int64
	// BusyTime[n] is the total kernel-execution time on node n, across all
	// its workers.
	BusyTime []float64
	// TasksPerNode counts kernels per node.
	TasksPerNode []int
	// SentBytes and RecvBytes give per-node traffic, exposing NIC hot spots.
	SentBytes []int64
	RecvBytes []int64
	// Reduces and ReduceBytes are the subset of Messages/Bytes that ship
	// reduction partials — layer accumulators of a replicated (2.5D-style)
	// run flowing up the binomial combine tree. Zero for ordinary graphs.
	Reduces     int64
	ReduceBytes int64
}

// GFlops returns the aggregate simulated performance in GFlop/s.
func (r *Result) GFlops() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.TotalFlops / r.Makespan / 1e9
}

// GFlopsPerNode returns the per-node simulated performance in GFlop/s.
func (r *Result) GFlopsPerNode() float64 {
	if len(r.BusyTime) == 0 {
		return 0
	}
	return r.GFlops() / float64(len(r.BusyTime))
}

// Efficiency returns the mean worker utilization in [0, 1]: busy time over
// makespan × workers.
func (r *Result) Efficiency(m Machine) float64 {
	if r.Makespan <= 0 || len(r.BusyTime) == 0 {
		return 0
	}
	busy := 0.0
	for _, b := range r.BusyTime {
		busy += b
	}
	return busy / (r.Makespan * float64(len(r.BusyTime)*m.Workers))
}

package simulate

// eventKind discriminates simulator events.
type eventKind uint8

const (
	evTaskDone eventKind = iota
	evArrival
)

// event is one scheduled simulator event. For evTaskDone, node is the
// executing node and task the completing task id. For evArrival, node is the
// destination and task the producing task id (the arrival delivers that
// task's output tile); forward, when non-empty, is the binomial subtree of
// nodes the recipient must relay the tile to (tree-broadcast mode).
type event struct {
	time    float64
	seq     uint64 // tie-break for determinism
	kind    eventKind
	node    int32
	task    int32
	forward []int
}

// eventHeap is a binary min-heap on (time, seq).
type eventHeap struct {
	items []event
	seq   uint64
}

func (h *eventHeap) push(e event) {
	h.seq++
	e.seq = h.seq
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) less(a, b int) bool {
	if h.items[a].time != h.items[b].time {
		return h.items[a].time < h.items[b].time
	}
	return h.items[a].seq < h.items[b].seq
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

func (h *eventHeap) empty() bool { return len(h.items) == 0 }

// The per-node ready queues are sched.Heap: the same deterministic priority
// heap (and the same critical-path key) the real runtime dispatches with.

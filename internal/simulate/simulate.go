package simulate

import (
	"fmt"

	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/sched"
	"anybc/internal/trace"
)

// Scheduler selects which ready task a free worker picks next.
type Scheduler int

// Scheduling policies for the per-node ready queues. Both map onto the
// policies of package sched, which the real runtime shares.
const (
	// IterationOrder prioritizes lower iterations and panel kernels before
	// updates (sched.CriticalPath) — the lookahead-friendly policy dynamic
	// runtimes converge to, and the one the real runtime dispatches with.
	IterationOrder Scheduler = iota
	// FIFOOrder executes ready tasks in release order (sched.FIFO).
	FIFOOrder
)

// policy maps the simulator option onto the shared scheduling policy.
func (s Scheduler) policy() sched.Policy {
	if s == FIFOOrder {
		return sched.FIFO
	}
	return sched.CriticalPath
}

// Options configures a simulation run.
type Options struct {
	// TileBytes overrides the message size; 0 means 8·b² bytes.
	TileBytes int
	// Scheduler selects the ready-queue policy (default IterationOrder).
	Scheduler Scheduler
	// Recorder, when non-nil, receives every kernel interval and message of
	// the run for Gantt/utilization analysis (package trace).
	Recorder *trace.Recorder
	// NodeSpeed optionally gives per-node speed multipliers (length P, all
	// positive), modeling heterogeneous nodes: node n executes kernels at
	// NodeSpeed[n] × FlopsPerWorker per worker. Nil means homogeneous.
	NodeSpeed []float64
	// Broadcast selects the transport model for one tile consumed by k
	// remote nodes: cluster.BroadcastFlat (default) serializes k sends on
	// the owner's NIC, the paper's point-to-point model; cluster.
	// BroadcastTree uses the same binomial tree as the real runtime — the
	// owner transmits ⌈log₂(k+1)⌉ hops and recipients relay onward as their
	// copies arrive, so the broadcast pipelines across the recipients' NICs.
	// Logical counters (Result.Messages/Bytes) are mode-independent; the
	// wire view is Result.Hops/Forwards and the per-node Sent/RecvBytes.
	Broadcast cluster.BroadcastMode
}

// Run simulates the execution of graph g with tile size b under distribution
// d on machine m and returns the timing result. The simulation applies the
// owner-computes rule, models one message per (tile, remote consumer node)
// exactly like the real runtime, serializes each node's outgoing and incoming
// NIC, and overlaps communication with computation.
func Run(g dag.Graph, b int, d dist.Distribution, m Machine, opt Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	P := d.Nodes()
	n := g.NumTasks()
	tileBytes := opt.TileBytes
	if tileBytes == 0 {
		tileBytes = 8 * b * b
	}
	// Per-task message sizes: graphs with heterogeneous tile sizes (the
	// factor-and-solve graphs) report them through SizedGraph unless an
	// explicit uniform override is set.
	sizeOf := func(t dag.Task) int { return tileBytes }
	if sized, ok := g.(dag.SizedGraph); ok && opt.TileBytes == 0 {
		sizeOf = func(t dag.Task) int { return sized.OutputBytes(t, b) }
	}
	redg, _ := g.(dag.ReduceGraph)
	speed := func(node int) float64 { return 1 }
	if opt.NodeSpeed != nil {
		if len(opt.NodeSpeed) != P {
			return nil, fmt.Errorf("simulate: %d node speeds for %d nodes", len(opt.NodeSpeed), P)
		}
		for n, v := range opt.NodeSpeed {
			if v <= 0 {
				return nil, fmt.Errorf("simulate: node %d speed %g", n, v)
			}
		}
		speed = func(node int) float64 { return opt.NodeSpeed[node] }
	}

	// Owner of every task, by task id. Dependency counts are int32: wide
	// fan-in tasks (solve and GEMM graphs) can exceed 127 predecessors, which
	// an int8 would silently wrap into a bogus "dependency deadlock".
	ownerOf := make([]int32, n)
	remaining := make([]int32, n)
	dag.ForEachTask(g, func(t dag.Task) {
		id := g.ID(t)
		oi, oj := g.OutputTile(t)
		ownerOf[id] = int32(d.Owner(oi, oj))
		remaining[id] = int32(g.NumDependencies(t))
	})

	// Per-node state.
	ready := make([]sched.Heap, P)
	for i := range ready {
		ready[i] = sched.NewHeap(opt.Scheduler.policy().Tie())
	}
	freeWorkers := make([]int, P)
	nicOut := make([]float64, P)
	nicIn := make([]float64, P)
	fabricFree := 0.0 // shared-fabric serialization point (bisection cap)
	busy := make([]float64, P)
	tasksRun := make([]int, P)
	for i := range freeWorkers {
		freeWorkers[i] = m.Workers
	}
	// Worker-slot bookkeeping for Gantt traces (only when recording).
	var slotFree [][]float64
	if opt.Recorder != nil {
		slotFree = make([][]float64, P)
		for i := range slotFree {
			slotFree[i] = make([]float64, m.Workers)
		}
	}

	policy := opt.Scheduler.policy()

	var events eventHeap
	var result Result
	result.BusyTime = busy
	result.TasksPerNode = tasksRun
	result.TotalFlops = g.TotalFlops(b)
	result.SentBytes = make([]int64, P)
	result.RecvBytes = make([]int64, P)

	dispatch := func(node int, now float64) {
		for freeWorkers[node] > 0 && !ready[node].Empty() {
			id := ready[node].Pop()
			freeWorkers[node]--
			t := g.TaskOf(int(id))
			dur := g.Flops(t, b) / (m.FlopsPerWorker * speed(node))
			busy[node] += dur
			tasksRun[node]++
			if opt.Recorder != nil {
				slot := 0
				for s, free := range slotFree[node] {
					if free <= now+1e-15 {
						slot = s
						break
					}
				}
				slotFree[node][slot] = now + dur
				opt.Recorder.RecordTask(node, slot, t, now, now+dur)
			}
			events.push(event{time: now + dur, kind: evTaskDone, node: int32(node), task: id})
		}
	}

	// release queues a task without dispatching: successors of one completion
	// (or one arrival) become ready at the same instant, so the dispatch
	// decision is made once over the full set — priority picks among all of
	// them, exactly as the real engine's dispatch loop runs after its release
	// sweep.
	release := func(id int) {
		node := int(ownerOf[id])
		ready[node].Push(policy.Key(g.TaskOf(id)), int32(id))
	}

	// Seed: tasks with no dependencies.
	for id := 0; id < n; id++ {
		if remaining[id] == 0 {
			release(id)
		}
	}
	for node := 0; node < P; node++ {
		dispatch(node, 0)
	}

	// sendHop models one physical transmission src→dst: sender NIC
	// serialization, then latency, then receiver NIC, with the optional
	// shared-fabric cap in between. forward is the binomial subtree the
	// recipient must relay onward when the hop arrives (tree mode only).
	// task identifies the producer whose output tile the hop carries.
	sendHop := func(src, dst int, task int32, forward []int, msgBytes int, now float64) {
		transferTime := float64(msgBytes) / m.LinkBandwidth
		depart := max64(now, nicOut[src])
		sendEnd := depart + transferTime
		nicOut[src] = sendEnd
		if m.BisectionBandwidth > 0 {
			// The message also crosses the shared fabric.
			fabricEnd := max64(sendEnd, fabricFree) + float64(msgBytes)/m.BisectionBandwidth
			fabricFree = fabricEnd
			sendEnd = fabricEnd
		}
		recvEnd := max64(sendEnd+m.Latency, nicIn[dst]) + transferTime
		nicIn[dst] = recvEnd
		result.Hops++
		result.SentBytes[src] += int64(msgBytes)
		result.RecvBytes[dst] += int64(msgBytes)
		if opt.Recorder != nil {
			// depart is the instant the message starts leaving the
			// sender NIC — not sendEnd-transferTime, which the fabric
			// serialization would shift forward.
			opt.Recorder.RecordMessage(src, dst, depart, recvEnd, msgBytes)
		}
		events.push(event{time: recvEnd, kind: evArrival, node: int32(dst), task: task, forward: forward})
	}

	done := 0
	var sentTo []int // scratch: distinct remote consumers of one completion
	for !events.empty() {
		ev := events.pop()
		now := ev.time
		switch ev.kind {
		case evTaskDone:
			done++
			node := int(ev.node)
			freeWorkers[node]++
			t := g.TaskOf(int(ev.task))
			src := int(ownerOf[ev.task])
			sentTo = sentTo[:0]
			g.Successors(t, func(s dag.Task) {
				sid := g.ID(s)
				dst := int(ownerOf[sid])
				if dst == src {
					remaining[sid]--
					if remaining[sid] == 0 {
						release(sid)
					}
					return
				}
				for _, d := range sentTo {
					if d == dst {
						return
					}
				}
				sentTo = append(sentTo, dst)
			})
			if len(sentTo) > 0 {
				// Logical accounting is mode-independent: one owner→consumer
				// message per destination, the Equation (1)/(2) quantity.
				msgBytes := sizeOf(t)
				result.Messages += int64(len(sentTo))
				result.Bytes += int64(msgBytes) * int64(len(sentTo))
				if redg != nil && len(sentTo) == 1 && redg.ReducePartial(t) {
					// Reduction partial shipping to its binomial parent — the
					// same single-destination routing the real runtime's
					// Comm.SendReduce takes, counted identically.
					result.Reduces++
					result.ReduceBytes += int64(msgBytes)
				}
				if opt.Broadcast == cluster.BroadcastTree && len(sentTo) > 1 {
					children, subtrees := cluster.TreeFanout(sentTo)
					for i, child := range children {
						// Subtrees alias the sentTo scratch, which the next
						// completion reuses — copy each hop's relay list.
						sendHop(src, child, ev.task, append([]int(nil), subtrees[i]...), msgBytes, now)
					}
				} else {
					for _, dst := range sentTo {
						sendHop(src, dst, ev.task, nil, msgBytes, now)
					}
				}
			}
			dispatch(node, now)
		case evArrival:
			// A tree hop carries its subtree's relay obligation: the
			// recipient's NIC starts forwarding the moment the tile lands,
			// pipelining the rest of the broadcast behind this hop.
			if len(ev.forward) > 0 {
				msgBytes := sizeOf(g.TaskOf(int(ev.task)))
				children, subtrees := cluster.TreeFanout(ev.forward)
				for i, child := range children {
					result.Forwards++
					sendHop(int(ev.node), child, ev.task, subtrees[i], msgBytes, now)
				}
			}
			// The arrival delivers the output tile of producer ev.task to
			// node ev.node: every successor of the producer owned by that
			// node had this tile as its one remote dependency from ev.task.
			producer := g.TaskOf(int(ev.task))
			g.Successors(producer, func(s dag.Task) {
				sid := g.ID(s)
				if int(ownerOf[sid]) != int(ev.node) {
					return
				}
				remaining[sid]--
				if remaining[sid] == 0 {
					release(sid)
				}
			})
			dispatch(int(ev.node), now)
		}
		if now > result.Makespan {
			result.Makespan = now
		}
	}
	if done != n {
		return nil, fmt.Errorf("simulate: executed %d of %d tasks — dependency deadlock", done, n)
	}
	return &result, nil
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

package simulate

import (
	"anybc/internal/dag"
	"anybc/internal/dist"
)

// Analytic is a closed-form performance estimate used to cross-check the
// discrete-event simulator and to extrapolate to matrix sizes too large to
// simulate task by task. The makespan estimate is the maximum of three
// lower bounds, assuming perfect comm/compute overlap:
//
//   - compute: TotalFlops / (P · Workers · FlopsPerWorker)
//   - dependency: CriticalPathFlops / FlopsPerWorker
//   - communication: the busiest node's NIC occupancy, estimated from the
//     exact owner-computes tile-transfer count (dag.CommVolumeTiles) spread
//     over P full-duplex NICs.
type Analytic struct {
	ComputeTime  float64
	CriticalPath float64
	CommTime     float64
	Messages     int64
}

// Estimate returns the analytic model for graph g, tile size b, distribution
// d and machine m.
func Estimate(g dag.Graph, b int, d dist.Distribution, m Machine) Analytic {
	P := float64(d.Nodes())
	msgs := dag.CommVolumeTiles(g, d.Owner)
	bytes := float64(msgs) * 8 * float64(b) * float64(b)
	return Analytic{
		ComputeTime:  g.TotalFlops(b) / (P * m.NodeFlops()),
		CriticalPath: dag.CriticalPathFlops(g, b) / m.FlopsPerWorker,
		CommTime:     bytes/(P*m.LinkBandwidth) + float64(msgs)/P*m.Latency,
		Messages:     msgs,
	}
}

// Makespan returns the estimated makespan: the max of the three bounds.
func (a Analytic) Makespan() float64 {
	t := a.ComputeTime
	if a.CriticalPath > t {
		t = a.CriticalPath
	}
	if a.CommTime > t {
		t = a.CommTime
	}
	return t
}

// GFlops converts the estimate to aggregate GFlop/s for a graph with the
// given total flops.
func (a Analytic) GFlops(totalFlops float64) float64 {
	mk := a.Makespan()
	if mk <= 0 {
		return 0
	}
	return totalFlops / mk / 1e9
}

package simulate_test

import (
	"fmt"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/simulate"
)

// ExampleRun simulates the paper's headline case: LU on 23 nodes, comparing
// the degenerate 23x1 2DBC grid with G-2DBC, on the calibrated machine
// model.
func ExampleRun() {
	g := dag.NewLU(50) // 25,000 x 25,000 elements at tile 500
	m := simulate.PaperMachine()
	bad, _ := simulate.Run(g, 500, dist.NewTwoDBC(23, 1), m, simulate.Options{})
	good, _ := simulate.Run(g, 500, dist.NewG2DBC(23), m, simulate.Options{})
	fmt.Printf("2DBC(23x1): %d messages; G-2DBC: %d messages\n", bad.Messages, good.Messages)
	fmt.Printf("G-2DBC faster: %v (speedup %.1fx)\n",
		good.Makespan < bad.Makespan, bad.Makespan/good.Makespan)
	// Output:
	// 2DBC(23x1): 26026 messages; G-2DBC: 9719 messages
	// G-2DBC faster: true (speedup 2.9x)
}

// ExampleEstimate cross-checks the analytic roofline model against the
// event-driven simulation.
func ExampleEstimate() {
	g := dag.NewLU(40)
	d := dist.NewG2DBC(16)
	m := simulate.PaperMachine()
	a := simulate.Estimate(g, 500, d, m)
	res, _ := simulate.Run(g, 500, d, m, simulate.Options{})
	fmt.Printf("analytic lower bound holds: %v\n", res.Makespan >= a.Makespan()*0.999)
	fmt.Printf("message counts agree: %v\n", a.Messages == res.Messages)
	// Output:
	// analytic lower bound holds: true
	// message counts agree: true
}

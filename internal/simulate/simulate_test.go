package simulate

import (
	"math"
	"testing"

	"anybc/internal/dag"
	"anybc/internal/dist"
)

// testMachine is a small deterministic machine: 2 workers at 1 Gflop/s,
// 1 GB/s links, zero latency.
func testMachine() Machine {
	return Machine{Workers: 2, FlopsPerWorker: 1e9, LinkBandwidth: 1e9, Latency: 0}
}

func TestSingleNodeSingleWorkerIsSerialTime(t *testing.T) {
	g := dag.NewLU(6)
	m := Machine{Workers: 1, FlopsPerWorker: 1e9, LinkBandwidth: 1e9, Latency: 0}
	res, err := Run(g, 32, dist.NewTwoDBC(1, 1), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := g.TotalFlops(32) / 1e9
	if math.Abs(res.Makespan-want) > 1e-9*want {
		t.Fatalf("makespan %v, want serial time %v", res.Makespan, want)
	}
	if res.Messages != 0 || res.Bytes != 0 {
		t.Fatalf("single node communicated: %d messages", res.Messages)
	}
	if got := res.GFlops(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("GFlops = %v, want 1", got)
	}
}

func TestMakespanAtLeastCriticalPath(t *testing.T) {
	g := dag.NewCholesky(10)
	m := testMachine()
	for _, d := range []dist.Distribution{dist.NewTwoDBC(2, 2), dist.NewSBCPair(4)} {
		res, err := Run(g, 16, d, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cp := dag.CriticalPathFlops(g, 16) / m.FlopsPerWorker
		if res.Makespan < cp-1e-12 {
			t.Errorf("%s: makespan %v below critical path %v", d.Name(), res.Makespan, cp)
		}
		lower := g.TotalFlops(16) / (float64(d.Nodes()) * m.NodeFlops())
		if res.Makespan < lower-1e-12 {
			t.Errorf("%s: makespan %v below compute bound %v", d.Name(), res.Makespan, lower)
		}
	}
}

func TestMessagesMatchStructuralCount(t *testing.T) {
	g := dag.NewLU(12)
	for _, d := range []dist.Distribution{
		dist.NewTwoDBC(2, 3), dist.NewG2DBC(7), dist.NewG2DBC(10),
	} {
		res, err := Run(g, 8, d, testMachine(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := dag.CommVolumeTiles(g, d.Owner)
		if res.Messages != want {
			t.Errorf("%s: %d messages, structural count %d", d.Name(), res.Messages, want)
		}
		if res.Bytes != want*8*8*8 {
			t.Errorf("%s: %d bytes, want %d", d.Name(), res.Bytes, want*8*64)
		}
	}
}

func TestMoreWorkersNeverSlower(t *testing.T) {
	g := dag.NewLU(10)
	d := dist.NewTwoDBC(2, 2)
	prev := math.Inf(1)
	for _, w := range []int{1, 2, 4, 8} {
		m := testMachine()
		m.Workers = w
		res, err := Run(g, 16, d, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan > prev*(1+1e-9) {
			t.Errorf("workers=%d: makespan %v worse than with fewer workers %v", w, res.Makespan, prev)
		}
		prev = res.Makespan
	}
}

func TestCommBoundRegime(t *testing.T) {
	// With a crippled network, the makespan must be dominated by transfer
	// time: at least total bytes / (P · bandwidth).
	g := dag.NewLU(8)
	d := dist.NewTwoDBC(2, 2)
	m := testMachine()
	m.LinkBandwidth = 1e3 // 1 KB/s
	res, err := Run(g, 8, d, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(res.Bytes) / (4 * m.LinkBandwidth)
	if res.Makespan < bound {
		t.Errorf("makespan %v below aggregate NIC bound %v", res.Makespan, bound)
	}
	// And it must far exceed the pure-compute makespan.
	fast, _ := Run(g, 8, d, testMachine(), Options{})
	if res.Makespan < 10*fast.Makespan {
		t.Errorf("crippled network not slower: %v vs %v", res.Makespan, fast.Makespan)
	}
}

// TestBisectionBandwidth: capping the shared fabric slows runs down, never
// speeds them up, and amplifies the advantage of low-volume distributions.
func TestBisectionBandwidth(t *testing.T) {
	g := dag.NewLU(20)
	m := testMachine()
	open, err := Run(g, 32, dist.NewG2DBC(9), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.BisectionBandwidth = 2e9
	capped, err := Run(g, 32, dist.NewG2DBC(9), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Makespan < open.Makespan-1e-12 {
		t.Errorf("capped fabric faster: %v vs %v", capped.Makespan, open.Makespan)
	}
	m.BisectionBandwidth = 1e6 // pathological
	choked, err := Run(g, 32, dist.NewG2DBC(9), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(choked.Bytes) / 1e6
	if choked.Makespan < bound {
		t.Errorf("choked makespan %v below fabric bound %v", choked.Makespan, bound)
	}
	// Negative cap rejected.
	m.BisectionBandwidth = -1
	if err := m.Validate(); err == nil {
		t.Error("negative bisection bandwidth accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g := dag.NewCholesky(12)
	d := dist.NewSBCPair(5)
	a, err := Run(g, 16, d, testMachine(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, 16, d, testMachine(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Messages != b.Messages {
		t.Fatalf("simulation not deterministic: %v/%d vs %v/%d",
			a.Makespan, a.Messages, b.Makespan, b.Messages)
	}
}

func TestSchedulerPolicies(t *testing.T) {
	g := dag.NewLU(10)
	d := dist.NewTwoDBC(2, 3)
	for _, s := range []Scheduler{IterationOrder, FIFOOrder} {
		res, err := Run(g, 8, d, testMachine(), Options{Scheduler: s})
		if err != nil {
			t.Fatalf("scheduler %d: %v", s, err)
		}
		if res.Makespan <= 0 {
			t.Fatalf("scheduler %d: non-positive makespan", s)
		}
	}
}

// TestG2DBCBeats2DBCForPrimeP reproduces the paper's headline claim in the
// simulator: for P = 23 at a reasonable matrix size, G-2DBC on all 23 nodes
// outperforms the degenerate 23x1 2DBC grid.
func TestG2DBCBeats2DBCForPrimeP(t *testing.T) {
	const mt, b = 60, 500
	g := dag.NewLU(mt)
	m := PaperMachine()
	bad, err := Run(g, b, dist.NewTwoDBC(23, 1), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good, err := Run(g, b, dist.NewG2DBC(23), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if good.GFlops() <= bad.GFlops() {
		t.Errorf("G-2DBC(23) %.1f GF/s did not beat 2DBC(23x1) %.1f GF/s",
			good.GFlops(), bad.GFlops())
	}
}

func TestAnalyticBounds(t *testing.T) {
	g := dag.NewLU(20)
	d := dist.NewG2DBC(9)
	m := PaperMachine()
	res, err := Run(g, 500, d, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := Estimate(g, 500, d, m)
	if a.Messages != res.Messages {
		t.Errorf("analytic messages %d != simulated %d", a.Messages, res.Messages)
	}
	// The analytic makespan is a lower bound (up to NIC-imbalance slack).
	if res.Makespan < a.ComputeTime-1e-12 || res.Makespan < a.CriticalPath-1e-12 {
		t.Errorf("simulated makespan %v below analytic bounds %+v", res.Makespan, a)
	}
	if a.GFlops(g.TotalFlops(500)) < res.GFlops()-1e-9 {
		t.Errorf("analytic GFlops below simulated")
	}
}

func TestEfficiencyInRange(t *testing.T) {
	g := dag.NewLU(16)
	m := testMachine()
	res, err := Run(g, 16, dist.NewTwoDBC(2, 2), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eff := res.Efficiency(m)
	if eff <= 0 || eff > 1 {
		t.Fatalf("efficiency %v out of (0,1]", eff)
	}
}

func TestValidation(t *testing.T) {
	g := dag.NewLU(2)
	if _, err := Run(g, 4, dist.NewTwoDBC(1, 1), Machine{}, Options{}); err == nil {
		t.Error("invalid machine accepted")
	}
	bad := []Machine{
		{Workers: 0, FlopsPerWorker: 1, LinkBandwidth: 1},
		{Workers: 1, FlopsPerWorker: 0, LinkBandwidth: 1},
		{Workers: 1, FlopsPerWorker: 1, LinkBandwidth: 0},
		{Workers: 1, FlopsPerWorker: 1, LinkBandwidth: 1, Latency: -1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("machine %+v accepted", m)
		}
	}
	if err := PaperMachine().Validate(); err != nil {
		t.Errorf("PaperMachine invalid: %v", err)
	}
}

package simulate

import (
	"math/bits"
	"testing"

	"anybc/internal/cluster"
	"anybc/internal/dag"
	"anybc/internal/dist"
)

const kTree dag.Kind = 211

// starGraph is the broadcast stress DAG: task 0 writes tile (0, 0) and each
// of `consumers` successor tasks (ids 1..consumers) reads it and writes its
// own tile (id, 0) — one producer, every other node a consumer.
type starGraph struct {
	consumers int
}

func (g starGraph) Name() string           { return "star" }
func (g starGraph) Tiles() int             { return g.consumers + 1 }
func (g starGraph) NumTasks() int          { return g.consumers + 1 }
func (g starGraph) ID(t dag.Task) int      { return int(t.I) }
func (g starGraph) TaskOf(id int) dag.Task { return dag.Task{Kind: kTree, I: int32(id)} }

func (g starGraph) Dependencies(t dag.Task, visit func(dag.Task)) {
	if t.I > 0 {
		visit(g.TaskOf(0))
	}
}

func (g starGraph) Successors(t dag.Task, visit func(dag.Task)) {
	if t.I == 0 {
		for id := 1; id <= g.consumers; id++ {
			visit(g.TaskOf(id))
		}
	}
}

func (g starGraph) NumDependencies(t dag.Task) int {
	if t.I > 0 {
		return 1
	}
	return 0
}

func (g starGraph) OutputTile(t dag.Task) (int, int) { return int(t.I), 0 }

func (g starGraph) InputTiles(t dag.Task, visit func(i, j int)) {
	if t.I > 0 {
		visit(0, 0)
	}
}

func (g starGraph) Flops(t dag.Task, b int) float64 { return 1 }
func (g starGraph) TotalFlops(b int) float64        { return float64(g.consumers + 1) }

var _ dag.Graph = starGraph{}

// censusWireSplit predicts, from the graph and distribution alone, the
// logical message count and the number of hops the owners transmit under
// binomial-tree broadcast (⌈log₂(k+1)⌉ per tile published to k > 1 remote
// consumers, 1 when k = 1).
func censusWireSplit(g dag.Graph, d dist.Distribution) (messages, ownerHops int64) {
	dag.ForEachTask(g, func(t dag.Task) {
		oi, oj := g.OutputTile(t)
		src := d.Owner(oi, oj)
		seen := map[int]bool{}
		g.Successors(t, func(s dag.Task) {
			si, sj := g.OutputTile(s)
			if dst := d.Owner(si, sj); dst != src {
				seen[dst] = true
			}
		})
		k := len(seen)
		if k == 0 {
			return
		}
		messages += int64(k)
		if k == 1 {
			ownerHops++
		} else {
			ownerHops += int64(bits.Len(uint(k)))
		}
	})
	return messages, ownerHops
}

// TestTreeBroadcastAccounting runs one LU case in both modes and checks the
// two-ledger contract: logical Messages/Bytes are identical, the wire moves
// the same total hop count either way, and tree mode splits it into the
// census-predicted owner hops plus relays.
func TestTreeBroadcastAccounting(t *testing.T) {
	g := dag.NewLU(12)
	d := dist.NewG2DBC(23)
	m := testMachine()
	wantMsgs, wantOwnerHops := censusWireSplit(g, d)

	flat, err := Run(g, 16, d, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Run(g, 16, d, m, Options{Broadcast: cluster.BroadcastTree})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Messages != tree.Messages || flat.Bytes != tree.Bytes {
		t.Fatalf("logical ledger depends on transport: flat %d/%d, tree %d/%d",
			flat.Messages, flat.Bytes, tree.Messages, tree.Bytes)
	}
	if flat.Messages != wantMsgs {
		t.Fatalf("%d logical messages, census predicts %d", flat.Messages, wantMsgs)
	}
	if flat.Hops != flat.Messages || flat.Forwards != 0 {
		t.Fatalf("flat wire ledger: hops=%d forwards=%d, want %d/0",
			flat.Hops, flat.Forwards, flat.Messages)
	}
	if tree.Hops != wantMsgs {
		t.Fatalf("tree moved %d hops, want %d (same data, redistributed transmitters)",
			tree.Hops, wantMsgs)
	}
	if ownerHops := tree.Hops - tree.Forwards; ownerHops != wantOwnerHops {
		t.Fatalf("owners transmitted %d hops, census predicts Σ⌈log₂(k+1)⌉ = %d",
			ownerHops, wantOwnerHops)
	}
	if tree.Forwards == 0 {
		t.Fatal("no relays on a 23-node broadcast-heavy case; tree mode did not engage")
	}
}

// TestTreePipelinesWideBroadcast pins the performance property the tree
// exists for: with one producer whose output every other node consumes, flat
// mode serializes P−1 transfer times on the root's NIC while the tree
// pipelines across recipients' NICs in ~⌈log₂P⌉ rounds — strictly faster
// once communication dominates.
func TestTreePipelinesWideBroadcast(t *testing.T) {
	// Star graph: task 0 on node 0 feeds one consumer task on each node.
	const p = 16
	g := starGraph{consumers: p - 1}
	d := litDist{p: p, owner: func(i, j int) int { return i }}
	// Communication-bound: tiny flops, fat messages, zero latency.
	m := Machine{Workers: 1, FlopsPerWorker: 1e12, LinkBandwidth: 1e9, Latency: 0}
	const b = 250 // 8·b² = 500 kB per tile → 0.5 ms per hop transfer

	flat, err := Run(g, b, d, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Run(g, b, d, m, Options{Broadcast: cluster.BroadcastTree})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Messages != int64(p-1) || tree.Messages != int64(p-1) {
		t.Fatalf("star should send %d messages, got flat %d tree %d",
			p-1, flat.Messages, tree.Messages)
	}
	// Flat: the root's NIC serializes p−1 transfers, so the last consumer
	// waits ~(p−1)·T. Tree: the longest chain is strictly shorter for p = 16.
	if tree.Makespan >= flat.Makespan {
		t.Fatalf("tree makespan %v not below flat %v on a wide broadcast",
			tree.Makespan, flat.Makespan)
	}
	transfer := float64(8*b*b) / m.LinkBandwidth
	if lower := float64(p-1) * transfer; flat.Makespan < lower {
		t.Fatalf("flat makespan %v below the root's serialized NIC time %v", flat.Makespan, lower)
	}
	// Relays are store-and-forward, so each hop costs one sender-NIC pass
	// plus one receiver-NIC pass. The critical chain of the binomial 16-tree
	// is root→8→12→14→15: the root's 4th send completes at 4T, each relay
	// then receives (+T) and works off its earlier children before the chain
	// hop departs — 14 transfer times end to end, against the flat root's
	// 16 (15 serialized sends + the last receiver pass). The gap widens with
	// p; at this size the pinned win is exact.
	if upper := 14*transfer + 1e-9; tree.Makespan > upper {
		t.Fatalf("tree makespan %v above the pipelined critical chain %v", tree.Makespan, upper)
	}
	if tree.Hops != int64(p-1) || tree.Forwards != int64(p-1-4) {
		t.Fatalf("tree wire split hops=%d forwards=%d, want %d/%d (root degree ⌈log₂16⌉ = 4)",
			tree.Hops, tree.Forwards, p-1, p-1-4)
	}
}

package simulate

import (
	"testing"

	"anybc/internal/dag"
	"anybc/internal/dist"
)

// TestSolveGraphSimulation runs the factor-and-solve graphs through the
// simulator, checking sized messages and per-node traffic accounting.
func TestSolveGraphSimulation(t *testing.T) {
	const mt, b, nrhs = 12, 100, 4
	m := Machine{Workers: 2, FlopsPerWorker: 1e9, LinkBandwidth: 1e9, Latency: 1e-6}
	for _, g := range []dag.Graph{dag.NewLUSolve(mt, nrhs), dag.NewCholeskySolve(mt, nrhs)} {
		d := solveWrap{Distribution: dist.NewTwoDBC(2, 3), mt: mt}
		res, err := Run(g, b, d, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if res.Messages == 0 {
			t.Fatalf("%s: no communication", g.Name())
		}
		// Messages are a mix of 8·b² matrix tiles and 8·b·nrhs RHS tiles,
		// so total bytes must be strictly between the two uniform extremes.
		if res.Bytes >= res.Messages*int64(8*b*b) {
			t.Errorf("%s: bytes %d not below uniform-matrix bound", g.Name(), res.Bytes)
		}
		if res.Bytes <= res.Messages*int64(8*b*nrhs) {
			t.Errorf("%s: bytes %d not above uniform-RHS bound", g.Name(), res.Bytes)
		}
		var sent, recv int64
		for n := range res.SentBytes {
			sent += res.SentBytes[n]
			recv += res.RecvBytes[n]
		}
		if sent != res.Bytes || recv != res.Bytes {
			t.Errorf("%s: per-node traffic %d/%d does not sum to total %d",
				g.Name(), sent, recv, res.Bytes)
		}
		// The solve phase must not dominate: makespan within 2x of the
		// factorization-only simulation.
		var base dag.Graph
		if g.Name() == "LU+solve" {
			base = dag.NewLU(mt)
		} else {
			base = dag.NewCholesky(mt)
		}
		baseRes, err := Run(base, b, dist.NewTwoDBC(2, 3), m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan > 2*baseRes.Makespan {
			t.Errorf("%s: makespan %v more than doubles factorization %v",
				g.Name(), res.Makespan, baseRes.Makespan)
		}
	}
}

// solveWrap mirrors runtime's RHS tile placement for simulation purposes.
type solveWrap struct {
	dist.Distribution
	mt int
}

func (s solveWrap) Owner(i, j int) int {
	if j >= s.mt {
		return s.Distribution.Owner(i, i)
	}
	return s.Distribution.Owner(i, j)
}

func TestUniformOverrideBeatsSizing(t *testing.T) {
	// An explicit TileBytes override must apply to every message even on a
	// SizedGraph.
	g := dag.NewLUSolve(6, 2)
	d := solveWrap{Distribution: dist.NewTwoDBC(2, 2), mt: 6}
	m := Machine{Workers: 1, FlopsPerWorker: 1e9, LinkBandwidth: 1e9, Latency: 0}
	res, err := Run(g, 10, d, m, Options{TileBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != res.Messages*100 {
		t.Errorf("override ignored: %d bytes for %d messages", res.Bytes, res.Messages)
	}
}

package core

import (
	"math"
	"os"
	"testing"

	"anybc/internal/gcrm"
)

// osCreate is a seam for the pattern-file tests.
var osCreate = os.Create

func quickOpts() Options {
	return Options{GCRMSearch: gcrm.SearchOptions{Seeds: 10, SizeFactor: 3, BaseSeed: 1, Parallel: true}}
}

func TestNewAllSchemes(t *testing.T) {
	// A valid node count per scheme: 21 works for all but STS (which needs
	// P = r(r-1)/6, e.g. 35).
	validP := map[Scheme]int{TwoDBC: 21, G2DBC: 21, SBC: 21, GCRM: 21, STSScheme: 35}
	for _, s := range Schemes() {
		p, ok := validP[s]
		if !ok {
			t.Fatalf("scheme %s missing from test table", s)
		}
		d, err := New(s, p, quickOpts())
		if err != nil {
			t.Fatalf("New(%s, %d): %v", s, p, err)
		}
		if d.Nodes() != p {
			t.Errorf("New(%s): Nodes = %d, want %d", s, d.Nodes(), p)
		}
		if d.Owner(0, 0) < 0 || d.Owner(0, 0) >= p {
			t.Errorf("New(%s): Owner out of range", s)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(SBC, 23, quickOpts()); err == nil {
		t.Error("SBC for P=23 accepted")
	}
	if _, err := New("nope", 4, quickOpts()); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := New(TwoDBC, 0, quickOpts()); err == nil {
		t.Error("P=0 accepted")
	}
}

func TestNewCaseInsensitive(t *testing.T) {
	if _, err := New("G2DBC", 10, quickOpts()); err != nil {
		t.Errorf("uppercase scheme name rejected: %v", err)
	}
}

func TestDescribe(t *testing.T) {
	d, err := New(G2DBC, 23, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := Describe(d)
	if r.Dims != "20x23" || !r.Balanced {
		t.Errorf("Describe(G-2DBC 23) = %+v", r)
	}
	if math.Abs(r.CostLU-9.652) > 0.001 {
		t.Errorf("CostLU = %v", r.CostLU)
	}
}

func TestLoadPatternFile(t *testing.T) {
	dir := t.TempDir()
	d, err := New(GCRM, 10, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/gcrm-0010.pattern"
	f, err := osCreate(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Pattern(d).Marshal(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := FromDB(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes() != 10 {
		t.Fatalf("loaded distribution has %d nodes", got.Nodes())
	}
	// Same pattern → same owners under the deterministic diagonal resolver.
	for i := 0; i < 12; i++ {
		for j := 0; j <= i; j++ {
			if got.Owner(i, j) != d.Owner(i, j) {
				t.Fatalf("owner mismatch at (%d,%d)", i, j)
			}
		}
	}

	// Fully defined pattern loads as cyclic.
	d2, _ := New(G2DBC, 6, quickOpts())
	path2 := dir + "/g2dbc.pattern"
	f2, err := osCreate(path2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Pattern(d2).Marshal(f2); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	got2, err := LoadPatternFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Owner(3, 4) != d2.Owner(3, 4) {
		t.Fatal("cyclic load owner mismatch")
	}

	// Missing file errors.
	if _, err := FromDB(dir, 99); err == nil {
		t.Error("missing pattern file accepted")
	}
}

func TestRecommend(t *testing.T) {
	lu, err := Recommend(23, false, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if Pattern(lu) == nil || lu.Nodes() != 23 {
		t.Error("non-symmetric recommendation broken")
	}
	ch, err := Recommend(23, true, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ch.Nodes() != 23 {
		t.Error("symmetric recommendation broken")
	}
	// The symmetric recommendation must beat the G-2DBC symmetric cost.
	if got, g2 := Describe(ch).CostCholesky, Describe(lu).CostLU-1; got >= g2 {
		t.Errorf("GCR&M cost %v not below G-2DBC symmetric cost %v", got, g2)
	}
}

// Package core is the high-level façade over the paper's contribution: it
// names the four distribution schemes (2DBC, G-2DBC, SBC, GCR&M), constructs
// them uniformly for any node count, reports their communication costs, and
// recommends a scheme for a given workload — the entry point examples and
// command-line tools build on.
//
// The scheme implementations live in the focused packages: dist (2DBC,
// G-2DBC, SBC, diagonal resolution), gcrm (the Greedy ColRow & Matching
// heuristic), and pattern (the cost metric of Section III).
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"anybc/internal/dist"
	"anybc/internal/gcrm"
	"anybc/internal/pattern"
)

// Scheme names a distribution family.
type Scheme string

// The four schemes studied in the paper.
const (
	// TwoDBC is the classical 2D block-cyclic distribution on the most
	// square grid r·c = P.
	TwoDBC Scheme = "2dbc"
	// G2DBC is the paper's Generalized 2DBC for any P (Section IV).
	G2DBC Scheme = "g2dbc"
	// SBC is the Symmetric Block Cyclic distribution (valid P only).
	SBC Scheme = "sbc"
	// GCRM is the paper's Greedy ColRow & Matching heuristic for any P
	// (Section V).
	GCRM Scheme = "gcrm"
	// STSScheme is the explicit Steiner-triple-system distribution (valid
	// P = r(r−1)/6 with r ≡ 3 mod 6 only), this repository's answer to the
	// paper's open question on explicit symmetric patterns.
	STSScheme Scheme = "sts"
)

// Schemes lists every scheme name.
func Schemes() []Scheme { return []Scheme{TwoDBC, G2DBC, SBC, GCRM, STSScheme} }

// Options tunes scheme construction.
type Options struct {
	// GCRMSearch configures the GCR&M pattern search; zero value uses the
	// paper's protocol (100 seeds, sizes up to 6√P).
	GCRMSearch gcrm.SearchOptions
}

// New constructs the named scheme for exactly P nodes. SBC returns an error
// for node counts outside its two families; every other scheme accepts any
// P ≥ 1.
func New(s Scheme, P int, opt Options) (dist.Distribution, error) {
	if P < 1 {
		return nil, fmt.Errorf("core: invalid node count %d", P)
	}
	switch Scheme(strings.ToLower(string(s))) {
	case TwoDBC:
		return dist.Best2DBC(P), nil
	case G2DBC:
		return dist.NewG2DBC(P), nil
	case SBC:
		return dist.NewSBC(P)
	case STSScheme:
		return dist.NewSTSForP(P)
	case GCRM:
		so := opt.GCRMSearch
		if so.Seeds == 0 {
			so = gcrm.DefaultSearchOptions()
		}
		res, err := gcrm.Search(P, so)
		if err != nil {
			return nil, err
		}
		return dist.NewDiagResolver(fmt.Sprintf("GCR&M(%dx%d,P=%d)", res.R, res.R, P), res.Pattern), nil
	default:
		return nil, fmt.Errorf("core: unknown scheme %q (want one of %v)", s, Schemes())
	}
}

// Report summarizes a distribution for display.
type Report struct {
	Name         string
	Nodes        int
	Dims         string
	CostLU       float64
	CostCholesky float64
	Balanced     bool
}

// Describe builds a Report for any pattern-backed distribution. Pattern-less
// distributions get a Report with the cost fields zeroed rather than a panic.
func Describe(d dist.Distribution) Report {
	p, ok := dist.PatternOf(d)
	if !ok {
		return Report{Name: d.Name(), Nodes: d.Nodes()}
	}
	r := Report{
		Name:     d.Name(),
		Nodes:    d.Nodes(),
		Dims:     p.Dims(),
		CostLU:   p.CostLU(),
		Balanced: p.BalanceSpread() <= 1,
	}
	if p.Square() || p.UndefinedCells() == 0 {
		r.CostCholesky = p.CostCholesky()
	}
	return r
}

// Recommend returns the paper's recommendation for P nodes: G-2DBC for
// non-symmetric factorizations (LU), GCR&M for symmetric ones (Cholesky) —
// both valid for every P, with costs at or below the classical schemes.
func Recommend(P int, symmetric bool, opt Options) (dist.Distribution, error) {
	if symmetric {
		return New(GCRM, P, opt)
	}
	return New(G2DBC, P, opt)
}

// Pattern extracts the underlying pattern of a distribution, or nil.
func Pattern(d dist.Distribution) *pattern.Pattern {
	if p, ok := dist.PatternOf(d); ok {
		return p
	}
	return nil
}

// LoadPatternFile reads a pattern stored in the pattern.Marshal text format
// (as written by cmd/patterndb) and wraps it as a distribution: square
// patterns with undefined diagonal cells get the replication-time diagonal
// resolver; fully defined patterns become plain cyclic distributions.
func LoadPatternFile(path string) (dist.Distribution, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	p, err := pattern.Unmarshal(f)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	name := fmt.Sprintf("pattern(%s,%s,P=%d)",
		filepath.Base(path), p.Dims(), p.NumNodes())
	if p.UndefinedCells() > 0 {
		if !p.Square() {
			return nil, fmt.Errorf("core: %s: undefined cells in a non-square pattern", path)
		}
		return dist.NewDiagResolver(name, p), nil
	}
	return dist.NewCyclic(name, p)
}

// FromDB returns the stored GCR&M pattern for P from a cmd/patterndb
// directory, matching its gcrm-%04d.pattern layout.
func FromDB(dir string, P int) (dist.Distribution, error) {
	return LoadPatternFile(filepath.Join(dir, fmt.Sprintf("gcrm-%04d.pattern", P)))
}

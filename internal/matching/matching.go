// Package matching implements maximum bipartite matching via the
// Hopcroft–Karp algorithm. It is the substrate for the second phase of the
// GCR&M pattern-construction algorithm (Section V-A of the paper), which
// assigns pattern cells to node duplicates through two matching rounds.
package matching

import "fmt"

// Graph is a bipartite graph with nLeft left vertices and nRight right
// vertices, identified by dense indices.
type Graph struct {
	nLeft, nRight int
	adj           [][]int32 // adj[l] lists right neighbours of left vertex l
}

// NewGraph returns an empty bipartite graph.
func NewGraph(nLeft, nRight int) *Graph {
	if nLeft < 0 || nRight < 0 {
		panic(fmt.Sprintf("matching: invalid sizes %d, %d", nLeft, nRight))
	}
	return &Graph{nLeft: nLeft, nRight: nRight, adj: make([][]int32, nLeft)}
}

// AddEdge connects left vertex l to right vertex r.
func (g *Graph) AddEdge(l, r int) {
	if l < 0 || l >= g.nLeft || r < 0 || r >= g.nRight {
		panic(fmt.Sprintf("matching: edge (%d,%d) out of range %dx%d", l, r, g.nLeft, g.nRight))
	}
	g.adj[l] = append(g.adj[l], int32(r))
}

// Left and Right return the side sizes.
func (g *Graph) Left() int  { return g.nLeft }
func (g *Graph) Right() int { return g.nRight }

const none = int32(-1)

// MaxMatching computes a maximum matching and returns, for each left vertex,
// the matched right vertex or -1. The second return value is the matching
// size. Runs in O(E√V) (Hopcroft–Karp).
func (g *Graph) MaxMatching() ([]int, int) {
	matchL := make([]int32, g.nLeft)
	matchR := make([]int32, g.nRight)
	for i := range matchL {
		matchL[i] = none
	}
	for i := range matchR {
		matchR[i] = none
	}
	dist := make([]int32, g.nLeft)
	queue := make([]int32, 0, g.nLeft)

	const inf = int32(1) << 30
	bfs := func() bool {
		queue = queue[:0]
		for l := int32(0); l < int32(g.nLeft); l++ {
			if matchL[l] == none {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			l := queue[head]
			for _, r := range g.adj[l] {
				l2 := matchR[r]
				if l2 == none {
					found = true
				} else if dist[l2] == inf {
					dist[l2] = dist[l] + 1
					queue = append(queue, l2)
				}
			}
		}
		return found
	}

	var dfs func(l int32) bool
	dfs = func(l int32) bool {
		for _, r := range g.adj[l] {
			l2 := matchR[r]
			if l2 == none || (dist[l2] == dist[l]+1 && dfs(l2)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	size := 0
	for bfs() {
		for l := int32(0); l < int32(g.nLeft); l++ {
			if matchL[l] == none && dfs(l) {
				size++
			}
		}
	}
	out := make([]int, g.nLeft)
	for i, r := range matchL {
		out[i] = int(r)
	}
	return out, size
}

package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteMax computes the maximum matching size by exhaustive augmenting-path
// search (Kuhn's algorithm), used as a reference implementation.
func bruteMax(g *Graph) int {
	matchR := make([]int, g.Right())
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(l int, seen []bool) bool
	try = func(l int, seen []bool) bool {
		for _, r := range g.adj[l] {
			if seen[r] {
				continue
			}
			seen[r] = true
			if matchR[r] == -1 || try(matchR[r], seen) {
				matchR[r] = l
				return true
			}
		}
		return false
	}
	size := 0
	for l := 0; l < g.Left(); l++ {
		if try(l, make([]bool, g.Right())) {
			size++
		}
	}
	return size
}

func TestEmptyGraph(t *testing.T) {
	g := NewGraph(0, 0)
	m, size := g.MaxMatching()
	if size != 0 || len(m) != 0 {
		t.Fatalf("empty graph: size=%d, m=%v", size, m)
	}
	g = NewGraph(3, 2)
	m, size = g.MaxMatching()
	if size != 0 {
		t.Fatalf("edgeless graph: size=%d", size)
	}
	for _, r := range m {
		if r != -1 {
			t.Fatalf("edgeless graph matched a vertex: %v", m)
		}
	}
}

func TestPerfectMatching(t *testing.T) {
	g := NewGraph(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			g.AddEdge(i, j)
		}
	}
	m, size := g.MaxMatching()
	if size != 3 {
		t.Fatalf("K3,3 matching size %d, want 3", size)
	}
	seen := map[int]bool{}
	for l, r := range m {
		if r < 0 || seen[r] {
			t.Fatalf("invalid matching %v at left %d", m, l)
		}
		seen[r] = true
	}
}

func TestForcedAugmenting(t *testing.T) {
	// Classic case that requires augmentation: greedy could match l0-r0 and
	// block l1, but max matching is 2.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	_, size := g.MaxMatching()
	if size != 2 {
		t.Fatalf("matching size %d, want 2", size)
	}
}

func TestMatchingIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		nl, nr := 1+rng.Intn(12), 1+rng.Intn(12)
		g := NewGraph(nl, nr)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(l, r)
				}
			}
		}
		m, size := g.MaxMatching()
		usedR := make([]bool, nr)
		count := 0
		for l, r := range m {
			if r == -1 {
				continue
			}
			count++
			if usedR[r] {
				t.Fatalf("right vertex %d matched twice", r)
			}
			usedR[r] = true
			found := false
			for _, rr := range g.adj[l] {
				if int(rr) == r {
					found = true
				}
			}
			if !found {
				t.Fatalf("matched pair (%d,%d) is not an edge", l, r)
			}
		}
		if count != size {
			t.Fatalf("reported size %d but %d vertices matched", size, count)
		}
	}
}

func TestAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(10), 1+rng.Intn(10)
		g := NewGraph(nl, nr)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Intn(100) < 25 {
					g.AddEdge(l, r)
				}
			}
		}
		_, size := g.MaxMatching()
		return size == bruteMax(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLargeBipartite(t *testing.T) {
	// n disjoint pairs: matching size must be exactly n.
	const n = 5000
	g := NewGraph(n, n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
		g.AddEdge(i, i)
	}
	_, size := g.MaxMatching()
	if size != n {
		t.Fatalf("cycle graph matching size %d, want %d", size, n)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewGraph(2, 2)
	for _, e := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d,%d) did not panic", e[0], e[1])
				}
			}()
			g.AddEdge(e[0], e[1])
		}()
	}
}

package chaos

import (
	"sync"
	"testing"
	"time"

	"anybc/internal/cluster"
	"anybc/internal/trace"
)

// sink collects delivered messages in arrival order.
type sink struct {
	mu   sync.Mutex
	msgs []cluster.Message
}

func (s *sink) deliver(m cluster.Message) {
	s.mu.Lock()
	s.msgs = append(s.msgs, m)
	s.mu.Unlock()
}

func (s *sink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func (s *sink) tags() []cluster.Tag {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]cluster.Tag, len(s.msgs))
	for i, m := range s.msgs {
		out[i] = m.Tag
	}
	return out
}

// waitFor polls until the sink holds want messages or the deadline passes.
func waitFor(t *testing.T, s *sink, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.len() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d of %d messages delivered", s.len(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func msg(from, to, i int) cluster.Message {
	return cluster.Message{From: from, To: to, Tag: cluster.Tag{I: int32(i)}}
}

func mustPlan(t *testing.T, cfg Config) *Plan {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{PDelay: -0.1},
		{PReorder: 1.5},
		{PDrop: 0.5, PDropRedeliver: 0.4, PDuplicate: 0.2}, // classes sum to 1.1
		{PDrop: 1},                                         // retries could never heal
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
	if _, err := New(DefaultConfig(1)); err != nil {
		t.Fatalf("DefaultConfig rejected: %v", err)
	}
}

// TestDecisionsIndependentOfFeedOrder is the determinism core: the verdict
// for each message is a pure function of (seed, identity), so feeding the
// same message set in a different order yields the identical canonical log.
func TestDecisionsIndependentOfFeedOrder(t *testing.T) {
	cfg := Config{Seed: 42, PDelay: 0.4, PReorder: 0.2, PDuplicate: 0.1,
		PDrop: 0.1, PDropRedeliver: 0.1,
		MaxDelay: time.Millisecond, RedeliverAfter: time.Millisecond,
		ReorderFlush: 5 * time.Millisecond}

	feed := func(order []int) *Plan {
		p := mustPlan(t, cfg)
		var s sink
		for _, i := range order {
			p.Deliver(msg(i%3, 3, i), s.deliver)
		}
		p.Flush()
		return p
	}
	fwd := make([]int, 40)
	rev := make([]int, 40)
	for i := range fwd {
		fwd[i] = i
		rev[len(rev)-1-i] = i
	}
	a, b := feed(fwd), feed(rev)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fault schedule depends on feed order:\n%v\nvs\n%v", a.Events(), b.Events())
	}
	if len(a.Events()) == 0 {
		t.Fatal("no faults injected at these probabilities; test proves nothing")
	}
}

func TestDifferentSeedsDifferentSchedules(t *testing.T) {
	run := func(seed int64) string {
		p := mustPlan(t, DefaultConfig(seed))
		var s sink
		for i := 0; i < 60; i++ {
			p.Deliver(msg(0, 1, i), s.deliver)
		}
		p.Flush()
		return p.Fingerprint()
	}
	if run(1) == run(2) {
		t.Fatal("two seeds produced the identical fault schedule over 60 messages")
	}
	if run(7) != run(7) {
		t.Fatal("same seed produced different schedules")
	}
}

// TestReorderSwapsPairOrder pins the reorder semantics: with PReorder = 1,
// message 1 is held, message 2 is delivered first, then 1 (the swap), then 3
// is held until the flush timer fires.
func TestReorderSwapsPairOrder(t *testing.T) {
	p := mustPlan(t, Config{Seed: 5, PReorder: 1, ReorderFlush: 10 * time.Millisecond})
	var s sink
	for i := 1; i <= 3; i++ {
		p.Deliver(msg(0, 1, i), s.deliver)
	}
	waitFor(t, &s, 3) // 3 arrives via the flush timer
	got := s.tags()
	want := []int32{2, 1, 3}
	for k, tag := range got {
		if tag.I != want[k] {
			t.Fatalf("delivery order %v, want I-sequence %v", got, want)
		}
	}
	if c := p.Counts()["reorder"]; c != 2 {
		t.Fatalf("reorder count = %d, want 2 (messages 1 and 3 held)", c)
	}
}

func TestDropRedeliverArrivesLate(t *testing.T) {
	p := mustPlan(t, Config{Seed: 1, PDropRedeliver: 1, RedeliverAfter: 5 * time.Millisecond})
	var s sink
	start := time.Now()
	p.Deliver(msg(0, 1, 1), s.deliver)
	if s.len() != 0 {
		t.Fatal("transient drop delivered immediately")
	}
	waitFor(t, &s, 1)
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("redelivered after %v, want >= RedeliverAfter", elapsed)
	}
	if c := p.Counts()["drop-redeliver"]; c != 1 {
		t.Fatalf("drop-redeliver count = %d, want 1", c)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	p := mustPlan(t, Config{Seed: 1, PDuplicate: 1, MaxDelay: time.Millisecond})
	var s sink
	p.Deliver(msg(0, 1, 1), s.deliver)
	waitFor(t, &s, 2)
	tags := s.tags()
	if tags[0] != tags[1] {
		t.Fatalf("duplicate carries a different tag: %v vs %v", tags[0], tags[1])
	}
}

func TestPermanentDropNeverDelivers(t *testing.T) {
	// PDrop just under 1 with a fixed seed: find a message the seed drops
	// and check it stays dropped.
	p := mustPlan(t, Config{Seed: 3, PDrop: 0.99})
	var s sink
	for i := 0; i < 20; i++ {
		p.Deliver(msg(0, 1, i), s.deliver)
	}
	drops := p.Counts()["drop"]
	if drops == 0 {
		t.Fatal("seed 3 dropped nothing at PDrop=0.99")
	}
	time.Sleep(10 * time.Millisecond)
	if got := s.len(); got != 20-drops {
		t.Fatalf("delivered %d of 20 with %d drops", got, drops)
	}
}

func TestCrashLookupAndRecording(t *testing.T) {
	p := mustPlan(t, Config{Seed: 1, CrashAtTask: map[int]int{2: 5}})
	if got := p.CrashTask(2); got != 5 {
		t.Fatalf("CrashTask(2) = %d, want 5", got)
	}
	if got := p.CrashTask(0); got != -1 {
		t.Fatalf("CrashTask(0) = %d, want -1", got)
	}
	p.RecordCrash(2, 5)
	if c := p.Counts()["crash"]; c != 1 {
		t.Fatalf("crash count = %d, want 1", c)
	}
}

func TestBindMirrorsFaultsIntoRecorder(t *testing.T) {
	p := mustPlan(t, Config{Seed: 1, PDelay: 1, MaxDelay: time.Millisecond})
	var rec trace.Recorder
	p.Bind(&rec, time.Now())
	var s sink
	p.Deliver(msg(0, 1, 1), s.deliver)
	waitFor(t, &s, 1)
	if len(rec.Faults) != 1 || rec.Faults[0].Kind != "delay" {
		t.Fatalf("recorder faults = %+v, want one delay", rec.Faults)
	}
}

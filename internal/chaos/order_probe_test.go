package chaos

import (
	"testing"
	"time"
)

// Probe: does the canonical log depend on feed order beyond fwd/rev?
func TestProbePermutationIndependence(t *testing.T) {
	cfg := Config{Seed: 42, PDelay: 0.4, PReorder: 0.2, PDuplicate: 0.1,
		PDrop: 0.1, PDropRedeliver: 0.1,
		MaxDelay: time.Millisecond, RedeliverAfter: time.Millisecond,
		ReorderFlush: 5 * time.Millisecond}

	feed := func(order []int) *Plan {
		p := mustPlan(t, cfg)
		var s sink
		for _, i := range order {
			p.Deliver(msg(i%3, 3, i), s.deliver)
		}
		p.Flush()
		return p
	}
	base := make([]int, 40)
	for i := range base {
		base[i] = i
	}
	ref := feed(base).Fingerprint()
	// lcg permutations
	seedp := int64(12345)
	for trial := 0; trial < 200; trial++ {
		perm := make([]int, 40)
		copy(perm, base)
		for i := 39; i > 0; i-- {
			seedp = seedp*6364136223846793005 + 1442695040888963407
			j := int((seedp >> 33) % int64(i+1))
			if j < 0 {
				j = -j
			}
			perm[i], perm[j] = perm[j], perm[i]
		}
		if fp := feed(perm).Fingerprint(); fp != ref {
			t.Fatalf("trial %d: fingerprint %s != ref %s for perm %v", trial, fp, ref, perm)
		}
	}
}

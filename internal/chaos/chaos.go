// Package chaos injects deterministic network faults into the virtual
// cluster through the cluster.Network seam: per-message delays sampled from
// a seeded distribution, within-pair reordering, duplicate deliveries,
// transient drops redelivered after a timeout, permanent drops (healed only
// by the runtime's re-request protocol), and node crashes at a chosen task
// index (which exercise the comm.Abort poisoning path).
//
// # Determinism
//
// Reproducibility is the whole point: the same Config must produce the same
// faults no matter how goroutines interleave. A single shared random stream
// cannot give that — the order in which concurrent sends would consume it is
// scheduler-dependent — so the plan derives every decision from a pure
// function of (Config.Seed, message identity), where the identity is the
// (From, To, Tag, control-bit, attempt) tuple and attempt counts repeated
// sends of the same identity (redeliveries, request retries). The attempt
// counters are the plan's logical delivery clock: they advance per identity,
// not per wall-clock arrival, so two runs of the same workload draw
// identical verdicts for every message even though their wall-clock
// interleavings differ. Events() exposes the canonical, identity-sorted
// fault log and Fingerprint() hashes it, which is what the determinism
// regression tests compare across runs.
//
// A Plan carries per-run state (attempt counters, reorder holds, the event
// log): create a fresh Plan from the same Config for every run you want to
// reproduce.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"anybc/internal/cluster"
	"anybc/internal/trace"
)

// ErrInjectedCrash is the root cause carried by a node that the fault plan
// crashed at its configured task index. The runtime reports it through the
// same joined-error path as a genuine kernel failure.
var ErrInjectedCrash = errors.New("chaos: injected node crash")

// Config describes one deterministic fault plan. All probabilities are in
// [0, 1] and are drawn independently per message identity; the class
// probabilities (PDrop, PDropRedeliver, PDuplicate) partition one draw and
// must sum to at most 1. PDrop must stay below 1 so that request retries
// eventually get through and every run terminates.
type Config struct {
	// Seed drives every sampled decision.
	Seed int64

	// PDelay delays a delivery by a uniform interval in (0, MaxDelay].
	PDelay   float64
	MaxDelay time.Duration // default 2ms

	// PReorder holds a message until the next message on the same
	// (src, dst) pair is sent, then delivers the two in swapped order —
	// a deterministic inversion of the pair's FIFO order. A held message
	// with no successor is flushed after ReorderFlush.
	PReorder     float64
	ReorderFlush time.Duration // default 25ms

	// PDuplicate delivers the message twice, the copy after a sampled
	// delay, exercising the receiver's idempotent duplicate drop.
	PDuplicate float64

	// PDrop loses the delivery permanently: only the runtime's
	// arrival-timeout re-request can heal it.
	PDrop float64

	// PDropRedeliver loses the delivery transiently: the transport itself
	// redelivers after RedeliverAfter, modelling a retransmit.
	PDropRedeliver float64
	RedeliverAfter time.Duration // default 20ms

	// CrashAtTask maps a node rank to the index (0-based, in dispatch
	// order) of the owned task just before which the node crashes: it
	// stops dispatching, poisons the cluster, and reports
	// ErrInjectedCrash. A rank whose index exceeds its owned-task count
	// never crashes.
	CrashAtTask map[int]int
}

// withDefaults fills the zero durations.
func (c Config) withDefaults() Config {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.ReorderFlush <= 0 {
		c.ReorderFlush = 25 * time.Millisecond
	}
	if c.RedeliverAfter <= 0 {
		c.RedeliverAfter = 20 * time.Millisecond
	}
	return c
}

func (c Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PDelay", c.PDelay}, {"PReorder", c.PReorder},
		{"PDuplicate", c.PDuplicate}, {"PDrop", c.PDrop},
		{"PDropRedeliver", c.PDropRedeliver},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if s := c.PDrop + c.PDropRedeliver + c.PDuplicate; s > 1 {
		return fmt.Errorf("chaos: class probabilities sum to %v > 1", s)
	}
	if c.PDrop >= 1 {
		return fmt.Errorf("chaos: PDrop = %v; must stay below 1 or re-request retries can never heal", c.PDrop)
	}
	return nil
}

// DefaultConfig is a moderate all-faults mix for the given seed: occasional
// delays, reorders and duplicates, a few permanent drops (healed by the
// runtime's re-requests) and transient drops (redelivered by the transport).
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		PDelay:         0.20,
		PReorder:       0.10,
		PDuplicate:     0.05,
		PDrop:          0.02,
		PDropRedeliver: 0.05,
	}.withDefaults()
}

// identity names one message for the decision function: who sent what to
// whom, whether it is a control request, and the attempt number for repeats.
type identity struct {
	from, to int
	tag      cluster.Tag
	ctrl     bool
}

type pairKey struct{ from, to int }

// Event is one canonical fault-log entry: the deterministic verdict for one
// message identity. Sampled delays are recorded in microseconds so the log
// captures the full delivery schedule, not just the fault class.
type Event struct {
	Kind     string // "delay", "reorder", "duplicate", "drop", "drop-redeliver", "crash"
	From, To int
	Tag      cluster.Tag
	Ctrl     bool
	Attempt  int
	DelayUS  int64
}

func (e Event) String() string {
	return fmt.Sprintf("%s %d->%d tag(%d,%d)v%d ctrl=%v attempt=%d delay=%dus",
		e.Kind, e.From, e.To, e.Tag.I, e.Tag.J, e.Tag.V, e.Ctrl, e.Attempt, e.DelayUS)
}

// held is a message parked by a reorder fault, waiting for its swap partner.
type held struct {
	msg     cluster.Message
	deliver func(cluster.Message)
	timer   *time.Timer
}

// Plan is one run's fault injector; it implements cluster.Network. Safe for
// concurrent use by every sender goroutine.
type Plan struct {
	cfg Config

	mu       sync.Mutex
	attempts map[identity]int
	holds    map[pairKey]*held
	events   []Event
	counts   map[string]int

	rec   *trace.Recorder
	epoch time.Time
}

// New validates cfg and builds a fresh plan for one run.
func New(cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Plan{
		cfg:      cfg,
		attempts: make(map[identity]int),
		holds:    make(map[pairKey]*held),
		counts:   make(map[string]int),
	}, nil
}

// Config returns the plan's (default-filled) configuration.
func (p *Plan) Config() Config { return p.cfg }

// Bind attaches a trace recorder: every injected fault is recorded as a
// timed trace.FaultEvent relative to epoch, next to the kernel and message
// timelines, so simfact -gantt -real can show faults on the same axis.
func (p *Plan) Bind(rec *trace.Recorder, epoch time.Time) {
	p.mu.Lock()
	p.rec = rec
	p.epoch = epoch
	p.mu.Unlock()
}

// CrashTask returns the owned-task index at which rank must crash, or -1.
func (p *Plan) CrashTask(rank int) int {
	n, ok := p.cfg.CrashAtTask[rank]
	if !ok {
		return -1
	}
	return n
}

// RecordCrash logs the injected crash of rank (called by the runtime at the
// moment it stops dispatching).
func (p *Plan) RecordCrash(rank, taskIndex int) {
	p.note(Event{Kind: "crash", From: rank, To: rank, Attempt: taskIndex})
}

// rngFor derives the per-identity random stream: a 64-bit FNV-1a hash of
// (seed, identity, attempt) seeds a private PRNG, so the draw sequence for
// one message is independent of every other message and of arrival order.
func (p *Plan) rngFor(id identity, attempt int) *rand.Rand {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(p.cfg.Seed))
	put(uint64(id.from)<<32 | uint64(uint32(id.to)))
	put(uint64(uint32(id.tag.I))<<32 | uint64(uint32(id.tag.J)))
	put(uint64(uint32(id.tag.V)))
	if id.ctrl {
		put(1)
	} else {
		put(0)
	}
	put(uint64(attempt))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// note appends ev to the log, tallies it, and mirrors it into the bound
// trace recorder.
func (p *Plan) note(ev Event) {
	p.mu.Lock()
	p.events = append(p.events, ev)
	p.counts[ev.Kind]++
	rec, epoch := p.rec, p.epoch
	p.mu.Unlock()
	if rec != nil {
		tagStr := fmt.Sprintf("(%d,%d)v%d", ev.Tag.I, ev.Tag.J, ev.Tag.V)
		if ev.Ctrl {
			tagStr = "req" + tagStr
		}
		rec.RecordFault(ev.Kind, ev.From, ev.To, tagStr, time.Since(epoch).Seconds())
	}
}

// Deliver implements cluster.Network: it draws the message's verdict from
// the seeded decision function and applies it. Draw order is fixed (class,
// then delay, then reorder) so verdicts are reproducible.
func (p *Plan) Deliver(msg cluster.Message, deliver func(cluster.Message)) {
	id := identity{from: msg.From, to: msg.To, tag: msg.Tag, ctrl: msg.Req}
	key := pairKey{from: msg.From, to: msg.To}

	p.mu.Lock()
	attempt := p.attempts[id]
	p.attempts[id] = attempt + 1
	// The swap partner of a pending reorder hold on this pair: released
	// after the current message, inverting the pair's FIFO order.
	var prev *held
	if h, ok := p.holds[key]; ok {
		delete(p.holds, key)
		h.timer.Stop()
		prev = h
	}
	p.mu.Unlock()

	r := p.rngFor(id, attempt)
	ev := Event{From: msg.From, To: msg.To, Tag: msg.Tag, Ctrl: msg.Req, Attempt: attempt}

	// Class draw: drop / transient drop / duplicate partition one uniform.
	u := r.Float64()
	switch {
	case u < p.cfg.PDrop:
		ev.Kind = "drop"
		p.note(ev)
		msg.Release()
		p.flush(prev)
		return
	case u < p.cfg.PDrop+p.cfg.PDropRedeliver:
		ev.Kind = "drop-redeliver"
		ev.DelayUS = p.cfg.RedeliverAfter.Microseconds()
		p.note(ev)
		time.AfterFunc(p.cfg.RedeliverAfter, func() { deliver(msg) })
		p.flush(prev)
		return
	case u < p.cfg.PDrop+p.cfg.PDropRedeliver+p.cfg.PDuplicate:
		d := p.sampleDelay(r)
		ev2 := ev
		ev2.Kind = "duplicate"
		ev2.DelayUS = d.Microseconds()
		p.note(ev2)
		dup := msg.Dup()
		time.AfterFunc(d, func() { deliver(dup) })
		// The original still goes through the delay/reorder draws below.
	}

	// Independent delay draw.
	if r.Float64() < p.cfg.PDelay {
		d := p.sampleDelay(r)
		ev.Kind = "delay"
		ev.DelayUS = d.Microseconds()
		p.note(ev)
		time.AfterFunc(d, func() { deliver(msg) })
		p.flush(prev)
		return
	}

	// Reorder draw: park the message to swap with the pair's next send. If
	// a partner is already parked the swap is in progress — deliver now.
	if prev == nil && r.Float64() < p.cfg.PReorder {
		ev.Kind = "reorder"
		p.note(ev)
		h := &held{msg: msg, deliver: deliver}
		h.timer = time.AfterFunc(p.cfg.ReorderFlush, func() { p.flushHold(key, h) })
		p.mu.Lock()
		p.holds[key] = h
		p.mu.Unlock()
		return
	}

	deliver(msg)
	p.flush(prev)
}

// sampleDelay draws a uniform delay in (0, MaxDelay].
func (p *Plan) sampleDelay(r *rand.Rand) time.Duration {
	return time.Duration(1 + r.Int63n(int64(p.cfg.MaxDelay)))
}

// flush releases a reorder hold's message immediately.
func (p *Plan) flush(h *held) {
	if h != nil {
		h.deliver(h.msg)
	}
}

// flushHold is the reorder safety valve: if no swap partner ever follows on
// the pair, the parked message is released after ReorderFlush instead of
// being lost.
func (p *Plan) flushHold(key pairKey, h *held) {
	p.mu.Lock()
	if p.holds[key] != h {
		p.mu.Unlock()
		return
	}
	delete(p.holds, key)
	p.mu.Unlock()
	h.deliver(h.msg)
}

// Flush releases every parked reorder hold immediately. The runtime calls it
// at shutdown so no payload share is stranded in a hold.
func (p *Plan) Flush() {
	p.mu.Lock()
	holds := make([]*held, 0, len(p.holds))
	for key, h := range p.holds {
		h.timer.Stop()
		holds = append(holds, h)
		delete(p.holds, key)
	}
	p.mu.Unlock()
	for _, h := range holds {
		h.deliver(h.msg)
	}
}

// Events returns the canonical fault log: a copy sorted by message identity
// (not by arrival order), so two runs of the same seeded workload produce
// identical logs regardless of goroutine interleaving.
func (p *Plan) Events() []Event {
	p.mu.Lock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	p.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		switch {
		case x.From != y.From:
			return x.From < y.From
		case x.To != y.To:
			return x.To < y.To
		case x.Tag.I != y.Tag.I:
			return x.Tag.I < y.Tag.I
		case x.Tag.J != y.Tag.J:
			return x.Tag.J < y.Tag.J
		case x.Tag.V != y.Tag.V:
			return x.Tag.V < y.Tag.V
		case x.Ctrl != y.Ctrl:
			return !x.Ctrl
		case x.Attempt != y.Attempt:
			return x.Attempt < y.Attempt
		default:
			return x.Kind < y.Kind
		}
	})
	return out
}

// Counts returns the number of injected faults by kind.
func (p *Plan) Counts() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.counts))
	for k, v := range p.counts {
		out[k] = v
	}
	return out
}

// Fingerprint hashes the canonical fault log: equal fingerprints mean the
// two runs drew the identical fault schedule for the identical message set.
func (p *Plan) Fingerprint() string {
	h := fnv.New64a()
	for _, ev := range p.Events() {
		fmt.Fprintln(h, ev.String())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

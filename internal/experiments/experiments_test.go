package experiments

import (
	"math"
	"strings"
	"testing"

	"anybc/internal/gcrm"
)

func quickSearch() gcrm.SearchOptions {
	return gcrm.SearchOptions{Seeds: 10, SizeFactor: 3, BaseSeed: 1, Parallel: true}
}

func TestTableIaValues(t *testing.T) {
	rows := TableIa(TableIaPs)
	if len(rows) != len(TableIaPs) {
		t.Fatalf("got %d rows", len(rows))
	}
	byP := map[int]TableIaRow{}
	for _, r := range rows {
		byP[r.P] = r
	}
	// Spot-check against the paper's table (with the two documented errata).
	if r := byP[23]; r.DBCDims != "23x1" || r.G2DBCDims != "20x23" || math.Abs(r.G2DBCCost-9.652) > 0.001 {
		t.Errorf("P=23 row wrong: %+v", r)
	}
	if r := byP[31]; math.Abs(r.G2DBCCost-11.194) > 0.001 {
		t.Errorf("P=31 row wrong: %+v", r)
	}
	if r := byP[39]; r.DBCDims != "13x3" || math.Abs(r.G2DBCCost-12.615) > 0.001 {
		t.Errorf("P=39 row wrong: %+v", r)
	}
	// Degenerate cases coincide with 2DBC.
	for _, p := range []int{16, 20, 30, 36} {
		if !byP[p].Degenerate {
			t.Errorf("P=%d should be degenerate", p)
		}
	}
	// For the non-square cases G-2DBC must strictly improve.
	for _, p := range []int{21, 22, 23, 31, 39} {
		if !byP[p].Improved {
			t.Errorf("P=%d: G-2DBC did not improve on 2DBC", p)
		}
	}
}

func TestTableIbValues(t *testing.T) {
	// The best known P=23 pattern is 22x22 (paper Figure 9), so the size cap
	// must allow r ≈ 5√P here.
	rows, err := TableIb([]int{21, 23, 28, 31, 32, 35, 36},
		gcrm.SearchOptions{Seeds: 40, SizeFactor: 5, BaseSeed: 1, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	byP := map[int]TableIbRow{}
	for _, r := range rows {
		byP[r.P] = r
	}
	if r := byP[21]; r.SBCDims != "7x7" || r.SBCCost != 6 {
		t.Errorf("P=21 SBC row wrong: %+v", r)
	}
	if r := byP[31]; r.SBCNodes != 28 || r.SBCCost != 7 {
		t.Errorf("P=31 SBC fallback wrong: %+v", r)
	}
	if r := byP[35]; r.SBCNodes != 32 || r.SBCCost != 8 {
		t.Errorf("P=35 SBC fallback wrong: %+v", r)
	}
	// GCR&M costs for the paper's legible entries, with search tolerance.
	if r := byP[23]; math.Abs(r.GCRMCost-6.045) > 0.3 {
		t.Errorf("P=23 GCR&M cost %v, paper 6.045", r.GCRMCost)
	}
	if r := byP[35]; r.GCRMCost >= r.SBCCost {
		t.Errorf("P=35: GCR&M cost %v not below SBC %v (paper: 7.4 vs 8)", r.GCRMCost, r.SBCCost)
	}
}

func TestFigure4Shape(t *testing.T) {
	pts := Figure4(40)
	var dbc, g2, ref []CostPoint
	for _, p := range pts {
		switch p.Series {
		case "2DBC":
			dbc = append(dbc, p)
		case "G-2DBC":
			g2 = append(g2, p)
		default:
			ref = append(ref, p)
		}
	}
	if len(dbc) != 40 || len(g2) != 40 || len(ref) != 40 {
		t.Fatalf("series lengths %d/%d/%d", len(dbc), len(g2), len(ref))
	}
	for i := range g2 {
		// G-2DBC never worse than the best exact-P 2DBC, and within the
		// Lemma 2 bound of the 2√P reference.
		if g2[i].T > dbc[i].T+1e-9 {
			t.Errorf("P=%d: G-2DBC %v worse than 2DBC %v", g2[i].P, g2[i].T, dbc[i].T)
		}
		bound := ref[i].T + 2/math.Sqrt(float64(g2[i].P))
		if g2[i].T > bound+1e-9 {
			t.Errorf("P=%d: G-2DBC %v above Lemma 2 bound %v", g2[i].P, g2[i].T, bound)
		}
	}
}

func TestFigure9Candidates(t *testing.T) {
	best, all, err := Figure9(23, quickSearch())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || best == nil {
		t.Fatal("no candidates")
	}
	for _, c := range all {
		if c.Cost < best.Cost-1e-12 {
			t.Fatalf("candidate better than best")
		}
	}
	// Costs must vary with the seed for at least one pattern size
	// (the paper's point about random tie-breaking).
	byR := map[int]map[float64]bool{}
	for _, c := range all {
		if byR[c.R] == nil {
			byR[c.R] = map[float64]bool{}
		}
		byR[c.R][math.Round(c.Cost*1e9)] = true
	}
	varies := false
	for _, costs := range byR {
		if len(costs) > 1 {
			varies = true
		}
	}
	if !varies {
		t.Error("random choices had no effect on any pattern size")
	}
}

func TestFigure10Shape(t *testing.T) {
	pts, err := Figure10(40, quickSearch())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]CostPoint{}
	for _, p := range pts {
		series[p.Series] = append(series[p.Series], p)
	}
	if len(series["SBC"]) == 0 || len(series["GCR&M"]) == 0 {
		t.Fatal("missing series")
	}
	// SBC exists only at its valid node counts; check a few.
	sbcPs := map[int]bool{}
	for _, p := range series["SBC"] {
		sbcPs[p.P] = true
	}
	for _, p := range []int{3, 6, 8, 10, 15, 18, 21, 28, 32, 36} {
		if !sbcPs[p] {
			t.Errorf("SBC point missing at valid P=%d", p)
		}
	}
	if sbcPs[23] || sbcPs[31] {
		t.Error("SBC point present at invalid P")
	}
	// GCR&M tracks or beats SBC where both exist (allowing small search
	// noise), and stays above the empirical √(3P/2) limit − 0.5.
	gcrmByP := map[int]float64{}
	for _, p := range series["GCR&M"] {
		gcrmByP[p.P] = p.T
	}
	for _, sp := range series["SBC"] {
		g, ok := gcrmByP[sp.P]
		if !ok {
			continue
		}
		if g > sp.T+0.75 {
			t.Errorf("P=%d: GCR&M %v much worse than SBC %v", sp.P, g, sp.T)
		}
	}
	for _, p := range series["GCR&M"] {
		if limit := math.Sqrt(1.5 * float64(p.P)); p.T < limit-0.6 {
			t.Errorf("P=%d: GCR&M %v below empirical limit %v", p.P, p.T, limit)
		}
	}
}

func TestFigure1And5Shapes(t *testing.T) {
	cfg := QuickSimConfig()
	cfg.Ns = []int{25000, 50000}
	pts1, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At the largest N, squarer grids give better per-node performance:
	// 4x4 > 7x3 > 23x1 (paper Figure 1, right).
	per := map[string]float64{}
	for _, p := range pts1 {
		if p.N == 50000 {
			per[p.Series] = p.PerNode
		}
	}
	if !(per["2DBC(4x4)"] > per["2DBC(7x3)"] && per["2DBC(7x3)"] > per["2DBC(23x1)"]) {
		t.Errorf("Figure 1 per-node ordering violated: %v", per)
	}

	pts5, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tot := map[string]float64{}
	for _, p := range pts5 {
		if p.N == 50000 {
			tot[p.Series] = p.GFlops
		}
	}
	// Paper Figure 5: G-2DBC achieves the highest total throughput.
	for s, v := range tot {
		if s != "G-2DBC(P=23)" && tot["G-2DBC(P=23)"] <= v {
			t.Errorf("Figure 5: G-2DBC (%.0f) not above %s (%.0f)", tot["G-2DBC(P=23)"], s, v)
		}
	}
}

func TestFigure7aShape(t *testing.T) {
	cfg := QuickSimConfig()
	pts, err := Figure7a(cfg, []int{16, 23, 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("got %d points", len(pts))
	}
	// At P=23 G-2DBC must beat the 2DBC fallback; at P=16 and 25 (perfect
	// squares) both coincide in cost so performance is comparable.
	vals := map[string]map[int]float64{}
	for _, p := range pts {
		if vals[p.Series] == nil {
			vals[p.Series] = map[int]float64{}
		}
		vals[p.Series][p.P] = p.GFlops
	}
	g2 := vals["G-2DBC(P=23)"][23]
	dbc := vals["2DBC(4x4)"][23]
	if g2 <= dbc {
		t.Errorf("Figure 7a at P=23: G-2DBC %.0f not above 2DBC fallback %.0f", g2, dbc)
	}
}

func TestFigure11Shape(t *testing.T) {
	cfg := QuickSimConfig()
	cfg.Ns = []int{50000}
	pts, err := Figure11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gcrmTot, sbcTot float64
	for _, p := range pts {
		if strings.HasPrefix(p.Series, "GCR&M") {
			gcrmTot = p.GFlops
		} else {
			sbcTot = p.GFlops
		}
	}
	// Paper Figure 11: GCR&M on all 31 nodes has higher raw performance
	// than SBC on 28.
	if gcrmTot <= sbcTot {
		t.Errorf("Figure 11: GCR&M %.0f not above SBC %.0f", gcrmTot, sbcTot)
	}
}

func TestCommValidation(t *testing.T) {
	rows, err := CommValidation(16, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Measured != r.Structural {
			t.Errorf("%s %s: measured %d != structural %d", r.Kernel, r.Scheme, r.Measured, r.Structural)
		}
		if ratio := r.Ratio(); ratio > 1.0+1e-9 || ratio < 0.6 {
			t.Errorf("%s %s: measured/predicted = %v", r.Kernel, r.Scheme, ratio)
		}
	}
	var b strings.Builder
	RenderValidation(&b, rows)
	if !strings.Contains(b.String(), "structural") {
		t.Error("RenderValidation missing header")
	}
}

func TestSyrkComparisonShape(t *testing.T) {
	cfg := QuickSimConfig()
	cfg.Ns = []int{25000}
	cfg.GCRMSearch = quickSearch()
	pts, err := SyrkComparison(cfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	byScheme := map[string]PerfPoint{}
	for _, p := range pts {
		byScheme[p.Series] = p
	}
	// Symmetric schemes must beat the degenerate 2DBC at the prime P.
	dbc := byScheme["2DBC(23x1)"]
	for name, p := range byScheme {
		if name == "2DBC(23x1)" {
			continue
		}
		if p.GFlops <= dbc.GFlops {
			t.Errorf("SYRK: %s (%.0f) did not beat 2DBC (%.0f)", name, p.GFlops, dbc.GFlops)
		}
	}
}

func TestSTSComparisonShape(t *testing.T) {
	cfg := QuickSimConfig()
	// At small N the extra nodes don't pay off yet (as in the paper's
	// Figures 11/12); test at the size where the crossover has happened.
	cfg.Ns = []int{50000}
	cfg.GCRMSearch = quickSearch()
	pts, err := STSComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	var sts, sbc PerfPoint
	for _, p := range pts {
		if strings.HasPrefix(p.Series, "STS") {
			sts = p
		}
		if strings.HasPrefix(p.Series, "SBC") {
			sbc = p
		}
	}
	if sts.P != 35 || sbc.P != 32 {
		t.Fatalf("unexpected node counts: STS P=%d, SBC P=%d", sts.P, sbc.P)
	}
	if sts.GFlops <= sbc.GFlops {
		t.Errorf("STS(35) %.0f not above SBC(32) %.0f", sts.GFlops, sbc.GFlops)
	}
}

func TestWeakScaling(t *testing.T) {
	cfg := QuickSimConfig()
	// A reasonable per-node base size; too small and 23 nodes cannot be fed.
	pts, err := WeakScaling(cfg, 25000, 16, []int{16, 23, 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("got %d points", len(pts))
	}
	// N must grow with P.
	nByP := map[int]int{}
	for _, p := range pts {
		nByP[p.P] = p.N
	}
	if !(nByP[16] < nByP[23] && nByP[23] < nByP[25]) {
		t.Errorf("weak-scaling sizes not increasing: %v", nByP)
	}
	// At P=23 the G-2DBC point must beat the 2DBC fallback in total GF/s.
	var g2, dbc float64
	for _, p := range pts {
		if p.P == 23 {
			if strings.HasPrefix(p.Series, "G-2DBC") {
				g2 = p.GFlops
			} else {
				dbc = p.GFlops
			}
		}
	}
	if g2 <= dbc {
		t.Errorf("weak scaling at P=23: G-2DBC %.0f not above 2DBC %.0f", g2, dbc)
	}
}

func TestVariantComparison(t *testing.T) {
	cfg := QuickSimConfig()
	cfg.GCRMSearch = quickSearch()
	right, left, err := VariantComparison(cfg, 10, 12500)
	if err != nil {
		t.Fatal(err)
	}
	if right.Messages != left.Messages {
		t.Errorf("variants sent different volumes: %d vs %d", right.Messages, left.Messages)
	}
	if right.GFlops <= 0 || left.GFlops <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestRenderers(t *testing.T) {
	var b strings.Builder
	RenderTableIa(&b, TableIa([]int{23, 36}))
	if !strings.Contains(b.String(), "20x23") {
		t.Error("RenderTableIa missing dims")
	}
	rows, err := TableIb([]int{21}, quickSearch())
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	RenderTableIb(&b, rows)
	if !strings.Contains(b.String(), "7x7") {
		t.Error("RenderTableIb missing dims")
	}
	b.Reset()
	RenderCost(&b, "fig4", Figure4(5))
	if !strings.Contains(b.String(), "G-2DBC") {
		t.Error("RenderCost missing series")
	}
	b.Reset()
	CostCSV(&b, Figure4(3))
	if !strings.Contains(b.String(), "p,series,t") {
		t.Error("CostCSV missing header")
	}
	best, all, err := Figure9(23, quickSearch())
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	RenderCandidates(&b, 23, best, all)
	if !strings.Contains(b.String(), "Figure 9") {
		t.Error("RenderCandidates missing title")
	}
	b.Reset()
	CandidateCSV(&b, all)
	if !strings.Contains(b.String(), "r,seed,t") {
		t.Error("CandidateCSV missing header")
	}
	cfg := QuickSimConfig()
	cfg.Ns = []int{12500}
	pts, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	RenderPerf(&b, "fig6", pts)
	if !strings.Contains(b.String(), "GFlop/s") {
		t.Error("RenderPerf missing header")
	}
	b.Reset()
	PerfCSV(&b, pts)
	if !strings.Contains(b.String(), "gflops") {
		t.Error("PerfCSV missing header")
	}
	if s := Summary(pts); !strings.Contains(s, "N=12500") {
		t.Errorf("Summary = %q", s)
	}
	if s := Summary(nil); s != "no data" {
		t.Errorf("Summary(nil) = %q", s)
	}
}

func TestGCRMPatternCache(t *testing.T) {
	a, err := GCRMPattern(23, quickSearch())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GCRMPattern(23, quickSearch())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache miss for identical search")
	}
}

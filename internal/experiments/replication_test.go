package experiments

import "testing"

// TestReplicationReducesPerNodeVolume is the acceptance bar of the
// replication subsystem and the assertion behind CI's comm-volume gate: on
// the pinned 16-node case, replicated c=2 LU must reduce the mean per-node
// received bytes by at least 25% against the c=1 G-2DBC baseline (the
// analytic expectation is ~33%: panel broadcasts spread over the same base
// grid while each trailing tile's traffic splits across twice the nodes,
// minus one reduction shipment per tile). The sweep must also keep shrinking
// volume at c=4 and stay within a small constant of the memory-parameterized
// COnfLUX bound.
func TestReplicationReducesPerNodeVolume(t *testing.T) {
	cfg, baseP, mt, cs := PinnedReplicationCase()
	pts, err := ReplicationSweep(cfg, baseP, mt, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[0].C != 1 || pts[1].C != 2 || pts[2].C != 4 {
		t.Fatalf("unexpected sweep shape: %+v", pts)
	}
	base, c2, c4 := pts[0], pts[1], pts[2]
	if base.ReduceBytes != 0 {
		t.Errorf("c=1 baseline shipped %d reduce bytes, want 0", base.ReduceBytes)
	}
	if c2.ReduceBytes == 0 || c4.ReduceBytes == 0 {
		t.Error("replicated runs shipped no reduction partials")
	}
	saving := 1 - c2.RecvMean/base.RecvMean
	if saving < 0.25 {
		t.Errorf("c=2 per-node received volume saving = %.1f%%, want >= 25%%", 100*saving)
	}
	if c4.RecvMean >= c2.RecvMean {
		t.Errorf("c=4 per-node volume %.4g not below c=2's %.4g", c4.RecvMean, c2.RecvMean)
	}
	for _, p := range pts {
		if p.RatioToBound <= 0 || p.RatioToBound > 3 {
			t.Errorf("c=%d: ratio to bound %.3f outside the credible (0, 3] band",
				p.C, p.RatioToBound)
		}
	}
}

package experiments

import (
	"anybc/internal/dist"
	"anybc/internal/gcrm"
	"anybc/internal/lowerbound"
)

// CostPoint is one point of a cost-versus-P study (Figures 4 and 10).
type CostPoint struct {
	P      int
	Series string
	T      float64
}

// Figure4 reproduces Figure 4: the LU communication cost of the best exact-P
// 2DBC pattern and of the G-2DBC pattern for P = 1..maxP, with the 2√P
// reference.
func Figure4(maxP int) []CostPoint {
	var out []CostPoint
	for p := 1; p <= maxP; p++ {
		out = append(out,
			CostPoint{P: p, Series: "2DBC", T: dist.Best2DBC(p).Pattern().CostLU()},
			CostPoint{P: p, Series: "G-2DBC", T: dist.NewG2DBC(p).Pattern().CostLU()},
			CostPoint{P: p, Series: "2sqrt(P)", T: lowerbound.PatternCostLU(p)},
		)
	}
	return out
}

// Figure9 reproduces Figure 9: every (pattern size, seed) candidate the
// GCR&M search evaluates for one P, exposing the effect of the pattern size
// and of random tie-breaking on the cost.
func Figure9(P int, opts gcrm.SearchOptions) (best *gcrm.Result, all []gcrm.Candidate, err error) {
	return gcrm.Sample(P, opts)
}

// Figure10 reproduces Figure 10: the symmetric (colrow) cost of every
// pattern family for P = 2..maxP — 2DBC and G-2DBC (cost−1 rule), SBC at its
// valid node counts, GCR&M everywhere, and the √(2P) and √(3P/2) laws.
func Figure10(maxP int, opts gcrm.SearchOptions) ([]CostPoint, error) {
	var out []CostPoint
	for p := 2; p <= maxP; p++ {
		out = append(out,
			CostPoint{P: p, Series: "2DBC", T: dist.Best2DBC(p).Pattern().CostLU() - 1},
			CostPoint{P: p, Series: "G-2DBC", T: dist.NewG2DBC(p).Pattern().CostLU() - 1},
			CostPoint{P: p, Series: "sqrt(2P)", T: lowerbound.SBCBasicLaw(p)},
			CostPoint{P: p, Series: "sqrt(3P/2)", T: lowerbound.GCRMEmpiricalLaw(p)},
		)
		if sbc, errSBC := dist.NewSBC(p); errSBC == nil {
			out = append(out, CostPoint{P: p, Series: "SBC", T: sbc.Pattern().CostCholesky()})
		}
		if sts, errSTS := dist.NewSTSForP(p); errSTS == nil {
			// Extension: the explicit Steiner-triple-system points, sitting
			// on the √(3P/2) line the paper observes empirically.
			out = append(out, CostPoint{P: p, Series: "STS", T: sts.Pattern().CostCholesky()})
		}
		res, err := GCRMPattern(p, opts)
		if err != nil {
			// GCR&M needs r(r-1) ≥ P within the size cap; for tiny P with a
			// small cap there may be no feasible size — skip the point.
			continue
		}
		out = append(out, CostPoint{P: p, Series: "GCR&M", T: res.Cost})
	}
	return out, nil
}

package experiments

import (
	"fmt"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/simulate"
)

// syrkDist places the A-tile columns of the SYRK graph with the same
// pattern as the matrix (mirrors runtime's placement, duplicated here so the
// simulator needs no runtime dependency).
type syrkDist struct {
	dist.Distribution
	mt int
}

func (s syrkDist) Owner(i, j int) int {
	if j >= s.mt {
		return s.Distribution.Owner(i, j-s.mt)
	}
	return s.Distribution.Owner(i, j)
}

// SyrkComparison simulates the symmetric rank-k update C = C + A·Aᵀ (A with
// kt = mt/4 tile columns) under 2DBC, SBC and GCR&M for the available node
// count P — the second symmetric kernel the SBC line of work targets. It is
// an extension beyond the paper's figures; the expectation from the SC22
// results it recalls is SBC-class distributions beating 2DBC.
func SyrkComparison(cfg SimConfig, p int) ([]PerfPoint, error) {
	gcrmD, err := GCRMDistribution(p, cfg.GCRMSearch)
	if err != nil {
		return nil, err
	}
	var out []PerfPoint
	for _, n := range cfg.Ns {
		mt := n / cfg.B
		if mt < 4 {
			return nil, fmt.Errorf("experiments: N=%d too small for SYRK study", n)
		}
		kt := mt / 4
		g := dag.NewSYRKOp(mt, kt)
		for _, d := range []dist.Distribution{
			dist.Best2DBC(p),
			dist.Distribution(dist.BestSBCAtMost(p)),
			gcrmD,
		} {
			wrapped := syrkDist{Distribution: freshSymmetric(d), mt: mt}
			res, err := simulate.Run(g, cfg.B, wrapped, cfg.Machine, simulate.Options{})
			if err != nil {
				return nil, err
			}
			out = append(out, PerfPoint{
				N:        n,
				P:        d.Nodes(),
				Series:   d.Name(),
				GFlops:   res.GFlops(),
				PerNode:  res.GFlops() / float64(d.Nodes()),
				Messages: res.Messages,
				Makespan: res.Makespan,
			})
		}
	}
	return out, nil
}

// STSComparison simulates Cholesky at P = 35 — the paper's test case where a
// Bose Steiner triple system exists — comparing the explicit STS pattern
// (cost 7.0), the GCR&M heuristic (≈7.48) and the SBC fallback on 32 nodes
// (cost 8). This extends Figure 12 with the explicit-pattern answer to the
// paper's open question.
func STSComparison(cfg SimConfig) ([]PerfPoint, error) {
	const p = 35
	sts, err := dist.NewSTSForP(p)
	if err != nil {
		return nil, err
	}
	gcrmD, err := GCRMDistribution(p, cfg.GCRMSearch)
	if err != nil {
		return nil, err
	}
	var out []PerfPoint
	for _, n := range cfg.Ns {
		mt := n / cfg.B
		g := dag.NewCholesky(mt)
		for _, d := range []dist.Distribution{
			dist.Distribution(sts), gcrmD, dist.Distribution(dist.BestSBCAtMost(p)),
		} {
			res, err := simulate.Run(g, cfg.B, freshSymmetric(d), cfg.Machine, simulate.Options{})
			if err != nil {
				return nil, err
			}
			out = append(out, PerfPoint{
				N: n, P: d.Nodes(), Series: d.Name(),
				GFlops:   res.GFlops(),
				PerNode:  res.GFlops() / float64(d.Nodes()),
				Messages: res.Messages,
				Makespan: res.Makespan,
			})
		}
	}
	return out, nil
}

// VariantComparison simulates the right- and left-looking Cholesky variants
// under the same distribution: identical communication volumes, different
// overlap. Used by the ablation bench to show the paper's conclusions do not
// depend on the right-looking choice.
func VariantComparison(cfg SimConfig, p, n int) (right, left PerfPoint, err error) {
	mt := n / cfg.B
	gcrmD, err := GCRMDistribution(p, cfg.GCRMSearch)
	if err != nil {
		return
	}
	for idx, g := range []dag.Graph{dag.NewCholesky(mt), dag.NewCholeskyLeft(mt)} {
		var res *simulate.Result
		res, err = simulate.Run(g, cfg.B, freshSymmetric(gcrmD), cfg.Machine, simulate.Options{})
		if err != nil {
			return
		}
		pt := PerfPoint{
			N: n, P: p, Series: g.Name(),
			GFlops:   res.GFlops(),
			PerNode:  res.GFlops() / float64(p),
			Messages: res.Messages,
			Makespan: res.Makespan,
		}
		if idx == 0 {
			right = pt
		} else {
			left = pt
		}
	}
	return
}

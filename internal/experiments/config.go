// Package experiments regenerates every table and figure of the paper's
// evaluation: the analytic cost studies (Figures 4, 9, 10 and Table I) come
// straight from the pattern mathematics, and the performance studies
// (Figures 1, 5, 6, 7, 11, 12) run the discrete-event simulator standing in
// for the paper's 44-node cluster. Each generator returns typed rows; the
// render helpers print the same series the paper plots.
package experiments

import (
	"fmt"
	"sync"

	"anybc/internal/dist"
	"anybc/internal/gcrm"
	"anybc/internal/simulate"
)

// SimConfig parameterizes the performance experiments.
type SimConfig struct {
	// B is the tile size (paper: 500).
	B int
	// Ns are the matrix sizes swept in the per-figure experiments.
	Ns []int
	// ScalingN is the matrix size of the strong-scaling study (Figure 7).
	ScalingN int
	// Machine is the simulated platform.
	Machine simulate.Machine
	// GCRMSearch configures pattern searches for the symmetric experiments.
	GCRMSearch gcrm.SearchOptions
}

// PaperSimConfig reproduces the paper's experimental scales: matrices from
// 50,000 to 200,000 (tile 500) and N = 200,000 for strong scaling. Full
// sweeps at this scale simulate tens of millions of tasks; use
// DefaultSimConfig for quicker runs with the same shapes.
func PaperSimConfig() SimConfig {
	return SimConfig{
		B:          500,
		Ns:         []int{50000, 100000, 150000, 200000},
		ScalingN:   200000,
		Machine:    simulate.PaperMachine(),
		GCRMSearch: gcrm.DefaultSearchOptions(),
	}
}

// DefaultSimConfig scales the sweeps down by 2-4× (N up to 100,000) so a
// full reproduction finishes in minutes; the compute/communication shapes
// are preserved.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		B:          500,
		Ns:         []int{25000, 50000, 75000, 100000},
		ScalingN:   100000,
		Machine:    simulate.PaperMachine(),
		GCRMSearch: gcrm.SearchOptions{Seeds: 40, SizeFactor: 4, BaseSeed: 1, Parallel: true},
	}
}

// QuickSimConfig is the benchmark-friendly configuration: small sweeps that
// finish in seconds.
func QuickSimConfig() SimConfig {
	return SimConfig{
		B:          500,
		Ns:         []int{12500, 25000, 50000},
		ScalingN:   50000,
		Machine:    simulate.PaperMachine(),
		GCRMSearch: gcrm.SearchOptions{Seeds: 10, SizeFactor: 3, BaseSeed: 1, Parallel: true},
	}
}

// gcrmCache memoizes pattern searches: patterns depend only on P (and the
// search options), exactly the "database of patterns" the paper's conclusion
// suggests.
var gcrmCache sync.Map // key string -> *gcrm.Result

func cacheKey(P int, o gcrm.SearchOptions) string {
	return fmt.Sprintf("%d/%d/%g/%d/%d", P, o.Seeds, o.SizeFactor, o.MinSize, o.BaseSeed)
}

// GCRMPattern returns the best GCR&M pattern for P under the given search
// options, caching results process-wide.
func GCRMPattern(P int, opts gcrm.SearchOptions) (*gcrm.Result, error) {
	key := cacheKey(P, opts)
	if v, ok := gcrmCache.Load(key); ok {
		return v.(*gcrm.Result), nil
	}
	res, err := gcrm.Search(P, opts)
	if err != nil {
		return nil, err
	}
	gcrmCache.Store(key, res)
	return res, nil
}

// GCRMDistribution wraps the best GCR&M pattern for P as a Distribution.
func GCRMDistribution(P int, opts gcrm.SearchOptions) (dist.Distribution, error) {
	res, err := GCRMPattern(P, opts)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("GCR&M(%dx%d,P=%d)", res.R, res.R, P)
	return dist.NewDiagResolver(name, res.Pattern), nil
}

// freshSymmetric re-wraps a symmetric distribution with a fresh diagonal
// resolver so simulator runs do not share resolver state.
func freshSymmetric(d dist.Distribution) dist.Distribution {
	pd, ok := d.(dist.PatternDistribution)
	if !ok {
		return d
	}
	p := pd.Pattern()
	if p.UndefinedCells() == 0 {
		return d
	}
	return dist.NewDiagResolver(d.Name(), p.Clone())
}

package experiments

import (
	"anybc/internal/dist"
	"anybc/internal/gcrm"
)

// TableIaRow is one row of Table Ia: the best 2DBC grid using exactly P
// nodes versus the G-2DBC pattern, with their LU communication costs.
type TableIaRow struct {
	P          int
	DBCDims    string
	DBCCost    float64
	G2DBCDims  string
	G2DBCCost  float64
	Improved   bool // G-2DBC strictly cheaper than the best exact-P 2DBC
	Degenerate bool // c == 0: G-2DBC coincides with 2DBC
}

// TableIaPs lists the node counts of the paper's Table Ia.
var TableIaPs = []int{16, 20, 21, 22, 23, 30, 31, 35, 36, 39}

// TableIa computes Table Ia for the given node counts.
func TableIa(ps []int) []TableIaRow {
	rows := make([]TableIaRow, 0, len(ps))
	for _, p := range ps {
		dbc := dist.Best2DBC(p)
		g := dist.NewG2DBC(p)
		_, _, c := g.Params()
		row := TableIaRow{
			P:          p,
			DBCDims:    dbc.Pattern().Dims(),
			DBCCost:    dbc.Pattern().CostLU(),
			G2DBCDims:  g.Pattern().Dims(),
			G2DBCCost:  g.Pattern().CostLU(),
			Degenerate: c == 0,
		}
		row.Improved = row.G2DBCCost < row.DBCCost-1e-9
		rows = append(rows, row)
	}
	return rows
}

// TableIbRow is one row of Table Ib: the best SBC distribution using at most
// P nodes versus the GCR&M pattern on all P nodes, with Cholesky costs.
type TableIbRow struct {
	P        int
	SBCNodes int
	SBCDims  string
	SBCCost  float64
	GCRMDims string
	GCRMCost float64
}

// TableIbPs lists the node counts of the paper's Table Ib.
var TableIbPs = []int{21, 23, 28, 31, 32, 35, 36, 39}

// TableIb computes Table Ib for the given node counts.
func TableIb(ps []int, opts gcrm.SearchOptions) ([]TableIbRow, error) {
	rows := make([]TableIbRow, 0, len(ps))
	for _, p := range ps {
		sbc := dist.BestSBCAtMost(p)
		row := TableIbRow{
			P:        p,
			SBCNodes: sbc.Nodes(),
			SBCDims:  sbc.Pattern().Dims(),
			SBCCost:  sbc.Pattern().CostCholesky(),
		}
		res, err := GCRMPattern(p, opts)
		if err != nil {
			return nil, err
		}
		row.GCRMDims = res.Pattern.Dims()
		row.GCRMCost = res.Cost
		rows = append(rows, row)
	}
	return rows, nil
}

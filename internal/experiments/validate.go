package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/gcrm"
	"anybc/internal/runtime"
)

// ValidationRow records one communication-formula check: the tile messages a
// *real* distributed execution sent, the structural owner-computes count,
// and the paper's Equation (1)/(2) prediction.
type ValidationRow struct {
	Kernel     string
	Scheme     string
	Nodes      int
	Measured   int64
	Structural int64
	Predicted  float64
}

// Ratio returns measured/predicted.
func (r ValidationRow) Ratio() float64 {
	if r.Predicted == 0 {
		return 1
	}
	return float64(r.Measured) / r.Predicted
}

// CommValidation factorizes real matrices on the virtual cluster under a set
// of distributions and compares the measured communication against the
// structural count (must match exactly) and the paper's formulas (upper
// estimates ignoring trailing-matrix shrinking). mt controls the matrix size
// in tiles; tiles are small because only message counts matter here.
func CommValidation(mt, b int, searchSeeds int) ([]ValidationRow, error) {
	var rows []ValidationRow

	gLU := dag.NewLU(mt)
	for _, d := range []dist.Distribution{dist.Best2DBC(6), dist.NewG2DBC(10), dist.NewG2DBC(23)} {
		pd := d.(dist.PatternDistribution)
		_, rep, err := runtime.FactorLU(mt, b, d, runtime.GenDiagDominant(mt, b, 9), runtime.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValidationRow{
			Kernel:     "LU",
			Scheme:     d.Name(),
			Nodes:      d.Nodes(),
			Measured:   rep.Stats.TotalMessages(),
			Structural: dag.CommVolumeTiles(gLU, d.Owner),
			Predicted:  pd.Pattern().CommVolumeLU(mt),
		})
	}

	gCh := dag.NewCholesky(mt)
	gcrmRes, err := GCRMPattern(10, gcrm.SearchOptions{
		Seeds: searchSeeds, SizeFactor: 4, BaseSeed: 1, Parallel: true,
	})
	if err != nil {
		return nil, err
	}
	chDists := []dist.Distribution{
		dist.Distribution(dist.NewSBCPair(5)), // P = 10
		dist.NewDiagResolver("GCR&M(P=10)", gcrmRes.Pattern.Clone()),
		dist.Distribution(dist.NewSTS(9)), // P = 12
	}
	for _, d := range chDists {
		pd := d.(dist.PatternDistribution)
		_, rep, err := runtime.FactorCholesky(mt, b, d, runtime.GenSPD(mt, b, 9), runtime.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValidationRow{
			Kernel:     "Cholesky",
			Scheme:     d.Name(),
			Nodes:      d.Nodes(),
			Measured:   rep.Stats.TotalMessages(),
			Structural: dag.CommVolumeTiles(gCh, d.Owner),
			Predicted:  pd.Pattern().CommVolumeCholesky(mt),
		})
	}
	return rows, nil
}

// RenderValidation prints the validation table.
func RenderValidation(w io.Writer, rows []ValidationRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel\tscheme\tP\tmeasured\tstructural\tEq. prediction\tmeasured/pred\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.0f\t%.2f\t\n",
			r.Kernel, r.Scheme, r.Nodes, r.Measured, r.Structural, r.Predicted, r.Ratio())
	}
	tw.Flush()
}

package experiments

import (
	"math"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/simulate"
)

// WeakScaling is an extension of the paper's strong-scaling study
// (Figure 7a): the matrix grows with the node count so that memory per node
// stays constant (N = baseN·√(P/P₀)), and the metric of interest is the
// per-node efficiency. Under 2DBC the efficiency staircases with the grid
// quality; G-2DBC keeps it flat in P — the "any number of nodes" property
// under the weak-scaling lens.
func WeakScaling(cfg SimConfig, baseN, baseP int, ps []int) ([]PerfPoint, error) {
	var out []PerfPoint
	for _, p := range ps {
		n := int(float64(baseN) * math.Sqrt(float64(p)/float64(baseP)))
		// Round to a whole number of tiles.
		mt := (n + cfg.B/2) / cfg.B
		if mt < 2 {
			mt = 2
		}
		g := dag.NewLU(mt)
		for _, d := range []dist.Distribution{dist.Best2DBCAtMost(p), dist.NewG2DBC(p)} {
			res, err := simulate.Run(g, cfg.B, d, cfg.Machine, simulate.Options{})
			if err != nil {
				return nil, err
			}
			out = append(out, PerfPoint{
				N: mt * cfg.B, P: p, Series: d.Name(),
				GFlops:   res.GFlops(),
				PerNode:  res.GFlops() / float64(d.Nodes()),
				Messages: res.Messages,
				Makespan: res.Makespan,
			})
		}
	}
	return out, nil
}

package experiments

import (
	"fmt"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/lowerbound"
	"anybc/internal/simulate"
)

// ReplicationPoint is one row of the replication (2.5D) memory-for-
// communication sweep: a replicated LU run at one replication factor c,
// measured by the simulator's exact byte accounting and compared against the
// memory-parameterized COnfLUX lower bound.
type ReplicationPoint struct {
	// C is the replication factor (1 = the unreplicated G-2DBC baseline).
	C int `json:"c"`
	// Nodes is the total node count, c layers × the base grid.
	Nodes int `json:"nodes"`
	// N and B give the matrix and tile size; Scheme names the distribution.
	N      int    `json:"n"`
	B      int    `json:"b"`
	Scheme string `json:"scheme"`
	// Messages and TotalBytes are the logical owner→consumer volume;
	// ReduceBytes is the subset shipping reduction partials between layers.
	Messages    int64 `json:"messages"`
	TotalBytes  int64 `json:"total_bytes"`
	ReduceBytes int64 `json:"reduce_bytes"`
	// RecvMean and RecvMax are per-node received bytes — the paper-facing
	// metric: replication must lower what each node's incoming NIC carries.
	RecvMean float64 `json:"recv_mean"`
	RecvMax  float64 `json:"recv_max"`
	// BoundBytes is the memory-parameterized per-node lower bound
	// lowerbound.LUPerNodeRepl for this configuration, in bytes.
	BoundBytes float64 `json:"bound_bytes"`
	// RatioToBound is RecvMean/BoundBytes — how far the measured volume sits
	// above the coded bound (≥ 1 up to lower-order terms).
	RatioToBound float64 `json:"ratio_to_bound"`
	// Makespan is the simulated wall-clock seconds.
	Makespan float64 `json:"makespan"`
}

// ReplicationSweep runs the replicated LU communication study: an mt×mt tile
// matrix on c layers of a G-2DBC(baseP) grid for each c in cs, measured with
// the simulator's exact accounting under the flat (point-to-point) transport.
// Every point's per-node received volume is compared to the
// memory-parameterized COnfLUX bound m²/√(c·Ptotal) = m²/(c·√baseP): each
// doubling of memory should buy ~√2 less traffic per node until the grid is
// too small to amortize the reduction shipments.
func ReplicationSweep(cfg SimConfig, baseP, mt int, cs []int) ([]ReplicationPoint, error) {
	base := dist.NewG2DBC(baseP)
	m := float64(mt * cfg.B)
	var out []ReplicationPoint
	for _, c := range cs {
		if c < 1 {
			return nil, fmt.Errorf("experiments: invalid replication factor %d", c)
		}
		g := dag.NewReplicatedLU(mt, c)
		d := dist.NewReplicated(base, c, mt)
		res, err := simulate.Run(g, cfg.B, d, cfg.Machine, simulate.Options{})
		if err != nil {
			return nil, err
		}
		var sum, max int64
		for _, v := range res.RecvBytes {
			sum += v
			if v > max {
				max = v
			}
		}
		mean := float64(sum) / float64(d.Nodes())
		bound := 8 * lowerbound.LUPerNodeRepl(m, d.Nodes(), c)
		out = append(out, ReplicationPoint{
			C: c, Nodes: d.Nodes(), N: mt * cfg.B, B: cfg.B, Scheme: d.Name(),
			Messages: res.Messages, TotalBytes: res.Bytes, ReduceBytes: res.ReduceBytes,
			RecvMean: mean, RecvMax: float64(max),
			BoundBytes: bound, RatioToBound: mean / bound,
			Makespan: res.Makespan,
		})
	}
	return out, nil
}

// PinnedReplicationCase is the regression-pinned configuration of the
// replication study (and of CI's comm-volume gate): a 16,000×16,000 matrix
// (32×32 tiles of 500) on a G-2DBC(16) base grid — the same 16-node scale as
// the paper-pinned studies — swept over c ∈ {1, 2, 4}.
func PinnedReplicationCase() (cfg SimConfig, baseP, mt int, cs []int) {
	cfg = SimConfig{B: 500, Machine: simulate.PaperMachine()}
	return cfg, 16, 32, []int{1, 2, 4}
}

package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"anybc/internal/gcrm"
)

// RenderTableIa prints Table Ia in the paper's layout.
func RenderTableIa(w io.Writer, rows []TableIaRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "P\t2DBC dim.\t2DBC T\tG-2DBC dim.\tG-2DBC T\t")
	for _, r := range rows {
		g2dims, g2cost := r.G2DBCDims, fmt.Sprintf("%.3f", r.G2DBCCost)
		if r.Degenerate {
			// As in the paper, identical (degenerate) entries are left blank.
			g2dims, g2cost = "", ""
		}
		fmt.Fprintf(tw, "%d\t%s\t%.0f\t%s\t%s\t\n", r.P, r.DBCDims, r.DBCCost, g2dims, g2cost)
	}
	tw.Flush()
}

// RenderTableIb prints Table Ib in the paper's layout.
func RenderTableIb(w io.Writer, rows []TableIbRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "P\tSBC nodes\tSBC dim.\tSBC T\tGCR&M dim.\tGCR&M T\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%s\t%.0f\t%s\t%.3f\t\n",
			r.P, r.SBCNodes, r.SBCDims, r.SBCCost, r.GCRMDims, r.GCRMCost)
	}
	tw.Flush()
}

// RenderPerf prints performance points grouped by matrix size, as the
// paper's performance plots tabulate them.
func RenderPerf(w io.Writer, title string, pts []PerfPoint) {
	fmt.Fprintf(w, "== %s ==\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "N\tdistribution\tP\tGFlop/s\tGFlop/s/node\tmessages\tmakespan(s)\t")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%.0f\t%.1f\t%d\t%.3f\t\n",
			p.N, p.Series, p.P, p.GFlops, p.PerNode, p.Messages, p.Makespan)
	}
	tw.Flush()
}

// PerfCSV writes performance points as CSV.
func PerfCSV(w io.Writer, pts []PerfPoint) {
	fmt.Fprintln(w, "n,series,p,gflops,gflops_per_node,messages,makespan_s")
	for _, p := range pts {
		fmt.Fprintf(w, "%d,%q,%d,%.3f,%.3f,%d,%.6f\n",
			p.N, p.Series, p.P, p.GFlops, p.PerNode, p.Messages, p.Makespan)
	}
}

// RenderCost prints cost points grouped by series.
func RenderCost(w io.Writer, title string, pts []CostPoint) {
	fmt.Fprintf(w, "== %s ==\n", title)
	series := map[string][]CostPoint{}
	var names []string
	for _, p := range pts {
		if _, ok := series[p.Series]; !ok {
			names = append(names, p.Series)
		}
		series[p.Series] = append(series[p.Series], p)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "series\tP\tT\t")
	for _, name := range names {
		for _, p := range series[name] {
			fmt.Fprintf(tw, "%s\t%d\t%.3f\t\n", name, p.P, p.T)
		}
	}
	tw.Flush()
}

// CostCSV writes cost points as CSV.
func CostCSV(w io.Writer, pts []CostPoint) {
	fmt.Fprintln(w, "p,series,t")
	for _, p := range pts {
		fmt.Fprintf(w, "%d,%q,%.6f\n", p.P, p.Series, p.T)
	}
}

// RenderCandidates prints the Figure 9 scatter: cost per pattern size and
// seed for one P.
func RenderCandidates(w io.Writer, P int, best *gcrm.Result, all []gcrm.Candidate) {
	fmt.Fprintf(w, "== Figure 9: GCR&M candidates for P=%d (best: r=%d cost=%.3f) ==\n",
		P, best.R, best.Cost)
	byR := map[int][]float64{}
	var rs []int
	for _, c := range all {
		if _, ok := byR[c.R]; !ok {
			rs = append(rs, c.R)
		}
		byR[c.R] = append(byR[c.R], c.Cost)
	}
	sort.Ints(rs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "r\tmin T\tmean T\tmax T\tsamples\t")
	for _, r := range rs {
		costs := byR[r]
		min, max, sum := costs[0], costs[0], 0.0
		for _, c := range costs {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
			sum += c
		}
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\t%d\t\n", r, min, sum/float64(len(costs)), max, len(costs))
	}
	tw.Flush()
}

// CandidateCSV writes Figure 9 candidates as CSV.
func CandidateCSV(w io.Writer, all []gcrm.Candidate) {
	fmt.Fprintln(w, "r,seed,t")
	for _, c := range all {
		fmt.Fprintf(w, "%d,%d,%.6f\n", c.R, c.Seed, c.Cost)
	}
}

// Summary returns a one-line comparison of the first and best series of a
// performance sweep at its largest N — convenient for EXPERIMENTS.md.
func Summary(pts []PerfPoint) string {
	if len(pts) == 0 {
		return "no data"
	}
	maxN := 0
	for _, p := range pts {
		if p.N > maxN {
			maxN = p.N
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d:", maxN)
	for _, p := range pts {
		if p.N == maxN {
			fmt.Fprintf(&b, " %s=%.0fGF/s", p.Series, p.GFlops)
		}
	}
	return b.String()
}

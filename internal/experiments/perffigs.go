package experiments

import (
	"fmt"

	"anybc/internal/dag"
	"anybc/internal/dist"
	"anybc/internal/simulate"
)

// PerfPoint is one point of a performance study: a distribution (Series) at
// matrix size N, with simulated aggregate and per-node GFlop/s.
type PerfPoint struct {
	N        int
	P        int
	Series   string
	GFlops   float64
	PerNode  float64
	Messages int64
	Makespan float64
}

// simulateOne runs one (graph, distribution) point through the simulator.
func simulateOne(cfg SimConfig, symmetric bool, n int, d dist.Distribution) (PerfPoint, error) {
	mt := n / cfg.B
	if mt < 1 {
		return PerfPoint{}, fmt.Errorf("experiments: N=%d below one tile of %d", n, cfg.B)
	}
	var g dag.Graph
	if symmetric {
		g = dag.NewCholesky(mt)
	} else {
		g = dag.NewLU(mt)
	}
	d = freshSymmetric(d)
	res, err := simulate.Run(g, cfg.B, d, cfg.Machine, simulate.Options{})
	if err != nil {
		return PerfPoint{}, err
	}
	return PerfPoint{
		N:        n,
		P:        d.Nodes(),
		Series:   d.Name(),
		GFlops:   res.GFlops(),
		PerNode:  res.GFlops() / float64(d.Nodes()),
		Messages: res.Messages,
		Makespan: res.Makespan,
	}, nil
}

// sweep simulates each distribution at every N of the config.
func sweep(cfg SimConfig, symmetric bool, ds []dist.Distribution) ([]PerfPoint, error) {
	var out []PerfPoint
	for _, n := range cfg.Ns {
		for _, d := range ds {
			pt, err := simulateOne(cfg, symmetric, n, d)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// Figure1 reproduces Figure 1: LU performance of 2DBC with different grid
// shapes for up to 23 nodes (23x1, 11x2, 7x3, 5x4, 4x4) across matrix sizes.
func Figure1(cfg SimConfig) ([]PerfPoint, error) {
	ds := []dist.Distribution{
		dist.NewTwoDBC(23, 1),
		dist.NewTwoDBC(11, 2),
		dist.NewTwoDBC(7, 3),
		dist.NewTwoDBC(5, 4),
		dist.NewTwoDBC(4, 4),
	}
	return sweep(cfg, false, ds)
}

// Figure5 reproduces Figure 5: LU with at most P = 23 nodes — G-2DBC on all
// 23 versus the 2DBC fallbacks (23x1, 7x3 on 21, 4x4 on 16).
func Figure5(cfg SimConfig) ([]PerfPoint, error) {
	ds := []dist.Distribution{
		dist.NewG2DBC(23),
		dist.NewTwoDBC(23, 1),
		dist.NewTwoDBC(7, 3),
		dist.NewTwoDBC(4, 4),
	}
	return sweep(cfg, false, ds)
}

// Figure6 reproduces Figure 6: LU with at most P = 39 nodes — G-2DBC on all
// 39 versus 2DBC 13x3 (39 nodes) and 6x6 (36 nodes).
func Figure6(cfg SimConfig) ([]PerfPoint, error) {
	ds := []dist.Distribution{
		dist.NewG2DBC(39),
		dist.NewTwoDBC(13, 3),
		dist.NewTwoDBC(6, 6),
	}
	return sweep(cfg, false, ds)
}

// ScalingPs lists the node counts of the strong-scaling study (Figure 7),
// spanning the paper's experimental cases.
var ScalingPs = []int{16, 20, 21, 22, 23, 25, 28, 30, 31, 32, 35, 36, 39}

// Figure7a reproduces Figure 7a: LU strong scaling at fixed N — the best
// 2DBC using at most P nodes versus G-2DBC on all P.
func Figure7a(cfg SimConfig, ps []int) ([]PerfPoint, error) {
	var out []PerfPoint
	for _, p := range ps {
		dbc := dist.Best2DBCAtMost(p)
		for _, d := range []dist.Distribution{dbc, dist.NewG2DBC(p)} {
			pt, err := simulateOne(cfg, false, cfg.ScalingN, d)
			if err != nil {
				return nil, err
			}
			// Key scaling series by the *available* node count.
			pt.P = p
			out = append(out, pt)
		}
	}
	return out, nil
}

// Figure7b reproduces Figure 7b: Cholesky strong scaling at fixed N — the
// best SBC using at most P nodes versus GCR&M on all P.
func Figure7b(cfg SimConfig, ps []int) ([]PerfPoint, error) {
	var out []PerfPoint
	for _, p := range ps {
		sbc := dist.BestSBCAtMost(p)
		gcrmD, err := GCRMDistribution(p, cfg.GCRMSearch)
		if err != nil {
			return nil, err
		}
		for _, d := range []dist.Distribution{dist.Distribution(sbc), gcrmD} {
			pt, err := simulateOne(cfg, true, cfg.ScalingN, d)
			if err != nil {
				return nil, err
			}
			pt.P = p
			out = append(out, pt)
		}
	}
	return out, nil
}

// Figure11 reproduces Figure 11: Cholesky with at most P = 31 nodes — GCR&M
// on all 31 versus the best SBC (8x8 pattern, 28 nodes).
func Figure11(cfg SimConfig) ([]PerfPoint, error) {
	gcrmD, err := GCRMDistribution(31, cfg.GCRMSearch)
	if err != nil {
		return nil, err
	}
	return sweep(cfg, true, []dist.Distribution{gcrmD, dist.BestSBCAtMost(31)})
}

// Figure12 reproduces Figure 12: Cholesky with at most P = 35 nodes — GCR&M
// on all 35 versus the best SBC (32 nodes).
func Figure12(cfg SimConfig) ([]PerfPoint, error) {
	gcrmD, err := GCRMDistribution(35, cfg.GCRMSearch)
	if err != nil {
		return nil, err
	}
	return sweep(cfg, true, []dist.Distribution{gcrmD, dist.BestSBCAtMost(35)})
}

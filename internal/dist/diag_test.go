package dist

import (
	"sync"
	"testing"

	"anybc/internal/pattern"
)

func sbc3Pattern() *pattern.Pattern {
	// SBC pair pattern for r=3, P=3 with undefined diagonal.
	p := pattern.New(3, 3)
	p.Set(0, 1, 0)
	p.Set(1, 0, 0)
	p.Set(0, 2, 1)
	p.Set(2, 0, 1)
	p.Set(1, 2, 2)
	p.Set(2, 1, 2)
	return p
}

func TestDiagResolverAssignsOnColrow(t *testing.T) {
	res := NewDiagResolver("test", sbc3Pattern())
	for i := 0; i < 12; i++ {
		for j := 0; j <= i; j++ {
			o := res.Owner(i, j)
			if o < 0 || o >= 3 {
				t.Fatalf("Owner(%d,%d) = %d", i, j, o)
			}
			if i%3 == j%3 {
				// Diagonal cell: owner must be on colrow i mod 3.
				cr := i % 3
				p := res.Pattern()
				found := false
				for k := 0; k < 3; k++ {
					if p.At(cr, k) == o || p.At(k, cr) == o {
						found = true
					}
				}
				if !found {
					t.Fatalf("diag tile (%d,%d) assigned to %d, not on colrow %d", i, j, o, cr)
				}
			}
		}
	}
}

func TestDiagResolverDeterministicOrder(t *testing.T) {
	// Two resolvers queried in different orders must agree everywhere.
	a := NewDiagResolver("a", sbc3Pattern())
	b := NewDiagResolver("b", sbc3Pattern())
	const n = 15
	// Query a in row-major order, b in reverse order.
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			a.Owner(i, j)
		}
	}
	for i := n - 1; i >= 0; i-- {
		for j := i; j >= 0; j-- {
			b.Owner(i, j)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if a.Owner(i, j) != b.Owner(i, j) {
				t.Fatalf("order-dependent assignment at (%d,%d)", i, j)
			}
		}
	}
}

func TestDiagResolverBalance(t *testing.T) {
	// Over a large extent the dynamic diagonal assignment must keep loads
	// close to even: lower triangle of 30x30 tiles on 3 nodes ≈ 155 each.
	res := NewDiagResolver("test", sbc3Pattern())
	loads := res.Loads(30)
	total := int64(0)
	for _, l := range loads {
		total += l
	}
	if total != 30*31/2 {
		t.Fatalf("total load %d, want %d", total, 30*31/2)
	}
	avg := float64(total) / 3
	for n, l := range loads {
		if f := float64(l); f < 0.9*avg || f > 1.1*avg {
			t.Errorf("node %d load %d too far from average %.1f", n, l, avg)
		}
	}
}

func TestDiagResolverMirrors(t *testing.T) {
	res := NewDiagResolver("test", sbc3Pattern())
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if res.Owner(i, j) != res.Owner(j, i) {
				t.Fatalf("Owner not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestDiagResolverConcurrent(t *testing.T) {
	res := NewDiagResolver("test", sbc3Pattern())
	want := map[[2]int]int{}
	for i := 0; i < 20; i++ {
		for j := 0; j <= i; j++ {
			want[[2]int{i, j}] = res.Owner(i, j)
		}
	}
	fresh := NewDiagResolver("fresh", sbc3Pattern())
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 20; i += 1 {
				for j := 0; j <= i; j++ {
					if fresh.Owner(i, j) != want[[2]int{i, j}] {
						select {
						case errs <- "concurrent resolution diverged":
						default:
						}
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestDiagResolverFullyDefinedPattern(t *testing.T) {
	p := pattern.MustFromRows([][]int{{0, 1}, {1, 0}})
	res := NewDiagResolver("full", p)
	if res.Owner(0, 0) != 0 || res.Owner(3, 3) != 0 || res.Owner(1, 0) != 1 {
		t.Error("fully defined pattern resolved incorrectly")
	}
}

func TestDiagResolverPanics(t *testing.T) {
	rect := pattern.MustFromRows([][]int{{0, 1, 2}, {2, 1, 0}})
	defer func() {
		if recover() == nil {
			t.Error("non-square pattern did not panic")
		}
	}()
	NewDiagResolver("rect", rect)
}

package dist_test

import (
	"fmt"

	"anybc/internal/dist"
)

// ExampleNewG2DBC reproduces the paper's Figure 3: the G-2DBC pattern for
// P = 10 nodes (a = 4, b = 3, c = 2), built from the incomplete pattern IP
// whose last-row holes are filled row by row.
func ExampleNewG2DBC() {
	d := dist.NewG2DBC(10)
	a, b, c := d.Params()
	fmt.Printf("a=%d b=%d c=%d size=%s cost=%.3f\n", a, b, c, d.Pattern().Dims(), d.Pattern().CostLU())
	fmt.Print(d.Pattern())
	// Output:
	// a=4 b=3 c=2 size=6x10 cost=6.600
	// 0 1 2 3 0 1 2 3 0 1
	// 4 5 6 7 4 5 6 7 4 5
	// 8 9 2 3 8 9 2 3 8 9
	// 0 1 2 3 0 1 2 3 0 1
	// 4 5 6 7 4 5 6 7 4 5
	// 8 9 6 7 8 9 6 7 8 9
}

// ExampleBest2DBC shows the classical fallback problem for a prime node
// count: the only exact grid is degenerate.
func ExampleBest2DBC() {
	for _, p := range []int{20, 23} {
		d := dist.Best2DBC(p)
		r, c := d.Grid()
		fmt.Printf("P=%d: grid %dx%d, cost %.0f\n", p, r, c, d.Pattern().CostLU())
	}
	// Output:
	// P=20: grid 5x4, cost 9
	// P=23: grid 23x1, cost 24
}

// ExampleNewSBCPair shows the Symmetric Block Cyclic pattern for P = 10
// (r = 5): each node owns the two symmetric cells of one colrow pair, and
// diagonal cells (".") are assigned at replication time.
func ExampleNewSBCPair() {
	d := dist.NewSBCPair(5)
	fmt.Printf("%s cost=%.0f\n", d.Name(), d.Pattern().CostCholesky())
	fmt.Print(d.Pattern())
	// Output:
	// SBC(5x5,P=10) cost=4
	// . 0 1 2 3
	// 0 . 4 5 6
	// 1 4 . 7 8
	// 2 5 7 . 9
	// 3 6 8 9 .
}

// ExampleNewSTS shows the Steiner-triple-system pattern for r = 9 (P = 12):
// every node owns the six cells of one triple, every colrow holds exactly
// (r-1)/2 = 4 distinct nodes.
func ExampleNewSTS() {
	d := dist.NewSTS(9)
	fmt.Printf("%s cost=%.0f colrow0=%d\n",
		d.Name(), d.Pattern().CostCholesky(), d.Pattern().ColrowDistinct(0))
	// Output:
	// STS(9x9,P=12) cost=4 colrow0=4
}

package dist

import (
	"math"
	"testing"

	"anybc/internal/pattern"
)

func TestSTSValidP(t *testing.T) {
	cases := []struct {
		p  int
		r  int
		ok bool
	}{
		{1, 3, true},
		{12, 9, true},
		{35, 15, true},
		{70, 21, true},
		{117, 27, true},
		{23, 0, false},
		{36, 0, false},
		{2, 0, false},
	}
	for _, c := range cases {
		r, ok := STSValidP(c.p)
		if ok != c.ok || (ok && r != c.r) {
			t.Errorf("STSValidP(%d) = (%d,%v), want (%d,%v)", c.p, r, ok, c.r, c.ok)
		}
	}
}

// TestSTSIsSteinerSystem verifies the defining property: every off-diagonal
// cell is assigned (every pair covered exactly once — double coverage would
// panic in the constructor), every node owns exactly 6 cells, and every node
// appears on exactly 3 colrows.
func TestSTSIsSteinerSystem(t *testing.T) {
	for _, r := range []int{3, 9, 15, 21, 27, 33} {
		d := NewSTS(r)
		P := r * (r - 1) / 6
		if d.Nodes() != P {
			t.Fatalf("r=%d: Nodes = %d, want %d", r, d.Nodes(), P)
		}
		p := d.Pattern()
		if err := p.Validate(); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				if i != j && p.At(i, j) == pattern.Undefined {
					t.Fatalf("r=%d: cell (%d,%d) uncovered", r, i, j)
				}
			}
		}
		for n, cnt := range p.Counts() {
			if cnt != 6 {
				t.Fatalf("r=%d: node %d owns %d cells, want 6", r, n, cnt)
			}
		}
		// v = 3 colrows per node.
		colrows := make([]map[int]bool, P)
		for n := range colrows {
			colrows[n] = map[int]bool{}
		}
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				if i != j {
					n := p.At(i, j)
					colrows[n][i] = true
					colrows[n][j] = true
				}
			}
		}
		for n, crs := range colrows {
			if len(crs) != 3 {
				t.Fatalf("r=%d: node %d appears on %d colrows, want 3", r, n, len(crs))
			}
		}
	}
}

// TestSTSCost checks z̄ = (r−1)/2 exactly, below the √(3P/2) limit and below
// the SBC laws.
func TestSTSCost(t *testing.T) {
	for _, r := range []int{9, 15, 21, 27, 33, 39} {
		d := NewSTS(r)
		P := d.Nodes()
		want := float64(r-1) / 2
		if got := d.Pattern().CostCholesky(); math.Abs(got-want) > 1e-12 {
			t.Fatalf("r=%d: cost %v, want %v", r, got, want)
		}
		limit := math.Sqrt(1.5 * float64(P))
		if want >= limit {
			t.Errorf("r=%d: STS cost %v not below √(3P/2) = %v", r, want, limit)
		}
		if sbcLaw := math.Sqrt(2 * float64(P)); want >= sbcLaw {
			t.Errorf("r=%d: STS cost %v not below SBC law %v", r, want, sbcLaw)
		}
	}
}

// TestSTSBeatsAlternativesAtP35 pins the headline comparison at the paper's
// P = 35 test case: STS(15) cost 7.0 vs SBC-fallback cost 8 on 32 nodes.
func TestSTSBeatsAlternativesAtP35(t *testing.T) {
	d, err := NewSTSForP(35)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Pattern().CostCholesky(); got != 7 {
		t.Fatalf("STS(15) cost %v, want 7", got)
	}
	sbc := BestSBCAtMost(35)
	if sbc.Pattern().CostCholesky() <= 7 {
		t.Fatal("SBC fallback unexpectedly at or below STS cost")
	}
}

func TestSTSOwnerOnColrow(t *testing.T) {
	d := NewSTS(9)
	r := d.PatternSize()
	for i := 0; i < 2*r; i++ {
		for j := 0; j <= i; j++ {
			o := d.Owner(i, j)
			if o < 0 || o >= d.Nodes() {
				t.Fatalf("Owner(%d,%d) = %d", i, j, o)
			}
			if d.Owner(j, i) != o {
				t.Fatalf("not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewSTSForPError(t *testing.T) {
	if _, err := NewSTSForP(23); err == nil {
		t.Error("NewSTSForP(23): want error")
	}
}

func TestSTSPanics(t *testing.T) {
	for _, r := range []int{0, 4, 6, 7, 15 + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSTS(%d) did not panic", r)
				}
			}()
			NewSTS(r)
		}()
	}
}

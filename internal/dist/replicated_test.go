package dist

import "testing"

// TestReplicatedOwnerGroupProperty is the replication ownership invariant:
// for every tile, the owner group holds exactly c distinct nodes — one per
// layer, all at the same base-grid coordinate — and with c = 1 it collapses
// to the single base owner. Checked over every base node count P ∈ 1..64
// (G-2DBC) and deliberately non-square 2DBC grids.
func TestReplicatedOwnerGroupProperty(t *testing.T) {
	const mt = 9
	bases := []Distribution{}
	for P := 1; P <= 64; P++ {
		bases = append(bases, NewG2DBC(P))
	}
	for _, grid := range [][2]int{{1, 5}, {2, 7}, {3, 4}, {8, 3}, {16, 1}} {
		bases = append(bases, NewTwoDBC(grid[0], grid[1]))
	}
	for _, base := range bases {
		for _, c := range []int{1, 2, 3, 4} {
			d := NewReplicated(base, c, mt)
			if got, want := d.Nodes(), c*base.Nodes(); got != want {
				t.Fatalf("%s: Nodes = %d, want %d", d.Name(), got, want)
			}
			for i := 0; i < mt; i++ {
				for j := 0; j < mt; j++ {
					grp := d.Group(i, j)
					if len(grp) != c {
						t.Fatalf("%s: |Group(%d,%d)| = %d, want %d", d.Name(), i, j, len(grp), c)
					}
					seen := map[int]bool{}
					for q, n := range grp {
						if n < 0 || n >= d.Nodes() {
							t.Fatalf("%s: Group(%d,%d)[%d] = %d out of range", d.Name(), i, j, q, n)
						}
						if seen[n] {
							t.Fatalf("%s: Group(%d,%d) repeats node %d", d.Name(), i, j, n)
						}
						seen[n] = true
						if n%base.Nodes() != base.Owner(i, j) {
							t.Fatalf("%s: Group(%d,%d)[%d] = %d not at base coordinate %d",
								d.Name(), i, j, q, n, base.Owner(i, j))
						}
						if n/base.Nodes() != q {
							t.Fatalf("%s: Group(%d,%d)[%d] = %d not on layer %d",
								d.Name(), i, j, q, n, q)
						}
					}
					// The canonical tile's owner is the group member on the
					// layer that runs the tile's panel iteration.
					k := i
					if j < k {
						k = j
					}
					if own := d.Owner(i, j); own != grp[k%c] {
						t.Fatalf("%s: Owner(%d,%d) = %d, want group layer %d = %d",
							d.Name(), i, j, own, k%c, grp[k%c])
					}
					if c == 1 && d.Owner(i, j) != base.Owner(i, j) {
						t.Fatalf("%s: c=1 Owner(%d,%d) = %d differs from base %d",
							d.Name(), i, j, d.Owner(i, j), base.Owner(i, j))
					}
					// Accumulator coordinates decode to the layer copies.
					for q := 0; q < c; q++ {
						if own := d.Owner(i, (1+q)*mt+j); own != grp[q] {
							t.Fatalf("%s: acc Owner(%d, q=%d, %d) = %d, want %d",
								d.Name(), i, q, j, own, grp[q])
						}
					}
				}
			}
		}
	}
}

package dist

import "testing"

// opaque is a Distribution that exposes no pattern — the case the comma-ok
// accessors exist for.
type opaque struct{}

func (opaque) Name() string       { return "opaque" }
func (opaque) Nodes() int         { return 3 }
func (opaque) Owner(i, j int) int { return (i + j) % 3 }

// TestPatternAccessorsCommaOk: library code gets a comma-ok miss for
// pattern-less distributions, and a hit with the correct costs for
// pattern-backed ones.
func TestPatternAccessorsCommaOk(t *testing.T) {
	var d Distribution = opaque{}
	if _, ok := PatternOf(d); ok {
		t.Fatal("PatternOf(opaque) reported a pattern")
	}
	if _, ok := TryCostLU(d); ok {
		t.Fatal("TryCostLU(opaque) reported ok")
	}
	if _, ok := TryCostCholesky(d); ok {
		t.Fatal("TryCostCholesky(opaque) reported ok")
	}

	g := NewG2DBC(5)
	p, ok := PatternOf(g)
	if !ok || p == nil {
		t.Fatal("PatternOf(G-2DBC) missed")
	}
	if T, ok := TryCostLU(g); !ok || T != p.CostLU() {
		t.Fatalf("TryCostLU(G-2DBC) = %v, %v; want %v, true", T, ok, p.CostLU())
	}
	if T, ok := TryCostCholesky(g); !ok || T != p.CostCholesky() {
		t.Fatalf("TryCostCholesky(G-2DBC) = %v, %v; want %v, true", T, ok, p.CostCholesky())
	}
}

// TestCostPanicsOnlyForOpaque: the panicking wrappers stay for CLI paths that
// validated first, and still panic loudly for pattern-less distributions.
func TestCostPanicsOnlyForOpaque(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CostLU(opaque) did not panic")
		}
	}()
	CostLU(opaque{})
}

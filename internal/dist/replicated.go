package dist

import "fmt"

// Replicated is the 2.5D-style replicated distribution (COnfLUX;
// Kwasniewski et al., arXiv:2010.05975): c copies of a base distribution's
// node grid are stacked as layers, and the factorization's summation
// dimension — the update iterations ℓ — is sliced round-robin over the
// layers (layer f(ℓ) = ℓ mod c). Each tile therefore has a deterministic
// owner *group* of c nodes, one per layer, all at the same base-grid
// coordinate; the extra c−1 copies trade memory for communication.
//
// Node numbering: layer q holds nodes q·Pb .. (q+1)·Pb−1, where Pb is the
// base node count. Tile coordinates follow the dag.ReplicatedLU extended
// space for an mt×mt tile matrix:
//
//	(i, j), j < mt        canonical tile — owned on the layer that runs its
//	                      panel iteration, f(min(i, j)), so panel broadcasts
//	                      stay inside one layer's base grid
//	(i, (1+q)·mt + j)     layer q's accumulator for tile (i, j), owned by
//	                      the layer-q copy of the base owner
type Replicated struct {
	base Distribution
	c    int
	mt   int
}

// NewReplicated stacks c layers of base over an mt×mt tile matrix. c = 1 is
// a single layer: owners then coincide with base's on every canonical tile.
func NewReplicated(base Distribution, c, mt int) *Replicated {
	if c <= 0 {
		panic(fmt.Sprintf("dist: invalid replication factor %d", c))
	}
	if mt <= 0 {
		panic(fmt.Sprintf("dist: invalid tile count %d", mt))
	}
	return &Replicated{base: base, c: c, mt: mt}
}

// Name implements Distribution.
func (d *Replicated) Name() string {
	return fmt.Sprintf("Replicated(c=%d, %s)", d.c, d.base.Name())
}

// Nodes implements Distribution: c layers of the base grid.
func (d *Replicated) Nodes() int { return d.c * d.base.Nodes() }

// Base returns the per-layer base distribution.
func (d *Replicated) Base() Distribution { return d.base }

// Replication returns the layer count c.
func (d *Replicated) Replication() int { return d.c }

// Owner implements Distribution over the extended coordinate space.
func (d *Replicated) Owner(i, j int) int {
	if j < d.mt {
		k := i
		if j < k {
			k = j
		}
		return (k%d.c)*d.base.Nodes() + d.base.Owner(i, j)
	}
	q := j/d.mt - 1
	return q*d.base.Nodes() + d.base.Owner(i, j%d.mt)
}

// Group returns the owner group of canonical tile (i, j): the c nodes — one
// per layer — holding either the canonical tile or one of its layer
// accumulators, in layer order. With c = 1 the group is the single base
// owner.
func (d *Replicated) Group(i, j int) []int {
	g := make([]int, d.c)
	for q := 0; q < d.c; q++ {
		g[q] = q*d.base.Nodes() + d.base.Owner(i, j)
	}
	return g
}

package dist

import (
	"fmt"
	"math"

	"anybc/internal/pattern"
)

// TwoDBC is the classical 2-Dimensional Block-Cyclic distribution on an r×c
// process grid: tile (i, j) is owned by node (i mod r)·c + (j mod c).
// Its pattern is the r×c grid holding each of the P = r·c nodes exactly once,
// so every pattern row holds c distinct nodes and every column r, giving the
// LU communication cost T = r + c.
type TwoDBC struct {
	r, c int
	pat  *pattern.Pattern
}

// NewTwoDBC returns the 2DBC distribution on an r×c grid.
func NewTwoDBC(r, c int) *TwoDBC {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("dist: invalid 2DBC grid %dx%d", r, c))
	}
	pat := pattern.New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			pat.Set(i, j, i*c+j)
		}
	}
	return &TwoDBC{r: r, c: c, pat: pat}
}

// Name implements Distribution.
func (d *TwoDBC) Name() string { return fmt.Sprintf("2DBC(%dx%d)", d.r, d.c) }

// Nodes implements Distribution.
func (d *TwoDBC) Nodes() int { return d.r * d.c }

// Owner implements Distribution.
func (d *TwoDBC) Owner(i, j int) int { return (i%d.r)*d.c + (j % d.c) }

// Pattern implements PatternDistribution.
func (d *TwoDBC) Pattern() *pattern.Pattern { return d.pat }

// Grid returns the (r, c) process-grid shape.
func (d *TwoDBC) Grid() (r, c int) { return d.r, d.c }

// Best2DBC returns the 2DBC distribution using exactly P nodes with the
// lowest communication cost, i.e. the factorization P = r·c minimizing r + c
// (the most square grid). Ties favor r ≥ c, matching the paper's convention of
// writing grids as "5x4" rather than "4x5".
func Best2DBC(P int) *TwoDBC {
	if P <= 0 {
		panic(fmt.Sprintf("dist: invalid node count %d", P))
	}
	bestR, bestC := P, 1
	for c := 1; c*c <= P; c++ {
		if P%c == 0 {
			r := P / c
			if r+c < bestR+bestC {
				bestR, bestC = r, c
			}
		}
	}
	return NewTwoDBC(bestR, bestC)
}

// Best2DBCAtMost returns, among all 2DBC grids using at most P nodes, the one
// the paper's experiments would pick: it first minimizes the per-node
// communication cost proxy (r+c)/√(r·c) and then maximizes the node count.
// This reproduces choices such as "for P = 23 use 4x4 (16 nodes) or 7x3 (21)".
func Best2DBCAtMost(P int) *TwoDBC {
	if P <= 0 {
		panic(fmt.Sprintf("dist: invalid node count %d", P))
	}
	bestScore := math.Inf(1)
	bestNodes := 0
	bestR, bestC := 1, 1
	for n := 1; n <= P; n++ {
		d := Best2DBC(n)
		r, c := d.Grid()
		score := float64(r+c) / math.Sqrt(float64(n))
		const eps = 1e-9
		if score < bestScore-eps || (score < bestScore+eps && n > bestNodes) {
			bestScore, bestNodes = score, n
			bestR, bestC = r, c
		}
	}
	return NewTwoDBC(bestR, bestC)
}

// All2DBCGrids returns every (r, c) with r·c = P and r ≥ c, largest r first —
// the "all possible ways to write P as P = rc" enumerated in Figure 4.
func All2DBCGrids(P int) []*TwoDBC {
	var out []*TwoDBC
	for c := 1; c*c <= P; c++ {
		if P%c == 0 {
			out = append(out, NewTwoDBC(P/c, c))
		}
	}
	return out
}

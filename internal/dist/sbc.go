package dist

import (
	"fmt"

	"anybc/internal/pattern"
)

// SBCKind distinguishes the two families of node counts for which the
// Symmetric Block Cyclic distribution exists (Beaumont et al., SC 2022;
// recalled in Section II-A of the IPDPS 2023 paper).
type SBCKind int

const (
	// SBCPairKind is the P = r(r-1)/2 family: one node per unordered colrow
	// pair {i, j}, owning both cells (i, j) and (j, i). Each colrow holds
	// r-1 distinct nodes, so the Cholesky cost is r-1 ≈ √(2P) − 0.5 — the
	// paper's "extended" SBC cost law.
	SBCPairKind SBCKind = iota
	// SBCEvenKind is the P = r²/2 family (r even): a perfect matching of the
	// colrows is chosen and each matched pair {i, j} is split between two
	// nodes (one owning (i, j), the other (j, i)); all other pairs keep a
	// single owner. Each colrow holds r distinct nodes, so the cost is
	// exactly r = √(2P) — the paper's "basic" SBC cost law.
	SBCEvenKind
)

func (k SBCKind) String() string {
	switch k {
	case SBCPairKind:
		return "pair"
	case SBCEvenKind:
		return "even"
	default:
		return fmt.Sprintf("SBCKind(%d)", int(k))
	}
}

// SBC is the Symmetric Block Cyclic distribution: a square r×r pattern whose
// off-diagonal cells pair up symmetric positions on shared nodes, and whose
// diagonal cells are left undefined and resolved at replication time (the
// extended-SBC diagonal rule). Valid only for P = r(r-1)/2 or P = r²/2.
type SBC struct {
	r    int
	kind SBCKind
	res  *DiagResolver
}

// pairIndex numbers the unordered pairs {i, j}, i < j, of {0..r-1}
// lexicographically.
func pairIndex(r, i, j int) int {
	if i > j {
		i, j = j, i
	}
	return i*(2*r-i-1)/2 + (j - i - 1)
}

// NewSBCPair builds the SBC distribution for P = r(r-1)/2 nodes, r ≥ 2.
func NewSBCPair(r int) *SBC {
	if r < 2 {
		panic(fmt.Sprintf("dist: SBC pair construction needs r >= 2, got %d", r))
	}
	pat := pattern.New(r, r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			if i != j {
				pat.Set(i, j, pairIndex(r, i, j))
			}
		}
	}
	d := &SBC{r: r, kind: SBCPairKind}
	d.res = NewDiagResolver(d.Name(), pat)
	return d
}

// NewSBCEven builds the SBC distribution for P = r²/2 nodes, r even, r ≥ 2.
func NewSBCEven(r int) *SBC {
	if r < 2 || r%2 != 0 {
		panic(fmt.Sprintf("dist: SBC even construction needs even r >= 2, got %d", r))
	}
	pat := pattern.New(r, r)
	// Full pairs (those not in the matching {2k, 2k+1}) get one node for both
	// symmetric cells; matched pairs are split between two nodes.
	next := 0
	id := make(map[[2]int]int)
	for i := 0; i < r; i++ {
		for j := i + 1; j < r; j++ {
			if j == i+1 && i%2 == 0 {
				continue // matched pair, handled below
			}
			id[[2]int{i, j}] = next
			next++
		}
	}
	for k := 0; k < r/2; k++ {
		i, j := 2*k, 2*k+1
		pat.Set(i, j, next)
		next++
		pat.Set(j, i, next)
		next++
		_ = i
	}
	for key, n := range id {
		pat.Set(key[0], key[1], n)
		pat.Set(key[1], key[0], n)
	}
	d := &SBC{r: r, kind: SBCEvenKind}
	d.res = NewDiagResolver(d.Name(), pat)
	return d
}

// SBCValidP reports whether an SBC distribution exists for exactly P nodes,
// and returns its pattern size r and family.
func SBCValidP(P int) (r int, kind SBCKind, ok bool) {
	for r := 2; r*(r-1)/2 <= P; r++ {
		if r*(r-1)/2 == P {
			return r, SBCPairKind, true
		}
	}
	for r := 2; r*r/2 <= P; r += 2 {
		if r*r/2 == P {
			return r, SBCEvenKind, true
		}
	}
	return 0, 0, false
}

// NewSBC builds the SBC distribution for exactly P nodes, or reports that no
// SBC exists for this P.
func NewSBC(P int) (*SBC, error) {
	r, kind, ok := SBCValidP(P)
	if !ok {
		return nil, fmt.Errorf("dist: no SBC distribution exists for P=%d (needs r(r-1)/2 or r²/2)", P)
	}
	if kind == SBCPairKind {
		return NewSBCPair(r), nil
	}
	return NewSBCEven(r), nil
}

// BestSBCAtMost returns the SBC distribution with the largest node count
// P' ≤ P — the choice the paper's experiments make when no SBC exists for the
// available node count (e.g. P=31 → SBC on 28 nodes, P=35 → SBC on 32).
func BestSBCAtMost(P int) *SBC {
	if P < 1 {
		panic(fmt.Sprintf("dist: invalid node count %d", P))
	}
	best := -1
	var bestD *SBC
	for q := P; q >= 1 && bestD == nil; q-- {
		if d, err := NewSBC(q); err == nil {
			best, bestD = q, d
		}
	}
	if bestD == nil {
		// P = 1: a single node trivially owns everything; model it as the
		// degenerate pair construction on r=2 collapsed to one node.
		pat := pattern.MustFromRows([][]int{{0}})
		d := &SBC{r: 1, kind: SBCPairKind}
		d.res = NewDiagResolver("SBC(1x1,P=1)", pat)
		return d
	}
	_ = best
	return bestD
}

// Name implements Distribution.
func (d *SBC) Name() string {
	return fmt.Sprintf("SBC(%dx%d,P=%d)", d.r, d.r, d.nodesForKind())
}

func (d *SBC) nodesForKind() int {
	if d.r == 1 {
		return 1
	}
	if d.kind == SBCPairKind {
		return d.r * (d.r - 1) / 2
	}
	return d.r * d.r / 2
}

// Nodes implements Distribution.
func (d *SBC) Nodes() int { return d.nodesForKind() }

// Owner implements Distribution. For symmetric kernels only the lower
// triangle is stored; Owner mirrors upper-triangle queries.
func (d *SBC) Owner(i, j int) int { return d.res.Owner(i, j) }

// Pattern implements PatternDistribution; diagonal cells are Undefined.
func (d *SBC) Pattern() *pattern.Pattern { return d.res.Pattern() }

// PatternSize returns r, the SBC pattern dimension.
func (d *SBC) PatternSize() int { return d.r }

// Kind returns which P family the distribution belongs to.
func (d *SBC) Kind() SBCKind { return d.kind }

package dist

import (
	"math"
	"testing"
)

// TestG2DBCPaperExample reproduces the Figure 3 example: P = 10 gives
// a = 4, b = 3, c = 2 and a 6x10 pattern.
func TestG2DBCPaperExample(t *testing.T) {
	d := NewG2DBC(10)
	a, b, c := d.Params()
	if a != 4 || b != 3 || c != 2 {
		t.Fatalf("Params = (%d,%d,%d), want (4,3,2)", a, b, c)
	}
	p := d.Pattern()
	if p.Rows() != b*(b-1) || p.Cols() != 10 {
		t.Fatalf("pattern dims %s, want 6x10", p.Dims())
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("pattern invalid: %v", err)
	}
	// Figure 3 (0-based): IP rows are [0 1 2 3], [4 5 6 7], [8 9 . .].
	// P_1 fills the holes with 2 and 3; strip 1 = [P_1 P_1 LP(cols 0,1)].
	wantRow0 := []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}
	wantRow2 := []int{8, 9, 2, 3, 8, 9, 2, 3, 8, 9}
	wantRow5 := []int{8, 9, 6, 7, 8, 9, 6, 7, 8, 9} // strip 2 uses row 1's tail 6,7
	for j, want := range wantRow0 {
		if got := p.At(0, j); got != want {
			t.Errorf("pattern(0,%d) = %d, want %d", j, got, want)
		}
	}
	for j, want := range wantRow2 {
		if got := p.At(2, j); got != want {
			t.Errorf("pattern(2,%d) = %d, want %d", j, got, want)
		}
	}
	for j, want := range wantRow5 {
		if got := p.At(5, j); got != want {
			t.Errorf("pattern(5,%d) = %d, want %d", j, got, want)
		}
	}
}

// TestG2DBCLemma1 checks that each node appears exactly b(b-1) times
// (perfect balance) for a wide range of P.
func TestG2DBCLemma1(t *testing.T) {
	for P := 1; P <= 300; P++ {
		d := NewG2DBC(P)
		_, b, c := d.Params()
		p := d.Pattern()
		if err := p.Validate(); err != nil {
			t.Fatalf("P=%d: invalid pattern: %v", P, err)
		}
		if p.NumNodes() != P {
			t.Fatalf("P=%d: pattern has %d nodes", P, p.NumNodes())
		}
		if !p.IsBalanced() {
			t.Fatalf("P=%d: pattern not balanced (spread %d)", P, p.BalanceSpread())
		}
		want := b * (b - 1)
		if c == 0 {
			want = 1 // degenerate 2DBC pattern
		}
		for n, cnt := range p.Counts() {
			if cnt != want {
				t.Fatalf("P=%d: node %d appears %d times, want %d", P, n, cnt, want)
			}
		}
	}
}

// TestG2DBCRowColCounts checks x̄ = a and the closed form for ȳ
// from the proof of Lemma 2: ȳ = (b²(a-c) + (b-1)²c) / P.
func TestG2DBCRowColCounts(t *testing.T) {
	for P := 1; P <= 300; P++ {
		d := NewG2DBC(P)
		a, b, c := d.Params()
		p := d.Pattern()
		for i, x := range p.RowDistincts() {
			if x != a {
				t.Fatalf("P=%d: row %d has %d distinct nodes, want a=%d", P, i, x, a)
			}
		}
		var wantY float64
		if c == 0 {
			wantY = float64(b)
		} else {
			wantY = float64(b*b*(a-c)+(b-1)*(b-1)*c) / float64(P)
		}
		if got := p.AvgColDistinct(); math.Abs(got-wantY) > 1e-9 {
			t.Fatalf("P=%d: ȳ = %v, want %v", P, got, wantY)
		}
	}
}

// TestG2DBCLemma2 checks the cost bound T ≤ 2√P + 2/√P.
func TestG2DBCLemma2(t *testing.T) {
	max := 400
	if testing.Short() {
		max = 100
	}
	for P := 1; P <= max; P++ {
		d := NewG2DBC(P)
		if T, bound := CostLU(d), CostBound(P); T > bound+1e-9 {
			t.Fatalf("P=%d: T = %v exceeds bound %v", P, T, bound)
		}
	}
}

// TestG2DBCReducesTo2DBC checks the degenerate case c = 0 (P = p² or
// P = p(p+1)): G-2DBC is the standard 2DBC pattern.
func TestG2DBCReducesTo2DBC(t *testing.T) {
	for _, P := range []int{1, 2, 4, 6, 9, 12, 16, 20, 25, 30, 36, 42, 49} {
		d := NewG2DBC(P)
		a, b, c := d.Params()
		if c != 0 {
			t.Fatalf("P=%d: expected c=0, got c=%d", P, c)
		}
		want := NewTwoDBC(b, a)
		if !d.Pattern().Equal(want.Pattern()) {
			t.Errorf("P=%d: G-2DBC pattern differs from 2DBC %dx%d", P, b, a)
		}
	}
}

// TestG2DBCTableIa checks the G-2DBC column of Table Ia. The P=23 entry is
// the value computed by the paper's own closed form (9.652); the printed
// 9.261 is treated as an erratum (see DESIGN.md).
func TestG2DBCTableIa(t *testing.T) {
	cases := []struct {
		p    int
		dims string
		cost float64
	}{
		{23, "20x23", 9.6522},
		{31, "30x31", 11.1935},
		{35, "30x35", 11.8571},
		{39, "30x39", 12.6154},
	}
	for _, c := range cases {
		d := NewG2DBC(c.p)
		if got := d.Pattern().Dims(); got != c.dims {
			t.Errorf("P=%d: dims %s, want %s", c.p, got, c.dims)
		}
		if got := CostLU(d); math.Abs(got-c.cost) > 5e-4 {
			t.Errorf("P=%d: cost %v, want %v", c.p, got, c.cost)
		}
	}
}

func TestG2DBCOwnerMatchesPattern(t *testing.T) {
	d := NewG2DBC(7)
	p := d.Pattern()
	for i := 0; i < 3*p.Rows(); i++ {
		for j := 0; j < 2*p.Cols(); j++ {
			if d.Owner(i, j) != p.Owner(i, j) {
				t.Fatalf("Owner mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestG2DBCPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewG2DBC(0) did not panic")
		}
	}()
	NewG2DBC(0)
}

package dist

import (
	"fmt"
	"sync"

	"anybc/internal/pattern"
)

// DiagResolver turns a square pattern with Undefined diagonal cells into a
// concrete symmetric Distribution. It implements the replication-time rule of
// Section V (generalizing extended SBC): every matrix tile landing on an
// undefined diagonal cell is assigned greedily to the least-loaded node among
// the nodes present on that cell's colrow. Because every candidate is already
// on the colrow, the assignment never increases the communication cost, while
// it repairs the load imbalance that a static diagonal assignment would cause.
//
// The greedy order is canonical (tiles processed in increasing extent, then
// row-major), so the resulting distribution is deterministic regardless of the
// order in which Owner is called. Only the lower triangle (i ≥ j) is
// meaningful for symmetric kernels; upper-triangle queries are mirrored.
type DiagResolver struct {
	name string
	pat  *pattern.Pattern
	r    int

	// colrowNodes[d] lists the distinct nodes present on pattern colrow d,
	// sorted by node id.
	colrowNodes [][]int

	mu       sync.Mutex
	extent   int            // tiles processed: all (i, j) with max(i,j) < extent
	load     []int64        // tiles owned per node within the processed extent
	assigned map[[2]int]int // resolved owners of diagonal-cell tiles (i >= j)
}

// NewDiagResolver wraps a square pattern whose only Undefined cells are on
// its diagonal. Patterns with no Undefined cells are also accepted (the
// resolver then adds nothing).
func NewDiagResolver(name string, pat *pattern.Pattern) *DiagResolver {
	if err := pat.Validate(); err != nil {
		panic(fmt.Sprintf("dist: %s: %v", name, err))
	}
	if !pat.Square() {
		panic(fmt.Sprintf("dist: %s: diagonal resolution needs a square pattern", name))
	}
	r := pat.Rows()
	P := pat.NumNodes()
	res := &DiagResolver{
		name:        name,
		pat:         pat,
		r:           r,
		colrowNodes: make([][]int, r),
		load:        make([]int64, P),
		assigned:    make(map[[2]int]int),
	}
	for d := 0; d < r; d++ {
		seen := make([]bool, P)
		for k := 0; k < r; k++ {
			for _, v := range []int{pat.At(d, k), pat.At(k, d)} {
				if v != pattern.Undefined && !seen[v] {
					seen[v] = true
					res.colrowNodes[d] = append(res.colrowNodes[d], v)
				}
			}
		}
		if pat.At(d, d) == pattern.Undefined && len(res.colrowNodes[d]) == 0 {
			panic(fmt.Sprintf("dist: %s: colrow %d has an undefined diagonal and no nodes", name, d))
		}
	}
	return res
}

// Name returns the identifier supplied at construction.
func (d *DiagResolver) Name() string { return d.name }

// Nodes implements Distribution.
func (d *DiagResolver) Nodes() int { return d.pat.NumNodes() }

// Pattern returns the wrapped (possibly incomplete) pattern.
func (d *DiagResolver) Pattern() *pattern.Pattern { return d.pat }

// Owner implements Distribution for the symmetric lower triangle; queries
// with i < j are mirrored to (j, i).
func (d *DiagResolver) Owner(i, j int) int {
	if i < j {
		i, j = j, i
	}
	ci, cj := i%d.r, j%d.r
	if v := d.pat.At(ci, cj); v != pattern.Undefined {
		return v
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.grow(i + 1)
	return d.assigned[[2]int{i, j}]
}

// grow processes lower-triangle tiles in canonical order until all tiles with
// max coordinate < extent are assigned, updating per-node loads and greedily
// resolving diagonal-cell tiles.
func (d *DiagResolver) grow(extent int) {
	for t := d.extent; t < extent; t++ {
		// New tiles when extent grows from t to t+1: row t, columns 0..t.
		for j := 0; j <= t; j++ {
			ci, cj := t%d.r, j%d.r
			v := d.pat.At(ci, cj)
			if v == pattern.Undefined {
				v = d.resolve(t, j, ci)
			}
			d.load[v]++
		}
	}
	if extent > d.extent {
		d.extent = extent
	}
}

// resolve picks the least-loaded node on colrow cd for tile (i, j) (ties
// broken by lowest node id) and records the assignment.
func (d *DiagResolver) resolve(i, j, cd int) int {
	best := d.colrowNodes[cd][0]
	for _, n := range d.colrowNodes[cd][1:] {
		if d.load[n] < d.load[best] {
			best = n
		}
	}
	d.assigned[[2]int{i, j}] = best
	return best
}

// Loads returns a copy of the per-node tile loads over the lower triangle of
// extent×extent tiles, resolving any not-yet-assigned diagonal tiles first.
// Useful for load-balance diagnostics and tests.
func (d *DiagResolver) Loads(extent int) []int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.grow(extent)
	// Loads cover extent d.extent which may exceed the request; recompute
	// exactly for the requested extent.
	out := make([]int64, len(d.load))
	for i := 0; i < extent; i++ {
		for j := 0; j <= i; j++ {
			ci, cj := i%d.r, j%d.r
			v := d.pat.At(ci, cj)
			if v == pattern.Undefined {
				v = d.assigned[[2]int{i, j}]
			}
			out[v]++
		}
	}
	return out
}

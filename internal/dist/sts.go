package dist

import (
	"fmt"

	"anybc/internal/pattern"
)

// STS is an explicit symmetric distribution built from a Steiner triple
// system — a concrete answer, for specific node counts, to the question the
// paper leaves open ("whether it is possible to find an explicit description
// of an efficient pattern in the symmetric case").
//
// Section V-B derives the empirical GCR&M cost limit √(3P/2) from a
// hypothetical regular pattern in which every node appears on v = 3 colrows
// and owns l = 6 cells. A Steiner triple system of order r (a set of triples
// of {0..r-1} covering every pair exactly once) realizes that pattern
// exactly: assign each triple {a, b, c} to one node owning the six cells
// (a,b), (b,a), (a,c), (c,a), (b,c), (c,b). Then
//
//   - P = r(r−1)/6 nodes, each owning exactly 6 cells (perfect balance),
//   - every colrow holds exactly (r−1)/2 distinct nodes, so the Cholesky
//     cost is z̄ = (r−1)/2 < √(3P/2) — beating both SBC (√(2P)) and the
//     GCR&M heuristic,
//
// at the price of existing only for r ≡ 1 or 3 (mod 6). This implementation
// uses the Bose construction (r ≡ 3 (mod 6)), giving P ∈ {1, 12, 35, 70,
// 117, 176, ...}. Notably P = 35 is one of the paper's experimental node
// counts: STS(15) gives cost 7.0 against 7.48 for GCR&M and 8 for the SBC
// fallback on 32 nodes. Diagonal cells are resolved at replication time like
// every symmetric scheme here.
type STS struct {
	r   int
	res *DiagResolver
}

// STSValidP reports whether a Bose STS distribution exists for exactly P
// nodes and returns its pattern size r (r ≡ 3 mod 6, P = r(r−1)/6).
func STSValidP(P int) (r int, ok bool) {
	for r := 3; r*(r-1)/6 <= P; r += 6 {
		if r*(r-1)/6 == P {
			return r, true
		}
	}
	return 0, false
}

// NewSTS builds the Steiner-triple-system distribution with pattern size r,
// which must satisfy r ≡ 3 (mod 6), r ≥ 3 (Bose construction).
func NewSTS(r int) *STS {
	if r < 3 || r%6 != 3 {
		panic(fmt.Sprintf("dist: Bose STS needs r ≡ 3 (mod 6), got %d", r))
	}
	m := r / 3 // odd by construction
	point := func(x, c int) int { return c*m + x }
	inv2 := (m + 1) / 2 // inverse of 2 modulo odd m

	pat := pattern.New(r, r)
	node := 0
	assign := func(a, b, c int) {
		for _, e := range [][2]int{{a, b}, {b, a}, {a, c}, {c, a}, {b, c}, {c, b}} {
			if prev := pat.At(e[0], e[1]); prev != pattern.Undefined {
				panic(fmt.Sprintf("dist: STS pair (%d,%d) covered twice (nodes %d and %d)",
					e[0], e[1], prev, node))
			}
			pat.Set(e[0], e[1], node)
		}
		node++
	}
	// Type 1 triples: {(x,0), (x,1), (x,2)}.
	for x := 0; x < m; x++ {
		assign(point(x, 0), point(x, 1), point(x, 2))
	}
	// Type 2 triples: {(x,c), (y,c), ((x+y)/2, c+1)} for x < y.
	for c := 0; c < 3; c++ {
		for x := 0; x < m; x++ {
			for y := x + 1; y < m; y++ {
				z := (x + y) * inv2 % m
				assign(point(x, c), point(y, c), point(z, (c+1)%3))
			}
		}
	}
	if want := r * (r - 1) / 6; node != want {
		panic(fmt.Sprintf("dist: STS built %d triples, want %d", node, want))
	}
	d := &STS{r: r}
	d.res = NewDiagResolver(d.Name(), pat)
	return d
}

// NewSTSForP builds the STS distribution for exactly P nodes, or reports
// that none exists.
func NewSTSForP(P int) (*STS, error) {
	r, ok := STSValidP(P)
	if !ok {
		return nil, fmt.Errorf("dist: no Bose STS distribution for P=%d (needs P = r(r-1)/6, r ≡ 3 mod 6)", P)
	}
	return NewSTS(r), nil
}

// Name implements Distribution.
func (d *STS) Name() string {
	return fmt.Sprintf("STS(%dx%d,P=%d)", d.r, d.r, d.r*(d.r-1)/6)
}

// Nodes implements Distribution.
func (d *STS) Nodes() int { return d.r * (d.r - 1) / 6 }

// Owner implements Distribution (symmetric; upper-triangle queries mirror).
func (d *STS) Owner(i, j int) int { return d.res.Owner(i, j) }

// Pattern implements PatternDistribution; diagonal cells are Undefined.
func (d *STS) Pattern() *pattern.Pattern { return d.res.Pattern() }

// PatternSize returns r.
func (d *STS) PatternSize() int { return d.r }

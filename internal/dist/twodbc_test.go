package dist

import (
	"testing"
)

func TestTwoDBCOwner(t *testing.T) {
	d := NewTwoDBC(2, 3)
	if d.Nodes() != 6 {
		t.Fatalf("Nodes = %d, want 6", d.Nodes())
	}
	cases := []struct{ i, j, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 2},
		{1, 0, 3}, {1, 1, 4}, {1, 2, 5},
		{2, 3, 0}, {3, 4, 4}, {5, 5, 5},
	}
	for _, c := range cases {
		if got := d.Owner(c.i, c.j); got != c.want {
			t.Errorf("Owner(%d,%d) = %d, want %d", c.i, c.j, got, c.want)
		}
	}
	// Owner must agree with cyclic replication of the exposed pattern.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if d.Owner(i, j) != d.Pattern().Owner(i, j) {
				t.Fatalf("Owner and Pattern.Owner disagree at (%d,%d)", i, j)
			}
		}
	}
}

func TestTwoDBCCost(t *testing.T) {
	// T = r + c for any 2DBC grid.
	for _, g := range [][2]int{{1, 1}, {2, 3}, {4, 4}, {23, 1}, {7, 3}} {
		d := NewTwoDBC(g[0], g[1])
		if got, want := CostLU(d), float64(g[0]+g[1]); got != want {
			t.Errorf("CostLU(2DBC %dx%d) = %v, want %v", g[0], g[1], got, want)
		}
		if err := d.Pattern().Validate(); err != nil {
			t.Errorf("2DBC %dx%d pattern invalid: %v", g[0], g[1], err)
		}
		if !d.Pattern().IsBalanced() {
			t.Errorf("2DBC %dx%d pattern not balanced", g[0], g[1])
		}
	}
}

func TestBest2DBC(t *testing.T) {
	cases := []struct{ p, r, c int }{
		{16, 4, 4},
		{20, 5, 4},
		{21, 7, 3},
		{22, 11, 2},
		{23, 23, 1},
		{30, 6, 5},
		{31, 31, 1},
		{35, 7, 5},
		{36, 6, 6},
		{39, 13, 3},
		{1, 1, 1},
		{2, 2, 1},
	}
	for _, c := range cases {
		d := Best2DBC(c.p)
		r, cc := d.Grid()
		if r != c.r || cc != c.c {
			t.Errorf("Best2DBC(%d) = %dx%d, want %dx%d", c.p, r, cc, c.r, c.c)
		}
	}
}

// TestBest2DBCTableIa checks the 2DBC column of the paper's Table Ia:
// the best grid and its cost T for each experimental P. For the degenerate
// P×1 grids the table prints P, but the strict metric is x̄+ȳ = P+1 (each
// row holds 1 node, the single column holds P); the communication formula
// Q ∝ (T−2) = P−1 confirms P+1 is the consistent value, so we assert it.
func TestBest2DBCTableIa(t *testing.T) {
	cases := []struct {
		p    int
		cost float64
	}{
		{16, 8}, {20, 9}, {21, 10}, {22, 13}, {23, 24},
		{30, 11}, {31, 32}, {35, 12}, {36, 12}, {39, 16},
	}
	for _, c := range cases {
		d := Best2DBC(c.p)
		if got := CostLU(d); got != c.cost {
			t.Errorf("Table Ia: cost of best 2DBC for P=%d = %v, want %v", c.p, got, c.cost)
		}
	}
}

func TestBest2DBCAtMost(t *testing.T) {
	// For P=23 the best grid at most 23 nodes is the square 4x4; the paper's
	// candidates were 23x1, 11x2, 7x3, 5x4, 4x4.
	d := Best2DBCAtMost(23)
	r, c := d.Grid()
	if r != 4 || c != 4 {
		t.Errorf("Best2DBCAtMost(23) = %dx%d, want 4x4", r, c)
	}
	// For a perfect square it uses all nodes.
	d = Best2DBCAtMost(36)
	r, c = d.Grid()
	if r != 6 || c != 6 {
		t.Errorf("Best2DBCAtMost(36) = %dx%d, want 6x6", r, c)
	}
}

func TestAll2DBCGrids(t *testing.T) {
	grids := All2DBCGrids(12)
	if len(grids) != 3 { // 12x1, 6x2, 4x3
		t.Fatalf("All2DBCGrids(12) returned %d grids, want 3", len(grids))
	}
	for _, g := range grids {
		r, c := g.Grid()
		if r*c != 12 || r < c {
			t.Errorf("unexpected grid %dx%d", r, c)
		}
	}
}

func TestTwoDBCPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTwoDBC(0, 3) },
		func() { Best2DBC(0) },
		func() { Best2DBCAtMost(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

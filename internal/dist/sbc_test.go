package dist

import (
	"math"
	"testing"
)

func TestSBCValidP(t *testing.T) {
	cases := []struct {
		p    int
		r    int
		kind SBCKind
		ok   bool
	}{
		{1, 2, SBCPairKind, true}, // 2*1/2
		{2, 2, SBCEvenKind, true}, // 2²/2
		{3, 3, SBCPairKind, true}, // 3*2/2
		{6, 4, SBCPairKind, true}, // 4*3/2
		{8, 4, SBCEvenKind, true}, // 4²/2
		{10, 5, SBCPairKind, true},
		{18, 6, SBCEvenKind, true},
		{21, 7, SBCPairKind, true},
		{28, 8, SBCPairKind, true},
		{32, 8, SBCEvenKind, true},
		{36, 9, SBCPairKind, true},
		{23, 0, 0, false},
		{31, 0, 0, false},
		{35, 0, 0, false},
		{39, 0, 0, false},
	}
	for _, c := range cases {
		r, kind, ok := SBCValidP(c.p)
		if ok != c.ok {
			t.Errorf("SBCValidP(%d) ok = %v, want %v", c.p, ok, c.ok)
			continue
		}
		if ok && (r != c.r || kind != c.kind) {
			t.Errorf("SBCValidP(%d) = (%d, %v), want (%d, %v)", c.p, r, kind, c.r, c.kind)
		}
	}
}

// TestSBCPairStructure checks the pair construction: node {i,j} owns exactly
// the two symmetric cells, every colrow holds r-1 distinct nodes, and the
// Cholesky cost is r-1 (the paper's Table Ib value, e.g. T=6 for P=21).
func TestSBCPairStructure(t *testing.T) {
	for r := 2; r <= 12; r++ {
		d := NewSBCPair(r)
		P := r * (r - 1) / 2
		if d.Nodes() != P {
			t.Fatalf("r=%d: Nodes = %d, want %d", r, d.Nodes(), P)
		}
		p := d.Pattern()
		if err := p.Validate(); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		counts := p.Counts()
		for n, cnt := range counts {
			if cnt != 2 {
				t.Fatalf("r=%d: node %d owns %d cells, want 2", r, n, cnt)
			}
		}
		if got, want := p.CostCholesky(), float64(r-1); math.Abs(got-want) > 1e-12 {
			t.Fatalf("r=%d: CostCholesky = %v, want %v", r, got, want)
		}
		// Cost law: z̄ = r-1 ≈ √(2P) - 0.5.
		if law := math.Sqrt(2*float64(P)) - 0.5; math.Abs(p.CostCholesky()-law) > 0.51 {
			t.Fatalf("r=%d: cost %v too far from √(2P)-0.5 = %v", r, p.CostCholesky(), law)
		}
	}
}

// TestSBCEvenStructure checks the split-pair construction for P = r²/2:
// every colrow holds r distinct nodes (cost law √(2P) exactly).
func TestSBCEvenStructure(t *testing.T) {
	for r := 2; r <= 12; r += 2 {
		d := NewSBCEven(r)
		P := r * r / 2
		if d.Nodes() != P {
			t.Fatalf("r=%d: Nodes = %d, want %d", r, d.Nodes(), P)
		}
		p := d.Pattern()
		if err := p.Validate(); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		// r split nodes own 1 cell; the rest own 2.
		ones, twos := 0, 0
		for _, cnt := range p.Counts() {
			switch cnt {
			case 1:
				ones++
			case 2:
				twos++
			default:
				t.Fatalf("r=%d: node owns %d cells", r, cnt)
			}
		}
		if ones != r || twos != P-r {
			t.Fatalf("r=%d: %d single-cell and %d double-cell nodes, want %d and %d",
				r, ones, twos, r, P-r)
		}
		if got, want := p.CostCholesky(), float64(r); math.Abs(got-want) > 1e-12 {
			t.Fatalf("r=%d: CostCholesky = %v, want %v (= √(2P))", r, got, want)
		}
	}
}

// TestSBCTableIb checks the SBC rows of the paper's Table Ib.
func TestSBCTableIb(t *testing.T) {
	cases := []struct {
		p    int
		dims string
		cost float64
	}{
		{21, "7x7", 6},
		{28, "8x8", 7},
		{32, "8x8", 8},
		{36, "9x9", 8},
	}
	for _, c := range cases {
		d, err := NewSBC(c.p)
		if err != nil {
			t.Fatalf("P=%d: %v", c.p, err)
		}
		if got := d.Pattern().Dims(); got != c.dims {
			t.Errorf("P=%d: dims %s, want %s", c.p, got, c.dims)
		}
		if got := CostCholesky(d); math.Abs(got-c.cost) > 1e-12 {
			t.Errorf("P=%d: cost %v, want %v", c.p, got, c.cost)
		}
	}
}

// TestBestSBCAtMost reproduces the experimental fallback choices: for the
// paper's four test cases the SBC baseline uses 21, 28, 32 and 36 nodes.
func TestBestSBCAtMost(t *testing.T) {
	cases := []struct{ p, want int }{
		{23, 21}, {31, 28}, {35, 32}, {39, 36},
		{21, 21}, {1, 1}, {2, 2},
	}
	for _, c := range cases {
		d := BestSBCAtMost(c.p)
		if d.Nodes() != c.want {
			t.Errorf("BestSBCAtMost(%d) uses %d nodes, want %d", c.p, d.Nodes(), c.want)
		}
	}
}

// TestSBCOwnerSymmetric checks mirroring and that every tile's owner lies on
// the tile's pattern colrow (the property that keeps diagonal assignment
// communication-free).
func TestSBCOwnerSymmetric(t *testing.T) {
	d := NewSBCPair(5)
	r := d.PatternSize()
	for i := 0; i < 3*r; i++ {
		for j := 0; j <= i; j++ {
			o := d.Owner(i, j)
			if o < 0 || o >= d.Nodes() {
				t.Fatalf("Owner(%d,%d) = %d out of range", i, j, o)
			}
			if d.Owner(j, i) != o {
				t.Fatalf("Owner not symmetric at (%d,%d)", i, j)
			}
			// The owner must appear on pattern colrow (i mod r) and (j mod r).
			for _, cr := range []int{i % r, j % r} {
				found := false
				for k := 0; k < r; k++ {
					if d.Pattern().At(cr, k) == o || d.Pattern().At(k, cr) == o {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("Owner(%d,%d) = %d not on colrow %d", i, j, o, cr)
				}
			}
		}
	}
}

func TestNewSBCError(t *testing.T) {
	if _, err := NewSBC(23); err == nil {
		t.Error("NewSBC(23): want error")
	}
}

func TestSBCPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSBCPair(1) },
		func() { NewSBCEven(3) },
		func() { NewSBCEven(0) },
		func() { BestSBCAtMost(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Package dist implements the data-distribution schemes studied in the paper:
// the classical 2D Block-Cyclic distribution (2DBC), the paper's Generalized
// 2DBC (G-2DBC, Section IV), the Symmetric Block Cyclic distribution (SBC,
// from Beaumont et al., SC 2022, used as the symmetric baseline), and the
// replication-time diagonal-cell resolver shared by SBC and GCR&M patterns.
//
// A Distribution maps matrix tiles to node identifiers; the task-based
// runtime and the performance simulator consume this interface and nothing
// else, exactly as Chameleon consumes a tile→node map.
package dist

import (
	"fmt"

	"anybc/internal/pattern"
)

// Distribution assigns every tile of a tiled matrix to one of P nodes,
// numbered 0..P-1. Implementations must be deterministic: Owner must always
// return the same node for the same tile.
type Distribution interface {
	// Name identifies the scheme and its parameters, e.g. "2DBC(5x4)".
	Name() string
	// Nodes returns P, the number of nodes the distribution uses.
	Nodes() int
	// Owner returns the node owning tile (i, j), with 0-based tile indices.
	Owner(i, j int) int
}

// PatternDistribution is implemented by distributions that are defined by
// cyclic replication of an explicit pattern; it exposes the pattern so that
// cost metrics can be computed.
type PatternDistribution interface {
	Distribution
	Pattern() *pattern.Pattern
}

// Cyclic is a Distribution defined by cyclic replication of a fully defined
// pattern. Patterns with undefined diagonal cells must be wrapped in a
// DiagResolver instead.
type Cyclic struct {
	name string
	p    *pattern.Pattern
	n    int
}

// NewCyclic wraps a fully defined pattern as a Distribution. It returns an
// error if the pattern has undefined cells or fails validation.
func NewCyclic(name string, p *pattern.Pattern) (*Cyclic, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dist: %s: %w", name, err)
	}
	if p.UndefinedCells() > 0 {
		return nil, fmt.Errorf("dist: %s: pattern has undefined cells; use NewDiagResolver", name)
	}
	return &Cyclic{name: name, p: p, n: p.NumNodes()}, nil
}

// Name implements Distribution.
func (c *Cyclic) Name() string { return c.name }

// Nodes implements Distribution.
func (c *Cyclic) Nodes() int { return c.n }

// Owner implements Distribution.
func (c *Cyclic) Owner(i, j int) int { return c.p.Owner(i, j) }

// Pattern implements PatternDistribution.
func (c *Cyclic) Pattern() *pattern.Pattern { return c.p }

// PatternOf returns d's underlying pattern when d is defined by cyclic
// pattern replication, comma-ok style. Library code should use this (or the
// TryCost accessors below) rather than the panicking wrappers: a
// Distribution is just a tile→node map and nothing obliges it to expose a
// pattern.
func PatternOf(d Distribution) (*pattern.Pattern, bool) {
	pd, ok := d.(PatternDistribution)
	if !ok {
		return nil, false
	}
	return pd.Pattern(), true
}

// TryCostLU returns the LU communication cost metric of d's pattern, with
// ok == false when d exposes no pattern to compute it from.
func TryCostLU(d Distribution) (float64, bool) {
	p, ok := PatternOf(d)
	if !ok {
		return 0, false
	}
	return p.CostLU(), true
}

// TryCostCholesky returns the Cholesky (colrow) communication cost metric of
// d's pattern, with ok == false when d exposes no pattern.
func TryCostCholesky(d Distribution) (float64, bool) {
	p, ok := PatternOf(d)
	if !ok {
		return 0, false
	}
	return p.CostCholesky(), true
}

// CostLU returns the LU communication cost metric of d's pattern. It panics
// when d exposes no pattern and exists for CLI and test paths that validated
// the distribution first; everything else should call TryCostLU.
func CostLU(d Distribution) float64 {
	T, ok := TryCostLU(d)
	if !ok {
		panic(fmt.Sprintf("dist: %s does not expose a pattern", d.Name()))
	}
	return T
}

// CostCholesky returns the Cholesky (colrow) communication cost metric of
// d's pattern. It panics when d exposes no pattern and exists for CLI and
// test paths that validated the distribution first; everything else should
// call TryCostCholesky.
func CostCholesky(d Distribution) float64 {
	T, ok := TryCostCholesky(d)
	if !ok {
		panic(fmt.Sprintf("dist: %s does not expose a pattern", d.Name()))
	}
	return T
}

package dist

import (
	"fmt"
	"math"

	"anybc/internal/pattern"
)

// G2DBC is the paper's Generalized 2D Block-Cyclic distribution (Section IV).
// For any node count P it builds a perfectly balanced pattern of size
// b(b-1) × P in which every row holds exactly a = ⌈√P⌉ distinct nodes, where
// b = ⌈P/a⌉. Its communication cost is bounded by 2√P + 2/√P (Lemma 2),
// essentially matching the square 2DBC cost of 2√P that is only achievable
// when P is a perfect square.
//
// When c = ab − P = 0 (P = p² or P = p(p+1)) the construction degenerates to
// the standard b×a 2DBC pattern, as noted in the paper.
type G2DBC struct {
	p       int
	a, b, c int
	pat     *pattern.Pattern
}

// NewG2DBC builds the G-2DBC distribution for P nodes.
func NewG2DBC(P int) *G2DBC {
	if P <= 0 {
		panic(fmt.Sprintf("dist: invalid node count %d", P))
	}
	a := int(math.Ceil(math.Sqrt(float64(P))))
	// Guard against floating-point error on perfect squares.
	for a*a >= P && (a-1)*(a-1) >= P {
		a--
	}
	for a*a < P {
		a++
	}
	b := (P + a - 1) / a
	c := a*b - P

	// Incomplete pattern IP: b×a, elements 0..P-1 row-major, the last c cells
	// of the last row undefined.
	ip := pattern.New(b, a)
	for n := 0; n < P; n++ {
		ip.Set(n/a, n%a, n)
	}

	var pat *pattern.Pattern
	if c == 0 {
		// Degenerate case: IP is complete and is itself the (2DBC) pattern.
		pat = ip
	} else {
		// P_i (1 ≤ i ≤ b-1): copy of IP whose undefined cells (b-1, j) for
		// j ≥ a-c are filled with the cell of row i in the same column.
		// LP: the first a-c columns of IP.
		// Full pattern: b-1 vertical strips; strip i is b rows of
		// [P_i | P_i | ... (b-1 copies) | LP], totalling (b-1)a + (a-c) = P
		// columns.
		pat = pattern.New(b*(b-1), P)
		for i := 1; i <= b-1; i++ {
			top := (i - 1) * b
			for row := 0; row < b; row++ {
				col := 0
				for copyIdx := 0; copyIdx < b-1; copyIdx++ {
					for j := 0; j < a; j++ {
						v := ip.At(row, j)
						if v == pattern.Undefined {
							v = ip.At(i-1, j)
						}
						pat.Set(top+row, col, v)
						col++
					}
				}
				for j := 0; j < a-c; j++ {
					pat.Set(top+row, col, ip.At(row, j))
					col++
				}
			}
		}
	}
	return &G2DBC{p: P, a: a, b: b, c: c, pat: pat}
}

// Name implements Distribution.
func (d *G2DBC) Name() string { return fmt.Sprintf("G-2DBC(P=%d)", d.p) }

// Nodes implements Distribution.
func (d *G2DBC) Nodes() int { return d.p }

// Owner implements Distribution.
func (d *G2DBC) Owner(i, j int) int { return d.pat.Owner(i, j) }

// Pattern implements PatternDistribution.
func (d *G2DBC) Pattern() *pattern.Pattern { return d.pat }

// Params returns the construction parameters (a, b, c) of Section IV-A:
// a = ⌈√P⌉, b = ⌈P/a⌉, c = ab − P.
func (d *G2DBC) Params() (a, b, c int) { return d.a, d.b, d.c }

// CostBound returns the Lemma 2 upper bound 2√P + 2/√P on the LU
// communication cost of the G-2DBC pattern for P nodes.
func CostBound(P int) float64 {
	s := math.Sqrt(float64(P))
	return 2*s + 2/s
}

package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestHTTPSession walks the README's curl session end to end against the real
// handler: submit, poll, fetch the result, exercise every error status, and
// read both stats formats.
func TestHTTPSession(t *testing.T) {
	srv := newTestServer(t, Config{P: 4, B: 4, MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		return resp, m
	}

	// Malformed JSON → 400; a spec the service can never run → 422.
	if resp, _ := post("{"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON returned %d", resp.StatusCode)
	}
	if resp, m := post(`{"kind":"lu","mt":-1}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad spec returned %d (%v)", resp.StatusCode, m)
	} else if !strings.Contains(m["error"].(string), "positive tile dimension") {
		t.Fatalf("bad-spec error not descriptive: %v", m["error"])
	}

	// A valid submission is accepted with its id.
	resp, m := post(`{"kind":"lu","mt":4,"seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d (%v)", resp.StatusCode, m)
	}
	id := int(m["id"].(float64))

	// Poll status until done.
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + strconv.Itoa(id))
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State == StateDone {
			break
		}
		if st.State == StateFailed || st.State == StateCanceled {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The result endpoint reports the factors' norm and the run's traffic.
	resp2, err := http.Get(ts.URL + "/jobs/" + strconv.Itoa(id) + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var rb resultBody
	json.NewDecoder(resp2.Body).Decode(&rb)
	resp2.Body.Close()
	if rb.Kind != KindLU || rb.FrobeniusNorm <= 0 || rb.Messages <= 0 {
		t.Fatalf("result body %+v", rb)
	}

	// Unknown ids are 404 on every per-job route.
	for _, route := range []string{"/jobs/999", "/jobs/999/result", "/jobs/notanumber"} {
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s returned %d", route, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/999", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("DELETE unknown job returned %d", resp.StatusCode)
		}
	}

	// The job index lists our job; stats come as JSON and as the text summary.
	resp3, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if !strings.Contains(string(idx), "1") {
		t.Fatalf("job index missing job 1: %s", idx)
	}
	resp4, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ServiceStats
	json.NewDecoder(resp4.Body).Decode(&st)
	resp4.Body.Close()
	if st.Completed != 1 || st.P != 4 {
		t.Fatalf("stats %+v", st)
	}
	resp5, err := http.Get(ts.URL + "/stats?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp5.Body)
	resp5.Body.Close()
	if !strings.HasPrefix(string(text), "factserve:") || !strings.Contains(string(text), "1 done") {
		t.Fatalf("text summary:\n%s", text)
	}
}

// TestHTTPQueueFull maps queue-full backpressure to 429 over the wire.
func TestHTTPQueueFull(t *testing.T) {
	srv := newTestServer(t, Config{P: 4, B: 4, MaxConcurrent: 1, QueueCap: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Fill the slot and the queue in-process (microseconds apart, so the
	// runner cannot drain them first), then watch the backpressure surface
	// over the wire.
	if _, err := srv.Submit(JobSpec{Kind: KindLU, Mt: 32}); err != nil { // runs
		t.Fatal(err)
	}
	if _, err := srv.Submit(JobSpec{Kind: KindLU, Mt: 32}); err != nil { // queues
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		bytes.NewBufferString(`{"kind":"lu","mt":12}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit returned %d, want 429", resp.StatusCode)
	}
}

package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"anybc/internal/dist"
	"anybc/internal/matrix"
	"anybc/internal/runtime"
	"anybc/internal/sched"
)

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func waitDone(t testing.TB, srv *Server, id JobID) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Wait(ctx, id); err != nil {
		t.Fatalf("job %d: %v", id, err)
	}
}

// drainPool fails the test if the shared send-buffer pool does not return to
// balance — the cross-job leakage witness at the memory level. Absorbers
// drain late messages asynchronously, so poll.
func drainPool(t testing.TB, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Cluster().PoolOutstanding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("shared pool still holds %d tiles", srv.Cluster().PoolOutstanding())
		}
		time.Sleep(time.Millisecond)
	}
}

// soloLU runs the same job on a dedicated cluster — the golden reference a
// multi-tenant run must match bit for bit.
func soloLU(t testing.TB, mt, b, P int, seed int64, workers int) *matrix.Dense {
	t.Helper()
	want, _, err := runtime.FactorLU(mt, b, dist.NewG2DBC(P),
		runtime.GenDiagDominant(mt, b, seed), runtime.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func requireDenseIdentical(t testing.TB, got, want *matrix.Dense, mt int, label string) {
	t.Helper()
	for i := 0; i < mt; i++ {
		for j := 0; j < mt; j++ {
			if !got.Tile(i, j).EqualApprox(want.Tile(i, j), 0) {
				t.Fatalf("%s: tile (%d,%d) not bit-identical to the solo run", label, i, j)
			}
		}
	}
}

// TestConcurrentLUBitIdentical is the headline acceptance case: 8 concurrent
// 4×4-tile LU jobs multiplexed over one shared 4-node cluster (run under
// -race in CI) must each produce factors bit-identical to a solo
// runtime.FactorLU of the same seed, with per-namespace tile accounting
// showing no cross-job leakage.
func TestConcurrentLUBitIdentical(t *testing.T) {
	const mt, b, P, jobs = 4, 4, 4, 8
	srv := newTestServer(t, Config{P: P, B: b, MaxConcurrent: jobs, Workers: 2})

	ids := make([]JobID, jobs)
	for i := range ids {
		id, err := srv.Submit(JobSpec{Kind: KindLU, Mt: mt, Seed: int64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		waitDone(t, srv, id)
	}

	soloRep := make(map[int64]*runtime.Report)
	for i, id := range ids {
		seed := int64(100 + i)
		res, rep, err := srv.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		want, wantRep, err := runtime.FactorLU(mt, b, dist.NewG2DBC(P),
			runtime.GenDiagDominant(mt, b, seed), runtime.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		soloRep[seed] = wantRep
		requireDenseIdentical(t, res.Dense, want, mt, fmt.Sprintf("job %d", id))

		// Namespace isolation in the accounting: the job owns exactly the
		// tiles a dedicated cluster would own, its logical traffic matches
		// the solo run, and its working-set peak never exceeds its own
		// footprint — a leaked co-tenant tile would inflate all three.
		for n := range rep.OwnedTilesPerNode {
			if rep.OwnedTilesPerNode[n] != wantRep.OwnedTilesPerNode[n] {
				t.Errorf("job %d node %d owns %d tiles, solo owns %d",
					id, n, rep.OwnedTilesPerNode[n], wantRep.OwnedTilesPerNode[n])
			}
			foot := rep.OwnedTilesPerNode[n] + rep.ReceivedTilesPerNode[n]
			if rep.PeakTilesPerNode[n] > foot {
				t.Errorf("job %d node %d peak %d above its own footprint %d",
					id, n, rep.PeakTilesPerNode[n], foot)
			}
		}
		if got, want := rep.Stats.TotalMessages(), wantRep.Stats.TotalMessages(); got != want {
			t.Errorf("job %d logged %d messages, solo run %d", id, got, want)
		}
	}
	drainPool(t, srv)

	st := srv.Stats()
	if st.Completed != jobs || st.Failed != 0 || st.Rejected != 0 {
		t.Errorf("stats: %+v", st)
	}
	// One distribution and one graph construction serve all 8 jobs.
	if st.CacheMisses != 2 || st.CacheHits < 2*(jobs-1) {
		t.Errorf("pattern cache: %d hits, %d misses", st.CacheHits, st.CacheMisses)
	}
	if !strings.Contains(srv.Summary(), "8 done") {
		t.Errorf("summary missing completions:\n%s", srv.Summary())
	}
}

// TestMixedKindsSoak is the race soak: concurrent LU and Cholesky tenants of
// different seeds and priorities over one substrate, every result verified
// numerically and the LU results bit-identical to solo runs.
func TestMixedKindsSoak(t *testing.T) {
	const mt, b, P, each = 6, 4, 5, 4
	srv := newTestServer(t, Config{P: P, B: b, MaxConcurrent: 2 * each, Workers: 2})

	var luIDs, chIDs []JobID
	for i := 0; i < each; i++ {
		lu, err := srv.Submit(JobSpec{Kind: KindLU, Mt: mt, Seed: int64(i), Priority: i - 2})
		if err != nil {
			t.Fatal(err)
		}
		ch, err := srv.Submit(JobSpec{Kind: KindCholesky, Mt: mt, Seed: int64(i), Priority: 2 - i})
		if err != nil {
			t.Fatal(err)
		}
		luIDs, chIDs = append(luIDs, lu), append(chIDs, ch)
	}
	for _, id := range append(append([]JobID(nil), luIDs...), chIDs...) {
		waitDone(t, srv, id)
	}

	for i, id := range luIDs {
		res, _, err := srv.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		orig := matrix.NewDiagDominant(mt, b, int64(i))
		if r := matrix.ResidualLU(orig, res.Dense); r > 1e-10 {
			t.Errorf("LU job %d residual %g", id, r)
		}
		requireDenseIdentical(t, res.Dense, soloLU(t, mt, b, P, int64(i), 2), mt,
			fmt.Sprintf("LU job %d", id))
	}
	for i, id := range chIDs {
		res, _, err := srv.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		orig := matrix.NewSPD(mt, b, int64(i))
		if r := matrix.ResidualCholesky(orig, res.Chol); r > 1e-10 {
			t.Errorf("Cholesky job %d residual %g", id, r)
		}
	}
	drainPool(t, srv)
}

// TestRejectedAndCanceledLeaveOthersUnchanged is the isolation acceptance
// case: one submission rejected for exceeding the memory budget and one job
// cancelled mid-queue must leave every other tenant's factors bit-identical
// to solo runs, with the shared pool balanced afterwards.
func TestRejectedAndCanceledLeaveOthersUnchanged(t *testing.T) {
	const mt, b, P = 10, 4, 4
	srv := newTestServer(t, Config{
		P: P, B: b, MaxConcurrent: 2, Workers: 2,
		MemBudgetBytes: 4 * jobBytes(mt, b),
	})

	// A and B fill both slots.
	a, err := srv.Submit(JobSpec{Kind: KindLU, Mt: mt, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bID, err := srv.Submit(JobSpec{Kind: KindLU, Mt: mt, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Over the whole budget: rejected at submission, descriptively.
	if _, err := srv.Submit(JobSpec{Kind: KindLU, Mt: 24, Seed: 3}); err == nil {
		t.Fatal("oversized job was admitted")
	} else if !errors.Is(err, ErrRejected) || !strings.Contains(err.Error(), "budget exceeded") {
		t.Fatalf("oversized job rejection = %v", err)
	}
	// C waits in the queue behind the full slots; cancel it there.
	c, err := srv.Submit(JobSpec{Kind: KindLU, Mt: mt, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, err := srv.Submit(JobSpec{Kind: KindLU, Mt: mt, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Cancel(c); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if st, _ := srv.Status(c); st.State != StateCanceled && st.State != StateRunning {
		t.Fatalf("cancelled job state %s", st.State)
	}

	for _, id := range []JobID{a, bID, d} {
		waitDone(t, srv, id)
	}
	ctx, cancelWait := context.WithTimeout(context.Background(), time.Minute)
	defer cancelWait()
	if err := srv.Wait(ctx, c); err == nil {
		t.Fatal("cancelled job reported success")
	}

	for _, jb := range []struct {
		id   JobID
		seed int64
	}{{a, 1}, {bID, 2}, {d, 5}} {
		res, _, err := srv.Result(jb.id)
		if err != nil {
			t.Fatal(err)
		}
		requireDenseIdentical(t, res.Dense, soloLU(t, mt, b, P, jb.seed, 2), mt,
			fmt.Sprintf("job %d beside a rejection and a cancellation", jb.id))
	}
	drainPool(t, srv)
	st := srv.Stats()
	if st.Rejected != 1 || st.Canceled != 1 || st.Completed != 3 {
		t.Errorf("stats after mixed outcomes: %+v", st)
	}
}

// TestQueueBackpressure: a full admission queue rejects with a descriptive
// error instead of blocking or dropping silently.
func TestQueueBackpressure(t *testing.T) {
	const mt, b, P = 12, 4, 4
	srv := newTestServer(t, Config{P: P, B: b, MaxConcurrent: 1, QueueCap: 2})

	ids := make([]JobID, 0, 3)
	for i := 0; i < 3; i++ { // one runs, two queue
		id, err := srv.Submit(JobSpec{Kind: KindLU, Mt: mt, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	_, err := srv.Submit(JobSpec{Kind: KindLU, Mt: mt, Seed: 9})
	if err == nil {
		t.Fatal("fourth job was admitted past the queue cap")
	}
	if !errors.Is(err, ErrRejected) || !strings.Contains(err.Error(), "admission queue full") {
		t.Fatalf("queue-full rejection = %v", err)
	}
	for _, id := range ids {
		waitDone(t, srv, id)
	}
	if _, err := srv.Submit(JobSpec{Kind: KindLU, Mt: 2, Seed: 10}); err != nil {
		t.Fatalf("queue drained but submission still rejected: %v", err)
	}
}

// TestSubmitValidation pins the descriptive rejection surface FuzzSubmit
// explores randomly: every malformed spec is an ErrRejected naming its
// defect, never a panic or a wedge.
func TestSubmitValidation(t *testing.T) {
	srv := newTestServer(t, Config{P: 4, B: 4, MaxMt: 16, MemBudgetBytes: 1 << 24})
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"missing kind", JobSpec{Mt: 4}, "missing kind"},
		{"unknown kind", JobSpec{Kind: "qr", Mt: 4}, "unknown kind"},
		{"mt zero", JobSpec{Kind: KindLU, Mt: 0}, "positive tile dimension"},
		{"mt negative", JobSpec{Kind: KindLU, Mt: -3}, "positive tile dimension"},
		{"mt over cap", JobSpec{Kind: KindLU, Mt: 17}, "exceeds the service cap"},
		{"b mismatch", JobSpec{Kind: KindLU, Mt: 4, B: 8}, "mismatches the service tile size"},
		{"oversized P", JobSpec{Kind: KindLU, Mt: 4, P: 4096}, "mismatches the shared cluster"},
		{"undersized P", JobSpec{Kind: KindLU, Mt: 4, P: 2}, "mismatches the shared cluster"},
		{"unknown scheme", JobSpec{Kind: KindLU, Mt: 4, Scheme: "hilbert"}, "unknown scheme"},
		{"sbc bad P", JobSpec{Kind: KindCholesky, Mt: 4, Scheme: "sbc"}, "unusable for P=4"},
		{"workers negative", JobSpec{Kind: KindLU, Mt: 4, Workers: -1}, "workers"},
		{"workers huge", JobSpec{Kind: KindLU, Mt: 4, Workers: 999}, "workers"},
		{"crash junk", JobSpec{Kind: KindLU, Mt: 4, Crash: "junk"}, "crash spec"},
		{"crash bad rank", JobSpec{Kind: KindLU, Mt: 4, Crash: "9@1"}, "rank outside"},
		{"crash negative task", JobSpec{Kind: KindLU, Mt: 4, Crash: "1@-2"}, "negative task"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := srv.Submit(tc.spec)
			if err == nil {
				t.Fatalf("spec %+v was admitted", tc.spec)
			}
			if !errors.Is(err, ErrRejected) {
				t.Fatalf("rejection does not wrap ErrRejected: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("rejection %q does not name %q", err, tc.want)
			}
		})
	}
	if st := srv.Stats(); st.Rejected != int64(len(cases)) {
		t.Errorf("rejected counter %d, want %d", st.Rejected, len(cases))
	}
}

// TestChaosTenantCrash: a tenant whose node crashes mid-run recovers through
// elastic adoption — bit-identical to a crash-free solo run — while
// co-tenants never notice; without Elastic the crash fails only that job.
func TestChaosTenantCrash(t *testing.T) {
	const mt, b, P = 6, 4, 4
	srv := newTestServer(t, Config{P: P, B: b, MaxConcurrent: 4, Workers: 2})

	chaotic, err := srv.Submit(JobSpec{Kind: KindLU, Mt: mt, Seed: 7, Elastic: true, Crash: "1@2", ChaosSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := srv.Submit(JobSpec{Kind: KindLU, Mt: mt, Seed: 8, Crash: "2@1"})
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := srv.Submit(JobSpec{Kind: KindCholesky, Mt: mt, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	waitDone(t, srv, chaotic)
	waitDone(t, srv, quiet)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Wait(ctx, doomed); err == nil {
		t.Fatal("non-elastic crashed job reported success")
	} else if ctx.Err() != nil {
		t.Fatal("non-elastic crashed job wedged")
	}
	if st, _ := srv.Status(doomed); st.State != StateFailed {
		t.Fatalf("crashed job state %s", st.State)
	}

	res, _, err := srv.Result(chaotic)
	if err != nil {
		t.Fatal(err)
	}
	requireDenseIdentical(t, res.Dense, soloLU(t, mt, b, P, 7, 2), mt, "elastic chaotic job")
	resQ, _, err := srv.Result(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.ResidualCholesky(matrix.NewSPD(mt, b, 9), resQ.Chol); r > 1e-10 {
		t.Errorf("co-tenant residual %g beside a crash", r)
	}
	drainPool(t, srv)
}

// TestPriorityOrdering pins the admission queue's comparator and the
// priority→scheduler-band mapping.
func TestPriorityOrdering(t *testing.T) {
	var q jobQueue
	for i, pri := range []int{0, 5, -3, 5} {
		heap.Push(&q, &job{id: JobID(i + 1), spec: JobSpec{Priority: pri}, seq: int64(i)})
	}
	var order []JobID
	for q.Len() > 0 {
		order = append(order, heap.Pop(&q).(*job).id)
	}
	want := []JobID{2, 4, 1, 3} // priority desc, FIFO within a priority
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}

	for _, tc := range []struct{ pri, band int }{
		{7, 0}, {0, 0}, {-1, 1}, {-5, 5}, {-1000, sched.MaxBand},
	} {
		if got := band(tc.pri); got != tc.band {
			t.Errorf("band(%d) = %d, want %d", tc.pri, got, tc.band)
		}
	}
}

// BenchmarkServeLU44x8 measures the acceptance workload: 8 concurrent
// 4×4-tile LU tenants over one shared 4-node cluster, per iteration.
func BenchmarkServeLU44x8(b *testing.B) {
	srv, err := New(Config{P: 4, B: 8, MaxConcurrent: 8, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := make([]JobID, 8)
		for j := range ids {
			id, err := srv.Submit(JobSpec{Kind: KindLU, Mt: 4, Seed: int64(j)})
			if err != nil {
				b.Fatal(err)
			}
			ids[j] = id
		}
		for _, id := range ids {
			if err := srv.Wait(context.Background(), id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Package serve is the multi-tenant factorization service: the long-lived
// promotion of the one-shot runtime.Run library the ROADMAP's
// "millions of users" north star calls for. A Server owns one shared
// cluster.Cluster and runs many factorization DAGs over it concurrently —
// each job on its own tile-namespace plane (a job-ID epoch in every
// cluster.Tag), so tenants can never read each other's tiles, a cancelled or
// crashed job poisons only its own namespace, and every per-job
// runtime.Report carries exactly the accounting a dedicated cluster would
// have produced.
//
// Jobs flow through an admission controller in the hybrid static/dynamic
// spirit of Donfack, Grigori, Gropp and Kale: placement inside one job stays
// static (owner-computes over the cached distribution, for locality), while
// the service schedules dynamically across jobs — a bounded priority queue
// with a concurrent-jobs slot budget and a memory budget, backfilled in
// priority order. Submissions the service could never run (malformed specs,
// shapes over the budget) or cannot queue (queue full) are rejected
// descriptively and immediately: backpressure is an error the client sees,
// never a silent wedge.
//
// Repeated shapes skip their precomputation through a PatternCache keyed on
// (scheme, P, mt) — the cmd/patterndb idea promoted into the serving path.
package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"anybc/internal/chaos"
	"anybc/internal/cluster"
	"anybc/internal/matrix"
	"anybc/internal/runtime"
	"anybc/internal/sched"
	"anybc/internal/tile"
)

// Job kinds.
const (
	KindLU       = "lu"
	KindCholesky = "cholesky"
)

// ErrRejected marks a submission the admission controller turned away —
// malformed spec, a shape the service can never run, or a full queue. The
// wrapping error says which; errors.Is(err, ErrRejected) identifies the
// class.
var ErrRejected = errors.New("job rejected")

// ErrNotFound is returned for operations on an unknown job id.
var ErrNotFound = errors.New("no such job")

// JobID identifies one submitted job. It doubles as the job's tile-namespace
// epoch on the shared cluster (cluster.Tag.Job), so ids start at 1 — epoch 0
// is the single-job default plane, never used by the service.
type JobID int32

// JobState is the lifecycle of a job.
type JobState string

// Job lifecycle states. Rejected submissions never become jobs, so there is
// no rejected state — rejection is an error returned by Submit.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// JobSpec describes one factorization job.
type JobSpec struct {
	// Kind is the factorization: "lu" or "cholesky".
	Kind string `json:"kind"`
	// Scheme is the distribution scheme ("2dbc", "g2dbc", "sbc", "gcrm",
	// "sts"); empty defaults to g2dbc, the paper's any-P recommendation for
	// LU. Schemes that cannot serve the service's node count reject at
	// submission.
	Scheme string `json:"scheme,omitempty"`
	// Mt is the tile dimension of the mt×mt matrix. Must be positive and at
	// most the service's MaxMt.
	Mt int `json:"mt"`
	// B is the tile side. Zero means the service's configured tile size;
	// any other value must match it exactly (the shared send-buffer pool
	// and the memory budget are calibrated to one tile shape).
	B int `json:"b,omitempty"`
	// P is the node count the client expects. Zero means the service's
	// cluster size; any other value must match it exactly — jobs always
	// span the whole shared cluster.
	P int `json:"p,omitempty"`
	// Seed seeds the deterministic test-matrix generator, so a job's result
	// is reproducible (and bit-identical to a solo runtime run of the same
	// seed).
	Seed int64 `json:"seed,omitempty"`
	// Priority orders admission: higher priorities start first. Negative
	// priorities additionally demote the job's task keys into a background
	// scheduler band (sched.Band), so background work orders after
	// foreground work wherever their tasks meet one queue.
	Priority int `json:"priority,omitempty"`
	// Workers is the per-node worker count; zero means the service default.
	Workers int `json:"workers,omitempty"`
	// Elastic arms ownership migration for this job: a node that crashes
	// mid-run migrates its tasks to a survivor instead of failing the job.
	Elastic bool `json:"elastic,omitempty"`
	// Crash injects a deterministic node crash, as "rank@task" (the 0-based
	// owned-task index before which the rank dies) — the chaos seam of the
	// concurrency test harness. With Elastic the job still completes; without
	// it the job fails, and either way no other tenant is disturbed.
	Crash string `json:"crash,omitempty"`
	// ChaosSeed seeds the crash plan's event log (only meaningful with
	// Crash).
	ChaosSeed int64 `json:"chaosSeed,omitempty"`
}

// Result is a finished job's output: exactly one of Dense (LU) or Chol
// (Cholesky) is set.
type Result struct {
	Dense *matrix.Dense
	Chol  *matrix.SymmetricLower
}

// Status is a point-in-time snapshot of one job.
type Status struct {
	ID    JobID    `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`
	Error string   `json:"error,omitempty"`
	// QueueWaitSeconds is the time the job spent queued before starting
	// (final once running).
	QueueWaitSeconds float64 `json:"queueWaitSeconds"`
	// RunSeconds is the wall-clock of the run so far (final once terminal).
	RunSeconds float64 `json:"runSeconds"`
	// PeakTilesPerNode is the per-namespace working-set high-water mark of
	// the finished run — the leakage witness: a tenant's peak reflects only
	// its own tiles, whatever its neighbours did.
	PeakTilesPerNode []int `json:"peakTilesPerNode,omitempty"`
	// Messages and Bytes are the finished run's logical traffic totals.
	Messages int64 `json:"messages,omitempty"`
	Bytes    int64 `json:"bytes,omitempty"`
}

// Config sizes a Server.
type Config struct {
	// P is the shared cluster's node count. Every job spans all P nodes.
	P int
	// B is the service's tile side; every job uses it.
	B int
	// MaxConcurrent is the running-jobs slot budget (default 4).
	MaxConcurrent int
	// QueueCap bounds the admission queue; a submission that finds the
	// queue full is rejected descriptively (default 64).
	QueueCap int
	// MemBudgetBytes caps the summed matrix footprint (2·mt²·b²·8 bytes per
	// job: tiles plus gathered result) of running jobs; queued jobs wait
	// until they fit, and a job that could never fit is rejected at
	// submission. Zero means unlimited.
	MemBudgetBytes int64
	// MaxMt caps the accepted tile dimension (default 64).
	MaxMt int
	// Workers is the default per-node worker count for jobs that leave
	// Spec.Workers zero (default 1).
	Workers int
	// MaxWorkers caps per-job worker requests (default 16).
	MaxWorkers int
	// Broadcast selects the shared cluster's transport.
	Broadcast cluster.BroadcastMode
	// Net is the shared cluster's fault-injection seam (nil = faithful).
	Net cluster.Network
	// PatternDir is an optional cmd/patterndb database directory consulted
	// for GCR&M patterns before searching in-process.
	PatternDir string
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.MaxMt <= 0 {
		c.MaxMt = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 16
	}
	return c
}

// job is the server-side record of one submission.
type job struct {
	id       JobID
	spec     JobSpec
	band     int
	crash    *chaos.Plan
	state    JobState
	err      error
	result   *Result
	report   *runtime.Report
	submit   time.Time
	started  time.Time
	finished time.Time
	seq      int64 // FIFO tie-break within one priority
	ctx      context.Context
	cancel   context.CancelCauseFunc
	done     chan struct{} // closed on any terminal state
}

// jobQueue is the admission priority queue: higher Spec.Priority first,
// submission order within a priority.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(a, b int) bool {
	if q[a].spec.Priority != q[b].spec.Priority {
		return q[a].spec.Priority > q[b].spec.Priority
	}
	return q[a].seq < q[b].seq
}
func (q jobQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*job)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// Server is the multi-tenant factorization service.
type Server struct {
	cfg   Config
	cl    *cluster.Cluster
	cache *PatternCache

	mu       sync.Mutex
	jobs     map[JobID]*job
	queue    jobQueue
	nextID   JobID
	seq      int64
	running  int
	memInUse int64
	closed   bool
	wg       sync.WaitGroup

	// service counters (under mu)
	submitted, completed, failed, canceled, rejected int64
	queueWait                                        time.Duration
}

// New creates a service over a fresh shared cluster.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.P <= 0 {
		return nil, fmt.Errorf("serve: invalid node count %d", cfg.P)
	}
	if cfg.B <= 0 {
		return nil, fmt.Errorf("serve: invalid tile size %d", cfg.B)
	}
	return &Server{
		cfg:   cfg,
		cl:    cluster.NewWithOptions(cfg.P, cluster.Options{Net: cfg.Net, Broadcast: cfg.Broadcast}),
		cache: &PatternCache{Dir: cfg.PatternDir},
		jobs:  make(map[JobID]*job),
	}, nil
}

// Cluster exposes the shared substrate (tests assert on its pool balance).
func (s *Server) Cluster() *cluster.Cluster { return s.cl }

// jobBytes estimates a job's resident matrix footprint: the owned tiles plus
// the gathered result, each mt²·b² float64s.
func jobBytes(mt, b int) int64 {
	return 2 * int64(mt) * int64(mt) * int64(b) * int64(b) * 8
}

// validate normalizes spec and returns a descriptive rejection for anything
// the service can never run. It must never panic, whatever the spec says —
// FuzzSubmit holds it to that.
func (s *Server) validate(spec *JobSpec) error {
	switch spec.Kind {
	case KindLU, KindCholesky:
	case "":
		return fmt.Errorf("%w: missing kind (want %q or %q)", ErrRejected, KindLU, KindCholesky)
	default:
		return fmt.Errorf("%w: unknown kind %q (want %q or %q)", ErrRejected, spec.Kind, KindLU, KindCholesky)
	}
	if spec.Scheme == "" {
		spec.Scheme = "g2dbc"
	}
	spec.Scheme = strings.ToLower(spec.Scheme)
	if spec.Mt <= 0 {
		return fmt.Errorf("%w: mt = %d; need a positive tile dimension", ErrRejected, spec.Mt)
	}
	if spec.Mt > s.cfg.MaxMt {
		return fmt.Errorf("%w: mt = %d exceeds the service cap %d", ErrRejected, spec.Mt, s.cfg.MaxMt)
	}
	if spec.B == 0 {
		spec.B = s.cfg.B
	}
	if spec.B != s.cfg.B {
		return fmt.Errorf("%w: tile size b = %d mismatches the service tile size %d", ErrRejected, spec.B, s.cfg.B)
	}
	if spec.P == 0 {
		spec.P = s.cfg.P
	}
	if spec.P != s.cfg.P {
		return fmt.Errorf("%w: p = %d mismatches the shared cluster's %d nodes (jobs span the whole cluster)",
			ErrRejected, spec.P, s.cfg.P)
	}
	if spec.Workers == 0 {
		spec.Workers = s.cfg.Workers
	}
	if spec.Workers < 0 || spec.Workers > s.cfg.MaxWorkers {
		return fmt.Errorf("%w: workers = %d outside 1..%d", ErrRejected, spec.Workers, s.cfg.MaxWorkers)
	}
	if s.cfg.MemBudgetBytes > 0 {
		if est := jobBytes(spec.Mt, spec.B); est > s.cfg.MemBudgetBytes {
			return fmt.Errorf("%w: budget exceeded: job needs ~%d bytes, the service memory budget is %d",
				ErrRejected, est, s.cfg.MemBudgetBytes)
		}
	}
	// Construct (or hit the cache for) the distribution now: an unknown
	// scheme, or one that cannot serve this node count (SBC/STS accept only
	// their families), must reject at submission, not fail mid-queue.
	if _, err := s.cache.Dist(spec.Scheme, spec.P); err != nil {
		return fmt.Errorf("%w: scheme %q unusable for P=%d: %v", ErrRejected, spec.Scheme, spec.P, err)
	}
	if spec.Crash != "" {
		if _, _, err := parseCrash(spec.Crash, spec.P); err != nil {
			return fmt.Errorf("%w: %v", ErrRejected, err)
		}
	}
	return nil
}

// parseCrash parses "rank@task" crash injection specs.
func parseCrash(s string, P int) (rank, task int, err error) {
	if _, err := fmt.Sscanf(s, "%d@%d", &rank, &task); err != nil {
		return 0, 0, fmt.Errorf("crash spec %q: want \"rank@task\"", s)
	}
	if rank < 0 || rank >= P {
		return 0, 0, fmt.Errorf("crash spec %q: rank outside 0..%d", s, P-1)
	}
	if task < 0 {
		return 0, 0, fmt.Errorf("crash spec %q: negative task index", s)
	}
	return rank, task, nil
}

// band maps a job priority to the cross-job scheduler band: non-negative
// priorities share the foreground band 0, negative priorities fall into
// successively later background bands.
func band(priority int) int {
	if priority >= 0 {
		return 0
	}
	b := -priority
	if b > sched.MaxBand {
		b = sched.MaxBand
	}
	return b
}

// Submit validates spec and enqueues the job, returning its id. Rejections
// (wrapped ErrRejected) are immediate and descriptive: malformed specs,
// shapes over the memory budget, unknown schemes, and a full admission queue
// all name their reason. An accepted job runs as soon as a slot and its
// memory fit, in priority order.
func (s *Server) Submit(spec JobSpec) (JobID, error) {
	if err := s.validate(&spec); err != nil {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return 0, err
	}
	var plan *chaos.Plan
	if spec.Crash != "" {
		rank, task, _ := parseCrash(spec.Crash, spec.P)
		p, err := chaos.New(chaos.Config{Seed: spec.ChaosSeed, CrashAtTask: map[int]int{rank: task}})
		if err != nil {
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			return 0, fmt.Errorf("%w: %v", ErrRejected, err)
		}
		plan = p
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.rejected++
		return 0, fmt.Errorf("%w: the service is shutting down", ErrRejected)
	}
	if len(s.queue) >= s.cfg.QueueCap {
		s.rejected++
		return 0, fmt.Errorf("%w: admission queue full (%d queued, cap %d); retry later",
			ErrRejected, len(s.queue), s.cfg.QueueCap)
	}
	s.nextID++
	s.seq++
	s.submitted++
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &job{
		id:     s.nextID,
		spec:   spec,
		band:   band(spec.Priority),
		crash:  plan,
		state:  StateQueued,
		submit: time.Now(),
		seq:    s.seq,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	s.jobs[j.id] = j
	heap.Push(&s.queue, j)
	s.schedule()
	return j.id, nil
}

// schedule starts every queued job that fits the slot and memory budgets,
// in priority order with backfilling: a large job waiting for memory does
// not block a smaller lower-priority one that fits now. Called under mu.
func (s *Server) schedule() {
	if s.closed {
		return
	}
	var skipped []*job
	for s.running < s.cfg.MaxConcurrent && len(s.queue) > 0 {
		j := heap.Pop(&s.queue).(*job)
		need := jobBytes(j.spec.Mt, j.spec.B)
		if s.cfg.MemBudgetBytes > 0 && s.memInUse+need > s.cfg.MemBudgetBytes {
			skipped = append(skipped, j)
			continue
		}
		s.running++
		s.memInUse += need
		j.state = StateRunning
		j.started = time.Now()
		s.queueWait += j.started.Sub(j.submit)
		s.wg.Add(1)
		go s.runJob(j, need)
	}
	for _, j := range skipped {
		heap.Push(&s.queue, j)
	}
}

// runJob executes one admitted job on the shared cluster and re-schedules
// the queue when its slot frees up.
func (s *Server) runJob(j *job, memReserved int64) {
	defer s.wg.Done()
	res, rep, err := s.execute(j)

	s.mu.Lock()
	j.finished = time.Now()
	j.result, j.report = res, rep
	switch {
	case err == nil:
		j.state = StateDone
		s.completed++
	case errors.Is(err, runtime.ErrCanceled):
		j.state = StateCanceled
		j.err = err
		s.canceled++
	default:
		j.state = StateFailed
		j.err = err
		s.failed++
	}
	s.running--
	s.memInUse -= memReserved
	s.schedule()
	s.mu.Unlock()

	// The plane's counters live in the report now; free the namespace.
	s.cl.DropJob(int32(j.id))
	j.cancel(nil)
	close(j.done)
}

// execute runs the factorization itself: cached distribution and graph, the
// job's namespace on the shared cluster, the job's cancellation context and
// priority band.
func (s *Server) execute(j *job) (*Result, *runtime.Report, error) {
	spec := j.spec
	d, err := s.cache.Dist(spec.Scheme, spec.P)
	if err != nil {
		return nil, nil, err
	}
	g, err := s.cache.Graph(spec.Kind, spec.Mt)
	if err != nil {
		return nil, nil, err
	}
	opt := runtime.Options{
		Workers:      spec.Workers,
		Cluster:      s.cl,
		Job:          int32(j.id),
		Context:      j.ctx,
		PriorityBand: j.band,
		Elastic:      spec.Elastic,
		Chaos:        j.crash,
	}
	switch spec.Kind {
	case KindLU:
		gen := runtime.GenDiagDominant(spec.Mt, spec.B, spec.Seed)
		out := matrix.NewDense(spec.Mt, spec.Mt, spec.B)
		rep, err := runtime.Run(g, d, spec.B, gen, runtime.LUKernel, opt, func(i, jj int, t *tile.Tile) {
			out.SetTile(i, jj, t.Clone())
		})
		if err != nil {
			return nil, nil, err
		}
		return &Result{Dense: out}, rep, nil
	case KindCholesky:
		gen := runtime.GenSPD(spec.Mt, spec.B, spec.Seed)
		out := matrix.NewSymmetricLower(spec.Mt, spec.B)
		rep, err := runtime.Run(g, d, spec.B, gen, runtime.CholeskyKernel, opt, func(i, jj int, t *tile.Tile) {
			out.Tile(i, jj).CopyFrom(t)
		})
		if err != nil {
			return nil, nil, err
		}
		return &Result{Chol: out}, rep, nil
	default:
		return nil, nil, fmt.Errorf("serve: unknown job kind %q", spec.Kind)
	}
}

// get looks a job up under mu.
func (s *Server) get(id JobID) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: job %d", ErrNotFound, id)
	}
	return j, nil
}

// Status returns a snapshot of the job.
func (s *Server) Status(id JobID) (Status, error) {
	j, err := s.get(id)
	if err != nil {
		return Status{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{ID: j.id, State: j.state, Spec: j.spec}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	switch j.state {
	case StateQueued:
		st.QueueWaitSeconds = time.Since(j.submit).Seconds()
	case StateRunning:
		st.QueueWaitSeconds = j.started.Sub(j.submit).Seconds()
		st.RunSeconds = time.Since(j.started).Seconds()
	default:
		if !j.started.IsZero() {
			st.QueueWaitSeconds = j.started.Sub(j.submit).Seconds()
			st.RunSeconds = j.finished.Sub(j.started).Seconds()
		}
	}
	if j.report != nil {
		st.PeakTilesPerNode = append([]int(nil), j.report.PeakTilesPerNode...)
		st.Messages = j.report.Stats.TotalMessages()
		st.Bytes = j.report.Stats.TotalBytes()
	}
	return st, nil
}

// Result returns a finished job's factors and report. Jobs that are not done
// (still queued/running, failed, or cancelled) return an error saying so.
func (s *Server) Result(id JobID) (*Result, *runtime.Report, error) {
	j, err := s.get(id)
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.result, j.report, nil
	case StateFailed:
		return nil, nil, fmt.Errorf("serve: job %d failed: %w", id, j.err)
	case StateCanceled:
		return nil, nil, fmt.Errorf("serve: job %d was canceled", id)
	default:
		return nil, nil, fmt.Errorf("serve: job %d is %s; result not ready", id, j.state)
	}
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns its terminal error: nil for done, the failure for failed, a
// cancellation error for canceled.
func (s *Server) Wait(ctx context.Context, id JobID) error {
	j, err := s.get(id)
	if err != nil {
		return err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.err
}

// Cancel aborts the job: a queued job leaves the queue immediately; a
// running job's namespace plane is poisoned through the runtime's
// cancellation seam, its engines wind down, and its pooled tiles drain back
// to the shared pool — no other tenant notices. Terminal jobs return an
// error naming their state.
func (s *Server) Cancel(id JobID) error {
	j, err := s.get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	switch j.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				heap.Remove(&s.queue, i)
				break
			}
		}
		j.state = StateCanceled
		j.err = runtime.ErrCanceled
		j.finished = time.Now()
		s.canceled++
		s.mu.Unlock()
		j.cancel(context.Canceled)
		close(j.done)
		return nil
	case StateRunning:
		s.mu.Unlock()
		j.cancel(context.Canceled) // runJob observes ErrCanceled and finishes the bookkeeping
		return nil
	default:
		s.mu.Unlock()
		return fmt.Errorf("serve: job %d already %s", id, j.state)
	}
}

// ServiceStats is the service-level counter snapshot of /stats.
type ServiceStats struct {
	P              int     `json:"p"`
	B              int     `json:"b"`
	Queued         int     `json:"queued"`
	Running        int     `json:"running"`
	Submitted      int64   `json:"submitted"`
	Completed      int64   `json:"completed"`
	Failed         int64   `json:"failed"`
	Canceled       int64   `json:"canceled"`
	Rejected       int64   `json:"rejected"`
	QueueWaitSecs  float64 `json:"queueWaitSeconds"` // summed over started jobs
	MemInUseBytes  int64   `json:"memInUseBytes"`
	MemBudgetBytes int64   `json:"memBudgetBytes"`
	CacheHits      int64   `json:"cacheHits"`
	CacheMisses    int64   `json:"cacheMisses"`
	PoolHeld       int64   `json:"poolHeldTiles"` // send-buffer tiles currently in flight
}

// Stats snapshots the service counters.
func (s *Server) Stats() ServiceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServiceStats{
		P:              s.cfg.P,
		B:              s.cfg.B,
		Queued:         len(s.queue),
		Running:        s.running,
		Submitted:      s.submitted,
		Completed:      s.completed,
		Failed:         s.failed,
		Canceled:       s.canceled,
		Rejected:       s.rejected,
		QueueWaitSecs:  s.queueWait.Seconds(),
		MemInUseBytes:  s.memInUse,
		MemBudgetBytes: s.cfg.MemBudgetBytes,
		CacheHits:      s.cache.Hits(),
		CacheMisses:    s.cache.Misses(),
		PoolHeld:       s.cl.PoolOutstanding(),
	}
}

// Summary renders the simfact-style one-screen text report of the service.
func (s *Server) Summary() string {
	st := s.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "factserve: P=%d b=%d broadcast=%s\n", st.P, st.B, s.cl.Broadcast())
	fmt.Fprintf(&b, "  jobs:   %d queued, %d running | %d done, %d failed, %d canceled, %d rejected (of %d submitted)\n",
		st.Queued, st.Running, st.Completed, st.Failed, st.Canceled, st.Rejected, st.Submitted+st.Rejected)
	started := st.Completed + st.Failed + st.Canceled + int64(st.Running)
	if started > 0 {
		fmt.Fprintf(&b, "  queue:  %.1f ms mean wait over %d started jobs\n",
			1e3*st.QueueWaitSecs/float64(started), started)
	}
	if st.MemBudgetBytes > 0 {
		fmt.Fprintf(&b, "  memory: %d / %d bytes reserved\n", st.MemInUseBytes, st.MemBudgetBytes)
	}
	fmt.Fprintf(&b, "  cache:  %d hits, %d misses | pool: %d tiles in flight\n",
		st.CacheHits, st.CacheMisses, st.PoolHeld)
	return b.String()
}

// Jobs lists every known job id in submission order (tests and the HTTP
// index use it).
func (s *Server) Jobs() []JobID {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]JobID, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// Close stops admission, cancels every queued and running job, waits for
// the runners to drain, and tears the shared cluster down.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	queued := append([]*job(nil), s.queue...)
	s.queue = nil
	var runningJobs []*job
	for _, j := range s.jobs {
		if j.state == StateRunning {
			runningJobs = append(runningJobs, j)
		}
	}
	for _, j := range queued {
		j.state = StateCanceled
		j.err = runtime.ErrCanceled
		j.finished = time.Now()
		s.canceled++
	}
	s.mu.Unlock()
	for _, j := range queued {
		j.cancel(context.Canceled)
		close(j.done)
	}
	for _, j := range runningJobs {
		j.cancel(context.Canceled)
	}
	s.wg.Wait()
	s.cl.Close()
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns the HTTP front of the service:
//
//	POST   /jobs            submit a JobSpec (JSON body) → {"id": n}
//	GET    /jobs            list known job ids
//	GET    /jobs/{id}       job status snapshot
//	GET    /jobs/{id}/result norm + per-node accounting of a finished job
//	DELETE /jobs/{id}       cancel a queued or running job
//	GET    /stats           service counters (?format=text for the summary)
//
// Factors themselves stay in process — the result endpoint reports the
// Frobenius norm and the run's accounting, which is what a health check or a
// test harness wants over the wire; in-process callers use Result directly.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrRejected):
		// Queue-full backpressure is 429 (retry later); any other
		// rejection means the spec itself can never run.
		code = http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "admission queue full") {
			code = http.StatusTooManyRequests
		}
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func jobID(r *http.Request) (JobID, error) {
	n, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return 0, fmt.Errorf("%w: bad job id %q", ErrNotFound, r.PathValue("id"))
	}
	return JobID(n), nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
		return
	}
	id, err := s.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, err := s.Status(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// resultBody is the over-the-wire view of a finished job.
type resultBody struct {
	ID            JobID   `json:"id"`
	Kind          string  `json:"kind"`
	FrobeniusNorm float64 `json:"frobeniusNorm"`
	Messages      int64   `json:"messages"`
	Bytes         int64   `json:"bytes"`
	WireBytes     int64   `json:"wireBytes"`
	ElapsedSteps  int64   `json:"elapsedSteps,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	res, rep, err := s.Result(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	body := resultBody{ID: id}
	if res.Dense != nil {
		body.Kind = KindLU
		body.FrobeniusNorm = res.Dense.FrobeniusNorm()
	} else if res.Chol != nil {
		body.Kind = KindCholesky
		body.FrobeniusNorm = res.Chol.FrobeniusNorm()
	}
	if rep != nil {
		body.Messages = rep.Stats.TotalMessages()
		body.Bytes = rep.Stats.TotalBytes()
		body.WireBytes = rep.Stats.TotalWireBytes()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.Cancel(id); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.Summary())
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// FuzzSubmit throws arbitrary job specs at one long-lived service. The
// contract under fuzzing: Submit never panics and never wedges — a spec is
// either rejected immediately with a descriptive ErrRejected, or admitted
// and then driven to a terminal state (crash-injected tenants may fail; they
// must still terminate, and must not disturb the service for the following
// iterations).
func FuzzSubmit(f *testing.F) {
	srv, err := New(Config{
		P: 2, B: 4, MaxMt: 4, MaxConcurrent: 2, QueueCap: 8,
		MemBudgetBytes: 1 << 20,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)

	// The rejection surface the spec names, plus healthy baselines.
	f.Add("lu", "g2dbc", 2, 4, 2, 1, 0, "")           // valid LU
	f.Add("cholesky", "2dbc", 3, 0, 0, 2, 3, "")      // valid Cholesky, defaults
	f.Add("", "", 0, 0, 0, 0, 0, "")                  // empty everything
	f.Add("lu", "bogus", 2, 4, 2, 1, 0, "")           // unknown scheme
	f.Add("lu", "g2dbc", -5, 4, 2, 1, 0, "")          // mt <= 0
	f.Add("lu", "g2dbc", 64, 4, 2, 1, 0, "")          // mt over cap (→ budget/cap reject)
	f.Add("lu", "g2dbc", 2, 8, 2, 1, 0, "")           // b mismatch
	f.Add("lu", "g2dbc", 2, 4, 4096, 1, 0, "")        // oversized P
	f.Add("qr", "g2dbc", 2, 4, 2, 1, 0, "")           // unknown kind
	f.Add("lu", "sts", 2, 4, 2, 1, -9, "")            // scheme invalid for P=2
	f.Add("lu", "g2dbc", 2, 4, 2, 1, 0, "0@0")        // crash injection, rank 0
	f.Add("lu", "g2dbc", 3, 4, 2, 1, 0, "1@1")        // crash injection, rank 1
	f.Add("lu", "g2dbc", 2, 4, 2, 1, 0, "not@a@spec") // malformed crash
	f.Add("lu", "g2dbc", 2, 4, 2, -3, 0, "")          // negative workers

	f.Fuzz(func(t *testing.T, kind, scheme string, mt, b, p, workers, priority int, crash string) {
		id, err := srv.Submit(JobSpec{
			Kind: kind, Scheme: scheme, Mt: mt, B: b, P: p,
			Workers: workers, Priority: priority, Crash: crash,
			Seed: int64(mt + b), ChaosSeed: int64(priority),
		})
		if err != nil {
			if !errors.Is(err, ErrRejected) {
				t.Fatalf("rejection does not wrap ErrRejected: %v", err)
			}
			if err.Error() == ErrRejected.Error() {
				t.Fatalf("rejection carries no description: %v", err)
			}
			return
		}
		// Admitted: the job must reach a terminal state. Crash-injected
		// tenants legitimately fail — Wait's error is fine — but a wedge
		// (timeout) means a stuck namespace and fails the fuzz.
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := srv.Wait(ctx, id); err != nil && ctx.Err() != nil {
			t.Fatalf("admitted job %d wedged: %v", id, err)
		}
	})
}

package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"anybc/internal/core"
	"anybc/internal/dag"
	"anybc/internal/dist"
)

// PatternCache memoizes the expensive precomputation shared by jobs of the
// same shape, keyed on (scheme, P) for distributions and (kind, mt) for task
// graphs — together the (scheme, P, mt) key of a job. Distributions depend
// only on the scheme and node count (for GCR&M a full pattern search, the
// patterndb workload), and the structural DAGs only on the algorithm and
// tile count; both are immutable after construction, so one instance serves
// any number of concurrent jobs. With Dir set, GCR&M patterns are first
// looked up in a cmd/patterndb database directory (gcrm-%04d.pattern files)
// before falling back to an in-process search, so a service pointed at a
// prebuilt database never pays the search even on a cold cache.
type PatternCache struct {
	// Dir is an optional cmd/patterndb database directory for GCR&M.
	Dir string

	mu     sync.Mutex
	dists  map[string]dist.Distribution
	graphs map[string]dag.Graph
	hits   atomic.Int64
	misses atomic.Int64
}

// Dist returns the distribution for scheme on P nodes, constructing and
// caching it on first use. Construction errors (unknown scheme, node counts
// a scheme cannot serve) are returned verbatim — and not cached, so a
// transient patterndb read error does not poison the key.
func (c *PatternCache) Dist(scheme string, P int) (dist.Distribution, error) {
	key := fmt.Sprintf("%s|%d", strings.ToLower(scheme), P)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.dists[key]; ok {
		c.hits.Add(1)
		return d, nil
	}
	c.misses.Add(1)
	var d dist.Distribution
	var err error
	if c.Dir != "" && core.Scheme(strings.ToLower(scheme)) == core.GCRM {
		if d, err = core.FromDB(c.Dir, P); err != nil {
			d, err = core.New(core.Scheme(scheme), P, core.Options{})
		}
	} else {
		d, err = core.New(core.Scheme(scheme), P, core.Options{})
	}
	if err != nil {
		return nil, err
	}
	if c.dists == nil {
		c.dists = make(map[string]dist.Distribution)
	}
	c.dists[key] = d
	return d, nil
}

// Graph returns the task DAG for kind ("lu" or "cholesky") on an mt×mt tile
// matrix, constructing and caching it on first use. Unknown kinds return an
// error; Submit validates the kind before jobs reach here.
func (c *PatternCache) Graph(kind string, mt int) (dag.Graph, error) {
	key := fmt.Sprintf("%s|%d", kind, mt)
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.graphs[key]; ok {
		c.hits.Add(1)
		return g, nil
	}
	c.misses.Add(1)
	var g dag.Graph
	switch kind {
	case KindLU:
		g = dag.NewLU(mt)
	case KindCholesky:
		g = dag.NewCholesky(mt)
	default:
		return nil, fmt.Errorf("serve: unknown job kind %q", kind)
	}
	if c.graphs == nil {
		c.graphs = make(map[string]dag.Graph)
	}
	c.graphs[key] = g
	return g, nil
}

// Hits returns the number of cache lookups served from memory.
func (c *PatternCache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of cache lookups that had to construct.
func (c *PatternCache) Misses() int64 { return c.misses.Load() }

package matrix

import (
	"testing"
)

func TestRefineLUImprovesPerturbedSolution(t *testing.T) {
	const mt, b, nrhs = 4, 6, 2
	a := NewDiagDominant(mt, b, 51)
	xTrue := NewRHS(mt, b, nrhs)
	xTrue.FillFunc(func(gi, k int) float64 { return ElementAt(52, gi, k) })
	rhs := a.MulRHS(xTrue)
	fact := a.Clone()
	if err := FactorLU(fact); err != nil {
		t.Fatal(err)
	}
	// Perturb the exact solution and refine back.
	x := xTrue.Clone()
	x.FillFunc(func(gi, k int) float64 { return xTrue[gi/b].At(gi%b, k) + 1e-4 })
	iters, res := RefineLU(a, fact, rhs, x, 10, 1e-12)
	if iters == 0 {
		t.Fatal("refinement did not iterate on a perturbed solution")
	}
	if res > 1e-10 {
		t.Fatalf("refined residual %g", res)
	}
	if diff := x.MaxAbsDiff(xTrue); diff > 1e-10 {
		t.Fatalf("refined solution error %g", diff)
	}
}

func TestRefineLUStopsWhenConverged(t *testing.T) {
	const mt, b, nrhs = 3, 5, 1
	a := NewDiagDominant(mt, b, 53)
	xTrue := NewRHS(mt, b, nrhs)
	xTrue.FillFunc(func(gi, k int) float64 { return ElementAt(54, gi, k) })
	rhs := a.MulRHS(xTrue)
	fact := a.Clone()
	if err := FactorLU(fact); err != nil {
		t.Fatal(err)
	}
	x := rhs.Clone()
	SolveLU(fact, x)
	iters, res := RefineLU(a, fact, rhs, x, 10, 1e-10)
	if iters > 1 {
		t.Errorf("converged solution needed %d refinement steps", iters)
	}
	if res > 1e-10 {
		t.Errorf("residual %g after refinement", res)
	}
}

func TestRefineCholesky(t *testing.T) {
	const mt, b, nrhs = 4, 5, 2
	a := NewSPD(mt, b, 55)
	xTrue := NewRHS(mt, b, nrhs)
	xTrue.FillFunc(func(gi, k int) float64 { return ElementAt(56, gi, k) })
	rhs := a.MulRHS(xTrue)
	fact := a.Clone()
	if err := FactorCholesky(fact); err != nil {
		t.Fatal(err)
	}
	x := NewRHS(mt, b, nrhs) // start from zero: needs several iterations
	iters, res := RefineCholesky(a, fact, rhs, x, 20, 1e-12)
	if res > 1e-10 {
		t.Fatalf("residual %g after %d iterations", res, iters)
	}
	if diff := x.MaxAbsDiff(xTrue); diff > 1e-10 {
		t.Fatalf("solution error %g", diff)
	}
}

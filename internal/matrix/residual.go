package matrix

import (
	"math"

	"anybc/internal/tile"
)

// gather assembles the full dense matrix into one big tile (small sizes only;
// used for verification).
func (d *Dense) gather() *tile.Tile {
	out := tile.New(d.Rows(), d.Cols())
	for gi := 0; gi < d.Rows(); gi++ {
		for gj := 0; gj < d.Cols(); gj++ {
			out.Set(gi, gj, d.At(gi, gj))
		}
	}
	return out
}

// gatherFull assembles the full symmetric matrix (mirroring) into one tile.
func (s *SymmetricLower) gatherFull() *tile.Tile {
	m := s.Rows()
	out := tile.New(m, m)
	for gi := 0; gi < m; gi++ {
		for gj := 0; gj < m; gj++ {
			out.Set(gi, gj, s.At(gi, gj))
		}
	}
	return out
}

// ResidualLU returns the relative reconstruction error
// ‖A − L·U‖_F / ‖A‖_F, where fact holds the in-place unpivoted LU factors of
// orig (unit-lower L below the diagonal, U on and above).
func ResidualLU(orig, fact *Dense) float64 {
	m := orig.Rows()
	a := orig.gather()
	f := fact.gather()
	l := tile.New(m, m)
	u := tile.New(m, m)
	for i := 0; i < m; i++ {
		l.Set(i, i, 1)
		for j := 0; j < i; j++ {
			l.Set(i, j, f.At(i, j))
		}
		for j := i; j < m; j++ {
			u.Set(i, j, f.At(i, j))
		}
	}
	lu := tile.New(m, m)
	tile.Gemm(tile.NoTrans, tile.NoTrans, 1, l, u, 0, lu)
	num := 0.0
	for i := range lu.Data {
		diff := a.Data[i] - lu.Data[i]
		num += diff * diff
	}
	den := a.FrobeniusNorm()
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num) / den
}

// ResidualCholesky returns the relative reconstruction error
// ‖A − L·Lᵀ‖_F / ‖A‖_F, where fact holds the in-place Cholesky factor of
// orig in its lower triangle.
func ResidualCholesky(orig, fact *SymmetricLower) float64 {
	m := orig.Rows()
	a := orig.gatherFull()
	l := tile.New(m, m)
	for gi := 0; gi < m; gi++ {
		for gj := 0; gj <= gi; gj++ {
			l.Set(gi, gj, fact.At(gi, gj))
		}
	}
	llt := tile.New(m, m)
	tile.Gemm(tile.NoTrans, tile.TransT, 1, l, l, 0, llt)
	num := 0.0
	for i := range llt.Data {
		diff := a.Data[i] - llt.Data[i]
		num += diff * diff
	}
	den := a.FrobeniusNorm()
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num) / den
}

package matrix

import (
	"fmt"

	"anybc/internal/tile"
)

// RefineLU performs classical iterative refinement on a solved system:
// given the original matrix a, its LU factors fact, the right-hand side rhs
// and the current solution x, it iterates
//
//	r = b − A·x;  d = (LU)⁻¹ r;  x += d
//
// up to maxIter times or until the residual max-norm falls below tol.
// It returns the number of iterations performed and the final residual norm.
// Refinement drives the forward error of the unpivoted factorization toward
// the conditioning limit of A — useful because this library's LU is
// unpivoted (as in the paper's communication analysis).
func RefineLU(a, fact *Dense, rhs, x RHS, maxIter int, tol float64) (iters int, residual float64) {
	for iters = 0; iters < maxIter; iters++ {
		r := residualRHS(a.MulRHS(x), rhs)
		residual = maxAbs(r)
		if residual <= tol {
			return iters, residual
		}
		SolveLU(fact, r)
		addInPlace(x, r)
	}
	r := residualRHS(a.MulRHS(x), rhs)
	return iters, maxAbs(r)
}

// RefineCholesky is iterative refinement for the symmetric case.
func RefineCholesky(a, fact *SymmetricLower, rhs, x RHS, maxIter int, tol float64) (iters int, residual float64) {
	for iters = 0; iters < maxIter; iters++ {
		r := residualRHS(a.MulRHS(x), rhs)
		residual = maxAbs(r)
		if residual <= tol {
			return iters, residual
		}
		SolveCholesky(fact, r)
		addInPlace(x, r)
	}
	r := residualRHS(a.MulRHS(x), rhs)
	return iters, maxAbs(r)
}

// residualRHS returns rhs − ax (freshly allocated).
func residualRHS(ax, rhs RHS) RHS {
	if len(ax) != len(rhs) {
		panic(fmt.Sprintf("matrix: residual shape mismatch %d vs %d", len(ax), len(rhs)))
	}
	out := make(RHS, len(rhs))
	for i := range rhs {
		out[i] = tile.New(rhs[i].Rows, rhs[i].Cols)
		for k := range rhs[i].Data {
			out[i].Data[k] = rhs[i].Data[k] - ax[i].Data[k]
		}
	}
	return out
}

func addInPlace(x, d RHS) {
	for i := range x {
		for k := range x[i].Data {
			x[i].Data[k] += d[i].Data[k]
		}
	}
}

func maxAbs(r RHS) float64 {
	m := 0.0
	for i := range r {
		if v := r[i].MaxAbs(); v > m {
			m = v
		}
	}
	return m
}

package matrix

import (
	"fmt"

	"anybc/internal/tile"
)

// RHS is a tiled right-hand-side block: one b×nrhs tile per tile row of the
// matrix. It is the storage for B in A·X = B and is overwritten by the
// solution X during the solves below.
type RHS []*tile.Tile

// NewRHS allocates an mt-tile right-hand side with b×nrhs tiles.
func NewRHS(mt, b, nrhs int) RHS {
	if mt <= 0 || b <= 0 || nrhs <= 0 {
		panic(fmt.Sprintf("matrix: invalid RHS shape mt=%d b=%d nrhs=%d", mt, b, nrhs))
	}
	r := make(RHS, mt)
	for i := range r {
		r[i] = tile.New(b, nrhs)
	}
	return r
}

// Clone returns a deep copy.
func (r RHS) Clone() RHS {
	c := make(RHS, len(r))
	for i, t := range r {
		c[i] = t.Clone()
	}
	return c
}

// FillFunc sets every element from a generator of (global row, rhs column).
func (r RHS) FillFunc(f func(gi, k int) float64) {
	for ti, t := range r {
		for i := 0; i < t.Rows; i++ {
			for k := 0; k < t.Cols; k++ {
				t.Set(i, k, f(ti*t.Rows+i, k))
			}
		}
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference to s.
func (r RHS) MaxAbsDiff(s RHS) float64 {
	max := 0.0
	for i := range r {
		for k, v := range r[i].Data {
			d := v - s[i].Data[k]
			if d < 0 {
				d = -d
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// MulLU computes B = A·X for a dense tiled matrix (helper for building solve
// test systems): out[i] = Σ_j A[i][j]·X[j].
func (a *Dense) MulRHS(x RHS) RHS {
	if a.MT != a.NT || len(x) != a.NT {
		panic("matrix: MulRHS shape mismatch")
	}
	out := make(RHS, a.MT)
	for i := 0; i < a.MT; i++ {
		out[i] = tile.New(x[0].Rows, x[0].Cols)
		for j := 0; j < a.NT; j++ {
			tile.Gemm(tile.NoTrans, tile.NoTrans, 1, a.Tile(i, j), x[j], 1, out[i])
		}
	}
	return out
}

// MulRHS computes B = A·X for the symmetric matrix (mirroring the upper
// triangle): out[i] = Σ_{j<=i} A[i][j]·X[j] + Σ_{j>i} A[j][i]ᵀ·X[j].
func (s *SymmetricLower) MulRHS(x RHS) RHS {
	if len(x) != s.MT {
		panic("matrix: MulRHS shape mismatch")
	}
	out := make(RHS, s.MT)
	for i := 0; i < s.MT; i++ {
		out[i] = tile.New(x[0].Rows, x[0].Cols)
		for j := 0; j <= i; j++ {
			tile.Gemm(tile.NoTrans, tile.NoTrans, 1, s.Tile(i, j), x[j], 1, out[i])
		}
		for j := i + 1; j < s.MT; j++ {
			tile.Gemm(tile.TransT, tile.NoTrans, 1, s.Tile(j, i), x[j], 1, out[i])
		}
	}
	return out
}

// SolveLU solves A·X = B in place on b, given the in-place unpivoted LU
// factors of A (as produced by FactorLU): forward substitution with the
// unit-lower L, then backward substitution with U. This is the sequential
// reference for the distributed solve in package runtime.
func SolveLU(fact *Dense, b RHS) {
	if fact.MT != fact.NT || len(b) != fact.MT {
		panic("matrix: SolveLU shape mismatch")
	}
	mt := fact.MT
	// Forward: Y[i] = B[i] − Σ_{j<i} L[i][j]·Y[j]; L(i,i) is unit lower.
	for i := 0; i < mt; i++ {
		for j := 0; j < i; j++ {
			tile.Gemm(tile.NoTrans, tile.NoTrans, -1, fact.Tile(i, j), b[j], 1, b[i])
		}
		tile.Trsm(tile.Left, tile.Lower, tile.NoTrans, tile.Unit, 1, fact.Tile(i, i), b[i])
	}
	// Backward: X[i] = U(i,i)⁻¹ (Y[i] − Σ_{j>i} U[i][j]·X[j]).
	for i := mt - 1; i >= 0; i-- {
		for j := i + 1; j < mt; j++ {
			tile.Gemm(tile.NoTrans, tile.NoTrans, -1, fact.Tile(i, j), b[j], 1, b[i])
		}
		tile.Trsm(tile.Left, tile.Upper, tile.NoTrans, tile.NonUnit, 1, fact.Tile(i, i), b[i])
	}
}

// SolveCholesky solves A·X = B in place on b, given the in-place Cholesky
// factor of A (as produced by FactorCholesky): L·Y = B then Lᵀ·X = Y.
func SolveCholesky(fact *SymmetricLower, b RHS) {
	if len(b) != fact.MT {
		panic("matrix: SolveCholesky shape mismatch")
	}
	mt := fact.MT
	for i := 0; i < mt; i++ {
		for j := 0; j < i; j++ {
			tile.Gemm(tile.NoTrans, tile.NoTrans, -1, fact.Tile(i, j), b[j], 1, b[i])
		}
		tile.Trsm(tile.Left, tile.Lower, tile.NoTrans, tile.NonUnit, 1, fact.Tile(i, i), b[i])
	}
	for i := mt - 1; i >= 0; i-- {
		for j := i + 1; j < mt; j++ {
			// X[i] -= L[j][i]ᵀ · X[j].
			tile.Gemm(tile.TransT, tile.NoTrans, -1, fact.Tile(j, i), b[j], 1, b[i])
		}
		tile.Trsm(tile.Left, tile.Lower, tile.TransT, tile.NonUnit, 1, fact.Tile(i, i), b[i])
	}
}

package matrix

import (
	"testing"
	"testing/quick"
)

func xTrue(mt, b, nrhs int) RHS {
	x := NewRHS(mt, b, nrhs)
	x.FillFunc(func(gi, k int) float64 { return ElementAt(77, gi, k) })
	return x
}

func TestSolveLURecoversX(t *testing.T) {
	for _, mt := range []int{1, 2, 4, 7} {
		const b, nrhs = 6, 3
		a := NewDiagDominant(mt, b, 11)
		x := xTrue(mt, b, nrhs)
		rhs := a.MulRHS(x)
		if err := FactorLU(a); err != nil {
			t.Fatal(err)
		}
		SolveLU(a, rhs)
		if diff := rhs.MaxAbsDiff(x); diff > 1e-10 {
			t.Errorf("mt=%d: solution error %g", mt, diff)
		}
	}
}

func TestSolveCholeskyRecoversX(t *testing.T) {
	for _, mt := range []int{1, 2, 4, 7} {
		const b, nrhs = 6, 2
		a := NewSPD(mt, b, 12)
		x := xTrue(mt, b, nrhs)
		rhs := a.MulRHS(x)
		if err := FactorCholesky(a); err != nil {
			t.Fatal(err)
		}
		SolveCholesky(a, rhs)
		if diff := rhs.MaxAbsDiff(x); diff > 1e-10 {
			t.Errorf("mt=%d: solution error %g", mt, diff)
		}
	}
}

func TestSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		mt, b, nrhs := 3, 4, 2
		a := NewDiagDominant(mt, b, seed)
		x := NewRHS(mt, b, nrhs)
		x.FillFunc(func(gi, k int) float64 { return ElementAt(seed+1, gi, k) })
		rhs := a.MulRHS(x)
		if err := FactorLU(a); err != nil {
			return false
		}
		SolveLU(a, rhs)
		return rhs.MaxAbsDiff(x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRHSHelpers(t *testing.T) {
	r := NewRHS(2, 3, 2)
	r.FillFunc(func(gi, k int) float64 { return float64(10*gi + k) })
	if r[1].At(2, 1) != 51 {
		t.Fatalf("FillFunc wrong: %v", r[1].At(2, 1))
	}
	c := r.Clone()
	c[0].Set(0, 0, -5)
	if r[0].At(0, 0) == -5 {
		t.Fatal("Clone shares storage")
	}
	if d := r.MaxAbsDiff(c); d != 5 {
		t.Fatalf("MaxAbsDiff = %v, want 5", d)
	}
}

func TestSolvePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewRHS(0, 1, 1) },
		func() { SolveLU(NewDense(2, 3, 2), NewRHS(2, 2, 1)) },
		func() { SolveLU(NewDense(2, 2, 2), NewRHS(3, 2, 1)) },
		func() { SolveCholesky(NewSymmetricLower(2, 2), NewRHS(3, 2, 1)) },
		func() { NewDense(2, 2, 2).MulRHS(NewRHS(3, 2, 1)) },
		func() { NewSymmetricLower(2, 2).MulRHS(NewRHS(3, 2, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

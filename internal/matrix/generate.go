package matrix

// splitmix64 is a tiny, high-quality mixing function; the generators below
// use it to derive element values from (seed, i, j) without any shared state,
// so distributed nodes can materialize their tiles independently.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ElementAt returns a deterministic pseudo-random value in [-1, 1) for global
// element (i, j) under the given seed.
func ElementAt(seed int64, i, j int) float64 {
	h := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0x1000003 + uint64(j))
	return float64(h>>11)/float64(1<<53)*2 - 1
}

// DiagDominantAt is the element generator for a non-symmetric diagonally
// dominant matrix of global size m: random off-diagonal entries in [-1, 1)
// and diagonal entries m + 1 + |random|, making unpivoted LU stable.
func DiagDominantAt(seed int64, m, i, j int) float64 {
	if i == j {
		return float64(m) + 1 + (ElementAt(seed, i, j)+1)/2
	}
	return ElementAt(seed, i, j)
}

// SPDAt is the element generator for a symmetric positive definite matrix of
// global size m: symmetric random off-diagonals and dominant positive
// diagonal (strict diagonal dominance with positive diagonal implies SPD).
func SPDAt(seed int64, m, i, j int) float64 {
	if i == j {
		return float64(m) + 1 + (ElementAt(seed, i, i)+1)/2
	}
	if i < j {
		i, j = j, i
	}
	return ElementAt(seed, i, j)
}

// NewDiagDominant builds an mt×mt tiled diagonally dominant matrix with b×b
// tiles, suitable for unpivoted LU factorization.
func NewDiagDominant(mt, b int, seed int64) *Dense {
	d := NewDense(mt, mt, b)
	m := mt * b
	d.FillFunc(func(gi, gj int) float64 { return DiagDominantAt(seed, m, gi, gj) })
	return d
}

// NewSPD builds an mt×mt tiled symmetric positive definite matrix (lower
// storage) with b×b tiles, suitable for Cholesky factorization.
func NewSPD(mt, b int, seed int64) *SymmetricLower {
	s := NewSymmetricLower(mt, b)
	m := mt * b
	s.FillLowerFunc(func(gi, gj int) float64 { return SPDAt(seed, m, gi, gj) })
	return s
}

package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDenseAccessors(t *testing.T) {
	d := NewDense(2, 3, 4)
	if d.Rows() != 8 || d.Cols() != 12 {
		t.Fatalf("global dims %dx%d, want 8x12", d.Rows(), d.Cols())
	}
	d.Set(5, 9, 3.5)
	if d.At(5, 9) != 3.5 {
		t.Fatal("Set/At broken")
	}
	if d.Tile(1, 2).At(1, 1) != 3.5 {
		t.Fatal("element landed in the wrong tile")
	}
	c := d.Clone()
	c.Set(5, 9, -1)
	if d.At(5, 9) != 3.5 {
		t.Fatal("Clone shares storage")
	}
}

func TestDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDense(0,1,1) did not panic")
		}
	}()
	NewDense(0, 1, 1)
}

func TestSymmetricAccessors(t *testing.T) {
	s := NewSymmetricLower(3, 2)
	if s.Rows() != 6 {
		t.Fatalf("Rows = %d, want 6", s.Rows())
	}
	s.Set(4, 1, 2.5)
	if s.At(4, 1) != 2.5 || s.At(1, 4) != 2.5 {
		t.Fatal("symmetric At/Set broken")
	}
	// Upper-triangle tile access must panic.
	defer func() {
		if recover() == nil {
			t.Error("Tile above diagonal did not panic")
		}
	}()
	s.Tile(0, 1)
}

func TestFillFunc(t *testing.T) {
	d := NewDense(2, 2, 3)
	d.FillFunc(func(i, j int) float64 { return float64(100*i + j) })
	if d.At(4, 5) != 405 {
		t.Fatalf("FillFunc: At(4,5) = %v", d.At(4, 5))
	}
}

func TestFillLowerFuncMirrorsDiagonalTiles(t *testing.T) {
	s := NewSymmetricLower(2, 3)
	s.FillLowerFunc(func(i, j int) float64 { return float64(10*i + j) })
	// Inside a diagonal tile, the upper part mirrors: element (0,1) of tile
	// (0,0) equals f(1,0) = 10.
	if got := s.Tile(0, 0).At(0, 1); got != 10 {
		t.Fatalf("diagonal tile mirror = %v, want 10", got)
	}
	if s.At(1, 0) != 10 || s.At(0, 1) != 10 {
		t.Fatal("symmetric read broken")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := NewDiagDominant(3, 4, 7)
	b := NewDiagDominant(3, 4, 7)
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatal("DiagDominant not deterministic")
			}
		}
	}
	c := NewDiagDominant(3, 4, 8)
	same := true
	for i := 0; i < a.Rows() && same; i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != c.At(i, j) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestDiagDominance(t *testing.T) {
	a := NewDiagDominant(2, 5, 3)
	m := a.Rows()
	for i := 0; i < m; i++ {
		off := 0.0
		for j := 0; j < m; j++ {
			if i != j {
				off += math.Abs(a.At(i, j))
			}
		}
		if a.At(i, i) <= off {
			t.Fatalf("row %d not diagonally dominant: %v <= %v", i, a.At(i, i), off)
		}
	}
}

func TestSPDSymmetry(t *testing.T) {
	s := NewSPD(3, 3, 5)
	m := s.Rows()
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if s.At(i, j) != s.At(j, i) {
				t.Fatalf("SPD matrix not symmetric at (%d,%d)", i, j)
			}
		}
		if s.At(i, i) <= float64(m) {
			t.Fatalf("SPD diagonal too small at %d", i)
		}
	}
}

func TestFactorLUResidual(t *testing.T) {
	for _, mt := range []int{1, 2, 4, 6} {
		orig := NewDiagDominant(mt, 8, 42)
		fact := orig.Clone()
		if err := FactorLU(fact); err != nil {
			t.Fatalf("mt=%d: %v", mt, err)
		}
		if res := ResidualLU(orig, fact); res > 1e-12 {
			t.Errorf("mt=%d: LU residual %g", mt, res)
		}
	}
}

func TestFactorCholeskyResidual(t *testing.T) {
	for _, mt := range []int{1, 2, 4, 6} {
		orig := NewSPD(mt, 8, 43)
		fact := orig.Clone()
		if err := FactorCholesky(fact); err != nil {
			t.Fatalf("mt=%d: %v", mt, err)
		}
		if res := ResidualCholesky(orig, fact); res > 1e-12 {
			t.Errorf("mt=%d: Cholesky residual %g", mt, res)
		}
	}
}

// TestTiledMatchesScalar: the tiled LU of a matrix equals the scalar LU of
// the gathered matrix — tiling must not change the numerics beyond rounding.
func TestTiledMatchesScalarProperty(t *testing.T) {
	f := func(seed int64) bool {
		mt, b := 3, 4
		orig := NewDiagDominant(mt, b, seed)
		fact := orig.Clone()
		if err := FactorLU(fact); err != nil {
			return false
		}
		return ResidualLU(orig, fact) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFactorLUPanicsOnRect(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FactorLU on rectangular matrix did not panic")
		}
	}()
	_ = FactorLU(NewDense(2, 3, 2))
}

func TestFrobeniusNorm(t *testing.T) {
	d := NewDense(2, 2, 2)
	d.Set(0, 0, 3)
	d.Set(3, 3, 4)
	if got := d.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
}

// Package matrix provides tiled dense and symmetric matrices: the data
// structures the factorizations run on. A matrix is an mt×nt grid of b×b
// tiles; symmetric matrices store only the lower-triangular tiles, exactly as
// the paper's Cholesky experiments keep only half of A.
//
// Element generators are pure functions of (seed, i, j), so every node of the
// virtual cluster can materialize its own tiles without communication — the
// same trick Chameleon's dplrnt/dplgsy generators use.
package matrix

import (
	"fmt"
	"math"

	"anybc/internal/tile"
)

// Dense is an mt×nt tiled matrix of b×b tiles.
type Dense struct {
	MT, NT, B int
	tiles     []*tile.Tile
}

// NewDense allocates an mt×nt tile matrix with b×b zero tiles.
func NewDense(mt, nt, b int) *Dense {
	if mt <= 0 || nt <= 0 || b <= 0 {
		panic(fmt.Sprintf("matrix: invalid shape mt=%d nt=%d b=%d", mt, nt, b))
	}
	d := &Dense{MT: mt, NT: nt, B: b, tiles: make([]*tile.Tile, mt*nt)}
	for i := range d.tiles {
		d.tiles[i] = tile.New(b, b)
	}
	return d
}

// Tile returns tile (i, j) (0-based tile coordinates).
func (d *Dense) Tile(i, j int) *tile.Tile {
	return d.tiles[i*d.NT+j]
}

// SetTile replaces tile (i, j).
func (d *Dense) SetTile(i, j int, t *tile.Tile) {
	if t.Rows != d.B || t.Cols != d.B {
		panic("matrix: tile shape mismatch")
	}
	d.tiles[i*d.NT+j] = t
}

// Rows and Cols return the global element dimensions.
func (d *Dense) Rows() int { return d.MT * d.B }

// Cols returns the number of element columns.
func (d *Dense) Cols() int { return d.NT * d.B }

// At returns global element (gi, gj).
func (d *Dense) At(gi, gj int) float64 {
	return d.Tile(gi/d.B, gj/d.B).At(gi%d.B, gj%d.B)
}

// Set stores global element (gi, gj).
func (d *Dense) Set(gi, gj int, v float64) {
	d.Tile(gi/d.B, gj/d.B).Set(gi%d.B, gj%d.B, v)
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.MT, d.NT, d.B)
	for i, t := range d.tiles {
		c.tiles[i] = t.Clone()
	}
	return c
}

// FillFunc sets every element from a generator function of global indices.
func (d *Dense) FillFunc(f func(gi, gj int) float64) {
	for gi := 0; gi < d.Rows(); gi++ {
		for gj := 0; gj < d.Cols(); gj++ {
			d.Set(gi, gj, f(gi, gj))
		}
	}
}

// FrobeniusNorm returns the Frobenius norm over all elements.
func (d *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, t := range d.tiles {
		n := t.FrobeniusNorm()
		s += n * n
	}
	return math.Sqrt(s)
}

// SymmetricLower is an mt×mt tiled symmetric matrix storing only tiles
// (i, j) with i ≥ j. Element reads above the diagonal are mirrored.
type SymmetricLower struct {
	MT, B int
	tiles []*tile.Tile // packed lower triangle, index i(i+1)/2 + j
}

// NewSymmetricLower allocates an mt×mt symmetric tile matrix.
func NewSymmetricLower(mt, b int) *SymmetricLower {
	if mt <= 0 || b <= 0 {
		panic(fmt.Sprintf("matrix: invalid shape mt=%d b=%d", mt, b))
	}
	s := &SymmetricLower{MT: mt, B: b, tiles: make([]*tile.Tile, mt*(mt+1)/2)}
	for i := range s.tiles {
		s.tiles[i] = tile.New(b, b)
	}
	return s
}

// Tile returns stored tile (i, j), requiring i ≥ j.
func (s *SymmetricLower) Tile(i, j int) *tile.Tile {
	if i < j {
		panic(fmt.Sprintf("matrix: tile (%d,%d) is above the diagonal", i, j))
	}
	return s.tiles[i*(i+1)/2+j]
}

// Rows returns the global element dimension.
func (s *SymmetricLower) Rows() int { return s.MT * s.B }

// FrobeniusNorm returns the Frobenius norm over the stored lower-triangle
// elements (the factor L's norm, not the mirrored full matrix's).
func (s *SymmetricLower) FrobeniusNorm() float64 {
	sum := 0.0
	for _, t := range s.tiles {
		n := t.FrobeniusNorm()
		sum += n * n
	}
	return math.Sqrt(sum)
}

// At returns global element (gi, gj), mirroring the upper triangle.
func (s *SymmetricLower) At(gi, gj int) float64 {
	if gi < gj {
		gi, gj = gj, gi
	}
	ti, tj := gi/s.B, gj/s.B
	return s.Tile(ti, tj).At(gi%s.B, gj%s.B)
}

// Set stores global element (gi, gj) in the lower triangle.
func (s *SymmetricLower) Set(gi, gj int, v float64) {
	if gi < gj {
		gi, gj = gj, gi
	}
	s.Tile(gi/s.B, gj/s.B).Set(gi%s.B, gj%s.B, v)
}

// Clone returns a deep copy.
func (s *SymmetricLower) Clone() *SymmetricLower {
	c := NewSymmetricLower(s.MT, s.B)
	for i, t := range s.tiles {
		c.tiles[i] = t.Clone()
	}
	return c
}

// FillLowerFunc sets every stored element from a generator of global indices
// (called only with gi ≥ gj).
func (s *SymmetricLower) FillLowerFunc(f func(gi, gj int) float64) {
	for ti := 0; ti < s.MT; ti++ {
		for tj := 0; tj <= ti; tj++ {
			t := s.Tile(ti, tj)
			for i := 0; i < s.B; i++ {
				for j := 0; j < s.B; j++ {
					gi, gj := ti*s.B+i, tj*s.B+j
					if gi >= gj {
						t.Set(i, j, f(gi, gj))
					} else {
						// Upper part of a diagonal tile mirrors the lower.
						t.Set(i, j, f(gj, gi))
					}
				}
			}
		}
	}
}

package matrix

import (
	"fmt"

	"anybc/internal/tile"
)

// FactorLU performs the sequential right-looking tiled unpivoted LU
// factorization in place. It is the single-node reference implementation the
// distributed runtime is validated against; the task order matches the DAG
// of package dag exactly.
func FactorLU(a *Dense) error {
	if a.MT != a.NT {
		panic(fmt.Sprintf("matrix: FactorLU needs a square tile matrix, got %dx%d", a.MT, a.NT))
	}
	mt := a.MT
	for l := 0; l < mt; l++ {
		if err := tile.Getrf(a.Tile(l, l)); err != nil {
			return fmt.Errorf("matrix: GETRF(%d,%d): %w", l, l, err)
		}
		for i := l + 1; i < mt; i++ {
			// Column panel: A[i][l] := A[i][l] · U(l,l)⁻¹.
			tile.Trsm(tile.Right, tile.Upper, tile.NoTrans, tile.NonUnit, 1, a.Tile(l, l), a.Tile(i, l))
		}
		for j := l + 1; j < mt; j++ {
			// Row panel: A[l][j] := L(l,l)⁻¹ · A[l][j].
			tile.Trsm(tile.Left, tile.Lower, tile.NoTrans, tile.Unit, 1, a.Tile(l, l), a.Tile(l, j))
		}
		for i := l + 1; i < mt; i++ {
			for j := l + 1; j < mt; j++ {
				// Trailing update: A[i][j] -= A[i][l] · A[l][j].
				tile.Gemm(tile.NoTrans, tile.NoTrans, -1, a.Tile(i, l), a.Tile(l, j), 1, a.Tile(i, j))
			}
		}
	}
	return nil
}

// FactorCholesky performs the sequential right-looking tiled Cholesky
// factorization in place on the lower-stored symmetric matrix.
func FactorCholesky(a *SymmetricLower) error {
	mt := a.MT
	for l := 0; l < mt; l++ {
		if err := tile.Potrf(a.Tile(l, l)); err != nil {
			return fmt.Errorf("matrix: POTRF(%d,%d): %w", l, l, err)
		}
		for i := l + 1; i < mt; i++ {
			// Panel: A[i][l] := A[i][l] · L(l,l)⁻ᵀ.
			tile.Trsm(tile.Right, tile.Lower, tile.TransT, tile.NonUnit, 1, a.Tile(l, l), a.Tile(i, l))
		}
		for i := l + 1; i < mt; i++ {
			// Diagonal update: A[i][i] -= A[i][l] · A[i][l]ᵀ (lower only).
			tile.Syrk(tile.Lower, tile.NoTrans, -1, a.Tile(i, l), 1, a.Tile(i, i))
			for j := l + 1; j < i; j++ {
				// Off-diagonal update: A[i][j] -= A[i][l] · A[j][l]ᵀ.
				tile.Gemm(tile.NoTrans, tile.TransT, -1, a.Tile(i, l), a.Tile(j, l), 1, a.Tile(i, j))
			}
		}
	}
	return nil
}

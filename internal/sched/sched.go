// Package sched is the single scheduling policy shared by the discrete-event
// simulator (internal/simulate) and the real distributed runtime
// (internal/runtime): a per-task priority key that favors the critical path
// of the right-looking factorizations, and a deterministic priority heap for
// per-node ready queues.
//
// The paper's evaluation depends on the simulator predicting what the
// Chameleon/StarPU-style runtime does; keeping both halves on one policy is
// what makes the prediction honest. The policy itself is the
// critical-path-first heuristic dynamic runtimes converge to (Donfack et al.,
// hybrid static/dynamic scheduling; Kwasniewski et al., arXiv:2010.05975):
// lower iterations first, and within an iteration the panel factorization
// (GETRF/POTRF) before the triangular solves (TRSM) before the trailing
// updates (SYRK, GEMM) — a delayed panel serializes the whole next iteration,
// while a delayed GEMM only delays itself.
package sched

import (
	"fmt"

	"anybc/internal/dag"
)

// Policy selects how ready tasks are ordered.
type Policy int

const (
	// CriticalPath orders by iteration, then panel < TRSM < SYRK < update —
	// the lookahead-friendly policy both substrates use by default.
	CriticalPath Policy = iota
	// FIFO dispatches ready tasks in release order (all keys equal; the
	// heap's insertion-order tie-break makes it a plain queue).
	FIFO
)

// kindOrder ranks task kinds within one iteration: the diagonal panel
// factorization unblocks everything, the solves unblock the updates, and the
// updates only feed the next iteration.
func kindOrder(k dag.Kind) int64 {
	switch k {
	case dag.GETRF, dag.POTRF:
		return 0
	case dag.TRSMCol, dag.TRSMRow, dag.TRSMChol, dag.ReduceAdd:
		// A replicated run's reduction combines gate the panel kernels of
		// their tile's iteration exactly like the solves gate the updates.
		return 1
	case dag.SYRK:
		return 2
	default:
		return 3
	}
}

// subOrder refines the order within one (iteration, kind) class by urgency:
// the smallest row/column a task touches is the first future iteration its
// output unblocks, so the solve of row ℓ+1 and the update of tile
// (ℓ+1, ℓ+1) — the very operands of iteration ℓ+1's panel — dispatch before
// updates deep in the trailing matrix. This is the lookahead priority
// dynamic runtimes (PaRSEC/DPLASMA-style) give tiled factorizations.
func subOrder(t dag.Task) int64 {
	switch t.Kind {
	case dag.GETRF, dag.POTRF:
		return 0
	case dag.TRSMCol, dag.TRSMRow, dag.TRSMChol, dag.SYRK:
		return int64(t.I)
	default:
		i, j := int64(t.I), int64(t.J)
		if j < i {
			return j
		}
		return i
	}
}

// subBits bounds the sub-priority field; matrices beyond 2^20 tiles per side
// saturate it (the class order still holds).
const subBits = 20

// Key returns the CriticalPath dispatch key of t: lower keys dispatch first.
// Keys are totally ordered by (iteration, kind rank, urgency); remaining
// ties are left to the heap's deterministic tie-break.
func Key(t dag.Task) int64 {
	sub := subOrder(t)
	if sub >= 1<<subBits {
		sub = 1<<subBits - 1
	}
	iter := int64(t.L)
	if t.Kind == dag.ReduceAdd {
		// A combine's L field is its index in the tile's reduction group,
		// not an iteration; the iteration it unblocks is the tile's panel
		// step min(I, J).
		iter = int64(t.I)
		if int64(t.J) < iter {
			iter = int64(t.J)
		}
	}
	return (iter*4+kindOrder(t.Kind))<<subBits | sub
}

// Key returns the dispatch key of t under policy p.
func (p Policy) Key(t dag.Task) int64 {
	if p == FIFO {
		return 0
	}
	return Key(t)
}

// demoteBit is far above every bit Key can set ((L*4+kind)<<subBits | sub
// stays below 2^50 for any feasible matrix), so demoted keys form a second
// band that sorts strictly after all native keys.
const demoteBit = int64(1) << 55

// Demote returns key moved into the low-priority band: a demoted key orders
// after every undemoted Key, while demoted keys keep their relative
// critical-path order. The runtime uses it for speculatively adopted tasks —
// re-executions of a lagging peer's work that must never starve the node's
// own critical path.
func Demote(key int64) int64 { return key | demoteBit }

// Demoted reports whether key is in the low-priority band of Demote.
func Demoted(key int64) bool { return key&demoteBit != 0 }

// bandShift places the cross-job priority band above the demote bit, so the
// band is the major order: every key of band b — demoted or not — sorts
// strictly before every key of band b+1, and within one band natives still
// precede demoted speculation. The multi-tenant service maps job priorities
// to bands, so when tasks of different jobs ever share one dispatch queue the
// higher-priority job's whole schedule preempts the lower one's.
const bandShift = 56

// MaxBand is the largest priority band Band accepts (band 0 is the most
// urgent; keys stay positive for every band up to it).
const MaxBand = 62

// Band returns key moved into cross-job priority band b: band 0 (the
// default — Band(key, 0) == key) is the most urgent, higher bands sort
// strictly after every key of every lower band while preserving their
// internal critical-path and demotion order. b outside [0, MaxBand] panics;
// the runtime validates Options.PriorityBand before engines are built.
func Band(key int64, b int) int64 {
	if b < 0 || b > MaxBand {
		panic(fmt.Sprintf("sched: priority band %d outside [0, %d]", b, MaxBand))
	}
	return key | int64(b)<<bandShift
}

// BandOf returns the cross-job priority band of key.
func BandOf(key int64) int { return int(key >> bandShift) }

// Tie selects how a Heap orders ids whose keys compare equal.
type Tie int

const (
	// TieFIFO pops equal keys in push order — a fair queue, and what makes
	// the FIFO policy (all keys zero) a plain release-order queue.
	TieFIFO Tie = iota
	// TieLIFO pops the most recently pushed of equal keys first. This is the
	// cache-affinity order of StarPU/Chameleon-style local task stacks: the
	// trailing update released last reads the tile a worker just wrote, so
	// popping it first keeps the operand hot. CriticalPath uses it — the key
	// still dictates cross-class order; recency only breaks ties among
	// same-iteration same-kind updates.
	TieLIFO
)

// Tie returns the tie-break mode policy p pairs with.
func (p Policy) Tie() Tie {
	if p == FIFO {
		return TieFIFO
	}
	return TieLIFO
}

// Heap is a deterministic min-heap of task identifiers ordered by (key,
// tie-break on push recency): both orders are total, so a run's dispatch
// sequence is reproducible. The zero value is an empty TieFIFO heap; use
// NewHeap to select the tie-break.
type Heap struct {
	keys []int64
	ids  []int32
	seqs []uint64
	seq  uint64
	tie  Tie
}

// NewHeap returns an empty heap with the given tie-break mode.
func NewHeap(tie Tie) Heap { return Heap{tie: tie} }

// Push inserts id with the given priority key.
func (h *Heap) Push(key int64, id int32) {
	h.seq++
	h.keys = append(h.keys, key)
	h.ids = append(h.ids, id)
	h.seqs = append(h.seqs, h.seq)
	i := len(h.keys) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) less(a, b int) bool {
	if h.keys[a] != h.keys[b] {
		return h.keys[a] < h.keys[b]
	}
	if h.tie == TieLIFO {
		return h.seqs[a] > h.seqs[b]
	}
	return h.seqs[a] < h.seqs[b]
}

func (h *Heap) swap(a, b int) {
	h.keys[a], h.keys[b] = h.keys[b], h.keys[a]
	h.ids[a], h.ids[b] = h.ids[b], h.ids[a]
	h.seqs[a], h.seqs[b] = h.seqs[b], h.seqs[a]
}

// Pop removes and returns the id with the lowest key (tie broken by the
// heap's Tie mode). It must not be called on an empty heap.
func (h *Heap) Pop() int32 {
	top := h.ids[0]
	last := len(h.keys) - 1
	h.swap(0, last)
	h.keys = h.keys[:last]
	h.ids = h.ids[:last]
	h.seqs = h.seqs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.keys) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.keys) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return top
}

// Len returns the number of queued ids.
func (h *Heap) Len() int { return len(h.keys) }

// Empty reports whether the heap holds no ids.
func (h *Heap) Empty() bool { return len(h.keys) == 0 }

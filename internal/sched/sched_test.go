package sched

import (
	"math/rand"
	"sort"
	"testing"

	"anybc/internal/dag"
)

// TestKeyOrdersCriticalPathFirst: within one iteration panel < TRSM < SYRK <
// GEMM, and any task of iteration ℓ beats any task of iteration ℓ+1.
func TestKeyOrdersCriticalPathFirst(t *testing.T) {
	iter0 := []dag.Task{
		{Kind: dag.GETRF, L: 0},
		{Kind: dag.POTRF, L: 0},
		{Kind: dag.TRSMCol, L: 0, I: 1},
		{Kind: dag.TRSMRow, L: 0, I: 1},
		{Kind: dag.TRSMChol, L: 0, I: 1},
		{Kind: dag.SYRK, L: 0, I: 1},
		{Kind: dag.GEMMLU, L: 0, I: 1, J: 1},
		{Kind: dag.GEMMChol, L: 0, I: 2, J: 1},
	}
	order := func(tk dag.Task) int64 { return (Key(tk) >> subBits) % 4 }
	wants := []int64{0, 0, 1, 1, 1, 2, 3, 3}
	for i, tk := range iter0 {
		if got := order(tk); got != wants[i] {
			t.Errorf("kind rank of %v = %d, want %d", tk, got, wants[i])
		}
	}
	// Iteration dominates kind: the panel of iteration 1 must not preempt
	// even the latest update of iteration 0.
	gemm0 := dag.Task{Kind: dag.GEMMLU, L: 0, I: 3, J: 3}
	getrf1 := dag.Task{Kind: dag.GETRF, L: 1}
	if Key(gemm0) >= Key(getrf1) {
		t.Errorf("Key(%v)=%d should precede Key(%v)=%d", gemm0, Key(gemm0), getrf1, Key(getrf1))
	}
	// Urgency within a class: the update feeding the next panel beats an
	// update deep in the trailing matrix, and the solve of an earlier row
	// beats a later one.
	near := dag.Task{Kind: dag.GEMMLU, L: 0, I: 1, J: 1}
	far := dag.Task{Kind: dag.GEMMLU, L: 0, I: 7, J: 9}
	if Key(near) >= Key(far) {
		t.Errorf("Key(%v)=%d should precede Key(%v)=%d", near, Key(near), far, Key(far))
	}
	t1 := dag.Task{Kind: dag.TRSMCol, L: 0, I: 1}
	t5 := dag.Task{Kind: dag.TRSMCol, L: 0, I: 5}
	if Key(t1) >= Key(t5) {
		t.Errorf("Key(%v)=%d should precede Key(%v)=%d", t1, Key(t1), t5, Key(t5))
	}
	// Kind rank still dominates urgency: the farthest TRSM beats the nearest
	// GEMM of the same iteration.
	if Key(t5) >= Key(near) {
		t.Errorf("Key(%v)=%d should precede Key(%v)=%d", t5, Key(t5), near, Key(near))
	}
}

// TestFIFOKeyIsConstant: under FIFO every task keys to 0 so the heap's
// insertion-order tie-break turns it into a queue.
func TestFIFOKeyIsConstant(t *testing.T) {
	tasks := []dag.Task{
		{Kind: dag.GEMMLU, L: 5, I: 6, J: 7},
		{Kind: dag.GETRF, L: 0},
	}
	for _, tk := range tasks {
		if FIFO.Key(tk) != 0 {
			t.Errorf("FIFO.Key(%v) = %d, want 0", tk, FIFO.Key(tk))
		}
	}
	if CriticalPath.Key(tasks[1]) != Key(tasks[1]) {
		t.Error("CriticalPath.Key must agree with Key")
	}
}

// TestHeapPopsByKeyThenInsertion: pops ascend by key, and equal keys pop in
// push order — the determinism both substrates rely on.
func TestHeapPopsByKeyThenInsertion(t *testing.T) {
	var h Heap
	h.Push(3, 30)
	h.Push(1, 10)
	h.Push(2, 20)
	h.Push(1, 11)
	h.Push(1, 12)
	want := []int32{10, 11, 12, 20, 30}
	for i, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if !h.Empty() || h.Len() != 0 {
		t.Fatal("heap not empty after draining")
	}
}

// TestHeapLIFOTie: with TieLIFO the key still dictates cross-class order,
// but equal keys pop most-recently-pushed first — the cache-affinity order
// CriticalPath pairs with.
func TestHeapLIFOTie(t *testing.T) {
	h := NewHeap(TieLIFO)
	h.Push(3, 30)
	h.Push(1, 10)
	h.Push(2, 20)
	h.Push(1, 11)
	h.Push(1, 12)
	want := []int32{12, 11, 10, 20, 30}
	for i, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if CriticalPath.Tie() != TieLIFO || FIFO.Tie() != TieFIFO {
		t.Fatal("policy tie-break pairing wrong")
	}
}

// TestHeapRandomizedAgainstSort: heap drain equals a stable sort by key for
// random inputs of every size.
func TestHeapRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		type item struct {
			key int64
			id  int32
		}
		items := make([]item, n)
		var h Heap
		for i := range items {
			items[i] = item{key: int64(rng.Intn(10)), id: int32(i)}
			h.Push(items[i].key, items[i].id)
		}
		sort.SliceStable(items, func(a, b int) bool { return items[a].key < items[b].key })
		for i, it := range items {
			if got := h.Pop(); got != it.id {
				t.Fatalf("trial %d pop %d = %d, want %d", trial, i, got, it.id)
			}
		}
	}
}

// TestDemoteBand: Demote moves a key into a band that sorts after every
// native key while preserving relative order inside the band, Demoted
// classifies the bands, and demotion is idempotent — the properties the
// elastic runtime's speculative replays rely on to never starve a node's own
// critical path.
func TestDemoteBand(t *testing.T) {
	lo, hi := int64(1), (int64(1)<<50)-1 // hi bounds every feasible native key
	if !Demoted(Demote(lo)) || Demoted(lo) {
		t.Fatal("Demoted misclassifies the bands")
	}
	if Demote(Demote(lo)) != Demote(lo) {
		t.Fatal("Demote is not idempotent")
	}
	if Demote(lo) <= hi {
		t.Fatal("a demoted key does not sort after the largest native key")
	}
	if Demote(lo) >= Demote(hi) {
		t.Fatal("demotion does not preserve relative order")
	}
	var h Heap
	h.Push(Demote(lo), 0)
	h.Push(hi, 1)
	h.Push(lo, 2)
	h.Push(Demote(hi), 3)
	for i, want := range []int32{2, 1, 0, 3} {
		if got := h.Pop(); got != want {
			t.Fatalf("pop %d = %d, want %d", i, got, want)
		}
	}
}
